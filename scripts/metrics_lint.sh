#!/usr/bin/env bash
# Metric-name lint (run by scripts/check.sh):
#   1. Every literal metric registration uses the repo convention:
#      dotted lower-case `component.metric_name` (see common/metrics.h).
#   2. No name is registered as two different metric kinds (a counter and
#      a histogram sharing a name would collide in the exporters).
#
# Only string-literal first arguments are linted; dynamically composed
# names (e.g. "retry." + op + ".attempts") are built from linted prefixes.
set -euo pipefail
cd "$(dirname "$0")/.."

# (kind, name) pairs: the literal must be the whole argument, i.e. the
# closing quote is followed by ',' (labels) or ')' — not '+' (concat).
pairs=$(grep -rhoE 'Get(Counter|Histogram|Gauge|Rate)\("[^"]+"[,)]' src \
  | sed -E 's/Get([A-Za-z]+)\("([^"]+)".*/\1 \2/' | sort -u)

fail=0
while read -r kind name; do
  [[ -z "${name:-}" ]] && continue
  if ! [[ "$name" =~ ^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$ ]]; then
    echo "metrics lint: '$name' ($kind) violates dotted lower-case naming" \
         "(want e.g. proxy.search_latency)" >&2
    fail=1
  fi
done <<< "$pairs"

# 3. Required observability families: the admission front door, shedding
#    and backpressure paths (chaos storm test / DescribeCluster), the
#    WAL publish path (group commit, refusals, subscriber gaps), the
#    filtered-search planner (strategy counts, selectivity, artifact
#    build/load), and the placement reconciler (repair ops/bytes/aborts,
#    under-replication gauge, drain duration) must stay instrumented.
for family in admission. shed. backpressure. wal. filter. placement.; do
  if ! echo "$pairs" | awk '{print $2}' | grep -q "^${family//./\\.}"; then
    echo "metrics lint: no metric registered under required family" \
         "'${family}*'" >&2
    fail=1
  fi
done

dups=$(echo "$pairs" | awk '{print $2}' | sort | uniq -d)
if [[ -n "$dups" ]]; then
  echo "metrics lint: names registered as more than one metric kind:" >&2
  echo "$dups" >&2
  fail=1
fi

if [[ "$fail" -ne 0 ]]; then
  echo "metrics lint: FAILED" >&2
  exit 1
fi
echo "metrics lint: OK ($(echo "$pairs" | wc -l) literal registrations)"
