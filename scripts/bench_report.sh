#!/usr/bin/env bash
# Regenerates the committed BENCH_*.json perf-trajectory artifacts at the
# repo root:
#   BENCH_micro_kernels.json  — google-benchmark kernel timings (ns/op,
#                               items/s) from bench_micro_kernels
#   BENCH_fig8.json           — recall@50 / QPS / p99 per engine+knob from
#                               bench_fig8_recall_throughput
#
# Each bench writes its artifact only when MANU_BENCH_JSON names a path
# (see bench/bench_util.h), so plain bench runs never churn the committed
# files. Numbers are machine-dependent; compare trajectories on the same
# hardware, not across machines.
#
# Usage: scripts/bench_report.sh             # build if needed, run both
#        MANU_BENCH_SCALE=4 scripts/bench_report.sh
set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="$(pwd)"

JOBS="${JOBS:-$(nproc)}"

cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" --target bench_micro_kernels \
  bench_fig8_recall_throughput

echo "=== micro kernels ==="
MANU_BENCH_JSON="$ROOT/BENCH_micro_kernels.json" \
  ./build/bench/bench_micro_kernels --benchmark_min_time=0.05

echo "=== figure 8: recall vs throughput ==="
MANU_BENCH_JSON="$ROOT/BENCH_fig8.json" \
  ./build/bench/bench_fig8_recall_throughput

echo "=== artifacts ==="
ls -l "$ROOT"/BENCH_*.json
