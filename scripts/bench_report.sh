#!/usr/bin/env bash
# Regenerates the committed BENCH_*.json perf-trajectory artifacts at the
# repo root:
#   BENCH_micro_kernels.json  — google-benchmark kernel timings (ns/op,
#                               items/s) from bench_micro_kernels
#   BENCH_fig8.json           — recall@50 / QPS / p99 per engine+knob from
#                               bench_fig8_recall_throughput
#   BENCH_overload_brownout.json — goodput / shed / brownout stage per
#                               offered-load multiple from bench_overload
#   BENCH_ingest.json         — acked WAL publishes/sec per publisher count,
#                               group commit off vs on, from bench_ingest
#   BENCH_filtered.json       — filtered-search selectivity sweep: QPS /
#                               recall@50 per strategy vs the post-scan
#                               baseline, from bench_filtered
#   BENCH_diurnal.json        — two-day diurnal elasticity drill with a
#                               node kill at the first peak: per-hour
#                               goodput / coverage / fleet size / brownout
#                               stage plus the kill episode (detect and
#                               redundancy-restore latency), from
#                               bench_fig9_elasticity diurnal
#
# Each bench writes its artifact only when MANU_BENCH_JSON names a path
# (see bench/bench_util.h), so plain bench runs never churn the committed
# files. Numbers are machine-dependent; compare trajectories on the same
# hardware, not across machines.
#
# Usage: scripts/bench_report.sh             # build if needed, run both
#        MANU_BENCH_SCALE=4 scripts/bench_report.sh
set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="$(pwd)"

JOBS="${JOBS:-$(nproc)}"

cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" --target bench_micro_kernels \
  bench_fig8_recall_throughput bench_overload bench_ingest bench_filtered \
  bench_fig9_elasticity

echo "=== micro kernels ==="
MANU_BENCH_JSON="$ROOT/BENCH_micro_kernels.json" \
  ./build/bench/bench_micro_kernels --benchmark_min_time=0.05

echo "=== figure 8: recall vs throughput ==="
MANU_BENCH_JSON="$ROOT/BENCH_fig8.json" \
  ./build/bench/bench_fig8_recall_throughput

echo "=== overload: brownout ladder goodput ==="
MANU_BENCH_JSON="$ROOT/BENCH_overload_brownout.json" \
  ./build/bench/bench_overload

echo "=== WAL ingest: group commit off vs on ==="
MANU_BENCH_JSON="$ROOT/BENCH_ingest.json" \
  ./build/bench/bench_ingest

echo "=== filtered search: selectivity sweep vs post-scan ==="
MANU_BENCH_JSON="$ROOT/BENCH_filtered.json" \
  ./build/bench/bench_filtered

echo "=== diurnal drill: two-day elasticity with peak node kill ==="
MANU_BENCH_JSON="$ROOT/BENCH_diurnal.json" \
  ./build/bench/bench_fig9_elasticity diurnal

echo "=== artifacts ==="
ls -l "$ROOT"/BENCH_*.json
