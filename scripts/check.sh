#!/usr/bin/env bash
# Full verification matrix:
#   0. metrics-name lint (scripts/metrics_lint.sh)
#   1. release build, complete ctest suite (unit + e2e + chaos + perf)
#   2. AddressSanitizer build, ctest -LE perf (chaos suite included)
#   3. ThreadSanitizer build,  ctest -LE perf (chaos suite included)
#
# Perf-labeled tests are excluded under the sanitizers: instrumentation
# slows compute 5-20x and the perf smoke asserts wall-clock speedup bars
# that only hold on uninstrumented builds. Everything else — including the
# crash-recovery / lease-expiry chaos tests — runs under all three builds;
# the TSan leg is the data-race probe for the failover and fencing paths.
#
# Usage: scripts/check.sh            # whole matrix
#        JOBS=4 scripts/check.sh     # cap build/test parallelism
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "=== metrics-name lint ==="
scripts/metrics_lint.sh

echo "=== release: build + full test suite ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

run_sanitized() {
  local san="$1" dir="$2"
  echo "=== ${san} sanitizer: build + ctest -LE perf ==="
  cmake -B "$dir" -S . -DMANU_SANITIZE="$san" >/dev/null
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -LE perf
}

run_sanitized address build-asan
run_sanitized thread build-tsan

echo "=== all checks passed ==="
