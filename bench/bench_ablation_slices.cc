// Ablation for the growing-segment slice design (Section 3.6): "we divide
// each segment into slices ... after a slice is full, a light-weight
// temporary index is built for it. Empirically, we observed that the
// temporary index brings up to 10X speedup for searching growing
// segments." This bench measures exactly that: search latency over a large
// growing segment with slice temp-indexes enabled vs pure brute force.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/segment.h"

namespace manu {
namespace {

constexpr int32_t kDim = 96;

double MeasureGrowingLatencyUs(int64_t rows, int64_t slice_rows,
                               const VectorDataset& data,
                               const VectorDataset& queries,
                               int64_t* slices_built) {
  CollectionSchema schema("g");
  FieldSchema vec;
  vec.name = "v";
  vec.type = DataType::kFloatVector;
  vec.dim = kDim;
  (void)schema.AddField(vec);
  (void)schema.Finalize();
  const FieldId field = schema.FieldByName("v")->id;

  GrowingSegment segment(1, &schema, slice_rows);
  const int64_t batch_rows = 2048;  // WAL-like arrival granularity.
  for (int64_t begin = 0; begin < rows; begin += batch_rows) {
    const int64_t end = std::min(rows, begin + batch_rows);
    EntityBatch batch;
    for (int64_t i = begin; i < end; ++i) {
      batch.primary_keys.push_back(i);
      batch.timestamps.push_back(static_cast<Timestamp>(i + 1));
    }
    batch.columns.push_back(FieldColumn::MakeFloatVector(
        field, kDim,
        std::vector<float>(data.Row(begin),
                           data.Row(begin) + (end - begin) * kDim)));
    if (!segment.Append(batch).ok()) return 0;
  }
  *slices_built = segment.NumSlicesIndexed();

  SegmentSearchRequest req;
  req.field = field;
  req.params.k = 50;
  req.params.nprobe = 8;
  const int64_t t0 = NowMicros();
  for (int64_t q = 0; q < queries.NumRows(); ++q) {
    req.query = queries.Row(q);
    (void)segment.Search(req);
  }
  return static_cast<double>(NowMicros() - t0) /
         static_cast<double>(queries.NumRows());
}

void Run() {
  const int64_t rows = bench::Scaled(100000);
  std::printf(
      "== Ablation: growing-segment slice temp-indexes (Section 3.6) ==\n"
      "rows=%lld dim=%d, IVF-Flat temp index per full slice\n\n",
      static_cast<long long>(rows), kDim);

  SyntheticOptions opts;
  opts.num_rows = rows;
  opts.dim = kDim;
  opts.num_clusters = 128;
  VectorDataset data = MakeClusteredDataset(opts);
  VectorDataset queries = MakeQueries(opts, 64, 7);

  bench::Table table({"config", "slices", "latency_us", "speedup"});
  int64_t slices = 0;
  const double brute = MeasureGrowingLatencyUs(
      rows, std::numeric_limits<int64_t>::max(), data, queries, &slices);
  table.AddRow({"brute_force", std::to_string(slices), bench::Fmt(brute, 0),
                "1.0"});
  for (int64_t slice_rows : {5000, 10000, 20000}) {
    const double lat =
        MeasureGrowingLatencyUs(rows, slice_rows, data, queries, &slices);
    table.AddRow({"slice_" + std::to_string(slice_rows),
                  std::to_string(slices), bench::Fmt(lat, 0),
                  bench::Fmt(lat > 0 ? brute / lat : 0, 1) + "x"});
  }
  table.Print();
  std::printf(
      "\npaper claim: temporary index brings up to 10X speedup for growing "
      "segments.\n");
}

}  // namespace
}  // namespace manu

int main() {
  manu::Run();
  return 0;
}
