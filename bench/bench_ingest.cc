// WAL ingest bench: acked publishes/sec straight against the broker, with
// and without group commit, under the simulated per-flush device latency
// (the fsync / replication RTT a real log service pays once per group).
//
// Expected shape: with group commit OFF every publish pays the full flush
// latency serially, so a channel tops out near 1/latency regardless of
// publisher count. With group commit ON the flush leader batches every
// staged publisher into one flush, so acked throughput scales with
// concurrency — the ISSUE's acceptance floor is >= 5x at 8 publishers.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "wal/mq.h"

namespace manu {
namespace {

constexpr int64_t kFlushLatencyUs = 200;  // Simulated device write.
constexpr int64_t kGroupMax = 256;

LogEntry MakeEntry(Timestamp ts) {
  LogEntry e;
  e.type = LogEntryType::kInsert;
  e.timestamp = ts;
  e.collection = 1;
  e.segment = 1;
  e.batch.primary_keys = {static_cast<int64_t>(ts)};
  e.batch.timestamps = {ts};
  e.batch.columns.push_back(FieldColumn::MakeFloatVector(
      100, 8, std::vector<float>(8, static_cast<float>(ts))));
  return e;
}

double RunArm(bool grouped, int32_t publishers, int64_t duration_ms) {
  WalOptions opt;
  opt.group_commit = grouped;
  opt.group_max_entries = kGroupMax;
  opt.flush_linger_us = 0;  // Natural batching only: whatever queued.
  opt.sim_flush_latency_us = kFlushLatencyUs;
  MessageQueue mq(opt);
  // A subscriber drains concurrently so the bench also exercises the
  // wait-free read path under publish load (and bounds memory).
  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
    while (!stop.load(std::memory_order_acquire)) {
      if (sub->Poll(1024, std::chrono::milliseconds(5)).empty() &&
          sub->closed()) {
        break;
      }
      const int64_t pos = sub->position();
      if (pos > 4096) mq.TruncateBefore("ch", pos - 1024);
    }
  });
  std::atomic<int64_t> ts{1};
  auto result = bench::MeasureThroughput(
      publishers, duration_ms, [&](int32_t, int64_t) {
        mq.Publish(
            "ch", MakeEntry(static_cast<Timestamp>(
                      ts.fetch_add(1, std::memory_order_relaxed))));
      });
  stop.store(true, std::memory_order_release);
  mq.Shutdown();
  drainer.join();
  return result.qps;
}

void Run() {
  const int64_t duration_ms = bench::Scaled(1500);
  std::printf("WAL ingest: acked publishes/sec, one channel, simulated "
              "flush latency %lld us, group max %lld\n\n",
              static_cast<long long>(kFlushLatencyUs),
              static_cast<long long>(kGroupMax));
  bench::Table table(
      {"publishers", "group_commit", "acked/s", "speedup_vs_off"});
  bench::BenchReport report("ingest");
  for (int32_t publishers : {1, 4, 8}) {
    const double off = RunArm(/*grouped=*/false, publishers, duration_ms);
    const double on = RunArm(/*grouped=*/true, publishers, duration_ms);
    const double speedup = off > 0 ? on / off : 0;
    table.AddRow({std::to_string(publishers), "off", bench::Fmt(off, 0), ""});
    table.AddRow({std::to_string(publishers), "on", bench::Fmt(on, 0),
                  bench::Fmt(speedup, 2)});
    report.Add("p" + std::to_string(publishers) + "_off",
               {{"publishers", publishers}, {"acked_per_sec", off}});
    report.Add("p" + std::to_string(publishers) + "_on",
               {{"publishers", publishers},
                {"acked_per_sec", on},
                {"speedup_vs_off", speedup}});
  }
  table.Print();
  report.WriteIfRequested();
}

}  // namespace
}  // namespace manu

int main() {
  manu::Run();
  return 0;
}
