// Filtered-search sweep (Section 3.6 attribute filtering): QPS and
// recall@50 across filter selectivities from 0.1% to 90%, comparing the
// post-scan baseline (unmasked ANN + intersect — the strategy the planner
// exists to beat) against the planner's strategies (pre-filter mask,
// filter-aware traversal, brute-force-over-matches) and the cost-based
// planner's own per-segment choice, on IVF-Flat and HNSW.
//
// The committed artifact (BENCH_filtered.json via scripts/bench_report.sh)
// tracks the planner-vs-postscan trajectory; the acceptance bar is the
// planner beating post-scan by >= 3x QPS at 1% selectivity with recall no
// worse than 1% below it.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/segment.h"
#include "index/index_factory.h"

namespace manu {
namespace {

constexpr int32_t kDim = 32;
constexpr size_t kTopK = 50;
constexpr int64_t kPriceMod = 1000;  // price = row % 1000: sel(P) = P/1000.

struct StrategyCase {
  const char* name;
  bool enable;           // Planner on?
  FilterStrategy force;  // kNone = planner's own choice.
};

const StrategyCase kStrategies[] = {
    {"postscan", true, FilterStrategy::kPostScan},
    {"prefilter", true, FilterStrategy::kPreFilter},
    {"traversal", true, FilterStrategy::kTraversal},
    {"brute_matches", true, FilterStrategy::kBruteMatches},
    {"planner", true, FilterStrategy::kNone},
};

float L2(const float* a, const float* b, int32_t dim) {
  float sum = 0;
  for (int32_t i = 0; i < dim; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

/// Exact filtered top-k over rows with price < limit.
std::vector<Neighbor> FilteredTruth(const VectorDataset& data,
                                    const float* query, int64_t price_limit,
                                    size_t k) {
  TopKHeap heap(k);
  for (int64_t row = 0; row < data.NumRows(); ++row) {
    if (row % kPriceMod >= price_limit) continue;
    heap.Push(row, L2(query, data.Row(row), data.dim));
  }
  return heap.TakeSorted();
}

std::unique_ptr<SealedSegment> MakeSegment(const CollectionSchema& schema,
                                           const VectorDataset& data,
                                           FieldId vec_id, FieldId price_id,
                                           IndexType type) {
  const int64_t n = data.NumRows();
  EntityBatch batch;
  std::vector<int64_t> prices;
  for (int64_t i = 0; i < n; ++i) {
    batch.primary_keys.push_back(i);
    batch.timestamps.push_back(static_cast<Timestamp>(1000 + i));
    prices.push_back(i % kPriceMod);
  }
  batch.columns.push_back(
      FieldColumn::MakeFloatVector(vec_id, kDim, data.data));
  batch.columns.push_back(FieldColumn::MakeInt64(price_id, prices));

  auto seg = std::make_unique<SealedSegment>(1, &schema);
  if (!seg->SetRows(batch).ok() || !seg->BuildScalarIndexes().ok()) {
    std::fprintf(stderr, "segment setup failed\n");
    std::exit(1);
  }
  IndexParams params;
  params.type = type;
  params.dim = kDim;
  params.nlist = 64;
  params.hnsw_m = 16;
  params.hnsw_ef_construction = 160;
  auto index = BuildVectorIndex(params, data.data.data(), n);
  if (!index.ok() || !seg->SetIndex(vec_id, std::move(index).value()).ok()) {
    std::fprintf(stderr, "index build failed\n");
    std::exit(1);
  }
  return seg;
}

void Run(bench::BenchReport* report) {
  SyntheticOptions opts;
  opts.num_rows = bench::Scaled(20000);
  opts.dim = kDim;
  opts.num_clusters = 200;
  opts.cluster_spread = 0.25;
  VectorDataset data = MakeClusteredDataset(opts);
  const int64_t num_queries = 64;
  VectorDataset queries = MakeQueries(opts, num_queries, 7);

  CollectionSchema schema("bench");
  FieldSchema pk;
  pk.name = "id";
  pk.type = DataType::kInt64;
  pk.is_primary = true;
  (void)schema.AddField(pk);
  FieldSchema vec;
  vec.name = "v";
  vec.type = DataType::kFloatVector;
  vec.dim = kDim;
  (void)schema.AddField(vec);
  FieldSchema price;
  price.name = "price";
  price.type = DataType::kInt64;
  (void)schema.AddField(price);
  const FieldId vec_id = schema.FieldByName("v")->id;
  const FieldId price_id = schema.FieldByName("price")->id;

  // Selectivity sweep: price < P on price = row % 1000.
  const int64_t price_limits[] = {1, 10, 50, 100, 300, 900};

  std::printf("== filtered search: %lld rows, dim=%d, top-%zu ==\n",
              static_cast<long long>(data.NumRows()), kDim, kTopK);

  const struct {
    const char* name;
    IndexType type;
  } engines[] = {{"ivf_flat", IndexType::kIvfFlat},
                 {"hnsw", IndexType::kHnsw}};

  for (const auto& engine : engines) {
    auto seg = MakeSegment(schema, data, vec_id, price_id, engine.type);
    bench::Table table({"engine", "sel", "strategy", "chosen", "recall@50",
                        "qps", "vs_postscan"});

    for (int64_t limit : price_limits) {
      const double sel =
          static_cast<double>(limit) / static_cast<double>(kPriceMod);
      auto expr = FilterExpr::Parse("price < " + std::to_string(limit),
                                    schema);
      if (!expr.ok()) {
        std::fprintf(stderr, "parse failed\n");
        std::exit(1);
      }
      std::vector<std::vector<Neighbor>> truth;
      truth.reserve(num_queries);
      for (int64_t q = 0; q < num_queries; ++q) {
        truth.push_back(FilteredTruth(data, queries.Row(q), limit, kTopK));
      }

      double postscan_qps = 0;
      for (const StrategyCase& strat : kStrategies) {
        auto make_req = [&](int64_t q) {
          SegmentSearchRequest req;
          req.field = vec_id;
          req.query = queries.Row(q % num_queries);
          req.params.k = kTopK;
          req.params.nprobe = 8;
          req.params.ef_search = 64;
          req.filter = expr.value().get();
          req.filter_params.enable = strat.enable;
          req.filter_params.force = strat.force;
          return req;
        };

        // Recall pass (records the executed strategy too).
        double recall_sum = 0;
        FilterPlan plan;
        for (int64_t q = 0; q < num_queries; ++q) {
          SegmentSearchRequest req = make_req(q);
          req.plan_out = &plan;
          auto hits = seg->Search(req);
          if (!hits.ok()) continue;
          std::vector<Neighbor> got;
          got.reserve(hits.value().size());
          for (const auto& h : hits.value()) {
            got.push_back({h.pk, h.score});
          }
          const size_t denom = std::min(kTopK, truth[q].size());
          if (denom > 0) {
            recall_sum += RecallAtK(got, truth[q], denom);
          } else {
            recall_sum += 1.0;  // Empty truth: trivially correct.
          }
        }
        const double recall = recall_sum / static_cast<double>(num_queries);

        auto tp = bench::MeasureThroughput(2, 600, [&](int32_t, int64_t i) {
          SegmentSearchRequest req = make_req(i);
          (void)seg->Search(req);
        });
        if (std::string(strat.name) == "postscan") postscan_qps = tp.qps;
        const double speedup =
            postscan_qps > 0 ? tp.qps / postscan_qps : 0.0;

        table.AddRow({engine.name, bench::Fmt(sel, 3), strat.name,
                      FilterStrategyName(plan.strategy),
                      bench::Fmt(recall, 3), bench::Fmt(tp.qps, 0),
                      bench::Fmt(speedup, 2) + "x"});
        report->Add(std::string(engine.name) + ".sel_" +
                        bench::Fmt(sel, 3) + "." + strat.name,
                    {{"recall_at_50", recall},
                     {"qps", tp.qps},
                     {"p99_ms", tp.p99_ms},
                     {"selectivity", sel},
                     {"qps_vs_postscan", speedup}});
      }
    }
    table.Print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace manu

int main() {
  manu::bench::BenchReport report("filtered_search");
  manu::Run(&report);
  report.WriteIfRequested();
  return 0;
}
