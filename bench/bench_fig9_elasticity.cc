// Figure 9 reproduction: elasticity under a daily e-commerce traffic curve.
// The offered search load follows a double-peak diurnal curve (standing in
// for the paper's Taobao trace); the autoscaler halves query nodes when
// mean latency < 100 ms and doubles them when > 150 ms. One simulated
// "hour" is compressed to 2 wall seconds.

#include <cstdio>

#include <cmath>

#include "bench/bench_util.h"
#include "common/channel.h"
#include "core/autoscaler.h"
#include "core/manu.h"

namespace manu {
namespace {

constexpr int32_t kDim = 64;
constexpr int64_t kHourMs = 2000;

/// Double-peak diurnal curve in [0,1]: low overnight, lunch bump, tall
/// evening peak — the qualitative shape of the paper's purple curve.
double TrafficShape(double hour) {
  const double lunch = std::exp(-std::pow(hour - 12.0, 2) / 8.0);
  const double evening = std::exp(-std::pow(hour - 20.0, 2) / 4.5);
  return 0.08 + 0.35 * lunch + 0.9 * evening;
}

void Run() {
  std::printf(
      "== Figure 9: autoscaling under a daily traffic curve (1 hour = %llds) "
      "==\n",
      static_cast<long long>(kHourMs / 1000));

  ManuConfig config;
  config.num_shards = 2;
  config.segment_seal_rows = 6000;
  config.segment_idle_seal_ms = 500;
  config.slice_rows = 2048;
  config.num_query_nodes = 2;
  config.num_index_nodes = 2;
  config.query_threads = 2;
  // Serial scan pinned: the autoscaler thresholds below are calibrated
  // against per-query latency = sim * segments with two concurrent queries
  // per node; intra-query fan-out would halve that and shift every knee.
  config.parallel_search = false;
  config.sim_segment_search_us = 15000;  // 15 ms per segment per node.
  ManuInstance db(config);

  CollectionSchema schema("products");
  FieldSchema vec;
  vec.name = "v";
  vec.type = DataType::kFloatVector;
  vec.dim = kDim;
  (void)schema.AddField(vec);
  auto meta = db.CreateCollection(std::move(schema));
  if (!meta.ok()) return;
  IndexParams index;
  index.type = IndexType::kIvfFlat;
  index.nlist = 64;
  (void)db.CreateIndex("products", "v", index);
  const FieldId field = meta.value().schema.FieldByName("v")->id;

  const int64_t rows = 48000;  // 8 segments of 6000.
  SyntheticOptions opts;
  opts.num_rows = rows;
  opts.dim = kDim;
  VectorDataset data = MakeClusteredDataset(opts);
  for (int64_t begin = 0; begin < rows; begin += 6000) {
    EntityBatch eb;
    for (int64_t i = begin; i < begin + 6000; ++i) {
      eb.primary_keys.push_back(i);
    }
    eb.columns.push_back(FieldColumn::MakeFloatVector(
        field, kDim,
        std::vector<float>(data.Row(begin), data.Row(begin) + 6000 * kDim)));
    if (!db.Insert("products", std::move(eb)).ok()) return;
  }
  if (!db.FlushAndWait("products", 180000).ok()) return;

  AutoScalerPolicy policy;
  policy.min_nodes = 1;
  policy.max_nodes = 8;
  AutoScaler scaler(&db, policy);

  // Open-loop load generation: a dispatcher enqueues jobs at the target
  // rate; workers execute; latency = enqueue -> completion.
  struct Job {
    int64_t enqueue_us;
    int64_t query_row;
  };
  Channel<Job> jobs;
  auto hist = std::make_shared<LatencyHistogram>();
  std::atomic<int64_t> done{0};
  std::vector<std::thread> workers;
  for (int32_t w = 0; w < 48; ++w) {
    workers.emplace_back([&] {
      while (auto job = jobs.Pop()) {
        SearchRequest req;
        req.collection = "products";
        const float* q = data.Row(job->query_row % rows);
        req.query.assign(q, q + kDim);
        req.k = 50;
        req.nprobe = 8;
        req.consistency = ConsistencyLevel::kEventually;
        (void)db.Search(req);
        hist->Observe(static_cast<double>(NowMicros() - job->enqueue_us));
        done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  const double kPeakQps = 80.0;
  bench::Table table({"hour", "offered_qps", "achieved_qps", "shed", "mean_ms",
                      "nodes"});
  int64_t q = 0;
  for (int32_t hour = 0; hour < 24; ++hour) {
    const double target_qps = kPeakQps * TrafficShape(hour);
    hist->Reset();
    done.store(0, std::memory_order_relaxed);
    int64_t shed = 0;
    const int64_t t0 = NowMicros();
    const int64_t gap_us =
        static_cast<int64_t>(1e6 / std::max(1.0, target_qps));
    while (NowMicros() - t0 < kHourMs * 1000) {
      // Clients time out and give up rather than queue forever (load
      // shedding keeps the latency signal meaningful under overload).
      if (jobs.Size() < 64) {
        jobs.Push({NowMicros(), q++});
      } else {
        ++shed;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(gap_us));
    }
    const double elapsed_s = static_cast<double>(NowMicros() - t0) / 1e6;
    const double mean_ms = hist->Mean() / 1000.0;
    const int32_t nodes = scaler.Evaluate(mean_ms);
    table.AddRow({std::to_string(hour), bench::Fmt(target_qps, 0),
                  bench::Fmt(static_cast<double>(done.load()) / elapsed_s, 0),
                  std::to_string(shed), bench::Fmt(mean_ms, 1),
                  std::to_string(nodes)});
  }
  jobs.Close();
  for (auto& w : workers) w.join();
  table.Print();
  std::printf(
      "\nexpected shape: node count tracks the traffic curve; latency stays "
      "near the [100,150] ms band instead of exploding at the peak.\n");
}

}  // namespace
}  // namespace manu

int main() {
  manu::Run();
  return 0;
}
