// Figure 9 reproduction: elasticity under a daily e-commerce traffic curve.
// The offered search load follows a double-peak diurnal curve (standing in
// for the paper's Taobao trace); the autoscaler halves query nodes when
// mean latency < 100 ms and doubles them when > 150 ms. One simulated
// "hour" is compressed to 2 wall seconds.

#include <cstdio>
#include <cstring>

#include <cmath>

#include "bench/bench_util.h"
#include "common/channel.h"
#include "core/autoscaler.h"
#include "core/manu.h"

namespace manu {
namespace {

constexpr int32_t kDim = 64;
constexpr int64_t kHourMs = 2000;

/// Double-peak diurnal curve in [0,1]: low overnight, lunch bump, tall
/// evening peak — the qualitative shape of the paper's purple curve.
double TrafficShape(double hour) {
  const double lunch = std::exp(-std::pow(hour - 12.0, 2) / 8.0);
  const double evening = std::exp(-std::pow(hour - 20.0, 2) / 4.5);
  return 0.08 + 0.35 * lunch + 0.9 * evening;
}

void Run() {
  std::printf(
      "== Figure 9: autoscaling under a daily traffic curve (1 hour = %llds) "
      "==\n",
      static_cast<long long>(kHourMs / 1000));

  ManuConfig config;
  config.num_shards = 2;
  config.segment_seal_rows = 6000;
  config.segment_idle_seal_ms = 500;
  config.slice_rows = 2048;
  config.num_query_nodes = 2;
  config.num_index_nodes = 2;
  config.query_threads = 2;
  // Serial scan pinned: the autoscaler thresholds below are calibrated
  // against per-query latency = sim * segments with two concurrent queries
  // per node; intra-query fan-out would halve that and shift every knee.
  config.parallel_search = false;
  config.sim_segment_search_us = 15000;  // 15 ms per segment per node.
  ManuInstance db(config);

  CollectionSchema schema("products");
  FieldSchema vec;
  vec.name = "v";
  vec.type = DataType::kFloatVector;
  vec.dim = kDim;
  (void)schema.AddField(vec);
  auto meta = db.CreateCollection(std::move(schema));
  if (!meta.ok()) return;
  IndexParams index;
  index.type = IndexType::kIvfFlat;
  index.nlist = 64;
  (void)db.CreateIndex("products", "v", index);
  const FieldId field = meta.value().schema.FieldByName("v")->id;

  const int64_t rows = 48000;  // 8 segments of 6000.
  SyntheticOptions opts;
  opts.num_rows = rows;
  opts.dim = kDim;
  VectorDataset data = MakeClusteredDataset(opts);
  for (int64_t begin = 0; begin < rows; begin += 6000) {
    EntityBatch eb;
    for (int64_t i = begin; i < begin + 6000; ++i) {
      eb.primary_keys.push_back(i);
    }
    eb.columns.push_back(FieldColumn::MakeFloatVector(
        field, kDim,
        std::vector<float>(data.Row(begin), data.Row(begin) + 6000 * kDim)));
    if (!db.Insert("products", std::move(eb)).ok()) return;
  }
  if (!db.FlushAndWait("products", 180000).ok()) return;

  AutoScalerPolicy policy;
  policy.min_nodes = 1;
  policy.max_nodes = 8;
  AutoScaler scaler(&db, policy);

  // Open-loop load generation: a dispatcher enqueues jobs at the target
  // rate; workers execute; latency = enqueue -> completion.
  struct Job {
    int64_t enqueue_us;
    int64_t query_row;
  };
  Channel<Job> jobs;
  auto hist = std::make_shared<LatencyHistogram>();
  std::atomic<int64_t> done{0};
  std::vector<std::thread> workers;
  for (int32_t w = 0; w < 48; ++w) {
    workers.emplace_back([&] {
      while (auto job = jobs.Pop()) {
        SearchRequest req;
        req.collection = "products";
        const float* q = data.Row(job->query_row % rows);
        req.query.assign(q, q + kDim);
        req.k = 50;
        req.nprobe = 8;
        req.consistency = ConsistencyLevel::kEventually;
        (void)db.Search(req);
        hist->Observe(static_cast<double>(NowMicros() - job->enqueue_us));
        done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  const double kPeakQps = 80.0;
  bench::Table table({"hour", "offered_qps", "achieved_qps", "shed", "mean_ms",
                      "nodes"});
  int64_t q = 0;
  for (int32_t hour = 0; hour < 24; ++hour) {
    const double target_qps = kPeakQps * TrafficShape(hour);
    hist->Reset();
    done.store(0, std::memory_order_relaxed);
    int64_t shed = 0;
    const int64_t t0 = NowMicros();
    const int64_t gap_us =
        static_cast<int64_t>(1e6 / std::max(1.0, target_qps));
    while (NowMicros() - t0 < kHourMs * 1000) {
      // Clients time out and give up rather than queue forever (load
      // shedding keeps the latency signal meaningful under overload).
      if (jobs.Size() < 64) {
        jobs.Push({NowMicros(), q++});
      } else {
        ++shed;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(gap_us));
    }
    const double elapsed_s = static_cast<double>(NowMicros() - t0) / 1e6;
    const double mean_ms = hist->Mean() / 1000.0;
    const int32_t nodes = scaler.Evaluate(mean_ms);
    table.AddRow({std::to_string(hour), bench::Fmt(target_qps, 0),
                  bench::Fmt(static_cast<double>(done.load()) / elapsed_s, 0),
                  std::to_string(shed), bench::Fmt(mean_ms, 1),
                  std::to_string(nodes)});
  }
  jobs.Close();
  for (auto& w : workers) w.join();
  table.Print();
  std::printf(
      "\nexpected shape: node count tracks the traffic curve; latency stays "
      "near the [100,150] ms band instead of exploding at the peak.\n");
}

// ---------------------------------------------------------------------------
// Diurnal drill: two simulated days with a node kill at the first peak and
// autoscaler-driven scale-down at the troughs. Exercises the self-healing
// placement manager (replica_factor=2 + reconciler) together with brownout
// admission and drain-based descale; emits BENCH_diurnal.json.
// ---------------------------------------------------------------------------

constexpr int64_t kDiurnalHourMs = 1000;

/// Single-peak sinusoid in [0.1, 1.0]: trough at h=0/24/48, peak at h=12/36.
double DiurnalShape(double hour) {
  const double s = std::sin(M_PI * std::fmod(hour, 24.0) / 24.0);
  return 0.1 + 0.9 * s * s;
}

void RunDiurnal() {
  std::printf(
      "== Diurnal drill: 2 simulated days, node kill at first peak "
      "(1 hour = %llds) ==\n",
      static_cast<long long>(kDiurnalHourMs / 1000));

  ManuConfig config;
  config.num_shards = 2;
  config.segment_seal_rows = 6000;
  config.segment_idle_seal_ms = 500;
  config.slice_rows = 2048;
  config.num_query_nodes = 3;
  config.num_index_nodes = 2;
  config.query_threads = 2;
  config.parallel_search = false;
  config.sim_segment_search_us = 15000;
  // The drill proper: every sealed segment keeps two serving copies, the
  // reconciler restores redundancy after the kill, retries absorb plans
  // that raced the crash, and brownout sheds instead of queueing at peak.
  config.replica_factor = 2;
  config.placement_reconcile_interval_ms = 100;
  config.search_retry_attempts = 2;
  config.admission_max_inflight = 64;
  config.admission_node_inflight = 8;
  config.lease_ttl_ms = 600;
  config.heartbeat_interval_ms = 100;
  config.watchdog_interval_ms = 100;
  ManuInstance db(config);

  CollectionSchema schema("products");
  FieldSchema vec;
  vec.name = "v";
  vec.type = DataType::kFloatVector;
  vec.dim = kDim;
  (void)schema.AddField(vec);
  auto meta = db.CreateCollection(std::move(schema));
  if (!meta.ok()) return;
  IndexParams index;
  index.type = IndexType::kIvfFlat;
  index.nlist = 64;
  (void)db.CreateIndex("products", "v", index);
  const FieldId field = meta.value().schema.FieldByName("v")->id;

  const int64_t rows = 48000;
  SyntheticOptions opts;
  opts.num_rows = rows;
  opts.dim = kDim;
  VectorDataset data = MakeClusteredDataset(opts);
  for (int64_t begin = 0; begin < rows; begin += 6000) {
    EntityBatch eb;
    for (int64_t i = begin; i < begin + 6000; ++i) {
      eb.primary_keys.push_back(i);
    }
    eb.columns.push_back(FieldColumn::MakeFloatVector(
        field, kDim,
        std::vector<float>(data.Row(begin), data.Row(begin) + 6000 * kDim)));
    if (!db.Insert("products", std::move(eb)).ok()) return;
  }
  if (!db.FlushAndWait("products", 180000).ok()) return;

  AutoScalerPolicy policy;
  policy.min_nodes = 2;  // Never below the replica factor.
  policy.max_nodes = 8;
  AutoScaler scaler(&db, policy);

  struct Job {
    int64_t enqueue_us;
    int64_t query_row;
  };
  Channel<Job> jobs;
  auto hist = std::make_shared<LatencyHistogram>();
  std::atomic<int64_t> done{0};
  std::atomic<int64_t> failed{0};
  std::atomic<int64_t> rejected{0};
  // Coverage is accumulated in basis points so a plain atomic works.
  std::atomic<int64_t> coverage_bp_sum{0};
  std::atomic<int64_t> min_coverage_bp{10000};
  std::vector<std::thread> workers;
  for (int32_t w = 0; w < 48; ++w) {
    workers.emplace_back([&] {
      while (auto job = jobs.Pop()) {
        SearchRequest req;
        req.collection = "products";
        const float* q = data.Row(job->query_row % rows);
        req.query.assign(q, q + kDim);
        req.k = 50;
        req.nprobe = 8;
        req.consistency = ConsistencyLevel::kEventually;
        req.allow_partial = true;
        auto res = db.Search(req);
        if (res.ok()) {
          const int64_t bp =
              static_cast<int64_t>(res.value().coverage * 10000.0);
          coverage_bp_sum.fetch_add(bp, std::memory_order_relaxed);
          int64_t seen = min_coverage_bp.load(std::memory_order_relaxed);
          while (bp < seen &&
                 !min_coverage_bp.compare_exchange_weak(seen, bp)) {
          }
          done.fetch_add(1, std::memory_order_relaxed);
        } else if (res.status().code() == StatusCode::kResourceExhausted) {
          // Brownout shed with retry-after: availability preserved, load
          // rejected — accounted separately from hard failures.
          rejected.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
        hist->Observe(static_cast<double>(NowMicros() - job->enqueue_us));
      }
    });
  }

  auto* placement = db.query_coord()->placement();
  const double kPeakQps = 80.0;
  const int32_t kKillHour = 12;
  int64_t kill_us = -1;
  size_t fleet_before_kill = 0;
  bool kill_detected = false;
  double kill_detect_ms = -1.0;
  double redundancy_restore_ms = -1.0;

  bench::BenchReport report("fig9_diurnal");
  bench::Table table({"hour", "offered_qps", "ok_qps", "failed", "rejected",
                      "shed", "mean_ms", "coverage", "nodes", "stage",
                      "under_repl"});
  int64_t q = 0;
  for (int32_t hour = 0; hour < 48; ++hour) {
    const double target_qps = kPeakQps * DiurnalShape(hour);
    hist->Reset();
    done.store(0, std::memory_order_relaxed);
    failed.store(0, std::memory_order_relaxed);
    rejected.store(0, std::memory_order_relaxed);
    coverage_bp_sum.store(0, std::memory_order_relaxed);
    int64_t shed = 0;

    if (hour == kKillHour) {
      // Abrupt kill at the traffic peak: the watchdog detects it, the
      // reconciler re-replicates onto the survivors.
      auto nodes = db.query_coord()->Nodes();
      if (!nodes.empty()) {
        fleet_before_kill = nodes.size();
        (void)db.CrashQueryNode(nodes.back()->id());
        kill_us = NowMicros();
        std::printf("hour %d: killed query node %lld at peak\n", hour,
                    static_cast<long long>(nodes.back()->id()));
      }
    }

    const int64_t t0 = NowMicros();
    const int64_t gap_us =
        static_cast<int64_t>(1e6 / std::max(1.0, target_qps));
    int64_t next_probe_us = t0;
    while (NowMicros() - t0 < kDiurnalHourMs * 1000) {
      if (jobs.Size() < 64) {
        jobs.Push({NowMicros(), q++});
      } else {
        ++shed;
      }
      // Redundancy-restore clock, two phases polled off the dispatch loop
      // (bounded to one probe per 50 ms): first the watchdog must evict
      // the corpse (fleet shrinks / groups go under-replicated), then the
      // reconciler must top every group back up.
      const int64_t now = NowMicros();
      if (kill_us >= 0 && redundancy_restore_ms < 0 &&
          now >= next_probe_us) {
        next_probe_us = now + 50000;
        if (!kill_detected) {
          if (db.NumQueryNodes() < fleet_before_kill ||
              placement->UnderReplicatedCount() > 0) {
            kill_detected = true;
            kill_detect_ms = static_cast<double>(now - kill_us) / 1000.0;
          }
        } else if (placement->UnderReplicatedCount() == 0) {
          redundancy_restore_ms =
              static_cast<double>(now - kill_us) / 1000.0;
        }
      }
      std::this_thread::sleep_for(std::chrono::microseconds(gap_us));
    }
    const double elapsed_s = static_cast<double>(NowMicros() - t0) / 1e6;
    const double mean_ms = hist->Mean() / 1000.0;
    const int64_t ok = done.load();
    const double coverage =
        ok > 0 ? static_cast<double>(coverage_bp_sum.load()) / (10000.0 * ok)
               : 1.0;
    const int64_t under = placement->UnderReplicatedCount();
    const int32_t stage = db.proxy()->admission().stage();
    const int32_t nodes = scaler.Evaluate(mean_ms);
    table.AddRow({std::to_string(hour), bench::Fmt(target_qps, 0),
                  bench::Fmt(static_cast<double>(ok) / elapsed_s, 0),
                  std::to_string(failed.load()),
                  std::to_string(rejected.load()), std::to_string(shed),
                  bench::Fmt(mean_ms, 1), bench::Fmt(coverage, 3),
                  std::to_string(nodes), std::to_string(stage),
                  std::to_string(under)});
    char key[16];
    std::snprintf(key, sizeof(key), "h%02d", hour);
    report.Add(key,
               {{"offered_qps", target_qps},
                {"ok_qps", static_cast<double>(ok) / elapsed_s},
                {"failed", static_cast<double>(failed.load())},
                {"rejected", static_cast<double>(rejected.load())},
                {"shed", static_cast<double>(shed)},
                {"mean_ms", mean_ms},
                {"coverage", coverage},
                {"nodes", static_cast<double>(nodes)},
                {"stage", static_cast<double>(stage)},
                {"under_replicated", static_cast<double>(under)}});
  }
  jobs.Close();
  for (auto& w : workers) w.join();
  table.Print();

  report.Add("kill_episode",
             {{"kill_hour", static_cast<double>(kKillHour)},
              {"kill_detect_ms", kill_detect_ms},
              {"redundancy_restore_ms", redundancy_restore_ms},
              {"min_coverage",
               static_cast<double>(min_coverage_bp.load()) / 10000.0}});
  report.WriteIfRequested();
  std::printf(
      "\nkill at hour %d: detected in %.0f ms, redundancy restored in "
      "%.0f ms, min coverage %.3f\nexpected shape: node count tracks both "
      "days' curves; the kill dents neither availability (hard failures "
      "stay near 0 — rejected = brownout shed with retry-after) nor "
      "coverage for more than the detection window.\n",
      kKillHour, kill_detect_ms, redundancy_restore_ms,
      static_cast<double>(min_coverage_bp.load()) / 10000.0);
}

}  // namespace
}  // namespace manu

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "diurnal") == 0) {
    manu::RunDiurnal();
  } else {
    manu::Run();
  }
  return 0;
}
