// Figure 8 reproduction: recall vs single-node query throughput for Manu
// against ES-like (disk IVF), Vearch-like (three-layer aggregation),
// Vald-like (kNN graph, scalar kernels) and Vespa-like (HNSW with
// virtually dispatched kernels). The paper uses SIFT10M (L2) and DEEP10M
// (IP); we run matched-structure synthetic datasets at laptop scale and
// check the *ordering*: Manu > Vespa/Vald >> Vearch > ES.

#include <cctype>
#include <cstdio>
#include <string>

#include "baselines/engine.h"
#include "bench/bench_util.h"

namespace manu {
namespace {

// Dataset label -> JSON-key fragment ("SIFT-like, L2" -> "sift_like_l2").
std::string KeyFragment(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

void RunDataset(const char* label, const VectorDataset& data,
                const SyntheticOptions& opts, bench::BenchReport* report) {
  const size_t k = 50;  // Paper: top-50.
  const int64_t num_queries = 128;
  VectorDataset queries = MakeQueries(opts, num_queries, 7);
  auto truth = BruteForceGroundTruth(data, queries, k);

  std::printf("\n== Figure 8 (%s): recall@50 vs QPS, %lld rows, dim=%d ==\n",
              label, static_cast<long long>(data.NumRows()), data.dim);

  std::vector<std::unique_ptr<SearchEngine>> engines;
  engines.push_back(MakeManuEngine(IndexType::kIvfFlat));
  engines.push_back(MakeManuEngine(IndexType::kHnsw));
  engines.push_back(MakeEsLikeEngine());
  engines.push_back(MakeVearchLikeEngine());
  engines.push_back(MakeValdLikeEngine());
  engines.push_back(MakeVespaLikeEngine());

  bench::Table table({"engine", "knob", "recall@50", "qps"});
  const double knobs[] = {0.02, 0.1, 0.3, 0.7};
  for (auto& engine : engines) {
    Status st = engine->Build(data);
    if (!st.ok()) {
      std::printf("%s: build failed: %s\n", engine->name().c_str(),
                  st.ToString().c_str());
      continue;
    }
    for (double knob : knobs) {
      // Recall pass.
      double recall_sum = 0;
      for (int64_t q = 0; q < num_queries; ++q) {
        auto hits = engine->Search(queries.Row(q), k, knob);
        if (hits.ok()) recall_sum += RecallAtK(hits.value(), truth[q], k);
      }
      // Throughput pass (4 client threads, like concurrent app requests).
      auto tp = bench::MeasureThroughput(
          4, 1200, [&](int32_t, int64_t i) {
            (void)engine->Search(queries.Row(i % num_queries), k, knob);
          });
      const double recall = recall_sum / num_queries;
      table.AddRow({engine->name(), bench::Fmt(knob, 2),
                    bench::Fmt(recall, 3), bench::Fmt(tp.qps, 0)});
      report->Add(KeyFragment(label) + "." + KeyFragment(engine->name()) +
                      ".knob_" + bench::Fmt(knob, 2),
                  {{"recall_at_50", recall},
                   {"qps", tp.qps},
                   {"p99_ms", tp.p99_ms}});
    }
  }
  table.Print();
}

void Run(bench::BenchReport* report) {
  // The paper runs SIFT10M/DEEP10M on an EC2 fleet; the graph builds alone
  // would take hours here, so the default scale keeps the same clustered
  // structure at 30k rows (MANU_BENCH_SCALE multiplies it).
  // Many small, overlapping clusters: top-50 neighbor sets straddle
  // clusters, so the recall/throughput knob actually trades (a single-blob
  // or few-cluster dataset saturates recall at 1.0 for every engine).
  {
    SyntheticOptions opts;
    opts.num_rows = bench::Scaled(30000);
    opts.dim = 128;
    opts.num_clusters = 1000;
    opts.cluster_spread = 0.25;
    opts.metric = MetricType::kL2;
    RunDataset("SIFT-like, L2", MakeClusteredDataset(opts), opts, report);
  }
  {
    SyntheticOptions opts;
    opts.num_rows = bench::Scaled(30000);
    opts.dim = 96;
    opts.num_clusters = 1000;
    opts.cluster_spread = 0.3;
    opts.normalize = true;
    opts.metric = MetricType::kInnerProduct;
    RunDataset("DEEP-like, IP", MakeClusteredDataset(opts), opts, report);
  }
}

}  // namespace
}  // namespace manu

int main() {
  manu::bench::BenchReport report("fig8_recall_throughput");
  manu::Run(&report);
  report.WriteIfRequested();
  return 0;
}
