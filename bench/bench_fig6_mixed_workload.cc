// Figure 6 reproduction: mixed insert + search workload, Manu vs a
// Milvus-1.x-style configuration. Vectors stream in at a fixed rate while
// a client measures search latency over time. In the paper, Milvus' write
// node cannot keep index building ahead of ingestion, so "brute force
// search is used for a large amount of data" and latency climbs with the
// insert rate; Manu keeps the un-indexed working set cheap to search.
//
// Both sides run the same in-process pipeline (identical ingestion,
// sealing and index-build capacity — on this single-core host every
// simulated service shares one CPU, so holding the machinery equal is the
// only fair isolation). The Milvus-like configuration disables Manu's
// growing-segment slice indexes, so its backlog is searched raw — the
// paper's mechanism. The standalone `MilvusLike` class in src/baselines
// models the full single-write-node architecture and is exercised by the
// unit tests.

#include <cstdio>

#include <limits>

#include "bench/bench_util.h"
#include "core/manu.h"

namespace manu {
namespace {

constexpr int32_t kDim = 256;
constexpr int64_t kSealRows = 8000;
// Long enough that the un-indexed backlog reaches a size where brute-force
// search visibly hurts (the paper runs for minutes at the same rates).
constexpr int64_t kRunSeconds = 30;
constexpr int64_t kWindowMs = 5000;

IndexParams Fig6Index() {
  // A substantial build (large nlist, full Lloyd iterations): the Figure 6
  // mechanism needs index construction to cost real time relative to the
  // insert rate, as it does at the paper's scale. Both systems build the
  // same index with the same single-threaded capacity; the difference is
  // what searches pay while builds lag (Manu: slice temp indexes;
  // Milvus-like: raw brute force).
  IndexParams params;
  params.type = IndexType::kIvfFlat;
  params.metric = MetricType::kL2;
  params.dim = kDim;
  params.nlist = 640;
  params.train_iters = 12;
  return params;
}

struct Series {
  std::vector<double> window_ms;  ///< Mean search latency per window.
};

/// Drives a fixed-rate insert stream plus a search client; returns latency
/// per window.
template <typename InsertFn, typename SearchFn>
Series Drive(int64_t rate, const VectorDataset& pool, InsertFn insert,
             SearchFn search) {
  Series out;
  std::atomic<bool> stop{false};
  std::thread inserter([&] {
    int64_t next_pk = 0;
    const int64_t batch = std::max<int64_t>(1, rate / 20);  // 50 ms batches.
    while (!stop.load(std::memory_order_relaxed)) {
      const int64_t t0 = NowMicros();
      std::vector<int64_t> pks(batch);
      std::vector<float> vecs(batch * kDim);
      for (int64_t i = 0; i < batch; ++i) {
        const int64_t row = (next_pk + i) % pool.NumRows();
        pks[i] = next_pk + i;
        std::copy(pool.Row(row), pool.Row(row) + kDim,
                  vecs.data() + i * kDim);
      }
      next_pk += batch;
      insert(std::move(pks), std::move(vecs));
      const int64_t spent = NowMicros() - t0;
      const int64_t budget = 1000000 * batch / rate;
      if (spent < budget) {
        std::this_thread::sleep_for(std::chrono::microseconds(budget - spent));
      }
    }
  });

  const int64_t start = NowMicros();
  LatencyHistogram window;
  int64_t window_end = start + kWindowMs * 1000;
  while (NowMicros() - start < kRunSeconds * 1000000) {
    const int64_t q = (NowMicros() / 37) % pool.NumRows();
    const int64_t t0 = NowMicros();
    search(pool.Row(q));
    window.Observe(static_cast<double>(NowMicros() - t0));
    if (NowMicros() >= window_end) {
      out.window_ms.push_back(window.Mean() / 1000.0);
      window.Reset();
      window_end += kWindowMs * 1000;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true, std::memory_order_relaxed);
  inserter.join();
  return out;
}

Series RunManu(int64_t rate, const VectorDataset& pool, bool slices) {
  ManuConfig config;
  config.num_shards = 2;
  config.segment_seal_rows = kSealRows;
  config.segment_idle_seal_ms = 2000;
  // Manu: temp IVF per 2048-row slice (nlist 32; a slice must be well
  // under the seal size or no slice ever fills). Milvus-like: no temporary
  // indexes — the growing/unindexed backlog is brute-forced.
  config.slice_rows =
      slices ? 2048 : std::numeric_limits<int64_t>::max();
  config.time_tick_interval_ms = 20;
  config.num_query_nodes = 2;
  config.num_data_nodes = 1;
  // One single-threaded index node: on this one-core host both systems get
  // identical aggregate build capacity, isolating the architectural
  // difference rather than granting Manu phantom parallel hardware.
  config.num_index_nodes = 1;
  config.index_build_threads = 1;
  ManuInstance db(config);

  CollectionSchema schema("stream");
  FieldSchema vec;
  vec.name = "v";
  vec.type = DataType::kFloatVector;
  vec.dim = kDim;
  auto add = schema.AddField(vec);
  auto meta = db.CreateCollection(std::move(schema));
  (void)add;
  if (!meta.ok()) return {};
  (void)db.CreateIndex("stream", "v", Fig6Index());
  const FieldId field = meta.value().schema.FieldByName("v")->id;

  return Drive(
      rate, pool,
      [&](std::vector<int64_t> pks, std::vector<float> vecs) {
        EntityBatch batch;
        batch.primary_keys = std::move(pks);
        batch.columns.push_back(
            FieldColumn::MakeFloatVector(field, kDim, std::move(vecs)));
        (void)db.Insert("stream", std::move(batch));
      },
      [&](const float* query) {
        SearchRequest req;
        req.collection = "stream";
        req.query.assign(query, query + kDim);
        req.k = 50;
        req.nprobe = 8;
        req.consistency = ConsistencyLevel::kEventually;
        (void)db.Search(req);
      });
}



void Run() {
  SyntheticOptions opts;
  opts.num_rows = 150000;
  opts.dim = kDim;
  opts.num_clusters = 64;
  VectorDataset pool = MakeClusteredDataset(opts);

  std::printf(
      "== Figure 6: search latency (ms) over time under streaming inserts "
      "==\n(each row: one %llds window; columns: insert rate)\n\n",
      static_cast<long long>(kWindowMs / 1000));

  const int64_t rates[] = {1000, 2000, 3000, 4000};
  std::vector<Series> manu_series, milvus_series;
  for (int64_t rate : rates) {
    std::printf("running manu @ %lldk inserts/s...\n",
                static_cast<long long>(rate / 1000));
    manu_series.push_back(RunManu(rate, pool, /*slices=*/true));
    std::printf("running milvus-like @ %lldk inserts/s...\n",
                static_cast<long long>(rate / 1000));
    milvus_series.push_back(RunManu(rate, pool, /*slices=*/false));
  }

  bench::Table table({"window", "manu_1k", "milvus_1k", "manu_2k",
                      "milvus_2k", "manu_3k", "milvus_3k", "manu_4k",
                      "milvus_4k"});
  size_t windows = 0;
  for (const auto& s : manu_series) windows = std::max(windows, s.window_ms.size());
  for (size_t w = 0; w < windows; ++w) {
    std::vector<std::string> row;
    row.push_back("t" + std::to_string(w * kWindowMs / 1000) + "s");
    for (size_t r = 0; r < 4; ++r) {
      row.push_back(w < manu_series[r].window_ms.size()
                        ? bench::Fmt(manu_series[r].window_ms[w])
                        : "-");
      row.push_back(w < milvus_series[r].window_ms.size()
                        ? bench::Fmt(milvus_series[r].window_ms[w])
                        : "-");
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  // Summary: steady-state latency (mean of the last half of the windows —
  // the paper's curves are read at their right edge, after backlogs form).
  std::printf("\n-- steady-state latency (ms, last half of run) --\n");
  bench::Table summary({"rate", "manu", "milvus_like", "milvus/manu"});
  for (size_t r = 0; r < 4; ++r) {
    auto mean = [](const Series& s) {
      if (s.window_ms.empty()) return 0.0;
      const size_t from = s.window_ms.size() / 2;
      double sum = 0;
      for (size_t i = from; i < s.window_ms.size(); ++i) {
        sum += s.window_ms[i];
      }
      return sum / static_cast<double>(s.window_ms.size() - from);
    };
    const double m = mean(manu_series[r]);
    const double v = mean(milvus_series[r]);
    summary.AddRow({std::to_string(rates[r]) + "/s", bench::Fmt(m),
                    bench::Fmt(v), bench::Fmt(m > 0 ? v / m : 0, 1)});
  }
  summary.Print();
}

}  // namespace
}  // namespace manu

int main() {
  manu::Run();
  return 0;
}
