// Overload / brownout bench: a Zipf-distributed multi-tenant client swarm
// drives the proxy front door (core/admission.h) at escalating multiples of
// the measured saturation rate. Per phase it reports goodput, shed/reject
// counts, the brownout stage reached and admitted-request latency.
//
// Expected shape: goodput plateaus near saturation instead of collapsing
// as offered load grows 1x -> 10x; refusals shift from tenant throttles to
// brownout shedding; admitted p99 stays bounded by the degraded deadlines;
// after the storm the ladder releases to stage 0.

#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/admission.h"
#include "core/manu.h"

namespace manu {
namespace {

constexpr int32_t kDim = 32;
constexpr int32_t kTenants = 16;

/// Zipf(s=1.1) tenant popularity: tenant 0 is the hot whale, the tail is a
/// long crowd of small tenants — the multi-tenant mix where per-tenant
/// buckets matter (one tenant must not starve the rest).
std::vector<double> ZipfCdf(int32_t n, double s) {
  std::vector<double> cdf(n);
  double total = 0;
  for (int32_t i = 0; i < n; ++i) total += 1.0 / std::pow(i + 1, s);
  double acc = 0;
  for (int32_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(i + 1, s) / total;
    cdf[i] = acc;
  }
  return cdf;
}

int32_t DrawTenant(const std::vector<double>& cdf, uint64_t* state) {
  // splitmix64 step -> uniform in [0,1).
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z = z ^ (z >> 31);
  const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
  for (int32_t i = 0; i < static_cast<int32_t>(cdf.size()); ++i) {
    if (u <= cdf[i]) return i;
  }
  return static_cast<int32_t>(cdf.size()) - 1;
}

struct PhaseStats {
  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> shed{0};
  std::atomic<int64_t> other{0};
};

void Run() {
  std::printf("== Overload: Zipf multi-tenant storm vs the admission front "
              "door ==\n");

  ManuConfig config;
  config.num_shards = 2;
  config.num_query_nodes = 2;
  config.query_threads = 2;
  config.segment_seal_rows = 2000;
  config.segment_idle_seal_ms = 300;
  config.time_tick_interval_ms = 10;
  config.sim_segment_search_us = 2000;
  config.admission_max_inflight = 16;
  config.admission_node_inflight = 4;
  config.admission_tenant_qps = 200;  // Generous; the whale still trips it.
  config.admission_tenant_burst = 50;
  config.node_search_deadline_ms = 500;
  config.shed_retry_after_ms = 5;
  config.shed_degraded_deadline_ms = 250;
  ManuInstance db(config);

  CollectionSchema schema("tenants");
  FieldSchema vec;
  vec.name = "v";
  vec.type = DataType::kFloatVector;
  vec.dim = kDim;
  (void)schema.AddField(vec);
  auto meta = db.CreateCollection(std::move(schema));
  if (!meta.ok()) return;
  const FieldId field = meta.value().schema.FieldByName("v")->id;

  const int64_t rows = bench::Scaled(8000);
  SyntheticOptions opts;
  opts.num_rows = rows;
  opts.dim = kDim;
  opts.num_clusters = 16;
  VectorDataset data = MakeClusteredDataset(opts);
  EntityBatch batch;
  for (int64_t i = 0; i < rows; ++i) batch.primary_keys.push_back(i);
  batch.columns.push_back(FieldColumn::MakeFloatVector(
      field, kDim,
      std::vector<float>(data.data.begin(), data.data.end())));
  if (!db.Insert("tenants", std::move(batch)).ok()) return;
  if (!db.FlushAndWait("tenants", 180000).ok()) return;

  const std::vector<double> cdf = ZipfCdf(kTenants, 1.1);

  // Closed-loop swarm: `threads` well-behaved clients (they sleep out the
  // retry-after hint when shed). Returns goodput qps.
  auto swarm = [&](int32_t threads, int64_t duration_ms, PhaseStats* stats,
                   LatencyHistogram* ok_lat) {
    std::vector<std::thread> workers;
    const int64_t t0 = NowMicros();
    const int64_t t_end = NowMs() + duration_ms;
    for (int32_t w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        uint64_t rng = 0x9E3779B9u * (w + 1);
        int64_t n = 0;
        while (NowMs() < t_end) {
          const int32_t tenant = DrawTenant(cdf, &rng);
          SearchRequest req;
          req.collection = "tenants";
          const float* q = data.Row((w * 10007 + n++) % rows);
          req.query.assign(q, q + kDim);
          req.k = 10;
          req.consistency = ConsistencyLevel::kEventually;
          req.tenant = "tenant" + std::to_string(tenant);
          // The tail half of the tenant crowd runs at low priority — the
          // traffic class brownout stage 2 sheds first.
          req.priority = tenant >= kTenants / 2 ? 1 : 0;
          const int64_t s = NowMicros();
          auto res = db.Search(req);
          if (res.ok()) {
            stats->ok.fetch_add(1);
            if (ok_lat != nullptr) {
              ok_lat->Observe(static_cast<double>(NowMicros() - s));
            }
          } else if (res.status().code() ==
                     StatusCode::kResourceExhausted) {
            stats->shed.fetch_add(1);
            int64_t hint =
                AdmissionController::RetryAfterHintMs(res.status());
            if (hint < 1) hint = config.shed_retry_after_ms;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(std::min<int64_t>(hint, 50)));
          } else {
            stats->other.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : workers) t.join();
    return static_cast<double>(stats->ok.load()) /
           (static_cast<double>(NowMicros() - t0) / 1e6);
  };

  // Saturation: a modest swarm below the brownout knee.
  PhaseStats sat_stats;
  LatencyHistogram sat_lat;
  const double sat_qps = swarm(4, 1500, &sat_stats, &sat_lat);
  std::printf("saturation (4 clients): %.0f qps, p99 %.1f ms\n\n", sat_qps,
              sat_lat.Percentile(99) / 1000.0);

  const AdmissionController& adm = db.proxy()->admission();
  bench::Table table({"clients", "offered_x", "goodput_qps", "goodput_frac",
                      "shed", "other", "stage_max", "ok_p99_ms"});
  bench::BenchReport report("overload_brownout");
  report.Add("saturation", {{"qps", sat_qps},
                            {"p99_ms", sat_lat.Percentile(99) / 1000.0}});

  for (int32_t mult : {1, 2, 5, 10}) {
    const int32_t clients = 4 * mult;
    PhaseStats stats;
    LatencyHistogram lat;
    int32_t stage_max = 0;
    std::thread stage_watch([&] {
      const int64_t t_end = NowMs() + 1500;
      while (NowMs() < t_end) {
        stage_max = std::max(stage_max, adm.stage());
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
    const double goodput = swarm(clients, 1500, &stats, &lat);
    stage_watch.join();
    const double frac = sat_qps > 0 ? goodput / sat_qps : 0;
    table.AddRow({std::to_string(clients), std::to_string(mult),
                  bench::Fmt(goodput, 0), bench::Fmt(frac, 2),
                  std::to_string(stats.shed.load()),
                  std::to_string(stats.other.load()),
                  std::to_string(stage_max),
                  bench::Fmt(lat.Percentile(99) / 1000.0, 1)});
    report.Add("offered_" + std::to_string(mult) + "x",
               {{"goodput_qps", goodput},
                {"goodput_frac", frac},
                {"shed", static_cast<double>(stats.shed.load())},
                {"stage_max", static_cast<double>(stage_max)},
                {"ok_p99_ms", lat.Percentile(99) / 1000.0}});
  }
  table.Print();

  // Drain check: the ladder must release once the storm stops.
  int32_t stage_after = adm.stage();
  for (int i = 0; i < 40 && stage_after > 0; ++i) {
    PhaseStats probe;
    (void)swarm(1, 50, &probe, nullptr);
    stage_after = adm.stage();
  }
  std::printf("\npost-storm brownout stage: %d (expect 0)\n", stage_after);
  std::printf("expected shape: goodput_frac stays >= 0.7 through 10x "
              "offered load; shed grows with load while ok_p99_ms stays "
              "bounded by the degraded deadline.\n");
  report.WriteIfRequested();
}

}  // namespace
}  // namespace manu

int main() {
  manu::Run();
  return 0;
}
