// Table 1 reproduction: exercises every index family Manu supports and
// reports build time, memory, QPS and recall@10 for each, on a SIFT-like
// clustered dataset. The paper's Table 1 is a feature list; this bench is
// its executable counterpart, demonstrating that every family works and
// showing their cost/accuracy/memory trade-offs.

#include <cstdio>

#include "bench/bench_util.h"
#include "index/index_factory.h"
#include "index/scalar_index.h"
#include "storage/object_store.h"

namespace manu {
namespace {

void Run() {
  const int64_t rows = bench::Scaled(50000);
  const int64_t num_queries = 200;
  const size_t k = 10;
  std::printf("== Table 1: supported indexes (rows=%lld, dim=128, L2) ==\n",
              static_cast<long long>(rows));

  SyntheticOptions opts;
  opts.num_rows = rows;
  opts.dim = 128;
  opts.num_clusters = 128;
  opts.cluster_spread = 0.12;
  VectorDataset data = MakeClusteredDataset(opts);
  VectorDataset queries = MakeQueries(opts, num_queries, 7);
  auto truth = BruteForceGroundTruth(data, queries, k);

  MemoryObjectStore store;  // For the SSD bucket index.

  struct Case {
    IndexType type;
    int32_t nprobe;
    int32_t ef;
  };
  const Case cases[] = {
      {IndexType::kFlat, 0, 0},      {IndexType::kIvfFlat, 16, 0},
      {IndexType::kIvfHnsw, 16, 0},  {IndexType::kImi, 16, 0},
      {IndexType::kIvfSq, 16, 0},    {IndexType::kIvfPq, 32, 0},
      {IndexType::kSq8, 0, 0},       {IndexType::kPq, 0, 0},
      {IndexType::kRq, 0, 0},        {IndexType::kHnsw, 0, 96},
      {IndexType::kSsdBucket, 48, 0},
  };

  bench::Table table({"index", "build_ms", "mem_MB", "qps", "recall@10"});
  for (const Case& c : cases) {
    IndexParams params;
    params.type = c.type;
    params.metric = MetricType::kL2;
    params.dim = data.dim;
    params.nlist = static_cast<int32_t>(std::max<int64_t>(64, rows / 256));
    // PQ splits dims (16 subquantizers); RQ stages are full-dimension and
    // each costs a 256-way scan per row at encode time, so fewer stages.
    params.pq_m = c.type == IndexType::kRq ? 4 : 16;
    params.hnsw_m = 16;
    params.hnsw_ef_construction = 150;
    params.ssd_replicas = 2;

    const int64_t t0 = NowMicros();
    auto built = BuildVectorIndex(params, data.data.data(), rows, &store,
                                  std::string("ssd/") + ToString(c.type));
    if (!built.ok()) {
      std::printf("%s: build failed: %s\n", ToString(c.type),
                  built.status().ToString().c_str());
      continue;
    }
    const double build_ms =
        static_cast<double>(NowMicros() - t0) / 1000.0;
    const VectorIndex& index = *built.value();

    SearchParams sp;
    sp.k = k;
    sp.nprobe = c.nprobe > 0 ? c.nprobe : 16;
    sp.ef_search = c.ef > 0 ? c.ef : 64;

    double recall_sum = 0;
    const int64_t q0 = NowMicros();
    for (int64_t q = 0; q < num_queries; ++q) {
      auto hits = index.Search(queries.Row(q), sp);
      if (hits.ok()) recall_sum += RecallAtK(hits.value(), truth[q], k);
    }
    const double elapsed_s = static_cast<double>(NowMicros() - q0) / 1e6;

    table.AddRow({ToString(c.type), bench::Fmt(build_ms, 1),
                  bench::Fmt(static_cast<double>(index.MemoryBytes()) / 1e6),
                  bench::Fmt(static_cast<double>(num_queries) / elapsed_s, 0),
                  bench::Fmt(recall_sum / static_cast<double>(num_queries),
                             3)});
  }
  table.Print();

  // Numerical-attribute indexes (the Table 1 bottom row).
  std::printf("\n-- attribute indexes --\n");
  FieldColumn col = FieldColumn::MakeInt64(1, {});
  col.i64.resize(rows);
  for (int64_t i = 0; i < rows; ++i) col.i64[i] = i % 1000;
  ScalarSortedIndex scalar;
  const int64_t s0 = NowMicros();
  (void)scalar.Build(col);
  const double build_ms = static_cast<double>(NowMicros() - s0) / 1000.0;
  ConcurrentBitset bits(static_cast<size_t>(rows));
  const int64_t r0 = NowMicros();
  const int kRangeQueries = 200;
  for (int i = 0; i < kRangeQueries; ++i) {
    bits.Reset();
    scalar.RangeQuery(i, i + 100, &bits);
  }
  std::printf(
      "sorted_list: build_ms=%.1f range_query_us=%.1f selectivity=%.3f\n",
      build_ms,
      static_cast<double>(NowMicros() - r0) / kRangeQueries,
      static_cast<double>(bits.Count()) / static_cast<double>(rows));
}

}  // namespace
}  // namespace manu

int main() {
  manu::Run();
  return 0;
}
