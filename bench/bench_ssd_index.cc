// Section 4.4 reproduction: the SSD bucket index (hierarchical k-means into
// 4 KB buckets, SQ compression, multi-assignment replication, DRAM centroid
// graph) against a naive IVF-on-disk baseline at matched bytes-read budgets.
// The paper reports up to 60% recall improvement over the competition
// baseline at equal throughput; here the budget knob is the number of disk
// reads per query, and the win comes from bucket replication + balanced
// 4 KB-sized buckets.

#include <cstdio>

#include "bench/bench_util.h"
#include "index/index_factory.h"
#include "index/kmeans.h"
#include "index/metric_util.h"
#include "index/ssd_index.h"
#include "storage/object_store.h"

namespace manu {
namespace {

/// Naive disk IVF: same bucket-read cost model (one object-store ranged
/// read per probed list), but plain flat k-means lists (unbalanced sizes),
/// no replication, raw float payloads.
class DiskIvfBaseline {
 public:
  Status Build(const VectorDataset& data, int32_t nlist, ObjectStore* store,
               const std::string& path) {
    dim_ = data.dim;
    metric_ = data.metric;
    store_ = store;
    path_ = path;
    KMeansOptions opts;
    opts.k = nlist;
    opts.max_iters = 8;
    KMeansResult km = KMeans(data.data.data(), data.NumRows(), dim_, opts);
    centroids_ = std::move(km.centroids);
    nlist_ = km.k;
    std::vector<std::string> blobs(nlist_);
    std::vector<std::vector<int64_t>> ids(nlist_);
    for (int64_t i = 0; i < data.NumRows(); ++i) {
      ids[km.assignments[i]].push_back(i);
    }
    std::string all;
    offsets_.resize(nlist_);
    lengths_.resize(nlist_);
    counts_.resize(nlist_);
    for (int32_t c = 0; c < nlist_; ++c) {
      offsets_[c] = all.size();
      counts_[c] = static_cast<uint32_t>(ids[c].size());
      for (int64_t id : ids[c]) {
        all.append(reinterpret_cast<const char*>(&id), sizeof(id));
        all.append(reinterpret_cast<const char*>(data.Row(id)),
                   dim_ * sizeof(float));
      }
      lengths_[c] = all.size() - offsets_[c];
    }
    return store_->Put(path_, all);
  }

  /// Probes best lists until `byte_budget` is spent (device-bytes budget,
  /// the honest throughput proxy). Returns bytes actually read via
  /// `bytes_read`.
  Result<std::vector<Neighbor>> Search(const float* query, size_t k,
                                       uint64_t byte_budget,
                                       uint64_t* bytes_read) const {
    std::vector<std::pair<float, int32_t>> scored(nlist_);
    for (int32_t c = 0; c < nlist_; ++c) {
      scored[c] = {simd::L2Sqr(query,
                               centroids_.data() +
                                   static_cast<size_t>(c) * dim_,
                               dim_),
                   c};
    }
    std::sort(scored.begin(), scored.end());
    *bytes_read = 0;
    TopKHeap heap(k);
    for (int32_t p = 0; p < nlist_; ++p) {
      const int32_t list = scored[p].second;
      // Disk reads are 4 KB-granular regardless of list size.
      const uint64_t cost = (lengths_[list] + 4095) / 4096 * 4096;
      if (*bytes_read + cost > byte_budget && *bytes_read > 0) break;
      *bytes_read += cost;
      MANU_ASSIGN_OR_RETURN(
          std::string blob,
          store_->GetRange(path_, offsets_[list], lengths_[list]));
      const char* ptr = blob.data();
      for (uint32_t i = 0; i < counts_[list]; ++i) {
        int64_t id;
        std::memcpy(&id, ptr, sizeof(id));
        ptr += sizeof(id);
        heap.Push(id, MetricScore(query,
                                  reinterpret_cast<const float*>(ptr), dim_,
                                  metric_));
        ptr += dim_ * sizeof(float);
      }
    }
    return heap.TakeSorted();
  }

 private:
  int32_t dim_ = 0;
  int32_t nlist_ = 0;
  MetricType metric_ = MetricType::kL2;
  ObjectStore* store_ = nullptr;
  std::string path_;
  std::vector<float> centroids_;
  std::vector<uint64_t> offsets_;
  std::vector<uint64_t> lengths_;
  std::vector<uint32_t> counts_;
};

void Run() {
  const int64_t rows = bench::Scaled(60000);
  const size_t k = 10;
  std::printf(
      "== Section 4.4: SSD bucket index vs naive disk IVF (rows=%lld, "
      "dim=96) ==\n",
      static_cast<long long>(rows));

  SyntheticOptions opts;
  opts.num_rows = rows;
  opts.dim = 96;
  opts.num_clusters = 96;
  opts.cluster_spread = 0.15;
  VectorDataset data = MakeClusteredDataset(opts);
  VectorDataset queries = MakeQueries(opts, 128, 7);
  auto truth = BruteForceGroundTruth(data, queries, k);

  MemoryObjectStore store;

  IndexParams params;
  params.type = IndexType::kSsdBucket;
  params.metric = MetricType::kL2;
  params.dim = data.dim;
  params.ssd_bucket_bytes = 4096;
  params.ssd_replicas = 2;
  SsdBucketIndex ssd(params, &store, "ssd/buckets");
  int64_t t0 = NowMicros();
  if (auto st = ssd.Build(data.data.data(), rows); !st.ok()) {
    std::printf("ssd build failed: %s\n", st.ToString().c_str());
    return;
  }
  const double ssd_build_s = static_cast<double>(NowMicros() - t0) / 1e6;

  // The baseline gets the same coarse granularity (one replica's worth of
  // partitions); the comparison knob is the per-query device-bytes budget.
  const int32_t nlist = static_cast<int32_t>(
      std::max<int64_t>(16, ssd.NumBuckets() / params.ssd_replicas));
  DiskIvfBaseline baseline;
  t0 = NowMicros();
  if (auto st = baseline.Build(data, nlist, &store, "disk_ivf/lists");
      !st.ok()) {
    std::printf("baseline build failed: %s\n", st.ToString().c_str());
    return;
  }
  const double base_build_s = static_cast<double>(NowMicros() - t0) / 1e6;

  std::printf("ssd: buckets=%lld dram=%.1fMB ssd=%.1fMB build=%.1fs | "
              "disk_ivf: nlist=%d build=%.1fs\n\n",
              static_cast<long long>(ssd.NumBuckets()),
              static_cast<double>(ssd.MemoryBytes()) / 1e6,
              static_cast<double>(ssd.SsdBytes()) / 1e6, ssd_build_s, nlist,
              base_build_s);

  // Equal device-bytes budgets: throughput on an SSD is bytes/second, so
  // recall at a fixed per-query byte budget is the paper's "recall at the
  // same query processing throughput". The SSD index's SQ compression packs
  // ~4x more vectors per byte and its multi-assignment covers border
  // vectors, which is where the gain comes from.
  bench::Table table({"KB/query", "ssd_recall@10", "ivf_recall@10",
                      "ssd_gain"});
  for (uint64_t budget_kb : {16, 32, 64, 128, 256}) {
    const uint64_t budget = budget_kb * 1024;
    double ssd_recall = 0, base_recall = 0;
    for (int64_t q = 0; q < queries.NumRows(); ++q) {
      SearchParams sp;
      sp.k = k;
      sp.nprobe = static_cast<int32_t>(budget / 4096);  // 4 KB per bucket.
      auto hits = ssd.Search(queries.Row(q), sp);
      if (hits.ok()) ssd_recall += RecallAtK(hits.value(), truth[q], k);
      uint64_t bytes_read = 0;
      auto bhits = baseline.Search(queries.Row(q), k, budget, &bytes_read);
      if (bhits.ok()) base_recall += RecallAtK(bhits.value(), truth[q], k);
    }
    ssd_recall /= static_cast<double>(queries.NumRows());
    base_recall /= static_cast<double>(queries.NumRows());
    table.AddRow({std::to_string(budget_kb), bench::Fmt(ssd_recall, 3),
                  bench::Fmt(base_recall, 3),
                  bench::Fmt(base_recall > 0
                                 ? (ssd_recall - base_recall) / base_recall *
                                       100.0
                                 : 0,
                             1) +
                      "%"});
  }
  table.Print();
}

}  // namespace
}  // namespace manu

int main() {
  manu::Run();
  return 0;
}
