// Figure 11 reproduction: query throughput vs data volume with fixed
// resources (2 query nodes). With segment size fixed, each query node
// handles proportionally more segments as the collection grows, so QPS
// falls as ~1/volume — the paper's observation, including the note that
// larger segments would beat the reciprocal thanks to sub-linear index
// search complexity (shown here as a second sweep).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/manu.h"

namespace manu {
namespace {

constexpr int32_t kDim = 64;

double MeasureQps(int64_t rows, int64_t seal_rows) {
  ManuConfig config;
  config.num_shards = 2;
  config.segment_seal_rows = seal_rows;
  config.segment_idle_seal_ms = 500;
  config.slice_rows = 2048;
  config.num_query_nodes = 2;
  config.num_index_nodes = 2;
  config.index_build_threads = 4;
  config.query_threads = 2;
  // Serial scan pinned to keep the data-scaling curve on the original
  // calibration (per-query cost = sim * segments); see bench_fig10.
  config.parallel_search = false;
  config.sim_segment_search_us = 1500;
  ManuInstance db(config);

  CollectionSchema schema("corpus");
  FieldSchema vec;
  vec.name = "v";
  vec.type = DataType::kFloatVector;
  vec.dim = kDim;
  (void)schema.AddField(vec);
  auto meta = db.CreateCollection(std::move(schema));
  if (!meta.ok()) return 0;
  IndexParams index;
  index.type = IndexType::kIvfFlat;
  // nlist scales with segment size so per-probe scan cost stays constant —
  // the sub-linear index behaviour the paper's footnote relies on.
  index.nlist = static_cast<int32_t>(std::max<int64_t>(64, seal_rows / 256));
  (void)db.CreateIndex("corpus", "v", index);
  const FieldId field = meta.value().schema.FieldByName("v")->id;

  SyntheticOptions opts;
  opts.num_rows = rows;
  opts.dim = kDim;
  opts.num_clusters = 64;
  VectorDataset data = MakeClusteredDataset(opts);
  VectorDataset queries = MakeQueries(opts, 256, 7);

  const int64_t batch = 10000;
  for (int64_t begin = 0; begin < rows; begin += batch) {
    const int64_t end = std::min(rows, begin + batch);
    EntityBatch eb;
    for (int64_t i = begin; i < end; ++i) eb.primary_keys.push_back(i);
    eb.columns.push_back(FieldColumn::MakeFloatVector(
        field, kDim,
        std::vector<float>(data.Row(begin),
                           data.Row(begin) + (end - begin) * kDim)));
    if (!db.Insert("corpus", std::move(eb)).ok()) return 0;
  }
  if (!db.FlushAndWait("corpus", 180000).ok()) return 0;

  auto tp = bench::MeasureThroughput(24, 2500, [&](int32_t, int64_t i) {
    SearchRequest req;
    req.collection = "corpus";
    const float* q = queries.Row(i % queries.NumRows());
    req.query.assign(q, q + kDim);
    req.k = 50;
    req.nprobe = 16;
    req.consistency = ConsistencyLevel::kEventually;
    (void)db.Search(req);
  });
  return tp.qps;
}

void Run() {
  std::printf(
      "== Figure 11: QPS vs data volume (2 query nodes, calibrated per-node "
      "service times) ==\n");

  const int64_t volumes[] = {bench::Scaled(20000), bench::Scaled(40000),
                             bench::Scaled(80000), bench::Scaled(160000)};

  bench::Table table({"rows", "qps_fixed_seg", "norm_fixed",
                      "qps_grown_seg", "norm_grown"});
  double base_fixed = 0, base_grown = 0;
  for (int64_t rows : volumes) {
    // Fixed segment size: segment count grows with volume.
    const double fixed = MeasureQps(rows, volumes[0] / 4);
    // Segment size grown with volume: constant segment count (the paper's
    // "better scalability ... by configuring Manu to use larger segments").
    const double grown = MeasureQps(rows, rows / 4);
    if (base_fixed == 0) base_fixed = fixed;
    if (base_grown == 0) base_grown = grown;
    table.AddRow({std::to_string(rows), bench::Fmt(fixed, 0),
                  bench::Fmt(fixed / base_fixed, 2), bench::Fmt(grown, 0),
                  bench::Fmt(grown / base_grown, 2)});
  }
  table.Print();
}

}  // namespace
}  // namespace manu

int main() {
  manu::Run();
  return 0;
}
