// Figure 13 reproduction: index construction time vs data volume. Manu
// builds per-segment indexes, so total build work grows linearly with the
// number of segments — measured end-to-end through the pipeline (data
// nodes seal, index nodes build) and per-index.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "core/manu.h"

namespace manu {
namespace {

constexpr int32_t kDim = 64;

double MeasureBuildSeconds(int64_t rows, IndexType type) {
  ManuConfig config;
  config.num_shards = 2;
  config.segment_seal_rows = 10000;
  config.segment_idle_seal_ms = 300;
  config.slice_rows = 4096;
  config.num_index_nodes = 1;
  config.index_build_threads = 1;  // Serial builds: clean time accounting.
  ManuInstance db(config);

  CollectionSchema schema("corpus");
  FieldSchema vec;
  vec.name = "v";
  vec.type = DataType::kFloatVector;
  vec.dim = kDim;
  (void)schema.AddField(vec);
  auto meta = db.CreateCollection(std::move(schema));
  if (!meta.ok()) return 0;
  const FieldId field = meta.value().schema.FieldByName("v")->id;

  SyntheticOptions opts;
  opts.num_rows = rows;
  opts.dim = kDim;
  VectorDataset data = MakeClusteredDataset(opts);
  const int64_t batch = 10000;
  for (int64_t begin = 0; begin < rows; begin += batch) {
    const int64_t end = std::min(rows, begin + batch);
    EntityBatch eb;
    for (int64_t i = begin; i < end; ++i) eb.primary_keys.push_back(i);
    eb.columns.push_back(FieldColumn::MakeFloatVector(
        field, kDim,
        std::vector<float>(data.Row(begin),
                           data.Row(begin) + (end - begin) * kDim)));
    if (!db.Insert("corpus", std::move(eb)).ok()) return 0;
  }

  // Batch indexing (the Figure 13 scenario: "update of the entire dataset
  // ... requires to rebuild index"): declare the index after ingest, then
  // time until every segment is indexed and loaded.
  IndexParams index;
  index.type = type;
  index.nlist = 64;
  index.hnsw_m = 12;
  index.hnsw_ef_construction = 80;
  // Measure pure index-build work through the node's latency histogram:
  // wall time would include the fixed flush/load pipeline overhead, which
  // at small volumes hides the linear trend the figure is about.
  auto* hist =
      MetricsRegistry::Global().GetHistogram("index_node.build_latency");
  hist->Reset();
  if (!db.CreateIndex("corpus", "v", index).ok()) return 0;
  if (!db.FlushAndWait("corpus", 600000).ok()) return 0;
  return hist->Mean() * static_cast<double>(hist->Count()) / 1e6;
}

void Run() {
  std::printf("== Figure 13: index build time vs data volume ==\n");
  const int64_t volumes[] = {bench::Scaled(20000), bench::Scaled(40000),
                             bench::Scaled(80000), bench::Scaled(160000)};
  bench::Table table({"rows", "ivf_flat_s", "ivf_norm", "hnsw_s",
                      "hnsw_norm"});
  double base_ivf = 0, base_hnsw = 0;
  for (int64_t rows : volumes) {
    const double ivf = MeasureBuildSeconds(rows, IndexType::kIvfFlat);
    const double hnsw = MeasureBuildSeconds(rows, IndexType::kHnsw);
    if (base_ivf == 0) base_ivf = ivf;
    if (base_hnsw == 0) base_hnsw = hnsw;
    table.AddRow({std::to_string(rows), bench::Fmt(ivf),
                  bench::Fmt(base_ivf > 0 ? ivf / base_ivf : 0, 2),
                  bench::Fmt(hnsw),
                  bench::Fmt(base_hnsw > 0 ? hnsw / base_hnsw : 0, 2)});
  }
  table.Print();
  std::printf("\nexpected shape: build time linear in volume "
              "(norm column ~ rows ratio 1,2,4,8).\n");
}

}  // namespace
}  // namespace manu

int main() {
  manu::Run();
  return 0;
}
