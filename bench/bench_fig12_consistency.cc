// Figure 12 reproduction: average search latency vs the user's staleness
// tolerance ("grace time" tau), one curve per time-tick interval. With a
// write stream active, a query with small tau must wait until its node has
// consumed a time-tick close enough to the query's timestamp; longer grace
// time or finer ticks shorten that wait.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/manu.h"

namespace manu {
namespace {

constexpr int32_t kDim = 32;

std::vector<double> RunInterval(int64_t tick_ms,
                                const std::vector<int64_t>& grace_ms,
                                const VectorDataset& pool) {
  ManuConfig config;
  config.num_shards = 2;
  config.segment_seal_rows = 100000;  // Keep everything growing.
  config.segment_idle_seal_ms = 60000;
  config.slice_rows = 2048;
  config.time_tick_interval_ms = tick_ms;
  config.num_query_nodes = 2;
  ManuInstance db(config);

  CollectionSchema schema("viruses");
  FieldSchema vec;
  vec.name = "sig";
  vec.type = DataType::kFloatVector;
  vec.dim = kDim;
  (void)schema.AddField(vec);
  auto meta = db.CreateCollection(std::move(schema));
  if (!meta.ok()) return {};
  const FieldId field = meta.value().schema.FieldByName("sig")->id;

  // Streaming updates: new virus signatures arrive continuously.
  std::atomic<bool> stop{false};
  std::thread inserter([&] {
    int64_t pk = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      EntityBatch batch;
      const int64_t n = 25;
      std::vector<float> vecs(n * kDim);
      for (int64_t i = 0; i < n; ++i) {
        const int64_t row = (pk + i) % pool.NumRows();
        batch.primary_keys.push_back(pk + i);
        std::copy(pool.Row(row), pool.Row(row) + kDim,
                  vecs.data() + i * kDim);
      }
      pk += n;
      batch.columns.push_back(
          FieldColumn::MakeFloatVector(field, kDim, std::move(vecs)));
      (void)db.Insert("viruses", std::move(batch));
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));  // Warm up.

  std::vector<double> latency_ms;
  for (int64_t grace : grace_ms) {
    LatencyHistogram hist;
    const int64_t t_end = NowMicros() + 1500 * 1000;
    int64_t i = 0;
    while (NowMicros() < t_end) {
      SearchRequest req;
      req.collection = "viruses";
      const float* q = pool.Row(i++ % pool.NumRows());
      req.query.assign(q, q + kDim);
      req.k = 10;
      req.consistency = ConsistencyLevel::kBounded;
      req.staleness_ms = grace;
      const int64_t t0 = NowMicros();
      (void)db.Search(req);
      hist.Observe(static_cast<double>(NowMicros() - t0));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    latency_ms.push_back(hist.Mean() / 1000.0);
  }
  stop.store(true, std::memory_order_relaxed);
  inserter.join();
  return latency_ms;
}

void Run() {
  std::printf(
      "== Figure 12: search latency (ms) vs grace time tau, per time-tick "
      "interval ==\n");

  SyntheticOptions opts;
  opts.num_rows = 20000;
  opts.dim = kDim;
  VectorDataset pool = MakeClusteredDataset(opts);

  const std::vector<int64_t> grace_ms = {0, 10, 25, 50, 100, 200};
  const int64_t intervals[] = {10, 25, 50, 100};

  bench::Table table({"tick_interval", "tau=0", "tau=10", "tau=25", "tau=50",
                      "tau=100", "tau=200"});
  for (int64_t interval : intervals) {
    std::vector<double> lat = RunInterval(interval, grace_ms, pool);
    std::vector<std::string> row;
    row.push_back(std::to_string(interval) + "ms");
    for (double v : lat) row.push_back(bench::Fmt(v));
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nexpected shape: latency falls as tau grows; finer tick intervals "
      "give lower latency at small tau.\n");
}

}  // namespace
}  // namespace manu

int main() {
  manu::Run();
  return 0;
}
