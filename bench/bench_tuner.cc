// Section 4.2 reproduction: BOHB-style automatic index-parameter search vs
// pure random search. BOHB spends most of its trial budget on cheap
// small-sample rungs and focuses sampling near elite configurations, so at
// equal (or smaller) total build cost it should find configurations with
// higher utility (recall-gated QPS).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/tuner.h"

namespace manu {
namespace {

int64_t TotalRows(const std::vector<TunerTrial>& trials) {
  int64_t total = 0;
  for (const auto& t : trials) total += t.budget_rows;
  return total;
}

void RunFamily(IndexType type, const VectorDataset& data) {
  TunerOptions opts;
  opts.type = type;
  opts.max_trials = 18;
  opts.min_budget_rows = 2000;
  opts.max_budget_rows = std::min<int64_t>(data.NumRows(), 16000);
  opts.eval_queries = 48;
  opts.seed = 17;

  IndexAutoTuner tuner(opts);
  auto bohb = tuner.Tune(data);
  auto random = tuner.RandomSearch(data);
  if (!bohb.ok() || !random.ok()) {
    std::printf("%s: tuner failed\n", ToString(type));
    return;
  }
  const TunerTrial& b = bohb.value().front();
  const TunerTrial& r = random.value().front();
  std::printf(
      "%-8s | BOHB: util=%8.1f recall=%.3f qps=%8.0f cost_rows=%-8lld | "
      "random: util=%8.1f recall=%.3f qps=%8.0f cost_rows=%lld\n",
      ToString(type), b.utility, b.recall, b.qps,
      static_cast<long long>(TotalRows(bohb.value())), r.utility, r.recall,
      r.qps, static_cast<long long>(TotalRows(random.value())));
  std::printf("         best BOHB config: %s nprobe=%d ef=%d\n",
              b.params.ToString().c_str(), b.nprobe, b.ef_search);
}

void Run() {
  std::printf(
      "== Section 4.2: BOHB auto-configuration vs random search ==\n");
  SyntheticOptions opts;
  opts.num_rows = bench::Scaled(16000);
  opts.dim = 64;
  opts.num_clusters = 64;
  VectorDataset data = MakeClusteredDataset(opts);
  RunFamily(IndexType::kIvfFlat, data);
  RunFamily(IndexType::kHnsw, data);
  std::printf(
      "\nexpected: BOHB reaches comparable-or-better utility at lower total "
      "build cost (cost_rows).\n");
}

}  // namespace
}  // namespace manu

int main() {
  manu::Run();
  return 0;
}
