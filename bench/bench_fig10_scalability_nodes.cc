// Figure 10 reproduction: query throughput vs number of query nodes.
// Fixed dataset, segments distributed across 1/2/4/8 query nodes; the
// paper reports near-linear scaling because segments shard the search work
// and nodes need no coordination.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/manu.h"

namespace manu {
namespace {

void Run() {
  const int32_t dim = 64;
  const int64_t rows = bench::Scaled(60000);
  const size_t k = 50;

  std::printf(
      "== Figure 10: QPS vs #query nodes (rows=%lld, ivf_flat, calibrated "
      "per-node service times) ==\n",
      static_cast<long long>(rows));

  ManuConfig config;
  config.num_shards = 2;
  config.segment_seal_rows = rows / 16;  // 16 segments to spread.
  config.segment_idle_seal_ms = 500;
  config.slice_rows = 2048;
  config.num_query_nodes = 1;
  config.num_index_nodes = 2;
  config.index_build_threads = 4;
  config.query_threads = 2;
  // Each simulated node is its own machine: per-segment service time keeps
  // throughput architecture-bound instead of host-core-bound (see
  // ManuConfig docs). Serial scan pinned so the calibration (per-query
  // cost = sim * segments, two concurrent queries per node) measures
  // *node* scaling, not intra-query fan-out.
  config.parallel_search = false;
  config.sim_segment_search_us = 1500;
  ManuInstance db(config);

  CollectionSchema schema("videos");
  FieldSchema vec;
  vec.name = "v";
  vec.type = DataType::kFloatVector;
  vec.dim = dim;
  (void)schema.AddField(vec);
  auto meta = db.CreateCollection(std::move(schema));
  if (!meta.ok()) return;
  IndexParams index;
  index.type = IndexType::kIvfFlat;
  index.nlist = 128;
  (void)db.CreateIndex("videos", "v", index);
  const FieldId field = meta.value().schema.FieldByName("v")->id;

  SyntheticOptions opts;
  opts.num_rows = rows;
  opts.dim = dim;
  opts.num_clusters = 64;
  VectorDataset data = MakeClusteredDataset(opts);
  VectorDataset queries = MakeQueries(opts, 512, 7);

  const int64_t batch = 10000;
  for (int64_t begin = 0; begin < rows; begin += batch) {
    const int64_t end = std::min(rows, begin + batch);
    EntityBatch eb;
    for (int64_t i = begin; i < end; ++i) eb.primary_keys.push_back(i);
    eb.columns.push_back(FieldColumn::MakeFloatVector(
        field, dim,
        std::vector<float>(data.Row(begin), data.Row(begin) + (end - begin) * dim)));
    auto st = db.Insert("videos", std::move(eb));
    if (!st.ok()) {
      std::printf("insert failed: %s\n", st.status().ToString().c_str());
      return;
    }
  }
  if (auto st = db.FlushAndWait("videos", 120000); !st.ok()) {
    std::printf("flush failed: %s\n", st.ToString().c_str());
    return;
  }

  bench::Table table({"query_nodes", "qps", "mean_ms", "speedup"});
  double base_qps = 0;
  for (int32_t nodes : {1, 2, 4, 8}) {
    if (!db.ScaleQueryNodes(nodes).ok()) continue;
    auto tp = bench::MeasureThroughput(24, 3000, [&](int32_t, int64_t i) {
      SearchRequest req;
      req.collection = "videos";
      const float* q = queries.Row(i % queries.NumRows());
      req.query.assign(q, q + dim);
      req.k = k;
      req.nprobe = 16;
      req.consistency = ConsistencyLevel::kEventually;
      (void)db.Search(req);
    });
    if (base_qps == 0) base_qps = tp.qps;
    table.AddRow({std::to_string(nodes), bench::Fmt(tp.qps, 0),
                  bench::Fmt(tp.mean_ms), bench::Fmt(tp.qps / base_qps, 2)});
  }
  table.Print();
}

}  // namespace
}  // namespace manu

int main() {
  manu::Run();
  return 0;
}
