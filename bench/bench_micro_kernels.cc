// Microbenchmarks (google-benchmark) for the hot kernels the system-level
// results rest on: distance computation (blocked vs scalar), top-k heap,
// PQ ADC scoring, SQ decode-scoring, bitset filtering.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/bitset.h"
#include "common/threadpool.h"
#include "common/topk.h"
#include "index/pq.h"
#include "index/sq.h"
#include "simd/distances.h"

namespace manu {
namespace {

std::vector<float> RandomVectors(int64_t n, int32_t dim, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> uni(0, 1);
  std::vector<float> out(n * dim);
  for (auto& v : out) v = uni(rng);
  return out;
}

float ScalarL2(const float* a, const float* b, size_t dim) {
  float acc = 0;
  for (size_t d = 0; d < dim; ++d) {
    const float diff = a[d] - b[d];
    acc += diff * diff;
  }
  return acc;
}

void BM_L2Blocked(benchmark::State& state) {
  const int32_t dim = static_cast<int32_t>(state.range(0));
  auto data = RandomVectors(1024, dim, 1);
  auto query = RandomVectors(1, dim, 2);
  std::vector<float> out(1024);
  for (auto _ : state) {
    simd::L2SqrBatch(query.data(), data.data(), 1024, dim, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_L2Blocked)->Arg(64)->Arg(128)->Arg(768);

void BM_L2Scalar(benchmark::State& state) {
  const int32_t dim = static_cast<int32_t>(state.range(0));
  auto data = RandomVectors(1024, dim, 1);
  auto query = RandomVectors(1, dim, 2);
  std::vector<float> out(1024);
  for (auto _ : state) {
    for (int64_t i = 0; i < 1024; ++i) {
      out[i] = ScalarL2(query.data(), data.data() + i * dim, dim);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_L2Scalar)->Arg(64)->Arg(128)->Arg(768);

void BM_InnerProductBatch(benchmark::State& state) {
  const int32_t dim = static_cast<int32_t>(state.range(0));
  auto data = RandomVectors(1024, dim, 1);
  auto query = RandomVectors(1, dim, 2);
  std::vector<float> out(1024);
  for (auto _ : state) {
    simd::InnerProductBatch(query.data(), data.data(), 1024, dim,
                            out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_InnerProductBatch)->Arg(96)->Arg(128);

void BM_TopKHeap(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  auto scores = RandomVectors(1, 100000, 3);
  for (auto _ : state) {
    TopKHeap heap(k);
    for (int64_t i = 0; i < 100000; ++i) heap.Push(i, scores[i]);
    auto out = heap.TakeSorted();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_TopKHeap)->Arg(10)->Arg(100);

void BM_PqAdcScan(benchmark::State& state) {
  constexpr int32_t kDim = 128, kM = 16;
  constexpr int64_t kRows = 20000;
  auto data = RandomVectors(kRows, kDim, 4);
  ProductQuantizer pq;
  (void)pq.Train(data.data(), 4000, kDim, kM, 4, 42);
  std::vector<uint8_t> codes(kRows * kM);
  for (int64_t i = 0; i < kRows; ++i) {
    pq.Encode(data.data() + i * kDim, codes.data() + i * kM);
  }
  auto query = RandomVectors(1, kDim, 5);
  std::vector<float> table(kM * ProductQuantizer::kCodebookSize);
  for (auto _ : state) {
    pq.BuildAdcTable(query.data(), MetricType::kL2, table.data());
    float acc = 0;
    for (int64_t i = 0; i < kRows; ++i) {
      acc += pq.ScoreWithTable(table.data(), codes.data() + i * kM);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_PqAdcScan);

void BM_SqScoreScan(benchmark::State& state) {
  constexpr int32_t kDim = 128;
  constexpr int64_t kRows = 20000;
  auto data = RandomVectors(kRows, kDim, 6);
  ScalarQuantizer sq;
  sq.Train(data.data(), kRows, kDim);
  std::vector<uint8_t> codes(kRows * kDim);
  for (int64_t i = 0; i < kRows; ++i) {
    sq.Encode(data.data() + i * kDim, codes.data() + i * kDim);
  }
  auto query = RandomVectors(1, kDim, 7);
  for (auto _ : state) {
    float acc = 0;
    for (int64_t i = 0; i < kRows; ++i) {
      acc += sq.Score(query.data(), codes.data() + i * kDim,
                      MetricType::kL2);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_SqScoreScan);

void BM_MergeTopKDedup(benchmark::State& state) {
  // Node-level reduce of per-segment lists with heavy pk overlap (replica
  // serving): stresses the best-score-per-id collapse before k-selection.
  const int64_t lists = state.range(0);
  constexpr size_t kK = 50;
  std::mt19937_64 rng(11);
  std::vector<std::vector<Neighbor>> input(lists);
  for (auto& list : input) {
    for (size_t i = 0; i < 2 * kK; ++i) {
      // ~50% id overlap across lists.
      list.push_back({static_cast<int64_t>(rng() % (lists * kK)),
                      static_cast<float>(rng() % 1000) * 0.001f});
    }
    std::sort(list.begin(), list.end(),
              [](const Neighbor& a, const Neighbor& b) {
                return a.score < b.score;
              });
  }
  for (auto _ : state) {
    auto out = MergeTopK(input, kK, /*dedup_ids=*/true);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * lists * 2 * kK);
}
BENCHMARK(BM_MergeTopKDedup)->Arg(4)->Arg(16)->Arg(64);

void BM_ParallelForSegmentScan(benchmark::State& state) {
  // The intra-query fan-out shape: `segments` independent brute-force
  // scans dispatched with caller-runs ParallelFor. threads=0 is the serial
  // baseline (no pool). On a multi-core host the parallel rows scale with
  // the pool width; on single-core CI they bound the dispatch overhead.
  const int64_t threads = state.range(0);
  constexpr int64_t kSegments = 16;
  constexpr int64_t kRows = 2048;
  constexpr int32_t kDim = 64;
  auto data = RandomVectors(kSegments * kRows, kDim, 12);
  auto query = RandomVectors(1, kDim, 13);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
  std::vector<float> best(kSegments);
  for (auto _ : state) {
    ParallelFor(pool.get(), kSegments, [&](int64_t seg) {
      const float* base = data.data() + seg * kRows * kDim;
      float best_score = 1e30f;
      for (int64_t r = 0; r < kRows; ++r) {
        best_score =
            std::min(best_score, ScalarL2(query.data(), base + r * kDim,
                                          static_cast<size_t>(kDim)));
      }
      best[seg] = best_score;
    });
    benchmark::DoNotOptimize(best.data());
  }
  state.SetItemsProcessed(state.iterations() * kSegments * kRows);
}
BENCHMARK(BM_ParallelForSegmentScan)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

void BM_BitsetFilter(benchmark::State& state) {
  constexpr size_t kBits = 1 << 20;
  ConcurrentBitset bits(kBits);
  for (size_t i = 0; i < kBits; i += 3) bits.Set(i);
  for (auto _ : state) {
    size_t hits = 0;
    for (size_t i = 0; i < kBits; ++i) hits += bits.Test(i);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * kBits);
}
BENCHMARK(BM_BitsetFilter);

}  // namespace

// Console reporter that also captures each run for the BENCH_*.json
// artifact. Per-iteration adjusted real time plus the items/s counter
// (populated by SetItemsProcessed) are the trajectory fields.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    std::string name;
    double real_time = 0;       // per-iteration, in the run's time unit
    double items_per_second = 0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      Captured c;
      c.name = run.benchmark_name();
      c.real_time = run.GetAdjustedRealTime();
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) c.items_per_second = it->second;
      captured_.push_back(std::move(c));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Captured>& captured() const { return captured_; }

 private:
  std::vector<Captured> captured_;
};

}  // namespace manu

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  manu::CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // JSON keys can't contain '/', so BM_L2Blocked/128 -> BM_L2Blocked_128.
  manu::bench::BenchReport report("micro_kernels");
  for (const auto& c : reporter.captured()) {
    std::string key = c.name;
    std::replace(key.begin(), key.end(), '/', '_');
    report.Add(key, {{"real_time_ns", c.real_time},
                     {"items_per_second", c.items_per_second}});
  }
  report.WriteIfRequested();
  return 0;
}
