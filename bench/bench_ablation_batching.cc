// Ablation for request batching (Section 3.6: "users can configure Manu to
// batch search requests to improve efficiency ... requests of the same
// type are organized into the one batch and handled by Manu together").
// Compares wall time of N individual searches against one batched call,
// which shares the query timestamp, validation, node dispatch and executor
// scheduling.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/manu.h"

namespace manu {
namespace {

constexpr int32_t kDim = 64;

void Run() {
  const int64_t rows = bench::Scaled(40000);
  std::printf(
      "== Ablation: request batching at the proxy (Section 3.6) ==\n"
      "rows=%lld dim=%d, 2 query nodes, ivf_flat\n\n",
      static_cast<long long>(rows), kDim);

  ManuConfig config;
  config.num_shards = 2;
  config.segment_seal_rows = rows / 8;
  config.segment_idle_seal_ms = 300;
  config.num_query_nodes = 2;
  config.num_index_nodes = 2;
  ManuInstance db(config);

  CollectionSchema schema("corpus");
  FieldSchema vec;
  vec.name = "v";
  vec.type = DataType::kFloatVector;
  vec.dim = kDim;
  (void)schema.AddField(vec);
  auto meta = db.CreateCollection(std::move(schema));
  if (!meta.ok()) return;
  IndexParams index;
  index.type = IndexType::kIvfFlat;
  index.nlist = 64;
  (void)db.CreateIndex("corpus", "v", index);
  const FieldId field = meta.value().schema.FieldByName("v")->id;

  SyntheticOptions opts;
  opts.num_rows = rows;
  opts.dim = kDim;
  VectorDataset data = MakeClusteredDataset(opts);
  VectorDataset queries = MakeQueries(opts, 512, 7);
  for (int64_t begin = 0; begin < rows; begin += 10000) {
    const int64_t end = std::min(rows, begin + 10000);
    EntityBatch eb;
    for (int64_t i = begin; i < end; ++i) eb.primary_keys.push_back(i);
    eb.columns.push_back(FieldColumn::MakeFloatVector(
        field, kDim,
        std::vector<float>(data.Row(begin),
                           data.Row(begin) + (end - begin) * kDim)));
    if (!db.Insert("corpus", std::move(eb)).ok()) return;
  }
  if (!db.FlushAndWait("corpus", 180000).ok()) return;

  auto make_request = [&](int64_t q) {
    SearchRequest req;
    req.collection = "corpus";
    const float* v = queries.Row(q % queries.NumRows());
    req.query.assign(v, v + kDim);
    req.k = 10;
    req.nprobe = 8;
    req.consistency = ConsistencyLevel::kEventually;
    return req;
  };

  bench::Table table({"batch_size", "individual_ms", "batched_ms",
                      "speedup"});
  for (size_t batch_size : {4, 16, 64, 256}) {
    std::vector<SearchRequest> reqs;
    for (size_t q = 0; q < batch_size; ++q) reqs.push_back(make_request(q));

    const int kRepeats = 8;
    int64_t t0 = NowMicros();
    for (int r = 0; r < kRepeats; ++r) {
      for (const auto& req : reqs) (void)db.Search(req);
    }
    const double individual_ms =
        static_cast<double>(NowMicros() - t0) / 1000.0 / kRepeats;

    t0 = NowMicros();
    for (int r = 0; r < kRepeats; ++r) (void)db.BatchSearch(reqs);
    const double batched_ms =
        static_cast<double>(NowMicros() - t0) / 1000.0 / kRepeats;

    table.AddRow({std::to_string(batch_size), bench::Fmt(individual_ms),
                  bench::Fmt(batched_ms),
                  bench::Fmt(batched_ms > 0 ? individual_ms / batched_ms : 0,
                             2) +
                      "x"});
  }
  table.Print();
}

}  // namespace
}  // namespace manu

int main() {
  manu::Run();
  return 0;
}
