#ifndef MANU_BENCH_BENCH_UTIL_H_
#define MANU_BENCH_BENCH_UTIL_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/synthetic.h"

namespace manu::bench {

/// Scale multiplier for dataset sizes: MANU_BENCH_SCALE=4 runs 4x larger
/// benches. Default 1 keeps the full suite under ~10 minutes.
inline double Scale() {
  const char* env = std::getenv("MANU_BENCH_SCALE");
  return env != nullptr ? std::atof(env) : 1.0;
}

inline int64_t Scaled(int64_t base) {
  return static_cast<int64_t>(static_cast<double>(base) * Scale());
}

/// Drives `fn` from `threads` workers for `duration_ms`, returning achieved
/// QPS. `fn(worker, i)` runs one operation.
struct ThroughputResult {
  double qps = 0;
  double mean_ms = 0;
  double p99_ms = 0;
};

inline ThroughputResult MeasureThroughput(
    int32_t threads, int64_t duration_ms,
    const std::function<void(int32_t, int64_t)>& fn) {
  std::atomic<bool> stop{false};
  std::atomic<int64_t> ops{0};
  LatencyHistogram hist;
  std::vector<std::thread> workers;
  const int64_t t0 = NowMicros();
  for (int32_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      int64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const int64_t s = NowMicros();
        fn(w, i++);
        hist.Observe(static_cast<double>(NowMicros() - s));
        ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : workers) t.join();
  const double elapsed_s =
      static_cast<double>(NowMicros() - t0) / 1e6;
  ThroughputResult out;
  out.qps = static_cast<double>(ops.load()) / elapsed_s;
  out.mean_ms = hist.Mean() / 1000.0;
  out.p99_ms = hist.Percentile(99) / 1000.0;
  return out;
}

/// Simple aligned table printer for bench output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
    std::fflush(stdout);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Collects named per-result metric maps and writes them as one JSON
/// artifact — the committed `BENCH_*.json` perf trajectory. Each result is a
/// flat {field: number} object under a unique name; the file embeds the
/// bench scale so cross-PR comparisons know what was measured.
///
/// The file is written only when `MANU_BENCH_JSON` names a path (so ad-hoc
/// bench runs don't churn committed artifacts); scripts/bench_report.sh
/// sets it.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void Add(const std::string& name,
           std::vector<std::pair<std::string, double>> fields) {
    results_.emplace_back(name, std::move(fields));
  }

  /// Writes the artifact if MANU_BENCH_JSON is set. Returns the path
  /// written, or "" when disabled / on error.
  std::string WriteIfRequested() const {
    const char* path = std::getenv("MANU_BENCH_JSON");
    if (path == nullptr || path[0] == '\0') return "";
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench report: cannot open %s\n", path);
      return "";
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"scale\": %g,\n",
                 bench_name_.c_str(), Scale());
    std::fprintf(f, "  \"results\": {");
    for (size_t i = 0; i < results_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": {", i > 0 ? "," : "",
                   results_[i].first.c_str());
      const auto& fields = results_[i].second;
      for (size_t j = 0; j < fields.size(); ++j) {
        std::fprintf(f, "%s\"%s\": %.6g", j > 0 ? ", " : "",
                     fields[j].first.c_str(), fields[j].second);
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "bench report written to %s\n", path);
    return path;
  }

 private:
  std::string bench_name_;
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, double>>>>
      results_;
};

}  // namespace manu::bench

#endif  // MANU_BENCH_BENCH_UTIL_H_
