#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/metrics.h"
#include "wal/message.h"
#include "wal/mq.h"
#include "wal/time_tick.h"
#include "wal/tso.h"

namespace manu {
namespace {

// ---------------------------------------------------------------------------
// LogEntry
// ---------------------------------------------------------------------------

TEST(LogEntry, SerializeRoundTrip) {
  LogEntry entry;
  entry.type = LogEntryType::kInsert;
  entry.timestamp = 12345;
  entry.collection = 7;
  entry.shard = 2;
  entry.segment = 99;
  entry.batch.primary_keys = {1, 2};
  entry.batch.timestamps = {10, 11};
  entry.batch.columns.push_back(
      FieldColumn::MakeFloatVector(100, 2, {1, 2, 3, 4}));
  entry.delete_pks = {5};
  entry.payload = "aux";

  auto back = LogEntry::Deserialize(entry.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().type, LogEntryType::kInsert);
  EXPECT_EQ(back.value().timestamp, 12345u);
  EXPECT_EQ(back.value().collection, 7);
  EXPECT_EQ(back.value().shard, 2);
  EXPECT_EQ(back.value().segment, 99);
  EXPECT_EQ(back.value().batch.primary_keys, (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(back.value().delete_pks, (std::vector<int64_t>{5}));
  EXPECT_EQ(back.value().payload, "aux");
}

TEST(LogEntry, DeserializeGarbageFails) {
  EXPECT_FALSE(LogEntry::Deserialize("xx").ok());
}

TEST(LogEntry, GroupSerializeRoundTrip) {
  std::vector<std::shared_ptr<const LogEntry>> group;
  for (int i = 0; i < 3; ++i) {
    LogEntry e;
    e.type = i == 1 ? LogEntryType::kDelete : LogEntryType::kInsert;
    e.timestamp = 100 + i;
    e.collection = 7;
    e.shard = i;
    if (i == 1) e.delete_pks = {42, 43};
    e.payload = "p" + std::to_string(i);
    group.push_back(std::make_shared<const LogEntry>(std::move(e)));
  }
  const std::string frame = SerializeGroup(group);
  auto back = DeserializeGroup(frame);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(back.value()[i].timestamp, group[i]->timestamp);
    EXPECT_EQ(back.value()[i].type, group[i]->type);
    EXPECT_EQ(back.value()[i].payload, group[i]->payload);
  }
  EXPECT_EQ(back.value()[1].delete_pks, (std::vector<int64_t>{42, 43}));
  EXPECT_FALSE(DeserializeGroup(frame.substr(0, frame.size() - 3)).ok());
  EXPECT_FALSE(DeserializeGroup("").ok());  // Truncated count header.
}

TEST(ChannelNames, AreDistinctPerShard) {
  EXPECT_NE(ShardChannelName(1, 0), ShardChannelName(1, 1));
  EXPECT_NE(ShardChannelName(1, 0), ShardChannelName(2, 0));
  EXPECT_NE(DdlChannelName(), CoordChannelName());
}

// ---------------------------------------------------------------------------
// Tso
// ---------------------------------------------------------------------------

TEST(Tso, StrictlyMonotonic) {
  Tso tso;
  Timestamp last = 0;
  for (int i = 0; i < 10000; ++i) {
    const Timestamp ts = tso.Allocate();
    EXPECT_GT(ts, last);
    last = ts;
  }
}

TEST(Tso, BlockAllocationIsContiguousAndOrdered) {
  Tso tso;
  const Timestamp first = tso.AllocateBlock(100);
  const Timestamp next = tso.Allocate();
  EXPECT_GE(next, first + 100);
  EXPECT_EQ(tso.Last(), next);
}

TEST(Tso, PhysicalTracksWallClock) {
  Tso tso;
  const Timestamp ts = tso.Allocate();
  const uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  EXPECT_NEAR(static_cast<double>(PhysicalMs(ts)), static_cast<double>(now),
              1000.0);
}

TEST(Tso, ConcurrentAllocationsUnique) {
  Tso tso;
  constexpr int kThreads = 4, kPerThread = 5000;
  std::vector<std::vector<Timestamp>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        results[t].push_back(tso.Allocate());
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<Timestamp> all;
  for (const auto& r : results) all.insert(all.end(), r.begin(), r.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::unique(all.begin(), all.end()), all.end());
}

// ---------------------------------------------------------------------------
// MessageQueue
// ---------------------------------------------------------------------------

LogEntry Tick(Timestamp ts) {
  LogEntry e;
  e.type = LogEntryType::kTimeTick;
  e.timestamp = ts;
  return e;
}

TEST(MessageQueue, PublishSubscribeOrdered) {
  MessageQueue mq;
  auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
  EXPECT_EQ(mq.Publish("ch", Tick(1)), 0);
  EXPECT_EQ(mq.Publish("ch", Tick(2)), 1);
  auto entries = sub->TryPoll(10);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0]->timestamp, 1u);
  EXPECT_EQ(entries[1]->timestamp, 2u);
  EXPECT_EQ(sub->position(), 2);
}

TEST(MessageQueue, LatestSubscriptionSkipsHistory) {
  MessageQueue mq;
  mq.Publish("ch", Tick(1));
  auto sub = mq.Subscribe("ch", SubscribePosition::kLatest);
  EXPECT_TRUE(sub->TryPoll(10).empty());
  mq.Publish("ch", Tick(2));
  auto entries = sub->TryPoll(10);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0]->timestamp, 2u);
}

TEST(MessageQueue, IndependentSubscriberPositions) {
  MessageQueue mq;
  auto a = mq.Subscribe("ch", SubscribePosition::kEarliest);
  auto b = mq.Subscribe("ch", SubscribePosition::kEarliest);
  mq.Publish("ch", Tick(1));
  EXPECT_EQ(a->TryPoll(10).size(), 1u);
  EXPECT_EQ(b->TryPoll(10).size(), 1u);  // b unaffected by a's progress.
}

TEST(MessageQueue, SeekReplays) {
  MessageQueue mq;
  auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
  for (int i = 0; i < 5; ++i) mq.Publish("ch", Tick(i));
  EXPECT_EQ(sub->TryPoll(10).size(), 5u);
  sub->Seek(2);
  auto entries = sub->TryPoll(10);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0]->timestamp, 2u);
}

TEST(MessageQueue, TruncationSnapsOldReadersForward) {
  MessageQueue mq;
  auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
  for (int i = 0; i < 10; ++i) mq.Publish("ch", Tick(i));
  mq.TruncateBefore("ch", 6);
  EXPECT_EQ(mq.BeginOffset("ch"), 6);
  EXPECT_EQ(mq.EndOffset("ch"), 10);
  auto entries = sub->TryPoll(100);
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0]->timestamp, 6u);
}

TEST(MessageQueue, BlockingPollWakesOnPublish) {
  MessageQueue mq;
  auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
  std::thread publisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    mq.Publish("ch", Tick(42));
  });
  auto entries = sub->Poll(1, std::chrono::milliseconds(2000));
  publisher.join();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0]->timestamp, 42u);
}

TEST(MessageQueue, ListChannels) {
  MessageQueue mq;
  mq.Publish("wal/c1/s0", Tick(1));
  mq.Publish("wal/c1/s1", Tick(1));
  mq.Publish("wal/ddl", Tick(1));
  EXPECT_EQ(mq.ListChannels("wal/c1/").size(), 2u);
  EXPECT_EQ(mq.ListChannels("wal/").size(), 3u);
}

TEST(MessageQueue, ManyProducersOneConsumer) {
  MessageQueue mq;
  auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
  constexpr int kProducers = 4, kPerProducer = 1000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) mq.Publish("ch", Tick(1));
    });
  }
  for (auto& t : producers) t.join();
  size_t total = 0;
  while (true) {
    auto entries = sub->TryPoll(256);
    if (entries.empty()) break;
    total += entries.size();
  }
  EXPECT_EQ(total, static_cast<size_t>(kProducers * kPerProducer));
}

// ---------------------------------------------------------------------------
// Group commit
// ---------------------------------------------------------------------------

WalOptions GroupedOptions(int64_t linger_us = 0, int64_t sim_us = 0) {
  WalOptions opt;
  opt.group_commit = true;
  opt.group_max_entries = 256;
  opt.flush_linger_us = linger_us;
  opt.sim_flush_latency_us = sim_us;
  return opt;
}

TEST(MessageQueue, GroupCommitPreservesOrderAndAcks) {
  MessageQueue mq(GroupedOptions(/*linger_us=*/0, /*sim_us=*/500));
  auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
  const int64_t groups_before =
      MetricsRegistry::Global().CounterValue("wal.group_commits");
  constexpr int kProducers = 8, kPerProducer = 50;
  std::vector<std::vector<int64_t>> acked(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int64_t off = mq.Publish("ch", Tick(1 + p * kPerProducer + i));
        ASSERT_GE(off, 0);
        acked[p].push_back(off);
      }
    });
  }
  for (auto& t : producers) t.join();
  // Every publish acked exactly one distinct offset, densely covering
  // [0, end): the whole-group ack never skips or double-assigns.
  std::vector<int64_t> all;
  for (const auto& a : acked) {
    // Each producer's acks are strictly increasing (program order holds).
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
    all.insert(all.end(), a.begin(), a.end());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<size_t>(kProducers * kPerProducer));
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], static_cast<int64_t>(i));
  }
  EXPECT_EQ(mq.EndOffset("ch"), kProducers * kPerProducer);
  // The consumer sees every entry, in offset order.
  size_t total = 0;
  while (true) {
    auto entries = sub->TryPoll(4096);
    if (entries.empty()) break;
    total += entries.size();
  }
  EXPECT_EQ(total, static_cast<size_t>(kProducers * kPerProducer));
  // With 8 publishers serialized behind a 500 us simulated flush, groups
  // must actually have batched: far fewer flushes than entries.
  const int64_t groups =
      MetricsRegistry::Global().CounterValue("wal.group_commits") -
      groups_before;
  EXPECT_GT(groups, 0);
  EXPECT_LT(groups, kProducers * kPerProducer);
}

TEST(MessageQueue, GroupCommitLingerReturnsLonePublishPromptly) {
  // A lingering leader must not hold a lone publisher for the full linger
  // budget forever — it flushes once the linger elapses (and the linger is
  // bounded), so a single low-rate publisher still makes progress.
  MessageQueue mq(GroupedOptions(/*linger_us=*/20000));
  const int64_t t0 = NowMicros();
  EXPECT_EQ(mq.Publish("ch", Tick(1)), 0);
  EXPECT_LT(NowMicros() - t0, 5000000);
  EXPECT_EQ(mq.EndOffset("ch"), 1);
}

TEST(MessageQueue, FenceRefusedInsideCommitGroup) {
  MessageQueue mq;
  auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
  bool allow = true;
  MessageQueue::PublishFence fence = [&allow] {
    return allow ? Status::OK() : Status::Aborted("zombie epoch");
  };
  Status fs;
  EXPECT_EQ(mq.Publish("ch", Tick(1), fence, &fs), 0);
  EXPECT_TRUE(fs.ok());
  allow = false;
  EXPECT_EQ(mq.Publish("ch", Tick(2), fence, &fs), -1);
  EXPECT_EQ(fs.code(), StatusCode::kAborted);
  allow = true;
  EXPECT_EQ(mq.Publish("ch", Tick(3), fence, &fs), 1);
  // The fenced entry was never installed: subscribers see 1 then 3.
  auto entries = sub->TryPoll(10);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0]->timestamp, 1u);
  EXPECT_EQ(entries[1]->timestamp, 3u);
}

TEST(MessageQueue, FenceRefusalExcludedFromMixedGroup) {
  // Two publishers land in the same lingered commit group; the fenced one
  // is excluded at the commit decision while its groupmate commits.
  MessageQueue mq(GroupedOptions(/*linger_us=*/30000));
  MessageQueue::PublishFence refuse = [] {
    return Status::Aborted("superseded");
  };
  Status fenced_status;
  int64_t fenced_off = 0, ok_off = -2;
  std::thread fenced_pub([&] {
    fenced_off = mq.Publish("ch", Tick(10), refuse, &fenced_status);
  });
  std::thread ok_pub([&] { ok_off = mq.Publish("ch", Tick(11)); });
  fenced_pub.join();
  ok_pub.join();
  EXPECT_EQ(fenced_off, -1);
  EXPECT_EQ(fenced_status.code(), StatusCode::kAborted);
  EXPECT_EQ(ok_off, 0);
  EXPECT_EQ(mq.EndOffset("ch"), 1);
  auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
  auto entries = sub->TryPoll(10);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0]->timestamp, 11u);
}

TEST(MessageQueue, PublishRacingShutdownNeverAcksUninstalledEntry) {
  // The TOCTOU fix: a publish that passes the fast shutdown check but loses
  // the race to Shutdown() must be refused at the commit decision — the set
  // of acked offsets and the set of installed offsets must match exactly.
  for (int round = 0; round < 20; ++round) {
    MessageQueue mq;
    constexpr int kProducers = 4;
    std::vector<std::vector<int64_t>> acked(kProducers);
    std::atomic<bool> go{false};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        while (!go.load(std::memory_order_acquire)) {
        }
        for (int i = 0; i < 200; ++i) {
          const int64_t off = mq.Publish("ch", Tick(1));
          if (off < 0) break;  // Shutdown reached this publisher.
          acked[p].push_back(off);
        }
      });
    }
    go.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
    mq.Shutdown();
    for (auto& t : producers) t.join();
    // EndOffset is read after Shutdown() returned and all publishers
    // joined: nothing installs past it, and every ack below it.
    const int64_t end = mq.EndOffset("ch");
    std::vector<int64_t> all;
    for (const auto& a : acked) all.insert(all.end(), a.begin(), a.end());
    std::sort(all.begin(), all.end());
    ASSERT_EQ(all.size(), static_cast<size_t>(end))
        << "acked set != installed set in round " << round;
    for (size_t i = 0; i < all.size(); ++i) {
      ASSERT_EQ(all[i], static_cast<int64_t>(i));
    }
  }
}

// ---------------------------------------------------------------------------
// Inversion-aware replay lookup
// ---------------------------------------------------------------------------

TEST(MessageQueue, FirstOffsetAtOrAfterSpansMultiEntryInversions) {
  // Forced multi-entry inversion: two stale-LSN entries land after a newer
  // one (concurrent publishers draining in arbitrary order). The walk-back
  // must cover the full inversion window, not just one adjacent swap.
  MessageQueue mq;
  for (Timestamp ts : {10, 11, 2, 3, 12}) mq.Publish("ch", Tick(ts));
  // Binary search on the near-sorted LSNs lands past offset 1 (LSN 11);
  // the adjacent-only repair of the old broker returned 4 here, silently
  // skipping a replay-eligible entry.
  EXPECT_EQ(mq.FirstOffsetAtOrAfter("ch", 11), 1);
  EXPECT_EQ(mq.FirstOffsetAtOrAfter("ch", 12), 4);
  EXPECT_EQ(mq.FirstOffsetAtOrAfter("ch", 1), 0);
  EXPECT_EQ(mq.FirstOffsetAtOrAfter("ch", 13), 5);  // Past the end.

  // A wide inversion (bound 97): the first entry is the only one >= 50 and
  // sits three positions before where the binary search lands.
  MessageQueue mq2;
  for (Timestamp ts : {100, 3, 4, 101}) mq2.Publish("ch", Tick(ts));
  EXPECT_EQ(mq2.FirstOffsetAtOrAfter("ch", 50), 0);
  EXPECT_EQ(mq2.FirstOffsetAtOrAfter("ch", 101), 3);
}

// ---------------------------------------------------------------------------
// Truncation gap surfacing
// ---------------------------------------------------------------------------

TEST(MessageQueue, TruncationGapIsCountedNotSwallowed) {
  MessageQueue mq;
  auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
  const int64_t gap_before =
      MetricsRegistry::Global().CounterValue("wal.subscriber_gap");
  for (int i = 0; i < 10; ++i) mq.Publish("ch", Tick(i + 1));
  EXPECT_EQ(sub->TryPoll(2).size(), 2u);  // Position 2.
  EXPECT_EQ(sub->missed(), 0);
  mq.TruncateBefore("ch", 6);  // Drops offsets [2, 6) under the cursor.
  auto entries = sub->TryPoll(100);
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0]->timestamp, 7u);  // Snapped to the floor...
  EXPECT_EQ(sub->missed(), 4);           // ...but the gap is surfaced.
  EXPECT_EQ(
      MetricsRegistry::Global().CounterValue("wal.subscriber_gap") -
          gap_before,
      4);
  // Reading on from the floor accrues no further gap.
  mq.Publish("ch", Tick(11));
  EXPECT_EQ(sub->TryPoll(10).size(), 1u);
  EXPECT_EQ(sub->missed(), 4);
}

// ---------------------------------------------------------------------------
// Concurrency stress (TSan coverage for the lock-free read path)
// ---------------------------------------------------------------------------

TEST(MessageQueue, StressPublishTruncatePollShutdown) {
  // One channel, everything at once: grouped publishers, a truncator
  // re-snapshotting under the readers, wait-free pollers, replay lookups,
  // then a shutdown racing in-flight groups. Run under TSan in the check
  // matrix; the assertions prove per-subscription accounting
  // (delivered + missed == end) and exact ack/install agreement.
  MessageQueue mq(GroupedOptions(/*linger_us=*/0, /*sim_us=*/100));
  constexpr int kProducers = 4, kPollers = 2;
  std::atomic<bool> stop_aux{false};
  std::atomic<int64_t> next_ts{1};
  std::vector<std::vector<int64_t>> acked(kProducers);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < 300; ++i) {
        const int64_t off = mq.Publish(
            "ch", Tick(next_ts.fetch_add(1, std::memory_order_relaxed)));
        if (off < 0) break;
        acked[p].push_back(off);
      }
    });
  }
  struct PollerResult {
    int64_t delivered = 0;
    int64_t missed = 0;
    int64_t final_position = 0;
  };
  std::vector<PollerResult> pollers(kPollers);
  for (int q = 0; q < kPollers; ++q) {
    threads.emplace_back([&, q] {
      auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
      int64_t last_off = -1;
      while (true) {
        auto entries = sub->Poll(64, std::chrono::milliseconds(5));
        pollers[q].delivered += static_cast<int64_t>(entries.size());
        // Offsets only move forward even while truncation re-snapshots.
        if (!entries.empty()) {
          EXPECT_GT(sub->position() - static_cast<int64_t>(entries.size()),
                    last_off);
          last_off = sub->position() - 1;
        }
        if (entries.empty() && sub->closed()) break;
      }
      pollers[q].missed = sub->missed();
      pollers[q].final_position = sub->position();
    });
  }
  std::thread truncator([&] {
    while (!stop_aux.load(std::memory_order_acquire)) {
      const int64_t end = mq.EndOffset("ch");
      if (end > 32) mq.TruncateBefore("ch", end - 16);
      (void)mq.FirstOffsetAtOrAfter(
          "ch", static_cast<Timestamp>(
                    next_ts.load(std::memory_order_relaxed) / 2));
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  mq.Shutdown();
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  stop_aux.store(true, std::memory_order_release);
  truncator.join();
  for (size_t i = kProducers; i < threads.size(); ++i) threads[i].join();

  // Acked offsets are exactly [0, EndOffset): dense, no gap, no extra.
  const int64_t end = mq.EndOffset("ch");
  std::vector<int64_t> all;
  for (const auto& a : acked) all.insert(all.end(), a.begin(), a.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<size_t>(end));
  for (size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], static_cast<int64_t>(i));
  }
  // Per subscription: everything committed was either delivered or
  // reported missing — nothing silently vanished.
  for (const auto& pr : pollers) {
    EXPECT_EQ(pr.delivered + pr.missed, end);
    EXPECT_EQ(pr.final_position, end);
  }
}

// ---------------------------------------------------------------------------
// TimeTickEmitter
// ---------------------------------------------------------------------------

TEST(TimeTick, EmitsIntoRegisteredChannels) {
  MessageQueue mq;
  Tso tso;
  TimeTickEmitter ticker(&mq, &tso, /*interval_ms=*/5);
  ticker.RegisterChannel("wal/c1/s0", 1, 0);
  ticker.RegisterChannel("wal/c1/s1", 1, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ticker.Stop();
  for (const char* ch : {"wal/c1/s0", "wal/c1/s1"}) {
    auto sub = mq.Subscribe(ch, SubscribePosition::kEarliest);
    auto entries = sub->TryPoll(1000);
    EXPECT_GE(entries.size(), 3u) << ch;
    Timestamp last = 0;
    for (const auto& e : entries) {
      EXPECT_EQ(e->type, LogEntryType::kTimeTick);
      EXPECT_GT(e->timestamp, last);
      last = e->timestamp;
    }
  }
}

TEST(TimeTick, UnregisterStopsTicks) {
  MessageQueue mq;
  Tso tso;
  TimeTickEmitter ticker(&mq, &tso, 1000000);  // Never fires on its own.
  ticker.RegisterChannel("ch", 1, 0);
  ticker.TickNow();
  ticker.UnregisterChannel("ch");
  ticker.TickNow();
  ticker.Stop();
  auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
  EXPECT_EQ(sub->TryPoll(10).size(), 1u);
}

TEST(TimeTick, TickDominatesPriorPublishes) {
  // A tick's timestamp must be >= every LSN already in the channel.
  MessageQueue mq;
  Tso tso;
  TimeTickEmitter ticker(&mq, &tso, 1000000);
  ticker.RegisterChannel("ch", 1, 0);
  LogEntry data;
  data.type = LogEntryType::kInsert;
  data.timestamp = tso.Allocate();
  mq.Publish("ch", std::move(data));
  ticker.TickNow();
  ticker.Stop();
  auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
  auto entries = sub->TryPoll(10);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_GT(entries[1]->timestamp, entries[0]->timestamp);
}

// ---------------------------------------------------------------------------
// Shutdown semantics
// ---------------------------------------------------------------------------

TEST(MessageQueue, ShutdownWakesBlockedPollImmediately) {
  MessageQueue mq;
  auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
  EXPECT_FALSE(sub->closed());
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    mq.Shutdown();
  });
  const int64_t t0 = NowMicros();
  auto entries = sub->Poll(10, std::chrono::milliseconds(10000));
  closer.join();
  EXPECT_TRUE(entries.empty());
  // Woken by Shutdown(), nowhere near the 10 s timeout.
  EXPECT_LT(NowMicros() - t0, 5000000);
  EXPECT_TRUE(sub->closed());
}

TEST(MessageQueue, PollAfterShutdownReturnsWithoutBurningTimeout) {
  MessageQueue mq;
  auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
  mq.Publish("ch", Tick(1));
  mq.Publish("ch", Tick(2));
  mq.Shutdown();
  // Retained entries still drain after shutdown...
  auto entries = sub->Poll(10, std::chrono::milliseconds(10000));
  EXPECT_EQ(entries.size(), 2u);
  // ...and once drained, polls are immediate and final, not timeouts.
  const int64_t t0 = NowMicros();
  EXPECT_TRUE(sub->Poll(10, std::chrono::milliseconds(10000)).empty());
  EXPECT_LT(NowMicros() - t0, 5000000);
  EXPECT_TRUE(sub->closed());
}

TEST(MessageQueue, PublishAfterShutdownIsRefused) {
  MessageQueue mq;
  EXPECT_EQ(mq.Publish("ch", Tick(1)), 0);
  mq.Shutdown();
  EXPECT_EQ(mq.Publish("ch", Tick(2)), -1);
  EXPECT_EQ(mq.EndOffset("ch"), 1);  // Nothing appended.
}

}  // namespace
}  // namespace manu
