#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/metrics.h"
#include "wal/message.h"
#include "wal/mq.h"
#include "wal/time_tick.h"
#include "wal/tso.h"

namespace manu {
namespace {

// ---------------------------------------------------------------------------
// LogEntry
// ---------------------------------------------------------------------------

TEST(LogEntry, SerializeRoundTrip) {
  LogEntry entry;
  entry.type = LogEntryType::kInsert;
  entry.timestamp = 12345;
  entry.collection = 7;
  entry.shard = 2;
  entry.segment = 99;
  entry.batch.primary_keys = {1, 2};
  entry.batch.timestamps = {10, 11};
  entry.batch.columns.push_back(
      FieldColumn::MakeFloatVector(100, 2, {1, 2, 3, 4}));
  entry.delete_pks = {5};
  entry.payload = "aux";

  auto back = LogEntry::Deserialize(entry.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().type, LogEntryType::kInsert);
  EXPECT_EQ(back.value().timestamp, 12345u);
  EXPECT_EQ(back.value().collection, 7);
  EXPECT_EQ(back.value().shard, 2);
  EXPECT_EQ(back.value().segment, 99);
  EXPECT_EQ(back.value().batch.primary_keys, (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(back.value().delete_pks, (std::vector<int64_t>{5}));
  EXPECT_EQ(back.value().payload, "aux");
}

TEST(LogEntry, DeserializeGarbageFails) {
  EXPECT_FALSE(LogEntry::Deserialize("xx").ok());
}

TEST(ChannelNames, AreDistinctPerShard) {
  EXPECT_NE(ShardChannelName(1, 0), ShardChannelName(1, 1));
  EXPECT_NE(ShardChannelName(1, 0), ShardChannelName(2, 0));
  EXPECT_NE(DdlChannelName(), CoordChannelName());
}

// ---------------------------------------------------------------------------
// Tso
// ---------------------------------------------------------------------------

TEST(Tso, StrictlyMonotonic) {
  Tso tso;
  Timestamp last = 0;
  for (int i = 0; i < 10000; ++i) {
    const Timestamp ts = tso.Allocate();
    EXPECT_GT(ts, last);
    last = ts;
  }
}

TEST(Tso, BlockAllocationIsContiguousAndOrdered) {
  Tso tso;
  const Timestamp first = tso.AllocateBlock(100);
  const Timestamp next = tso.Allocate();
  EXPECT_GE(next, first + 100);
  EXPECT_EQ(tso.Last(), next);
}

TEST(Tso, PhysicalTracksWallClock) {
  Tso tso;
  const Timestamp ts = tso.Allocate();
  const uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  EXPECT_NEAR(static_cast<double>(PhysicalMs(ts)), static_cast<double>(now),
              1000.0);
}

TEST(Tso, ConcurrentAllocationsUnique) {
  Tso tso;
  constexpr int kThreads = 4, kPerThread = 5000;
  std::vector<std::vector<Timestamp>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        results[t].push_back(tso.Allocate());
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<Timestamp> all;
  for (const auto& r : results) all.insert(all.end(), r.begin(), r.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::unique(all.begin(), all.end()), all.end());
}

// ---------------------------------------------------------------------------
// MessageQueue
// ---------------------------------------------------------------------------

LogEntry Tick(Timestamp ts) {
  LogEntry e;
  e.type = LogEntryType::kTimeTick;
  e.timestamp = ts;
  return e;
}

TEST(MessageQueue, PublishSubscribeOrdered) {
  MessageQueue mq;
  auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
  EXPECT_EQ(mq.Publish("ch", Tick(1)), 0);
  EXPECT_EQ(mq.Publish("ch", Tick(2)), 1);
  auto entries = sub->TryPoll(10);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0]->timestamp, 1u);
  EXPECT_EQ(entries[1]->timestamp, 2u);
  EXPECT_EQ(sub->position(), 2);
}

TEST(MessageQueue, LatestSubscriptionSkipsHistory) {
  MessageQueue mq;
  mq.Publish("ch", Tick(1));
  auto sub = mq.Subscribe("ch", SubscribePosition::kLatest);
  EXPECT_TRUE(sub->TryPoll(10).empty());
  mq.Publish("ch", Tick(2));
  auto entries = sub->TryPoll(10);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0]->timestamp, 2u);
}

TEST(MessageQueue, IndependentSubscriberPositions) {
  MessageQueue mq;
  auto a = mq.Subscribe("ch", SubscribePosition::kEarliest);
  auto b = mq.Subscribe("ch", SubscribePosition::kEarliest);
  mq.Publish("ch", Tick(1));
  EXPECT_EQ(a->TryPoll(10).size(), 1u);
  EXPECT_EQ(b->TryPoll(10).size(), 1u);  // b unaffected by a's progress.
}

TEST(MessageQueue, SeekReplays) {
  MessageQueue mq;
  auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
  for (int i = 0; i < 5; ++i) mq.Publish("ch", Tick(i));
  EXPECT_EQ(sub->TryPoll(10).size(), 5u);
  sub->Seek(2);
  auto entries = sub->TryPoll(10);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0]->timestamp, 2u);
}

TEST(MessageQueue, TruncationSnapsOldReadersForward) {
  MessageQueue mq;
  auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
  for (int i = 0; i < 10; ++i) mq.Publish("ch", Tick(i));
  mq.TruncateBefore("ch", 6);
  EXPECT_EQ(mq.BeginOffset("ch"), 6);
  EXPECT_EQ(mq.EndOffset("ch"), 10);
  auto entries = sub->TryPoll(100);
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0]->timestamp, 6u);
}

TEST(MessageQueue, BlockingPollWakesOnPublish) {
  MessageQueue mq;
  auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
  std::thread publisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    mq.Publish("ch", Tick(42));
  });
  auto entries = sub->Poll(1, std::chrono::milliseconds(2000));
  publisher.join();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0]->timestamp, 42u);
}

TEST(MessageQueue, ListChannels) {
  MessageQueue mq;
  mq.Publish("wal/c1/s0", Tick(1));
  mq.Publish("wal/c1/s1", Tick(1));
  mq.Publish("wal/ddl", Tick(1));
  EXPECT_EQ(mq.ListChannels("wal/c1/").size(), 2u);
  EXPECT_EQ(mq.ListChannels("wal/").size(), 3u);
}

TEST(MessageQueue, ManyProducersOneConsumer) {
  MessageQueue mq;
  auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
  constexpr int kProducers = 4, kPerProducer = 1000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) mq.Publish("ch", Tick(1));
    });
  }
  for (auto& t : producers) t.join();
  size_t total = 0;
  while (true) {
    auto entries = sub->TryPoll(256);
    if (entries.empty()) break;
    total += entries.size();
  }
  EXPECT_EQ(total, static_cast<size_t>(kProducers * kPerProducer));
}

// ---------------------------------------------------------------------------
// TimeTickEmitter
// ---------------------------------------------------------------------------

TEST(TimeTick, EmitsIntoRegisteredChannels) {
  MessageQueue mq;
  Tso tso;
  TimeTickEmitter ticker(&mq, &tso, /*interval_ms=*/5);
  ticker.RegisterChannel("wal/c1/s0", 1, 0);
  ticker.RegisterChannel("wal/c1/s1", 1, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ticker.Stop();
  for (const char* ch : {"wal/c1/s0", "wal/c1/s1"}) {
    auto sub = mq.Subscribe(ch, SubscribePosition::kEarliest);
    auto entries = sub->TryPoll(1000);
    EXPECT_GE(entries.size(), 3u) << ch;
    Timestamp last = 0;
    for (const auto& e : entries) {
      EXPECT_EQ(e->type, LogEntryType::kTimeTick);
      EXPECT_GT(e->timestamp, last);
      last = e->timestamp;
    }
  }
}

TEST(TimeTick, UnregisterStopsTicks) {
  MessageQueue mq;
  Tso tso;
  TimeTickEmitter ticker(&mq, &tso, 1000000);  // Never fires on its own.
  ticker.RegisterChannel("ch", 1, 0);
  ticker.TickNow();
  ticker.UnregisterChannel("ch");
  ticker.TickNow();
  ticker.Stop();
  auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
  EXPECT_EQ(sub->TryPoll(10).size(), 1u);
}

TEST(TimeTick, TickDominatesPriorPublishes) {
  // A tick's timestamp must be >= every LSN already in the channel.
  MessageQueue mq;
  Tso tso;
  TimeTickEmitter ticker(&mq, &tso, 1000000);
  ticker.RegisterChannel("ch", 1, 0);
  LogEntry data;
  data.type = LogEntryType::kInsert;
  data.timestamp = tso.Allocate();
  mq.Publish("ch", std::move(data));
  ticker.TickNow();
  ticker.Stop();
  auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
  auto entries = sub->TryPoll(10);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_GT(entries[1]->timestamp, entries[0]->timestamp);
}

// ---------------------------------------------------------------------------
// Shutdown semantics
// ---------------------------------------------------------------------------

TEST(MessageQueue, ShutdownWakesBlockedPollImmediately) {
  MessageQueue mq;
  auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
  EXPECT_FALSE(sub->closed());
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    mq.Shutdown();
  });
  const int64_t t0 = NowMicros();
  auto entries = sub->Poll(10, std::chrono::milliseconds(10000));
  closer.join();
  EXPECT_TRUE(entries.empty());
  // Woken by Shutdown(), nowhere near the 10 s timeout.
  EXPECT_LT(NowMicros() - t0, 5000000);
  EXPECT_TRUE(sub->closed());
}

TEST(MessageQueue, PollAfterShutdownReturnsWithoutBurningTimeout) {
  MessageQueue mq;
  auto sub = mq.Subscribe("ch", SubscribePosition::kEarliest);
  mq.Publish("ch", Tick(1));
  mq.Publish("ch", Tick(2));
  mq.Shutdown();
  // Retained entries still drain after shutdown...
  auto entries = sub->Poll(10, std::chrono::milliseconds(10000));
  EXPECT_EQ(entries.size(), 2u);
  // ...and once drained, polls are immediate and final, not timeouts.
  const int64_t t0 = NowMicros();
  EXPECT_TRUE(sub->Poll(10, std::chrono::milliseconds(10000)).empty());
  EXPECT_LT(NowMicros() - t0, 5000000);
  EXPECT_TRUE(sub->closed());
}

TEST(MessageQueue, PublishAfterShutdownIsRefused) {
  MessageQueue mq;
  EXPECT_EQ(mq.Publish("ch", Tick(1)), 0);
  mq.Shutdown();
  EXPECT_EQ(mq.Publish("ch", Tick(2)), -1);
  EXPECT_EQ(mq.EndOffset("ch"), 1);  // Nothing appended.
}

}  // namespace
}  // namespace manu
