#include <gtest/gtest.h>

#include <limits>

#include "common/synthetic.h"
#include "index/flat_index.h"
#include "index/hnsw.h"
#include "index/index_factory.h"
#include "index/kmeans.h"
#include "index/metric_util.h"
#include "index/imi.h"
#include "index/pq.h"
#include "index/rq.h"
#include "index/scalar_index.h"
#include "index/sq.h"
#include "index/ssd_index.h"
#include "storage/object_store.h"

namespace manu {
namespace {

// ---------------------------------------------------------------------------
// KMeans
// ---------------------------------------------------------------------------

TEST(KMeans, RecoversWellSeparatedClusters) {
  // Four clearly separated 2-d clusters.
  std::vector<float> data;
  const float centers[4][2] = {{0, 0}, {10, 0}, {0, 10}, {10, 10}};
  std::mt19937_64 rng(1);
  std::normal_distribution<float> noise(0.0f, 0.1f);
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 50; ++i) {
      data.push_back(centers[c][0] + noise(rng));
      data.push_back(centers[c][1] + noise(rng));
    }
  }
  KMeansOptions opts;
  opts.k = 4;
  opts.max_iters = 20;
  KMeansResult km = KMeans(data.data(), 200, 2, opts);
  ASSERT_EQ(km.k, 4);
  // Every point's centroid must be within 1.0 of its true center.
  for (int64_t i = 0; i < 200; ++i) {
    const float* c = km.centroids.data() + km.assignments[i] * 2;
    const float d = simd::L2Sqr(c, data.data() + i * 2, 2);
    EXPECT_LT(d, 1.0f) << "row " << i;
  }
}

TEST(KMeans, HandlesFewerRowsThanK) {
  std::vector<float> data = {0, 0, 1, 1};
  KMeansOptions opts;
  opts.k = 10;
  KMeansResult km = KMeans(data.data(), 2, 2, opts);
  EXPECT_EQ(km.k, 2);
  EXPECT_EQ(km.assignments.size(), 2u);
}

TEST(KMeans, AllDuplicateRows) {
  std::vector<float> data(100 * 4, 3.0f);
  KMeansOptions opts;
  opts.k = 8;
  KMeansResult km = KMeans(data.data(), 100, 4, opts);
  EXPECT_EQ(static_cast<int64_t>(km.assignments.size()), 100);
}

TEST(HierarchicalKMeans, RespectsLeafCap) {
  SyntheticOptions opts;
  opts.num_rows = 5000;
  opts.dim = 16;
  VectorDataset data = MakeClusteredDataset(opts);
  KMeansResult km =
      HierarchicalKMeans(data.data.data(), data.NumRows(), 16, 100, 8, 42);
  ASSERT_GT(km.k, 0);
  std::vector<int64_t> sizes(km.k, 0);
  for (int32_t a : km.assignments) {
    ASSERT_GE(a, 0);
    ASSERT_LT(a, km.k);
    ++sizes[a];
  }
  for (int64_t s : sizes) EXPECT_LE(s, 100);
}

TEST(HierarchicalKMeans, DegenerateDuplicatesStillBounded) {
  std::vector<float> data(1000 * 8, 1.0f);
  KMeansResult km = HierarchicalKMeans(data.data(), 1000, 8, 64, 8, 1);
  std::vector<int64_t> sizes(km.k, 0);
  for (int32_t a : km.assignments) ++sizes[a];
  for (int64_t s : sizes) EXPECT_LE(s, 64);
}

// ---------------------------------------------------------------------------
// All vector indexes, parameterized: recall floor, serialization round
// trip, filter semantics.
// ---------------------------------------------------------------------------

struct IndexCase {
  IndexType type;
  MetricType metric;
  double min_recall;  ///< recall@10 floor on the clustered dataset.
};

std::string CaseName(const ::testing::TestParamInfo<IndexCase>& info) {
  return std::string(ToString(info.param.type)) + "_" +
         ToString(info.param.metric);
}

class VectorIndexTest : public ::testing::TestWithParam<IndexCase> {
 protected:
  void SetUp() override {
    opts_.num_rows = 4000;
    opts_.dim = 32;
    opts_.num_clusters = 32;
    opts_.cluster_spread = 0.1;
    opts_.metric = GetParam().metric;
    opts_.normalize = GetParam().metric != MetricType::kL2;
    data_ = MakeClusteredDataset(opts_);
    queries_ = MakeQueries(opts_, 50, 7);
    truth_ = BruteForceGroundTruth(data_, queries_, 10);

    params_.type = GetParam().type;
    params_.metric = GetParam().metric;
    params_.dim = 32;
    params_.nlist = 32;
    params_.pq_m = 8;
    params_.hnsw_m = 12;
    params_.hnsw_ef_construction = 100;
    params_.ssd_replicas = 2;
  }

  Result<std::unique_ptr<VectorIndex>> Build() {
    return BuildVectorIndex(params_, data_.data.data(), data_.NumRows(),
                            &store_, "test/ssd");
  }

  SearchParams Sp(size_t k = 10) const {
    SearchParams sp;
    sp.k = k;
    sp.nprobe = 8;
    sp.ef_search = 64;
    return sp;
  }

  double MeanRecallOf(const VectorIndex& index) {
    double sum = 0;
    for (int64_t q = 0; q < queries_.NumRows(); ++q) {
      auto hits = index.Search(queries_.Row(q), Sp());
      if (hits.ok()) sum += RecallAtK(hits.value(), truth_[q], 10);
    }
    return sum / static_cast<double>(queries_.NumRows());
  }

  SyntheticOptions opts_;
  VectorDataset data_;
  VectorDataset queries_;
  std::vector<std::vector<Neighbor>> truth_;
  IndexParams params_;
  MemoryObjectStore store_;
};

TEST_P(VectorIndexTest, BuildsAndMeetsRecallFloor) {
  auto index = Build();
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index.value()->Size(), data_.NumRows());
  EXPECT_GT(index.value()->MemoryBytes(), 0u);
  const double recall = MeanRecallOf(*index.value());
  EXPECT_GE(recall, GetParam().min_recall)
      << ToString(GetParam().type) << " recall=" << recall;
}

TEST_P(VectorIndexTest, SelfQueryFindsSelf) {
  auto index = Build();
  ASSERT_TRUE(index.ok());
  // Quantized indexes may not rank self strictly first; exact ones must.
  if (GetParam().type == IndexType::kFlat ||
      GetParam().type == IndexType::kIvfFlat ||
      GetParam().type == IndexType::kHnsw) {
    auto hits = index.value()->Search(data_.Row(17), Sp());
    ASSERT_TRUE(hits.ok());
    ASSERT_FALSE(hits.value().empty());
    EXPECT_EQ(hits.value()[0].id, 17);
  }
}

TEST_P(VectorIndexTest, SerializeDeserializePreservesResults) {
  auto index = Build();
  ASSERT_TRUE(index.ok());
  BinaryWriter w;
  index.value()->Serialize(&w);
  auto back = DeserializeVectorIndex(w.data(), &store_);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value()->Size(), data_.NumRows());
  EXPECT_EQ(back.value()->type(), GetParam().type);
  for (int64_t q = 0; q < 10; ++q) {
    auto a = index.value()->Search(queries_.Row(q), Sp());
    auto b = back.value()->Search(queries_.Row(q), Sp());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.value().size(), b.value().size());
    for (size_t i = 0; i < a.value().size(); ++i) {
      EXPECT_EQ(a.value()[i].id, b.value()[i].id);
      EXPECT_FLOAT_EQ(a.value()[i].score, b.value()[i].score);
    }
  }
}

TEST_P(VectorIndexTest, DeletedMaskExcludesRows) {
  auto index = Build();
  ASSERT_TRUE(index.ok());
  SearchParams sp = Sp();
  auto before = index.value()->Search(queries_.Row(0), sp);
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(before.value().empty());

  ConcurrentBitset deleted(static_cast<size_t>(data_.NumRows()));
  for (const Neighbor& n : before.value()) {
    deleted.Set(static_cast<size_t>(n.id));
  }
  sp.deleted = &deleted;
  auto after = index.value()->Search(queries_.Row(0), sp);
  ASSERT_TRUE(after.ok());
  for (const Neighbor& n : after.value()) {
    EXPECT_FALSE(deleted.Test(static_cast<size_t>(n.id)));
  }
}

TEST_P(VectorIndexTest, AllowedMaskRestrictsCandidates) {
  auto index = Build();
  ASSERT_TRUE(index.ok());
  ConcurrentBitset allowed(static_cast<size_t>(data_.NumRows()));
  for (int64_t i = 0; i < data_.NumRows(); i += 2) {
    allowed.Set(static_cast<size_t>(i));
  }
  SearchParams sp = Sp();
  sp.allowed = &allowed;
  auto hits = index.value()->Search(queries_.Row(1), sp);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits.value().empty());
  for (const Neighbor& n : hits.value()) EXPECT_EQ(n.id % 2, 0);
}

TEST_P(VectorIndexTest, VisibleRowsBoundsMvccPrefix) {
  auto index = Build();
  ASSERT_TRUE(index.ok());
  SearchParams sp = Sp();
  sp.visible_rows = data_.NumRows() / 4;
  auto hits = index.value()->Search(queries_.Row(2), sp);
  ASSERT_TRUE(hits.ok());
  for (const Neighbor& n : hits.value()) {
    EXPECT_LT(n.id, data_.NumRows() / 4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, VectorIndexTest,
    ::testing::Values(
        IndexCase{IndexType::kFlat, MetricType::kL2, 0.999},
        IndexCase{IndexType::kFlat, MetricType::kInnerProduct, 0.999},
        IndexCase{IndexType::kFlat, MetricType::kCosine, 0.999},
        IndexCase{IndexType::kIvfFlat, MetricType::kL2, 0.9},
        IndexCase{IndexType::kIvfFlat, MetricType::kInnerProduct, 0.9},
        IndexCase{IndexType::kIvfSq, MetricType::kL2, 0.8},
        IndexCase{IndexType::kSq8, MetricType::kL2, 0.8},
        IndexCase{IndexType::kSq8, MetricType::kInnerProduct, 0.8},
        IndexCase{IndexType::kPq, MetricType::kL2, 0.15},
        IndexCase{IndexType::kIvfPq, MetricType::kL2, 0.15},
        IndexCase{IndexType::kIvfPq, MetricType::kInnerProduct, 0.15},
        IndexCase{IndexType::kHnsw, MetricType::kL2, 0.9},
        IndexCase{IndexType::kHnsw, MetricType::kInnerProduct, 0.85},
        IndexCase{IndexType::kHnsw, MetricType::kCosine, 0.85},
        IndexCase{IndexType::kIvfHnsw, MetricType::kL2, 0.85},
        IndexCase{IndexType::kRq, MetricType::kL2, 0.3},
        IndexCase{IndexType::kRq, MetricType::kInnerProduct, 0.3},
        IndexCase{IndexType::kImi, MetricType::kL2, 0.5},
        IndexCase{IndexType::kSsdBucket, MetricType::kL2, 0.7}),
    CaseName);

// ---------------------------------------------------------------------------
// Family-specific behaviour
// ---------------------------------------------------------------------------

TEST(FlatIndex, IncrementalAdd) {
  IndexParams params;
  params.type = IndexType::kFlat;
  params.dim = 4;
  FlatIndex index(params);
  std::vector<float> a = {1, 0, 0, 0};
  std::vector<float> b = {0, 1, 0, 0};
  ASSERT_TRUE(index.Add(a.data(), 1).ok());
  ASSERT_TRUE(index.Add(b.data(), 1).ok());
  EXPECT_EQ(index.Size(), 2);
  SearchParams sp;
  sp.k = 1;
  auto hits = index.Search(b.data(), sp);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits.value()[0].id, 1);
}

TEST(HnswIndex, IncrementalAddKeepsSearchable) {
  SyntheticOptions opts;
  opts.num_rows = 2000;
  opts.dim = 16;
  VectorDataset data = MakeClusteredDataset(opts);
  IndexParams params;
  params.type = IndexType::kHnsw;
  params.dim = 16;
  params.hnsw_m = 8;
  params.hnsw_ef_construction = 60;
  HnswIndex index(params);
  for (int64_t begin = 0; begin < 2000; begin += 500) {
    ASSERT_TRUE(index.Add(data.Row(begin), 500).ok());
  }
  EXPECT_EQ(index.Size(), 2000);
  SearchParams sp;
  sp.k = 1;
  sp.ef_search = 64;
  int hits = 0;
  for (int64_t q = 0; q < 100; ++q) {
    auto res = index.Search(data.Row(q * 19), sp);
    ASSERT_TRUE(res.ok());
    if (!res.value().empty() && res.value()[0].id == q * 19) ++hits;
  }
  EXPECT_GE(hits, 95);  // Near-exact self-retrieval.
}

TEST(ScalarQuantizer, EncodeDecodeBounded) {
  SyntheticOptions opts;
  opts.num_rows = 500;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);
  ScalarQuantizer sq;
  sq.Train(data.data.data(), data.NumRows(), 8);
  std::vector<uint8_t> code(8);
  std::vector<float> decoded(8);
  for (int64_t i = 0; i < data.NumRows(); ++i) {
    sq.Encode(data.Row(i), code.data());
    sq.Decode(code.data(), decoded.data());
    for (int32_t d = 0; d < 8; ++d) {
      // Error bounded by one quantization step of the dim's range.
      EXPECT_NEAR(decoded[d], data.Row(i)[d], 0.02f);
    }
  }
}

TEST(ProductQuantizer, AdcApproximatesTrueDistance) {
  SyntheticOptions opts;
  opts.num_rows = 2000;
  opts.dim = 16;
  VectorDataset data = MakeClusteredDataset(opts);
  ProductQuantizer pq;
  ASSERT_TRUE(pq.Train(data.data.data(), data.NumRows(), 16, 4, 8, 42).ok());

  std::vector<uint8_t> code(4);
  std::vector<float> table(4 * ProductQuantizer::kCodebookSize);
  const float* query = data.Row(0);
  pq.BuildAdcTable(query, MetricType::kL2, table.data());

  // ADC distance must correlate strongly with true distance: check the
  // rank of the true nearest neighbors under ADC.
  double close_err = 0, far_err = 0;
  int close_n = 0, far_n = 0;
  for (int64_t i = 1; i < 500; ++i) {
    pq.Encode(data.Row(i), code.data());
    const float adc = pq.ScoreWithTable(table.data(), code.data());
    const float exact = simd::L2Sqr(query, data.Row(i), 16);
    if (exact < 1.0f) {
      close_err += std::abs(adc - exact);
      ++close_n;
    } else {
      far_err += std::abs(adc - exact);
      ++far_n;
    }
    // ADC error is bounded by quantization distortion, not unbounded.
    EXPECT_LT(std::abs(adc - exact), std::max(2.0f, exact));
  }
  ASSERT_GT(close_n, 0);
  ASSERT_GT(far_n, 0);
}

TEST(ProductQuantizer, RejectsIndivisibleDim) {
  ProductQuantizer pq;
  std::vector<float> data(10 * 10);
  EXPECT_TRUE(pq.Train(data.data(), 10, 10, 3, 4, 1).IsInvalidArgument());
}

TEST(SsdBucketIndex, BucketsAre4KAligned) {
  SyntheticOptions opts;
  opts.num_rows = 3000;
  opts.dim = 32;
  VectorDataset data = MakeClusteredDataset(opts);
  MemoryObjectStore store;
  IndexParams params;
  params.type = IndexType::kSsdBucket;
  params.dim = 32;
  params.ssd_replicas = 2;
  SsdBucketIndex index(params, &store, "ssd/aligned");
  ASSERT_TRUE(index.Build(data.data.data(), data.NumRows()).ok());
  EXPECT_EQ(index.SsdBytes() % 4096, 0u);
  EXPECT_GT(index.NumBuckets(), 0);
  // DRAM footprint must be far below the raw data size.
  EXPECT_LT(index.MemoryBytes(), data.data.size() * sizeof(float) / 2);
}

TEST(SsdBucketIndex, ReplicationDedupsResults) {
  SyntheticOptions opts;
  opts.num_rows = 2000;
  opts.dim = 16;
  VectorDataset data = MakeClusteredDataset(opts);
  MemoryObjectStore store;
  IndexParams params;
  params.type = IndexType::kSsdBucket;
  params.dim = 16;
  params.ssd_replicas = 3;
  SsdBucketIndex index(params, &store, "ssd/dedup");
  ASSERT_TRUE(index.Build(data.data.data(), data.NumRows()).ok());
  SearchParams sp;
  sp.k = 20;
  sp.nprobe = 32;
  auto hits = index.Search(data.Row(5), sp);
  ASSERT_TRUE(hits.ok());
  std::set<int64_t> ids;
  for (const Neighbor& n : hits.value()) {
    EXPECT_TRUE(ids.insert(n.id).second) << "duplicate id " << n.id;
  }
}

TEST(ResidualQuantizer, MoreStagesReduceError) {
  SyntheticOptions opts;
  opts.num_rows = 2000;
  opts.dim = 16;
  VectorDataset data = MakeClusteredDataset(opts);

  auto mean_error = [&](int32_t stages) {
    ResidualQuantizer rq;
    EXPECT_TRUE(
        rq.Train(data.data.data(), data.NumRows(), 16, stages, 6, 42).ok());
    std::vector<uint8_t> code(stages);
    std::vector<float> decoded(16);
    double err = 0;
    for (int64_t i = 0; i < 500; ++i) {
      float norm = 0;
      rq.Encode(data.Row(i), code.data(), &norm);
      rq.Decode(code.data(), decoded.data());
      err += simd::L2Sqr(decoded.data(), data.Row(i), 16);
      // Stored reconstruction norm must match the decoded vector.
      EXPECT_NEAR(norm, simd::L2NormSqr(decoded.data(), 16),
                  1e-2f * std::max(1.0f, norm));
    }
    return err / 500.0;
  };

  const double e1 = mean_error(1);
  const double e2 = mean_error(2);
  const double e4 = mean_error(4);
  EXPECT_LT(e2, e1);
  EXPECT_LT(e4, e2);
}

TEST(ImiIndex, ExhaustiveBudgetIsExact) {
  SyntheticOptions opts;
  opts.num_rows = 2000;
  opts.dim = 16;
  VectorDataset data = MakeClusteredDataset(opts);
  IndexParams params;
  params.type = IndexType::kImi;
  params.dim = 16;
  params.nlist = 64;
  ImiIndex index(params);
  ASSERT_TRUE(index.Build(data.data.data(), data.NumRows()).ok());
  EXPECT_GT(index.NumNonEmptyCells(), 32);

  VectorDataset queries = MakeQueries(opts, 20, 7);
  auto truth = BruteForceGroundTruth(data, queries, 10);
  SearchParams sp;
  sp.k = 10;
  sp.nprobe = 100000;  // Budget covers the whole dataset: exact results.
  double recall = 0;
  for (int64_t q = 0; q < queries.NumRows(); ++q) {
    auto hits = index.Search(queries.Row(q), sp);
    ASSERT_TRUE(hits.ok());
    recall += RecallAtK(hits.value(), truth[q], 10);
  }
  EXPECT_GE(recall / queries.NumRows(), 0.999);
}

TEST(IvfHnswIndex, MatchesIvfFlatRecall) {
  // Same coarse clustering; the centroid HNSW must find (almost) the same
  // probe lists as the exact centroid scan.
  SyntheticOptions opts;
  opts.num_rows = 4000;
  opts.dim = 24;
  VectorDataset data = MakeClusteredDataset(opts);
  VectorDataset queries = MakeQueries(opts, 30, 7);
  auto truth = BruteForceGroundTruth(data, queries, 10);

  auto recall_for = [&](IndexType type) {
    IndexParams params;
    params.type = type;
    params.dim = 24;
    params.nlist = 64;
    auto index = BuildVectorIndex(params, data.data.data(), data.NumRows());
    EXPECT_TRUE(index.ok());
    SearchParams sp;
    sp.k = 10;
    sp.nprobe = 12;
    double recall = 0;
    for (int64_t q = 0; q < queries.NumRows(); ++q) {
      auto hits = index.value()->Search(queries.Row(q), sp);
      if (hits.ok()) recall += RecallAtK(hits.value(), truth[q], 10);
    }
    return recall / static_cast<double>(queries.NumRows());
  };

  const double flat = recall_for(IndexType::kIvfFlat);
  const double hnsw = recall_for(IndexType::kIvfHnsw);
  EXPECT_GE(hnsw, flat - 0.05);
}

// ---------------------------------------------------------------------------
// Scalar / label indexes
// ---------------------------------------------------------------------------

TEST(ScalarSortedIndex, RangeAndCount) {
  FieldColumn col = FieldColumn::MakeInt64(1, {5, 3, 9, 3, 7});
  ScalarSortedIndex index;
  ASSERT_TRUE(index.Build(col).ok());
  ConcurrentBitset bits(5);
  index.RangeQuery(3, 5, &bits);
  EXPECT_TRUE(bits.Test(0));   // 5
  EXPECT_TRUE(bits.Test(1));   // 3
  EXPECT_TRUE(bits.Test(3));   // 3
  EXPECT_FALSE(bits.Test(2));  // 9
  EXPECT_FALSE(bits.Test(4));  // 7
  EXPECT_EQ(index.CountRange(3, 5), 3);
  EXPECT_EQ(index.CountRange(100, 200), 0);

  bits.Reset();
  index.EqualsQuery(3, &bits);
  EXPECT_EQ(bits.Count(), 2u);
}

TEST(ScalarSortedIndex, SerializeRoundTrip) {
  FieldColumn col = FieldColumn::MakeDouble(1, {1.5, -2.5, 0.0});
  ScalarSortedIndex index;
  ASSERT_TRUE(index.Build(col).ok());
  BinaryWriter w;
  index.Serialize(&w);
  BinaryReader r(w.data());
  auto back = ScalarSortedIndex::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().CountRange(-3, 0), 2);
}

TEST(ScalarSortedIndex, RejectsNonNumeric) {
  FieldColumn col = FieldColumn::MakeString(1, {"x"});
  ScalarSortedIndex index;
  EXPECT_FALSE(index.Build(col).ok());
}

TEST(ScalarSortedIndex, NanRowsSortLastAndNeverMatch) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  FieldColumn col = FieldColumn::MakeDouble(1, {3.0, nan, -inf, 7.0, nan, inf});
  ScalarSortedIndex index;
  ASSERT_TRUE(index.Build(col).ok());
  EXPECT_EQ(index.NumRows(), 6);
  EXPECT_EQ(index.NumFinite(), 4);  // NaNs excluded; ±inf are ordered values.

  // A full-line range sees every non-NaN row, including the infinities.
  ConcurrentBitset bits(6);
  index.RangeQuery(-inf, inf, &bits);
  EXPECT_EQ(bits.Count(), 4u);
  EXPECT_FALSE(bits.Test(1));
  EXPECT_FALSE(bits.Test(4));
  EXPECT_EQ(index.CountRange(-inf, inf), 4);

  // ±inf stored values match their own bound and equality queries.
  bits.Reset();
  index.EqualsQuery(inf, &bits);
  EXPECT_TRUE(bits.Test(5));
  EXPECT_EQ(bits.Count(), 1u);
  bits.Reset();
  index.RangeQuery(-inf, 0.0, &bits);
  EXPECT_TRUE(bits.Test(2));
  EXPECT_EQ(bits.Count(), 1u);

  // NaN rows never match equality, even NaN == NaN style probes.
  bits.Reset();
  index.EqualsQuery(nan, &bits);
  EXPECT_FALSE(bits.Any());
  EXPECT_EQ(index.CountRange(nan, nan), 0);
}

TEST(ScalarSortedIndex, NanBoundsMatchNothing) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  FieldColumn col = FieldColumn::MakeDouble(1, {1.0, 2.0, 3.0});
  ScalarSortedIndex index;
  ASSERT_TRUE(index.Build(col).ok());
  ConcurrentBitset bits(3);
  index.RangeQuery(nan, 10.0, &bits);
  EXPECT_FALSE(bits.Any());
  index.RangeQuery(0.0, nan, &bits);
  EXPECT_FALSE(bits.Any());
  EXPECT_EQ(index.CountRange(nan, 10.0), 0);
  EXPECT_EQ(index.CountRange(0.0, nan), 0);
}

TEST(ScalarSortedIndex, EmptyColumn) {
  FieldColumn col = FieldColumn::MakeDouble(1, {});
  ScalarSortedIndex index;
  ASSERT_TRUE(index.Build(col).ok());
  EXPECT_EQ(index.NumRows(), 0);
  EXPECT_EQ(index.NumFinite(), 0);
  ConcurrentBitset bits(1);
  index.RangeQuery(-1e300, 1e300, &bits);
  EXPECT_FALSE(bits.Any());
  EXPECT_EQ(index.CountRange(-1e300, 1e300), 0);

  BinaryWriter w;
  index.Serialize(&w);
  BinaryReader r(w.data());
  auto back = ScalarSortedIndex::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().NumRows(), 0);
}

TEST(ScalarSortedIndex, SerdePreservesNanTail) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  FieldColumn col = FieldColumn::MakeDouble(1, {2.0, nan, 1.0});
  ScalarSortedIndex index;
  ASSERT_TRUE(index.Build(col).ok());
  BinaryWriter w;
  index.Serialize(&w);
  BinaryReader r(w.data());
  auto back = ScalarSortedIndex::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().NumRows(), 3);
  EXPECT_EQ(back.value().NumFinite(), 2);  // Recomputed from the value order.
  ConcurrentBitset bits(3);
  back.value().RangeQuery(0.0, 5.0, &bits);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_TRUE(bits.Test(2));
}

TEST(LabelIndex, EqualsQuery) {
  FieldColumn col = FieldColumn::MakeString(1, {"b", "a", "b", "c"});
  LabelIndex index;
  ASSERT_TRUE(index.Build(col).ok());
  ConcurrentBitset bits(4);
  index.EqualsQuery("b", &bits);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_TRUE(bits.Test(2));
  bits.Reset();
  index.EqualsQuery("zzz", &bits);
  EXPECT_FALSE(bits.Any());
}

// ---------------------------------------------------------------------------
// Factory errors
// ---------------------------------------------------------------------------

TEST(IndexFactory, SsdWithoutStoreFails) {
  IndexParams params;
  params.type = IndexType::kSsdBucket;
  params.dim = 8;
  EXPECT_FALSE(CreateVectorIndex(params).ok());
}

TEST(IndexFactory, DeserializeGarbageFails) {
  EXPECT_FALSE(DeserializeVectorIndex("nonsense").ok());
}

TEST(IndexFactory, EmptyBuildRejectedByIvf) {
  IndexParams params;
  params.type = IndexType::kIvfFlat;
  params.dim = 8;
  EXPECT_FALSE(BuildVectorIndex(params, nullptr, 0).ok());
}

}  // namespace
}  // namespace manu
