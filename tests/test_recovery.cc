// Liveness and crash recovery (Section 3.6): heartbeat leases with
// persisted fencing epochs, instance-epoch fencing of superseded
// deployments, ManuInstance::Recover over a surviving DurableState, WAL
// truncation-vs-archive validation, and deadline regressions for the
// blocking test barriers (FlushAndWait / WaitUntilVisible / Compact).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/synthetic.h"
#include "core/lease.h"
#include "core/manu.h"
#include "wal/message.h"

namespace manu {
namespace {

CollectionSchema VecSchema(const std::string& name, int32_t dim) {
  CollectionSchema schema(name);
  FieldSchema vec;
  vec.name = "v";
  vec.type = DataType::kFloatVector;
  vec.dim = dim;
  EXPECT_TRUE(schema.AddField(vec).ok());
  return schema;
}

EntityBatch VecBatch(const CollectionMeta& meta, const VectorDataset& data,
                     int64_t begin, int64_t end) {
  EntityBatch batch;
  for (int64_t i = begin; i < end; ++i) batch.primary_keys.push_back(i);
  batch.columns.push_back(FieldColumn::MakeFloatVector(
      meta.schema.FieldByName("v")->id, data.dim,
      std::vector<float>(data.Row(begin),
                         data.Row(begin) + (end - begin) * data.dim)));
  return batch;
}

int64_t Counter(const std::string& name) {
  return MetricsRegistry::Global().CounterValue(name);
}

// ---------------------------------------------------------------------------
// Lease manager unit tests
// ---------------------------------------------------------------------------

TEST(Lease, EpochsAreMonotoneAcrossReregistration) {
  MetaStore meta;
  LeaseManager lm(&meta, /*ttl_ms=*/1000);
  const int64_t e1 = lm.Register(7, "query");
  EXPECT_GT(e1, 0);
  EXPECT_TRUE(lm.Renew(7, e1).ok());
  EXPECT_TRUE(lm.CheckEpoch(7, e1).ok());

  // Graceful removal leaves the persisted epoch behind; re-registering the
  // same node id must bump past it so the old incarnation is fenced.
  lm.Deregister(7);
  const int64_t e2 = lm.Register(7, "query");
  EXPECT_GT(e2, e1);
  EXPECT_FALSE(lm.Renew(7, e1).ok());
  EXPECT_FALSE(lm.CheckEpoch(7, e1).ok());
  EXPECT_TRUE(lm.CheckEpoch(7, e2).ok());

  // The epochs survive the LeaseManager itself: a fresh manager over the
  // same MetaStore (process restart) keeps counting up.
  LeaseManager lm2(&meta, 1000);
  const int64_t e3 = lm2.Register(7, "query");
  EXPECT_GT(e3, e2);
}

TEST(Lease, RevokeFencesInFlightCommits) {
  MetaStore meta;
  LeaseManager lm(&meta, 1000);
  const int64_t e1 = lm.Register(9, "data");
  const int64_t rejected_before = Counter("lease.fencing_rejections");

  const int64_t e2 = lm.Revoke(9);
  EXPECT_GT(e2, e1);
  // The zombie's commit-point check fails against the bumped epoch...
  Status st = lm.CheckEpoch(9, e1);
  EXPECT_FALSE(st.ok()) << st.ToString();
  EXPECT_GT(Counter("lease.fencing_rejections"), rejected_before);
  // ...and its heartbeat no longer resurrects the lease.
  EXPECT_FALSE(lm.Renew(9, e1).ok());

  // Revoked leases report dead exactly once (not again as "expired").
  bool found_dead = false;
  for (const LeaseInfo& info : lm.Snapshot()) {
    if (info.node == 9) found_dead = info.dead;
  }
  EXPECT_TRUE(found_dead);
  EXPECT_TRUE(lm.ExpiredLeases(NowMs() + 10000).empty());
}

TEST(Lease, ExpiryAndFailpointPausedHeartbeats) {
  MetaStore meta;
  LeaseManager lm(&meta, /*ttl_ms=*/50);
  const int64_t epoch = lm.Register(11, "query");

  EXPECT_TRUE(lm.ExpiredLeases(NowMs()).empty());
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  auto expired = lm.ExpiredLeases(NowMs());
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].node, 11);

  // A renewal resets the clock.
  ASSERT_TRUE(lm.Renew(11, epoch).ok());
  EXPECT_TRUE(lm.ExpiredLeases(NowMs()).empty());

  // A "network partition": the node is alive but its heartbeats are
  // dropped at the failpoint, so the lease expires anyway.
  ScopedFailPoint partition("lease.heartbeat.11",
                            FailPointPolicy::ErrorWithProbability(1.0));
  EXPECT_FALSE(lm.Renew(11, epoch).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(lm.ExpiredLeases(NowMs()).size(), 1u);
}

// ---------------------------------------------------------------------------
// MQ truncation tracking (what crash recovery validates against)
// ---------------------------------------------------------------------------

TEST(MqTruncation, TracksMaxDroppedLsnPerKind) {
  MessageQueue mq;
  const std::string ch = "trunc-test";
  auto publish = [&](LogEntryType type, Timestamp ts) {
    LogEntry e;
    e.type = type;
    e.timestamp = ts;
    ASSERT_GE(mq.Publish(ch, std::move(e)), 0);
  };
  publish(LogEntryType::kInsert, 10);
  publish(LogEntryType::kDelete, 20);
  publish(LogEntryType::kInsert, 30);
  publish(LogEntryType::kInsert, 40);

  EXPECT_EQ(mq.TruncatedBelowTs(ch), 0u);
  mq.TruncateBefore(ch, 2);  // Drops LSNs 10 and 20 (the delete).
  EXPECT_EQ(mq.TruncatedBelowTs(ch), 20u);
  EXPECT_EQ(mq.TruncatedDeleteTs(ch), 20u);
  mq.TruncateBefore(ch, 3);  // Drops LSN 30.
  EXPECT_EQ(mq.TruncatedBelowTs(ch), 30u);
  EXPECT_EQ(mq.TruncatedDeleteTs(ch), 20u);  // No further deletes dropped.
  EXPECT_EQ(mq.BeginOffset(ch), 3);
  EXPECT_EQ(mq.EndOffset(ch), 4);
}

// ---------------------------------------------------------------------------
// Crash recovery over durable state
// ---------------------------------------------------------------------------

ManuConfig SmallConfig() {
  ManuConfig config;
  config.num_shards = 2;
  config.num_query_nodes = 2;
  config.segment_seal_rows = 100;
  config.segment_idle_seal_ms = 600000;  // Only explicit flushes seal.
  config.time_tick_interval_ms = 10;
  return config;
}

TEST(Recovery, TauZeroSearchSeesAllAckedWritesAfterRestart) {
  ManuConfig config = SmallConfig();
  SyntheticOptions opts;
  opts.num_rows = 300;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);

  std::shared_ptr<DurableState> durable;
  CollectionMeta meta;
  {
    ManuInstance db(config);
    durable = db.durable_state();
    auto created = db.CreateCollection(VecSchema("crash", 8));
    ASSERT_TRUE(created.ok());
    meta = created.value();
    IndexParams params;
    params.type = IndexType::kIvfFlat;
    params.nlist = 4;
    ASSERT_TRUE(db.CreateIndex("crash", "v", params).ok());

    // 200 rows sealed + archived, 100 rows only in the WAL, 10 deletes.
    ASSERT_TRUE(db.Insert("crash", VecBatch(meta, data, 0, 200)).ok());
    ASSERT_TRUE(db.FlushAndWait("crash").ok());
    ASSERT_TRUE(db.Insert("crash", VecBatch(meta, data, 200, 300)).ok());
    std::vector<int64_t> dead_pks;
    for (int64_t pk = 0; pk < 10; ++pk) dead_pks.push_back(pk);
    auto del_ts = db.Delete("crash", dead_pks);
    ASSERT_TRUE(del_ts.ok());
    ASSERT_TRUE(db.WaitUntilVisible("crash", del_ts.value()).ok());
  }  // Abrupt end of the process: every node object is gone.

  auto recovered = ManuInstance::Recover(config, durable);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ManuInstance& db = *recovered.value();

  SearchRequest req;
  req.collection = "crash";
  req.query.assign(data.Row(0), data.Row(0) + 8);
  req.k = 300;
  req.consistency = ConsistencyLevel::kStrong;
  auto res = db.Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().coverage, 1.0);
  std::set<int64_t> found(res.value().ids.begin(), res.value().ids.end());
  EXPECT_EQ(found.size(), res.value().ids.size()) << "duplicate pks";
  for (int64_t pk = 0; pk < 10; ++pk) {
    EXPECT_EQ(found.count(pk), 0u) << "deleted pk " << pk << " resurrected";
  }
  for (int64_t pk = 10; pk < 300; ++pk) {
    EXPECT_EQ(found.count(pk), 1u) << "acked pk " << pk << " lost";
  }

  // Recovery is itself durable: writes keep flowing on the new instance.
  auto ts = db.Insert("crash", VecBatch(meta, data, 0, 10));
  ASSERT_TRUE(ts.ok());
  ASSERT_TRUE(db.WaitUntilVisible("crash", ts.value()).ok());
}

TEST(Recovery, InstanceEpochFencesSupersededInstance) {
  ManuConfig config = SmallConfig();
  SyntheticOptions opts;
  opts.num_rows = 50;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);

  auto old_db = std::make_unique<ManuInstance>(config);
  auto created = old_db->CreateCollection(VecSchema("fence", 8));
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE(
      old_db->Insert("fence", VecBatch(created.value(), data, 0, 50)).ok());

  // Fail over to a new instance while the old one is still running (a
  // split-brain): acquiring the instance epoch fences the old loggers.
  auto new_db = ManuInstance::Recover(config, old_db->durable_state());
  ASSERT_TRUE(new_db.ok()) << new_db.status().ToString();
  EXPECT_GT(new_db.value()->instance_epoch(), old_db->instance_epoch());

  const int64_t rejected_before = Counter("lease.fencing_rejections");
  auto stale = old_db->Insert("fence", VecBatch(created.value(), data, 0, 10));
  EXPECT_FALSE(stale.ok()) << "zombie instance's WAL publish not fenced";
  EXPECT_GT(Counter("lease.fencing_rejections"), rejected_before);

  auto fresh =
      new_db.value()->Insert("fence", VecBatch(created.value(), data, 0, 10));
  EXPECT_TRUE(fresh.ok()) << fresh.status().ToString();

  // Old instance first: its destructor must not tear down the shared WAL
  // broker under the successor.
  old_db.reset();
  auto after =
      new_db.value()->Insert("fence", VecBatch(created.value(), data, 10, 20));
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

TEST(Recovery, GroupCommitFencedNeverAckedAckedSurviveRecover) {
  // The group-commit crash drill: with batching on, fenced (zombie) and
  // live publishes share commit groups on one channel. Refused publishes
  // must never be acked or installed; everything acked must survive a
  // subsequent abrupt failover. This is the "fencing inside the commit
  // decision" property — a pre-publish check would pass for entries staged
  // before the epoch bump but flushed after it.
  ManuConfig config = SmallConfig();
  config.num_shards = 1;  // One channel: zombie and successor share groups.
  config.wal_group_commit = true;
  config.wal_group_max_entries = 64;
  config.wal_flush_linger_us = 200;  // Encourage mixed groups.
  config.wal_sim_flush_latency_us = 100;
  SyntheticOptions opts;
  opts.num_rows = 300;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);

  auto old_db = std::make_unique<ManuInstance>(config);
  auto created = old_db->CreateCollection(VecSchema("gc", 8));
  ASSERT_TRUE(created.ok());
  const CollectionMeta meta = created.value();
  IndexParams params;
  params.type = IndexType::kIvfFlat;
  params.nlist = 4;
  ASSERT_TRUE(old_db->CreateIndex("gc", "v", params).ok());

  // Phase 1: concurrent writers through the grouped publish path; every
  // batch acked. Rows [0, 100).
  {
    std::vector<std::thread> writers;
    for (int w = 0; w < 4; ++w) {
      writers.emplace_back([&, w] {
        for (int b = 0; b < 5; ++b) {
          const int64_t lo = w * 25 + b * 5;
          auto st = old_db->Insert("gc", VecBatch(meta, data, lo, lo + 5));
          EXPECT_TRUE(st.ok()) << st.status().ToString();
        }
      });
    }
    for (auto& t : writers) t.join();
  }

  // Phase 2: failover while the old instance keeps running (split brain).
  auto new_db = ManuInstance::Recover(config, old_db->durable_state());
  ASSERT_TRUE(new_db.ok()) << new_db.status().ToString();

  // Phase 3: mixed traffic on the same shard channel. The zombie's rows
  // [100, 150) must all be refused; the successor's rows [200, 250) must
  // all commit — even when both sit in the same commit group.
  std::atomic<int> stale_failures{0};
  std::vector<std::thread> mixed;
  for (int w = 0; w < 2; ++w) {
    mixed.emplace_back([&, w] {
      for (int b = 0; b < 5; ++b) {
        const int64_t lo = 100 + w * 25 + b * 5;
        auto st = old_db->Insert("gc", VecBatch(meta, data, lo, lo + 5));
        if (!st.ok()) stale_failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int w = 0; w < 2; ++w) {
    mixed.emplace_back([&, w] {
      for (int b = 0; b < 5; ++b) {
        const int64_t lo = 200 + w * 25 + b * 5;
        auto st =
            new_db.value()->Insert("gc", VecBatch(meta, data, lo, lo + 5));
        EXPECT_TRUE(st.ok()) << st.status().ToString();
      }
    });
  }
  for (auto& t : mixed) t.join();
  EXPECT_EQ(stale_failures.load(), 10) << "a fenced publish was acked";

  // Abrupt end of both instances (zombie first: it must not tear down the
  // shared broker under the successor), then recover from durable state.
  auto durable = new_db.value()->durable_state();
  old_db.reset();
  new_db.value().reset();
  auto recovered = ManuInstance::Recover(config, durable);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  SearchRequest req;
  req.collection = "gc";
  req.query.assign(data.Row(0), data.Row(0) + 8);
  req.k = 300;
  req.consistency = ConsistencyLevel::kStrong;
  auto res = recovered.value()->Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  std::set<int64_t> found(res.value().ids.begin(), res.value().ids.end());
  for (int64_t pk = 0; pk < 100; ++pk) {
    EXPECT_EQ(found.count(pk), 1u) << "acked pk " << pk << " lost";
  }
  for (int64_t pk = 100; pk < 150; ++pk) {
    EXPECT_EQ(found.count(pk), 0u)
        << "fenced pk " << pk << " leaked into the log";
  }
  for (int64_t pk = 200; pk < 250; ++pk) {
    EXPECT_EQ(found.count(pk), 1u) << "acked pk " << pk << " lost";
  }
}

TEST(Recovery, DetectsWalTruncatedAboveArchivedFloor) {
  ManuConfig config = SmallConfig();
  SyntheticOptions opts;
  opts.num_rows = 50;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);

  std::shared_ptr<DurableState> durable;
  {
    ManuInstance db(config);
    durable = db.durable_state();
    auto created = db.CreateCollection(VecSchema("loss", 8));
    ASSERT_TRUE(created.ok());
    // Acked but never archived: these rows exist only in the WAL.
    auto ts = db.Insert("loss", VecBatch(created.value(), data, 0, 50));
    ASSERT_TRUE(ts.ok());
    ASSERT_TRUE(db.WaitUntilVisible("loss", ts.value()).ok());

    // Force-expire the whole shard channel behind the system's back (the
    // guarded TruncateLogBefore would refuse to cut above the floor).
    const CollectionId cid = created.value().id;
    for (ShardId shard = 0; shard < config.num_shards; ++shard) {
      const std::string ch = ShardChannelName(cid, shard);
      durable->mq.TruncateBefore(ch, durable->mq.EndOffset(ch));
    }
  }

  auto recovered = ManuInstance::Recover(config, durable);
  ASSERT_FALSE(recovered.ok());
  EXPECT_TRUE(recovered.status().IsDataLoss())
      << recovered.status().ToString();
}

TEST(Recovery, TruncateLogBeforeClampsToArchivedFloor) {
  ManuConfig config = SmallConfig();
  SyntheticOptions opts;
  opts.num_rows = 200;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);

  std::shared_ptr<DurableState> durable;
  CollectionMeta meta;
  {
    ManuInstance db(config);
    durable = db.durable_state();
    auto created = db.CreateCollection(VecSchema("expire", 8));
    ASSERT_TRUE(created.ok());
    meta = created.value();
    // Archived prefix + a growing tail that only the WAL holds.
    ASSERT_TRUE(db.Insert("expire", VecBatch(meta, data, 0, 100)).ok());
    ASSERT_TRUE(db.FlushAndWait("expire").ok());
    auto ts = db.Insert("expire", VecBatch(meta, data, 100, 200));
    ASSERT_TRUE(ts.ok());
    ASSERT_TRUE(db.WaitUntilVisible("expire", ts.value()).ok());

    // Ask to expire *everything*: the clamp must retain the unarchived
    // tail, so recovery below still replays rows 100..199.
    ASSERT_TRUE(db.TruncateLogBefore("expire", kMaxTimestamp).ok());
  }

  auto recovered = ManuInstance::Recover(config, durable);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  SearchRequest req;
  req.collection = "expire";
  req.query.assign(data.Row(0), data.Row(0) + 8);
  req.k = 200;
  req.consistency = ConsistencyLevel::kStrong;
  auto res = recovered.value()->Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  std::set<int64_t> found(res.value().ids.begin(), res.value().ids.end());
  for (int64_t pk = 0; pk < 200; ++pk) {
    EXPECT_EQ(found.count(pk), 1u) << "acked pk " << pk << " lost";
  }
}

// ---------------------------------------------------------------------------
// Deadline regressions: the blocking barriers must report kTimeout
// ---------------------------------------------------------------------------

class TimeoutTest : public ::testing::Test {
 protected:
  TimeoutTest() {
    ManuConfig config = SmallConfig();
    db_ = std::make_unique<ManuInstance>(config);
    auto created = db_->CreateCollection(VecSchema("slow", 8));
    EXPECT_TRUE(created.ok());
    meta_ = created.value();
    SyntheticOptions opts;
    opts.num_rows = 120;
    opts.dim = 8;
    data_ = MakeClusteredDataset(opts);
  }

  std::unique_ptr<ManuInstance> db_;
  CollectionMeta meta_;
  VectorDataset data_;
};

TEST_F(TimeoutTest, FlushAndWaitHonorsDeadline) {
  ASSERT_TRUE(db_->Insert("slow", VecBatch(meta_, data_, 0, 120)).ok());
  // Every shard's seal stalls 400 ms; the 100 ms deadline fires first.
  FailPointPolicy stall = FailPointPolicy::Delay(400000);
  stall.max_trips = 4;
  ScopedFailPoint fp("data_node.seal", std::move(stall));
  Status st = db_->FlushAndWait("slow", /*timeout_ms=*/100);
  EXPECT_TRUE(st.IsTimeout()) << st.ToString();
  // The flush completes once the stall passes (clean teardown).
  EXPECT_TRUE(db_->FlushAndWait("slow").ok());
}

TEST_F(TimeoutTest, WaitUntilVisibleHonorsSharedBudget) {
  auto ts = db_->Insert("slow", VecBatch(meta_, data_, 0, 120));
  ASSERT_TRUE(ts.ok());
  // A timestamp ~100 s in the future can't become visible; the deadline
  // bounds the WHOLE call even though multiple nodes are waited on in turn.
  const Timestamp future =
      ComposeTimestamp(PhysicalMs(ts.value()) + 100000, 0);
  const int64_t t0 = NowMs();
  Status st = db_->WaitUntilVisible("slow", future, /*timeout_ms=*/150);
  const int64_t elapsed = NowMs() - t0;
  EXPECT_TRUE(st.IsTimeout()) << st.ToString();
  EXPECT_LT(elapsed, 2000) << "per-node waits burned the budget repeatedly";
}

TEST_F(TimeoutTest, CompactHonorsDeadline) {
  IndexParams params;
  params.type = IndexType::kIvfFlat;
  params.nlist = 4;
  ASSERT_TRUE(db_->CreateIndex("slow", "v", params).ok());
  // Two flushes of 30 rows over 2 shards leave ~15-row segments — all under
  // the small-segment bar (0.25 * segment_seal_rows = 25), so Compact has a
  // real merge to do.
  ASSERT_TRUE(db_->Insert("slow", VecBatch(meta_, data_, 0, 30)).ok());
  ASSERT_TRUE(db_->FlushAndWait("slow").ok());
  ASSERT_TRUE(db_->Insert("slow", VecBatch(meta_, data_, 30, 60)).ok());
  ASSERT_TRUE(db_->FlushAndWait("slow").ok());

  // The merged segment's index build stalls past the compaction deadline.
  FailPointPolicy stall = FailPointPolicy::Delay(400000);
  stall.max_trips = 2;
  ScopedFailPoint fp("index_node.build", std::move(stall));
  Status st = db_->Compact("slow", /*timeout_ms=*/100);
  EXPECT_TRUE(st.IsTimeout()) << st.ToString();
}

}  // namespace
}  // namespace manu
