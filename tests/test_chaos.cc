// Chaos suite: fault injection, graceful degradation and crash recovery.
// Built as its own test binary (label "chaos") so `ctest -L chaos` runs just
// these, optionally under MANU_SANITIZE=address|thread.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <random>
#include <set>
#include <thread>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/synthetic.h"
#include "common/trace.h"
#include "core/manu.h"
#include "storage/lsm_map.h"

namespace manu {
namespace {

CollectionSchema VecSchema(const std::string& name, int32_t dim) {
  CollectionSchema schema(name);
  FieldSchema vec;
  vec.name = "v";
  vec.type = DataType::kFloatVector;
  vec.dim = dim;
  EXPECT_TRUE(schema.AddField(vec).ok());
  return schema;
}

/// Rows [begin, end) of `data` as a batch with pks begin..end-1 shifted by
/// `pk_offset`.
EntityBatch VecBatch(const CollectionMeta& meta, const VectorDataset& data,
                     int64_t begin, int64_t end, int64_t pk_offset = 0) {
  EntityBatch batch;
  for (int64_t i = begin; i < end; ++i) {
    batch.primary_keys.push_back(pk_offset + i);
  }
  batch.columns.push_back(FieldColumn::MakeFloatVector(
      meta.schema.FieldByName("v")->id, data.dim,
      std::vector<float>(data.Row(begin),
                         data.Row(begin) + (end - begin) * data.dim)));
  return batch;
}

// ---------------------------------------------------------------------------
// Recovery gate
// ---------------------------------------------------------------------------

TEST(RecoveryGate, PromotionRearmsServiceTimestamp) {
  // A follower consumes the channel for deletes/ticks WITHOUT materializing
  // inserts, yet its service_ts advances. If promotion kept that service_ts,
  // the consistency gate would report the rebuilt growing state as fresh
  // while replay had not even started. Promotion must reset the gate.
  ManuConfig config;
  MetaStore meta_store;
  MemoryObjectStore store;
  MessageQueue mq;
  Tso tso;
  CoreContext ctx{config, &meta_store, &store, &mq, &tso, nullptr};

  const CollectionId coll = 42;
  auto schema = std::make_shared<CollectionSchema>(VecSchema("gate", 4));
  const FieldId field = schema->FieldByName("v")->id;

  QueryNode node(1, ctx);
  node.AddChannel(coll, /*shard=*/0, schema, /*primary=*/false);
  node.Start();

  // Publish 3 insert batches of 10 rows.
  Timestamp last_ts = 0;
  for (int64_t b = 0; b < 3; ++b) {
    LogEntry entry;
    entry.type = LogEntryType::kInsert;
    entry.collection = coll;
    entry.shard = 0;
    entry.segment = 7;
    for (int64_t i = 0; i < 10; ++i) {
      entry.batch.primary_keys.push_back(b * 10 + i);
      entry.batch.timestamps.push_back(tso.Allocate());
    }
    entry.batch.columns.push_back(FieldColumn::MakeFloatVector(
        field, 4, std::vector<float>(10 * 4, 0.5f)));
    entry.timestamp = entry.batch.timestamps.back();
    last_ts = entry.timestamp;
    ASSERT_GE(mq.Publish(ShardChannelName(coll, 0), std::move(entry)), 0);
  }

  // The follower consumes everything (gate open) but materializes nothing.
  ASSERT_TRUE(node.WaitServiceTs(coll, last_ts, 2000));
  EXPECT_EQ(node.NumGrowingRows(coll), 0);

  // Promote with the pump stopped: the gate must re-arm immediately, before
  // any replay happens.
  node.Stop();
  node.PromoteChannel(coll, 0);
  EXPECT_EQ(node.ServiceTs(coll), 0u);

  // Once the pump resumes, replay rebuilds the growing state and the gate
  // re-opens only after real progress.
  node.Start();
  ASSERT_TRUE(node.WaitServiceTs(coll, last_ts, 2000));
  EXPECT_EQ(node.NumGrowingRows(coll), 30);
  node.Stop();
}

// ---------------------------------------------------------------------------
// Graceful degradation
// ---------------------------------------------------------------------------

class DegradationTest : public ::testing::Test {
 protected:
  DegradationTest() {
    ManuConfig config;
    config.num_shards = 2;
    config.num_query_nodes = 2;
    config.segment_seal_rows = 100000;  // Keep everything growing.
    config.segment_idle_seal_ms = 600000;
    config.time_tick_interval_ms = 10;
    db_ = std::make_unique<ManuInstance>(config);
    auto meta = db_->CreateCollection(VecSchema("deg", 8));
    EXPECT_TRUE(meta.ok());
    meta_ = meta.value();
    SyntheticOptions opts;
    opts.num_rows = 200;
    opts.dim = 8;
    data_ = MakeClusteredDataset(opts);
    auto ts = db_->Insert("deg", VecBatch(meta_, data_, 0, 200));
    EXPECT_TRUE(ts.ok());
    EXPECT_TRUE(db_->WaitUntilVisible("deg", ts.value()).ok());
  }

  SearchRequest Req() {
    SearchRequest req;
    req.collection = "deg";
    req.query.assign(data_.Row(0), data_.Row(0) + 8);
    req.k = 5;
    req.consistency = ConsistencyLevel::kEventually;
    return req;
  }

  std::unique_ptr<ManuInstance> db_;
  CollectionMeta meta_;
  VectorDataset data_;
};

TEST_F(DegradationTest, NodeFailureFailsSearchByDefault) {
  ScopedFailPoint fp("query_node.search_segment",
                     FailPointPolicy::ErrorOnce());
  auto res = db_->Search(Req());
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(fp.trips(), 1);
}

TEST_F(DegradationTest, AllowPartialDropsFailingNode) {
  const int64_t partial_before =
      MetricsRegistry::Global().CounterValue("proxy.partial_results");
  {
    // Exactly one of the two fanned-out node searches fails.
    ScopedFailPoint fp("query_node.search_segment",
                       FailPointPolicy::ErrorOnce());
    SearchRequest req = Req();
    req.allow_partial = true;
    auto res = db_->Search(req);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_LT(res.value().coverage, 1.0);
    EXPECT_GT(res.value().coverage, 0.0);
    EXPECT_FALSE(res.value().ids.empty());
    EXPECT_EQ(fp.trips(), 1);
  }
  EXPECT_EQ(
      MetricsRegistry::Global().CounterValue("proxy.partial_results"),
      partial_before + 1);

  // Guard gone: the same request is whole again.
  SearchRequest req = Req();
  req.allow_partial = true;
  auto res = db_->Search(req);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().coverage, 1.0);
}

TEST_F(DegradationTest, DeadlineSkipsSlowNode) {
  // One node stalls 300 ms; with a 50 ms per-node deadline and
  // allow_partial, the proxy abandons it and returns fast.
  FailPointPolicy slow = FailPointPolicy::Delay(300000);
  slow.max_trips = 1;
  ScopedFailPoint fp("query_node.search_segment", std::move(slow));

  SearchRequest req = Req();
  req.allow_partial = true;
  req.node_deadline_ms = 50;
  const int64_t t0 = NowMs();
  auto res = db_->Search(req);
  const int64_t elapsed = NowMs() - t0;
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_LT(res.value().coverage, 1.0);
  EXPECT_LT(elapsed, 250) << "proxy waited for the stalled node";

  // Without allow_partial the same deadline miss is an error.
  FailPointPolicy again = FailPointPolicy::Delay(300000);
  again.max_trips = 1;
  FailPointRegistry::Global().Arm("query_node.search_segment",
                                  std::move(again));
  req.allow_partial = false;
  res = db_->Search(req);
  EXPECT_FALSE(res.ok());
}

// ---------------------------------------------------------------------------
// Mixed-workload chaos
// ---------------------------------------------------------------------------

TEST(Chaos, MixedWorkloadWithNodeCrashesAndStorageFaults) {
  std::mt19937_64 rng(20260805);

  ManuConfig config;
  config.num_shards = 2;
  config.num_query_nodes = 3;
  config.segment_seal_rows = 400;
  config.segment_idle_seal_ms = 150;
  config.time_tick_interval_ms = 10;
  config.node_search_deadline_ms = 2000;
  auto store =
      std::make_shared<FaultyObjectStore>(std::make_shared<MemoryObjectStore>());
  ManuInstance db(config, store);

  auto meta = db.CreateCollection(VecSchema("chaos", 8));
  ASSERT_TRUE(meta.ok());
  IndexParams params;
  params.type = IndexType::kIvfFlat;
  params.nlist = 8;
  ASSERT_TRUE(db.CreateIndex("chaos", "v", params).ok());

  SyntheticOptions opts;
  opts.num_rows = 1000;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);

  // Baseline ingest with a healthy store.
  std::set<int64_t> acked;
  int64_t attempted = 0;
  {
    auto ts = db.Insert("chaos", VecBatch(meta.value(), data, 0, 400));
    ASSERT_TRUE(ts.ok());
    for (int64_t pk = 0; pk < 400; ++pk) acked.insert(pk);
    attempted = 400;
    ASSERT_TRUE(db.WaitUntilVisible("chaos", ts.value()).ok());
  }

  const int64_t retry_attempts_before =
      MetricsRegistry::Global().CounterValue("retry.attempts");

  // --- Fault window: 5% of object-store reads and writes fail while the
  // workload keeps inserting and searching and nodes crash underneath it.
  {
    ScopedFailPoint faulty_get(
        "object_store.get",
        FailPointPolicy::ErrorWithProbability(0.05, /*seed=*/rng()));
    ScopedFailPoint faulty_put(
        "object_store.put",
        FailPointPolicy::ErrorWithProbability(0.05, /*seed=*/rng()));

    for (int iter = 0; iter < 20; ++iter) {
      // Insert 20 rows; only an acknowledged insert promises durability.
      const int64_t begin = attempted;
      const int64_t end = attempted + 20;
      attempted = end;
      auto ts =
          db.Insert("chaos", VecBatch(meta.value(), data, begin, end));
      if (ts.ok()) {
        for (int64_t pk = begin; pk < end; ++pk) acked.insert(pk);
      }

      // Searches degrade gracefully, never error, while storage misbehaves.
      SearchRequest req;
      req.collection = "chaos";
      req.query.assign(data.Row(begin % 400), data.Row(begin % 400) + 8);
      req.k = 10;
      req.consistency = ConsistencyLevel::kEventually;
      req.allow_partial = true;
      auto res = db.Search(req);
      ASSERT_TRUE(res.ok()) << "iter " << iter << ": "
                            << res.status().ToString();
      EXPECT_LE(res.value().coverage, 1.0);

      // Crash a random query node twice during the window (keeping >= 2
      // alive), and scale back up in between: recovery runs concurrently
      // with the faulty store.
      if (iter == 5 || iter == 12) {
        auto nodes = db.query_coord()->Nodes();
        ASSERT_GE(nodes.size(), 2u);
        const size_t victim = rng() % nodes.size();
        ASSERT_TRUE(db.KillQueryNode(nodes[victim]->id()).ok());
      }
      if (iter == 8) {
        ASSERT_TRUE(db.ScaleQueryNodes(3).ok());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    // Deterministic partial result inside the window: one node search fails.
    const size_t serving =
        db.query_coord()->NodesFor(meta.value().id).size();
    ScopedFailPoint one_bad("query_node.search_segment",
                            FailPointPolicy::ErrorOnce());
    SearchRequest req;
    req.collection = "chaos";
    req.query.assign(data.Row(0), data.Row(0) + 8);
    req.k = 10;
    req.consistency = ConsistencyLevel::kEventually;
    req.allow_partial = true;
    auto res = db.Search(req);
    if (serving >= 2) {
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      EXPECT_LT(res.value().coverage, 1.0);
    } else {
      // Channel reassignment collapsed serving onto one node: with its only
      // node failed, even allow_partial has nothing to return.
      EXPECT_FALSE(res.ok());
    }
    EXPECT_GE(one_bad.trips(), 1);
  }
  // Guards out of scope: the store is healthy again.

  // Deterministic retry exercise: one read fails once, the retry layer
  // absorbs it. Every Get through the faulty store here (the probe's table
  // load, or a late index/segment load racing it) sits behind RetryOp, so
  // the counter must advance no matter which call consumes the fault.
  {
    LsmEntityMap probe(store.get(), "chaos/probe",
                       /*memtable_flush_entries=*/2);
    for (int64_t i = 0; i < 4; ++i) ASSERT_TRUE(probe.Put(i, i).ok());
    ScopedFailPoint flaky("object_store.get", FailPointPolicy::ErrorOnce());
    LsmEntityMap recovered(store.get(), "chaos/probe",
                           /*memtable_flush_entries=*/2);
    ASSERT_TRUE(recovered.Recover().ok());
    EXPECT_EQ(*recovered.Lookup(1), 1);
  }
  EXPECT_GT(MetricsRegistry::Global().CounterValue("retry.attempts"),
            retry_attempts_before);
  EXPECT_GT(MetricsRegistry::Global().CounterValue("failpoint.trips"), 0);

  // --- Recovery: writes flow again and every acknowledged insert is
  // searchable at strong consistency.
  {
    const int64_t begin = attempted;
    const int64_t end = attempted + 100;
    attempted = end;
    auto ts = db.Insert("chaos", VecBatch(meta.value(), data, begin, end));
    ASSERT_TRUE(ts.ok()) << ts.status().ToString();
    for (int64_t pk = begin; pk < end; ++pk) acked.insert(pk);
    ASSERT_TRUE(db.WaitUntilVisible("chaos", ts.value(), 30000).ok());
  }

  SearchRequest req;
  req.collection = "chaos";
  req.query.assign(data.Row(0), data.Row(0) + 8);
  // k >= every row that may exist (acked + shards of refused inserts):
  // the result must then contain every acked pk exactly once.
  req.k = static_cast<size_t>(attempted);
  req.consistency = ConsistencyLevel::kStrong;
  auto res = db.Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().coverage, 1.0);
  std::set<int64_t> found(res.value().ids.begin(), res.value().ids.end());
  EXPECT_EQ(found.size(), res.value().ids.size()) << "duplicate pks";
  for (int64_t pk : acked) {
    EXPECT_TRUE(found.count(pk)) << "acked pk " << pk << " lost";
  }
}

// ---------------------------------------------------------------------------
// Concurrency: batched parallel search racing the WAL pump
// ---------------------------------------------------------------------------

TEST(Chaos, ConcurrentSearchBatchUnderWalPump) {
  // Several client threads issue BatchSearch (each request fans segments
  // out across the node executors) while an insert thread keeps the WAL
  // pumps mutating growing segments. Exercises the shared-lock discipline
  // of the parallel fan-out; run under MANU_SANITIZE=thread this is the
  // data-race probe for the intra-query parallel path.
  ManuConfig config;
  config.num_shards = 2;
  config.num_query_nodes = 2;
  config.query_threads = 4;
  config.segment_seal_rows = 100000;  // Keep everything growing.
  config.segment_idle_seal_ms = 600000;
  config.time_tick_interval_ms = 5;
  ManuInstance db(config);

  auto meta = db.CreateCollection(VecSchema("pump", 8));
  ASSERT_TRUE(meta.ok());

  SyntheticOptions opts;
  opts.num_rows = 2000;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);

  // Seed enough rows that every search sees data.
  auto ts0 = db.Insert("pump", VecBatch(meta.value(), data, 0, 200));
  ASSERT_TRUE(ts0.ok());
  ASSERT_TRUE(db.WaitUntilVisible("pump", ts0.value()).ok());

  std::atomic<bool> stop{false};
  std::atomic<int64_t> inserted{200};
  std::thread writer([&] {
    int64_t begin = 200;
    while (!stop.load() && begin + 20 <= opts.num_rows) {
      auto ts = db.Insert("pump", VecBatch(meta.value(), data, begin,
                                           begin + 20));
      ASSERT_TRUE(ts.ok());
      begin += 20;
      inserted.store(begin);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::atomic<int64_t> batches_ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(1000 + c);
      for (int iter = 0; iter < 25; ++iter) {
        std::vector<SearchRequest> reqs(8);
        for (auto& req : reqs) {
          const int64_t row = static_cast<int64_t>(
              rng() % static_cast<uint64_t>(inserted.load()));
          req.collection = "pump";
          req.query.assign(data.Row(row), data.Row(row) + 8);
          req.k = 5;
          req.consistency = ConsistencyLevel::kEventually;
        }
        auto results = db.BatchSearch(reqs);
        ASSERT_EQ(results.size(), reqs.size());
        for (const auto& res : results) {
          ASSERT_TRUE(res.ok()) << res.status().ToString();
          EXPECT_FALSE(res.value().ids.empty());
        }
        batches_ok.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(batches_ok.load(), 3 * 25);
}

// ---------------------------------------------------------------------------
// Liveness: lease-expiry-driven automatic failover (Section 3.6)
// ---------------------------------------------------------------------------

/// Shrunken lease timings so the watchdog acts within a second while still
/// leaving headroom for sanitizer-slowed pump loops.
ManuConfig LivenessConfig() {
  ManuConfig config;
  config.num_shards = 2;
  config.num_query_nodes = 2;
  config.segment_seal_rows = 100000;
  config.segment_idle_seal_ms = 600000;
  config.time_tick_interval_ms = 10;
  config.lease_ttl_ms = 600;
  config.heartbeat_interval_ms = 100;
  config.watchdog_interval_ms = 100;
  return config;
}

int64_t Counter(const std::string& name) {
  return MetricsRegistry::Global().CounterValue(name);
}

TEST(Liveness, QueryNodeLeaseExpiryAutoFailover) {
  ManuConfig config = LivenessConfig();
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("qlease", 8));
  ASSERT_TRUE(meta.ok());
  IndexParams params;
  params.type = IndexType::kIvfFlat;
  params.nlist = 4;
  ASSERT_TRUE(db.CreateIndex("qlease", "v", params).ok());

  SyntheticOptions opts;
  opts.num_rows = 300;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);
  // Sealed segments on the victim make the failover move real state.
  ASSERT_TRUE(db.Insert("qlease", VecBatch(meta.value(), data, 0, 200)).ok());
  ASSERT_TRUE(db.FlushAndWait("qlease").ok());
  auto ts = db.Insert("qlease", VecBatch(meta.value(), data, 200, 300));
  ASSERT_TRUE(ts.ok());
  ASSERT_TRUE(db.WaitUntilVisible("qlease", ts.value()).ok());

  const int64_t missed_before = Counter("lease.missed_heartbeats");
  ASSERT_EQ(db.NumQueryNodes(), 2u);
  const NodeId victim = db.query_coord()->Nodes()[0]->id();
  // Abrupt crash: nothing is told to any coordinator. The ONLY recovery
  // path is the watchdog noticing the expired lease.
  ASSERT_TRUE(db.CrashQueryNode(victim).ok());

  const int64_t deadline = NowMs() + 15000;
  while (db.NumQueryNodes() > 1 && NowMs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_EQ(db.NumQueryNodes(), 1u) << "watchdog never failed the node over";
  EXPECT_GT(Counter("lease.missed_heartbeats"), missed_before);
  // The watchdog records MTTR after the coordinator removal that the loop
  // above observes, so give the gauge its own bounded wait.
  while (MetricsRegistry::Global().GaugeValue("cluster.mttr_ms") <= 0 &&
         NowMs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(MetricsRegistry::Global().GaugeValue("cluster.mttr_ms"), 0);

  // tau=0 on the survivor: every acked write, full coverage.
  SearchRequest req;
  req.collection = "qlease";
  req.query.assign(data.Row(0), data.Row(0) + 8);
  req.k = 300;
  req.consistency = ConsistencyLevel::kStrong;
  auto res = db.Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().coverage, 1.0);
  std::set<int64_t> found(res.value().ids.begin(), res.value().ids.end());
  EXPECT_EQ(found.size(), res.value().ids.size()) << "duplicate pks";
  for (int64_t pk = 0; pk < 300; ++pk) {
    EXPECT_EQ(found.count(pk), 1u) << "acked pk " << pk << " lost";
  }
}

TEST(Liveness, DataNodeLeaseExpiryAutoFailover) {
  ManuConfig config = LivenessConfig();
  config.num_data_nodes = 2;
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("dlease", 8));
  ASSERT_TRUE(meta.ok());

  SyntheticOptions opts;
  opts.num_rows = 400;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);
  // Acked but unarchived: these rows exist only in the WAL, so the shard
  // handoff below must replay them into the survivor for sealing to work.
  auto ts = db.Insert("dlease", VecBatch(meta.value(), data, 0, 200));
  ASSERT_TRUE(ts.ok());
  ASSERT_TRUE(db.WaitUntilVisible("dlease", ts.value()).ok());

  NodeId victim = kInvalidNodeId;
  for (const LeaseInfo& info : db.leases()->Snapshot()) {
    if (info.role == "data") {
      victim = info.node;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNodeId);
  const int64_t missed_before = Counter("lease.missed_heartbeats");
  ASSERT_TRUE(db.CrashDataNode(victim).ok());

  // Wait for the watchdog to revoke the lease and hand the channel over.
  const int64_t deadline = NowMs() + 15000;
  while (Counter("lease.missed_heartbeats") <= missed_before &&
         NowMs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_GT(Counter("lease.missed_heartbeats"), missed_before)
      << "watchdog never saw the dead data node";

  // Writes keep flowing, and a flush archives BOTH the replayed backlog
  // and the new rows — it would time out if any shard channel were left
  // without an owner.
  ASSERT_TRUE(db.Insert("dlease", VecBatch(meta.value(), data, 200, 400)).ok());
  ASSERT_TRUE(db.FlushAndWait("dlease").ok());
  int64_t archived = 0;
  for (const SegmentMeta& seg : db.data_coord()->ListSegments(meta.value().id)) {
    if (seg.state != SegmentState::kDropped) archived += seg.num_rows;
  }
  EXPECT_EQ(archived, 400);

  SearchRequest req;
  req.collection = "dlease";
  req.query.assign(data.Row(0), data.Row(0) + 8);
  req.k = 400;
  req.consistency = ConsistencyLevel::kStrong;
  auto res = db.Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  std::set<int64_t> found(res.value().ids.begin(), res.value().ids.end());
  EXPECT_EQ(found.size(), res.value().ids.size()) << "duplicate pks";
  for (int64_t pk = 0; pk < 400; ++pk) {
    EXPECT_EQ(found.count(pk), 1u) << "acked pk " << pk << " lost";
  }
}

TEST(Liveness, ZombieDataNodeFencedAtArchiveCommitPoint) {
  // A zombie: the worker is alive and consuming, only its heartbeats are
  // dropped (a network partition, modeled by the per-node failpoint). The
  // watchdog revokes the lease — bumping the persisted epoch — and the
  // zombie's next binlog archive is rejected at the commit point instead
  // of corrupting state the survivor now owns.
  ManuConfig config = LivenessConfig();
  config.num_data_nodes = 2;
  config.segment_seal_rows = 50;  // Every shard's growing segment will seal.
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("zombie", 8));
  ASSERT_TRUE(meta.ok());

  SyntheticOptions opts;
  opts.num_rows = 300;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);
  auto ts0 = db.Insert("zombie", VecBatch(meta.value(), data, 0, 40));
  ASSERT_TRUE(ts0.ok());
  ASSERT_TRUE(db.WaitUntilVisible("zombie", ts0.value()).ok());

  NodeId zombie = kInvalidNodeId;
  for (const LeaseInfo& info : db.leases()->Snapshot()) {
    if (info.role == "data") {
      zombie = info.node;
      break;
    }
  }
  ASSERT_NE(zombie, kInvalidNodeId);

  const int64_t missed_before = Counter("lease.missed_heartbeats");
  ScopedFailPoint partition("lease.heartbeat." + std::to_string(zombie),
                            FailPointPolicy::ErrorWithProbability(1.0));
  const int64_t deadline = NowMs() + 15000;
  while (Counter("lease.missed_heartbeats") <= missed_before &&
         NowMs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_GT(Counter("lease.missed_heartbeats"), missed_before)
      << "watchdog never revoked the partitioned node";

  // Push every shard past the seal threshold: the zombie (still pumping
  // its old channel) tries to archive and is fenced; the survivor, which
  // replayed the channel after the handoff, archives successfully.
  const int64_t rejected_before = Counter("lease.fencing_rejections");
  ASSERT_TRUE(db.Insert("zombie", VecBatch(meta.value(), data, 40, 300)).ok());
  const int64_t fence_deadline = NowMs() + 15000;
  while (Counter("lease.fencing_rejections") <= rejected_before &&
         NowMs() < fence_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GT(Counter("lease.fencing_rejections"), rejected_before)
      << "zombie's archive was never rejected";

  // No acked write lost and none duplicated despite the split brain.
  ASSERT_TRUE(db.FlushAndWait("zombie").ok());
  SearchRequest req;
  req.collection = "zombie";
  req.query.assign(data.Row(0), data.Row(0) + 8);
  req.k = 300;
  req.consistency = ConsistencyLevel::kStrong;
  auto res = db.Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  std::set<int64_t> found(res.value().ids.begin(), res.value().ids.end());
  EXPECT_EQ(found.size(), res.value().ids.size()) << "duplicate pks";
  for (int64_t pk = 0; pk < 300; ++pk) {
    EXPECT_EQ(found.count(pk), 1u) << "acked pk " << pk << " lost";
  }
}

TEST(Liveness, BatchSearchReportsReducedCoverageDuringFailover) {
  ManuConfig config = LivenessConfig();
  config.lease_ttl_ms = 2500;  // Wide pre-failover window to observe.
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("bcov", 8));
  ASSERT_TRUE(meta.ok());
  IndexParams params;
  params.type = IndexType::kIvfFlat;
  params.nlist = 4;
  ASSERT_TRUE(db.CreateIndex("bcov", "v", params).ok());

  SyntheticOptions opts;
  opts.num_rows = 200;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);
  ASSERT_TRUE(db.Insert("bcov", VecBatch(meta.value(), data, 0, 200)).ok());
  ASSERT_TRUE(db.FlushAndWait("bcov").ok());

  ASSERT_EQ(db.NumQueryNodes(), 2u);
  const NodeId victim = db.query_coord()->Nodes()[0]->id();
  ASSERT_TRUE(db.CrashQueryNode(victim).ok());

  // In the window between the crash and the watchdog's failover, the dead
  // node is still in the fan-out set: allow_partial keeps the batch
  // serving but must REPORT the reduced coverage, not paper over it.
  std::vector<SearchRequest> reqs(4);
  for (size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].collection = "bcov";
    reqs[i].query.assign(data.Row(i), data.Row(i) + 8);
    reqs[i].k = 10;
    reqs[i].consistency = ConsistencyLevel::kEventually;
    reqs[i].allow_partial = true;
  }
  double min_coverage = 1.0;
  auto results = db.BatchSearch(reqs);
  ASSERT_EQ(results.size(), reqs.size());
  for (const auto& res : results) {
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    min_coverage = std::min(min_coverage, res.value().coverage);
  }
  EXPECT_LT(min_coverage, 1.0)
      << "degraded batch reported full coverage with a node down";

  // After the watchdog rebalances, the same batch reaches full coverage
  // and, at tau=0, full content.
  const int64_t deadline = NowMs() + 15000;
  while (db.NumQueryNodes() > 1 && NowMs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_EQ(db.NumQueryNodes(), 1u) << "watchdog never failed the node over";
  for (auto& req : reqs) {
    req.consistency = ConsistencyLevel::kStrong;
    req.k = 200;
  }
  results = db.BatchSearch(reqs);
  for (const auto& res : results) {
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(res.value().coverage, 1.0);
    std::set<int64_t> found(res.value().ids.begin(), res.value().ids.end());
    for (int64_t pk = 0; pk < 200; ++pk) {
      EXPECT_EQ(found.count(pk), 1u) << "acked pk " << pk << " lost";
    }
  }
}

// ---------------------------------------------------------------------------
// Trace propagation under faults
// ---------------------------------------------------------------------------

const SpanRecord* FindSpanNamed(const std::vector<SpanRecord>& spans,
                                const std::string& name) {
  for (const auto& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string SpanTag(const SpanRecord& rec, const std::string& key) {
  for (const auto& [k, v] : rec.tags) {
    if (k == key) return v;
  }
  return "";
}

std::shared_ptr<Trace> LastSearchTrace() {
  auto traces = Tracer::Global().collector().Traces();
  for (auto it = traces.rbegin(); it != traces.rend(); ++it) {
    if ((*it)->root_name() == "proxy.search") return *it;
  }
  return nullptr;
}

TEST(Liveness, TraceSurvivesRetryAndFailoverRedispatch) {
  Tracer::Global().ResetForTest();
  ManuConfig config = LivenessConfig();
  config.search_retry_attempts = 1;
  config.trace_sample_every = 1;  // Retain every request's trace.
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("tprop", 8));
  ASSERT_TRUE(meta.ok());

  SyntheticOptions opts;
  opts.num_rows = 200;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);
  auto ts = db.Insert("tprop", VecBatch(meta.value(), data, 0, 200));
  ASSERT_TRUE(ts.ok());
  ASSERT_TRUE(db.WaitUntilVisible("tprop", ts.value()).ok());

  SearchRequest req;
  req.collection = "tprop";
  req.query.assign(data.Row(0), data.Row(0) + 8);
  req.k = 10;

  // Phase 1: transient fault. The first fan-out hits an injected
  // kUnavailable, the proxy retries, and the retry succeeds — the whole
  // story must land in ONE trace: the failed attempt's node span under the
  // root, the re-dispatched node span under a proxy.retry child.
  const int64_t retries_before = Counter("proxy.search_retries");
  {
    ScopedFailPoint fp(
        "query_node.search_segment",
        FailPointPolicy::ErrorOnce(StatusCode::kUnavailable));
    auto res = db.Search(req);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(fp.trips(), 1);
  }
  EXPECT_EQ(Counter("proxy.search_retries"), retries_before + 1);

  auto trace = LastSearchTrace();
  ASSERT_NE(trace, nullptr);
  auto spans = trace->Snapshot();
  const SpanRecord* root = FindSpanNamed(spans, "proxy.search");
  const SpanRecord* retry = FindSpanNamed(spans, "proxy.retry");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(retry, nullptr) << "retry attempt did not record a span";
  EXPECT_EQ(retry->parent_id, root->span_id);
  EXPECT_EQ(SpanTag(*retry, "attempt"), "1");
  EXPECT_NE(SpanTag(*retry, "cause"), "");
  bool failed_attempt_under_root = false;
  bool redispatch_under_retry = false;
  for (const auto& s : spans) {
    if (s.name != "query_node.search") continue;
    if (s.parent_id == root->span_id) failed_attempt_under_root = true;
    if (s.parent_id == retry->span_id) redispatch_under_retry = true;
  }
  EXPECT_TRUE(failed_attempt_under_root)
      << "first attempt's node span lost from the trace";
  EXPECT_TRUE(redispatch_under_retry)
      << "re-dispatched node search not parented to the retry span";

  // Phase 2: hard failover. Crash a query node, let the watchdog hand its
  // shards to the survivor, and verify a fresh search traces end-to-end on
  // the NEW routing — node spans tagged with the survivor's id, with
  // per-segment scans underneath.
  ASSERT_EQ(db.NumQueryNodes(), 2u);
  const NodeId victim = db.query_coord()->Nodes()[0]->id();
  ASSERT_TRUE(db.CrashQueryNode(victim).ok());
  const int64_t deadline = NowMs() + 15000;
  while (db.NumQueryNodes() > 1 && NowMs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_EQ(db.NumQueryNodes(), 1u) << "watchdog never failed the node over";
  const NodeId survivor = db.query_coord()->Nodes()[0]->id();

  req.k = 200;
  req.consistency = ConsistencyLevel::kStrong;
  auto res = db.Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().coverage, 1.0);

  trace = LastSearchTrace();
  ASSERT_NE(trace, nullptr);
  spans = trace->Snapshot();
  root = FindSpanNamed(spans, "proxy.search");
  ASSERT_NE(root, nullptr);
  int node_spans = 0;
  for (const auto& s : spans) {
    if (s.name != "query_node.search") continue;
    ++node_spans;
    EXPECT_EQ(SpanTag(s, "node"), std::to_string(survivor))
        << "post-failover trace still references a dead node";
  }
  EXPECT_GT(node_spans, 0);
  EXPECT_NE(FindSpanNamed(spans, "segment.scan"), nullptr);
  Tracer::Global().ResetForTest();
}

// ---------------------------------------------------------------------------
// Overload storm (core/admission.h)
// ---------------------------------------------------------------------------

TEST(Chaos, OverloadStormShedsBeforeRejectAndDrains) {
  // ~10x the sustainable concurrency against an armed admission front door.
  // Proves the brownout ladder engages in order (degrade -> shed ->
  // reject), that refusals carry retry-after hints instead of queueing,
  // that goodput holds up under the storm, that admitted latency stays
  // bounded, that no acked write is lost, and that everything drains back
  // to stage 0 once the storm passes.
  ManuConfig config;
  config.num_shards = 2;
  config.num_query_nodes = 2;
  config.query_threads = 2;
  config.segment_seal_rows = 1000;
  config.segment_idle_seal_ms = 300;
  config.time_tick_interval_ms = 10;
  config.sim_segment_search_us = 2000;  // Calibrated 2ms/segment service.
  config.admission_max_inflight = 16;
  config.admission_node_inflight = 4;
  config.node_search_deadline_ms = 500;
  config.shed_retry_after_ms = 5;
  config.shed_degraded_deadline_ms = 250;
  config.logger_inflight_limit = 2;
  config.admission_write_retry_attempts = 4;
  ManuInstance db(config);

  auto meta = db.CreateCollection(VecSchema("storm", 16));
  ASSERT_TRUE(meta.ok());
  SyntheticOptions opts;
  opts.num_rows = 4000;
  opts.dim = 16;
  opts.num_clusters = 8;
  VectorDataset data = MakeClusteredDataset(opts);
  ASSERT_TRUE(db.Insert("storm", VecBatch(meta.value(), data, 0, 4000)).ok());
  ASSERT_TRUE(db.FlushAndWait("storm").ok());

  auto search_once = [&](int64_t row, int32_t priority,
                         const std::string& tenant) {
    SearchRequest req;
    req.collection = "storm";
    req.query.assign(data.Row(row % 4000), data.Row(row % 4000) + 16);
    req.k = 10;
    req.consistency = ConsistencyLevel::kEventually;
    req.tenant = tenant;
    req.priority = priority;
    return db.Search(req);
  };

  // Closed-loop driver; shed clients honor the retry-after hint (sleep)
  // instead of hammering, like a well-behaved SDK.
  struct LoopStats {
    std::atomic<int64_t> ok{0};
    std::atomic<int64_t> shed{0};
    std::atomic<int64_t> timeout{0};
    std::atomic<int64_t> unavailable{0};
    std::atomic<int64_t> unexpected{0};
  };
  auto run_loop = [&](int threads, int64_t duration_ms, bool mixed_priority,
                      LoopStats* stats, LatencyHistogram* ok_lat) {
    std::vector<std::thread> workers;
    const int64_t t_end = NowMs() + duration_ms;
    for (int w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        int64_t n = 0;
        while (NowMs() < t_end) {
          const int32_t priority = mixed_priority && (w % 2 == 1) ? 1 : 0;
          const std::string tenant = "t" + std::to_string(w % 4);
          const int64_t t0 = NowMicros();
          auto res = search_once(w * 10007 + n++, priority, tenant);
          if (res.ok()) {
            stats->ok.fetch_add(1);
            if (ok_lat != nullptr) {
              ok_lat->Observe(static_cast<double>(NowMicros() - t0));
            }
            continue;
          }
          switch (res.status().code()) {
            case StatusCode::kResourceExhausted: {
              stats->shed.fetch_add(1);
              int64_t hint =
                  AdmissionController::RetryAfterHintMs(res.status());
              if (hint < 1) hint = 5;
              std::this_thread::sleep_for(
                  std::chrono::milliseconds(std::min<int64_t>(hint, 50)));
              break;
            }
            case StatusCode::kTimeout:
              stats->timeout.fetch_add(1);
              break;
            case StatusCode::kUnavailable:
              // Degraded fan-out where every node refused at once.
              stats->unavailable.fetch_add(1);
              break;
            default:
              stats->unexpected.fetch_add(1);
              ADD_FAILURE() << "unexpected storm error: "
                            << res.status().ToString();
          }
        }
      });
    }
    for (auto& w : workers) w.join();
  };

  // --- Pre-storm saturation: near-capacity, below the brownout knee. ---
  LoopStats sat;
  const int64_t sat_t0 = NowMs();
  run_loop(/*threads=*/4, /*duration_ms=*/600, /*mixed_priority=*/false,
           &sat, nullptr);
  const double sat_qps = static_cast<double>(sat.ok.load()) /
                         (static_cast<double>(NowMs() - sat_t0) / 1000.0);
  ASSERT_GT(sat.ok.load(), 0);

  // --- The storm: ~10x the saturation concurrency, plus writers. ---
  std::atomic<bool> stop_writers{false};
  std::atomic<Timestamp> max_acked_ts{0};
  std::vector<int64_t> acked_pks;
  std::mutex acked_mu;
  // Written rows come from a differently-seeded mixture so their vectors
  // don't collide with the base corpus (presence is verifiable by search).
  SyntheticOptions wopts = opts;
  wopts.num_rows = 2000;
  wopts.seed = 1234;
  VectorDataset wdata = MakeClusteredDataset(wopts);
  std::vector<std::thread> writers;
  std::atomic<int64_t> next_wrow{0};
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&] {
      while (!stop_writers.load()) {
        const int64_t row = next_wrow.fetch_add(20);
        if (row + 20 > wdata.NumRows()) break;
        auto ts = db.Insert(
            "storm", VecBatch(meta.value(), wdata, row, row + 20, 100000));
        if (ts.ok()) {
          Timestamp prev = max_acked_ts.load();
          while (prev < ts.value() &&
                 !max_acked_ts.compare_exchange_weak(prev, ts.value())) {
          }
          std::lock_guard<std::mutex> lk(acked_mu);
          for (int64_t i = row; i < row + 20; ++i) {
            acked_pks.push_back(100000 + i);
          }
        } else {
          // Backpressured past the proxy's retry budget: the write was
          // refused with zero side effects; only RE is acceptable here.
          EXPECT_EQ(ts.status().code(), StatusCode::kResourceExhausted)
              << ts.status().ToString();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }

  LoopStats storm;
  LatencyHistogram admitted_lat;
  const int64_t storm_t0 = NowMs();
  run_loop(/*threads=*/40, /*duration_ms=*/1500, /*mixed_priority=*/true,
           &storm, &admitted_lat);
  const double storm_secs =
      static_cast<double>(NowMs() - storm_t0) / 1000.0;
  stop_writers.store(true);
  for (auto& w : writers) w.join();

  // The ladder engaged, and in order: degrade before shed before reject.
  const AdmissionController& adm = db.proxy()->admission();
  const int64_t s1 = adm.StageFirstEngagedMs(1);
  const int64_t s2 = adm.StageFirstEngagedMs(2);
  const int64_t s3 = adm.StageFirstEngagedMs(3);
  EXPECT_GT(s1, 0) << "storm never engaged the brownout ladder";
  if (s2 > 0) EXPECT_LE(s1, s2);
  if (s3 > 0) {
    EXPECT_GT(s2, 0) << "reject engaged without passing through shed";
    EXPECT_LE(s2, s3);
  }
  EXPECT_GT(storm.shed.load(), 0) << "overload must shed, not queue";
  EXPECT_EQ(storm.unexpected.load(), 0);

  // Goodput holds up: admitted work still completes at a healthy fraction
  // of the pre-storm saturation rate (the bench demonstrates the >= 0.7
  // SLO; the bar here is relaxed because sanitizer instrumentation on a
  // loaded single-core CI box skews the 40-thread storm far more than the
  // 4-thread saturation probe — collapse would read ~0.1x, not ~0.5x).
  const double storm_qps = static_cast<double>(storm.ok.load()) / storm_secs;
  EXPECT_GE(storm_qps, 0.35 * sat_qps)
      << "goodput collapsed under overload: " << storm_qps << " vs saturation "
      << sat_qps;

  // Admitted latency stays bounded (degraded deadlines cap node waits).
  EXPECT_GT(admitted_lat.Count(), 0);
  EXPECT_LT(admitted_lat.Percentile(99), 2'000'000.0)
      << "admitted p99 exploded: " << admitted_lat.Percentile(99) / 1000.0
      << "ms";

  // --- Drain: pressure decays, the ladder releases, queues empty. ---
  bool drained = false;
  for (int i = 0; i < 100; ++i) {
    (void)search_once(i, 0, "drain");  // Each call re-samples pressure.
    bool nodes_idle = true;
    for (const auto& node : db.query_coord()->Nodes()) {
      if (node->LoadSnapshot().inflight > 0) nodes_idle = false;
    }
    if (adm.stage() == 0 && adm.inflight() == 0 && nodes_idle) {
      drained = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(drained) << "stage=" << adm.stage()
                       << " inflight=" << adm.inflight();

  // --- No acked write lost. ---
  ASSERT_TRUE(db.WaitUntilVisible("storm", max_acked_ts.load()).ok());
  std::vector<int64_t> sample;
  {
    std::lock_guard<std::mutex> lk(acked_mu);
    for (size_t i = 0; i < acked_pks.size(); i += 37) {
      sample.push_back(acked_pks[i]);
    }
  }
  EXPECT_FALSE(sample.empty()) << "every storm write was backpressured away";
  for (int64_t pk : sample) {
    SearchRequest req;
    req.collection = "storm";
    const int64_t row = pk - 100000;
    req.query.assign(wdata.Row(row), wdata.Row(row) + 16);
    req.k = 1;
    req.consistency = ConsistencyLevel::kStrong;
    auto res = db.Search(req);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ASSERT_FALSE(res.value().ids.empty());
    EXPECT_EQ(res.value().ids[0], pk) << "acked write lost";
  }
}

// ---------------------------------------------------------------------------
// Replica groups: self-healing placement under an abrupt kill + live load
// ---------------------------------------------------------------------------

TEST(Chaos, ReplicaGroupSelfHealsAfterAbruptKillUnderLoad) {
  // replica_factor=2 on a 3-node fleet: every sealed segment has two
  // serving copies, so an abrupt single-node kill never loses coverage.
  // The reconciler must then restore redundancy on the survivors while a
  // mixed insert/search workload keeps running — searches never fail (at
  // most reduced coverage inside the detection window) and no acked write
  // is lost.
  ManuConfig config = LivenessConfig();
  config.num_query_nodes = 3;
  config.replica_factor = 2;
  config.segment_seal_rows = 400;
  config.placement_reconcile_interval_ms = 100;
  config.search_retry_attempts = 3;
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("heal", 8));
  ASSERT_TRUE(meta.ok());
  IndexParams params;
  params.type = IndexType::kIvfFlat;
  params.nlist = 4;
  ASSERT_TRUE(db.CreateIndex("heal", "v", params).ok());

  SyntheticOptions opts;
  opts.num_rows = 2000;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);

  // Seed sealed, replicated segments before the fault.
  std::mutex ack_mu;
  std::set<int64_t> acked;
  int64_t attempted = 1200;
  ASSERT_TRUE(db.Insert("heal", VecBatch(meta.value(), data, 0, 1200)).ok());
  for (int64_t pk = 0; pk < 1200; ++pk) acked.insert(pk);
  ASSERT_TRUE(db.FlushAndWait("heal").ok());

  auto* placement = db.query_coord()->placement();
  ASSERT_EQ(placement->UnderReplicatedCount(), 0);
  auto groups = placement->CollectionSnapshot(meta.value().id);
  ASSERT_FALSE(groups.empty());
  for (const auto& g : groups) {
    ASSERT_EQ(g.serving.size(), 2u) << "segment " << g.meta.id;
  }

  std::atomic<bool> stop{false};
  std::atomic<int64_t> searches{0};
  std::atomic<int64_t> failed_searches{0};
  std::mutex err_mu;
  std::string first_error;

  std::thread searcher([&] {
    std::mt19937 rng(7);
    while (!stop.load()) {
      SearchRequest req;
      req.collection = "heal";
      const int64_t row = static_cast<int64_t>(rng() % 1200);
      req.query.assign(data.Row(row), data.Row(row) + 8);
      req.k = 10;
      req.consistency = ConsistencyLevel::kEventually;
      req.allow_partial = true;
      auto res = db.Search(req);
      ++searches;
      if (!res.ok()) {
        ++failed_searches;
        std::lock_guard<std::mutex> lock(err_mu);
        if (first_error.empty()) first_error = res.status().ToString();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  std::thread writer([&] {
    while (!stop.load()) {
      int64_t begin;
      {
        std::lock_guard<std::mutex> lock(ack_mu);
        if (attempted + 40 > opts.num_rows) break;
        begin = attempted;
        attempted += 40;
      }
      auto ts = db.Insert("heal", VecBatch(meta.value(), data, begin,
                                           begin + 40));
      if (ts.ok()) {
        std::lock_guard<std::mutex> lock(ack_mu);
        for (int64_t pk = begin; pk < begin + 40; ++pk) acked.insert(pk);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  // Let the workload settle on the healthy fleet, then kill a replica
  // holder abruptly: no coordinator is told, the watchdog must notice.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_EQ(db.NumQueryNodes(), 3u);
  const NodeId victim = groups[0].serving[0].node;
  ASSERT_TRUE(db.CrashQueryNode(victim).ok());

  const int64_t deadline = NowMs() + 15000;
  while (db.NumQueryNodes() > 2 && NowMs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_EQ(db.NumQueryNodes(), 2u) << "watchdog never failed the node over";

  // Redundancy must come back on the survivors within a bounded number of
  // reconcile passes.
  while (placement->UnderReplicatedCount() > 0 && NowMs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_EQ(placement->UnderReplicatedCount(), 0)
      << "reconciler never restored redundancy";
  EXPECT_EQ(MetricsRegistry::Global().GaugeValue("placement.under_replicated"),
            0);
  EXPECT_GT(MetricsRegistry::Global().CounterValue(
                "placement.repair_ops", {{"trigger", "redundancy"}}),
            0);

  stop.store(true);
  searcher.join();
  writer.join();

  EXPECT_GT(searches.load(), 0);
  EXPECT_EQ(failed_searches.load(), 0) << first_error;

  // Every repaired group is back at factor 2, and none of the copies sits
  // on the dead node.
  for (const auto& g : placement->CollectionSnapshot(meta.value().id)) {
    EXPECT_EQ(g.serving.size(), 2u) << "segment " << g.meta.id;
    for (const auto& r : g.serving) EXPECT_NE(r.node, victim);
  }

  // No acked write lost: a strong sweep over everything that may exist
  // must return every acked pk exactly once at full coverage.
  SearchRequest req;
  req.collection = "heal";
  req.query.assign(data.Row(0), data.Row(0) + 8);
  {
    std::lock_guard<std::mutex> lock(ack_mu);
    req.k = static_cast<size_t>(attempted);
  }
  req.consistency = ConsistencyLevel::kStrong;
  auto res = db.Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().coverage, 1.0);
  std::set<int64_t> found(res.value().ids.begin(), res.value().ids.end());
  EXPECT_EQ(found.size(), res.value().ids.size()) << "duplicate pks";
  std::lock_guard<std::mutex> lock(ack_mu);
  for (int64_t pk : acked) {
    EXPECT_EQ(found.count(pk), 1u) << "acked pk " << pk << " lost";
  }
}

}  // namespace
}  // namespace manu
