// Overload robustness: admission control, brownout shedding and write-path
// backpressure (core/admission.h, ROADMAP item 3). Tier-1 coverage for the
// mechanisms the chaos storm test exercises end-to-end:
//   - AdmissionController unit behavior: token buckets, the inflight
//     ceiling, the three-stage brownout ladder with hysteresis, and the
//     retry-after hint protocol.
//   - kResourceExhausted is never blindly retried (RetryPolicy, proxy).
//   - Query-node bounded admission: expired deadlines fail fast at
//     admission; the per-node inflight cap sheds with a hint.
//   - Coverage accounting when shedding drops a node mid-fan-out.
//   - Logger backpressure and the proxy's hint-honoring write retry.
//   - DescribeCluster surfaces per-node overload state.
//   - PlanFor assigns each sealed segment to exactly one replica (p2c).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <set>
#include <thread>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/synthetic.h"
#include "core/admission.h"
#include "core/autoscaler.h"
#include "core/manu.h"

namespace manu {
namespace {

constexpr int32_t kDim = 16;

ManuConfig BaseConfig() {
  ManuConfig config;
  config.num_shards = 2;
  config.segment_seal_rows = 1000;
  config.segment_idle_seal_ms = 200;
  config.slice_rows = 256;
  config.time_tick_interval_ms = 10;
  config.num_query_nodes = 2;
  return config;
}

CollectionSchema VecSchema(const std::string& name) {
  CollectionSchema schema(name);
  FieldSchema pk;
  pk.name = "id";
  pk.type = DataType::kInt64;
  pk.is_primary = true;
  EXPECT_TRUE(schema.AddField(pk).ok());
  FieldSchema vec;
  vec.name = "embedding";
  vec.type = DataType::kFloatVector;
  vec.dim = kDim;
  vec.metric = MetricType::kL2;
  EXPECT_TRUE(schema.AddField(vec).ok());
  return schema;
}

EntityBatch MakeBatch(const CollectionMeta& meta, const VectorDataset& data,
                      int64_t begin, int64_t end) {
  EntityBatch batch;
  const FieldSchema* vec = meta.schema.FieldByName("embedding");
  std::vector<float> flat(data.data.begin() + begin * data.dim,
                          data.data.begin() + end * data.dim);
  for (int64_t i = begin; i < end; ++i) batch.primary_keys.push_back(i);
  batch.columns.push_back(
      FieldColumn::MakeFloatVector(vec->id, data.dim, std::move(flat)));
  return batch;
}

VectorDataset MakeData(int64_t rows) {
  SyntheticOptions opts;
  opts.num_rows = rows;
  opts.dim = kDim;
  opts.num_clusters = 8;
  return MakeClusteredDataset(opts);
}

// --- Retry-after hint protocol -------------------------------------------

TEST(Overload, ShedStatusCarriesRetryAfterHint) {
  Status st = AdmissionController::ShedStatus("proxy", 2, 75);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(AdmissionController::RetryAfterHintMs(st), 75);
  // Components without a hint (or foreign RE statuses) parse as "none".
  EXPECT_EQ(AdmissionController::RetryAfterHintMs(
                Status::ResourceExhausted("logger full")),
            -1);
  EXPECT_EQ(AdmissionController::RetryAfterHintMs(Status::OK()), -1);
}

// --- AdmissionController units -------------------------------------------

TEST(Overload, TokenBucketThrottlesPerTenant) {
  ManuConfig config;
  config.admission_tenant_qps = 1;
  config.admission_tenant_burst = 1;
  AdmissionController adm(config);

  AdmitDecision first = adm.Admit("acme", 0);
  EXPECT_TRUE(first.admitted());
  adm.Release();

  AdmitDecision second = adm.Admit("acme", 0);
  EXPECT_EQ(second.action, AdmitAction::kShed);
  EXPECT_STREQ(second.reason, "tenant_throttle");
  // The hint points at the bucket's refill, not a generic constant.
  EXPECT_GE(second.retry_after_ms, 1);

  // Buckets are per tenant: a throttled tenant doesn't starve others.
  AdmitDecision other = adm.Admit("globex", 0);
  EXPECT_TRUE(other.admitted());
  adm.Release();
}

TEST(Overload, InflightCeilingShedsAtCapacity) {
  ManuConfig config;
  config.admission_max_inflight = 2;
  AdmissionController adm(config);

  EXPECT_TRUE(adm.Admit("", 0).admitted());
  EXPECT_TRUE(adm.Admit("", 0).admitted());
  AdmitDecision third = adm.Admit("", 0);
  EXPECT_EQ(third.action, AdmitAction::kShed);
  EXPECT_STREQ(third.reason, "inflight_ceiling");
  EXPECT_GE(third.retry_after_ms, 1);
  EXPECT_EQ(adm.inflight(), 2);

  adm.Release();
  EXPECT_TRUE(adm.Admit("", 0).admitted());
  adm.Release();
  adm.Release();
  EXPECT_EQ(adm.inflight(), 0);
}

TEST(Overload, BrownoutLadderEngagesInOrderAndReleases) {
  ManuConfig config;  // Default thresholds: 0.65 / 0.80 / 0.95.
  AdmissionController adm(config);
  std::atomic<double> pressure{0.0};
  adm.SetPressureProbe([&] { return pressure.load(); });

  // The EWMA snaps to the probe once samples are >= 100ms apart
  // (alpha = 1), so each step below is deterministic.
  auto settle = [&](double p) {
    pressure.store(p);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
  };
  auto admit = [&](int32_t priority) {
    AdmitDecision d = adm.Admit("t", priority);
    if (d.admitted()) adm.Release();
    return d;
  };

  settle(0.70);
  AdmitDecision d1 = admit(0);
  EXPECT_EQ(d1.action, AdmitAction::kDegrade);
  EXPECT_EQ(adm.stage(), 1);

  settle(0.85);
  AdmitDecision low = admit(1);
  EXPECT_EQ(low.action, AdmitAction::kShed);
  EXPECT_STREQ(low.reason, "low_priority_shed");
  AdmitDecision normal = admit(0);
  EXPECT_EQ(normal.action, AdmitAction::kDegrade) << "stage 2 still serves "
                                                     "normal priority";

  settle(1.0);
  AdmitDecision rejected = admit(0);
  EXPECT_EQ(rejected.action, AdmitAction::kReject);
  EXPECT_EQ(adm.stage(), 3);

  // The ladder engaged in order: degrade, then shed, then reject.
  const int64_t s1 = adm.StageFirstEngagedMs(1);
  const int64_t s2 = adm.StageFirstEngagedMs(2);
  const int64_t s3 = adm.StageFirstEngagedMs(3);
  EXPECT_GT(s1, 0);
  EXPECT_LE(s1, s2);
  EXPECT_LE(s2, s3);

  // Pressure collapse releases the ladder (through the hysteresis band).
  settle(0.0);
  AdmitDecision after = admit(0);
  EXPECT_EQ(after.action, AdmitAction::kAdmit);
  EXPECT_EQ(adm.stage(), 0);
}

// --- kResourceExhausted is never blindly retried -------------------------

TEST(Overload, ResourceExhaustedIsNeverBlindlyRetried) {
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::ResourceExhausted("shed")));

  RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  Status st = RetryOp(policy, "test.overload_shed", [&] {
    ++calls;
    return Status::ResourceExhausted("shed");
  });
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(calls, 1) << "a shed op must surface immediately, not retry-storm";
}

// --- Query-node bounded admission ----------------------------------------

TEST(Overload, QueryNodeFailsExpiredDeadlineAtAdmission) {
  // Regression: the deadline used to be checked only inside the segment
  // scan path, so a dead-on-arrival request with no matching segments
  // returned OK-empty after claiming an executor slot. It must fail fast
  // at admission.
  ManuInstance db(BaseConfig());
  auto meta = db.CreateCollection(VecSchema("overload_deadline"));
  ASSERT_TRUE(meta.ok());
  auto nodes = db.query_coord()->Nodes();
  ASSERT_FALSE(nodes.empty());

  NodeSearchRequest req;
  req.collection = meta.value().id;
  req.staleness_ms = -1;
  req.deadline_us = NowMicros() - 1'000'000;  // Already a second past.

  const int64_t t0 = NowMicros();
  auto res = nodes[0]->Search(req);
  const int64_t elapsed_ms = (NowMicros() - t0) / 1000;
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kTimeout);
  EXPECT_NE(res.status().message().find("admission"), std::string::npos)
      << res.status().ToString();
  EXPECT_LT(elapsed_ms, 500) << "expired deadline must fail fast";
  EXPECT_GE(nodes[0]->LoadSnapshot().deadline_rejects, 1);
}

TEST(Overload, QueryNodeInflightCapShedsWithHint) {
  ManuConfig config = BaseConfig();
  config.admission_node_inflight = 1;
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("overload_cap"));
  ASSERT_TRUE(meta.ok());
  VectorDataset data = MakeData(200);
  ASSERT_TRUE(db.Insert("overload_cap", MakeBatch(meta.value(), data, 0, 200))
                  .ok());
  auto nodes = db.query_coord()->Nodes();
  ASSERT_FALSE(nodes.empty());
  auto node = nodes[0];

  const FieldId field = meta.value().schema.FieldByName("embedding")->id;
  std::vector<float> query(data.Row(3), data.Row(3) + kDim);
  NodeSearchRequest req;
  req.collection = meta.value().id;
  req.targets.push_back({field, query.data(), 1.0f});
  req.params.k = 5;
  req.staleness_ms = -1;

  // Hold the node's only slot with a search parked in the delay failpoint.
  ScopedFailPoint fp("query_node.search_segment",
                     FailPointPolicy::Delay(300'000));
  std::thread occupier([&] { (void)node->Search(req); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  auto res = node->Search(req);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(AdmissionController::RetryAfterHintMs(res.status()), 1);
  EXPECT_GE(node->LoadSnapshot().overload_rejects, 1);
  occupier.join();
}

// --- Proxy front door ----------------------------------------------------

TEST(Overload, ProxyShedsThrottledTenantWithoutRetry) {
  ManuConfig config = BaseConfig();
  config.admission_tenant_qps = 1;
  config.admission_tenant_burst = 1;
  config.search_retry_attempts = 3;  // Must NOT apply to shed requests.
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("overload_tenant"));
  ASSERT_TRUE(meta.ok());
  VectorDataset data = MakeData(500);
  ASSERT_TRUE(
      db.Insert("overload_tenant", MakeBatch(meta.value(), data, 0, 500))
          .ok());

  SearchRequest req;
  req.collection = "overload_tenant";
  req.query.assign(data.Row(7), data.Row(7) + kDim);
  req.k = 5;
  req.consistency = ConsistencyLevel::kEventually;
  req.tenant = "acme";

  auto first = db.Search(req);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  const auto& metrics = MetricsRegistry::Global();
  const int64_t retries_before = metrics.CounterValue("proxy.search_retries");
  auto second = db.Search(req);  // Bucket empty: shed, not queued.
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(AdmissionController::RetryAfterHintMs(second.status()), 1);
  EXPECT_EQ(metrics.CounterValue("proxy.search_retries"), retries_before)
      << "the proxy must not re-dispatch a shed request";
  EXPECT_GE(metrics.CounterValue("shed.requests",
                                 {{"reason", "tenant_throttle"}}),
            1);

  req.tenant = "globex";
  auto other = db.Search(req);
  EXPECT_TRUE(other.ok()) << other.status().ToString();
}

TEST(Overload, PartialCoverageWhenNodeShedsMidFanout) {
  ManuConfig config = BaseConfig();
  config.admission_node_inflight = 1;
  config.node_search_deadline_ms = 5000;
  config.search_retry_attempts = 2;  // Must not fire for RE either way.
  // Park the brownout ladder (pressure never reaches a threshold > 1) so
  // the test isolates NODE-level shedding and the proxy's coverage math.
  config.shed_degrade_pressure = 2.0;
  config.shed_low_priority_pressure = 2.0;
  config.shed_reject_pressure = 2.0;
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("overload_partial"));
  ASSERT_TRUE(meta.ok());
  VectorDataset data = MakeData(2000);
  ASSERT_TRUE(
      db.Insert("overload_partial", MakeBatch(meta.value(), data, 0, 2000))
          .ok());
  ASSERT_TRUE(db.FlushAndWait("overload_partial").ok());

  // Tombstone-heavy mix: delete a quarter of the rows, then make sure the
  // shed-node accounting doesn't resurrect them or miscount coverage.
  std::vector<int64_t> doomed;
  for (int64_t pk = 1000; pk < 1500; ++pk) doomed.push_back(pk);
  auto del_ts = db.Delete("overload_partial", doomed);
  ASSERT_TRUE(del_ts.ok());
  ASSERT_TRUE(db.WaitUntilVisible("overload_partial", del_ts.value()).ok());

  auto nodes = db.query_coord()->Nodes();
  ASSERT_GE(nodes.size(), 2u);

  const FieldId field = meta.value().schema.FieldByName("embedding")->id;
  std::vector<float> occupier_query(data.Row(3), data.Row(3) + kDim);
  NodeSearchRequest direct;
  direct.collection = meta.value().id;
  direct.targets.push_back({field, occupier_query.data(), 1.0f});
  direct.params.k = 5;
  direct.staleness_ms = -1;

  // Saturate node 0's single slot for the duration of `body`; every other
  // node merely runs slow (the delay applies to all of them).
  ScopedFailPoint fp("query_node.search_segment",
                     FailPointPolicy::Delay(400'000));
  auto while_node0_full = [&](const std::function<void()>& body) {
    std::thread occupier([&] { (void)nodes[0]->Search(direct); });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    body();
    occupier.join();
  };

  SearchRequest req;
  req.collection = "overload_partial";
  req.query.assign(data.Row(17), data.Row(17) + kDim);
  req.k = 20;
  req.consistency = ConsistencyLevel::kEventually;

  const auto& metrics = MetricsRegistry::Global();
  const int64_t retries_before = metrics.CounterValue("proxy.search_retries");

  // allow_partial: the shed node is dropped from coverage, the rest serve.
  while_node0_full([&] {
    SearchRequest partial = req;
    partial.allow_partial = true;
    auto res = db.Search(partial);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_GT(res.value().coverage, 0.0);
    EXPECT_LT(res.value().coverage, 1.0)
        << "the refused node must be subtracted from coverage";
    EXPECT_FALSE(res.value().ids.empty());
    for (int64_t id : res.value().ids) {
      EXPECT_FALSE(id >= 1000 && id < 1500)
          << "deleted pk " << id << " resurfaced";
    }
  });

  // Without allow_partial the refusal surfaces as-is — and is NOT retried
  // (a proxy.retry re-dispatch would double-offer load to a shedding node).
  while_node0_full([&] {
    auto strict = db.Search(req);
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.status().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(metrics.CounterValue("proxy.search_retries"), retries_before);
  });
}

// --- Write-path backpressure ---------------------------------------------

TEST(Overload, LoggerBackpressureSurfacesWhenRetriesOff) {
  ManuConfig config = BaseConfig();
  config.num_shards = 1;
  config.num_loggers = 1;
  config.logger_inflight_limit = 1;
  config.shed_retry_after_ms = 10;
  config.admission_write_retry_attempts = 0;
  config.time_tick_interval_ms = 1000;  // Keep ticks off the delayed mq.
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("overload_write"));
  ASSERT_TRUE(meta.ok());
  VectorDataset data = MakeData(200);

  const auto& metrics = MetricsRegistry::Global();
  const int64_t rejects_before =
      metrics.CounterValue("backpressure.logger_rejections");

  // Park the first insert inside the WAL publish; its in-flight slot stays
  // held, so a second insert meets a full window.
  ScopedFailPoint fp("mq.publish", FailPointPolicy::Delay(150'000));
  std::atomic<bool> first_ok{false};
  std::thread writer([&] {
    first_ok = db.Insert("overload_write", MakeBatch(meta.value(), data, 0, 100))
                   .ok();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  auto second =
      db.Insert("overload_write", MakeBatch(meta.value(), data, 100, 200));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(AdmissionController::RetryAfterHintMs(second.status()), 1);
  EXPECT_GT(metrics.CounterValue("backpressure.logger_rejections"),
            rejects_before);

  writer.join();
  EXPECT_TRUE(first_ok) << "backpressure must not fail the admitted write";

  // The refused write had no side effects: replaying it verbatim succeeds.
  auto replay =
      db.Insert("overload_write", MakeBatch(meta.value(), data, 100, 200));
  EXPECT_TRUE(replay.ok()) << replay.status().ToString();
}

TEST(Overload, ProxyWriteRetriesHonorRetryAfterHint) {
  ManuConfig config = BaseConfig();
  config.num_shards = 1;
  config.num_loggers = 1;
  config.logger_inflight_limit = 1;
  config.shed_retry_after_ms = 10;
  config.admission_write_retry_attempts = 10;
  config.time_tick_interval_ms = 1000;
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("overload_wretry"));
  ASSERT_TRUE(meta.ok());
  VectorDataset data = MakeData(200);

  const auto& metrics = MetricsRegistry::Global();
  const int64_t retries_before =
      metrics.CounterValue("backpressure.write_retries");

  ScopedFailPoint fp("mq.publish", FailPointPolicy::Delay(60'000));
  std::atomic<bool> first_ok{false};
  std::thread writer([&] {
    first_ok =
        db.Insert("overload_wretry", MakeBatch(meta.value(), data, 0, 100))
            .ok();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // The second insert is initially refused but the proxy front door honors
  // the retry-after hint and lands it once the window drains.
  auto second =
      db.Insert("overload_wretry", MakeBatch(meta.value(), data, 100, 200));
  EXPECT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GT(metrics.CounterValue("backpressure.write_retries"),
            retries_before);
  writer.join();
  EXPECT_TRUE(first_ok);
}

// --- Introspection -------------------------------------------------------

TEST(Overload, DescribeClusterReportsOverloadState) {
  ManuInstance db(BaseConfig());
  auto meta = db.CreateCollection(VecSchema("overload_describe"));
  ASSERT_TRUE(meta.ok());
  const std::string desc = db.DescribeCluster();
  EXPECT_NE(desc.find("queue_depth="), std::string::npos) << desc;
  EXPECT_NE(desc.find("overload_rejects="), std::string::npos);
  EXPECT_NE(desc.find("admission: brownout_stage=0"), std::string::npos);
}

// --- Replica routing -----------------------------------------------------

TEST(Overload, PlanForAssignsEachSealedSegmentToOneReplica) {
  ManuConfig config = BaseConfig();
  config.num_query_nodes = 3;
  config.replica_factor = 2;
  config.segment_seal_rows = 500;
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("overload_p2c"));
  ASSERT_TRUE(meta.ok());
  VectorDataset data = MakeData(2000);
  ASSERT_TRUE(
      db.Insert("overload_p2c", MakeBatch(meta.value(), data, 0, 2000)).ok());
  ASSERT_TRUE(db.FlushAndWait("overload_p2c").ok());

  auto plan = db.query_coord()->PlanFor(meta.value().id);
  ASSERT_FALSE(plan.routes.empty());
  EXPECT_EQ(plan.unroutable, 0);
  std::set<SegmentId> assigned;
  size_t total_assigned = 0;
  for (const auto& route : plan.routes) {
    ASSERT_NE(route.node, nullptr);
    EXPECT_TRUE(std::is_sorted(route.sealed_filter.begin(),
                               route.sealed_filter.end()));
    for (SegmentId seg : route.sealed_filter) assigned.insert(seg);
    total_assigned += route.sealed_filter.size();
    // Replication makes segments live on several nodes, but the plan only
    // asks a node to scan segments it actually holds.
    auto held = route.node->SealedSegments(meta.value().id);
    std::set<SegmentId> held_set(held.begin(), held.end());
    for (SegmentId seg : route.sealed_filter) {
      EXPECT_TRUE(held_set.count(seg)) << "route assigns unheld segment "
                                       << seg;
    }
  }
  EXPECT_GT(total_assigned, 0u);
  EXPECT_EQ(total_assigned, assigned.size())
      << "with replica_factor=2 each sealed segment must be scanned by "
         "exactly one p2c-chosen owner";

  // Routing changes must not change answers: exact self-match, full
  // coverage (every segment is owned by exactly one route).
  SearchRequest req;
  req.collection = "overload_p2c";
  req.query.assign(data.Row(17), data.Row(17) + kDim);
  req.k = 10;
  req.consistency = ConsistencyLevel::kStrong;
  for (int i = 0; i < 5; ++i) {
    auto res = db.Search(req);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ASSERT_FALSE(res.value().ids.empty());
    EXPECT_EQ(res.value().ids[0], 17);
    EXPECT_DOUBLE_EQ(res.value().coverage, 1.0);
  }
}

// --- Autoscaler vs. brownout ---------------------------------------------

TEST(Overload, AutoscalerScaleDownSuppressedDuringBrownout) {
  ManuConfig config = BaseConfig();
  config.num_query_nodes = 2;
  ManuInstance db(config);

  AutoScalerPolicy policy;
  policy.min_nodes = 1;
  AutoScaler scaler(&db, policy);
  int32_t stage = 1;
  scaler.SetBrownoutProbe([&stage] { return stage; });

  // Shedding makes measured latency look idle (rejected requests are
  // cheap), so low latency during brownout must NOT remove capacity.
  const int64_t suppressed_before = MetricsRegistry::Global().CounterValue(
      "autoscaler.scale_down_suppressed");
  EXPECT_EQ(scaler.Evaluate(10.0), 2);
  EXPECT_EQ(db.query_coord()->NumQueryNodes(), 2u);
  EXPECT_EQ(MetricsRegistry::Global().CounterValue(
                "autoscaler.scale_down_suppressed"),
            suppressed_before + 1);

  // Suppression also resets the below-threshold streak: once the ladder
  // releases, the streak starts over instead of firing instantly off stale
  // pre-brownout windows.
  stage = 0;
  EXPECT_EQ(scaler.Evaluate(10.0), 1);
  EXPECT_EQ(db.query_coord()->NumQueryNodes(), 1u);

  // Scale-UP is never suppressed: overload wants more capacity, not less.
  stage = 2;
  EXPECT_EQ(scaler.Evaluate(500.0), 2);
  EXPECT_EQ(db.query_coord()->NumQueryNodes(), 2u);
}

}  // namespace
}  // namespace manu
