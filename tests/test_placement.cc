// Self-healing replica groups (core/placement.h, ROADMAP item 3).
// Unit half: a fake PlacementHost drives the reconciler's planning rules —
// top-up ordering, epoch fencing (a stale repair is undone, never
// committed), rolling version reloads, survivor-before-victim drains.
// E2E half: a real ManuInstance exercises the coordinator integration —
// zero coverage dip through a scale-down drain, unroutable-segment
// accounting when every replica of a group is lost, and redundancy
// restoration by the background reconciler after a node kill.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/synthetic.h"
#include "core/manu.h"
#include "core/placement.h"
#include "storage/object_store.h"

namespace manu {
namespace {

constexpr int32_t kDim = 16;

// --- Fake host -----------------------------------------------------------

/// In-memory PlacementHost: a node set with controllable epoch, recording
/// every load/release in order. LoadReplica can be rigged to fail or to
/// bump the epoch mid-flight (the fencing race).
class FakeHost : public PlacementHost {
 public:
  std::vector<std::pair<NodeId, uint64_t>> RepairCandidates() override {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::pair<NodeId, uint64_t>> out;
    for (const auto& [node, bytes] : nodes_) out.emplace_back(node, bytes);
    return out;
  }

  Status LoadReplica(NodeId target, const SegmentMeta& meta,
                     std::shared_ptr<const CollectionSchema>) override {
    std::lock_guard<std::mutex> lk(mu_);
    ops_.push_back({"load", target, meta.id});
    if (fail_loads_) return Status::IOError("injected load failure");
    if (bump_epoch_on_load_) epoch_.fetch_add(1);
    return Status::OK();
  }

  void ReleaseReplica(NodeId target, CollectionId,
                      SegmentId segment) override {
    std::lock_guard<std::mutex> lk(mu_);
    ops_.push_back({"release", target, segment});
  }

  int64_t TopologyEpoch() const override { return epoch_.load(); }

  void AddNode(NodeId id, uint64_t bytes = 0) {
    std::lock_guard<std::mutex> lk(mu_);
    nodes_[id] = bytes;
  }
  void RemoveNode(NodeId id) {
    std::lock_guard<std::mutex> lk(mu_);
    nodes_.erase(id);
  }
  void BumpEpoch() { epoch_.fetch_add(1); }
  void set_fail_loads(bool v) { fail_loads_ = v; }
  void set_bump_epoch_on_load(bool v) { bump_epoch_on_load_ = v; }

  struct Op {
    std::string kind;
    NodeId node;
    SegmentId segment;
  };
  std::vector<Op> ops() const {
    std::lock_guard<std::mutex> lk(mu_);
    return ops_;
  }

 private:
  mutable std::mutex mu_;
  std::map<NodeId, uint64_t> nodes_;
  std::atomic<int64_t> epoch_{0};
  bool fail_loads_ = false;
  bool bump_epoch_on_load_ = false;
  std::vector<Op> ops_;
};

SegmentMeta FakeMeta(CollectionId collection, SegmentId id,
                     int32_t index_version = 1) {
  SegmentMeta meta;
  meta.collection = collection;
  meta.id = id;
  meta.shard = 0;
  meta.state = SegmentState::kIndexed;
  meta.num_rows = 100;
  meta.index_versions[1] = index_version;
  return meta;
}

ManuConfig PlacementConfig() {
  ManuConfig config;
  // Serial repairs: the unit tests assert on the recorded op ORDER, which
  // concurrent workers would interleave. The E2E tests run the default.
  config.placement_repair_concurrency = 1;
  return config;
}

std::map<SegmentId, std::set<NodeId>> GroupsOf(const PlacementManager& pm,
                                               CollectionId collection) {
  std::map<SegmentId, std::set<NodeId>> out;
  for (const SegmentPlacement& entry : pm.CollectionSnapshot(collection)) {
    std::set<NodeId>& nodes = out[entry.meta.id];
    for (const ReplicaState& r : entry.serving) nodes.insert(r.node);
  }
  return out;
}

TEST(PlacementUnit, ReconcilerTopsUpUnderReplicatedGroups) {
  FakeHost host;
  host.AddNode(1, 100);
  host.AddNode(2, 50);
  host.AddNode(3, 10);
  PlacementManager pm(PlacementConfig(), &host);

  pm.SetDesired(FakeMeta(7, 40), nullptr, 2);
  pm.RecordServing(7, 40, 1, 1);
  pm.SetDesired(FakeMeta(7, 41), nullptr, 2);  // zero replicas: repair first
  EXPECT_EQ(pm.UnderReplicatedCount(), 2);

  EXPECT_EQ(pm.ReconcileOnce(), 3);  // 2 adds for seg 41, 1 add for seg 40
  EXPECT_EQ(pm.UnderReplicatedCount(), 0);

  auto groups = GroupsOf(pm, 7);
  EXPECT_EQ(groups[40].size(), 2u);
  EXPECT_EQ(groups[41].size(), 2u);
  // Zero-coverage group repairs before the redundancy top-up.
  const auto ops = host.ops();
  ASSERT_FALSE(ops.empty());
  EXPECT_EQ(ops[0].segment, 41);
  // The heaviest node (1, and already a member of group 40) never receives
  // group 40's top-up.
  for (const auto& op : ops) {
    if (op.segment == 40) EXPECT_NE(op.node, 1);
  }
}

TEST(PlacementUnit, DesiredClampedToFleetSize) {
  FakeHost host;
  host.AddNode(1);
  host.AddNode(2);
  PlacementManager pm(PlacementConfig(), &host);
  pm.SetDesired(FakeMeta(7, 40), nullptr, 3);
  pm.RecordServing(7, 40, 1, 1);
  pm.RecordServing(7, 40, 2, 1);
  // Three replicas desired but only two nodes exist: not under-replicated,
  // and a reconcile pass plans nothing.
  EXPECT_EQ(pm.UnderReplicatedCount(), 0);
  EXPECT_EQ(pm.ReconcileOnce(), 0);
}

TEST(PlacementUnit, EpochFenceUndoesStaleRepair) {
  FakeHost host;
  host.AddNode(1);
  host.AddNode(2);
  PlacementManager pm(PlacementConfig(), &host);
  pm.SetDesired(FakeMeta(7, 40), nullptr, 2);
  pm.RecordServing(7, 40, 1, 1);

  // The epoch moves while the repair load is in flight (a failover landed):
  // the repair must NOT commit, and the freshly loaded replica is undone.
  host.set_bump_epoch_on_load(true);
  EXPECT_EQ(pm.ReconcileOnce(), 0);
  auto groups = GroupsOf(pm, 7);
  EXPECT_EQ(groups[40], std::set<NodeId>({1}));
  const auto ops = host.ops();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].kind, "load");
  EXPECT_EQ(ops[1].kind, "release");
  EXPECT_EQ(ops[0].node, ops[1].node);

  // Once the topology is stable again the repair goes through.
  host.set_bump_epoch_on_load(false);
  EXPECT_EQ(pm.ReconcileOnce(), 1);
  EXPECT_EQ(GroupsOf(pm, 7)[40].size(), 2u);
}

TEST(PlacementUnit, FailedLoadsAreRetriedNextPass) {
  FakeHost host;
  host.AddNode(1);
  host.AddNode(2);
  PlacementManager pm(PlacementConfig(), &host);
  pm.SetDesired(FakeMeta(7, 40), nullptr, 2);
  pm.RecordServing(7, 40, 1, 1);

  host.set_fail_loads(true);
  EXPECT_EQ(pm.ReconcileOnce(), 0);
  EXPECT_EQ(pm.UnderReplicatedCount(), 1);
  host.set_fail_loads(false);
  EXPECT_EQ(pm.ReconcileOnce(), 1);
  EXPECT_EQ(pm.UnderReplicatedCount(), 0);
}

TEST(PlacementUnit, VersionBumpReloadsOneReplicaPerPass) {
  FakeHost host;
  host.AddNode(1);
  host.AddNode(2);
  PlacementManager pm(PlacementConfig(), &host);
  // Both replicas serve version 1; the index rebuilds at version 3.
  pm.SetDesired(FakeMeta(7, 40, /*index_version=*/1), nullptr, 2);
  pm.RecordServing(7, 40, 1, 1);
  pm.RecordServing(7, 40, 2, 1);
  pm.SetDesired(FakeMeta(7, 40, /*index_version=*/3), nullptr, 2);

  // Rolling: exactly one replica reloads per pass, so the group never has
  // all replicas reloading at once.
  EXPECT_EQ(pm.ReconcileOnce(), 1);
  int stale = 0;
  for (const auto& entry : pm.CollectionSnapshot(7)) {
    for (const ReplicaState& r : entry.serving) {
      if (r.version < 3) ++stale;
    }
  }
  EXPECT_EQ(stale, 1);
  EXPECT_EQ(pm.ReconcileOnce(), 1);
  EXPECT_EQ(pm.ReconcileOnce(), 0);  // converged
  for (const auto& entry : pm.CollectionSnapshot(7)) {
    for (const ReplicaState& r : entry.serving) EXPECT_EQ(r.version, 3);
  }
}

TEST(PlacementUnit, DrainLoadsSurvivorBeforeReleasingVictim) {
  FakeHost host;
  host.AddNode(1);
  host.AddNode(2);
  PlacementManager pm(PlacementConfig(), &host);
  // Segments 40, 41: sole copies on node 1 (must move). Segment 42: on
  // both (victim copy is redundant, pure release).
  for (SegmentId seg : {40, 41, 42}) {
    pm.SetDesired(FakeMeta(7, seg), nullptr, seg == 42 ? 2 : 1);
    pm.RecordServing(7, seg, 1, 1);
  }
  pm.RecordServing(7, 42, 2, 1);

  // The host stops offering node 1 as a candidate (the coordinator marks
  // it draining), then the drain runs.
  host.RemoveNode(1);
  ASSERT_TRUE(pm.DrainNode(1).ok());

  auto groups = GroupsOf(pm, 7);
  EXPECT_EQ(groups[40], std::set<NodeId>({2}));
  EXPECT_EQ(groups[41], std::set<NodeId>({2}));
  EXPECT_EQ(groups[42], std::set<NodeId>({2}));
  // Per segment: the survivor load strictly precedes the victim release.
  const auto ops = host.ops();
  for (SegmentId seg : {40, 41}) {
    size_t load_at = ops.size(), release_at = ops.size();
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].segment != seg) continue;
      if (ops[i].kind == "load" && ops[i].node == 2) {
        load_at = std::min(load_at, i);
      }
      if (ops[i].kind == "release" && ops[i].node == 1) release_at = i;
    }
    EXPECT_LT(load_at, release_at) << "segment " << seg;
  }
}

TEST(PlacementUnit, InterruptedDrainLeavesVictimServing) {
  FakeHost host;
  host.AddNode(1);
  host.AddNode(2);
  PlacementManager pm(PlacementConfig(), &host);
  pm.SetDesired(FakeMeta(7, 40), nullptr, 1);
  pm.RecordServing(7, 40, 1, 1);

  host.RemoveNode(1);
  host.set_bump_epoch_on_load(true);  // a failover interrupts the drain
  Status st = pm.DrainNode(1);
  EXPECT_FALSE(st.ok());
  // The victim still serves its sole copy: no coverage dip from a failed
  // drain.
  EXPECT_EQ(GroupsOf(pm, 7)[40], std::set<NodeId>({1}));
}

TEST(PlacementUnit, RebalanceSpreadsOntoNewNode) {
  FakeHost host;
  host.AddNode(1);
  PlacementManager pm(PlacementConfig(), &host);
  for (SegmentId seg = 40; seg < 46; ++seg) {
    pm.SetDesired(FakeMeta(7, seg), nullptr, 1);
    pm.RecordServing(7, seg, 1, 1);
  }
  host.AddNode(2);  // scale-up
  ASSERT_TRUE(pm.RebalanceNow().ok());
  std::map<NodeId, int> counts;
  for (const auto& [seg, nodes] : GroupsOf(pm, 7)) {
    for (NodeId n : nodes) ++counts[n];
  }
  EXPECT_LE(std::abs(counts[1] - counts[2]), 1);
  EXPECT_EQ(counts[1] + counts[2], 6);
}

// --- E2E: coordinator integration ---------------------------------------

ManuConfig BaseConfig() {
  ManuConfig config;
  config.num_shards = 2;
  config.segment_seal_rows = 500;
  config.segment_idle_seal_ms = 200;
  config.slice_rows = 256;
  config.time_tick_interval_ms = 10;
  config.num_query_nodes = 2;
  return config;
}

CollectionSchema VecSchema(const std::string& name) {
  CollectionSchema schema(name);
  FieldSchema pk;
  pk.name = "id";
  pk.type = DataType::kInt64;
  pk.is_primary = true;
  EXPECT_TRUE(schema.AddField(pk).ok());
  FieldSchema vec;
  vec.name = "embedding";
  vec.type = DataType::kFloatVector;
  vec.dim = kDim;
  vec.metric = MetricType::kL2;
  EXPECT_TRUE(schema.AddField(vec).ok());
  return schema;
}

EntityBatch MakeBatch(const CollectionMeta& meta, const VectorDataset& data,
                      int64_t begin, int64_t end) {
  EntityBatch batch;
  const FieldSchema* vec = meta.schema.FieldByName("embedding");
  std::vector<float> flat(data.data.begin() + begin * data.dim,
                          data.data.begin() + end * data.dim);
  for (int64_t i = begin; i < end; ++i) batch.primary_keys.push_back(i);
  batch.columns.push_back(
      FieldColumn::MakeFloatVector(vec->id, data.dim, std::move(flat)));
  return batch;
}

VectorDataset MakeData(int64_t rows) {
  SyntheticOptions opts;
  opts.num_rows = rows;
  opts.dim = kDim;
  opts.num_clusters = 8;
  return MakeClusteredDataset(opts);
}

TEST(PlacementE2E, DrainKeepsFullCoverageThroughScaleDown) {
  ManuConfig config = BaseConfig();
  config.num_query_nodes = 3;
  // A search planned just before the drained node's final Stop() may still
  // dispatch to it; the retry re-plans against the post-drain routing
  // snapshot. The drain itself guarantees the re-plan has full coverage.
  config.search_retry_attempts = 2;
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("placement_drain"));
  ASSERT_TRUE(meta.ok());
  VectorDataset data = MakeData(3000);
  ASSERT_TRUE(
      db.Insert("placement_drain", MakeBatch(meta.value(), data, 0, 3000))
          .ok());
  ASSERT_TRUE(db.FlushAndWait("placement_drain").ok());

  // Hammer strict full-coverage searches while the fleet drains 3 -> 2.
  // Zero coverage dip: every search must succeed with coverage == 1.0
  // (sole-copy segments are loaded on survivors BEFORE the victim's copy
  // is released; the victim keeps serving until then).
  std::atomic<bool> stop{false};
  std::atomic<int64_t> searched{0};
  std::atomic<int64_t> bad{0};
  std::thread searcher([&] {
    SearchRequest req;
    req.collection = "placement_drain";
    req.query.assign(data.Row(3), data.Row(3) + kDim);
    req.k = 5;
    req.consistency = ConsistencyLevel::kEventually;
    while (!stop.load()) {
      auto res = db.Search(req);
      ++searched;
      if (!res.ok() || res.value().coverage < 1.0) ++bad;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(db.ScaleQueryNodes(2).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  searcher.join();

  EXPECT_GT(searched.load(), 0);
  EXPECT_EQ(bad.load(), 0) << bad.load() << " of " << searched.load()
                           << " searches lost coverage during the drain";
  EXPECT_EQ(db.query_coord()->NumQueryNodes(), 2u);
  EXPECT_EQ(db.query_coord()->placement()->UnderReplicatedCount(), 0);
}

TEST(PlacementE2E, UnroutableSegmentsAreAccountedAndRepaired) {
  ManuConfig config = BaseConfig();
  config.num_query_nodes = 2;
  config.replica_factor = 1;
  // Failpoint-instrumented store: the kill below happens while reads fail,
  // so the synchronous recovery reload cannot restore coverage.
  auto store = std::make_shared<FaultyObjectStore>(
      std::make_shared<MemoryObjectStore>());
  ManuInstance db(config, store);
  auto meta = db.CreateCollection(VecSchema("placement_unroutable"));
  ASSERT_TRUE(meta.ok());
  VectorDataset data = MakeData(2000);
  ASSERT_TRUE(
      db.Insert("placement_unroutable", MakeBatch(meta.value(), data, 0, 2000))
          .ok());
  ASSERT_TRUE(db.FlushAndWait("placement_unroutable").ok());

  // Find a node that is the sole owner of at least one sealed segment.
  NodeId victim = kInvalidNodeId;
  for (const auto& entry :
       db.query_coord()->placement()->CollectionSnapshot(meta.value().id)) {
    if (entry.serving.size() == 1) {
      victim = entry.serving[0].node;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNodeId);

  const int64_t unroutable_before = MetricsRegistry::Global().CounterValue(
      "placement.unroutable_segments");
  {
    // Kill the node while the object store refuses reads: the synchronous
    // recovery reload fails, leaving its groups with zero replicas.
    ScopedFailPoint down("object_store.get",
                         FailPointPolicy::ErrorWithProbability(1.0));
    ASSERT_TRUE(db.KillQueryNode(victim).ok());

    // Strict searches refuse to silently serve a subset...
    SearchRequest strict;
    strict.collection = "placement_unroutable";
    strict.query.assign(data.Row(3), data.Row(3) + kDim);
    strict.k = 5;
    strict.consistency = ConsistencyLevel::kEventually;
    auto res = db.Search(strict);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.status().code(), StatusCode::kUnavailable);

    // ...while partial searches serve what is left, with the lost segments
    // counted against coverage (not silently dropped).
    SearchRequest partial = strict;
    partial.allow_partial = true;
    auto part = db.Search(partial);
    ASSERT_TRUE(part.ok()) << part.status().ToString();
    EXPECT_LT(part.value().coverage, 1.0);
    EXPECT_GT(MetricsRegistry::Global().CounterValue(
                  "placement.unroutable_segments"),
              unroutable_before);
    EXPECT_GT(db.query_coord()->placement()->UnderReplicatedCount(), 0);
  }

  // Storage healed: one reconcile pass repairs the orphaned groups from
  // the object store and full-coverage strict searches resume.
  EXPECT_GT(db.query_coord()->placement()->ReconcileOnce(), 0);
  EXPECT_EQ(db.query_coord()->placement()->UnderReplicatedCount(), 0);
  SearchRequest req;
  req.collection = "placement_unroutable";
  req.query.assign(data.Row(3), data.Row(3) + kDim);
  req.k = 5;
  req.consistency = ConsistencyLevel::kEventually;
  auto res = db.Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().coverage, 1.0);
}

TEST(PlacementE2E, ReconcilerRestoresRedundancyAfterKill) {
  ManuConfig config = BaseConfig();
  config.num_query_nodes = 3;
  config.replica_factor = 2;
  config.placement_reconcile_interval_ms = 50;
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("placement_heal"));
  ASSERT_TRUE(meta.ok());
  VectorDataset data = MakeData(2000);
  ASSERT_TRUE(
      db.Insert("placement_heal", MakeBatch(meta.value(), data, 0, 2000))
          .ok());
  ASSERT_TRUE(db.FlushAndWait("placement_heal").ok());

  auto* pm = db.query_coord()->placement();
  auto groups = GroupsOf(*pm, meta.value().id);
  ASSERT_FALSE(groups.empty());
  for (const auto& [seg, nodes] : groups) {
    EXPECT_EQ(nodes.size(), 2u) << "segment " << seg;
  }

  const NodeId victim = *groups.begin()->second.begin();
  ASSERT_TRUE(db.KillQueryNode(victim).ok());

  // Coverage is immediate (the surviving replica of each group serves);
  // redundancy comes back within the reconcile window.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (pm->UnderReplicatedCount() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(pm->UnderReplicatedCount(), 0);
  EXPECT_EQ(MetricsRegistry::Global().GaugeValue("placement.under_replicated"),
            0);
  for (const auto& [seg, nodes] : GroupsOf(*pm, meta.value().id)) {
    EXPECT_EQ(nodes.size(), 2u) << "segment " << seg;
    EXPECT_EQ(nodes.count(victim), 0u) << "segment " << seg;
  }
  EXPECT_GT(MetricsRegistry::Global().CounterValue(
                "placement.repair_ops", {{"trigger", "redundancy"}}),
            0);
}

}  // namespace
}  // namespace manu
