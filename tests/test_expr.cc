#include <gtest/gtest.h>

#include "core/expr.h"

namespace manu {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = CollectionSchema("products");
    FieldSchema pk;
    pk.name = "id";
    pk.type = DataType::kInt64;
    pk.is_primary = true;
    ASSERT_TRUE(schema_.AddField(pk).ok());
    FieldSchema price;
    price.name = "price";
    price.type = DataType::kDouble;
    ASSERT_TRUE(schema_.AddField(price).ok());
    FieldSchema count;
    count.name = "count";
    count.type = DataType::kInt64;
    ASSERT_TRUE(schema_.AddField(count).ok());
    FieldSchema label;
    label.name = "label";
    label.type = DataType::kString;
    ASSERT_TRUE(schema_.AddField(label).ok());

    // Five rows: price 10,20,30,40,50; count 0,1,2,3,4; label a,b,a,b,a.
    price_col_ = FieldColumn::MakeDouble(schema_.FieldByName("price")->id,
                                         {10, 20, 30, 40, 50});
    count_col_ = FieldColumn::MakeInt64(schema_.FieldByName("count")->id,
                                        {0, 1, 2, 3, 4});
    label_col_ = FieldColumn::MakeString(schema_.FieldByName("label")->id,
                                         {"a", "b", "a", "b", "a"});
    ctx_.num_rows = 5;
    ctx_.column = [this](FieldId id) -> const FieldColumn* {
      if (id == price_col_.field_id) return &price_col_;
      if (id == count_col_.field_id) return &count_col_;
      if (id == label_col_.field_id) return &label_col_;
      return nullptr;
    };
  }

  /// Evaluates `text` and returns the matching row set as a string "01011".
  std::string Eval(const std::string& text) {
    auto expr = FilterExpr::Parse(text, schema_);
    EXPECT_TRUE(expr.ok()) << text << ": " << expr.status().ToString();
    if (!expr.ok()) return "";
    ConcurrentBitset bits(5);
    Status st = expr.value()->Evaluate(ctx_, &bits);
    EXPECT_TRUE(st.ok()) << st.ToString();
    std::string out;
    for (size_t i = 0; i < 5; ++i) out += bits.Test(i) ? '1' : '0';
    return out;
  }

  CollectionSchema schema_;
  FieldColumn price_col_, count_col_, label_col_;
  FilterContext ctx_;
};

TEST_F(ExprTest, Comparisons) {
  EXPECT_EQ(Eval("price > 30"), "00011");
  EXPECT_EQ(Eval("price >= 30"), "00111");
  EXPECT_EQ(Eval("price < 30"), "11000");
  EXPECT_EQ(Eval("price <= 30"), "11100");
  EXPECT_EQ(Eval("price == 30"), "00100");
  EXPECT_EQ(Eval("price != 30"), "11011");
}

TEST_F(ExprTest, IntFieldAndNegativeNumbers) {
  EXPECT_EQ(Eval("count >= 3"), "00011");
  EXPECT_EQ(Eval("count > -1"), "11111");
}

TEST_F(ExprTest, LabelEquality) {
  EXPECT_EQ(Eval("label == 'a'"), "10101");
  EXPECT_EQ(Eval("label != 'a'"), "01010");
  EXPECT_EQ(Eval("label == \"b\""), "01010");
  EXPECT_EQ(Eval("label == 'zzz'"), "00000");
}

TEST_F(ExprTest, BooleanCombinators) {
  EXPECT_EQ(Eval("price > 10 && price < 50"), "01110");
  EXPECT_EQ(Eval("price < 20 || price > 40"), "10001");
  EXPECT_EQ(Eval("!(price == 30)"), "11011");
  EXPECT_EQ(Eval("label == 'a' && price >= 30"), "00101");
  // Precedence: && binds tighter than ||.
  EXPECT_EQ(Eval("price == 10 || price == 30 && label == 'a'"), "10100");
  // Parentheses override.
  EXPECT_EQ(Eval("(price == 10 || price == 30) && label == 'a'"), "10100");
  EXPECT_EQ(Eval("(price == 10 || price == 20) && label == 'b'"), "01000");
}

TEST_F(ExprTest, WhitespaceInsensitive) {
  EXPECT_EQ(Eval("  price>30&&label=='b'  "), "00010");
}

TEST_F(ExprTest, ParseErrors) {
  const char* bad[] = {
      "",                      // Empty.
      "price >",               // Missing literal.
      "price > 'text'",        // String on numeric field.
      "label > 'a'",           // Ordering on label.
      "label == 5",            // Number on string field.
      "unknown == 1",          // Unknown field.
      "price == 1 &&",         // Dangling operator.
      "(price == 1",           // Unbalanced paren.
      "price == 1 extra",      // Trailing tokens.
      "price ~ 3",             // Bad operator.
      "label == 'unterminated", // Unterminated string.
  };
  for (const char* text : bad) {
    EXPECT_FALSE(FilterExpr::Parse(text, schema_).ok()) << text;
  }
}

TEST_F(ExprTest, SelectivityEstimates) {
  // With a scalar index present, estimates should be near-exact.
  ScalarSortedIndex price_index;
  ASSERT_TRUE(price_index.Build(price_col_).ok());
  ctx_.scalar_index = [&](FieldId id) -> const ScalarSortedIndex* {
    return id == price_col_.field_id ? &price_index : nullptr;
  };
  auto expr = FilterExpr::Parse("price > 30", schema_);
  ASSERT_TRUE(expr.ok());
  EXPECT_NEAR(expr.value()->EstimateSelectivity(ctx_), 0.4, 1e-9);

  auto and_expr = FilterExpr::Parse("price > 30 && price > 30", schema_);
  ASSERT_TRUE(and_expr.ok());
  // Independence assumption: 0.4 * 0.4.
  EXPECT_NEAR(and_expr.value()->EstimateSelectivity(ctx_), 0.16, 1e-9);

  auto not_expr = FilterExpr::Parse("!(price > 30)", schema_);
  ASSERT_TRUE(not_expr.ok());
  EXPECT_NEAR(not_expr.value()->EstimateSelectivity(ctx_), 0.6, 1e-9);
}

TEST_F(ExprTest, EvaluateUsesIndexesWhenAvailable) {
  ScalarSortedIndex price_index;
  ASSERT_TRUE(price_index.Build(price_col_).ok());
  LabelIndex label_index;
  ASSERT_TRUE(label_index.Build(label_col_).ok());
  ctx_.scalar_index = [&](FieldId id) -> const ScalarSortedIndex* {
    return id == price_col_.field_id ? &price_index : nullptr;
  };
  ctx_.label_index = [&](FieldId id) -> const LabelIndex* {
    return id == label_col_.field_id ? &label_index : nullptr;
  };
  EXPECT_EQ(Eval("price < 30 && label == 'a'"), "10000");
  EXPECT_EQ(Eval("price != 20"), "10111");
  EXPECT_EQ(Eval("label != 'b'"), "10101");
}

TEST_F(ExprTest, NestedParensAndNotChains) {
  EXPECT_EQ(Eval("((price > 30))"), "00011");
  EXPECT_EQ(Eval("(((label == 'a') && (price >= 30)))"), "00101");
  EXPECT_EQ(Eval("!(!(price == 30))"), "00100");
  EXPECT_EQ(Eval("!!(price == 30)"), "00100");
  EXPECT_EQ(Eval("!(price < 20 || price > 40)"), "01110");
  EXPECT_EQ(Eval("!(label == 'a') || !(price > 10)"), "11010");
  // De Morgan sanity: !(A && B) == !A || !B.
  EXPECT_EQ(Eval("!(label == 'a' && price >= 30)"),
            Eval("!(label == 'a') || !(price >= 30)"));
}

TEST_F(ExprTest, MixedPrecedenceChains) {
  // a || b && c || d groups as a || (b && c) || d.
  EXPECT_EQ(Eval("price == 10 || count >= 2 && label == 'b' || price == 50"),
            "10011");
  // && chains left-to-right inside one or-term.
  EXPECT_EQ(Eval("price > 10 && price < 50 && label == 'a'"), "00100");
  // NOT binds tighter than &&.
  EXPECT_EQ(Eval("!(price == 10) && label == 'a'"), "00101");
  EXPECT_EQ(Eval("(price == 10 || count >= 2) && (label == 'b' || price == 50)"),
            "00011");
}

TEST_F(ExprTest, StringEscapes) {
  label_col_ = FieldColumn::MakeString(
      label_col_.field_id, {"it's", "a\"b", "back\\slash", "line\nbreak",
                            "tab\there"});
  EXPECT_EQ(Eval("label == 'it\\'s'"), "10000");
  EXPECT_EQ(Eval("label == \"it's\""), "10000");
  EXPECT_EQ(Eval("label == 'a\\\"b'"), "01000");
  EXPECT_EQ(Eval("label == \"a\\\"b\""), "01000");
  EXPECT_EQ(Eval("label == 'back\\\\slash'"), "00100");
  EXPECT_EQ(Eval("label == 'line\\nbreak'"), "00010");
  EXPECT_EQ(Eval("label == 'tab\\there'"), "00001");
  EXPECT_EQ(Eval("label != 'it\\'s'"), "01111");
}

TEST_F(ExprTest, EscapeErrors) {
  EXPECT_FALSE(FilterExpr::Parse("label == 'dangling\\", schema_).ok());
  EXPECT_FALSE(FilterExpr::Parse("label == 'bad\\qescape'", schema_).ok());
}

TEST_F(ExprTest, MissingColumnReportsNotFound) {
  FilterContext empty;
  empty.num_rows = 5;
  auto expr = FilterExpr::Parse("price > 1", schema_);
  ASSERT_TRUE(expr.ok());
  ConcurrentBitset bits(5);
  EXPECT_TRUE(expr.value()->Evaluate(empty, &bits).IsNotFound());
}

}  // namespace
}  // namespace manu
