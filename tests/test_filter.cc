// Filtered-search subsystem tests (label "filter"): bitmap postings and the
// FilterIndex artifact, the cost-based filter planner, planner-vs-postscan
// membership equivalence on exact index configurations, filter-aware ANN
// traversal, and the MVCC-tombstone x attribute-filter composition.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <set>

#include "common/synthetic.h"
#include "core/expr.h"
#include "core/filter_planner.h"
#include "core/manu.h"
#include "core/segment.h"
#include "index/filter_index.h"
#include "index/index_factory.h"
#include "storage/binlog.h"

namespace manu {
namespace {

// ---------------------------------------------------------------------------
// BitmapPostings
// ---------------------------------------------------------------------------

TEST(BitmapPostings, SparseContainersRoundTrip) {
  const std::vector<int64_t> rows = {0, 5, 100, 65535, 65536, 200000};
  BitmapPostings postings = BitmapPostings::FromSortedRows(rows);
  EXPECT_EQ(postings.cardinality(), 6);
  for (int64_t row : rows) EXPECT_TRUE(postings.Contains(row)) << row;
  EXPECT_FALSE(postings.Contains(1));
  EXPECT_FALSE(postings.Contains(65537));
  EXPECT_FALSE(postings.Contains(300000));

  std::vector<int64_t> back;
  postings.AppendRows(&back);
  EXPECT_EQ(back, rows);

  ConcurrentBitset bits(200001);
  postings.AddTo(&bits);
  EXPECT_EQ(bits.Count(), 6u);
  EXPECT_TRUE(bits.Test(65536));

  BinaryWriter w;
  postings.Serialize(&w);
  BinaryReader r(w.data());
  auto round = BitmapPostings::Deserialize(&r);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round.value().cardinality(), 6);
  std::vector<int64_t> back2;
  round.value().AppendRows(&back2);
  EXPECT_EQ(back2, rows);
}

TEST(BitmapPostings, DenseContainerRoundTrip) {
  // > 4096 members in one 65536-row chunk forces the bitmap representation.
  std::vector<int64_t> rows;
  for (int64_t i = 0; i < 60000; i += 2) rows.push_back(i);
  BitmapPostings postings = BitmapPostings::FromSortedRows(rows);
  EXPECT_EQ(postings.cardinality(), static_cast<int64_t>(rows.size()));
  EXPECT_TRUE(postings.Contains(0));
  EXPECT_TRUE(postings.Contains(59998));
  EXPECT_FALSE(postings.Contains(1));
  EXPECT_FALSE(postings.Contains(59999));
  // Dense form is far below 8 bytes/row.
  EXPECT_LT(postings.MemoryBytes(), rows.size() * sizeof(int64_t) / 2);

  BinaryWriter w;
  postings.Serialize(&w);
  BinaryReader r(w.data());
  auto round = BitmapPostings::Deserialize(&r);
  ASSERT_TRUE(round.ok());
  std::vector<int64_t> back;
  round.value().AppendRows(&back);
  EXPECT_EQ(back, rows);
}

TEST(BitmapPostings, EmptyAndTruncatedStream) {
  BitmapPostings empty = BitmapPostings::FromSortedRows({});
  EXPECT_EQ(empty.cardinality(), 0);
  EXPECT_FALSE(empty.Contains(0));
  BinaryWriter w;
  empty.Serialize(&w);
  BinaryReader r(w.data());
  ASSERT_TRUE(BitmapPostings::Deserialize(&r).ok());

  // A truncated stream must fail cleanly, not crash or fabricate rows.
  BitmapPostings full = BitmapPostings::FromSortedRows({1, 2, 3, 70000});
  BinaryWriter w2;
  full.Serialize(&w2);
  const std::string bytes = w2.data();
  for (size_t cut : {bytes.size() / 4, bytes.size() / 2, bytes.size() - 1}) {
    BinaryReader tr(std::string_view(bytes.data(), cut));
    EXPECT_FALSE(BitmapPostings::Deserialize(&tr).ok()) << "cut=" << cut;
  }
}

// ---------------------------------------------------------------------------
// LabelBitmapIndex / FilterIndex artifact
// ---------------------------------------------------------------------------

TEST(LabelBitmapIndex, QueryPostingSizeSerde) {
  FieldColumn col =
      FieldColumn::MakeString(7, {"b", "a", "b", "c", "a", "b"});
  LabelBitmapIndex index;
  ASSERT_TRUE(index.Build(col).ok());
  EXPECT_EQ(index.NumRows(), 6);
  EXPECT_EQ(index.PostingSize("b"), 3);
  EXPECT_EQ(index.PostingSize("a"), 2);
  EXPECT_EQ(index.PostingSize("zzz"), 0);

  ConcurrentBitset bits(6);
  index.EqualsQuery("b", &bits);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_TRUE(bits.Test(2));
  EXPECT_TRUE(bits.Test(5));

  BinaryWriter w;
  index.Serialize(&w);
  BinaryReader r(w.data());
  auto round = LabelBitmapIndex::Deserialize(&r);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value().PostingSize("c"), 1);
  ConcurrentBitset bits2(6);
  round.value().EqualsQuery("a", &bits2);
  EXPECT_TRUE(bits2.Test(1));
  EXPECT_TRUE(bits2.Test(4));
  EXPECT_EQ(bits2.Count(), 2u);
}

EntityBatch SmallMixedBatch() {
  EntityBatch batch;
  for (int64_t i = 0; i < 8; ++i) {
    batch.primary_keys.push_back(i);
    batch.timestamps.push_back(1000 + i);
  }
  batch.columns.push_back(
      FieldColumn::MakeInt64(2, {3, 1, 4, 1, 5, 9, 2, 6}));
  batch.columns.push_back(FieldColumn::MakeDouble(
      3, {0.5, -1.0, 2.5, 2.5, 0.0, 7.0, -3.5, 1.0}));
  batch.columns.push_back(FieldColumn::MakeString(
      4, {"x", "y", "x", "z", "y", "x", "x", "w"}));
  batch.columns.push_back(FieldColumn::MakeFloatVector(
      5, 2, std::vector<float>(16, 0.0f)));
  return batch;
}

TEST(FilterIndex, BuildAccessorsSerde) {
  FilterIndex index;
  ASSERT_TRUE(index.Build(SmallMixedBatch()).ok());
  EXPECT_EQ(index.NumRows(), 8);
  ASSERT_NE(index.scalar(2), nullptr);
  ASSERT_NE(index.scalar(3), nullptr);
  ASSERT_NE(index.label(4), nullptr);
  EXPECT_EQ(index.scalar(5), nullptr);  // Vector column is not indexed.
  EXPECT_EQ(index.label(2), nullptr);   // Numeric column has no label index.
  EXPECT_GT(index.MemoryBytes(), 0u);

  EXPECT_EQ(index.scalar(2)->CountRange(1, 4), 5);
  EXPECT_EQ(index.label(4)->PostingSize("x"), 4);

  BinaryWriter w;
  index.Serialize(&w);
  BinaryReader r(w.data());
  auto round = FilterIndex::Deserialize(&r);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round.value().NumRows(), 8);
  ASSERT_NE(round.value().scalar(3), nullptr);
  EXPECT_EQ(round.value().scalar(3)->CountRange(0.0, 2.5), 5);
  ASSERT_NE(round.value().label(4), nullptr);
  EXPECT_EQ(round.value().label(4)->PostingSize("w"), 1);
}

// ---------------------------------------------------------------------------
// Planner unit behavior
// ---------------------------------------------------------------------------

TEST(FilterPlanner, StrategySelection) {
  FilterPlannerParams params;
  params.enable = true;
  // Very selective -> brute force over the matches, index or not.
  EXPECT_EQ(PlanFilter(params, 0.01, true, IndexType::kHnsw).strategy,
            FilterStrategy::kBruteMatches);
  // No usable index -> brute matches regardless of selectivity.
  EXPECT_EQ(PlanFilter(params, 0.7, false, IndexType::kHnsw).strategy,
            FilterStrategy::kBruteMatches);
  // Mid selectivity + traversal-capable engine -> filtered traversal.
  EXPECT_EQ(PlanFilter(params, 0.2, true, IndexType::kHnsw).strategy,
            FilterStrategy::kTraversal);
  EXPECT_EQ(PlanFilter(params, 0.2, true, IndexType::kIvfFlat).strategy,
            FilterStrategy::kTraversal);
  // Mid selectivity + engine without traversal support -> pre-filter mask.
  EXPECT_EQ(PlanFilter(params, 0.2, true, IndexType::kFlat).strategy,
            FilterStrategy::kPreFilter);
  // Broad filter -> pre-filter mask.
  EXPECT_EQ(PlanFilter(params, 0.9, true, IndexType::kHnsw).strategy,
            FilterStrategy::kPreFilter);
  // Force overrides everything.
  params.force = FilterStrategy::kPostScan;
  EXPECT_EQ(PlanFilter(params, 0.01, true, IndexType::kHnsw).strategy,
            FilterStrategy::kPostScan);
}

// ---------------------------------------------------------------------------
// Segment-level equivalence + MVCC interaction
// ---------------------------------------------------------------------------

class FilterSearchTest : public ::testing::Test {
 protected:
  static constexpr int64_t kRows = 2000;
  static constexpr int32_t kDim = 8;

  void SetUp() override {
    schema_ = CollectionSchema("items");
    FieldSchema pk;
    pk.name = "id";
    pk.type = DataType::kInt64;
    pk.is_primary = true;
    ASSERT_TRUE(schema_.AddField(pk).ok());
    FieldSchema vec;
    vec.name = "v";
    vec.type = DataType::kFloatVector;
    vec.dim = kDim;
    vec.metric = MetricType::kL2;
    ASSERT_TRUE(schema_.AddField(vec).ok());
    FieldSchema price;
    price.name = "price";
    price.type = DataType::kInt64;
    ASSERT_TRUE(schema_.AddField(price).ok());
    vec_id_ = schema_.FieldByName("v")->id;
    price_id_ = schema_.FieldByName("price")->id;

    SyntheticOptions opts;
    opts.num_rows = kRows;
    opts.dim = kDim;
    opts.num_clusters = 12;
    data_ = MakeClusteredDataset(opts);
  }

  /// pk == row index, timestamps 1000+row, price == row % 100 (so
  /// "price < P" has exact selectivity P%).
  EntityBatch Batch(int64_t begin, int64_t end) const {
    EntityBatch batch;
    std::vector<int64_t> prices;
    for (int64_t i = begin; i < end; ++i) {
      batch.primary_keys.push_back(i);
      batch.timestamps.push_back(static_cast<Timestamp>(1000 + i));
      prices.push_back(i % 100);
    }
    batch.columns.push_back(FieldColumn::MakeFloatVector(
        vec_id_, kDim,
        std::vector<float>(data_.Row(begin),
                           data_.Row(begin) + (end - begin) * kDim)));
    batch.columns.push_back(FieldColumn::MakeInt64(price_id_, prices));
    return batch;
  }

  std::unique_ptr<SealedSegment> MakeSealed(IndexType type) const {
    auto seg = std::make_unique<SealedSegment>(1, &schema_);
    EXPECT_TRUE(seg->SetRows(Batch(0, kRows)).ok());
    EXPECT_TRUE(seg->BuildScalarIndexes().ok());
    if (type == IndexType::kFlat || type == IndexType::kIvfFlat ||
        type == IndexType::kHnsw) {
      IndexParams params;
      params.type = type;
      params.dim = kDim;
      params.nlist = 16;
      params.hnsw_m = 16;
      params.hnsw_ef_construction = 120;
      auto index = BuildVectorIndex(params, data_.data.data(), kRows);
      EXPECT_TRUE(index.ok());
      EXPECT_TRUE(seg->SetIndex(vec_id_, std::move(index).value()).ok());
    }
    return seg;
  }

  /// Exact filtered top-k reference: raw scan over every visible,
  /// non-deleted row passing `pred`, by L2 distance.
  std::vector<int64_t> Reference(const float* query, size_t k,
                                 Timestamp read_ts,
                                 const std::set<int64_t>& deleted,
                                 Timestamp delete_ts,
                                 int64_t price_below) const {
    std::vector<std::pair<float, int64_t>> scored;
    for (int64_t row = 0; row < kRows; ++row) {
      if (static_cast<Timestamp>(1000 + row) > read_ts) continue;
      if (deleted.count(row) > 0 && delete_ts <= read_ts) continue;
      if (row % 100 >= price_below) continue;
      scored.push_back(
          {L2Distance(query, data_.Row(row), kDim), row});
    }
    std::sort(scored.begin(), scored.end());
    if (scored.size() > k) scored.resize(k);
    std::vector<int64_t> pks;
    for (const auto& [_, row] : scored) pks.push_back(row);
    std::sort(pks.begin(), pks.end());
    return pks;
  }

  static float L2Distance(const float* a, const float* b, int32_t dim) {
    float sum = 0;
    for (int32_t i = 0; i < dim; ++i) {
      const float d = a[i] - b[i];
      sum += d * d;
    }
    return sum;
  }

  static std::vector<int64_t> SortedPks(const std::vector<SegmentHit>& hits) {
    std::vector<int64_t> pks;
    for (const auto& h : hits) pks.push_back(h.pk);
    std::sort(pks.begin(), pks.end());
    return pks;
  }

  SegmentSearchRequest Req(int64_t query_row, size_t k,
                           const FilterExpr* filter) const {
    SegmentSearchRequest req;
    req.field = vec_id_;
    req.query = data_.Row(query_row);
    req.params.k = k;
    req.params.nprobe = 16;  // == nlist: IVF probes every list (exact).
    req.filter = filter;
    return req;
  }

  CollectionSchema schema_;
  FieldId vec_id_ = 0;
  FieldId price_id_ = 0;
  VectorDataset data_;
};

TEST_F(FilterSearchTest, StrategiesAgreeOnExactEngines) {
  // On exact configurations (flat; IVF probing every list; no index at
  // all), every planner strategy must return byte-identical membership to
  // the post-scan reference. Property-checked across random queries and a
  // selectivity sweep.
  const std::vector<IndexType> engines = {IndexType::kFlat,
                                          IndexType::kIvfFlat,
                                          IndexType::kImi /* = no index */};
  const std::vector<int64_t> prices = {1, 5, 25, 60, 90};  // Selectivity %.
  const std::vector<FilterStrategy> forced = {
      FilterStrategy::kNone,  // Planner's own choice.
      FilterStrategy::kPreFilter, FilterStrategy::kBruteMatches,
      FilterStrategy::kTraversal};
  std::mt19937 rng(7);
  std::uniform_int_distribution<int64_t> pick_row(0, kRows - 1);

  for (IndexType engine : engines) {
    auto seg = engine == IndexType::kImi ? [this] {
      auto s = std::make_unique<SealedSegment>(1, &schema_);
      EXPECT_TRUE(s->SetRows(Batch(0, kRows)).ok());
      EXPECT_TRUE(s->BuildScalarIndexes().ok());
      return s;
    }() : MakeSealed(engine);
    for (int64_t price : prices) {
      auto expr = FilterExpr::Parse(
          "price < " + std::to_string(price), schema_);
      ASSERT_TRUE(expr.ok());
      for (int trial = 0; trial < 3; ++trial) {
        const int64_t qrow = pick_row(rng);
        const std::vector<int64_t> want =
            Reference(data_.Row(qrow), 10, kMaxTimestamp, {}, 0, price);
        for (FilterStrategy force : forced) {
          SegmentSearchRequest req = Req(qrow, 10, expr.value().get());
          req.filter_params.enable = true;
          req.filter_params.force = force;
          FilterPlan plan;
          req.plan_out = &plan;
          auto hits = seg->Search(req);
          ASSERT_TRUE(hits.ok()) << hits.status().ToString();
          EXPECT_EQ(SortedPks(hits.value()), want)
              << "engine=" << static_cast<int>(engine) << " price=" << price
              << " force=" << FilterStrategyName(force) << " q=" << qrow;
          EXPECT_NEAR(plan.selectivity, price / 100.0, 0.01);
        }
        // Legacy heuristic (planner off) agrees too.
        SegmentSearchRequest req = Req(qrow, 10, expr.value().get());
        FilterPlan plan;
        req.plan_out = &plan;
        auto hits = seg->Search(req);
        ASSERT_TRUE(hits.ok());
        EXPECT_EQ(SortedPks(hits.value()), want);
        EXPECT_EQ(plan.strategy, FilterStrategy::kLegacy);
      }
    }
  }
}

TEST_F(FilterSearchTest, PostScanBaselineExactWhenOverfetchCoversSegment) {
  // With k/sel + 16 >= rows the forced post-scan baseline degenerates to a
  // full exact scan + intersect: byte-identical membership to the planner
  // strategies. (At tighter budgets it is approximate by design — that gap
  // is exactly what bench_filtered measures.)
  auto seg = MakeSealed(IndexType::kFlat);
  auto expr = FilterExpr::Parse("price < 1", schema_);  // sel = 1%.
  ASSERT_TRUE(expr.ok());
  const std::vector<int64_t> want =
      Reference(data_.Row(3), 25, kMaxTimestamp, {}, 0, 1);
  SegmentSearchRequest req = Req(3, 25, expr.value().get());
  req.filter_params.enable = true;
  req.filter_params.force = FilterStrategy::kPostScan;
  FilterPlan plan;
  req.plan_out = &plan;
  auto hits = seg->Search(req);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(SortedPks(hits.value()), want);
  EXPECT_EQ(plan.strategy, FilterStrategy::kPostScan);
}

TEST_F(FilterSearchTest, HnswFilteredTraversalSatisfiesFilterWithRecall) {
  auto seg = MakeSealed(IndexType::kHnsw);
  std::mt19937 rng(11);
  std::uniform_int_distribution<int64_t> pick_row(0, kRows - 1);
  for (int64_t price : {2, 10, 40}) {
    auto expr =
        FilterExpr::Parse("price < " + std::to_string(price), schema_);
    ASSERT_TRUE(expr.ok());
    double recall_sum = 0;
    int trials = 0;
    for (int trial = 0; trial < 5; ++trial) {
      const int64_t qrow = pick_row(rng);
      const std::vector<int64_t> want =
          Reference(data_.Row(qrow), 10, kMaxTimestamp, {}, 0, price);
      SegmentSearchRequest req = Req(qrow, 10, expr.value().get());
      req.filter_params.enable = true;
      req.filter_params.force = FilterStrategy::kTraversal;
      auto hits = seg->Search(req);
      ASSERT_TRUE(hits.ok());
      ASSERT_FALSE(hits.value().empty());
      int found = 0;
      for (const auto& h : hits.value()) {
        EXPECT_LT(h.pk % 100, price);  // Every hit satisfies the filter.
        if (std::binary_search(want.begin(), want.end(), h.pk)) ++found;
      }
      recall_sum += static_cast<double>(found) /
                    static_cast<double>(want.size());
      ++trials;
    }
    EXPECT_GE(recall_sum / trials, 0.85) << "price=" << price;
  }
}

TEST_F(FilterSearchTest, TombstoneAndFilterComposeOnSealed) {
  // Satellite (b): the tombstone mask and the filter's allowed mask are
  // ANDed once (SegmentCore::BuildScanMask); MVCC read points before/after
  // the delete LSN see different compositions.
  auto seg = MakeSealed(IndexType::kIvfFlat);
  const Timestamp delete_ts = 5000;
  std::set<int64_t> deleted;
  for (int64_t pk = 0; pk < kRows; pk += 7) {
    seg->Delete(pk, delete_ts);
    deleted.insert(pk);
  }
  auto expr = FilterExpr::Parse("price < 30", schema_);
  ASSERT_TRUE(expr.ok());

  for (FilterStrategy force :
       {FilterStrategy::kNone, FilterStrategy::kPreFilter,
        FilterStrategy::kBruteMatches, FilterStrategy::kTraversal}) {
    // Read before the delete LSN: tombstones invisible, filter applies.
    SegmentSearchRequest req = Req(42, 10, expr.value().get());
    req.read_ts = 4000;
    req.filter_params.enable = true;
    req.filter_params.force = force;
    auto hits = seg->Search(req);
    ASSERT_TRUE(hits.ok());
    EXPECT_EQ(SortedPks(hits.value()),
              Reference(data_.Row(42), 10, 4000, deleted, delete_ts, 30));

    // Read after: both masks compose.
    req.read_ts = 6000;
    hits = seg->Search(req);
    ASSERT_TRUE(hits.ok());
    EXPECT_EQ(SortedPks(hits.value()),
              Reference(data_.Row(42), 10, 6000, deleted, delete_ts, 30))
        << FilterStrategyName(force);
    for (const auto& h : hits.value()) {
      EXPECT_EQ(deleted.count(h.pk), 0u);
      EXPECT_LT(h.pk % 100, 30);
    }

    // Time travel: a read_ts that truncates the visible prefix (rows with
    // LSN <= 1999 only) still composes with the filter.
    req.read_ts = 1999;
    hits = seg->Search(req);
    ASSERT_TRUE(hits.ok());
    EXPECT_EQ(SortedPks(hits.value()),
              Reference(data_.Row(42), 10, 1999, deleted, delete_ts, 30));
    for (const auto& h : hits.value()) EXPECT_LT(h.pk, 1000);
  }
}

TEST_F(FilterSearchTest, TombstoneAndFilterComposeOnGrowing) {
  GrowingSegment seg(1, &schema_, /*slice_rows=*/256);
  for (int64_t begin = 0; begin < kRows; begin += 500) {
    ASSERT_TRUE(seg.Append(Batch(begin, begin + 500)).ok());
  }
  ASSERT_GT(seg.NumSlicesIndexed(), 0);
  const Timestamp delete_ts = 5000;
  std::set<int64_t> deleted;
  for (int64_t pk = 3; pk < kRows; pk += 11) {
    seg.Delete(pk, delete_ts);
    deleted.insert(pk);
  }
  auto expr = FilterExpr::Parse("price < 4", schema_);  // 4% selectivity.
  ASSERT_TRUE(expr.ok());

  // Under the brute threshold the growing planner scans just the matches —
  // exact, so membership equals the reference with both masks applied.
  SegmentSearchRequest req = Req(42, 10, expr.value().get());
  req.read_ts = 6000;
  req.filter_params.enable = true;
  FilterPlan plan;
  req.plan_out = &plan;
  auto hits = seg.Search(req);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(plan.strategy, FilterStrategy::kBruteMatches);
  EXPECT_EQ(SortedPks(hits.value()),
            Reference(data_.Row(42), 10, 6000, deleted, delete_ts, 4));

  // Broad filter through the slice-index path: every hit satisfies filter
  // and tombstones.
  auto broad = FilterExpr::Parse("price < 60", schema_);
  ASSERT_TRUE(broad.ok());
  SegmentSearchRequest req2 = Req(42, 10, broad.value().get());
  req2.read_ts = 6000;
  req2.filter_params.enable = true;
  FilterPlan plan2;
  req2.plan_out = &plan2;
  hits = seg.Search(req2);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(plan2.strategy, FilterStrategy::kPreFilter);
  for (const auto& h : hits.value()) {
    EXPECT_EQ(deleted.count(h.pk), 0u);
    EXPECT_LT(h.pk % 100, 60);
  }

  // Before the delete LSN the tombstones are invisible.
  req.read_ts = 4000;
  hits = seg.Search(req);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(SortedPks(hits.value()),
            Reference(data_.Row(42), 10, 4000, deleted, delete_ts, 4));
}

TEST_F(FilterSearchTest, PersistedArtifactMatchesLocalIndexes) {
  // A segment carrying the persisted FilterIndex artifact must answer
  // filtered searches identically to one with locally-built scalar indexes.
  auto local = MakeSealed(IndexType::kFlat);

  auto artifact = std::make_unique<SealedSegment>(2, &schema_);
  ASSERT_TRUE(artifact->SetRows(Batch(0, kRows)).ok());
  {
    IndexParams params;
    params.type = IndexType::kFlat;
    params.dim = kDim;
    auto index = BuildVectorIndex(params, data_.data.data(), kRows);
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE(artifact->SetIndex(vec_id_, std::move(index).value()).ok());
  }
  FilterIndex built;
  ASSERT_TRUE(built.Build(Batch(0, kRows)).ok());
  // Round-trip through bytes, as the query node does on load.
  BinaryWriter w;
  built.Serialize(&w);
  BinaryReader r(w.data());
  auto loaded = FilterIndex::Deserialize(&r);
  ASSERT_TRUE(loaded.ok());
  ASSERT_FALSE(artifact->HasFilterIndex());
  ASSERT_TRUE(artifact
                  ->SetFilterIndex(std::make_shared<const FilterIndex>(
                      std::move(loaded).value()))
                  .ok());
  EXPECT_TRUE(artifact->HasFilterIndex());

  auto expr = FilterExpr::Parse("price < 15", schema_);
  ASSERT_TRUE(expr.ok());
  for (FilterStrategy force :
       {FilterStrategy::kNone, FilterStrategy::kPreFilter,
        FilterStrategy::kBruteMatches}) {
    SegmentSearchRequest req = Req(7, 10, expr.value().get());
    req.filter_params.enable = true;
    req.filter_params.force = force;
    FilterPlan pa, pb;
    req.plan_out = &pa;
    auto via_local = local->Search(req);
    req.plan_out = &pb;
    auto via_artifact = artifact->Search(req);
    ASSERT_TRUE(via_local.ok());
    ASSERT_TRUE(via_artifact.ok());
    EXPECT_EQ(SortedPks(via_local.value()), SortedPks(via_artifact.value()));
    EXPECT_NEAR(pa.selectivity, pb.selectivity, 1e-9);
  }

  // Rejects artifacts that don't cover the segment.
  FilterIndex wrong;
  ASSERT_TRUE(wrong.Build(Batch(0, 10)).ok());
  EXPECT_FALSE(
      artifact->SetFilterIndex(std::make_shared<const FilterIndex>(wrong))
          .ok());
}

TEST_F(FilterSearchTest, ExprAgreesWithFilterIndexOnRandomData) {
  // Satellite (c): property check — evaluating an expression through the
  // FilterIndex artifact and through raw column scans yields identical
  // bitsets on random data.
  std::mt19937 rng(23);
  const int64_t n = 512;
  std::uniform_int_distribution<int64_t> count_dist(0, 50);
  std::uniform_real_distribution<double> price_dist(-10.0, 10.0);
  const std::vector<std::string> label_pool = {"a", "b", "c'd", "e\"f",
                                               "g\\h", "", "tail"};
  std::uniform_int_distribution<size_t> label_dist(0, label_pool.size() - 1);

  CollectionSchema schema("rand");
  FieldSchema pk;
  pk.name = "id";
  pk.type = DataType::kInt64;
  pk.is_primary = true;
  ASSERT_TRUE(schema.AddField(pk).ok());
  FieldSchema count;
  count.name = "count";
  count.type = DataType::kInt64;
  ASSERT_TRUE(schema.AddField(count).ok());
  FieldSchema price;
  price.name = "price";
  price.type = DataType::kDouble;
  ASSERT_TRUE(schema.AddField(price).ok());
  FieldSchema label;
  label.name = "label";
  label.type = DataType::kString;
  ASSERT_TRUE(schema.AddField(label).ok());

  std::vector<int64_t> counts;
  std::vector<double> prices;
  std::vector<std::string> labels;
  EntityBatch batch;
  for (int64_t i = 0; i < n; ++i) {
    batch.primary_keys.push_back(i);
    batch.timestamps.push_back(1000 + i);
    counts.push_back(count_dist(rng));
    // Sprinkle NaNs: the index path and the raw path must agree on them.
    prices.push_back(i % 31 == 0 ? std::nan("") : price_dist(rng));
    labels.push_back(label_pool[label_dist(rng)]);
  }
  const FieldId count_id = schema.FieldByName("count")->id;
  const FieldId price_id = schema.FieldByName("price")->id;
  const FieldId label_id = schema.FieldByName("label")->id;
  batch.columns.push_back(FieldColumn::MakeInt64(count_id, counts));
  batch.columns.push_back(FieldColumn::MakeDouble(price_id, prices));
  batch.columns.push_back(FieldColumn::MakeString(label_id, labels));

  FilterIndex index;
  ASSERT_TRUE(index.Build(batch).ok());

  FilterContext raw;
  raw.num_rows = n;
  raw.column = [&](FieldId id) -> const FieldColumn* {
    return batch.ColumnByFieldId(id);
  };
  FilterContext indexed = raw;
  indexed.scalar_index = [&](FieldId id) { return index.scalar(id); };
  indexed.label_bitmap = [&](FieldId id) { return index.label(id); };

  const std::vector<std::string> exprs = {
      "count < 10",
      "count >= 25 && count <= 40",
      "price > 0",
      "price != 3.5",
      "!(price <= 0)",
      "label == 'a'",
      "label != 'b'",
      "label == 'c\\'d'",
      "label == \"e\\\"f\"",
      "label == 'g\\\\h'",
      "(count < 10 || count > 45) && price > -5",
      "!(label == 'a' && price > 0) || count == 7",
      "count < 5 || count < 15 && label == 'tail'",
  };
  for (const std::string& text : exprs) {
    auto expr = FilterExpr::Parse(text, schema);
    ASSERT_TRUE(expr.ok()) << text << ": " << expr.status().ToString();
    ConcurrentBitset via_raw(n), via_index(n);
    ASSERT_TRUE(expr.value()->Evaluate(raw, &via_raw).ok()) << text;
    ASSERT_TRUE(expr.value()->Evaluate(indexed, &via_index).ok()) << text;
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(via_raw.Test(i), via_index.Test(i))
          << text << " row " << i << " count=" << counts[i]
          << " price=" << prices[i] << " label='" << labels[i] << "'";
    }
    // The selectivity estimate through the index is sane and within [0,1].
    const double est = expr.value()->EstimateSelectivity(indexed);
    EXPECT_GE(est, 0.0) << text;
    EXPECT_LE(est, 1.0) << text;
  }
}

// ---------------------------------------------------------------------------
// End-to-end: artifact build + registration through the cluster
// ---------------------------------------------------------------------------

TEST(FilterE2E, ArtifactBuiltRegisteredAndServed) {
  ManuConfig config;
  config.num_shards = 1;
  config.segment_seal_rows = 1500;
  config.segment_idle_seal_ms = 200;
  config.slice_rows = 512;
  config.time_tick_interval_ms = 10;
  config.filter_index_enable = true;
  config.filter_planner_enable = true;
  ManuInstance db(config);

  CollectionSchema schema("products");
  FieldSchema pk;
  pk.name = "id";
  pk.type = DataType::kInt64;
  pk.is_primary = true;
  ASSERT_TRUE(schema.AddField(pk).ok());
  FieldSchema vec;
  vec.name = "embedding";
  vec.type = DataType::kFloatVector;
  vec.dim = 16;
  vec.metric = MetricType::kL2;
  ASSERT_TRUE(schema.AddField(vec).ok());
  FieldSchema price;
  price.name = "price";
  price.type = DataType::kDouble;
  ASSERT_TRUE(schema.AddField(price).ok());
  auto meta = db.CreateCollection(schema);
  ASSERT_TRUE(meta.ok());

  IndexParams index;
  index.type = IndexType::kHnsw;
  ASSERT_TRUE(db.CreateIndex("products", "embedding", index).ok());

  SyntheticOptions opts;
  opts.num_rows = 3000;
  opts.dim = 16;
  VectorDataset data = MakeClusteredDataset(opts);
  EntityBatch batch;
  std::vector<double> prices;
  for (int64_t i = 0; i < opts.num_rows; ++i) {
    batch.primary_keys.push_back(i);
    prices.push_back(static_cast<double>(i % 100));
  }
  batch.columns.push_back(FieldColumn::MakeFloatVector(
      meta.value().schema.FieldByName("embedding")->id, 16, data.data));
  batch.columns.push_back(FieldColumn::MakeDouble(
      meta.value().schema.FieldByName("price")->id, std::move(prices)));
  ASSERT_TRUE(db.Insert("products", std::move(batch)).ok());
  ASSERT_TRUE(db.FlushAndWait("products").ok());
  db.index_coord()->WaitIdle();

  // Every sealed segment got a registered filter-index artifact.
  const auto segments = db.data_coord()->ListSegments(meta.value().id);
  ASSERT_FALSE(segments.empty());
  for (const SegmentMeta& seg : segments) {
    if (seg.state == SegmentState::kDropped) continue;
    EXPECT_FALSE(seg.filter_index_path.empty()) << seg.id;
    // The artifact object exists and round-trips.
    auto obj = db.object_store()->Get(seg.filter_index_path);
    ASSERT_TRUE(obj.ok()) << seg.filter_index_path;
    auto payload = binlog::Unframe(obj.value());
    ASSERT_TRUE(payload.ok());
    BinaryReader r(payload.value());
    auto artifact = FilterIndex::Deserialize(&r);
    ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
    EXPECT_EQ(artifact.value().NumRows(), seg.num_rows);
  }

  // Filtered searches through the full stack stay correct with the planner
  // armed.
  SearchRequest req;
  req.collection = "products";
  req.query.assign(data.Row(17), data.Row(17) + 16);
  req.k = 10;
  req.consistency = ConsistencyLevel::kStrong;
  req.filter = "price < 10";
  auto res = db.Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_FALSE(res.value().ids.empty());
  for (int64_t id : res.value().ids) EXPECT_LT(id % 100, 10);

  req.filter = "price >= 90";
  res = db.Search(req);
  ASSERT_TRUE(res.ok());
  for (int64_t id : res.value().ids) EXPECT_GE(id % 100, 90);
}

}  // namespace
}  // namespace manu
