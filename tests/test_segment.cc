#include <gtest/gtest.h>

#include "common/synthetic.h"
#include "core/segment.h"

namespace manu {
namespace {

class SegmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = CollectionSchema("items");
    FieldSchema pk;
    pk.name = "id";
    pk.type = DataType::kInt64;
    pk.is_primary = true;
    ASSERT_TRUE(schema_.AddField(pk).ok());
    FieldSchema vec;
    vec.name = "v";
    vec.type = DataType::kFloatVector;
    vec.dim = 8;
    ASSERT_TRUE(schema_.AddField(vec).ok());
    FieldSchema price;
    price.name = "price";
    price.type = DataType::kInt64;
    ASSERT_TRUE(schema_.AddField(price).ok());
    vec_id_ = schema_.FieldByName("v")->id;
    price_id_ = schema_.FieldByName("price")->id;

    SyntheticOptions opts;
    opts.num_rows = 1000;
    opts.dim = 8;
    data_ = MakeClusteredDataset(opts);
  }

  /// Batch of rows [begin, end) with pk == row index and timestamps
  /// 1000+row.
  EntityBatch Batch(int64_t begin, int64_t end) {
    EntityBatch batch;
    std::vector<int64_t> prices;
    for (int64_t i = begin; i < end; ++i) {
      batch.primary_keys.push_back(i);
      batch.timestamps.push_back(static_cast<Timestamp>(1000 + i));
      prices.push_back(i % 10);
    }
    batch.columns.push_back(FieldColumn::MakeFloatVector(
        vec_id_, 8,
        std::vector<float>(data_.Row(begin),
                           data_.Row(begin) + (end - begin) * 8)));
    batch.columns.push_back(FieldColumn::MakeInt64(price_id_, prices));
    return batch;
  }

  SegmentSearchRequest Req(int64_t query_row, size_t k = 10) {
    SegmentSearchRequest req;
    req.field = vec_id_;
    req.query = data_.Row(query_row);
    req.params.k = k;
    return req;
  }

  CollectionSchema schema_;
  FieldId vec_id_ = 0;
  FieldId price_id_ = 0;
  VectorDataset data_;
};

// ---------------------------------------------------------------------------
// SegmentCore basics
// ---------------------------------------------------------------------------

TEST_F(SegmentTest, AppendAndBruteSearch) {
  SegmentCore core(1, &schema_);
  ASSERT_TRUE(core.Append(Batch(0, 500)).ok());
  EXPECT_EQ(core.NumRows(), 500);
  EXPECT_EQ(core.MinTimestamp(), 1000u);
  EXPECT_EQ(core.MaxTimestamp(), 1499u);

  auto hits = core.Search(Req(42), nullptr);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits.value().empty());
  EXPECT_EQ(hits.value()[0].pk, 42);
  EXPECT_FLOAT_EQ(hits.value()[0].score, 0.0f);
}

TEST_F(SegmentTest, MvccPrefixVisibility) {
  SegmentCore core(1, &schema_);
  ASSERT_TRUE(core.Append(Batch(0, 100)).ok());
  ASSERT_TRUE(core.Append(Batch(100, 200)).ok());

  EXPECT_EQ(core.VisibleRows(1099), 100);  // ts 1000..1099 visible.
  EXPECT_EQ(core.VisibleRows(999), 0);
  EXPECT_EQ(core.VisibleRows(kMaxTimestamp), 200);

  SegmentSearchRequest req = Req(150, 200);
  req.read_ts = 1099;
  auto hits = core.Search(req, nullptr);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits.value().size(), 100u);
  for (const auto& h : hits.value()) EXPECT_LT(h.pk, 100);
}

TEST_F(SegmentTest, DeletesAreTimestamped) {
  SegmentCore core(1, &schema_);
  ASSERT_TRUE(core.Append(Batch(0, 100)).ok());
  core.Delete(42, 2000);

  // Read before the delete still sees pk 42.
  SegmentSearchRequest req = Req(42, 5);
  req.read_ts = 1500;
  auto hits = core.Search(req, nullptr);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits.value()[0].pk, 42);

  // Read after the delete does not.
  req.read_ts = 2500;
  hits = core.Search(req, nullptr);
  ASSERT_TRUE(hits.ok());
  for (const auto& h : hits.value()) EXPECT_NE(h.pk, 42);

  // Deleting an unknown pk is a no-op.
  core.Delete(123456, 2000);
  EXPECT_GT(core.DeletedRatio(), 0.0);
}

TEST_F(SegmentTest, ScoreByPkRespectsVisibilityAndDeletes) {
  SegmentCore core(1, &schema_);
  ASSERT_TRUE(core.Append(Batch(0, 100)).ok());
  auto score = core.ScoreByPk(42, vec_id_, data_.Row(42), kMaxTimestamp);
  ASSERT_TRUE(score.ok());
  EXPECT_FLOAT_EQ(score.value(), 0.0f);

  // Invisible before its insert ts.
  EXPECT_TRUE(core.ScoreByPk(42, vec_id_, data_.Row(42), 1041).status()
                  .IsNotFound());
  // Gone after delete.
  core.Delete(42, 5000);
  EXPECT_TRUE(core.ScoreByPk(42, vec_id_, data_.Row(42), 6000).status()
                  .IsNotFound());
  EXPECT_TRUE(core.ScoreByPk(42, vec_id_, data_.Row(42), 4000).ok());
}

// ---------------------------------------------------------------------------
// Attribute filtering strategies
// ---------------------------------------------------------------------------

TEST_F(SegmentTest, FilterPreAndScanStrategiesAgree) {
  SealedSegment segment(1, &schema_);
  ASSERT_TRUE(segment.SetRows(Batch(0, 1000)).ok());
  ASSERT_TRUE(segment.BuildScalarIndexes().ok());

  // Selective filter (10% of rows) -> scan strategy; broad filter (90%)
  // -> pre-filter mask. Both must return only matching rows.
  for (const char* text : {"price == 3", "price != 3"}) {
    auto expr = FilterExpr::Parse(text, schema_);
    ASSERT_TRUE(expr.ok());
    SegmentSearchRequest req = Req(7, 20);
    req.filter = expr.value().get();
    auto hits = segment.Search(req);
    ASSERT_TRUE(hits.ok()) << text;
    ASSERT_FALSE(hits.value().empty());
    for (const auto& h : hits.value()) {
      if (std::string(text) == "price == 3") {
        EXPECT_EQ(h.pk % 10, 3);
      } else {
        EXPECT_NE(h.pk % 10, 3);
      }
    }
  }
}

TEST_F(SegmentTest, FilterWithIndexMatchesBruteForce) {
  // With a full IVF index installed, filtered results must match the
  // brute-force filtered results for an exact index configuration.
  SealedSegment indexed(1, &schema_);
  ASSERT_TRUE(indexed.SetRows(Batch(0, 1000)).ok());
  ASSERT_TRUE(indexed.BuildScalarIndexes().ok());
  IndexParams params;
  params.type = IndexType::kIvfFlat;
  params.dim = 8;
  params.nlist = 8;
  auto index = BuildVectorIndex(params, data_.data.data(), 1000);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(indexed.SetIndex(vec_id_, std::move(index).value()).ok());

  SealedSegment brute(2, &schema_);
  ASSERT_TRUE(brute.SetRows(Batch(0, 1000)).ok());
  ASSERT_TRUE(brute.BuildScalarIndexes().ok());

  auto expr = FilterExpr::Parse("price >= 5", schema_);
  ASSERT_TRUE(expr.ok());
  SegmentSearchRequest req = Req(3, 10);
  req.params.nprobe = 8;  // All lists: exact.
  req.filter = expr.value().get();

  auto a = indexed.Search(req);
  auto b = brute.Search(req);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().size(), b.value().size());
  for (size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value()[i].pk, b.value()[i].pk);
  }
}

// ---------------------------------------------------------------------------
// GrowingSegment slices
// ---------------------------------------------------------------------------

TEST_F(SegmentTest, GrowingBuildsSliceIndexes) {
  GrowingSegment segment(1, &schema_, /*slice_rows=*/100);
  for (int64_t begin = 0; begin < 1000; begin += 50) {
    ASSERT_TRUE(segment.Append(Batch(begin, begin + 50)).ok());
  }
  EXPECT_EQ(segment.NumRows(), 1000);
  EXPECT_EQ(segment.NumSlicesIndexed(), 10);

  auto hits = segment.Search(Req(333));
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits.value().empty());
  EXPECT_EQ(hits.value()[0].pk, 333);
}

TEST_F(SegmentTest, GrowingTailIsBruteForced) {
  GrowingSegment segment(1, &schema_, /*slice_rows=*/400);
  ASSERT_TRUE(segment.Append(Batch(0, 500)).ok());  // 1 slice + 100 tail.
  EXPECT_EQ(segment.NumSlicesIndexed(), 1);
  // A tail row must still be findable (exactly, since the tail is brute).
  auto hits = segment.Search(Req(450, 1));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits.value()[0].pk, 450);
}

TEST_F(SegmentTest, GrowingRespectsDeletesAndVisibility) {
  GrowingSegment segment(1, &schema_, /*slice_rows=*/100);
  ASSERT_TRUE(segment.Append(Batch(0, 300)).ok());
  segment.Delete(42, 5000);
  SegmentSearchRequest req = Req(42, 5);
  req.read_ts = 6000;
  auto hits = segment.Search(req);
  ASSERT_TRUE(hits.ok());
  for (const auto& h : hits.value()) EXPECT_NE(h.pk, 42);

  // Visibility prefix inside a slice.
  req = Req(250, 300);
  req.read_ts = 1199;  // Rows 0..199 visible.
  hits = segment.Search(req);
  ASSERT_TRUE(hits.ok());
  for (const auto& h : hits.value()) EXPECT_LT(h.pk, 200);
}

// ---------------------------------------------------------------------------
// SealedSegment
// ---------------------------------------------------------------------------

TEST_F(SegmentTest, SealedRejectsDoublePopulationAndBadIndex) {
  SealedSegment segment(1, &schema_);
  ASSERT_TRUE(segment.SetRows(Batch(0, 100)).ok());
  EXPECT_FALSE(segment.SetRows(Batch(0, 100)).ok());

  IndexParams params;
  params.type = IndexType::kFlat;
  params.dim = 8;
  auto small = BuildVectorIndex(params, data_.data.data(), 50);
  ASSERT_TRUE(small.ok());
  EXPECT_FALSE(segment.SetIndex(vec_id_, std::move(small).value()).ok());
  EXPECT_FALSE(segment.HasIndex(vec_id_));
}

TEST_F(SegmentTest, SealedIndexSearchMatchesBrute) {
  SealedSegment segment(1, &schema_);
  ASSERT_TRUE(segment.SetRows(Batch(0, 1000)).ok());
  IndexParams params;
  params.type = IndexType::kHnsw;
  params.dim = 8;
  params.hnsw_m = 8;
  params.hnsw_ef_construction = 80;
  auto index = BuildVectorIndex(params, data_.data.data(), 1000);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(segment.SetIndex(vec_id_, std::move(index).value()).ok());
  EXPECT_TRUE(segment.HasIndex(vec_id_));

  auto hits = segment.Search(Req(77, 5));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits.value()[0].pk, 77);
  EXPECT_GT(segment.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace manu
