#include <gtest/gtest.h>

#include "common/synthetic.h"
#include "core/manu.h"

namespace manu {
namespace {

ManuConfig TestConfig() {
  ManuConfig config;
  config.num_shards = 2;
  config.segment_seal_rows = 2000;
  config.segment_seal_bytes = 64ull << 20;
  config.segment_idle_seal_ms = 200;
  config.slice_rows = 512;
  config.time_tick_interval_ms = 10;
  config.num_query_nodes = 2;
  return config;
}

CollectionSchema ProductSchema(int32_t dim) {
  CollectionSchema schema("products");
  FieldSchema pk;
  pk.name = "id";
  pk.type = DataType::kInt64;
  pk.is_primary = true;
  EXPECT_TRUE(schema.AddField(pk).ok());
  FieldSchema vec;
  vec.name = "embedding";
  vec.type = DataType::kFloatVector;
  vec.dim = dim;
  vec.metric = MetricType::kL2;
  EXPECT_TRUE(schema.AddField(vec).ok());
  FieldSchema price;
  price.name = "price";
  price.type = DataType::kDouble;
  EXPECT_TRUE(schema.AddField(price).ok());
  FieldSchema label;
  label.name = "label";
  label.type = DataType::kString;
  EXPECT_TRUE(schema.AddField(label).ok());
  return schema;
}

EntityBatch MakeBatch(const CollectionMeta& meta, const VectorDataset& data,
                      int64_t begin, int64_t end) {
  EntityBatch batch;
  const FieldSchema* vec = meta.schema.FieldByName("embedding");
  const FieldSchema* price = meta.schema.FieldByName("price");
  const FieldSchema* label = meta.schema.FieldByName("label");
  std::vector<float> flat(data.data.begin() + begin * data.dim,
                          data.data.begin() + end * data.dim);
  std::vector<double> prices;
  std::vector<std::string> labels;
  for (int64_t i = begin; i < end; ++i) {
    batch.primary_keys.push_back(i);
    prices.push_back(static_cast<double>(i % 100));
    labels.push_back(i % 2 == 0 ? "even" : "odd");
  }
  batch.columns.push_back(
      FieldColumn::MakeFloatVector(vec->id, data.dim, std::move(flat)));
  batch.columns.push_back(FieldColumn::MakeDouble(price->id, std::move(prices)));
  batch.columns.push_back(FieldColumn::MakeString(label->id, std::move(labels)));
  return batch;
}

TEST(EndToEnd, InsertSearchPipeline) {
  ManuInstance db(TestConfig());
  auto meta = db.CreateCollection(ProductSchema(32));
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();

  IndexParams index;
  index.type = IndexType::kIvfFlat;
  index.nlist = 32;
  ASSERT_TRUE(db.CreateIndex("products", "embedding", index).ok());

  SyntheticOptions opts;
  opts.num_rows = 5000;
  opts.dim = 32;
  opts.num_clusters = 16;
  VectorDataset data = MakeClusteredDataset(opts);

  auto ts = db.Insert("products", MakeBatch(meta.value(), data, 0, 5000));
  ASSERT_TRUE(ts.ok()) << ts.status().ToString();

  // Strong-consistency search sees everything inserted before it.
  SearchRequest req;
  req.collection = "products";
  req.query.assign(data.Row(17), data.Row(17) + 32);
  req.k = 10;
  req.consistency = ConsistencyLevel::kStrong;
  auto res = db.Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res.value().ids.size(), 10u);
  EXPECT_EQ(res.value().ids[0], 17);  // Exact self-match.
  EXPECT_FLOAT_EQ(res.value().scores[0], 0.0f);

  // Flush -> sealed -> indexed -> loaded; results still correct.
  ASSERT_TRUE(db.FlushAndWait("products").ok());
  res = db.Search(req);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res.value().ids.empty());
  EXPECT_EQ(res.value().ids[0], 17);

  // Attribute filtering.
  req.filter = "label == 'even' && price < 50";
  res = db.Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  for (int64_t id : res.value().ids) {
    EXPECT_EQ(id % 2, 0);
    EXPECT_LT(id % 100, 50);
  }

  // Deletion.
  req.filter.clear();
  ASSERT_TRUE(db.Delete("products", {17}).ok());
  auto del_ts = db.Delete("products", {18});
  ASSERT_TRUE(del_ts.ok());
  ASSERT_TRUE(db.WaitUntilVisible("products", del_ts.value()).ok());
  res = db.Search(req);
  ASSERT_TRUE(res.ok());
  for (int64_t id : res.value().ids) {
    EXPECT_NE(id, 17);
    EXPECT_NE(id, 18);
  }
}

TEST(EndToEnd, ScaleUpAndDown) {
  ManuConfig config = TestConfig();
  config.segment_seal_rows = 500;
  ManuInstance db(config);
  auto meta = db.CreateCollection(ProductSchema(16));
  ASSERT_TRUE(meta.ok());
  IndexParams index;
  index.type = IndexType::kHnsw;
  index.hnsw_m = 8;
  index.hnsw_ef_construction = 40;
  ASSERT_TRUE(db.CreateIndex("products", "embedding", index).ok());

  SyntheticOptions opts;
  opts.num_rows = 3000;
  opts.dim = 16;
  VectorDataset data = MakeClusteredDataset(opts);
  ASSERT_TRUE(db.Insert("products", MakeBatch(meta.value(), data, 0, 3000))
                  .ok());
  ASSERT_TRUE(db.FlushAndWait("products").ok());

  SearchRequest req;
  req.collection = "products";
  req.query.assign(data.Row(5), data.Row(5) + 16);
  req.k = 5;
  req.consistency = ConsistencyLevel::kStrong;

  ASSERT_TRUE(db.ScaleQueryNodes(4).ok());
  auto res = db.Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().ids[0], 5);

  ASSERT_TRUE(db.ScaleQueryNodes(1).ok());
  res = db.Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().ids[0], 5);
}

TEST(EndToEnd, TimeTravelRead) {
  ManuInstance db(TestConfig());
  auto meta = db.CreateCollection(ProductSchema(8));
  ASSERT_TRUE(meta.ok());

  SyntheticOptions opts;
  opts.num_rows = 200;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);

  auto ts1 = db.Insert("products", MakeBatch(meta.value(), data, 0, 100));
  ASSERT_TRUE(ts1.ok());
  ASSERT_TRUE(db.WaitUntilVisible("products", ts1.value()).ok());
  auto ts2 = db.Insert("products", MakeBatch(meta.value(), data, 100, 200));
  ASSERT_TRUE(ts2.ok());
  ASSERT_TRUE(db.WaitUntilVisible("products", ts2.value()).ok());

  // A travel query at ts1 must not see the second insert.
  SearchRequest req;
  req.collection = "products";
  req.query.assign(data.Row(150), data.Row(150) + 8);
  req.k = 200;
  req.travel_ts = ts1.value();
  auto res = db.Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().ids.size(), 100u);
  for (int64_t id : res.value().ids) EXPECT_LT(id, 100);

  // Now (strong) sees both.
  req.travel_ts = 0;
  req.consistency = ConsistencyLevel::kStrong;
  res = db.Search(req);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().ids.size(), 200u);
}

TEST(EndToEnd, MultiVectorSearch) {
  ManuConfig config = TestConfig();
  ManuInstance db(config);
  CollectionSchema schema("items");
  FieldSchema pk;
  pk.name = "id";
  pk.type = DataType::kInt64;
  pk.is_primary = true;
  ASSERT_TRUE(schema.AddField(pk).ok());
  FieldSchema image;
  image.name = "image";
  image.type = DataType::kFloatVector;
  image.dim = 8;
  ASSERT_TRUE(schema.AddField(image).ok());
  FieldSchema text;
  text.name = "text";
  text.type = DataType::kFloatVector;
  text.dim = 4;
  ASSERT_TRUE(schema.AddField(text).ok());
  auto meta = db.CreateCollection(std::move(schema));
  ASSERT_TRUE(meta.ok());

  SyntheticOptions iopts;
  iopts.num_rows = 500;
  iopts.dim = 8;
  VectorDataset img = MakeClusteredDataset(iopts);
  SyntheticOptions topts;
  topts.num_rows = 500;
  topts.dim = 4;
  topts.seed = 99;
  VectorDataset txt = MakeClusteredDataset(topts);

  EntityBatch batch;
  for (int64_t i = 0; i < 500; ++i) batch.primary_keys.push_back(i);
  batch.columns.push_back(FieldColumn::MakeFloatVector(
      meta.value().schema.FieldByName("image")->id, 8, img.data));
  batch.columns.push_back(FieldColumn::MakeFloatVector(
      meta.value().schema.FieldByName("text")->id, 4, txt.data));
  auto ts = db.Insert("items", std::move(batch));
  ASSERT_TRUE(ts.ok());

  SearchRequest req;
  req.collection = "items";
  SearchRequest::MultiTarget m1;
  m1.field = "image";
  m1.query.assign(img.Row(42), img.Row(42) + 8);
  m1.weight = 1.0f;
  SearchRequest::MultiTarget m2;
  m2.field = "text";
  m2.query.assign(txt.Row(42), txt.Row(42) + 4);
  m2.weight = 1.0f;
  req.multi = {m1, m2};
  req.k = 5;
  req.consistency = ConsistencyLevel::kStrong;
  auto res = db.Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_FALSE(res.value().ids.empty());
  // Entity 42 matches exactly on both vectors: combined score 0.
  EXPECT_EQ(res.value().ids[0], 42);
  EXPECT_FLOAT_EQ(res.value().scores[0], 0.0f);
}

}  // namespace
}  // namespace manu
