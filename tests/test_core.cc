#include <gtest/gtest.h>

#include <set>

#include "common/metrics.h"

#include "common/synthetic.h"
#include "core/autoscaler.h"
#include "core/hash_ring.h"
#include "core/manu.h"
#include "core/tuner.h"

namespace manu {
namespace {

// ---------------------------------------------------------------------------
// HashRing
// ---------------------------------------------------------------------------

TEST(HashRing, RoutesConsistently) {
  HashRing ring;
  ring.AddNode(1);
  ring.AddNode(2);
  ring.AddNode(3);
  EXPECT_EQ(ring.NumNodes(), 3u);
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(ring.Route(key), ring.Route(key));
  }
}

TEST(HashRing, RemovalOnlyMovesVictimsKeys) {
  HashRing ring;
  for (int64_t n = 1; n <= 4; ++n) ring.AddNode(n);
  std::map<uint64_t, int64_t> before;
  for (uint64_t key = 0; key < 1000; ++key) before[key] = ring.Route(key);
  ring.RemoveNode(3);
  for (uint64_t key = 0; key < 1000; ++key) {
    const int64_t now = ring.Route(key);
    EXPECT_NE(now, 3);
    if (before[key] != 3) {
      EXPECT_EQ(now, before[key]) << "key " << key << " moved needlessly";
    }
  }
}

TEST(HashRing, SpreadsLoadAcrossNodes) {
  HashRing ring(64);
  for (int64_t n = 0; n < 4; ++n) ring.AddNode(n);
  std::map<int64_t, int64_t> counts;
  for (uint64_t key = 0; key < 10000; ++key) ++counts[ring.Route(key)];
  for (const auto& [node, count] : counts) {
    EXPECT_GT(count, 1000) << "node " << node << " starved";
  }
}

// ---------------------------------------------------------------------------
// Coordinators + pipeline (through ManuInstance with direct component
// access)
// ---------------------------------------------------------------------------

ManuConfig SmallConfig() {
  ManuConfig config;
  config.num_shards = 2;
  config.segment_seal_rows = 500;
  config.segment_idle_seal_ms = 200;
  config.slice_rows = 128;
  config.time_tick_interval_ms = 10;
  return config;
}

CollectionSchema VecSchema(const std::string& name, int32_t dim) {
  CollectionSchema schema(name);
  FieldSchema vec;
  vec.name = "v";
  vec.type = DataType::kFloatVector;
  vec.dim = dim;
  EXPECT_TRUE(schema.AddField(vec).ok());
  return schema;
}

EntityBatch VecBatch(const CollectionMeta& meta, const VectorDataset& data,
                     int64_t begin, int64_t end) {
  EntityBatch batch;
  for (int64_t i = begin; i < end; ++i) batch.primary_keys.push_back(i);
  batch.columns.push_back(FieldColumn::MakeFloatVector(
      meta.schema.FieldByName("v")->id, data.dim,
      std::vector<float>(data.Row(begin),
                         data.Row(begin) + (end - begin) * data.dim)));
  return batch;
}

TEST(RootCoord, DdlLifecycle) {
  ManuInstance db(SmallConfig());
  auto meta = db.CreateCollection(VecSchema("a", 4));
  ASSERT_TRUE(meta.ok());
  // Auto primary key added.
  EXPECT_NE(meta.value().schema.PrimaryField(), nullptr);

  // Duplicate name rejected.
  EXPECT_TRUE(db.CreateCollection(VecSchema("a", 4)).status()
                  .IsAlreadyExists());

  // Index declaration validates field.
  IndexParams params;
  params.type = IndexType::kIvfFlat;
  EXPECT_TRUE(db.CreateIndex("a", "nope", params).IsNotFound());
  EXPECT_TRUE(db.CreateIndex("a", "_pk", params).IsInvalidArgument());
  EXPECT_TRUE(db.CreateIndex("a", "v", params).ok());
  // Version bumped.
  EXPECT_EQ(db.root_coord()->GetCollection("a").value().index_version, 1);

  ASSERT_TRUE(db.DropCollection("a").ok());
  EXPECT_TRUE(db.root_coord()->GetCollection("a").status().IsNotFound());
  EXPECT_TRUE(db.DropCollection("a").IsNotFound());
  // Name can be reused.
  EXPECT_TRUE(db.CreateCollection(VecSchema("a", 4)).ok());
}

TEST(DataCoord, SegmentAllocationRollsOver) {
  ManuInstance db(SmallConfig());
  auto meta = db.CreateCollection(VecSchema("a", 4));
  ASSERT_TRUE(meta.ok());
  auto* dc = db.data_coord();

  auto s1 = dc->AllocateSegment(meta.value().id, 0, 400, 1000);
  ASSERT_TRUE(s1.ok());
  auto s2 = dc->AllocateSegment(meta.value().id, 0, 50, 100);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1.value(), s2.value());  // Still under 500-row threshold.
  auto s3 = dc->AllocateSegment(meta.value().id, 0, 200, 100);
  ASSERT_TRUE(s3.ok());
  EXPECT_NE(s1.value(), s3.value());  // Rolled over.
  // Different shard gets a different segment.
  auto other = dc->AllocateSegment(meta.value().id, 1, 10, 10);
  ASSERT_TRUE(other.ok());
  EXPECT_NE(other.value(), s3.value());
  // Unknown collection rejected.
  EXPECT_FALSE(dc->AllocateSegment(999, 0, 1, 1).ok());
}

TEST(Pipeline, SealIndexLoadFlow) {
  ManuInstance db(SmallConfig());
  auto meta = db.CreateCollection(VecSchema("flow", 8));
  ASSERT_TRUE(meta.ok());
  IndexParams params;
  params.type = IndexType::kIvfFlat;
  params.nlist = 8;
  ASSERT_TRUE(db.CreateIndex("flow", "v", params).ok());

  SyntheticOptions opts;
  opts.num_rows = 2000;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);
  ASSERT_TRUE(db.Insert("flow", VecBatch(meta.value(), data, 0, 2000)).ok());
  ASSERT_TRUE(db.FlushAndWait("flow").ok());

  // Every registered segment must be indexed and carry binlog + index
  // paths, and the binlog objects must exist in the object store.
  auto segments = db.data_coord()->ListSegments(meta.value().id);
  ASSERT_FALSE(segments.empty());
  int64_t total_rows = 0;
  for (const auto& seg : segments) {
    EXPECT_EQ(seg.state, SegmentState::kIndexed);
    EXPECT_FALSE(seg.binlog_path.empty());
    ASSERT_EQ(seg.index_paths.size(), 1u);
    EXPECT_TRUE(db.object_store()->Exists(seg.index_paths.begin()->second));
    total_rows += seg.num_rows;
  }
  EXPECT_EQ(total_rows, 2000);

  // Segments are distributed across both default query nodes (2 shards x
  // several segments; at least both nodes got something).
  std::set<NodeId> owners;
  for (const auto& node : db.query_coord()->Nodes()) {
    if (!node->SealedSegments(meta.value().id).empty()) {
      owners.insert(node->id());
    }
  }
  EXPECT_GE(owners.size(), 1u);
}

TEST(Pipeline, IdleSealTriggersWithoutFlush) {
  ManuConfig config = SmallConfig();
  config.segment_seal_rows = 1000000;  // Only idle can seal.
  config.segment_idle_seal_ms = 100;
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("idle", 4));
  ASSERT_TRUE(meta.ok());
  SyntheticOptions opts;
  opts.num_rows = 100;
  opts.dim = 4;
  VectorDataset data = MakeClusteredDataset(opts);
  ASSERT_TRUE(db.Insert("idle", VecBatch(meta.value(), data, 0, 100)).ok());

  // Wait for the idle checker to roll + data nodes to seal.
  const int64_t deadline = NowMs() + 5000;
  while (db.data_coord()->ListSegments(meta.value().id).empty() &&
         NowMs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  auto segments = db.data_coord()->ListSegments(meta.value().id);
  ASSERT_FALSE(segments.empty());
  int64_t rows = 0;
  for (const auto& s : segments) rows += s.num_rows;
  EXPECT_EQ(rows, 100);
}

TEST(Logger, DeleteOfUnknownPkIsFiltered) {
  ManuInstance db(SmallConfig());
  auto meta = db.CreateCollection(VecSchema("del", 4));
  ASSERT_TRUE(meta.ok());
  SyntheticOptions opts;
  opts.num_rows = 10;
  opts.dim = 4;
  VectorDataset data = MakeClusteredDataset(opts);
  ASSERT_TRUE(db.Insert("del", VecBatch(meta.value(), data, 0, 10)).ok());

  // Deleting an unknown pk publishes nothing (LSN 0 means all filtered).
  auto ts = db.Delete("del", {424242});
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts.value(), 0u);
  // Known pk gets a real LSN.
  ts = db.Delete("del", {3});
  ASSERT_TRUE(ts.ok());
  EXPECT_GT(ts.value(), 0u);
  // Double delete: already tombstoned in the LSM, filtered again.
  ts = db.Delete("del", {3});
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts.value(), 0u);
}

TEST(QueryCoord, KillNodeRecoversSealedSegments) {
  ManuConfig config = SmallConfig();
  config.num_query_nodes = 3;
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("ha", 8));
  ASSERT_TRUE(meta.ok());
  IndexParams params;
  params.type = IndexType::kIvfFlat;
  params.nlist = 8;
  ASSERT_TRUE(db.CreateIndex("ha", "v", params).ok());

  SyntheticOptions opts;
  opts.num_rows = 2000;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);
  ASSERT_TRUE(db.Insert("ha", VecBatch(meta.value(), data, 0, 2000)).ok());
  ASSERT_TRUE(db.FlushAndWait("ha").ok());

  SearchRequest req;
  req.collection = "ha";
  req.query.assign(data.Row(99), data.Row(99) + 8);
  req.k = 5;
  req.consistency = ConsistencyLevel::kStrong;
  auto before = db.Search(req);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before.value().ids[0], 99);

  // Crash a node that holds segments; results must survive.
  NodeId victim = kInvalidNodeId;
  for (const auto& node : db.query_coord()->Nodes()) {
    if (!node->SealedSegments(meta.value().id).empty()) {
      victim = node->id();
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNodeId);
  ASSERT_TRUE(db.KillQueryNode(victim).ok());
  EXPECT_EQ(db.NumQueryNodes(), 2u);

  auto after = db.Search(req);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_FALSE(after.value().ids.empty());
  EXPECT_EQ(after.value().ids[0], 99);
  EXPECT_EQ(after.value().ids.size(), before.value().ids.size());
}

TEST(QueryCoord, RebalanceEvensSegmentCounts) {
  ManuConfig config = SmallConfig();
  config.num_query_nodes = 1;
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("bal", 8));
  ASSERT_TRUE(meta.ok());
  SyntheticOptions opts;
  opts.num_rows = 4000;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);
  ASSERT_TRUE(db.Insert("bal", VecBatch(meta.value(), data, 0, 4000)).ok());
  ASSERT_TRUE(db.FlushAndWait("bal").ok());

  // All segments on the single node; scale to 3 and rebalance.
  ASSERT_TRUE(db.ScaleQueryNodes(3).ok());
  std::vector<size_t> counts;
  for (const auto& node : db.query_coord()->Nodes()) {
    counts.push_back(node->SealedSegments(meta.value().id).size());
  }
  ASSERT_EQ(counts.size(), 3u);
  const auto [min_it, max_it] =
      std::minmax_element(counts.begin(), counts.end());
  EXPECT_LE(*max_it - *min_it, 1u);
}

// ---------------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------------

TEST(Compaction, MergesSmallSegmentsAndPurgesDeletes) {
  ManuConfig config = SmallConfig();
  config.segment_seal_rows = 400;
  config.small_segment_ratio = 3.0;  // Everything counts as small.
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("cmp", 8));
  ASSERT_TRUE(meta.ok());
  IndexParams params;
  params.type = IndexType::kIvfFlat;
  params.nlist = 8;
  ASSERT_TRUE(db.CreateIndex("cmp", "v", params).ok());

  SyntheticOptions opts;
  opts.num_rows = 1600;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);
  ASSERT_TRUE(db.Insert("cmp", VecBatch(meta.value(), data, 0, 1600)).ok());
  ASSERT_TRUE(db.FlushAndWait("cmp").ok());
  const size_t before = db.data_coord()->ListSegments(meta.value().id).size();
  ASSERT_GE(before, 2u);

  // Delete some rows, then compact.
  auto del_ts = db.Delete("cmp", {10, 20, 30});
  ASSERT_TRUE(del_ts.ok());
  ASSERT_TRUE(db.WaitUntilVisible("cmp", del_ts.value()).ok());
  ASSERT_TRUE(db.Compact("cmp").ok());

  // Exactly one live segment remains, holding all rows minus the deletes,
  // physically purged.
  std::vector<SegmentMeta> live;
  for (const auto& seg : db.data_coord()->ListSegments(meta.value().id)) {
    if (seg.state != SegmentState::kDropped) live.push_back(seg);
  }
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].num_rows, 1600 - 3);

  // Search still correct: deleted rows gone, everything else findable.
  SearchRequest req;
  req.collection = "cmp";
  req.query.assign(data.Row(10), data.Row(10) + 8);
  req.k = 5;
  req.consistency = ConsistencyLevel::kStrong;
  auto res = db.Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  for (int64_t id : res.value().ids) EXPECT_NE(id, 10);

  req.query.assign(data.Row(777), data.Row(777) + 8);
  res = db.Search(req);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res.value().ids.empty());
  EXPECT_EQ(res.value().ids[0], 777);
}

TEST(Compaction, NoopWhenNothingQualifies) {
  ManuConfig config = SmallConfig();
  config.small_segment_ratio = 0.0;  // Nothing is "small".
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("noop", 4));
  ASSERT_TRUE(meta.ok());
  SyntheticOptions opts;
  opts.num_rows = 600;
  opts.dim = 4;
  VectorDataset data = MakeClusteredDataset(opts);
  ASSERT_TRUE(db.Insert("noop", VecBatch(meta.value(), data, 0, 600)).ok());
  ASSERT_TRUE(db.FlushAndWait("noop").ok());
  const size_t before = db.data_coord()->ListSegments(meta.value().id).size();
  ASSERT_TRUE(db.Compact("noop").ok());
  EXPECT_EQ(db.data_coord()->ListSegments(meta.value().id).size(), before);
}

// ---------------------------------------------------------------------------
// Time travel via checkpoints
// ---------------------------------------------------------------------------

TEST(TimeTravel, CheckpointRecordsSegmentMap) {
  ManuInstance db(SmallConfig());
  auto meta = db.CreateCollection(VecSchema("tt", 4));
  ASSERT_TRUE(meta.ok());
  SyntheticOptions opts;
  opts.num_rows = 1200;
  opts.dim = 4;
  VectorDataset data = MakeClusteredDataset(opts);
  ASSERT_TRUE(db.Insert("tt", VecBatch(meta.value(), data, 0, 1200)).ok());
  ASSERT_TRUE(db.FlushAndWait("tt").ok());
  ASSERT_TRUE(db.Checkpoint("tt").ok());

  auto cp = db.data_coord()->ReadCheckpoint(meta.value().id,
                                            db.tso()->Allocate());
  ASSERT_TRUE(cp.ok()) << cp.status().ToString();
  int64_t rows = 0;
  for (const auto& seg : cp.value()) rows += seg.num_rows;
  EXPECT_EQ(rows, 1200);

  // No checkpoint exists before creation time.
  EXPECT_TRUE(db.data_coord()
                  ->ReadCheckpoint(meta.value().id, ComposeTimestamp(1, 0))
                  .status()
                  .IsNotFound());
}

// ---------------------------------------------------------------------------
// Cluster introspection (the Attu "system view" data source)
// ---------------------------------------------------------------------------

TEST(DescribeCluster, ReportsFleetAndCollections) {
  ManuInstance db(SmallConfig());
  auto meta = db.CreateCollection(VecSchema("desc", 4));
  ASSERT_TRUE(meta.ok());
  SyntheticOptions opts;
  opts.num_rows = 600;
  opts.dim = 4;
  VectorDataset data = MakeClusteredDataset(opts);
  ASSERT_TRUE(db.Insert("desc", VecBatch(meta.value(), data, 0, 600)).ok());
  ASSERT_TRUE(db.FlushAndWait("desc").ok());

  const std::string view = db.DescribeCluster();
  EXPECT_NE(view.find("collection 'desc'"), std::string::npos) << view;
  EXPECT_NE(view.find("query nodes:"), std::string::npos);
  EXPECT_NE(view.find("rows(sealed=600"), std::string::npos) << view;
  EXPECT_NE(view.find("logger.rows_inserted"), std::string::npos);
}

// ---------------------------------------------------------------------------
// AutoScaler policy
// ---------------------------------------------------------------------------

TEST(AutoScalerPolicyTest, ScalesUpAndDownWithClamps) {
  ManuConfig config = SmallConfig();
  config.num_query_nodes = 2;
  ManuInstance db(config);
  // Need a collection so the scaler's node changes have channels to move.
  ASSERT_TRUE(db.CreateCollection(VecSchema("s", 4)).ok());

  AutoScalerPolicy policy;
  policy.min_nodes = 1;
  policy.max_nodes = 4;
  AutoScaler scaler(&db, policy);

  EXPECT_EQ(scaler.Evaluate(200.0), 4);  // 2 -> 4 (doubling).
  EXPECT_EQ(scaler.Evaluate(200.0), 4);  // Clamped at max.
  EXPECT_EQ(scaler.Evaluate(120.0), 4);  // In band: no change.
  EXPECT_EQ(scaler.Evaluate(50.0), 2);   // Halved.
  EXPECT_EQ(scaler.Evaluate(50.0), 1);
  EXPECT_EQ(scaler.Evaluate(50.0), 1);   // Clamped at min.
  EXPECT_EQ(db.NumQueryNodes(), 1u);
}

// ---------------------------------------------------------------------------
// Tuner
// ---------------------------------------------------------------------------

TEST(Tuner, FindsReasonableIvfConfig) {
  SyntheticOptions opts;
  opts.num_rows = 6000;
  opts.dim = 16;
  VectorDataset data = MakeClusteredDataset(opts);
  TunerOptions topts;
  topts.type = IndexType::kIvfFlat;
  topts.max_trials = 8;
  topts.min_budget_rows = 1000;
  topts.max_budget_rows = 6000;
  topts.eval_queries = 16;
  IndexAutoTuner tuner(topts);
  auto trials = tuner.Tune(data);
  ASSERT_TRUE(trials.ok()) << trials.status().ToString();
  ASSERT_FALSE(trials.value().empty());
  // Best trial should have decent recall (the utility gates on it).
  EXPECT_GE(trials.value().front().recall, 0.5);
  // Trials are sorted by utility.
  for (size_t i = 1; i < trials.value().size(); ++i) {
    EXPECT_GE(trials.value()[i - 1].utility, trials.value()[i].utility);
  }
}

TEST(Tuner, CustomUtilityIsRespected) {
  SyntheticOptions opts;
  opts.num_rows = 3000;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);
  TunerOptions topts;
  topts.type = IndexType::kIvfFlat;
  topts.max_trials = 6;
  topts.min_budget_rows = 1000;
  topts.max_budget_rows = 3000;
  topts.eval_queries = 8;
  // Utility = recall only.
  IndexAutoTuner tuner(topts, [](const TunerTrial& t) { return t.recall; });
  auto trials = tuner.Tune(data);
  ASSERT_TRUE(trials.ok());
  EXPECT_DOUBLE_EQ(trials.value().front().utility,
                   trials.value().front().recall);
}

}  // namespace
}  // namespace manu
