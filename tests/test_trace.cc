// Observability suite: trace span trees, tail-based slow-query retention,
// labeled metrics, rate gauges and the Prometheus/JSON exporters.

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/synthetic.h"
#include "common/trace.h"
#include "core/manu.h"

namespace manu {
namespace {

const SpanRecord* FindSpan(const std::vector<SpanRecord>& spans,
                           const std::string& name) {
  for (const auto& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

bool HasTag(const SpanRecord& rec, const std::string& key) {
  for (const auto& [k, v] : rec.tags) {
    if (k == key) return true;
  }
  return false;
}

std::string TagValue(const SpanRecord& rec, const std::string& key) {
  for (const auto& [k, v] : rec.tags) {
    if (k == key) return v;
  }
  return "";
}

/// Latest retained trace whose root span has the given name ("" if none).
std::shared_ptr<Trace> LastTraceNamed(const std::string& root_name) {
  auto traces = Tracer::Global().collector().Traces();
  for (auto it = traces.rbegin(); it != traces.rend(); ++it) {
    if ((*it)->root_name() == root_name) return *it;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Trace core
// ---------------------------------------------------------------------------

TEST(Trace, SpanTreeStructureAndRender) {
  Tracer::Global().ResetForTest();
  {
    Span root = Tracer::Global().StartTrace("op.root", /*force_sample=*/true);
    root.Tag("collection", "books");
    {
      Span child(root.context(), "op.child");
      child.Tag("rows", static_cast<int64_t>(42));
      child.Event("halfway");
      Span grandchild(child.context(), "op.grandchild");
    }
    Span sibling(root.context(), "op.sibling");
  }

  auto traces = Tracer::Global().collector().Traces();
  ASSERT_EQ(traces.size(), 1u);
  auto spans = traces[0]->Snapshot();
  ASSERT_EQ(spans.size(), 4u);

  const SpanRecord* root = FindSpan(spans, "op.root");
  const SpanRecord* child = FindSpan(spans, "op.child");
  const SpanRecord* grand = FindSpan(spans, "op.grandchild");
  const SpanRecord* sibling = FindSpan(spans, "op.sibling");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  ASSERT_NE(grand, nullptr);
  ASSERT_NE(sibling, nullptr);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(child->parent_id, root->span_id);
  EXPECT_EQ(grand->parent_id, child->span_id);
  EXPECT_EQ(sibling->parent_id, root->span_id);
  EXPECT_EQ(TagValue(*root, "collection"), "books");
  EXPECT_EQ(TagValue(*child, "rows"), "42");
  ASSERT_EQ(child->events.size(), 1u);
  EXPECT_EQ(child->events[0].second, "halfway");
  EXPECT_EQ(traces[0]->root_name(), "op.root");
  EXPECT_GT(traces[0]->root_duration_us(), 0);

  const std::string rendered = TraceCollector::Render(*traces[0]);
  EXPECT_NE(rendered.find("op.root"), std::string::npos);
  EXPECT_NE(rendered.find("op.grandchild"), std::string::npos);
  EXPECT_NE(rendered.find("collection=books"), std::string::npos);
  EXPECT_NE(rendered.find("halfway"), std::string::npos);
}

TEST(Trace, SamplingRetainsOneInN) {
  Tracer::Global().ResetForTest();
  Tracer::Global().Configure(/*sample_every=*/4, /*slow_us=*/0);
  for (int i = 0; i < 8; ++i) {
    Span root = Tracer::Global().StartTrace("op.sampled");
  }
  EXPECT_EQ(Tracer::Global().collector().Traces().size(), 2u);
  EXPECT_TRUE(Tracer::Global().collector().SlowTraces().empty());
  Tracer::Global().ResetForTest();
}

TEST(Trace, SlowQueryForceRetainedRegardlessOfSampling) {
  Tracer::Global().ResetForTest();
  // Sampling off entirely; only the slow-query log (>= 1ms) retains.
  Tracer::Global().Configure(/*sample_every=*/0, /*slow_us=*/1000);
  const int64_t slow_before =
      MetricsRegistry::Global().CounterValue("trace.slow_queries");
  {
    Span fast = Tracer::Global().StartTrace("op.fast");
  }
  {
    Span slow = Tracer::Global().StartTrace("op.slow");
    slow.Tag("k", static_cast<int64_t>(7));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(Tracer::Global().collector().Traces().empty());
  auto slow_traces = Tracer::Global().collector().SlowTraces();
  ASSERT_EQ(slow_traces.size(), 1u);
  EXPECT_EQ(slow_traces[0]->root_name(), "op.slow");
  EXPECT_GE(slow_traces[0]->root_duration_us(), 1000);
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("trace.slow_queries"),
            slow_before + 1);

  const std::string dump = Tracer::Global().collector().DumpSlow();
  EXPECT_NE(dump.find("op.slow"), std::string::npos);
  EXPECT_NE(dump.find("k=7"), std::string::npos);
  Tracer::Global().ResetForTest();
}

TEST(Trace, CollectorRingsAreBounded) {
  Tracer::Global().ResetForTest();
  Tracer::Global().collector().SetCapacity(/*traces=*/4, /*slow=*/2);
  uint64_t last_id = 0;
  for (int i = 0; i < 10; ++i) {
    Span root = Tracer::Global().StartTrace("op.ring", /*force_sample=*/true);
    last_id = root.context().trace->id();
  }
  auto traces = Tracer::Global().collector().Traces();
  EXPECT_EQ(traces.size(), 4u);
  // Eviction is oldest-first: the newest trace is still findable.
  EXPECT_NE(Tracer::Global().collector().Find(last_id), nullptr);
  Tracer::Global().ResetForTest();
}

TEST(Trace, InactiveContextSpansAreNoOps) {
  TraceContext inactive;
  EXPECT_FALSE(inactive.active());
  Span span(inactive, "op.ignored");
  EXPECT_FALSE(span.active());
  span.Tag("k", "v");
  span.Event("nothing");
  span.End();  // Must not crash; nothing recorded anywhere.
}

// ---------------------------------------------------------------------------
// End-to-end propagation
// ---------------------------------------------------------------------------

CollectionSchema TraceVecSchema(const std::string& name, int32_t dim) {
  CollectionSchema schema(name);
  FieldSchema vec;
  vec.name = "v";
  vec.type = DataType::kFloatVector;
  vec.dim = dim;
  EXPECT_TRUE(schema.AddField(vec).ok());
  return schema;
}

EntityBatch TraceVecBatch(const CollectionMeta& meta,
                          const VectorDataset& data, int64_t begin,
                          int64_t end) {
  EntityBatch batch;
  for (int64_t i = begin; i < end; ++i) batch.primary_keys.push_back(i);
  batch.columns.push_back(FieldColumn::MakeFloatVector(
      meta.schema.FieldByName("v")->id, data.dim,
      std::vector<float>(data.Row(begin),
                         data.Row(begin) + (end - begin) * data.dim)));
  return batch;
}

TEST(TraceE2E, SearchProducesFullSpanTree) {
  Tracer::Global().ResetForTest();
  ManuConfig config;
  config.trace_sample_every = 1;  // Retain every request.
  ManuInstance db(config);
  auto meta = db.CreateCollection(TraceVecSchema("tsearch", 8));
  ASSERT_TRUE(meta.ok());

  SyntheticOptions opts;
  opts.num_rows = 200;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);
  auto ts = db.Insert("tsearch", TraceVecBatch(meta.value(), data, 0, 200));
  ASSERT_TRUE(ts.ok());
  ASSERT_TRUE(db.WaitUntilVisible("tsearch", ts.value()).ok());

  SearchRequest req;
  req.collection = "tsearch";
  req.query.assign(data.Row(0), data.Row(0) + 8);
  req.k = 10;
  auto res = db.Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();

  auto trace = LastTraceNamed("proxy.search");
  ASSERT_NE(trace, nullptr);
  auto spans = trace->Snapshot();

  const SpanRecord* root = FindSpan(spans, "proxy.search");
  const SpanRecord* route = FindSpan(spans, "query_coord.route");
  const SpanRecord* node = FindSpan(spans, "query_node.search");
  const SpanRecord* scan = FindSpan(spans, "segment.scan");
  const SpanRecord* merge = FindSpan(spans, "proxy.merge");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(route, nullptr);
  ASSERT_NE(node, nullptr);
  ASSERT_NE(scan, nullptr) << "per-segment scan spans missing";
  ASSERT_NE(merge, nullptr);

  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(route->parent_id, root->span_id);
  EXPECT_EQ(node->parent_id, root->span_id);
  EXPECT_EQ(merge->parent_id, root->span_id);
  // Scans parent to *a* query_node.search span (several nodes may report).
  bool scan_parent_is_node_search = false;
  for (const auto& s : spans) {
    if (s.name == "query_node.search" && s.span_id == scan->parent_id) {
      scan_parent_is_node_search = true;
    }
  }
  EXPECT_TRUE(scan_parent_is_node_search);

  // Durations are measured, tags annotated.
  EXPECT_GE(root->duration_us, node->duration_us);
  EXPECT_TRUE(HasTag(*root, "collection"));
  EXPECT_TRUE(HasTag(*root, "coverage"));
  EXPECT_TRUE(HasTag(*node, "segments"));
  EXPECT_TRUE(HasTag(*scan, "segment"));
  Tracer::Global().ResetForTest();
}

TEST(TraceE2E, InsertTraceCoversWalPublish) {
  Tracer::Global().ResetForTest();
  ManuConfig config;
  config.trace_sample_every = 1;
  ManuInstance db(config);
  auto meta = db.CreateCollection(TraceVecSchema("tinsert", 8));
  ASSERT_TRUE(meta.ok());

  SyntheticOptions opts;
  opts.num_rows = 50;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);
  auto ts = db.Insert("tinsert", TraceVecBatch(meta.value(), data, 0, 50));
  ASSERT_TRUE(ts.ok());

  auto trace = LastTraceNamed("proxy.insert");
  ASSERT_NE(trace, nullptr);
  auto spans = trace->Snapshot();
  const SpanRecord* root = FindSpan(spans, "proxy.insert");
  const SpanRecord* append = FindSpan(spans, "logger.append");
  const SpanRecord* publish = FindSpan(spans, "wal.publish");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(append, nullptr);
  ASSERT_NE(publish, nullptr);
  EXPECT_EQ(append->parent_id, root->span_id);
  EXPECT_EQ(publish->parent_id, append->span_id);
  EXPECT_EQ(TagValue(*publish, "acked"), "true");
  EXPECT_TRUE(HasTag(*append, "segment"));
  EXPECT_TRUE(HasTag(*root, "rows"));
  Tracer::Global().ResetForTest();
}

// ---------------------------------------------------------------------------
// Metrics: labels, rates, exporters
// ---------------------------------------------------------------------------

TEST(Metrics, LabeledCountersAreDistinctSeries) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("obs.test_hits", {{"collection", "a"}})->Add(2);
  reg.GetCounter("obs.test_hits", {{"collection", "b"}})->Add(5);
  reg.GetCounter("obs.test_hits")->Add(1);

  EXPECT_EQ(reg.CounterValue("obs.test_hits", {{"collection", "a"}}), 2);
  EXPECT_EQ(reg.CounterValue("obs.test_hits", {{"collection", "b"}}), 5);
  EXPECT_EQ(reg.CounterValue("obs.test_hits"), 1);
}

TEST(Metrics, EncodeMetricKeyIsCanonical) {
  // Label order must not matter: keys are sorted before encoding.
  const std::string a =
      EncodeMetricKey("m.x", {{"b", "2"}, {"a", "1"}});
  const std::string b =
      EncodeMetricKey("m.x", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, "m.x{a=\"1\",b=\"2\"}");
  EXPECT_EQ(EncodeMetricKey("m.x", {}), "m.x");
}

TEST(Metrics, RateGaugeWindowedRate) {
  RateGauge rate;
  rate.Mark(10);
  rate.Mark(20);
  EXPECT_EQ(rate.Total(), 30);
  // All 30 marks land in the current 1s bucket; over a 10s window ~3/s.
  EXPECT_NEAR(rate.RatePerSec(10), 3.0, 0.01);
  rate.Reset();
  EXPECT_EQ(rate.Total(), 0);
  EXPECT_EQ(rate.RatePerSec(10), 0.0);
}

TEST(Metrics, PrometheusExposition) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("obs.prom_total", {{"role", "proxy"}})->Add(3);
  reg.GetHistogram("obs.prom_latency")->Observe(5.0);
  reg.GetGauge("obs.prom_depth")->Set(9);
  reg.GetRate("obs.prom_rate")->Mark(4);

  const std::string text = reg.ExportPrometheus();
  // Dotted names become manu_-prefixed underscore names; labels survive.
  EXPECT_NE(text.find("manu_obs_prom_total{role=\"proxy\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE manu_obs_prom_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("manu_obs_prom_depth 9"), std::string::npos);
  // Histograms export as summaries with quantile labels + _sum/_count.
  EXPECT_NE(text.find("manu_obs_prom_latency{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("manu_obs_prom_latency_count 1"), std::string::npos);
  EXPECT_NE(text.find("manu_obs_prom_rate"), std::string::npos);
}

TEST(Metrics, JsonExportRoundTrips) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("obs.json_total")->Add(7);
  reg.GetHistogram("obs.json_latency")->Observe(2.5);

  const std::string json = reg.ExportJson();
  EXPECT_NE(json.find("\"obs.json_total\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"obs.json_latency\""), std::string::npos);
  // Structurally sound: balanced braces, sections present.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);

  const std::string path = "/tmp/manu_test_metrics.json";
  ASSERT_TRUE(reg.WriteJsonFile(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(Metrics, StripedHistogramConcurrentObserve) {
  LatencyHistogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Observe(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto snap = hist.Snap();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.max, kThreads * kPerThread - 1.0);
  EXPECT_GT(snap.p95, snap.p50);
  EXPECT_GE(snap.p99, snap.p95);
}

TEST(Metrics, ClockRoles) {
  // NowMs/NowMicros are steady: never go backwards across a sleep.
  const int64_t us0 = NowMicros();
  const int64_t ms0 = NowMs();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GE(NowMicros() - us0, 2000);
  EXPECT_GE(NowMs(), ms0);
  // WallTimeMs is a real timestamp (after 2020-01-01 in ms-since-epoch),
  // unlike the steady clocks whose epoch is arbitrary.
  EXPECT_GT(WallTimeMs(), 1577836800000LL);
}

}  // namespace
}  // namespace manu
