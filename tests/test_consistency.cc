#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/metrics.h"
#include "common/synthetic.h"
#include "core/manu.h"

namespace manu {
namespace {

CollectionSchema VecSchema(const std::string& name, int32_t dim) {
  CollectionSchema schema(name);
  FieldSchema vec;
  vec.name = "v";
  vec.type = DataType::kFloatVector;
  vec.dim = dim;
  EXPECT_TRUE(schema.AddField(vec).ok());
  return schema;
}

EntityBatch VecBatch(const CollectionMeta& meta, const VectorDataset& data,
                     int64_t begin, int64_t end) {
  EntityBatch batch;
  for (int64_t i = begin; i < end; ++i) batch.primary_keys.push_back(i);
  batch.columns.push_back(FieldColumn::MakeFloatVector(
      meta.schema.FieldByName("v")->id, data.dim,
      std::vector<float>(data.Row(begin),
                         data.Row(begin) + (end - begin) * data.dim)));
  return batch;
}

/// With time-ticks effectively disabled, the consistency gate is exposed
/// directly: a node's service timestamp only advances on data entries, so
/// whether a query waits (and times out) depends purely on tau.
class ConsistencyGateTest : public ::testing::Test {
 protected:
  ConsistencyGateTest() {
    ManuConfig config;
    config.num_shards = 2;
    config.segment_seal_rows = 100000;
    config.segment_idle_seal_ms = 600000;
    config.time_tick_interval_ms = 60000;  // No ticks during the test.
    config.max_consistency_wait_ms = 250;  // Fast, deterministic timeouts.
    db_ = std::make_unique<ManuInstance>(config);
    auto meta = db_->CreateCollection(VecSchema("gate", 8));
    EXPECT_TRUE(meta.ok());
    meta_ = meta.value();

    SyntheticOptions opts;
    opts.num_rows = 100;
    opts.dim = 8;
    data_ = MakeClusteredDataset(opts);
    auto ts = db_->Insert("gate", VecBatch(meta_, data_, 0, 100));
    EXPECT_TRUE(ts.ok());
    // Let the nodes consume the inserts. WaitUntilVisible needs time-ticks
    // (disabled here by design), so poll visibility through eventual reads.
    const int64_t deadline = NowMs() + 5000;
    while (NowMs() < deadline) {
      SearchRequest req = Req(ConsistencyLevel::kEventually);
      req.k = 100;
      auto res = db_->Search(req);
      if (res.ok() && res.value().ids.size() == 100) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ADD_FAILURE() << "inserts did not become visible";
  }

  SearchRequest Req(ConsistencyLevel level, int64_t staleness_ms = -1) {
    SearchRequest req;
    req.collection = "gate";
    req.query.assign(data_.Row(0), data_.Row(0) + 8);
    req.k = 5;
    req.consistency = level;
    req.staleness_ms = staleness_ms;
    return req;
  }

  std::unique_ptr<ManuInstance> db_;
  CollectionMeta meta_;
  VectorDataset data_;
};

TEST_F(ConsistencyGateTest, StrongTimesOutWithoutTicks) {
  // Strong consistency needs Ls >= Lr, but nothing advances Ls after the
  // insert: the query must wait the full bound and fail.
  const int64_t t0 = NowMs();
  auto res = db_->Search(Req(ConsistencyLevel::kStrong));
  const int64_t elapsed = NowMs() - t0;
  ASSERT_FALSE(res.ok()) << "strong read succeeded without ticks after "
                         << elapsed << "ms";
  EXPECT_TRUE(res.status().IsTimeout()) << res.status().ToString();
  EXPECT_GE(elapsed, 240) << res.status().ToString();
}

TEST_F(ConsistencyGateTest, EventualNeverWaits) {
  const int64_t t0 = NowMs();
  auto res = db_->Search(Req(ConsistencyLevel::kEventually));
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().ids[0], 0);
  EXPECT_LT(NowMs() - t0, 200);
}

TEST_F(ConsistencyGateTest, BoundedRespectsTolerance) {
  // Tight tolerance: the last data LSN is already older than 1 ms by the
  // time the query timestamp is issued -> gate closed -> timeout.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto res = db_->Search(Req(ConsistencyLevel::kBounded, 1));
  EXPECT_TRUE(res.status().IsTimeout());

  // Loose tolerance: data is well within 60 s staleness -> no wait.
  res = db_->Search(Req(ConsistencyLevel::kBounded, 60000));
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().ids[0], 0);
}

TEST_F(ConsistencyGateTest, TimeTravelSkipsTheGate) {
  // A historical read is already consistent; it must not wait even at
  // strong level semantics.
  SearchRequest req = Req(ConsistencyLevel::kStrong);
  req.travel_ts = db_->tso()->Allocate();
  const int64_t t0 = NowMs();
  auto res = db_->Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_LT(NowMs() - t0, 200);
}

TEST(ConsistencyLive, TicksUnblockStrongReads) {
  // With a normal tick cadence, strong reads succeed and the measured gate
  // wait is about one tick interval.
  ManuConfig config;
  config.num_shards = 2;
  config.time_tick_interval_ms = 20;
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("live", 8));
  ASSERT_TRUE(meta.ok());
  SyntheticOptions opts;
  opts.num_rows = 50;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);
  ASSERT_TRUE(db.Insert("live", VecBatch(meta.value(), data, 0, 50)).ok());

  SearchRequest req;
  req.collection = "live";
  req.query.assign(data.Row(3), data.Row(3) + 8);
  req.k = 1;
  req.consistency = ConsistencyLevel::kStrong;
  for (int i = 0; i < 5; ++i) {
    auto res = db.Search(req);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(res.value().ids[0], 3);
  }
}

TEST(Recovery, GrowingDataSurvivesPrimaryCrash) {
  // Un-flushed (growing) data lives only in the WAL; when the primary
  // pumping node dies, the promoted node replays the channel from the
  // start and rebuilds the growing segments.
  ManuConfig config;
  config.num_shards = 2;
  config.segment_seal_rows = 100000;  // Keep everything growing.
  config.segment_idle_seal_ms = 600000;
  config.num_query_nodes = 2;
  config.time_tick_interval_ms = 10;
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("crash", 8));
  ASSERT_TRUE(meta.ok());
  SyntheticOptions opts;
  opts.num_rows = 500;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);
  ASSERT_TRUE(db.Insert("crash", VecBatch(meta.value(), data, 0, 500)).ok());

  SearchRequest req;
  req.collection = "crash";
  req.query.assign(data.Row(7), data.Row(7) + 8);
  req.k = 1;
  req.consistency = ConsistencyLevel::kStrong;
  auto before = db.Search(req);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before.value().ids[0], 7);

  // Kill each node in turn (one of them is the primary for row 7's shard).
  auto nodes = db.query_coord()->Nodes();
  ASSERT_EQ(nodes.size(), 2u);
  ASSERT_TRUE(db.KillQueryNode(nodes[0]->id()).ok());

  auto after = db.Search(req);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_FALSE(after.value().ids.empty());
  EXPECT_EQ(after.value().ids[0], 7);
}

TEST(Replay, LateSubscriberSeesFullHistory) {
  // A query node added long after ingest replays the WAL and serves the
  // same data (the "log as data" property).
  ManuConfig config;
  config.num_shards = 2;
  config.segment_seal_rows = 100000;
  config.segment_idle_seal_ms = 600000;
  config.num_query_nodes = 1;
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("replay", 8));
  ASSERT_TRUE(meta.ok());
  SyntheticOptions opts;
  opts.num_rows = 300;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);
  auto ts = db.Insert("replay", VecBatch(meta.value(), data, 0, 300));
  ASSERT_TRUE(ts.ok());
  auto del = db.Delete("replay", {11});
  ASSERT_TRUE(del.ok());

  // Scale to 2: the new node follows all channels; kill the old primary so
  // the new node must reconstruct everything from the log, including the
  // delete.
  ASSERT_TRUE(db.ScaleQueryNodes(2).ok());
  auto nodes = db.query_coord()->Nodes();
  ASSERT_TRUE(db.KillQueryNode(nodes[0]->id()).ok());

  SearchRequest req;
  req.collection = "replay";
  req.query.assign(data.Row(11), data.Row(11) + 8);
  req.k = 3;
  req.consistency = ConsistencyLevel::kStrong;
  auto res = db.Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_FALSE(res.value().ids.empty());
  for (int64_t id : res.value().ids) EXPECT_NE(id, 11);  // Delete replayed.
}

TEST(Replicas, HotReplicasServeThroughCrashWithoutReload) {
  // replica_factor 2: each sealed segment lives on two nodes; killing one
  // leaves every segment still loaded (no recovery reload needed).
  ManuConfig config;
  config.num_shards = 2;
  config.segment_seal_rows = 500;
  config.segment_idle_seal_ms = 200;
  config.num_query_nodes = 3;
  config.replica_factor = 2;
  config.time_tick_interval_ms = 10;
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("rep", 8));
  ASSERT_TRUE(meta.ok());
  IndexParams params;
  params.type = IndexType::kIvfFlat;
  params.nlist = 8;
  ASSERT_TRUE(db.CreateIndex("rep", "v", params).ok());

  SyntheticOptions opts;
  opts.num_rows = 2000;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);
  ASSERT_TRUE(db.Insert("rep", VecBatch(meta.value(), data, 0, 2000)).ok());
  ASSERT_TRUE(db.FlushAndWait("rep").ok());

  // Every sealed segment is loaded on exactly two nodes.
  std::map<SegmentId, int> copies;
  for (const auto& node : db.query_coord()->Nodes()) {
    for (SegmentId s : node->SealedSegments(meta.value().id)) ++copies[s];
  }
  ASSERT_FALSE(copies.empty());
  for (const auto& [seg, count] : copies) {
    EXPECT_EQ(count, 2) << "segment " << seg;
  }

  // Search returns each pk once despite the duplicates (proxy dedup).
  SearchRequest req;
  req.collection = "rep";
  req.query.assign(data.Row(42), data.Row(42) + 8);
  req.k = 10;
  req.consistency = ConsistencyLevel::kStrong;
  auto res = db.Search(req);
  ASSERT_TRUE(res.ok());
  std::set<int64_t> unique(res.value().ids.begin(), res.value().ids.end());
  EXPECT_EQ(unique.size(), res.value().ids.size());
  EXPECT_EQ(res.value().ids[0], 42);

  // Crash one node: everything is still served by the surviving replicas.
  auto nodes = db.query_coord()->Nodes();
  ASSERT_TRUE(db.KillQueryNode(nodes[0]->id()).ok());
  res = db.Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().ids[0], 42);
  EXPECT_EQ(res.value().ids.size(), 10u);
}

TEST(BatchSearchTest, MatchesIndividualSearches) {
  ManuConfig config;
  config.num_shards = 2;
  config.segment_seal_rows = 100000;
  config.time_tick_interval_ms = 10;
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("batch", 8));
  ASSERT_TRUE(meta.ok());
  SyntheticOptions opts;
  opts.num_rows = 500;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);
  ASSERT_TRUE(db.Insert("batch", VecBatch(meta.value(), data, 0, 500)).ok());

  std::vector<SearchRequest> reqs;
  for (int64_t q = 0; q < 8; ++q) {
    SearchRequest req;
    req.collection = "batch";
    req.query.assign(data.Row(q * 50), data.Row(q * 50) + 8);
    req.k = 5;
    req.consistency = ConsistencyLevel::kStrong;
    reqs.push_back(std::move(req));
  }
  // One bad request in the middle must not poison the batch.
  SearchRequest bad;
  bad.collection = "no_such_collection";
  bad.query = {1, 2};
  reqs.insert(reqs.begin() + 3, bad);

  auto batched = db.BatchSearch(reqs);
  ASSERT_EQ(batched.size(), reqs.size());
  EXPECT_FALSE(batched[3].ok());
  for (size_t i = 0; i < reqs.size(); ++i) {
    if (i == 3) continue;
    ASSERT_TRUE(batched[i].ok()) << batched[i].status().ToString();
    auto single = db.Search(reqs[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batched[i].value().ids, single.value().ids) << "query " << i;
  }
}

TEST(LogRetention, TruncationBoundsReplayButKeepsServing) {
  ManuConfig config;
  config.num_shards = 2;
  config.segment_seal_rows = 400;
  config.segment_idle_seal_ms = 200;
  config.num_query_nodes = 1;
  config.time_tick_interval_ms = 10;
  ManuInstance db(config);
  auto meta = db.CreateCollection(VecSchema("ret", 8));
  ASSERT_TRUE(meta.ok());
  IndexParams params;
  params.type = IndexType::kIvfFlat;
  params.nlist = 8;
  ASSERT_TRUE(db.CreateIndex("ret", "v", params).ok());

  SyntheticOptions opts;
  opts.num_rows = 1200;
  opts.dim = 8;
  VectorDataset data = MakeClusteredDataset(opts);
  // Let at least one time tick land in each shard channel first: the test
  // below asserts the truncation dropped something, and ticks below the
  // archived floor are the entries guaranteed to go (the insert entry
  // itself carries the batch's max LSN, which can sit above the floor).
  for (ShardId shard = 0; shard < 2; ++shard) {
    const std::string channel = ShardChannelName(meta.value().id, shard);
    while (db.mq()->EndOffset(channel) < 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  ASSERT_TRUE(db.Insert("ret", VecBatch(meta.value(), data, 0, 1200)).ok());
  ASSERT_TRUE(db.FlushAndWait("ret").ok());

  // Expire everything older than "now": sealed binlogs are unaffected.
  const Timestamp cutoff = db.tso()->Allocate();
  ASSERT_TRUE(db.TruncateLogBefore("ret", cutoff).ok());
  for (ShardId shard = 0; shard < 2; ++shard) {
    const std::string channel = ShardChannelName(meta.value().id, shard);
    EXPECT_GE(db.mq()->BeginOffset(channel), 1);
  }

  SearchRequest req;
  req.collection = "ret";
  req.query.assign(data.Row(7), data.Row(7) + 8);
  req.k = 5;
  req.consistency = ConsistencyLevel::kStrong;
  auto res = db.Search(req);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().ids[0], 7);

  // New writes after truncation still flow.
  SyntheticOptions more = opts;
  more.seed = 77;
  VectorDataset extra = MakeClusteredDataset(more);
  EntityBatch batch;
  for (int64_t i = 0; i < 100; ++i) batch.primary_keys.push_back(5000 + i);
  batch.columns.push_back(FieldColumn::MakeFloatVector(
      meta.value().schema.FieldByName("v")->id, 8,
      std::vector<float>(extra.Row(0), extra.Row(0) + 100 * 8)));
  auto ts = db.Insert("ret", std::move(batch));
  ASSERT_TRUE(ts.ok());
  ASSERT_TRUE(db.WaitUntilVisible("ret", ts.value()).ok());
  req.query.assign(extra.Row(0), extra.Row(0) + 8);
  res = db.Search(req);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().ids[0], 5000);
}

TEST(MessageQueueRetention, FirstOffsetAtOrAfter) {
  MessageQueue mq;
  for (Timestamp ts : {10u, 20u, 30u, 40u}) {
    LogEntry e;
    e.type = LogEntryType::kTimeTick;
    e.timestamp = ts;
    mq.Publish("ch", std::move(e));
  }
  EXPECT_EQ(mq.FirstOffsetAtOrAfter("ch", 5), 0);
  EXPECT_EQ(mq.FirstOffsetAtOrAfter("ch", 20), 1);
  EXPECT_EQ(mq.FirstOffsetAtOrAfter("ch", 21), 2);
  EXPECT_EQ(mq.FirstOffsetAtOrAfter("ch", 100), 4);
  EXPECT_EQ(mq.FirstOffsetAtOrAfter("missing", 1), 0);
}

}  // namespace
}  // namespace manu
