// Intra-query parallel segment search (Section 6.4 / Fig. 8): determinism
// vs. the serial scan, nested-dispatch deadlock freedom, the stop_-mid-wait
// consistency-gate fix and the delete-tombstone buffer compaction. These
// drive QueryNode directly over published WAL entries so both the serial
// and the parallel node see byte-identical segment state.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "core/query_node.h"
#include "storage/binlog.h"
#include "storage/meta_store.h"
#include "storage/object_store.h"
#include "wal/mq.h"
#include "wal/tso.h"

namespace manu {
namespace {

constexpr CollectionId kColl = 7;
constexpr int32_t kDim = 8;

CollectionSchema TwoVectorSchema() {
  CollectionSchema schema("par");
  FieldSchema a;
  a.name = "a";
  a.type = DataType::kFloatVector;
  a.dim = kDim;
  EXPECT_TRUE(schema.AddField(a).ok());
  FieldSchema b;
  b.name = "b";
  b.type = DataType::kFloatVector;
  b.dim = kDim;
  EXPECT_TRUE(schema.AddField(b).ok());
  return schema;
}

/// Deterministic pseudo-random but fully reproducible row vectors.
std::vector<float> RowVector(int64_t pk, int32_t salt) {
  std::vector<float> v(kDim);
  for (int32_t d = 0; d < kDim; ++d) {
    v[d] = std::sin(static_cast<float>(pk * 31 + d * 7 + salt));
  }
  return v;
}

/// Publishes `num_segments` growing segments of `rows_per_segment` rows
/// each onto shard 0's channel and returns the max LSN published.
Timestamp PublishSegments(MessageQueue* mq, Tso* tso,
                          const CollectionSchema& schema,
                          int64_t num_segments, int64_t rows_per_segment) {
  const FieldId fa = schema.FieldByName("a")->id;
  const FieldId fb = schema.FieldByName("b")->id;
  Timestamp last = 0;
  for (int64_t seg = 0; seg < num_segments; ++seg) {
    LogEntry entry;
    entry.type = LogEntryType::kInsert;
    entry.collection = kColl;
    entry.shard = 0;
    entry.segment = 100 + seg;
    std::vector<float> va, vb;
    for (int64_t r = 0; r < rows_per_segment; ++r) {
      const int64_t pk = seg * rows_per_segment + r;
      entry.batch.primary_keys.push_back(pk);
      entry.batch.timestamps.push_back(tso->Allocate());
      auto ra = RowVector(pk, 0);
      auto rb = RowVector(pk, 1000);
      va.insert(va.end(), ra.begin(), ra.end());
      vb.insert(vb.end(), rb.begin(), rb.end());
    }
    entry.batch.columns.push_back(
        FieldColumn::MakeFloatVector(fa, kDim, std::move(va)));
    entry.batch.columns.push_back(
        FieldColumn::MakeFloatVector(fb, kDim, std::move(vb)));
    entry.timestamp = entry.batch.timestamps.back();
    last = entry.timestamp;
    EXPECT_GE(mq->Publish(ShardChannelName(kColl, 0), std::move(entry)), 0);
  }
  return last;
}

/// Builds a batch of `pks` rows with fresh TSO timestamps (the same layout
/// PublishSegments uses), for tests that need the raw rows again to write a
/// binlog for LoadSealedSegment.
EntityBatch MakeBatch(const CollectionSchema& schema, Tso* tso,
                      const std::vector<int64_t>& pks) {
  const FieldId fa = schema.FieldByName("a")->id;
  const FieldId fb = schema.FieldByName("b")->id;
  EntityBatch batch;
  std::vector<float> va, vb;
  for (int64_t pk : pks) {
    batch.primary_keys.push_back(pk);
    batch.timestamps.push_back(tso->Allocate());
    auto ra = RowVector(pk, 0);
    auto rb = RowVector(pk, 1000);
    va.insert(va.end(), ra.begin(), ra.end());
    vb.insert(vb.end(), rb.begin(), rb.end());
  }
  batch.columns.push_back(
      FieldColumn::MakeFloatVector(fa, kDim, std::move(va)));
  batch.columns.push_back(
      FieldColumn::MakeFloatVector(fb, kDim, std::move(vb)));
  return batch;
}

Timestamp PublishInsert(MessageQueue* mq, SegmentId segment,
                        const EntityBatch& batch) {
  LogEntry entry;
  entry.type = LogEntryType::kInsert;
  entry.collection = kColl;
  entry.shard = 0;
  entry.segment = segment;
  entry.batch = batch;
  entry.timestamp = batch.timestamps.back();
  EXPECT_GE(mq->Publish(ShardChannelName(kColl, 0), std::move(entry)), 0);
  return batch.timestamps.back();
}

struct NodeFixture {
  explicit NodeFixture(const ManuConfig& config, NodeId id = 1)
      : ctx{config, &meta, &store, &mq, &tso, nullptr},
        schema(std::make_shared<CollectionSchema>(TwoVectorSchema())),
        node(id, ctx) {
    node.AddChannel(kColl, /*shard=*/0, schema, /*primary=*/true);
    node.Start();
  }
  ~NodeFixture() { node.Stop(); }

  MetaStore meta;
  MemoryObjectStore store;
  MessageQueue mq;
  Tso tso;
  CoreContext ctx;
  std::shared_ptr<CollectionSchema> schema;
  QueryNode node;
};

NodeSearchRequest SingleReq(const CollectionSchema& schema,
                            const std::vector<float>& query, size_t k) {
  NodeSearchRequest req;
  req.collection = kColl;
  req.targets.push_back({schema.FieldByName("a")->id, query.data(), 1.0f});
  req.params.k = k;
  req.staleness_ms = -1;  // Eventual: segment state is already settled.
  return req;
}

TEST(ParallelSearch, MatchesSerialTopKExactly) {
  ManuConfig serial_cfg;
  serial_cfg.parallel_search = false;
  ManuConfig parallel_cfg;
  parallel_cfg.parallel_search = true;
  parallel_cfg.query_threads = 4;

  NodeFixture serial(serial_cfg, 1);
  NodeFixture parallel(parallel_cfg, 2);

  const Timestamp last_serial =
      PublishSegments(&serial.mq, &serial.tso, *serial.schema, 12, 40);
  const Timestamp last_parallel =
      PublishSegments(&parallel.mq, &parallel.tso, *parallel.schema, 12, 40);
  ASSERT_TRUE(serial.node.WaitServiceTs(kColl, last_serial, 5000));
  ASSERT_TRUE(parallel.node.WaitServiceTs(kColl, last_parallel, 5000));

  for (int64_t probe = 0; probe < 8; ++probe) {
    const auto query = RowVector(probe * 53 % 480, 0);
    auto rs = serial.node.Search(SingleReq(*serial.schema, query, 10));
    auto rp = parallel.node.Search(SingleReq(*parallel.schema, query, 10));
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    ASSERT_TRUE(rp.ok()) << rp.status().ToString();
    ASSERT_EQ(rs.value().size(), rp.value().size());
    for (size_t i = 0; i < rs.value().size(); ++i) {
      EXPECT_EQ(rs.value()[i].pk, rp.value()[i].pk) << "probe " << probe;
      // Byte-identical scores: the parallel path runs the same kernel per
      // segment and the reduce is order-independent.
      EXPECT_EQ(rs.value()[i].score, rp.value()[i].score);
    }
  }
}

TEST(ParallelSearch, MultiVectorFusionMatchesSerial) {
  ManuConfig serial_cfg;
  serial_cfg.parallel_search = false;
  ManuConfig parallel_cfg;
  parallel_cfg.query_threads = 4;

  NodeFixture serial(serial_cfg, 1);
  NodeFixture parallel(parallel_cfg, 2);
  const Timestamp ls =
      PublishSegments(&serial.mq, &serial.tso, *serial.schema, 9, 30);
  const Timestamp lp =
      PublishSegments(&parallel.mq, &parallel.tso, *parallel.schema, 9, 30);
  ASSERT_TRUE(serial.node.WaitServiceTs(kColl, ls, 5000));
  ASSERT_TRUE(parallel.node.WaitServiceTs(kColl, lp, 5000));

  const auto qa = RowVector(17, 0);
  const auto qb = RowVector(17, 1000);
  auto make_req = [&](const CollectionSchema& schema) {
    NodeSearchRequest req;
    req.collection = kColl;
    req.targets.push_back({schema.FieldByName("a")->id, qa.data(), 0.7f});
    req.targets.push_back({schema.FieldByName("b")->id, qb.data(), 0.3f});
    req.params.k = 12;
    req.staleness_ms = -1;
    return req;
  };
  auto rs = serial.node.Search(make_req(*serial.schema));
  auto rp = parallel.node.Search(make_req(*parallel.schema));
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_TRUE(rp.ok()) << rp.status().ToString();
  ASSERT_EQ(rs.value().size(), rp.value().size());
  for (size_t i = 0; i < rs.value().size(); ++i) {
    EXPECT_EQ(rs.value()[i].pk, rp.value()[i].pk);
    EXPECT_EQ(rs.value()[i].score, rp.value()[i].score);
  }
}

TEST(ParallelSearch, NoDeadlockWithSingleExecutorThread) {
  // The nested dispatch (Search task -> per-segment fan-out on the same
  // pool) must complete when the pool has exactly one thread: the searching
  // task itself claims and runs every chunk.
  ManuConfig config;
  config.query_threads = 1;
  NodeFixture fx(config);
  const Timestamp last =
      PublishSegments(&fx.mq, &fx.tso, *fx.schema, 10, 20);
  ASSERT_TRUE(fx.node.WaitServiceTs(kColl, last, 5000));

  const auto query = RowVector(3, 0);
  auto res = fx.node.Search(SingleReq(*fx.schema, query, 5));
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().size(), 5u);
}

TEST(ParallelSearch, BatchUsesPoolAndStaysCorrect) {
  ManuConfig config;
  config.query_threads = 4;
  NodeFixture fx(config);
  const Timestamp last =
      PublishSegments(&fx.mq, &fx.tso, *fx.schema, 8, 25);
  ASSERT_TRUE(fx.node.WaitServiceTs(kColl, last, 5000));

  std::vector<std::vector<float>> queries;
  std::vector<NodeSearchRequest> reqs;
  for (int64_t i = 0; i < 16; ++i) {
    queries.push_back(RowVector(i * 11 % 200, 0));
  }
  for (const auto& q : queries) {
    reqs.push_back(SingleReq(*fx.schema, q, 3));
  }
  auto results = fx.node.SearchBatch(reqs);
  ASSERT_EQ(results.size(), reqs.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    // The best hit for a query equal to a stored row is that row.
    EXPECT_EQ(results[i].value()[0].pk,
              static_cast<int64_t>(i) * 11 % 200);
  }
}

TEST(ParallelSearch, SimulatedServiceTimeBillsActualChunkSizes) {
  // Two segments under an 8-segment grain run inline in ParallelFor; the
  // modeled service target must bill 2 segments (6 ms here), not a padded
  // full grain of 8 (24 ms). The bound is one-sided and generous: it only
  // fails if the model re-inflates small/non-divisible segment counts.
  ManuConfig config;
  config.query_threads = 4;
  config.search_parallel_grain = 8;
  config.sim_segment_search_us = 3000;
  NodeFixture fx(config);
  const Timestamp last = PublishSegments(&fx.mq, &fx.tso, *fx.schema, 2, 20);
  ASSERT_TRUE(fx.node.WaitServiceTs(kColl, last, 5000));

  const auto query = RowVector(3, 0);
  auto res = fx.node.Search(SingleReq(*fx.schema, query, 5));  // Warm-up.
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  const auto t0 = std::chrono::steady_clock::now();
  res = fx.node.Search(SingleReq(*fx.schema, query, 5));
  const auto elapsed_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_GE(elapsed_us, 2 * config.sim_segment_search_us);
  EXPECT_LT(elapsed_us, 8 * config.sim_segment_search_us - 4000);
}

TEST(ConsistencyGate, StopMidWaitReturnsUnavailable) {
  // No time-ticks flow, so a strong-consistency search parks on the gate;
  // stopping the node must surface Unavailable, not bless the stale
  // snapshot (the wait predicate is also satisfied by stop_).
  ManuConfig config;
  config.max_consistency_wait_ms = 10000;
  NodeFixture fx(config);
  const Timestamp last = PublishSegments(&fx.mq, &fx.tso, *fx.schema, 2, 10);
  ASSERT_TRUE(fx.node.WaitServiceTs(kColl, last, 5000));

  const auto query = RowVector(1, 0);
  NodeSearchRequest req = SingleReq(*fx.schema, query, 3);
  // Allocate the read point a full physical tick after the last consumed
  // entry: if both land in the same millisecond the gate is already
  // satisfied and the search never parks.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  req.read_ts = fx.tso.Allocate();
  req.staleness_ms = 0;  // Strong: needs a fresher tick than will ever come.

  Result<std::vector<SegmentHit>> res;  // Default = Internal error.
  std::thread searcher([&] { res = fx.node.Search(req); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  fx.node.Stop();
  searcher.join();
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsUnavailable()) << res.status().ToString();
}

Timestamp PublishDelete(MessageQueue* mq, Tso* tso,
                        std::vector<int64_t> pks) {
  LogEntry entry;
  entry.type = LogEntryType::kDelete;
  entry.collection = kColl;
  entry.shard = 0;
  entry.delete_pks = std::move(pks);
  entry.timestamp = tso->Allocate();
  const Timestamp ts = entry.timestamp;
  EXPECT_GE(mq->Publish(ShardChannelName(kColl, 0), std::move(entry)), 0);
  return ts;
}

Timestamp PublishTick(MessageQueue* mq, Tso* tso) {
  LogEntry entry;
  entry.type = LogEntryType::kTimeTick;
  entry.collection = kColl;
  entry.shard = 0;
  entry.timestamp = tso->Allocate();
  const Timestamp ts = entry.timestamp;
  EXPECT_GE(mq->Publish(ShardChannelName(kColl, 0), std::move(entry)), 0);
  return ts;
}

TEST(DeleteBuffer, DedupesPerPkAndCompactsBelowServiceTs) {
  ManuConfig config;
  config.delete_buffer_compact_min = 4;
  NodeFixture fx(config);

  // One growing segment with pks 0..9.
  const Timestamp seeded =
      PublishSegments(&fx.mq, &fx.tso, *fx.schema, 1, 10);
  ASSERT_TRUE(fx.node.WaitServiceTs(kColl, seeded, 5000));
  ASSERT_EQ(fx.node.NumGrowingRows(kColl), 10);

  auto publish_delete = [&](std::vector<int64_t> pks) {
    LogEntry entry;
    entry.type = LogEntryType::kDelete;
    entry.collection = kColl;
    entry.shard = 0;
    entry.delete_pks = std::move(pks);
    entry.timestamp = fx.tso.Allocate();
    const Timestamp ts = entry.timestamp;
    EXPECT_GE(fx.mq.Publish(ShardChannelName(kColl, 0), std::move(entry)),
              0);
    return ts;
  };
  auto publish_tick = [&] {
    LogEntry entry;
    entry.type = LogEntryType::kTimeTick;
    entry.collection = kColl;
    entry.shard = 0;
    entry.timestamp = fx.tso.Allocate();
    const Timestamp ts = entry.timestamp;
    EXPECT_GE(fx.mq.Publish(ShardChannelName(kColl, 0), std::move(entry)),
              0);
    return ts;
  };

  // Duplicate deletes of the same pk collapse to one buffered tombstone.
  publish_delete({1});
  publish_delete({1, 2});
  Timestamp ts = publish_delete({1});
  ASSERT_TRUE(fx.node.WaitServiceTs(kColl, ts, 5000));
  EXPECT_EQ(fx.node.DeletedPks(kColl).size(), 2u);  // pks {1, 2}.

  // Advance the consumed-tick floor past those deletes, then trip the
  // compaction threshold (4 buffered pks): everything below the floor is
  // compacted away, only the in-flight suffix survives.
  ts = publish_tick();
  ASSERT_TRUE(fx.node.WaitServiceTs(kColl, ts, 5000));
  publish_delete({3});
  ts = publish_delete({4, 5});  // Buffer reaches 5 >= 4: compaction runs.
  ASSERT_TRUE(fx.node.WaitServiceTs(kColl, ts, 5000));

  auto pks = fx.node.DeletedPks(kColl);
  std::sort(pks.begin(), pks.end());
  // {1, 2} were below the tick floor; {3} landed after it (kept), and the
  // {4, 5} entry that tripped the scan is above the floor as well.
  EXPECT_EQ(pks, (std::vector<int64_t>{3, 4, 5}));

  // The deletes themselves stay in force.
  const auto query = RowVector(1, 0);
  auto res = fx.node.Search(SingleReq(*fx.schema, query, 10));
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().size(), 5u);  // 10 rows minus 5 deleted pks.
  for (const auto& hit : res.value()) {
    EXPECT_NE(hit.pk, 1);
    EXPECT_NE(hit.pk, 2);
  }
}

TEST(DeleteBuffer, CompactedTombstonesSurviveSegmentHandoff) {
  // The resurrection regression: a segment handed to a node *after* the
  // node's delete buffer was compacted (kill / remove / rebalance paths —
  // the node's channel subscriptions are already past those deletes and
  // never re-seek, and the sealed binlog is inserts-only) must still hide
  // rows deleted below the compaction floor. LoadSealedSegment backfills
  // those tombstones from the retained WAL.
  ManuConfig config;
  config.delete_buffer_compact_min = 2;
  NodeFixture fx(config);

  std::vector<int64_t> pks;
  for (int64_t pk = 0; pk < 10; ++pk) pks.push_back(pk);
  const EntityBatch rows = MakeBatch(*fx.schema, &fx.tso, pks);
  PublishInsert(&fx.mq, /*segment=*/100, rows);

  PublishDelete(&fx.mq, &fx.tso, {1});
  PublishDelete(&fx.mq, &fx.tso, {2});  // Trips the first compaction scan.
  Timestamp ts = PublishTick(&fx.mq, &fx.tso);  // Floor passes both deletes.
  ASSERT_TRUE(fx.node.WaitServiceTs(kColl, ts, 5000));
  PublishDelete(&fx.mq, &fx.tso, {3});
  ts = PublishDelete(&fx.mq, &fx.tso, {4});  // Scan prunes {1, 2}.
  ASSERT_TRUE(fx.node.WaitServiceTs(kColl, ts, 5000));

  // The buffer really did lose the sub-floor tombstones.
  auto buffered = fx.node.DeletedPks(kColl);
  std::sort(buffered.begin(), buffered.end());
  ASSERT_EQ(buffered, (std::vector<int64_t>{3, 4}));

  // Hand the sealed twin to the node: inserts only, as a data node wrote it.
  const std::string path = "binlog/c7/seg100";
  ASSERT_TRUE(binlog::WriteSegment(&fx.store, path, rows).ok());
  SegmentMeta meta;
  meta.id = 100;
  meta.collection = kColl;
  meta.shard = 0;
  meta.state = SegmentState::kSealed;
  meta.num_rows = rows.NumRows();
  meta.binlog_path = path;
  ASSERT_TRUE(fx.node.LoadSealedSegment(meta, fx.schema).ok());

  const auto query = RowVector(1, 0);
  auto res = fx.node.Search(SingleReq(*fx.schema, query, 10));
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().size(), 6u);  // 10 rows minus 4 deleted pks.
  for (const auto& hit : res.value()) {
    EXPECT_TRUE(hit.pk != 1 && hit.pk != 2) << "resurrected pk " << hit.pk;
    EXPECT_TRUE(hit.pk != 3 && hit.pk != 4) << "buffered delete lost";
  }
}

TEST(DeleteBuffer, IntermediateTombstonesReplayedToLoadedSegments) {
  // delete(pk, t1) -> reinsert -> delete(pk, t2): a segment loaded after t2
  // must serve an MVCC read at read_ts in [t1, t2) from the *post-t1* state
  // (pk hidden until the reinsert, visible after it) — collapsing the
  // buffer to the max delete LSN per pk would leak the pre-t1 version.
  ManuConfig config;  // Default compact_min: no compaction interferes.
  NodeFixture fx(config);

  std::vector<int64_t> pks;
  for (int64_t pk = 0; pk < 5; ++pk) pks.push_back(pk);
  EntityBatch rows = MakeBatch(*fx.schema, &fx.tso, pks);
  PublishInsert(&fx.mq, /*segment=*/100, rows);

  const Timestamp t1 = PublishDelete(&fx.mq, &fx.tso, {2});
  const Timestamp between = fx.tso.Allocate();
  const EntityBatch reinsert = MakeBatch(*fx.schema, &fx.tso, {2});
  const Timestamp reinsert_ts = PublishInsert(&fx.mq, /*segment=*/100,
                                              reinsert);
  const Timestamp t2 = PublishDelete(&fx.mq, &fx.tso, {2});
  ASSERT_TRUE(fx.node.WaitServiceTs(kColl, t2, 5000));

  // Sealed twin holds both versions of pk 2 in LSN order.
  ASSERT_TRUE(rows.Append(reinsert).ok());
  const std::string path = "binlog/c7/seg100";
  ASSERT_TRUE(binlog::WriteSegment(&fx.store, path, rows).ok());
  SegmentMeta meta;
  meta.id = 100;
  meta.collection = kColl;
  meta.shard = 0;
  meta.state = SegmentState::kSealed;
  meta.num_rows = rows.NumRows();
  meta.binlog_path = path;
  ASSERT_TRUE(fx.node.LoadSealedSegment(meta, fx.schema).ok());

  const auto query = RowVector(2, 0);
  auto count_pk2 = [&](Timestamp read_ts) {
    NodeSearchRequest req = SingleReq(*fx.schema, query, 5);
    req.read_ts = read_ts;
    auto res = fx.node.Search(req);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    int64_t n = 0;
    for (const auto& hit : res.value()) n += hit.pk == 2 ? 1 : 0;
    return n;
  };
  EXPECT_EQ(count_pk2(between), 0);      // t1 applies: first version hidden.
  EXPECT_EQ(count_pk2(reinsert_ts), 1);  // Reinserted version visible.
  EXPECT_EQ(count_pk2(t2), 0);           // Second delete hides it again.
  EXPECT_EQ(count_pk2(kMaxTimestamp), 0);
}

}  // namespace
}  // namespace manu
