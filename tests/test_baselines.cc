#include <gtest/gtest.h>

#include "baselines/engine.h"
#include "baselines/milvus_like.h"
#include "common/metrics.h"
#include "common/synthetic.h"

namespace manu {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    opts_.num_rows = 3000;
    opts_.dim = 24;
    opts_.num_clusters = 64;
    opts_.cluster_spread = 0.2;
    data_ = MakeClusteredDataset(opts_);
    queries_ = MakeQueries(opts_, 30, 7);
    truth_ = BruteForceGroundTruth(data_, queries_, 10);
  }

  double RecallOf(SearchEngine& engine, double knob) {
    double sum = 0;
    for (int64_t q = 0; q < queries_.NumRows(); ++q) {
      auto hits = engine.Search(queries_.Row(q), 10, knob);
      if (hits.ok()) sum += RecallAtK(hits.value(), truth_[q], 10);
    }
    return sum / static_cast<double>(queries_.NumRows());
  }

  SyntheticOptions opts_;
  VectorDataset data_;
  VectorDataset queries_;
  std::vector<std::vector<Neighbor>> truth_;
};

TEST_F(EngineTest, AllEnginesReachHighRecallAtMaxKnob) {
  std::vector<std::unique_ptr<SearchEngine>> engines;
  engines.push_back(MakeManuEngine(IndexType::kIvfFlat));
  engines.push_back(MakeManuEngine(IndexType::kHnsw));
  engines.push_back(MakeEsLikeEngine(/*disk_read_micros=*/1));
  engines.push_back(MakeVearchLikeEngine());
  engines.push_back(MakeValdLikeEngine());
  engines.push_back(MakeVespaLikeEngine());
  for (auto& engine : engines) {
    ASSERT_TRUE(engine->Build(data_).ok()) << engine->name();
    const double recall = RecallOf(*engine, 1.0);
    EXPECT_GE(recall, 0.85) << engine->name();
  }
}

TEST_F(EngineTest, KnobTradesRecallMonotonically) {
  auto engine = MakeManuEngine(IndexType::kIvfFlat);
  ASSERT_TRUE(engine->Build(data_).ok());
  const double low = RecallOf(*engine, 0.02);
  const double high = RecallOf(*engine, 0.8);
  EXPECT_GE(high, low);
  EXPECT_GE(high, 0.9);
}

TEST_F(EngineTest, VearchAggregationPreservesResults) {
  // The three-layer pipeline must return the same hits as a direct engine
  // at an exhaustive knob (serialization hops must not lose or corrupt).
  auto direct = MakeManuEngine(IndexType::kIvfFlat, /*num_segments=*/4);
  auto vearch = MakeVearchLikeEngine(/*num_searchers=*/4);
  ASSERT_TRUE(direct->Build(data_).ok());
  ASSERT_TRUE(vearch->Build(data_).ok());
  for (int64_t q = 0; q < 10; ++q) {
    auto a = direct->Search(queries_.Row(q), 10, 1.0);
    auto b = vearch->Search(queries_.Row(q), 10, 1.0);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.value().size(), b.value().size());
    for (size_t i = 0; i < a.value().size(); ++i) {
      EXPECT_EQ(a.value()[i].id, b.value()[i].id) << "query " << q;
    }
  }
}

TEST(MilvusLikeTest, IngestsAndSearches) {
  IndexParams params;
  params.type = IndexType::kIvfFlat;
  params.dim = 16;
  params.nlist = 16;
  MilvusLike db(params, /*seal_rows=*/500);

  SyntheticOptions opts;
  opts.num_rows = 1200;
  opts.dim = 16;
  VectorDataset data = MakeClusteredDataset(opts);
  for (int64_t begin = 0; begin < 1200; begin += 100) {
    std::vector<int64_t> pks;
    for (int64_t i = begin; i < begin + 100; ++i) pks.push_back(i);
    db.Insert(std::move(pks),
              std::vector<float>(data.Row(begin), data.Row(begin) + 100 * 16));
  }
  // Wait until the writer drains.
  const int64_t deadline = NowMs() + 10000;
  while ((db.QueuedRows() > 0 || db.VisibleRows() < 1200) &&
         NowMs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(db.VisibleRows(), 1200);

  auto hits = db.Search(data.Row(55), 5, 16);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits.value().empty());
  EXPECT_EQ(hits.value()[0].id, 55);
  db.Stop();
}

TEST(MilvusLikeTest, SingleWriterCreatesIndexBacklog) {
  // The architectural flaw Figure 6 measures: while the one write thread
  // builds an index, sealed-but-unindexed rows pile up. Use a deliberately
  // expensive index configuration and a fast insert burst.
  IndexParams params;
  params.type = IndexType::kHnsw;
  params.dim = 32;
  params.hnsw_m = 16;
  params.hnsw_ef_construction = 200;  // Slow on purpose.
  MilvusLike db(params, /*seal_rows=*/1000);

  SyntheticOptions opts;
  opts.num_rows = 4000;
  opts.dim = 32;
  VectorDataset data = MakeClusteredDataset(opts);
  for (int64_t begin = 0; begin < 4000; begin += 200) {
    std::vector<int64_t> pks;
    for (int64_t i = begin; i < begin + 200; ++i) pks.push_back(i);
    db.Insert(std::move(pks),
              std::vector<float>(data.Row(begin), data.Row(begin) + 200 * 32));
  }
  // Mid-burst, backlog must be visible (queued rows or unindexed rows).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_GT(db.UnindexedRows() + db.QueuedRows(), 0);
  db.Stop();
}

}  // namespace
}  // namespace manu
