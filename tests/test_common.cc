#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/bitset.h"
#include "common/channel.h"
#include "common/failpoint.h"
#include "common/dataset.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/schema.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/synthetic.h"
#include "common/threadpool.h"
#include "common/topk.h"

namespace manu {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(Status, OkIsDefaultAndCheap) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status st = Status::NotFound("segment 42");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "segment 42");
  EXPECT_EQ(st.ToString(), "NotFound: segment 42");
}

TEST(Status, CopyAndMove) {
  Status st = Status::IOError("disk");
  Status copy = st;
  EXPECT_TRUE(copy.IsIOError());
  EXPECT_TRUE(st.IsIOError());
  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsIOError());
}

TEST(Result, HoldsValueOrError) {
  Result<int> ok = 7;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  Result<int> err = Status::Timeout("slow");
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsTimeout());
  EXPECT_EQ(std::move(err).ValueOr(-1), -1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  MANU_ASSIGN_OR_RETURN(int h, Half(x));
  MANU_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(Result, AssignOrReturnMacro) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Serde
// ---------------------------------------------------------------------------

TEST(Serde, RoundTripsAllTypes) {
  BinaryWriter w;
  w.PutU8(7);
  w.PutI32(-5);
  w.PutU64(1ull << 60);
  w.PutFloat(2.5f);
  w.PutDouble(-0.25);
  w.PutBool(true);
  w.PutString("hello");
  w.PutVector(std::vector<int64_t>{1, 2, 3});

  BinaryReader r(w.data());
  EXPECT_EQ(*r.GetU8(), 7);
  EXPECT_EQ(*r.GetI32(), -5);
  EXPECT_EQ(*r.GetU64(), 1ull << 60);
  EXPECT_EQ(*r.GetFloat(), 2.5f);
  EXPECT_EQ(*r.GetDouble(), -0.25);
  EXPECT_EQ(*r.GetBool(), true);
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(*r.GetVector<int64_t>(), (std::vector<int64_t>{1, 2, 3}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serde, TruncationIsCorruptionNotCrash) {
  BinaryWriter w;
  w.PutString("a long enough string");
  std::string data = w.Release();
  for (size_t cut : {size_t{0}, size_t{2}, data.size() - 1}) {
    BinaryReader r(std::string_view(data.data(), cut));
    EXPECT_TRUE(r.GetString().status().IsCorruption()) << "cut=" << cut;
  }
}

TEST(Serde, VectorLengthOverflowRejected) {
  BinaryWriter w;
  w.PutU64(1ull << 60);  // Claims a gigantic vector with no payload.
  BinaryReader r(w.data());
  EXPECT_TRUE(r.GetVector<int64_t>().status().IsCorruption());
}

TEST(Serde, Crc32cKnownVector) {
  // RFC 3720 test vector: 32 bytes of zeros.
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  // Changing one byte changes the checksum.
  zeros[5] = 1;
  EXPECT_NE(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

// ---------------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------------

CollectionSchema MakeSchema() {
  CollectionSchema schema("things");
  FieldSchema pk;
  pk.name = "id";
  pk.type = DataType::kInt64;
  pk.is_primary = true;
  EXPECT_TRUE(schema.AddField(pk).ok());
  FieldSchema vec;
  vec.name = "v";
  vec.type = DataType::kFloatVector;
  vec.dim = 4;
  EXPECT_TRUE(schema.AddField(vec).ok());
  return schema;
}

TEST(Schema, RejectsBadFields) {
  CollectionSchema schema("t");
  FieldSchema nameless;
  EXPECT_TRUE(schema.AddField(nameless).IsInvalidArgument());

  FieldSchema vec;
  vec.name = "v";
  vec.type = DataType::kFloatVector;
  vec.dim = 0;
  EXPECT_TRUE(schema.AddField(vec).IsInvalidArgument());

  FieldSchema scalar;
  scalar.name = "s";
  scalar.type = DataType::kInt64;
  scalar.dim = 3;
  EXPECT_TRUE(schema.AddField(scalar).IsInvalidArgument());

  FieldSchema float_pk;
  float_pk.name = "fpk";
  float_pk.type = DataType::kFloat;
  float_pk.is_primary = true;
  EXPECT_TRUE(schema.AddField(float_pk).IsInvalidArgument());
}

TEST(Schema, RejectsDuplicateNameAndSecondPrimary) {
  CollectionSchema schema = MakeSchema();
  FieldSchema dup;
  dup.name = "v";
  dup.type = DataType::kInt64;
  EXPECT_TRUE(schema.AddField(dup).IsAlreadyExists());

  FieldSchema pk2;
  pk2.name = "id2";
  pk2.type = DataType::kInt64;
  pk2.is_primary = true;
  EXPECT_TRUE(schema.AddField(pk2).IsInvalidArgument());
}

TEST(Schema, FinalizeAddsImplicitPrimaryKey) {
  CollectionSchema schema("auto_pk");
  FieldSchema vec;
  vec.name = "v";
  vec.type = DataType::kFloatVector;
  vec.dim = 2;
  ASSERT_TRUE(schema.AddField(vec).ok());
  ASSERT_TRUE(schema.Finalize().ok());
  ASSERT_NE(schema.PrimaryField(), nullptr);
  EXPECT_EQ(schema.PrimaryField()->name, "_pk");
}

TEST(Schema, SerializeRoundTrip) {
  CollectionSchema schema = MakeSchema();
  ASSERT_TRUE(schema.Finalize().ok());
  BinaryWriter w;
  schema.Serialize(&w);
  BinaryReader r(w.data());
  auto back = CollectionSchema::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), schema);
}

// ---------------------------------------------------------------------------
// Dataset
// ---------------------------------------------------------------------------

TEST(Dataset, AppendSliceRoundTrip) {
  FieldColumn col = FieldColumn::MakeFloatVector(5, 2, {1, 2, 3, 4});
  EXPECT_EQ(col.NumRows(), 2);
  FieldColumn more = FieldColumn::MakeFloatVector(5, 2, {5, 6});
  ASSERT_TRUE(col.Append(more).ok());
  EXPECT_EQ(col.NumRows(), 3);
  FieldColumn tail = col.Slice(1, 3);
  EXPECT_EQ(tail.NumRows(), 2);
  EXPECT_EQ(tail.f32, (std::vector<float>{3, 4, 5, 6}));
}

TEST(Dataset, AppendRejectsLayoutMismatch) {
  FieldColumn a = FieldColumn::MakeInt64(1, {1});
  FieldColumn b = FieldColumn::MakeInt64(2, {2});
  EXPECT_TRUE(a.Append(b).IsInvalidArgument());
  FieldColumn c = FieldColumn::MakeFloat(1, {1.0f});
  EXPECT_TRUE(a.Append(c).IsInvalidArgument());
}

TEST(Dataset, ValidateAgainstSchema) {
  CollectionSchema schema = MakeSchema();
  ASSERT_TRUE(schema.Finalize().ok());
  const FieldId vec_id = schema.FieldByName("v")->id;

  EntityBatch good;
  good.primary_keys = {1, 2};
  good.columns.push_back(
      FieldColumn::MakeFloatVector(vec_id, 4, std::vector<float>(8, 0.f)));
  EXPECT_TRUE(good.ValidateAgainst(schema).ok());

  EntityBatch missing;
  missing.primary_keys = {1};
  EXPECT_FALSE(missing.ValidateAgainst(schema).ok());

  EntityBatch bad_dim;
  bad_dim.primary_keys = {1};
  bad_dim.columns.push_back(
      FieldColumn::MakeFloatVector(vec_id, 3, std::vector<float>(3, 0.f)));
  EXPECT_FALSE(bad_dim.ValidateAgainst(schema).ok());

  EntityBatch bad_rows;
  bad_rows.primary_keys = {1, 2, 3};
  bad_rows.columns.push_back(
      FieldColumn::MakeFloatVector(vec_id, 4, std::vector<float>(8, 0.f)));
  EXPECT_FALSE(bad_rows.ValidateAgainst(schema).ok());

  EntityBatch unknown_field;
  unknown_field.primary_keys = {1, 2};
  unknown_field.columns.push_back(
      FieldColumn::MakeFloatVector(vec_id, 4, std::vector<float>(8, 0.f)));
  unknown_field.columns.push_back(FieldColumn::MakeInt64(999, {1, 2}));
  EXPECT_FALSE(unknown_field.ValidateAgainst(schema).ok());
}

TEST(Dataset, BatchSerializeRoundTrip) {
  EntityBatch batch;
  batch.primary_keys = {10, 20};
  batch.timestamps = {100, 200};
  batch.columns.push_back(FieldColumn::MakeString(7, {"a", "b"}));
  batch.columns.push_back(FieldColumn::MakeBool(8, {1, 0}));
  BinaryWriter w;
  batch.Serialize(&w);
  BinaryReader r(w.data());
  auto back = EntityBatch::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().primary_keys, batch.primary_keys);
  EXPECT_EQ(back.value().timestamps, batch.timestamps);
  EXPECT_EQ(back.value().columns[0].str, batch.columns[0].str);
  EXPECT_EQ(back.value().columns[1].b8, batch.columns[1].b8);
}

// ---------------------------------------------------------------------------
// Bitset
// ---------------------------------------------------------------------------

TEST(Bitset, SetTestCount) {
  ConcurrentBitset bits(130);
  EXPECT_FALSE(bits.Any());
  EXPECT_TRUE(bits.Set(0));
  EXPECT_TRUE(bits.Set(64));
  EXPECT_TRUE(bits.Set(129));
  EXPECT_FALSE(bits.Set(129));  // Already set.
  EXPECT_TRUE(bits.Test(64));
  EXPECT_FALSE(bits.Test(63));
  EXPECT_EQ(bits.Count(), 3u);
}

TEST(Bitset, BooleanOpsMaskTail) {
  ConcurrentBitset a(70), b(70);
  a.Set(1);
  a.Set(69);
  b.Set(1);
  b.Set(2);
  ConcurrentBitset and_bits(70);
  and_bits.Or(a);
  and_bits.And(b);
  EXPECT_TRUE(and_bits.Test(1));
  EXPECT_FALSE(and_bits.Test(2));
  EXPECT_FALSE(and_bits.Test(69));

  a.Not();
  EXPECT_FALSE(a.Test(1));
  EXPECT_TRUE(a.Test(2));
  EXPECT_FALSE(a.Test(69));
  EXPECT_EQ(a.Count(), 68u);  // 70 - 2 originally set.

  ConcurrentBitset all(70);
  all.SetAll();
  EXPECT_EQ(all.Count(), 70u);
}

TEST(Bitset, ConcurrentSetters) {
  constexpr size_t kBits = 1 << 14;
  ConcurrentBitset bits(kBits);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = t; i < kBits; i += 4) bits.Set(i);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bits.Count(), kBits);
}

TEST(Bitset, SnapshotRestore) {
  ConcurrentBitset bits(100);
  bits.Set(3);
  bits.Set(99);
  auto snap = bits.Snapshot();
  ConcurrentBitset other(100);
  other.Restore(snap);
  EXPECT_TRUE(other.Test(3));
  EXPECT_TRUE(other.Test(99));
  EXPECT_EQ(other.Count(), 2u);
}

// ---------------------------------------------------------------------------
// TopK
// ---------------------------------------------------------------------------

TEST(TopK, KeepsBestK) {
  TopKHeap heap(3);
  for (int64_t i = 0; i < 100; ++i) {
    heap.Push(i, static_cast<float>((i * 37) % 100));
  }
  auto out = heap.TakeSorted();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].score, 0.0f);
  EXPECT_LE(out[0].score, out[1].score);
  EXPECT_LE(out[1].score, out[2].score);
}

TEST(TopK, DeterministicTieBreakById) {
  TopKHeap heap(2);
  heap.Push(5, 1.0f);
  heap.Push(3, 1.0f);
  heap.Push(4, 1.0f);
  auto out = heap.TakeSorted();
  EXPECT_EQ(out[0].id, 3);
  EXPECT_EQ(out[1].id, 4);
}

TEST(TopK, ZeroK) {
  TopKHeap heap(0);
  heap.Push(1, 1.0f);
  EXPECT_TRUE(heap.TakeSorted().empty());
}

TEST(TopK, MergeDedupsIds) {
  std::vector<std::vector<Neighbor>> lists = {
      {{1, 0.1f}, {2, 0.2f}},
      {{1, 0.1f}, {3, 0.15f}},
  };
  auto merged = MergeTopK(lists, 3, true);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].id, 1);
  EXPECT_EQ(merged[1].id, 3);
  EXPECT_EQ(merged[2].id, 2);
}

TEST(TopK, MergeWithoutDedupKeepsDuplicates) {
  std::vector<std::vector<Neighbor>> lists = {{{1, 0.1f}}, {{1, 0.1f}}};
  auto merged = MergeTopK(lists, 2, false);
  ASSERT_EQ(merged.size(), 2u);
}

TEST(TopK, MergeDedupNotStarvedByDuplicateFlood) {
  // Replicated serving sends the same best ids from several nodes. A
  // bounded-headroom merge (select top 2k, then dedup) starves here: the
  // duplicates of a handful of great ids crowd out every distinct
  // mid-ranked id, returning fewer than k results even though far more
  // than k unique ids exist. The merge must collapse to best-score-per-id
  // *before* k-selection.
  const size_t k = 10;
  std::vector<std::vector<Neighbor>> lists;
  // Five replicas, each reporting identical top ids 0..9 with tiny scores:
  // 50 entries ahead of everything else, only 10 unique ids among them.
  for (int replica = 0; replica < 5; ++replica) {
    std::vector<Neighbor> list;
    for (int64_t id = 0; id < 10; ++id) {
      list.push_back({id, 0.001f * static_cast<float>(id + 1)});
    }
    lists.push_back(std::move(list));
  }
  // One list of distinct, worse-scored backfill ids.
  std::vector<Neighbor> backfill;
  for (int64_t id = 100; id < 120; ++id) {
    backfill.push_back({id, 1.0f + static_cast<float>(id)});
  }
  lists.push_back(std::move(backfill));

  auto merged = MergeTopK(lists, 2 * k, true);
  ASSERT_EQ(merged.size(), 2 * k);
  std::set<int64_t> unique;
  for (const auto& n : merged) unique.insert(n.id);
  EXPECT_EQ(unique.size(), 2 * k);  // No duplicate survived the merge.
  // The 10 flooded ids rank first, then backfill 100..109 in order.
  for (int64_t id = 0; id < 10; ++id) EXPECT_EQ(merged[id].id, id);
  for (int64_t i = 10; i < 20; ++i) EXPECT_EQ(merged[i].id, 90 + i);
}

// ---------------------------------------------------------------------------
// Channel / ThreadPool
// ---------------------------------------------------------------------------

TEST(Channel, FifoAndClose) {
  Channel<int> ch;
  ch.Push(1);
  ch.Push(2);
  EXPECT_EQ(*ch.Pop(), 1);
  EXPECT_EQ(*ch.Pop(), 2);
  ch.Close();
  EXPECT_FALSE(ch.Pop().has_value());
  ch.Push(3);  // Dropped after close.
  EXPECT_FALSE(ch.TryPop().has_value());
}

TEST(Channel, PopForTimesOut) {
  Channel<int> ch;
  const int64_t t0 = NowMicros();
  EXPECT_FALSE(ch.PopFor(std::chrono::milliseconds(30)).has_value());
  EXPECT_GE(NowMicros() - t0, 25000);
}

TEST(ThreadPool, RunsSubmittedWork) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 20; ++i) {
    futs.push_back(pool.Submit([i, &sum] {
      sum.fetch_add(1);
      return i * i;
    }));
  }
  int total = 0;
  for (auto& f : futs) total += f.get();
  EXPECT_EQ(sum.load(), 20);
  EXPECT_EQ(total, 2470);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, 1000, [&](int64_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedParallelForFromWorkerDoesNotDeadlock) {
  // The query node calls ParallelFor from inside a pool task (Search runs
  // as an executor task and fans segments out on the same executor). With
  // one thread there is never a free worker to help, so the caller-runs
  // loop must complete the inner range by itself.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  auto fut = pool.Submit([&] {
    ParallelFor(&pool, 64, [&](int64_t) { count.fetch_add(1); });
    return true;
  });
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_TRUE(fut.get());
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, NestedParallelForManyLayersAndGrains) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int t = 0; t < 4; ++t) {
    futs.push_back(pool.Submit([&] {
      ParallelFor(
          &pool, 100,
          [&](int64_t) {
            ParallelFor(&pool, 10, [&](int64_t) { count.fetch_add(1); },
                        /*grain=*/3);
          },
          /*grain=*/7);
    }));
  }
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    f.get();
  }
  EXPECT_EQ(count.load(), 4 * 100 * 10);
}

TEST(ThreadPool, SubmitAfterShutdownRunsInline) {
  // A shut-down pool's queue drops new work; Submit must fall back to
  // running the task inline so the returned future still becomes ready.
  auto pool = std::make_unique<ThreadPool>(2);
  pool->Shutdown();
  auto fut = pool->Submit([] { return 7; });
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(1)),
            std::future_status::ready);
  EXPECT_EQ(fut.get(), 7);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(Metrics, HistogramPercentiles) {
  LatencyHistogram hist;
  for (int i = 1; i <= 100; ++i) hist.Observe(i);
  EXPECT_NEAR(hist.Percentile(50), 50.5, 1.0);
  EXPECT_NEAR(hist.Percentile(99), 99.0, 1.1);
  EXPECT_NEAR(hist.Mean(), 50.5, 0.01);
  EXPECT_EQ(hist.Max(), 100.0);
  EXPECT_EQ(hist.Count(), 100);
  hist.Reset();
  EXPECT_EQ(hist.Count(), 0);
  EXPECT_EQ(hist.Percentile(50), 0.0);
}

TEST(Metrics, RegistryReturnsStableHandles) {
  auto* c1 = MetricsRegistry::Global().GetCounter("test.counter.x");
  auto* c2 = MetricsRegistry::Global().GetCounter("test.counter.x");
  EXPECT_EQ(c1, c2);
  c1->Add(5);
  EXPECT_EQ(c2->Get(), 5);
  c1->Reset();
}

// ---------------------------------------------------------------------------
// Synthetic data
// ---------------------------------------------------------------------------

TEST(Synthetic, DeterministicForSeed) {
  SyntheticOptions opts;
  opts.num_rows = 100;
  opts.dim = 8;
  VectorDataset a = MakeClusteredDataset(opts);
  VectorDataset b = MakeClusteredDataset(opts);
  EXPECT_EQ(a.data, b.data);
  opts.seed = 43;
  VectorDataset c = MakeClusteredDataset(opts);
  EXPECT_NE(a.data, c.data);
}

TEST(Synthetic, DeepLikeIsNormalized) {
  VectorDataset ds = MakeDeepLike(50);
  for (int64_t i = 0; i < ds.NumRows(); ++i) {
    float norm = 0;
    for (int32_t d = 0; d < ds.dim; ++d) norm += ds.Row(i)[d] * ds.Row(i)[d];
    EXPECT_NEAR(norm, 1.0f, 1e-4);
  }
}

TEST(Synthetic, GroundTruthSelfMatch) {
  SyntheticOptions opts;
  opts.num_rows = 200;
  opts.dim = 16;
  VectorDataset ds = MakeClusteredDataset(opts);
  VectorDataset queries;
  queries.dim = ds.dim;
  queries.metric = ds.metric;
  queries.data.assign(ds.Row(42), ds.Row(42) + ds.dim);
  auto truth = BruteForceGroundTruth(ds, queries, 5);
  ASSERT_EQ(truth.size(), 1u);
  EXPECT_EQ(truth[0][0].id, 42);
  EXPECT_EQ(truth[0][0].score, 0.0f);
}

TEST(Synthetic, RecallMath) {
  std::vector<Neighbor> truth = {{1, 0}, {2, 0}, {3, 0}, {4, 0}};
  std::vector<Neighbor> result = {{1, 0}, {9, 0}, {3, 0}, {8, 0}};
  EXPECT_DOUBLE_EQ(RecallAtK(result, truth, 4), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(result, truth, 1), 1.0);
}

// ---------------------------------------------------------------------------
// Hybrid timestamps
// ---------------------------------------------------------------------------

TEST(Timestamps, ComposeExtract) {
  const Timestamp ts = ComposeTimestamp(123456789, 42);
  EXPECT_EQ(PhysicalMs(ts), 123456789u);
  EXPECT_EQ(LogicalPart(ts), 42u);
  // Physical dominates ordering.
  EXPECT_LT(ComposeTimestamp(100, kLogicalMask), ComposeTimestamp(101, 0));
}

// ---------------------------------------------------------------------------
// Channel shutdown status
// ---------------------------------------------------------------------------

TEST(Channel, PopForStatusDistinguishesClosedFromTimeout) {
  Channel<int> ch;
  int out = 0;
  EXPECT_EQ(ch.PopForStatus(std::chrono::milliseconds(10), &out),
            PopStatus::kTimeout);
  ch.Push(7);
  EXPECT_EQ(ch.PopForStatus(std::chrono::milliseconds(10), &out),
            PopStatus::kItem);
  EXPECT_EQ(out, 7);
  ch.Close();
  // Closed-and-drained returns immediately, not after the timeout.
  const int64_t t0 = NowMicros();
  EXPECT_EQ(ch.PopForStatus(std::chrono::milliseconds(5000), &out),
            PopStatus::kClosed);
  EXPECT_LT(NowMicros() - t0, 1000000);
}

TEST(Channel, CloseWakesBlockedPopper) {
  Channel<int> ch;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ch.Close();
  });
  int out = 0;
  const int64_t t0 = NowMicros();
  EXPECT_EQ(ch.PopForStatus(std::chrono::milliseconds(5000), &out),
            PopStatus::kClosed);
  EXPECT_LT(NowMicros() - t0, 2000000);  // Far under the 5 s timeout.
  closer.join();
}

// ---------------------------------------------------------------------------
// FailPoint
// ---------------------------------------------------------------------------

Status GuardedOp() {
  MANU_FAILPOINT("test.site");
  return Status::OK();
}

TEST(FailPoint, DisarmedSiteIsTransparent) {
  EXPECT_FALSE(FailPointRegistry::AnyArmed());
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_EQ(FailPointRegistry::Global().Trips("test.site"), 0);
}

TEST(FailPoint, ErrorOnceTripsExactlyOnce) {
  ScopedFailPoint fp("test.site", FailPointPolicy::ErrorOnce());
  EXPECT_TRUE(FailPointRegistry::AnyArmed());
  EXPECT_TRUE(GuardedOp().IsIOError());
  EXPECT_TRUE(GuardedOp().ok());  // Budget exhausted.
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_EQ(fp.trips(), 1);
}

TEST(FailPoint, ScopeEndDisarms) {
  {
    ScopedFailPoint fp("test.site",
                       FailPointPolicy::ErrorTimes(100, StatusCode::kTimeout));
    EXPECT_TRUE(GuardedOp().IsTimeout());
  }
  EXPECT_FALSE(FailPointRegistry::AnyArmed());
  EXPECT_TRUE(GuardedOp().ok());
}

TEST(FailPoint, ProbabilityIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    ScopedFailPoint fp("test.site",
                       FailPointPolicy::ErrorWithProbability(0.3, seed));
    std::string pattern;
    for (int i = 0; i < 64; ++i) pattern += GuardedOp().ok() ? '.' : 'X';
    return pattern;
  };
  const std::string a = run(42);
  EXPECT_EQ(a, run(42));  // Same seed, same fault schedule.
  EXPECT_NE(a, run(43));
  EXPECT_NE(a.find('X'), std::string::npos);  // ~19 of 64 expected.
  EXPECT_NE(a.find('.'), std::string::npos);
}

TEST(FailPoint, DelayPolicyStallsButSucceeds) {
  ScopedFailPoint fp("test.site", FailPointPolicy::Delay(30000));
  const int64_t t0 = NowMicros();
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_GE(NowMicros() - t0, 25000);
  EXPECT_EQ(fp.trips(), 1);
}

TEST(FailPoint, PanicCallbackRuns) {
  int panics = 0;
  ScopedFailPoint fp("test.site", FailPointPolicy::Panic([&] {
                       ++panics;
                       return Status::Unavailable("node panicked");
                     }));
  EXPECT_TRUE(GuardedOp().IsUnavailable());
  EXPECT_EQ(panics, 1);
}

TEST(FailPoint, CaptureVariantStoresStatus) {
  auto captured = [] {
    Status st;
    MANU_FAILPOINT_CAPTURE("test.capture", st);
    return st;
  };
  EXPECT_TRUE(captured().ok());
  ScopedFailPoint fp("test.capture",
                     FailPointPolicy::ErrorOnce(StatusCode::kUnavailable));
  EXPECT_TRUE(captured().IsUnavailable());
  EXPECT_TRUE(captured().ok());
}

// ---------------------------------------------------------------------------
// Retry
// ---------------------------------------------------------------------------

TEST(Retry, TransientFaultsAreAbsorbed) {
  RetryPolicy policy;
  policy.base_backoff_us = 100;  // Fast test.
  policy.max_backoff_us = 500;
  ScopedFailPoint fp("test.site", FailPointPolicy::ErrorTimes(2));
  int calls = 0;
  Status st = RetryOp(policy, "test.op", [&] {
    ++calls;
    return GuardedOp();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);  // 2 injected failures + 1 success.
}

TEST(Retry, BudgetExhaustionSurfacesLastError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_us = 100;
  policy.max_backoff_us = 500;
  const int64_t giveups_before =
      MetricsRegistry::Global().CounterValue("retry.giveups");
  ScopedFailPoint fp("test.site", FailPointPolicy::ErrorTimes(100));
  Status st = RetryOp(policy, "test.op", [] { return GuardedOp(); });
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(fp.trips(), 3);
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("retry.giveups"),
            giveups_before + 1);
}

TEST(Retry, SemanticErrorsAreNotRetried) {
  int calls = 0;
  Status st = RetryOp(RetryPolicy{}, "test.op", [&] {
    ++calls;
    return Status::Corruption("bad checksum");
  });
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_EQ(calls, 1);  // Retrying cannot fix corruption.
}

TEST(Retry, ResultVariantReturnsValueAfterRetry) {
  RetryPolicy policy;
  policy.base_backoff_us = 100;
  policy.max_backoff_us = 500;
  ScopedFailPoint fp("test.site", FailPointPolicy::ErrorOnce());
  auto result = RetryResult(policy, "test.op", [&]() -> Result<int> {
    MANU_RETURN_NOT_OK(GuardedOp());
    return 42;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(Retry, BackoffGrowsAndStaysCapped) {
  RetryPolicy policy;
  policy.base_backoff_us = 100;
  policy.max_backoff_us = 1000;
  policy.jitter = 0.0;
  EXPECT_EQ(policy.BackoffMicros(1, "op"), 100);
  EXPECT_EQ(policy.BackoffMicros(2, "op"), 200);
  EXPECT_EQ(policy.BackoffMicros(5, "op"), 1000);  // Capped.
  // Deterministic jitter: same (op, attempt) gives the same delay.
  policy.jitter = 0.5;
  EXPECT_EQ(policy.BackoffMicros(3, "op"), policy.BackoffMicros(3, "op"));
}

}  // namespace
}  // namespace manu
