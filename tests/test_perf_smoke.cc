// Perf smoke (ctest label "perf"): asserts the intra-query parallel
// fan-out actually beats the serial scan. Uses the calibrated service-time
// model (sim_segment_search_us) so the check holds on any host, including
// single-core CI: the model sleeps off per-segment service time, and the
// parallel path overlaps those waits across the executor, exactly like
// segment fan-out overlaps compute on a multi-core query node.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/metrics.h"
#include "core/query_node.h"
#include "storage/meta_store.h"
#include "storage/object_store.h"
#include "wal/mq.h"
#include "wal/tso.h"

namespace manu {
namespace {

constexpr CollectionId kColl = 3;
constexpr int32_t kDim = 8;
constexpr int64_t kSegments = 8;
constexpr int64_t kRowsPerSegment = 32;
constexpr int64_t kSimUs = 2000;  // 2 ms service time per segment.
constexpr int64_t kQueries = 20;

CollectionSchema Schema() {
  CollectionSchema schema("perf");
  FieldSchema vec;
  vec.name = "v";
  vec.type = DataType::kFloatVector;
  vec.dim = kDim;
  EXPECT_TRUE(schema.AddField(vec).ok());
  return schema;
}

struct Node {
  explicit Node(const ManuConfig& config)
      : ctx{config, &meta, &store, &mq, &tso, nullptr},
        schema(std::make_shared<CollectionSchema>(Schema())),
        node(1, ctx) {
    node.AddChannel(kColl, /*shard=*/0, schema, /*primary=*/true);
    node.Start();
    const FieldId field = schema->FieldByName("v")->id;
    Timestamp last = 0;
    for (int64_t seg = 0; seg < kSegments; ++seg) {
      LogEntry entry;
      entry.type = LogEntryType::kInsert;
      entry.collection = kColl;
      entry.shard = 0;
      entry.segment = 10 + seg;
      std::vector<float> rows;
      for (int64_t r = 0; r < kRowsPerSegment; ++r) {
        const int64_t pk = seg * kRowsPerSegment + r;
        entry.batch.primary_keys.push_back(pk);
        entry.batch.timestamps.push_back(tso.Allocate());
        for (int32_t d = 0; d < kDim; ++d) {
          rows.push_back(std::sin(static_cast<float>(pk * 13 + d)));
        }
      }
      entry.batch.columns.push_back(
          FieldColumn::MakeFloatVector(field, kDim, std::move(rows)));
      entry.timestamp = entry.batch.timestamps.back();
      last = entry.timestamp;
      EXPECT_GE(mq.Publish(ShardChannelName(kColl, 0), std::move(entry)),
                0);
    }
    EXPECT_TRUE(node.WaitServiceTs(kColl, last, 5000));
  }
  ~Node() { node.Stop(); }

  /// Mean single-query latency in microseconds over kQueries probes.
  double MeasureUs() {
    std::vector<float> query(kDim, 0.25f);
    NodeSearchRequest req;
    req.collection = kColl;
    req.targets.push_back({schema->FieldByName("v")->id, query.data(), 1.0f});
    req.params.k = 10;
    req.staleness_ms = -1;
    const int64_t t0 = NowMicros();
    for (int64_t i = 0; i < kQueries; ++i) {
      auto res = node.Search(req);
      EXPECT_TRUE(res.ok()) << res.status().ToString();
    }
    return static_cast<double>(NowMicros() - t0) / kQueries;
  }

  MetaStore meta;
  MemoryObjectStore store;
  MessageQueue mq;
  Tso tso;
  CoreContext ctx;
  std::shared_ptr<CollectionSchema> schema;
  QueryNode node;
};

TEST(PerfSmoke, ParallelSearchBeatsSerialAtFourThreads) {
  ManuConfig base;
  base.sim_segment_search_us = kSimUs;

  ManuConfig serial_cfg = base;
  serial_cfg.parallel_search = false;
  serial_cfg.query_threads = 4;
  double serial_us;
  {
    Node serial(serial_cfg);
    serial_us = serial.MeasureUs();
  }

  std::printf("# intra-query parallel search, %ld segments x %ld us "
              "service time, %ld queries/point\n",
              static_cast<long>(kSegments), static_cast<long>(kSimUs),
              static_cast<long>(kQueries));
  std::printf("%-22s %12s %10s %9s\n", "config", "latency_us", "qps",
              "speedup");
  std::printf("%-22s %12.0f %10.1f %9s\n", "serial", serial_us,
              1e6 / serial_us, "1.00x");

  double parallel4_us = 0;
  for (int threads : {1, 2, 4, 8}) {
    ManuConfig cfg = base;
    cfg.query_threads = threads;
    Node parallel(cfg);
    const double us = parallel.MeasureUs();
    if (threads == 4) parallel4_us = us;
    char label[32];
    std::snprintf(label, sizeof(label), "parallel threads=%d", threads);
    std::printf("%-22s %12.0f %10.1f %8.2fx\n", label, us, 1e6 / us,
                serial_us / us);
  }

  // The acceptance bar: >= 2x single-query throughput at query_threads=4
  // over 8 segments. The service-time model predicts 4x (2 waves of 4
  // segments vs 8 sequential); 2x leaves slack for dispatch overhead and
  // noisy CI hosts.
  EXPECT_GE(serial_us / parallel4_us, 2.0)
      << "parallel@4 " << parallel4_us << "us vs serial " << serial_us
      << "us";
}

}  // namespace
}  // namespace manu
