#include <gtest/gtest.h>

#include <filesystem>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "storage/binlog.h"
#include "storage/lsm_map.h"
#include "storage/meta_store.h"
#include "storage/object_store.h"

namespace manu {
namespace {

// ---------------------------------------------------------------------------
// ObjectStore (parameterized over backends)
// ---------------------------------------------------------------------------

enum class Backend { kMemory, kLocal, kLatency };

class ObjectStoreTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    switch (GetParam()) {
      case Backend::kMemory:
        store_ = std::make_shared<MemoryObjectStore>();
        break;
      case Backend::kLocal: {
        dir_ = std::filesystem::temp_directory_path() /
               ("manu_store_test_" + std::to_string(NowMicros()));
        auto local = LocalObjectStore::Open(dir_.string());
        ASSERT_TRUE(local.ok());
        store_ = std::shared_ptr<ObjectStore>(std::move(local).value());
        break;
      }
      case Backend::kLatency:
        store_ = std::make_shared<LatencyObjectStore>(
            std::make_shared<MemoryObjectStore>(),
            ObjectStoreLatency{.per_op_micros = 100, .per_mib_micros = 10});
        break;
    }
  }

  void TearDown() override {
    store_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::shared_ptr<ObjectStore> store_;
  std::filesystem::path dir_;
};

TEST_P(ObjectStoreTest, PutGetOverwriteDelete) {
  ASSERT_TRUE(store_->Put("a/b/c", "v1").ok());
  EXPECT_EQ(*store_->Get("a/b/c"), "v1");
  ASSERT_TRUE(store_->Put("a/b/c", "v2").ok());
  EXPECT_EQ(*store_->Get("a/b/c"), "v2");
  EXPECT_TRUE(store_->Exists("a/b/c"));
  EXPECT_EQ(*store_->Size("a/b/c"), 2u);
  ASSERT_TRUE(store_->Delete("a/b/c").ok());
  EXPECT_FALSE(store_->Exists("a/b/c"));
  EXPECT_TRUE(store_->Get("a/b/c").status().IsNotFound());
}

TEST_P(ObjectStoreTest, RangedReads) {
  ASSERT_TRUE(store_->Put("blob", "0123456789").ok());
  EXPECT_EQ(*store_->GetRange("blob", 2, 3), "234");
  EXPECT_EQ(*store_->GetRange("blob", 8, 100), "89");  // Clamped at end.
  EXPECT_EQ(*store_->GetRange("blob", 10, 5), "");
  EXPECT_FALSE(store_->GetRange("blob", 11, 1).ok());
  EXPECT_TRUE(store_->GetRange("missing", 0, 1).status().IsNotFound());
}

TEST_P(ObjectStoreTest, ListByPrefixSorted) {
  ASSERT_TRUE(store_->Put("seg/2/x", "a").ok());
  ASSERT_TRUE(store_->Put("seg/1/x", "b").ok());
  ASSERT_TRUE(store_->Put("other/x", "c").ok());
  auto listed = store_->List("seg/");
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0], "seg/1/x");
  EXPECT_EQ(listed[1], "seg/2/x");
}

INSTANTIATE_TEST_SUITE_P(Backends, ObjectStoreTest,
                         ::testing::Values(Backend::kMemory, Backend::kLocal,
                                           Backend::kLatency));

TEST(LatencyObjectStore, InjectsLatency) {
  auto store = LatencyObjectStore(
      std::make_shared<MemoryObjectStore>(),
      ObjectStoreLatency{.per_op_micros = 2000, .per_mib_micros = 0});
  const int64_t t0 = NowMicros();
  ASSERT_TRUE(store.Put("x", "y").ok());
  (void)store.Get("x");
  EXPECT_GE(NowMicros() - t0, 4000);
}

// ---------------------------------------------------------------------------
// MetaStore
// ---------------------------------------------------------------------------

TEST(MetaStore, RevisionsIncreaseMonotonically) {
  MetaStore meta;
  const int64_t r1 = meta.Put("k1", "v1");
  const int64_t r2 = meta.Put("k2", "v2");
  const int64_t r3 = meta.Put("k1", "v3");
  EXPECT_LT(r1, r2);
  EXPECT_LT(r2, r3);
  auto entry = meta.Get("k1");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry.value().value, "v3");
  EXPECT_EQ(entry.value().mod_revision, r3);
  EXPECT_EQ(entry.value().create_revision, r1);
}

TEST(MetaStore, CompareAndSwapSemantics) {
  MetaStore meta;
  // Rev 0 = must not exist.
  auto created = meta.CompareAndSwap("key", 0, "a");
  ASSERT_TRUE(created.ok());
  EXPECT_TRUE(meta.CompareAndSwap("key", 0, "b").status().code() ==
              StatusCode::kAborted);
  auto updated = meta.CompareAndSwap("key", created.value(), "b");
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(meta.Get("key").value().value, "b");
}

TEST(MetaStore, WatchFiresForPrefix) {
  MetaStore meta;
  std::vector<WatchEvent> events;
  const int64_t id = meta.Watch("collection/", [&](const WatchEvent& e) {
    events.push_back(e);
  });
  meta.Put("collection/1", "a");
  meta.Put("segment/1", "b");  // Not watched.
  ASSERT_TRUE(meta.Delete("collection/1").ok());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, WatchEventType::kPut);
  EXPECT_EQ(events[1].type, WatchEventType::kDelete);
  meta.Unwatch(id);
  meta.Put("collection/2", "c");
  EXPECT_EQ(events.size(), 2u);
}

TEST(MetaStore, ListPrefix) {
  MetaStore meta;
  meta.Put("s/1", "a");
  meta.Put("s/2", "b");
  meta.Put("t/1", "c");
  auto listed = meta.List("s/");
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0].first, "s/1");
  EXPECT_TRUE(meta.Delete("nope").IsNotFound());
}

// ---------------------------------------------------------------------------
// Binlog
// ---------------------------------------------------------------------------

EntityBatch SampleBatch() {
  EntityBatch batch;
  batch.primary_keys = {1, 2, 3};
  batch.timestamps = {10, 20, 30};
  batch.columns.push_back(
      FieldColumn::MakeFloatVector(100, 2, {1, 2, 3, 4, 5, 6}));
  batch.columns.push_back(FieldColumn::MakeString(101, {"a", "b", "c"}));
  batch.columns.push_back(FieldColumn::MakeDouble(102, {0.5, 1.5, 2.5}));
  return batch;
}

TEST(Binlog, SegmentRoundTrip) {
  MemoryObjectStore store;
  ASSERT_TRUE(binlog::WriteSegment(&store, "binlog/c1/seg1", SampleBatch())
                  .ok());

  auto manifest = binlog::ReadManifest(&store, "binlog/c1/seg1");
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest.value().primary_keys, (std::vector<int64_t>{1, 2, 3}));

  auto batch = binlog::ReadSegment(&store, "binlog/c1/seg1");
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch.value().NumRows(), 3);
  EXPECT_EQ(batch.value().columns.size(), 3u);
}

TEST(Binlog, ColumnReadFetchesOnlyThatField) {
  MemoryObjectStore store;
  ASSERT_TRUE(binlog::WriteSegment(&store, "p", SampleBatch()).ok());
  auto col = binlog::ReadField(&store, "p", 101);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col.value().str, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(binlog::ReadField(&store, "p", 999).status().IsNotFound());
}

TEST(Binlog, CorruptionDetected) {
  MemoryObjectStore store;
  ASSERT_TRUE(binlog::WriteSegment(&store, "p", SampleBatch()).ok());
  std::string framed = *store.Get("p/field/100");
  framed[framed.size() / 2] ^= 0x1;  // Flip a payload bit.
  ASSERT_TRUE(store.Put("p/field/100", framed).ok());
  EXPECT_TRUE(binlog::ReadField(&store, "p", 100).status().IsCorruption());

  // Bad magic.
  ASSERT_TRUE(store.Put("p/field/100", "garbage").ok());
  EXPECT_TRUE(binlog::ReadField(&store, "p", 100).status().IsCorruption());
}

TEST(Binlog, DropSegmentRemovesEverything) {
  MemoryObjectStore store;
  ASSERT_TRUE(binlog::WriteSegment(&store, "p", SampleBatch()).ok());
  ASSERT_TRUE(binlog::DropSegment(&store, "p").ok());
  EXPECT_TRUE(store.List("p/").empty());
}

// ---------------------------------------------------------------------------
// LSM entity map
// ---------------------------------------------------------------------------

TEST(LsmMap, MemtableAndLookup) {
  MemoryObjectStore store;
  LsmEntityMap map(&store, "lsm/test");
  ASSERT_TRUE(map.Put(1, 100).ok());
  ASSERT_TRUE(map.Put(2, 100).ok());
  ASSERT_TRUE(map.Put(1, 200).ok());  // Newest wins.
  EXPECT_EQ(*map.Lookup(1), 200);
  EXPECT_EQ(*map.Lookup(2), 100);
  EXPECT_TRUE(map.Lookup(3).status().IsNotFound());
}

TEST(LsmMap, TombstonesHideEntities) {
  MemoryObjectStore store;
  LsmEntityMap map(&store, "lsm/test");
  ASSERT_TRUE(map.Put(7, 100).ok());
  ASSERT_TRUE(map.Remove(7).ok());
  EXPECT_TRUE(map.Lookup(7).status().IsNotFound());
  // Re-insert after tombstone.
  ASSERT_TRUE(map.Put(7, 300).ok());
  EXPECT_EQ(*map.Lookup(7), 300);
}

TEST(LsmMap, FlushCreatesSsTablesAndLookupSpansThem) {
  MemoryObjectStore store;
  LsmEntityMap map(&store, "lsm/test", /*memtable_flush_entries=*/4);
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(map.Put(i, i * 10).ok());
  }
  EXPECT_GE(map.NumSsTables(), 2u);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(*map.Lookup(i), i * 10) << i;
  }
  // Newer SSTable shadows older: rewrite key 0 and flush.
  ASSERT_TRUE(map.Put(0, 999).ok());
  ASSERT_TRUE(map.Flush().ok());
  EXPECT_EQ(*map.Lookup(0), 999);
}

TEST(LsmMap, RecoverFromObjectStorage) {
  MemoryObjectStore store;
  {
    LsmEntityMap map(&store, "lsm/recover");
    for (int64_t i = 0; i < 20; ++i) ASSERT_TRUE(map.Put(i, i + 1000).ok());
    ASSERT_TRUE(map.Remove(5).ok());
    ASSERT_TRUE(map.Flush().ok());
  }
  LsmEntityMap recovered(&store, "lsm/recover");
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(*recovered.Lookup(3), 1003);
  EXPECT_TRUE(recovered.Lookup(5).status().IsNotFound());
  EXPECT_EQ(recovered.MemtableSize(), 0u);
}

TEST(LsmMap, RecoverTruncatesAtCorruptTail) {
  MemoryObjectStore store;
  {
    LsmEntityMap map(&store, "lsm/corrupt", /*memtable_flush_entries=*/4);
    // 12 keys at 4 entries/table -> tables [0..3], [4..7], [8..11].
    for (int64_t i = 0; i < 12; ++i) ASSERT_TRUE(map.Put(i, i + 1000).ok());
    ASSERT_EQ(map.NumSsTables(), 3u);
  }
  // Flip a payload bit in the newest table: a torn write at the crash
  // frontier.
  auto tables = store.List("lsm/corrupt/sst/");
  ASSERT_EQ(tables.size(), 3u);
  std::string framed = *store.Get(tables.back());
  framed[framed.size() / 2] ^= 0x1;
  ASSERT_TRUE(store.Put(tables.back(), framed).ok());

  const int64_t truncations_before =
      MetricsRegistry::Global().CounterValue("lsm_map.recover_truncations");
  LsmEntityMap recovered(&store, "lsm/corrupt", /*memtable_flush_entries=*/4);
  ASSERT_TRUE(recovered.Recover().ok());
  // Recovery succeeds but stops before the corrupt table.
  EXPECT_EQ(recovered.NumSsTables(), 2u);
  EXPECT_EQ(*recovered.Lookup(0), 1000);
  EXPECT_EQ(*recovered.Lookup(7), 1007);
  for (int64_t i = 8; i < 12; ++i) {
    EXPECT_TRUE(recovered.Lookup(i).status().IsNotFound()) << i;
  }
  EXPECT_EQ(
      MetricsRegistry::Global().CounterValue("lsm_map.recover_truncations"),
      truncations_before + 1);
}

TEST(LsmMap, RecoverTruncatesAtMissingTailObject) {
  MemoryObjectStore store;
  {
    LsmEntityMap map(&store, "lsm/missing", /*memtable_flush_entries=*/4);
    for (int64_t i = 0; i < 12; ++i) ASSERT_TRUE(map.Put(i, i + 1000).ok());
  }
  auto tables = store.List("lsm/missing/sst/");
  ASSERT_EQ(tables.size(), 3u);
  // A Get that races List can see the newest table vanish (an object store
  // offers no snapshot): treated like the corrupt-tail case.
  ASSERT_TRUE(store.Delete(tables.back()).ok());

  LsmEntityMap recovered(&store, "lsm/missing", /*memtable_flush_entries=*/4);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.NumSsTables(), 2u);
  EXPECT_EQ(*recovered.Lookup(4), 1004);
  EXPECT_TRUE(recovered.Lookup(11).status().IsNotFound());
}

// ---------------------------------------------------------------------------
// FaultyObjectStore
// ---------------------------------------------------------------------------

TEST(FaultyObjectStore, DelegatesWhenDisarmed) {
  FaultyObjectStore store(std::make_shared<MemoryObjectStore>());
  ASSERT_TRUE(store.Put("k", "v").ok());
  EXPECT_EQ(*store.Get("k"), "v");
  EXPECT_TRUE(store.Exists("k"));
  EXPECT_EQ(*store.Size("k"), 1u);
  EXPECT_EQ(store.List("").size(), 1u);
  ASSERT_TRUE(store.Delete("k").ok());
  EXPECT_FALSE(store.Exists("k"));
}

TEST(FaultyObjectStore, InjectsArmedFaults) {
  FaultyObjectStore store(std::make_shared<MemoryObjectStore>());
  ASSERT_TRUE(store.Put("k", "v").ok());
  {
    ScopedFailPoint fp("object_store.get", FailPointPolicy::ErrorOnce());
    EXPECT_TRUE(store.Get("k").status().IsIOError());
    // max_trips=1: the site auto-disarms after the first trip.
    EXPECT_EQ(*store.Get("k"), "v");
    EXPECT_EQ(fp.trips(), 1);
  }
  {
    ScopedFailPoint fp(
        "object_store.put",
        FailPointPolicy::ErrorTimes(2, StatusCode::kUnavailable));
    EXPECT_TRUE(store.Put("k2", "v2").IsUnavailable());
    EXPECT_TRUE(store.Put("k2", "v2").IsUnavailable());
    EXPECT_TRUE(store.Put("k2", "v2").ok());
    EXPECT_EQ(fp.trips(), 2);
  }
  // Guards out of scope: transparent again.
  EXPECT_EQ(*store.Get("k2"), "v2");
}

}  // namespace
}  // namespace manu
