// Quickstart: create a collection, insert vectors, build an index, run
// searches with filters and tunable consistency. Mirrors the PyManu flow
// from Table 2 of the paper:
//
//   collection = Collection(name, schema)
//   collection.insert(vecs)
//   collection.create_index("vector", params)
//   collection.search(vec, params)
//   collection.query(vec, params, expr)

#include <cstdio>

#include "common/synthetic.h"
#include "core/manu.h"

using namespace manu;

int main() {
  // 1. Start an embedded Manu deployment (in production these would be
  //    separate cloud services; the API is identical — the paper's
  //    "strong adaptability" goal).
  ManuConfig config;
  config.num_shards = 2;
  config.segment_seal_rows = 20000;
  config.segment_idle_seal_ms = 1000;
  ManuInstance db(config);

  // 2. Define the schema of Figure 1: primary key, feature vector, label,
  //    numerical attribute.
  CollectionSchema schema("products");
  FieldSchema pk;
  pk.name = "product_id";
  pk.type = DataType::kInt64;
  pk.is_primary = true;
  (void)schema.AddField(pk);
  FieldSchema vec;
  vec.name = "feature";
  vec.type = DataType::kFloatVector;
  vec.dim = 64;
  vec.metric = MetricType::kL2;
  (void)schema.AddField(vec);
  FieldSchema label;
  label.name = "category";
  label.type = DataType::kString;
  (void)schema.AddField(label);
  FieldSchema price;
  price.name = "price";
  price.type = DataType::kDouble;
  (void)schema.AddField(price);

  auto meta = db.CreateCollection(std::move(schema));
  if (!meta.ok()) {
    std::printf("create failed: %s\n", meta.status().ToString().c_str());
    return 1;
  }
  std::printf("created collection '%s' (id=%lld)\n",
              meta.value().schema.name().c_str(),
              static_cast<long long>(meta.value().id));

  // 3. Declare the vector index (stream indexing will build it per sealed
  //    segment without stopping search).
  IndexParams index;
  index.type = IndexType::kIvfFlat;
  index.nlist = 64;
  if (auto st = db.CreateIndex("products", "feature", index); !st.ok()) {
    std::printf("create_index failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 4. Insert 10k products.
  const int64_t n = 10000;
  SyntheticOptions opts;
  opts.num_rows = n;
  opts.dim = 64;
  VectorDataset data = MakeClusteredDataset(opts);
  const char* categories[] = {"book", "food", "cloth"};

  EntityBatch batch;
  std::vector<std::string> labels;
  std::vector<double> prices;
  for (int64_t i = 0; i < n; ++i) {
    batch.primary_keys.push_back(i);
    labels.push_back(categories[i % 3]);
    prices.push_back(5.0 + static_cast<double>(i % 200));
  }
  const auto& s = meta.value().schema;
  batch.columns.push_back(FieldColumn::MakeFloatVector(
      s.FieldByName("feature")->id, 64, data.data));
  batch.columns.push_back(
      FieldColumn::MakeString(s.FieldByName("category")->id, labels));
  batch.columns.push_back(
      FieldColumn::MakeDouble(s.FieldByName("price")->id, prices));
  auto insert_ts = db.Insert("products", std::move(batch));
  if (!insert_ts.ok()) {
    std::printf("insert failed: %s\n", insert_ts.status().ToString().c_str());
    return 1;
  }
  std::printf("inserted %lld products at LSN %llu\n",
              static_cast<long long>(n),
              static_cast<unsigned long long>(insert_ts.value()));

  // 5. Strong-consistency search: guaranteed to observe the insert above.
  SearchRequest req;
  req.collection = "products";
  req.query.assign(data.Row(123), data.Row(123) + 64);
  req.k = 5;
  req.consistency = ConsistencyLevel::kStrong;
  auto res = db.Search(req);
  if (!res.ok()) {
    std::printf("search failed: %s\n", res.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntop-5 for product 123 (strong consistency):\n");
  for (size_t i = 0; i < res.value().ids.size(); ++i) {
    std::printf("  #%zu  id=%lld  score=%.4f\n", i + 1,
                static_cast<long long>(res.value().ids[i]),
                res.value().scores[i]);
  }

  // 6. Filtered search ("query" in PyManu): cheap books under 50.
  req.filter = "category == 'book' && price < 50";
  res = db.Search(req);
  if (res.ok()) {
    std::printf("\ntop-5 cheap books:\n");
    for (size_t i = 0; i < res.value().ids.size(); ++i) {
      std::printf("  #%zu  id=%lld  score=%.4f\n", i + 1,
                  static_cast<long long>(res.value().ids[i]),
                  res.value().scores[i]);
    }
  }

  // 7. Bounded staleness: allow results up to 2 s stale in exchange for
  //    never waiting on the ingest pipeline (delta consistency).
  req.filter.clear();
  req.consistency = ConsistencyLevel::kBounded;
  req.staleness_ms = 2000;
  res = db.Search(req);
  std::printf("\nbounded-staleness search %s (%zu hits)\n",
              res.ok() ? "ok" : res.status().ToString().c_str(),
              res.ok() ? res.value().ids.size() : 0);

  // 8. Delete + verify.
  (void)db.Delete("products", {123});
  req.consistency = ConsistencyLevel::kStrong;
  res = db.Search(req);
  if (res.ok()) {
    bool gone = true;
    for (int64_t id : res.value().ids) gone = gone && id != 123;
    std::printf("after delete, product 123 %s the top-5\n",
                gone ? "vanished from" : "is still in");
  }
  std::printf("\nquickstart done.\n");
  return 0;
}
