// E-commerce recommendation (Section 5.2, Company A): user and product
// embeddings share an inner-product space; recommendation = top-k products
// by inner product with the user vector, with label filters ("only cloth")
// and high-concurrency serving. Demonstrates IP metric, multi-threaded
// query clients and query-node scaling for a traffic spike.

#include <cstdio>

#include <atomic>
#include <thread>

#include "common/metrics.h"
#include "common/synthetic.h"
#include "core/manu.h"

using namespace manu;

int main() {
  ManuConfig config;
  config.num_shards = 2;
  config.segment_seal_rows = 15000;
  config.segment_idle_seal_ms = 500;
  config.num_query_nodes = 2;
  ManuInstance db(config);

  // Product catalogue: 30k items, 96-d normalized embeddings (IP space).
  CollectionSchema schema("catalogue");
  FieldSchema vec;
  vec.name = "embedding";
  vec.type = DataType::kFloatVector;
  vec.dim = 96;
  vec.metric = MetricType::kInnerProduct;
  (void)schema.AddField(vec);
  FieldSchema label;
  label.name = "category";
  label.type = DataType::kString;
  (void)schema.AddField(label);
  auto meta = db.CreateCollection(std::move(schema));
  if (!meta.ok()) return 1;

  IndexParams index;
  index.type = IndexType::kHnsw;
  index.hnsw_m = 16;
  index.hnsw_ef_construction = 120;
  (void)db.CreateIndex("catalogue", "embedding", index);

  const int64_t n = 30000;
  VectorDataset products = MakeDeepLike(n);
  const char* categories[] = {"cloth", "makeup", "shoes", "bags"};
  EntityBatch batch;
  std::vector<std::string> labels;
  for (int64_t i = 0; i < n; ++i) {
    batch.primary_keys.push_back(i);
    labels.push_back(categories[i % 4]);
  }
  const auto& s = meta.value().schema;
  batch.columns.push_back(FieldColumn::MakeFloatVector(
      s.FieldByName("embedding")->id, 96, products.data));
  batch.columns.push_back(
      FieldColumn::MakeString(s.FieldByName("category")->id, labels));
  if (!db.Insert("catalogue", std::move(batch)).ok()) return 1;
  if (auto st = db.FlushAndWait("catalogue", 120000); !st.ok()) {
    std::printf("flush: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("catalogue loaded: %lld products, HNSW indexed\n",
              static_cast<long long>(n));

  // Simulated users: vectors from the same space.
  SyntheticOptions uopts;
  uopts.num_rows = 0;
  uopts.dim = 96;
  uopts.num_clusters = 96;
  uopts.cluster_spread = 0.15;
  uopts.normalize = true;
  uopts.metric = MetricType::kInnerProduct;
  VectorDataset users = MakeQueries(uopts, 1024, 99);

  // One user's recommendations, with and without a category filter.
  SearchRequest req;
  req.collection = "catalogue";
  req.query.assign(users.Row(0), users.Row(0) + 96);
  req.k = 5;
  req.consistency = ConsistencyLevel::kBounded;
  req.staleness_ms = 1000;  // "seeing a new product after a second is fine"
  auto res = db.Search(req);
  if (res.ok()) {
    std::printf("\nrecommendations for user 0:\n");
    for (size_t i = 0; i < res.value().ids.size(); ++i) {
      std::printf("  product %lld (ip=%.4f)\n",
                  static_cast<long long>(res.value().ids[i]),
                  -res.value().scores[i]);  // Canonical score = -IP.
    }
  }
  req.filter = "category == 'cloth'";
  res = db.Search(req);
  if (res.ok()) {
    std::printf("cloth-only recommendations:\n");
    for (size_t i = 0; i < res.value().ids.size(); ++i) {
      std::printf("  product %lld (ip=%.4f)\n",
                  static_cast<long long>(res.value().ids[i]),
                  -res.value().scores[i]);
    }
  }

  // Promotion-event spike: 8 concurrent clients for 3 seconds, then scale
  // out and repeat.
  auto burst = [&](const char* phase) {
    std::atomic<int64_t> served{0};
    std::atomic<bool> stop{false};
    LatencyHistogram hist;
    std::vector<std::thread> clients;
    for (int c = 0; c < 8; ++c) {
      clients.emplace_back([&, c] {
        int64_t i = c;
        while (!stop.load(std::memory_order_relaxed)) {
          SearchRequest r;
          r.collection = "catalogue";
          const float* u = users.Row(i++ % users.NumRows());
          r.query.assign(u, u + 96);
          r.k = 10;
          r.consistency = ConsistencyLevel::kEventually;
          const int64_t t0 = NowMicros();
          if (db.Search(r).ok()) served.fetch_add(1);
          hist.Observe(static_cast<double>(NowMicros() - t0));
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::seconds(3));
    stop.store(true);
    for (auto& t : clients) t.join();
    std::printf("%s: %.0f QPS, p99 %.1f ms (%zu query nodes)\n", phase,
                static_cast<double>(served.load()) / 3.0,
                hist.Percentile(99) / 1000.0, db.NumQueryNodes());
  };

  std::printf("\npromotion-event load test:\n");
  burst("before scale-out");
  (void)db.ScaleQueryNodes(4);
  burst("after scale-out ");
  (void)db.ScaleQueryNodes(2);
  std::printf("scaled back to %zu nodes after the event.\n",
              db.NumQueryNodes());
  return 0;
}
