// Virus scanning (Section 5.2, Company C): a virus base continuously
// collects new signatures; scans must observe the newest entries within a
// short, configurable delay (delta consistency), and the whole base is
// periodically re-embedded ("we frequently adjust our embedding algorithm")
// which requires fast full re-indexing (batch indexing).

#include <cstdio>

#include <atomic>
#include <thread>

#include "common/metrics.h"
#include "common/synthetic.h"
#include "core/manu.h"

using namespace manu;

namespace {
constexpr int32_t kDim = 48;
}

int main() {
  ManuConfig config;
  config.num_shards = 2;
  config.segment_seal_rows = 8000;
  config.segment_idle_seal_ms = 400;
  config.time_tick_interval_ms = 10;  // Short ticks: fresh reads, fast.
  ManuInstance db(config);

  CollectionSchema schema("virus_base");
  FieldSchema vec;
  vec.name = "sig";
  vec.type = DataType::kFloatVector;
  vec.dim = kDim;
  vec.metric = MetricType::kL2;
  (void)schema.AddField(vec);
  FieldSchema sev;
  sev.name = "severity";
  sev.type = DataType::kInt64;
  (void)schema.AddField(sev);
  auto meta = db.CreateCollection(std::move(schema));
  if (!meta.ok()) return 1;
  IndexParams index;
  index.type = IndexType::kIvfFlat;
  index.nlist = 48;
  (void)db.CreateIndex("virus_base", "sig", index);
  const auto& s = meta.value().schema;
  const FieldId sig_field = s.FieldByName("sig")->id;
  const FieldId sev_field = s.FieldByName("severity")->id;

  // Seed base: 20k known signatures.
  SyntheticOptions opts;
  opts.num_rows = 20000;
  opts.dim = kDim;
  opts.num_clusters = 128;
  VectorDataset base = MakeClusteredDataset(opts);
  {
    EntityBatch batch;
    std::vector<int64_t> severities;
    for (int64_t i = 0; i < opts.num_rows; ++i) {
      batch.primary_keys.push_back(i);
      severities.push_back(1 + i % 5);
    }
    batch.columns.push_back(
        FieldColumn::MakeFloatVector(sig_field, kDim, base.data));
    batch.columns.push_back(
        FieldColumn::MakeInt64(sev_field, std::move(severities)));
    if (!db.Insert("virus_base", std::move(batch)).ok()) return 1;
  }
  if (!db.FlushAndWait("virus_base", 120000).ok()) return 1;
  std::printf("virus base seeded with %lld signatures\n",
              static_cast<long long>(opts.num_rows));

  // Streaming feed of newly discovered viruses (a lab publishing
  // signatures) while scans run concurrently.
  std::atomic<bool> stop{false};
  std::atomic<int64_t> next_pk{opts.num_rows};
  std::thread feed([&] {
    std::mt19937_64 rng(31);
    std::normal_distribution<float> noise(0.0f, 0.1f);
    while (!stop.load(std::memory_order_relaxed)) {
      EntityBatch batch;
      const int64_t pk = next_pk.fetch_add(1);
      batch.primary_keys.push_back(pk);
      std::vector<float> sig(base.Row(pk % opts.num_rows),
                             base.Row(pk % opts.num_rows) + kDim);
      for (auto& v : sig) v += noise(rng);
      batch.columns.push_back(
          FieldColumn::MakeFloatVector(sig_field, kDim, std::move(sig)));
      batch.columns.push_back(FieldColumn::MakeInt64(sev_field, {5}));
      (void)db.Insert("virus_base", std::move(batch));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // Scans with a 50 ms staleness budget must see a virus published >50 ms
  // ago. Demonstrate: publish a brand-new signature, wait just past the
  // budget, scan for it.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  std::vector<float> brand_new(kDim, 0.77f);
  {
    EntityBatch batch;
    batch.primary_keys.push_back(9999999);
    batch.columns.push_back(
        FieldColumn::MakeFloatVector(sig_field, kDim, brand_new));
    batch.columns.push_back(FieldColumn::MakeInt64(sev_field, {5}));
    if (!db.Insert("virus_base", std::move(batch)).ok()) return 1;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  SearchRequest scan;
  scan.collection = "virus_base";
  scan.query = brand_new;
  scan.k = 1;
  scan.consistency = ConsistencyLevel::kBounded;
  scan.staleness_ms = 50;
  auto res = db.Search(scan);
  if (res.ok() && !res.value().ids.empty()) {
    std::printf("scan with 50ms staleness budget found signature %lld "
                "(score %.4f) — %s\n",
                static_cast<long long>(res.value().ids[0]),
                res.value().scores[0],
                res.value().ids[0] == 9999999 ? "the fresh virus" : "miss!");
  }

  // Severity-filtered scan: only high-severity matches.
  scan.k = 5;
  scan.filter = "severity >= 4";
  res = db.Search(scan);
  std::printf("high-severity candidates: %zu\n",
              res.ok() ? res.value().ids.size() : 0);
  scan.filter.clear();

  stop.store(true);
  feed.join();

  // Embedding-algorithm update: re-declare the index (new parameters) and
  // batch re-index the whole base; searches keep working throughout.
  std::printf("\nre-indexing after embedding algorithm update...\n");
  IndexParams index2;
  index2.type = IndexType::kHnsw;
  index2.hnsw_m = 12;
  index2.hnsw_ef_construction = 80;
  const int64_t t0 = NowMicros();
  (void)db.CreateIndex("virus_base", "sig", index2);
  if (auto st = db.FlushAndWait("virus_base", 300000); !st.ok()) {
    std::printf("re-index flush: %s\n", st.ToString().c_str());
  }
  std::printf("batch re-index (ivf_flat -> hnsw) finished in %.1fs\n",
              static_cast<double>(NowMicros() - t0) / 1e6);

  res = db.Search(scan);
  std::printf("scan after re-index: %s\n",
              res.ok() && !res.value().ids.empty() &&
                      res.value().ids[0] == 9999999
                  ? "fresh virus still found"
                  : "unexpected result");
  return 0;
}
