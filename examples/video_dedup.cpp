// Video deduplication (Section 5.2, Company B): a video is a set of
// critical-frame embeddings; a new upload is a duplicate candidate when
// enough of its frames have near-identical matches in the corpus.
// Demonstrates multi-vector entities (frame vectors as separate rows keyed
// by video id), batch ingest, duplicate voting, and deletion of rejected
// uploads.

#include <cstdio>

#include <map>

#include "common/synthetic.h"
#include "core/manu.h"

using namespace manu;

namespace {
constexpr int32_t kDim = 64;
constexpr int64_t kFramesPerVideo = 8;

/// Row pk encodes (video, frame): pk = video * kFramesPerVideo + frame.
int64_t VideoOf(int64_t pk) { return pk / kFramesPerVideo; }
}  // namespace

int main() {
  ManuConfig config;
  config.num_shards = 2;
  config.segment_seal_rows = 20000;
  config.segment_idle_seal_ms = 500;
  ManuInstance db(config);

  CollectionSchema schema("frames");
  FieldSchema vec;
  vec.name = "frame_vec";
  vec.type = DataType::kFloatVector;
  vec.dim = kDim;
  vec.metric = MetricType::kL2;
  (void)schema.AddField(vec);
  auto meta = db.CreateCollection(std::move(schema));
  if (!meta.ok()) return 1;
  IndexParams index;
  index.type = IndexType::kIvfFlat;
  index.nlist = 64;
  (void)db.CreateIndex("frames", "frame_vec", index);
  const FieldId field = meta.value().schema.FieldByName("frame_vec")->id;

  // Corpus: 2000 videos x 8 frames.
  const int64_t num_videos = 2000;
  SyntheticOptions opts;
  opts.num_rows = num_videos * kFramesPerVideo;
  opts.dim = kDim;
  opts.num_clusters = 256;
  VectorDataset corpus = MakeClusteredDataset(opts);
  EntityBatch batch;
  for (int64_t pk = 0; pk < opts.num_rows; ++pk) {
    batch.primary_keys.push_back(pk);
  }
  batch.columns.push_back(
      FieldColumn::MakeFloatVector(field, kDim, corpus.data));
  if (!db.Insert("frames", std::move(batch)).ok()) return 1;
  if (!db.FlushAndWait("frames", 120000).ok()) return 1;
  std::printf("corpus: %lld videos (%lld frame vectors) indexed\n",
              static_cast<long long>(num_videos),
              static_cast<long long>(opts.num_rows));

  // A new upload: duplicate of video 1234 with slight re-encoding noise.
  std::mt19937_64 rng(7);
  std::normal_distribution<float> noise(0.0f, 0.01f);
  std::vector<float> upload(kFramesPerVideo * kDim);
  const int64_t dup_src = 1234;
  for (int64_t f = 0; f < kFramesPerVideo; ++f) {
    const float* src = corpus.Row(dup_src * kFramesPerVideo + f);
    for (int32_t d = 0; d < kDim; ++d) {
      upload[f * kDim + d] = src[d] + noise(rng);
    }
  }

  // Dedup check: per frame, find nearest corpus frames; vote by video.
  auto dedup_check = [&](const std::vector<float>& frames,
                         const char* label) {
    std::map<int64_t, int64_t> votes;
    for (int64_t f = 0; f < kFramesPerVideo; ++f) {
      SearchRequest req;
      req.collection = "frames";
      req.query.assign(frames.data() + f * kDim,
                       frames.data() + (f + 1) * kDim);
      req.k = 3;
      req.consistency = ConsistencyLevel::kStrong;
      auto res = db.Search(req);
      if (!res.ok()) continue;
      for (size_t i = 0; i < res.value().ids.size(); ++i) {
        if (res.value().scores[i] < 0.05f) {  // Near-identical frame.
          ++votes[VideoOf(res.value().ids[i])];
        }
      }
    }
    int64_t best_video = -1, best_votes = 0;
    for (const auto& [video, count] : votes) {
      if (count > best_votes) {
        best_votes = count;
        best_video = video;
      }
    }
    if (best_votes >= kFramesPerVideo / 2) {
      std::printf("%s: DUPLICATE of video %lld (%lld/%lld frames matched)\n",
                  label, static_cast<long long>(best_video),
                  static_cast<long long>(best_votes),
                  static_cast<long long>(kFramesPerVideo));
    } else {
      std::printf("%s: unique (best vote %lld frames)\n", label,
                  static_cast<long long>(best_votes));
    }
  };

  dedup_check(upload, "re-encoded upload");

  // A genuinely new video.
  SyntheticOptions nopts = opts;
  nopts.seed = 4242;
  nopts.num_rows = kFramesPerVideo;
  VectorDataset fresh = MakeClusteredDataset(nopts);
  dedup_check(fresh.data, "fresh upload    ");

  // The corpus owner removes a copyright-struck video; its frames stop
  // matching immediately (tombstones via the WAL).
  std::vector<int64_t> strike;
  for (int64_t f = 0; f < kFramesPerVideo; ++f) {
    strike.push_back(dup_src * kFramesPerVideo + f);
  }
  auto del_ts = db.Delete("frames", strike);
  if (del_ts.ok()) {
    (void)db.WaitUntilVisible("frames", del_ts.value());
    dedup_check(upload, "after takedown  ");
  }
  return 0;
}
