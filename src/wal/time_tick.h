#ifndef MANU_WAL_TIME_TICK_H_
#define MANU_WAL_TIME_TICK_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "wal/mq.h"
#include "wal/tso.h"

namespace manu {

/// Periodically publishes kTimeTick control entries into every registered
/// channel (Section 3.4, "similar to watermarks in Apache Flink"). A tick
/// carrying timestamp T promises the channel will carry no further data
/// entries with LSN <= T, which is what lets subscribers bound staleness:
/// shorter intervals let waiting queries release sooner (Figure 12 sweeps
/// exactly this interval).
///
/// The paper has loggers write ticks into the channels they own; here one
/// emitter thread serves all channels, equivalent because the single Tso
/// already serializes timestamp order.
class TimeTickEmitter {
 public:
  TimeTickEmitter(MessageQueue* mq, Tso* tso, int64_t interval_ms);
  ~TimeTickEmitter();

  TimeTickEmitter(const TimeTickEmitter&) = delete;
  TimeTickEmitter& operator=(const TimeTickEmitter&) = delete;

  /// Registers a channel for ticking; collection/shard are echoed into the
  /// tick entries so subscribers can route them.
  void RegisterChannel(const std::string& channel, CollectionId collection,
                       ShardId shard);
  void UnregisterChannel(const std::string& channel);

  /// Emits one round of ticks immediately (tests use this to avoid sleeping).
  void TickNow();

  void Stop();

  int64_t interval_ms() const { return interval_ms_; }

 private:
  struct Target {
    CollectionId collection;
    ShardId shard;
  };

  void Run();

  MessageQueue* mq_;
  Tso* tso_;
  int64_t interval_ms_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, Target> channels_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace manu

#endif  // MANU_WAL_TIME_TICK_H_
