#ifndef MANU_WAL_MQ_H_
#define MANU_WAL_MQ_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "wal/message.h"

namespace manu {

/// Where a new subscription starts reading.
enum class SubscribePosition { kEarliest, kLatest };

/// Tuning for the broker's group-commit publish path (BtrLog recipe,
/// ROADMAP item 1). All defaults preserve the pre-group-commit behavior:
/// every publish flushes its own group of one, synchronously.
struct WalOptions {
  /// Master switch. Off = each publish is its own commit group (identical
  /// latency profile and semantics to the ungrouped broker); on = the
  /// flush leader batches every staged publish (up to group_max_entries)
  /// into one flush, acking the whole group at once.
  bool group_commit = false;
  /// Max entries batch-serialized and installed per commit group.
  int64_t group_max_entries = 256;
  /// How long the flush leader lingers (us) waiting for the group to fill
  /// before flushing whatever is staged. 0 = never wait.
  int64_t flush_linger_us = 0;
  /// Simulated per-flush device latency (us): the fsync / replication RTT
  /// a real broker pays once per group, no matter how many entries the
  /// group carries. This is the knob that makes the batching win
  /// measurable (bench_ingest). 0 = off.
  int64_t sim_flush_latency_us = 0;
};

/// The WAL backbone service: a multi-channel durable pub/sub log, standing
/// in for Kafka/Pulsar (Section 3.3). Channels are ordered, append-only
/// sequences of LogEntry addressed by offset; every subscriber tracks its
/// own position and can replay from any retained offset — the property the
/// whole "log as data" architecture rests on.
///
/// Write path (group commit): publishers stage entries into a per-channel
/// append buffer and block on a commit ticket. The first stager becomes the
/// flush leader: it takes the staged group, batch-serializes it into one
/// frame (the simulated device write), evaluates each entry's publish fence
/// at the commit decision, installs the accepted entries as one immutable
/// chunk, and acks every waiter in the batch at once. The append buffer is
/// unlocked during the flush, so group N+1 fills while group N flushes
/// (pipelined flush-and-ack); publishers are never serialized behind more
/// than one flush latency.
///
/// Read path (wait-free cursors): committed entries live in an immutable
/// chunk list published through an atomic snapshot pointer. Subscribers
/// poll by loading the snapshot — no channel mutex, no contention with
/// publishers or truncation. TruncateBefore installs a new snapshot and
/// never blocks or waits for readers: superseded snapshots are *retired*,
/// and a writer frees the retired list the next time it observes the
/// channel's reader count at zero (an epoch-style grace period; readers
/// announce themselves with one wait-free fetch_add per poll).
///
/// Durability note: in the paper the broker replicates to cloud storage; in
/// this in-process reproduction the broker's own memory is the durability
/// domain (node failures are simulated by destroying node objects, never the
/// broker), and retention is bounded only by TruncateBefore(), which models
/// the user-configured log expiration of Section 4.3.
class MessageQueue {
 public:
  class Subscription;

  /// Evaluated by the flush leader at the group-commit decision, after the
  /// flush and before any waiter in the group is acked. A non-OK fence
  /// excludes the entry from the group: it is never installed, never
  /// visible to subscribers, and the publisher gets -1. This is how epoch
  /// fencing (PR 4) lives INSIDE the commit, not before it: a publisher
  /// superseded while its entry sat in the append buffer is still refused.
  using PublishFence = std::function<Status()>;

  MessageQueue() = default;
  explicit MessageQueue(const WalOptions& options) { SetOptions(options); }
  MessageQueue(const MessageQueue&) = delete;
  MessageQueue& operator=(const MessageQueue&) = delete;

  /// Reconfigures the publish path. Safe to call while traffic is flowing
  /// (fields are atomics; each flush reads a consistent-enough view).
  void SetOptions(const WalOptions& options);

  /// Appends to `channel` (auto-created) and wakes subscribers. Returns the
  /// entry's offset, or -1 when the publish failed (broker shut down, an
  /// injected `mq.publish` fault, or a refused fence). Blocks until the
  /// entry's commit group has flushed; the ack and the install are atomic
  /// per group.
  ///
  /// `fence` (optional) is checked at the commit decision — see
  /// PublishFence. On refusal, the fence's status is copied to
  /// `fence_status` when non-null (OK there + -1 here means the broker
  /// itself refused: shutdown or fault).
  int64_t Publish(const std::string& channel, LogEntry entry);
  int64_t Publish(const std::string& channel, LogEntry entry,
                  const PublishFence& fence, Status* fence_status = nullptr);

  /// Creates a subscription starting at `position`.
  std::shared_ptr<Subscription> Subscribe(const std::string& channel,
                                          SubscribePosition position);
  /// Creates a subscription starting at an explicit offset (replay).
  std::shared_ptr<Subscription> SubscribeAt(const std::string& channel,
                                            int64_t offset);

  /// Offset one past the last published entry (0 for empty/unknown channel).
  int64_t EndOffset(const std::string& channel) const;
  /// Oldest retained offset.
  int64_t BeginOffset(const std::string& channel) const;

  /// Drops entries with offset < `offset` (log expiration). Offsets of
  /// retained entries are unchanged. The max LSN dropped (overall, and of
  /// kDelete entries specifically) is recorded so crash recovery can tell a
  /// safe truncation (everything dropped was archived) from data loss.
  /// Never blocks readers: the new snapshot is installed atomically and
  /// in-flight polls finish against the old one.
  void TruncateBefore(const std::string& channel, int64_t offset);

  /// Highest LSN ever truncated out of `channel` (0 = nothing truncated).
  /// Recovery compares this against the archived-segment floor: a truncated
  /// LSN above the floor means acked writes are unrecoverable (DataLoss).
  Timestamp TruncatedBelowTs(const std::string& channel) const;
  /// Same, restricted to kDelete entries. Deletes are never archived in
  /// binlogs, so recovery flags truncated deletes above the floor.
  Timestamp TruncatedDeleteTs(const std::string& channel) const;

  /// Offset of the first retained entry with LSN >= `ts` (EndOffset if
  /// none). Entries are near-LSN-ordered per channel (one TSO; concurrent
  /// publishers can interleave), so the search walks back over the
  /// channel's recorded worst-case inversion window — no entry with
  /// LSN >= ts is ever skipped, however wide the interleaving was.
  int64_t FirstOffsetAtOrAfter(const std::string& channel, Timestamp ts) const;

  std::vector<std::string> ListChannels(const std::string& prefix) const;

  /// Wakes every blocked subscriber and publisher. In-flight commit groups
  /// are refused at their commit decision (a publish racing Shutdown never
  /// acks, and never installs after the broadcast); subsequent polls return
  /// what remains and then empty — immediately, never burning their timeout.
  void Shutdown();

  bool IsShutdown() const {
    return shutdown_.load(std::memory_order_acquire);
  }

 private:
  static constexpr int64_t kTicketPending = -2;
  /// Small committed groups are consolidated into the previous tail chunk
  /// (copy-on-write) so chunk count stays ~entries/kMinChunkEntries even
  /// with group commit off (groups of one).
  static constexpr int64_t kMinChunkEntries = 64;

  /// One immutable run of committed entries (one commit group, possibly
  /// consolidated with the previous tail). Never mutated after install.
  struct Chunk {
    int64_t first_offset = 0;  ///< Offset of entries[0].
    std::vector<std::shared_ptr<const LogEntry>> entries;
  };

  /// Immutable view of a channel's committed state. Readers operate on one
  /// loaded snapshot end to end; writers install a fresh snapshot (sharing
  /// chunk pointers) under the channel mutex.
  struct Snapshot {
    int64_t begin_offset = 0;  ///< Oldest retained offset.
    int64_t end_offset = 0;    ///< One past the last committed offset.
    Timestamp truncated_ts = 0;         ///< Max LSN dropped by truncation.
    Timestamp truncated_delete_ts = 0;  ///< Max kDelete LSN dropped.
    /// Worst observed LSN inversion: max over committed entries of
    /// (running max LSN at install) - (entry LSN). FirstOffsetAtOrAfter's
    /// walk-back bound.
    Timestamp max_inversion = 0;
    std::vector<std::shared_ptr<const Chunk>> chunks;  ///< By first_offset.
  };

  /// A publisher's commit ticket: resolved by the flush leader.
  struct Ticket {
    int64_t offset = kTicketPending;  ///< -1 refused, >= 0 committed.
    Status fence_status;              ///< Why the fence refused, if it did.
  };

  struct Pending {
    std::shared_ptr<const LogEntry> entry;
    const PublishFence* fence = nullptr;  ///< Lives on the blocked
                                          ///< publisher's stack.
    std::shared_ptr<Ticket> ticket;
  };

  struct ChannelState {
    ChannelState() {
      snap_owner = std::make_shared<const Snapshot>();
      snap_raw.store(snap_owner.get(), std::memory_order_relaxed);
    }

    mutable std::mutex mu;  ///< Guards pending/flusher_active/installs.
    std::condition_variable data_cv;  ///< Wakes blocked pollers.
    std::condition_variable ack_cv;   ///< Wakes publishers awaiting commit
                                      ///< (and the lingering leader).
    std::vector<Pending> pending;     ///< The filling group (N+1).
    bool flusher_active = false;      ///< A leader is draining pending.
    Timestamp max_lsn_seen = 0;       ///< Running max LSN (flusher-owned,
                                      ///< under mu).
    /// Committed view. Writers replace `snap_owner` under `mu` (via
    /// InstallSnapshot) and publish the raw pointer through `snap_raw`;
    /// readers go through SnapRef and never touch `mu`. A superseded
    /// owner parks in `retired` until a writer observes
    /// `active_readers == 0` strictly after an install — at that instant
    /// no reader can still hold a retired pointer (any reader announcing
    /// itself later loads the new snapshot), so the grace period has
    /// passed and the retired list is freed.
    std::shared_ptr<const Snapshot> snap_owner;            ///< Under mu.
    std::vector<std::shared_ptr<const Snapshot>> retired;  ///< Under mu.
    std::atomic<const Snapshot*> snap_raw{nullptr};
    mutable std::atomic<int64_t> active_readers{0};
  };

  /// Wait-free reader guard: announces the reader (one fetch_add), loads
  /// the current snapshot pointer, and keeps writers from freeing it until
  /// the matching fetch_sub. The seq_cst pairing of the reader's
  /// (announce, load) with the writer's (install, readers == 0 check) is
  /// what makes reclamation sound: if the writer saw zero readers after
  /// installing, every reader that announces later must load the new
  /// snapshot, so everything retired earlier is unreachable.
  ///
  /// (Deliberately hand-rolled instead of std::atomic<shared_ptr>: the
  /// libstdc++ implementation releases its internal spinlock with a
  /// relaxed RMW, which ThreadSanitizer cannot derive happens-before
  /// through, flagging every store/load pair as a race.)
  class SnapRef {
   public:
    explicit SnapRef(const ChannelState* state) : state_(state) {
      state_->active_readers.fetch_add(1, std::memory_order_seq_cst);
      snap_ = state_->snap_raw.load(std::memory_order_seq_cst);
    }
    ~SnapRef() {
      state_->active_readers.fetch_sub(1, std::memory_order_release);
    }
    SnapRef(const SnapRef&) = delete;
    SnapRef& operator=(const SnapRef&) = delete;

    const Snapshot& operator*() const { return *snap_; }
    const Snapshot* operator->() const { return snap_; }

   private:
    const ChannelState* state_;
    const Snapshot* snap_;
  };

  /// Publishes `next` as the channel's committed view (caller holds
  /// state->mu). Retires the superseded snapshot and frees the retired
  /// list if no reader is active strictly after the install — the
  /// grace-period check that keeps installs (and TruncateBefore) from
  /// ever waiting on readers.
  static void InstallSnapshot(ChannelState* state,
                              std::shared_ptr<const Snapshot> next);

  ChannelState* GetOrCreate(const std::string& channel);
  const ChannelState* Find(const std::string& channel) const;

  /// Entry at logical `offset` within `snap` (must be in
  /// [begin_offset, end_offset)).
  static const std::shared_ptr<const LogEntry>& EntryAt(const Snapshot& snap,
                                                        int64_t offset);

  /// The leader side of group commit: drains `state->pending`, one group
  /// per iteration, flushing outside the lock. Enters and leaves with `lk`
  /// held; clears flusher_active on exit.
  void RunFlusher(ChannelState* state, std::unique_lock<std::mutex>& lk);

  mutable std::mutex channels_mu_;
  std::map<std::string, std::unique_ptr<ChannelState>> channels_;
  std::atomic<bool> shutdown_{false};

  // Publish-path knobs (see WalOptions); atomics so SetOptions is safe
  // against in-flight traffic.
  std::atomic<bool> group_commit_{false};
  std::atomic<int64_t> group_max_entries_{256};
  std::atomic<int64_t> flush_linger_us_{0};
  std::atomic<int64_t> sim_flush_latency_us_{0};

  friend class Subscription;
};

/// A positioned reader over one channel. Not thread-safe (one consumer per
/// subscription, the Kafka consumer model); create one per consuming thread.
///
/// Polls are wait-free with respect to publishers and truncation: they read
/// an atomic snapshot of the channel's immutable chunk list and touch no
/// lock unless they choose to block for data.
class MessageQueue::Subscription {
 public:
  /// Reads up to `max_entries` starting at the current position, waiting up
  /// to `timeout` for data. Advances the position past returned entries.
  std::vector<std::shared_ptr<const LogEntry>> Poll(
      size_t max_entries, std::chrono::milliseconds timeout);

  /// Non-blocking variant.
  std::vector<std::shared_ptr<const LogEntry>> TryPoll(size_t max_entries);

  int64_t position() const { return position_; }
  void Seek(int64_t offset) { position_ = offset; }
  const std::string& channel() const { return channel_; }

  /// Cumulative count of entries this subscription can never read because
  /// TruncateBefore dropped them while the cursor lagged. A slow consumer
  /// whose position was snapped forward sees this grow (and the
  /// `wal.subscriber_gap` metric bump) instead of a silent skip, so
  /// recovery paths can tell replay-from-floor from a clean tail.
  int64_t missed() const { return missed_; }

  /// True once the broker shut down: an empty Poll() is then final, not a
  /// timeout, and the consumer loop should exit.
  bool closed() const { return mq_->IsShutdown(); }

 private:
  friend class MessageQueue;
  Subscription(MessageQueue* mq, ChannelState* state, std::string channel,
               int64_t position)
      : mq_(mq), state_(state), channel_(std::move(channel)),
        position_(position) {}

  /// Reads up to `max_entries` from `snap` at the current position,
  /// surfacing any truncation gap (missed_ / wal.subscriber_gap) first.
  std::vector<std::shared_ptr<const LogEntry>> Drain(const Snapshot& snap,
                                                     size_t max_entries);

  MessageQueue* mq_;
  ChannelState* state_;
  std::string channel_;
  int64_t position_;
  int64_t missed_ = 0;
};

}  // namespace manu

#endif  // MANU_WAL_MQ_H_
