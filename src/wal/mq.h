#ifndef MANU_WAL_MQ_H_
#define MANU_WAL_MQ_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "wal/message.h"

namespace manu {

/// Where a new subscription starts reading.
enum class SubscribePosition { kEarliest, kLatest };

/// The WAL backbone service: a multi-channel durable pub/sub log, standing
/// in for Kafka/Pulsar (Section 3.3). Channels are ordered, append-only
/// sequences of LogEntry addressed by offset; every subscriber tracks its
/// own position and can replay from any retained offset — the property the
/// whole "log as data" architecture rests on.
///
/// Durability note: in the paper the broker replicates to cloud storage; in
/// this in-process reproduction the broker's own memory is the durability
/// domain (node failures are simulated by destroying node objects, never the
/// broker), and retention is bounded only by TruncateBefore(), which models
/// the user-configured log expiration of Section 4.3.
class MessageQueue {
 public:
  class Subscription;

  MessageQueue() = default;
  MessageQueue(const MessageQueue&) = delete;
  MessageQueue& operator=(const MessageQueue&) = delete;

  /// Appends to `channel` (auto-created) and wakes subscribers. Returns the
  /// entry's offset, or -1 when the publish failed (broker shut down, or an
  /// injected `mq.publish` fault).
  int64_t Publish(const std::string& channel, LogEntry entry);

  /// Creates a subscription starting at `position`.
  std::shared_ptr<Subscription> Subscribe(const std::string& channel,
                                          SubscribePosition position);
  /// Creates a subscription starting at an explicit offset (replay).
  std::shared_ptr<Subscription> SubscribeAt(const std::string& channel,
                                            int64_t offset);

  /// Offset one past the last published entry (0 for empty/unknown channel).
  int64_t EndOffset(const std::string& channel) const;
  /// Oldest retained offset.
  int64_t BeginOffset(const std::string& channel) const;

  /// Drops entries with offset < `offset` (log expiration). Offsets of
  /// retained entries are unchanged. The max LSN dropped (overall, and of
  /// kDelete entries specifically) is recorded so crash recovery can tell a
  /// safe truncation (everything dropped was archived) from data loss.
  void TruncateBefore(const std::string& channel, int64_t offset);

  /// Highest LSN ever truncated out of `channel` (0 = nothing truncated).
  /// Recovery compares this against the archived-segment floor: a truncated
  /// LSN above the floor means acked writes are unrecoverable (DataLoss).
  Timestamp TruncatedBelowTs(const std::string& channel) const;
  /// Same, restricted to kDelete entries. Deletes are never archived in
  /// binlogs, so recovery flags truncated deletes above the floor.
  Timestamp TruncatedDeleteTs(const std::string& channel) const;

  /// Offset of the first retained entry with LSN >= `ts` (EndOffset if
  /// none). Entries are LSN-ordered per channel, so this supports
  /// timestamp-based retention ("delete outdated log", Section 4.3).
  int64_t FirstOffsetAtOrAfter(const std::string& channel, Timestamp ts) const;

  std::vector<std::string> ListChannels(const std::string& prefix) const;

  /// Wakes every blocked subscriber; subsequent polls return what remains
  /// and then empty — immediately, never burning their timeout (a consumer
  /// looping on Poll drains and exits without waiting out poll_timeout_ms
  /// per iteration).
  void Shutdown();

  bool IsShutdown() const {
    return shutdown_.load(std::memory_order_acquire);
  }

 private:
  struct ChannelState {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<std::shared_ptr<const LogEntry>> entries;
    int64_t base_offset = 0;  ///< Offset of entries.front().
    Timestamp truncated_ts = 0;         ///< Max LSN dropped by truncation.
    Timestamp truncated_delete_ts = 0;  ///< Max kDelete LSN dropped.
  };

  ChannelState* GetOrCreate(const std::string& channel);
  const ChannelState* Find(const std::string& channel) const;

  mutable std::mutex channels_mu_;
  std::map<std::string, std::unique_ptr<ChannelState>> channels_;
  std::atomic<bool> shutdown_{false};

  friend class Subscription;
};

/// A positioned reader over one channel. Not thread-safe (one consumer per
/// subscription, the Kafka consumer model); create one per consuming thread.
class MessageQueue::Subscription {
 public:
  /// Reads up to `max_entries` starting at the current position, waiting up
  /// to `timeout` for data. Advances the position past returned entries.
  std::vector<std::shared_ptr<const LogEntry>> Poll(
      size_t max_entries, std::chrono::milliseconds timeout);

  /// Non-blocking variant.
  std::vector<std::shared_ptr<const LogEntry>> TryPoll(size_t max_entries);

  int64_t position() const {
    std::lock_guard<std::mutex> lk(state_->mu);
    return position_;
  }
  void Seek(int64_t offset) {
    std::lock_guard<std::mutex> lk(state_->mu);
    position_ = offset;
  }
  const std::string& channel() const { return channel_; }

  /// True once the broker shut down: an empty Poll() is then final, not a
  /// timeout, and the consumer loop should exit.
  bool closed() const { return mq_->IsShutdown(); }

 private:
  friend class MessageQueue;
  Subscription(MessageQueue* mq, ChannelState* state, std::string channel,
               int64_t position)
      : mq_(mq), state_(state), channel_(std::move(channel)),
        position_(position) {}

  MessageQueue* mq_;
  ChannelState* state_;
  std::string channel_;
  int64_t position_;
};

}  // namespace manu

#endif  // MANU_WAL_MQ_H_
