#include "wal/mq.h"

#include <algorithm>

#include "common/failpoint.h"

namespace manu {

MessageQueue::ChannelState* MessageQueue::GetOrCreate(
    const std::string& channel) {
  std::lock_guard<std::mutex> lk(channels_mu_);
  auto& slot = channels_[channel];
  if (slot == nullptr) slot = std::make_unique<ChannelState>();
  return slot.get();
}

const MessageQueue::ChannelState* MessageQueue::Find(
    const std::string& channel) const {
  std::lock_guard<std::mutex> lk(channels_mu_);
  auto it = channels_.find(channel);
  return it == channels_.end() ? nullptr : it->second.get();
}

int64_t MessageQueue::Publish(const std::string& channel, LogEntry entry) {
  // Publish's int64_t signature carries failure as -1: injected mq.publish
  // faults (delay policies just stall, like a slow broker) and publishes
  // racing Shutdown() both refuse the entry, and callers must not ack.
  Status fp;
  MANU_FAILPOINT_CAPTURE("mq.publish", fp);
  if (!fp.ok() || IsShutdown()) return -1;
  ChannelState* state = GetOrCreate(channel);
  int64_t offset;
  {
    std::lock_guard<std::mutex> lk(state->mu);
    offset = state->base_offset + static_cast<int64_t>(state->entries.size());
    state->entries.push_back(
        std::make_shared<const LogEntry>(std::move(entry)));
  }
  state->cv.notify_all();
  return offset;
}

std::shared_ptr<MessageQueue::Subscription> MessageQueue::Subscribe(
    const std::string& channel, SubscribePosition position) {
  ChannelState* state = GetOrCreate(channel);
  int64_t offset;
  {
    std::lock_guard<std::mutex> lk(state->mu);
    offset = position == SubscribePosition::kEarliest
                 ? state->base_offset
                 : state->base_offset +
                       static_cast<int64_t>(state->entries.size());
  }
  return std::shared_ptr<Subscription>(
      new Subscription(this, state, channel, offset));
}

std::shared_ptr<MessageQueue::Subscription> MessageQueue::SubscribeAt(
    const std::string& channel, int64_t offset) {
  ChannelState* state = GetOrCreate(channel);
  return std::shared_ptr<Subscription>(
      new Subscription(this, state, channel, offset));
}

int64_t MessageQueue::EndOffset(const std::string& channel) const {
  const ChannelState* state = Find(channel);
  if (state == nullptr) return 0;
  std::lock_guard<std::mutex> lk(state->mu);
  return state->base_offset + static_cast<int64_t>(state->entries.size());
}

int64_t MessageQueue::BeginOffset(const std::string& channel) const {
  const ChannelState* state = Find(channel);
  if (state == nullptr) return 0;
  std::lock_guard<std::mutex> lk(state->mu);
  return state->base_offset;
}

void MessageQueue::TruncateBefore(const std::string& channel,
                                  int64_t offset) {
  ChannelState* state = GetOrCreate(channel);
  std::lock_guard<std::mutex> lk(state->mu);
  while (!state->entries.empty() && state->base_offset < offset) {
    const LogEntry& dropped = *state->entries.front();
    state->truncated_ts = std::max(state->truncated_ts, dropped.timestamp);
    if (dropped.type == LogEntryType::kDelete) {
      state->truncated_delete_ts =
          std::max(state->truncated_delete_ts, dropped.timestamp);
    }
    state->entries.pop_front();
    ++state->base_offset;
  }
}

Timestamp MessageQueue::TruncatedBelowTs(const std::string& channel) const {
  const ChannelState* state = Find(channel);
  if (state == nullptr) return 0;
  std::lock_guard<std::mutex> lk(state->mu);
  return state->truncated_ts;
}

Timestamp MessageQueue::TruncatedDeleteTs(const std::string& channel) const {
  const ChannelState* state = Find(channel);
  if (state == nullptr) return 0;
  std::lock_guard<std::mutex> lk(state->mu);
  return state->truncated_delete_ts;
}

int64_t MessageQueue::FirstOffsetAtOrAfter(const std::string& channel,
                                           Timestamp ts) const {
  const ChannelState* state = Find(channel);
  if (state == nullptr) return 0;
  std::lock_guard<std::mutex> lk(state->mu);
  // Entries are near-LSN-ordered (one TSO; concurrent publishers can invert
  // adjacent entries by microseconds): binary search, then walk back over
  // any local inversions so no entry with LSN >= ts is dropped.
  int64_t lo = 0, hi = static_cast<int64_t>(state->entries.size());
  while (lo < hi) {
    const int64_t mid = (lo + hi) / 2;
    if (state->entries[mid]->timestamp < ts) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  while (lo > 0 && state->entries[lo - 1]->timestamp >= ts) --lo;
  return state->base_offset + lo;
}

std::vector<std::string> MessageQueue::ListChannels(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lk(channels_mu_);
  std::vector<std::string> out;
  for (const auto& [name, _] : channels_) {
    if (name.compare(0, prefix.size(), prefix) == 0) out.push_back(name);
  }
  return out;
}

void MessageQueue::Shutdown() {
  std::lock_guard<std::mutex> lk(channels_mu_);
  shutdown_.store(true, std::memory_order_release);
  for (auto& [_, state] : channels_) state->cv.notify_all();
}

std::vector<std::shared_ptr<const LogEntry>>
MessageQueue::Subscription::Poll(size_t max_entries,
                                 std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lk(state_->mu);
  const auto have_data = [&] {
    return position_ < state_->base_offset +
                           static_cast<int64_t>(state_->entries.size());
  };
  // A shut-down broker wakes the wait immediately: consumers drain whatever
  // remains and then see empty polls without burning `timeout` per call
  // (distinguish "no data yet" from "no data ever" via closed()).
  if (!have_data()) {
    state_->cv.wait_for(lk, timeout,
                        [&] { return have_data() || mq_->IsShutdown(); });
  }
  std::vector<std::shared_ptr<const LogEntry>> out;
  // A truncated-away position snaps forward to the oldest retained entry.
  if (position_ < state_->base_offset) position_ = state_->base_offset;
  while (out.size() < max_entries && have_data()) {
    out.push_back(state_->entries[position_ - state_->base_offset]);
    ++position_;
  }
  return out;
}

std::vector<std::shared_ptr<const LogEntry>>
MessageQueue::Subscription::TryPoll(size_t max_entries) {
  return Poll(max_entries, std::chrono::milliseconds(0));
}

}  // namespace manu
