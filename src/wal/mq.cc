#include "wal/mq.h"

#include <algorithm>
#include <thread>

#include "common/failpoint.h"
#include "common/metrics.h"

namespace manu {

namespace {

/// Hot-path counters, resolved once (the registry lookup takes a lock).
struct WalCounters {
  Counter* publishes;
  Counter* refused;
  Counter* group_commits;
  Counter* group_entries;
  Counter* flush_bytes;
  Counter* subscriber_gap;

  static const WalCounters& Get() {
    static WalCounters c = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      WalCounters out;
      out.publishes = reg.GetCounter("wal.publishes");
      out.refused = reg.GetCounter("wal.publish_refused");
      out.group_commits = reg.GetCounter("wal.group_commits");
      out.group_entries = reg.GetCounter("wal.group_entries");
      out.flush_bytes = reg.GetCounter("wal.flush_bytes");
      out.subscriber_gap = reg.GetCounter("wal.subscriber_gap");
      return out;
    }();
    return c;
  }
};

}  // namespace

void MessageQueue::SetOptions(const WalOptions& options) {
  group_commit_.store(options.group_commit, std::memory_order_relaxed);
  group_max_entries_.store(std::max<int64_t>(1, options.group_max_entries),
                           std::memory_order_relaxed);
  flush_linger_us_.store(options.flush_linger_us, std::memory_order_relaxed);
  sim_flush_latency_us_.store(options.sim_flush_latency_us,
                              std::memory_order_relaxed);
}

MessageQueue::ChannelState* MessageQueue::GetOrCreate(
    const std::string& channel) {
  std::lock_guard<std::mutex> lk(channels_mu_);
  auto& slot = channels_[channel];
  if (slot == nullptr) slot = std::make_unique<ChannelState>();
  return slot.get();
}

const MessageQueue::ChannelState* MessageQueue::Find(
    const std::string& channel) const {
  std::lock_guard<std::mutex> lk(channels_mu_);
  auto it = channels_.find(channel);
  return it == channels_.end() ? nullptr : it->second.get();
}

void MessageQueue::InstallSnapshot(ChannelState* state,
                                   std::shared_ptr<const Snapshot> next) {
  state->retired.push_back(std::move(state->snap_owner));
  state->snap_owner = std::move(next);
  // seq_cst store-then-load against SnapRef's seq_cst fetch_add-then-load:
  // this is the store-buffer litmus, and anything weaker would let the
  // writer read a stale zero while a reader holds a retired snapshot.
  state->snap_raw.store(state->snap_owner.get(), std::memory_order_seq_cst);
  if (state->active_readers.load(std::memory_order_seq_cst) == 0) {
    state->retired.clear();
  }
}

const std::shared_ptr<const LogEntry>& MessageQueue::EntryAt(
    const Snapshot& snap, int64_t offset) {
  // Chunks are sorted by first_offset; find the last chunk starting at or
  // before `offset`.
  auto it = std::upper_bound(
      snap.chunks.begin(), snap.chunks.end(), offset,
      [](int64_t off, const std::shared_ptr<const Chunk>& c) {
        return off < c->first_offset;
      });
  const Chunk& chunk = **std::prev(it);
  return chunk.entries[static_cast<size_t>(offset - chunk.first_offset)];
}

int64_t MessageQueue::Publish(const std::string& channel, LogEntry entry) {
  return Publish(channel, std::move(entry), PublishFence());
}

int64_t MessageQueue::Publish(const std::string& channel, LogEntry entry,
                              const PublishFence& fence,
                              Status* fence_status) {
  // Publish's int64_t signature carries failure as -1: injected mq.publish
  // faults (delay policies just stall, like a slow broker), publishes
  // racing Shutdown(), and refused fences all refuse the entry, and
  // callers must not ack.
  Status fp;
  MANU_FAILPOINT_CAPTURE("mq.publish", fp);
  if (!fp.ok() || IsShutdown()) return -1;

  ChannelState* state = GetOrCreate(channel);
  auto ticket = std::make_shared<Ticket>();
  std::unique_lock<std::mutex> lk(state->mu);
  // Re-check under the lock: staging after the Shutdown broadcast would let
  // an entry be installed and acked post-shutdown (the old TOCTOU). The
  // commit decision in RunFlusher re-checks once more for entries that were
  // already staged when Shutdown fired.
  if (IsShutdown()) return -1;
  Pending p;
  p.entry = std::make_shared<const LogEntry>(std::move(entry));
  p.fence = fence ? &fence : nullptr;
  p.ticket = ticket;
  state->pending.push_back(std::move(p));

  if (!state->flusher_active) {
    // Leader: flush staged groups (including our own entry, which is
    // pending[0] — the buffer was empty when we claimed leadership) until
    // the buffer drains. Followers stage into the buffer while we flush.
    state->flusher_active = true;
    RunFlusher(state, lk);
  } else {
    // Follower: the group fill may satisfy a lingering leader.
    if (static_cast<int64_t>(state->pending.size()) >=
        group_max_entries_.load(std::memory_order_relaxed)) {
      state->ack_cv.notify_all();
    }
    state->ack_cv.wait(lk, [&] { return ticket->offset != kTicketPending; });
  }
  lk.unlock();

  if (ticket->offset < 0) {
    WalCounters::Get().refused->Add(1);
    if (fence_status != nullptr) *fence_status = ticket->fence_status;
  } else {
    WalCounters::Get().publishes->Add(1);
  }
  return ticket->offset;
}

void MessageQueue::RunFlusher(ChannelState* state,
                              std::unique_lock<std::mutex>& lk) {
  const WalCounters& counters = WalCounters::Get();
  while (!state->pending.empty()) {
    const bool grouped = group_commit_.load(std::memory_order_relaxed);
    const int64_t group_max =
        grouped ? group_max_entries_.load(std::memory_order_relaxed) : 1;
    const int64_t linger_us = flush_linger_us_.load(std::memory_order_relaxed);
    if (grouped && linger_us > 0 &&
        static_cast<int64_t>(state->pending.size()) < group_max &&
        !IsShutdown()) {
      state->ack_cv.wait_for(
          lk, std::chrono::microseconds(linger_us), [&] {
            return static_cast<int64_t>(state->pending.size()) >= group_max ||
                   IsShutdown();
          });
    }
    const size_t take = std::min<size_t>(state->pending.size(),
                                         static_cast<size_t>(group_max));
    std::vector<Pending> group(
        std::make_move_iterator(state->pending.begin()),
        std::make_move_iterator(state->pending.begin() +
                                static_cast<int64_t>(take)));
    state->pending.erase(state->pending.begin(),
                         state->pending.begin() + static_cast<int64_t>(take));

    // --- Flush stage, outside the lock: group N+1 fills while this group
    // batch-serializes and pays the (simulated) device latency. ---
    lk.unlock();
    {
      std::vector<std::shared_ptr<const LogEntry>> entries;
      entries.reserve(group.size());
      for (const Pending& p : group) entries.push_back(p.entry);
      const std::string frame = SerializeGroup(entries);
      counters.flush_bytes->Add(static_cast<int64_t>(frame.size()));
    }
    const int64_t sim_us =
        sim_flush_latency_us_.load(std::memory_order_relaxed);
    if (sim_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(sim_us));
    }
    // Commit decision, part 1: fences. Evaluated after the flush and before
    // any ack, outside the channel lock (a fence consults the lease
    // manager / meta store). A refused fence excludes the entry from the
    // group — it is never installed and its publisher sees -1. The
    // fence_status write is safe here (publishers read it only after their
    // ticket resolves, which happens under the lock below); the offset
    // itself is only ever resolved under the lock.
    std::vector<bool> fenced(group.size(), false);
    for (size_t i = 0; i < group.size(); ++i) {
      if (group[i].fence != nullptr) {
        Status fs = (*group[i].fence)();
        if (!fs.ok()) {
          group[i].ticket->fence_status = std::move(fs);
          fenced[i] = true;
        }
      }
    }
    lk.lock();

    // Commit decision, part 2: shutdown. Entries staged before the
    // broadcast but not yet committed are refused — "publishes racing
    // Shutdown refuse the entry" — so nothing is ever installed after
    // Shutdown() returns.
    const bool refused_all = IsShutdown();
    std::vector<std::shared_ptr<const LogEntry>> accepted;
    accepted.reserve(group.size());
    if (!refused_all) {
      for (size_t i = 0; i < group.size(); ++i) {
        if (!fenced[i]) accepted.push_back(group[i].entry);
      }
    }
    if (!accepted.empty()) {
      auto next = std::make_shared<Snapshot>(*state->snap_owner);
      int64_t offset = next->end_offset;
      // Track the worst LSN inversion ever committed (concurrent
      // publishers interleave TSO timestamps); FirstOffsetAtOrAfter's
      // walk-back uses it as a sound bound.
      for (const auto& e : accepted) {
        if (state->max_lsn_seen > e->timestamp) {
          next->max_inversion = std::max(
              next->max_inversion, state->max_lsn_seen - e->timestamp);
        } else {
          state->max_lsn_seen = e->timestamp;
        }
      }
      auto chunk = std::make_shared<Chunk>();
      // Consolidate small tails copy-on-write so the chunk list stays
      // ~entries/kMinChunkEntries long even with group commit off. The
      // previous tail chunk is never mutated — old snapshots keep it.
      if (!next->chunks.empty() &&
          static_cast<int64_t>(next->chunks.back()->entries.size()) <
              kMinChunkEntries &&
          next->chunks.back()->first_offset >= next->begin_offset) {
        const Chunk& tail = *next->chunks.back();
        chunk->first_offset = tail.first_offset;
        chunk->entries = tail.entries;
        next->chunks.pop_back();
      } else {
        chunk->first_offset = offset;
      }
      chunk->entries.insert(chunk->entries.end(), accepted.begin(),
                            accepted.end());
      next->chunks.push_back(std::move(chunk));
      next->end_offset = offset + static_cast<int64_t>(accepted.size());
      InstallSnapshot(state, std::move(next));
      counters.group_commits->Add(1);
      counters.group_entries->Add(static_cast<int64_t>(accepted.size()));
      // Resolve accepted tickets in staging order; fenced ones are refused.
      for (size_t i = 0; i < group.size(); ++i) {
        group[i].ticket->offset = fenced[i] ? -1 : offset++;
      }
    } else {
      for (Pending& p : group) p.ticket->offset = -1;
    }
    // Ack the whole batch at once; wake pollers if anything was installed.
    lk.unlock();
    state->ack_cv.notify_all();
    if (!accepted.empty()) state->data_cv.notify_all();
    lk.lock();
  }
  state->flusher_active = false;
}

std::shared_ptr<MessageQueue::Subscription> MessageQueue::Subscribe(
    const std::string& channel, SubscribePosition position) {
  ChannelState* state = GetOrCreate(channel);
  SnapRef snap(state);
  const int64_t offset = position == SubscribePosition::kEarliest
                             ? snap->begin_offset
                             : snap->end_offset;
  return std::shared_ptr<Subscription>(
      new Subscription(this, state, channel, offset));
}

std::shared_ptr<MessageQueue::Subscription> MessageQueue::SubscribeAt(
    const std::string& channel, int64_t offset) {
  ChannelState* state = GetOrCreate(channel);
  return std::shared_ptr<Subscription>(
      new Subscription(this, state, channel, offset));
}

int64_t MessageQueue::EndOffset(const std::string& channel) const {
  const ChannelState* state = Find(channel);
  if (state == nullptr) return 0;
  return SnapRef(state)->end_offset;
}

int64_t MessageQueue::BeginOffset(const std::string& channel) const {
  const ChannelState* state = Find(channel);
  if (state == nullptr) return 0;
  return SnapRef(state)->begin_offset;
}

void MessageQueue::TruncateBefore(const std::string& channel,
                                  int64_t offset) {
  ChannelState* state = GetOrCreate(channel);
  std::lock_guard<std::mutex> lk(state->mu);
  const Snapshot& old = *state->snap_owner;
  const int64_t new_begin =
      std::min(std::max(offset, old.begin_offset), old.end_offset);
  if (new_begin <= old.begin_offset) return;
  auto next = std::make_shared<Snapshot>(old);
  for (int64_t off = old.begin_offset; off < new_begin; ++off) {
    const LogEntry& dropped = *EntryAt(old, off);
    next->truncated_ts = std::max(next->truncated_ts, dropped.timestamp);
    if (dropped.type == LogEntryType::kDelete) {
      next->truncated_delete_ts =
          std::max(next->truncated_delete_ts, dropped.timestamp);
    }
  }
  next->begin_offset = new_begin;
  // Drop whole chunks that fell below the retention floor; a chunk
  // straddling the floor is kept (readers clamp to begin_offset) and goes
  // away once the floor passes its end.
  size_t keep_from = 0;
  while (keep_from < next->chunks.size()) {
    const Chunk& c = *next->chunks[keep_from];
    if (c.first_offset + static_cast<int64_t>(c.entries.size()) > new_begin) {
      break;
    }
    ++keep_from;
  }
  next->chunks.erase(next->chunks.begin(),
                     next->chunks.begin() + static_cast<int64_t>(keep_from));
  InstallSnapshot(state, std::move(next));
}

Timestamp MessageQueue::TruncatedBelowTs(const std::string& channel) const {
  const ChannelState* state = Find(channel);
  if (state == nullptr) return 0;
  return SnapRef(state)->truncated_ts;
}

Timestamp MessageQueue::TruncatedDeleteTs(const std::string& channel) const {
  const ChannelState* state = Find(channel);
  if (state == nullptr) return 0;
  return SnapRef(state)->truncated_delete_ts;
}

int64_t MessageQueue::FirstOffsetAtOrAfter(const std::string& channel,
                                           Timestamp ts) const {
  const ChannelState* state = Find(channel);
  if (state == nullptr) return 0;
  SnapRef snap(state);
  const int64_t begin = snap->begin_offset;
  const int64_t n = snap->end_offset - begin;
  // Entries are near-LSN-ordered (one TSO; concurrent publishers can
  // interleave): binary search as if sorted, then walk back over the
  // channel's recorded worst-case inversion window. The bound makes the
  // walk-back sound for ANY interleaving ever committed, not just
  // inversions adjacent to the probe: once an entry's LSN drops below
  // ts - max_inversion, no earlier entry can reach ts.
  int64_t lo = 0, hi = n;
  while (lo < hi) {
    const int64_t mid = (lo + hi) / 2;
    if (EntryAt(*snap, begin + mid)->timestamp < ts) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const Timestamp bound = snap->max_inversion;
  int64_t first = lo;
  for (int64_t i = lo; i > 0; --i) {
    const Timestamp t = EntryAt(*snap, begin + i - 1)->timestamp;
    if (t >= ts) {
      first = i - 1;
    } else if (ts > bound && t < ts - bound) {
      break;  // Everything earlier is provably < ts.
    }
  }
  return begin + first;
}

std::vector<std::string> MessageQueue::ListChannels(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lk(channels_mu_);
  std::vector<std::string> out;
  for (const auto& [name, _] : channels_) {
    if (name.compare(0, prefix.size(), prefix) == 0) out.push_back(name);
  }
  return out;
}

void MessageQueue::Shutdown() {
  std::vector<ChannelState*> states;
  {
    std::lock_guard<std::mutex> lk(channels_mu_);
    shutdown_.store(true, std::memory_order_release);
    for (auto& [_, state] : channels_) states.push_back(state.get());
  }
  for (ChannelState* state : states) {
    // Take the channel lock so a poller between its predicate check and its
    // wait cannot miss the wake; in-flight flush groups are refused at the
    // commit decision (which runs under this same lock, after the store
    // above).
    { std::lock_guard<std::mutex> lk(state->mu); }
    state->data_cv.notify_all();
    state->ack_cv.notify_all();
  }
}

std::vector<std::shared_ptr<const LogEntry>>
MessageQueue::Subscription::Poll(size_t max_entries,
                                 std::chrono::milliseconds timeout) {
  {
    SnapRef snap(state_);
    if (position_ < snap->end_offset || timeout.count() <= 0 ||
        mq_->IsShutdown()) {
      return Drain(*snap, max_entries);
    }
  }  // Guard released before blocking: a parked poller must not pin
     // retired snapshots for its whole timeout.
  {
    // Block for data. A shut-down broker wakes the wait immediately:
    // consumers drain whatever remains and then see empty polls without
    // burning `timeout` per call (distinguish "no data yet" from "no data
    // ever" via closed()). The predicate reads snap_owner, which writers
    // only replace under this same mutex.
    std::unique_lock<std::mutex> lk(state_->mu);
    state_->data_cv.wait_for(lk, timeout, [&] {
      return position_ < state_->snap_owner->end_offset || mq_->IsShutdown();
    });
  }
  SnapRef snap(state_);
  return Drain(*snap, max_entries);
}

std::vector<std::shared_ptr<const LogEntry>>
MessageQueue::Subscription::Drain(const Snapshot& snap, size_t max_entries) {
  // A truncated-away position snaps forward to the oldest retained entry —
  // loudly: the skipped entries are gone for this subscriber, and recovery
  // paths must be able to tell this from a clean tail.
  if (position_ < snap.begin_offset) {
    const int64_t gap = snap.begin_offset - position_;
    missed_ += gap;
    WalCounters::Get().subscriber_gap->Add(gap);
    position_ = snap.begin_offset;
  }
  std::vector<std::shared_ptr<const LogEntry>> out;
  const int64_t end =
      std::min(snap.end_offset, position_ + static_cast<int64_t>(max_entries));
  out.reserve(static_cast<size_t>(std::max<int64_t>(0, end - position_)));
  while (position_ < end) {
    out.push_back(EntryAt(snap, position_));
    ++position_;
  }
  return out;
}

std::vector<std::shared_ptr<const LogEntry>>
MessageQueue::Subscription::TryPoll(size_t max_entries) {
  return Poll(max_entries, std::chrono::milliseconds(0));
}

}  // namespace manu
