#ifndef MANU_WAL_TSO_H_
#define MANU_WAL_TSO_H_

#include <atomic>
#include <mutex>

#include "common/types.h"

namespace manu {

/// Central time service oracle (Section 3.4). Issues strictly increasing
/// hybrid timestamps: the physical part tracks wall-clock milliseconds (so
/// users can express staleness bounds in seconds), the logical part orders
/// events within a millisecond. Used as the LSN of every logged request.
class Tso {
 public:
  Tso() = default;

  /// Allocates the next timestamp. Thread-safe; strictly monotonic.
  Timestamp Allocate();

  /// Allocates a contiguous block of `n` timestamps and returns the first
  /// (loggers stamp whole insert batches with one TSO round trip).
  Timestamp AllocateBlock(uint32_t n);

  /// The most recent timestamp issued (0 if none yet).
  Timestamp Last() const { return last_.load(std::memory_order_acquire); }

 private:
  std::mutex mu_;
  uint64_t physical_ = 0;
  uint64_t logical_ = 0;
  std::atomic<Timestamp> last_{0};
};

}  // namespace manu

#endif  // MANU_WAL_TSO_H_
