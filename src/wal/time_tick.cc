#include "wal/time_tick.h"

namespace manu {

TimeTickEmitter::TimeTickEmitter(MessageQueue* mq, Tso* tso,
                                 int64_t interval_ms)
    : mq_(mq), tso_(tso), interval_ms_(interval_ms) {
  thread_ = std::thread([this] { Run(); });
}

TimeTickEmitter::~TimeTickEmitter() { Stop(); }

void TimeTickEmitter::RegisterChannel(const std::string& channel,
                                      CollectionId collection,
                                      ShardId shard) {
  std::lock_guard<std::mutex> lk(mu_);
  channels_[channel] = {collection, shard};
}

void TimeTickEmitter::UnregisterChannel(const std::string& channel) {
  std::lock_guard<std::mutex> lk(mu_);
  channels_.erase(channel);
}

void TimeTickEmitter::TickNow() {
  std::map<std::string, Target> channels;
  {
    std::lock_guard<std::mutex> lk(mu_);
    channels = channels_;
  }
  for (const auto& [channel, target] : channels) {
    // One timestamp per channel: the tick must be >= every LSN already
    // published there, which holds because the Tso is globally monotonic
    // and loggers publish under the same oracle.
    LogEntry tick;
    tick.type = LogEntryType::kTimeTick;
    tick.timestamp = tso_->Allocate();
    tick.collection = target.collection;
    tick.shard = target.shard;
    mq_->Publish(channel, std::move(tick));
  }
}

void TimeTickEmitter::Stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void TimeTickEmitter::Run() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    cv_.wait_for(lk, std::chrono::milliseconds(interval_ms_),
                 [&] { return stop_; });
    if (stop_) break;
    lk.unlock();
    TickNow();
    lk.lock();
  }
}

}  // namespace manu
