#ifndef MANU_WAL_MESSAGE_H_
#define MANU_WAL_MESSAGE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/result.h"
#include "common/types.h"

namespace manu {

/// Everything that changes system state goes through the log (Section 3.3):
/// data manipulation (insert/delete), data definition (DDL), and system
/// coordination messages. Search requests are read-only and never logged.
enum class LogEntryType : uint8_t {
  // Data manipulation (hashed across shard channels).
  kInsert = 0,
  kDelete = 1,
  // Event-time progress marker, periodically emitted into *every* channel.
  kTimeTick = 2,
  // Data definition (dedicated DDL channel).
  kCreateCollection = 3,
  kDropCollection = 4,
  // System coordination (dedicated coordination channel): components
  // announce state changes instead of point-to-point RPC, giving broadcast
  // plus a deterministic order for free.
  kSegmentSealed = 5,   ///< Data node: segment binlog persisted.
  kIndexBuilt = 6,      ///< Index node: index persisted; payload = path.
  kLoadCollection = 7,  ///< Query coord: query nodes should serve this.
  kReleaseCollection = 8,  ///< Query nodes asynchronously release segments.
  kFlush = 9,  ///< Seal all growing segments of a collection now (published
               ///< into each shard channel; log order makes it a barrier).
  kCompaction = 10,  ///< Segments merged: `segment` is the merged result,
                     ///< payload lists the replaced segment ids. Query
                     ///< nodes release the old ones once the merged one is
                     ///< loaded.
};

/// One WAL / coordination-log record. Logical (event-describing) rather than
/// physical, so each subscriber consumes it in its own way.
struct LogEntry {
  LogEntryType type = LogEntryType::kTimeTick;
  Timestamp timestamp = 0;  ///< TSO-assigned LSN.
  CollectionId collection = kInvalidCollectionId;
  ShardId shard = -1;
  SegmentId segment = kInvalidSegmentId;

  /// kInsert: the rows (with per-row timestamps already assigned).
  EntityBatch batch;
  /// kDelete: primary keys to tombstone.
  std::vector<int64_t> delete_pks;
  /// Type-specific auxiliary data (serialized schema for DDL, index path for
  /// kIndexBuilt, ...).
  std::string payload;

  std::string Serialize() const;
  static Result<LogEntry> Deserialize(std::string_view data);
};

const char* ToString(LogEntryType type);

/// Group-commit batch serialization: the unit the WAL flush pipeline writes
/// per (simulated) device flush. One contiguous buffer holding a count
/// header and a length-prefixed frame per entry, so a whole commit group is
/// a single sequential write however many publishers it carries.
std::string SerializeGroup(
    const std::vector<std::shared_ptr<const LogEntry>>& entries);
Result<std::vector<LogEntry>> DeserializeGroup(std::string_view data);

/// Channel naming scheme. Data manipulation is hashed across
/// `kNumDefaultShards` per-collection shard channels; DDL and coordination
/// get their own channels so request types don't interfere (Section 3.3).
std::string ShardChannelName(CollectionId collection, ShardId shard);
std::string DdlChannelName();
std::string CoordChannelName();

}  // namespace manu

#endif  // MANU_WAL_MESSAGE_H_
