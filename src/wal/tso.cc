#include "wal/tso.h"

#include "common/metrics.h"

namespace manu {

Timestamp Tso::Allocate() { return AllocateBlock(1); }

Timestamp Tso::AllocateBlock(uint32_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  // Hybrid timestamps carry a real wall-clock physical part; WallTimeMs, not
  // the steady-clock NowMs (whose epoch is arbitrary).
  const uint64_t now = static_cast<uint64_t>(WallTimeMs());
  if (now > physical_) {
    physical_ = now;
    logical_ = 0;
  }
  // Logical overflow within one physical tick: borrow from the future.
  // (2^18 events per ms never happens in practice, but correctness first.)
  if (logical_ + n > kLogicalMask) {
    ++physical_;
    logical_ = 0;
  }
  const Timestamp first = ComposeTimestamp(physical_, logical_);
  logical_ += n;
  last_.store(ComposeTimestamp(physical_, logical_ - 1),
              std::memory_order_release);
  return first;
}

}  // namespace manu
