#include "wal/message.h"

#include "common/serde.h"

namespace manu {

std::string LogEntry::Serialize() const {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU64(timestamp);
  w.PutI64(collection);
  w.PutI32(shard);
  w.PutI64(segment);
  batch.Serialize(&w);
  w.PutVector(delete_pks);
  w.PutString(payload);
  return w.Release();
}

Result<LogEntry> LogEntry::Deserialize(std::string_view data) {
  BinaryReader r(data);
  LogEntry e;
  MANU_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
  e.type = static_cast<LogEntryType>(type);
  MANU_ASSIGN_OR_RETURN(e.timestamp, r.GetU64());
  MANU_ASSIGN_OR_RETURN(e.collection, r.GetI64());
  MANU_ASSIGN_OR_RETURN(e.shard, r.GetI32());
  MANU_ASSIGN_OR_RETURN(e.segment, r.GetI64());
  MANU_ASSIGN_OR_RETURN(e.batch, EntityBatch::Deserialize(&r));
  MANU_ASSIGN_OR_RETURN(e.delete_pks, r.GetVector<int64_t>());
  MANU_ASSIGN_OR_RETURN(e.payload, r.GetString());
  return e;
}

std::string SerializeGroup(
    const std::vector<std::shared_ptr<const LogEntry>>& entries) {
  BinaryWriter w;
  w.PutU64(entries.size());
  for (const auto& e : entries) w.PutString(e->Serialize());
  return w.Release();
}

Result<std::vector<LogEntry>> DeserializeGroup(std::string_view data) {
  BinaryReader r(data);
  MANU_ASSIGN_OR_RETURN(uint64_t n, r.GetU64());
  std::vector<LogEntry> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    MANU_ASSIGN_OR_RETURN(std::string frame, r.GetString());
    MANU_ASSIGN_OR_RETURN(LogEntry entry, LogEntry::Deserialize(frame));
    out.push_back(std::move(entry));
  }
  return out;
}

const char* ToString(LogEntryType type) {
  switch (type) {
    case LogEntryType::kInsert:
      return "insert";
    case LogEntryType::kDelete:
      return "delete";
    case LogEntryType::kTimeTick:
      return "time_tick";
    case LogEntryType::kCreateCollection:
      return "create_collection";
    case LogEntryType::kDropCollection:
      return "drop_collection";
    case LogEntryType::kSegmentSealed:
      return "segment_sealed";
    case LogEntryType::kIndexBuilt:
      return "index_built";
    case LogEntryType::kLoadCollection:
      return "load_collection";
    case LogEntryType::kReleaseCollection:
      return "release_collection";
    case LogEntryType::kFlush:
      return "flush";
    case LogEntryType::kCompaction:
      return "compaction";
  }
  return "unknown";
}

std::string ShardChannelName(CollectionId collection, ShardId shard) {
  return "wal/c" + std::to_string(collection) + "/s" + std::to_string(shard);
}

std::string DdlChannelName() { return "wal/ddl"; }

std::string CoordChannelName() { return "wal/coord"; }

}  // namespace manu
