#ifndef MANU_COMMON_RESULT_H_
#define MANU_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace manu {

/// Result<T> holds either a value of type T or an error Status, following the
/// arrow::Result convention. A default-constructed Result is an Internal
/// error ("uninitialized result").
template <typename T>
class Result {
 public:
  Result() : repr_(Status::Internal("uninitialized result")) {}
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, mirrors
  // arrow::Result so `return value;` and `return status;` both work.
  Result(T value) : repr_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).ok() && "OK status carries no value");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(repr_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Moves the value out, or returns `fallback` on error.
  T ValueOr(T fallback) && {
    return ok() ? std::get<T>(std::move(repr_)) : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates the error.
#define MANU_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define MANU_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define MANU_ASSIGN_OR_RETURN_NAME(a, b) MANU_ASSIGN_OR_RETURN_CONCAT(a, b)
#define MANU_ASSIGN_OR_RETURN(lhs, expr) \
  MANU_ASSIGN_OR_RETURN_IMPL(            \
      MANU_ASSIGN_OR_RETURN_NAME(_res_, __COUNTER__), lhs, expr)

}  // namespace manu

#endif  // MANU_COMMON_RESULT_H_
