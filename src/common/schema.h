#ifndef MANU_COMMON_SCHEMA_H_
#define MANU_COMMON_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/serde.h"
#include "common/types.h"

namespace manu {

/// Field value types (Section 3.1: vector, string, boolean, integer, float).
enum class DataType : uint8_t {
  kInt64 = 0,
  kFloat = 1,
  kDouble = 2,
  kBool = 3,
  kString = 4,
  kFloatVector = 5,
};

const char* ToString(DataType type);

/// Schema of a single field of an entity.
struct FieldSchema {
  FieldId id = 0;
  std::string name;
  DataType type = DataType::kInt64;
  /// Dimensionality; meaningful only for kFloatVector fields.
  int32_t dim = 0;
  /// True for the primary-key field. Exactly one field per collection.
  bool is_primary = false;
  /// Similarity function used when searching this field (vector fields).
  MetricType metric = MetricType::kL2;

  bool IsVector() const { return type == DataType::kFloatVector; }

  void Serialize(BinaryWriter* w) const;
  static Result<FieldSchema> Deserialize(BinaryReader* r);

  bool operator==(const FieldSchema&) const = default;
};

/// Schema of a collection (Figure 1 of the paper). A collection has exactly
/// one primary-key field (added implicitly if absent), zero or more vector
/// fields, and any number of scalar label/attribute fields used for
/// filtering.
class CollectionSchema {
 public:
  CollectionSchema() = default;
  explicit CollectionSchema(std::string name) : name_(std::move(name)) {}

  /// Appends a field; assigns the next FieldId. Fails on duplicate names,
  /// a second primary key, or a vector field with dim <= 0.
  Status AddField(FieldSchema field);

  /// Validates the schema and auto-inserts an int64 primary key named "_pk"
  /// if the user did not declare one (paper: "the system will automatically
  /// add an integer primary key").
  Status Finalize();

  const std::string& name() const { return name_; }
  const std::vector<FieldSchema>& fields() const { return fields_; }

  const FieldSchema* FieldByName(const std::string& name) const;
  const FieldSchema* FieldById(FieldId id) const;
  /// The primary-key field; null until Finalize() succeeds.
  const FieldSchema* PrimaryField() const;
  /// All vector fields, in declaration order.
  std::vector<const FieldSchema*> VectorFields() const;

  void Serialize(BinaryWriter* w) const;
  static Result<CollectionSchema> Deserialize(BinaryReader* r);

  bool operator==(const CollectionSchema&) const = default;

 private:
  std::string name_;
  std::vector<FieldSchema> fields_;
  FieldId next_field_id_ = 100;  // User fields start at 100, like Milvus.
};

}  // namespace manu

#endif  // MANU_COMMON_SCHEMA_H_
