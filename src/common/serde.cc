#include "common/serde.h"

#include <array>

namespace manu {

namespace {
std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  constexpr uint32_t kPoly = 0x82F63B78u;  // CRC-32C (Castagnoli), reflected.
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}
}  // namespace

uint32_t Crc32c(const void* data, size_t n) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace manu
