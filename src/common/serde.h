#ifndef MANU_COMMON_SERDE_H_
#define MANU_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace manu {

/// Little-endian binary writer used by the WAL message codec, the binlog
/// format and index (de)serialization. All multi-byte integers are written
/// in the host byte order (the project targets little-endian x86/ARM).
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI32(int32_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutFloat(float v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  /// Length-prefixed string.
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }

  /// Length-prefixed vector of trivially copyable elements.
  template <typename T>
  void PutVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    PutU64(v.size());
    PutRaw(v.data(), v.size() * sizeof(T));
  }

  void PutRaw(const void* data, size_t n) {
    const char* p = static_cast<const char*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  const std::string& data() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Counterpart reader. Every getter bounds-checks and reports Corruption on
/// truncated input instead of reading past the end.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8() { return GetPod<uint8_t>(); }
  Result<uint32_t> GetU32() { return GetPod<uint32_t>(); }
  Result<uint64_t> GetU64() { return GetPod<uint64_t>(); }
  Result<int32_t> GetI32() { return GetPod<int32_t>(); }
  Result<int64_t> GetI64() { return GetPod<int64_t>(); }
  Result<float> GetFloat() { return GetPod<float>(); }
  Result<double> GetDouble() { return GetPod<double>(); }
  Result<bool> GetBool() {
    MANU_ASSIGN_OR_RETURN(uint8_t v, GetU8());
    return v != 0;
  }

  Result<std::string> GetString() {
    MANU_ASSIGN_OR_RETURN(uint32_t n, GetU32());
    if (pos_ + n > data_.size()) {
      return Status::Corruption("truncated string");
    }
    std::string out(data_.substr(pos_, n));
    pos_ += n;
    return out;
  }

  template <typename T>
  Result<std::vector<T>> GetVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    MANU_ASSIGN_OR_RETURN(uint64_t n, GetU64());
    if (n > (data_.size() - pos_) / sizeof(T)) {
      return Status::Corruption("truncated vector");
    }
    std::vector<T> out(n);
    std::memcpy(out.data(), data_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return out;
  }

  Status GetRaw(void* out, size_t n) {
    if (pos_ + n > data_.size()) return Status::Corruption("truncated raw");
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  Result<T> GetPod() {
    if (pos_ + sizeof(T) > data_.size()) {
      return Status::Corruption("truncated field");
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

/// CRC32 (Castagnoli polynomial, bitwise). Used to checksum binlog blocks and
/// serialized indexes; speed is irrelevant next to the payloads they guard.
uint32_t Crc32c(const void* data, size_t n);

}  // namespace manu

#endif  // MANU_COMMON_SERDE_H_
