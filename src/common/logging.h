#ifndef MANU_COMMON_LOGGING_H_
#define MANU_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace manu {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Benches raise this
/// to kWarn so progress logging does not pollute measured output.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void EmitLog(LogLevel level, const char* file, int line,
             const std::string& msg);

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { EmitLog(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace internal

#define MANU_LOG(level)                                         \
  if (::manu::GetLogLevel() <= ::manu::LogLevel::level)         \
  ::manu::internal::LogLine(::manu::LogLevel::level, __FILE__, __LINE__)

#define MANU_LOG_DEBUG MANU_LOG(kDebug)
#define MANU_LOG_INFO MANU_LOG(kInfo)
#define MANU_LOG_WARN MANU_LOG(kWarn)
#define MANU_LOG_ERROR MANU_LOG(kError)

}  // namespace manu

#endif  // MANU_COMMON_LOGGING_H_
