#ifndef MANU_COMMON_THREADPOOL_H_
#define MANU_COMMON_THREADPOOL_H_

#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/channel.h"

namespace manu {

/// Fixed-size thread pool. Worker nodes use small private pools so that the
/// resource isolation the paper argues for (query vs index vs data work) is
/// actually enforced in the simulation: an index build saturating its pool
/// cannot steal query-node threads.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    threads_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this] { Run(); });
    }
  }

  ~ThreadPool() { Shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Submits a task; returns a future for its result.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    queue_.Push([task] { (*task)(); });
    return fut;
  }

  /// Fire-and-forget variant.
  void Post(std::function<void()> fn) { queue_.Push(std::move(fn)); }

  size_t num_threads() const { return threads_.size(); }

  /// Drains queued tasks and joins all workers. Idempotent.
  void Shutdown() {
    queue_.Close();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

 private:
  void Run() {
    while (auto task = queue_.Pop()) {
      (*task)();
    }
  }

  Channel<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
};

/// Runs `fn(i)` for i in [0, n) across `pool` (or inline when pool is null
/// or n is small) and waits for completion.
template <typename F>
void ParallelFor(ThreadPool* pool, int64_t n, F&& fn, int64_t grain = 1) {
  if (pool == nullptr || n <= grain) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const int64_t num_chunks =
      std::min<int64_t>(static_cast<int64_t>(pool->num_threads()) * 4,
                        (n + grain - 1) / grain);
  const int64_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(num_chunks);
  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t begin = c * chunk;
    const int64_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    futs.push_back(pool->Submit([begin, end, &fn] {
      for (int64_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futs) f.get();
}

}  // namespace manu

#endif  // MANU_COMMON_THREADPOOL_H_
