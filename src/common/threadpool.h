#ifndef MANU_COMMON_THREADPOOL_H_
#define MANU_COMMON_THREADPOOL_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/channel.h"

namespace manu {

/// Fixed-size thread pool. Worker nodes use small private pools so that the
/// resource isolation the paper argues for (query vs index vs data work) is
/// actually enforced in the simulation: an index build saturating its pool
/// cannot steal query-node threads.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    threads_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this] { Run(); });
    }
  }

  ~ThreadPool() { Shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Submits a task; returns a future for its result. On a shut-down pool
  /// the task runs inline on the caller (the queue drops pushes after
  /// close, and a silently dropped packaged_task would leave the returned
  /// future forever unready).
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    if (!queue_.Push([task] { (*task)(); })) (*task)();
    return fut;
  }

  /// Fire-and-forget variant.
  void Post(std::function<void()> fn) { queue_.Push(std::move(fn)); }

  size_t num_threads() const { return threads_.size(); }

  /// Drains queued tasks and joins all workers. Idempotent.
  void Shutdown() {
    queue_.Close();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

 private:
  void Run() {
    while (auto task = queue_.Pop()) {
      (*task)();
    }
  }

  Channel<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
};

/// Runs `fn(i)` for i in [0, n) across `pool` and waits for completion.
/// `grain` is the number of consecutive indices one task claims at a time.
///
/// Safe to call from *inside* a pool worker (nested parallelism): the
/// caller participates in the work instead of parking on futures. Chunks
/// live in a shared claim counter; the caller loops claiming chunks like
/// any helper, so every chunk is executed even if no pool worker is ever
/// free (pool of size 1, or all workers themselves blocked in nested
/// ParallelFor calls). A naive inner Submit(...).get() would deadlock in
/// exactly that situation. Helpers that wake up after the range is drained
/// exit without touching `fn`, so the caller's frame may safely be gone by
/// then. `fn` must not throw.
template <typename F>
void ParallelFor(ThreadPool* pool, int64_t n, F&& fn, int64_t grain = 1) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  if (pool == nullptr || pool->num_threads() == 0 || n <= grain) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const int64_t num_chunks = (n + grain - 1) / grain;
  struct State {
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  // shared_ptr: posted helpers may outlive this frame (they run as no-ops
  // once all chunks are claimed, but still read `next`).
  auto state = std::make_shared<State>();
  auto* fn_ptr = std::addressof(fn);
  auto work = [state, fn_ptr, n, grain, num_chunks] {
    for (;;) {
      const int64_t c = state->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      // A claimed chunk implies the caller is still waiting below, so
      // dereferencing fn_ptr here is safe.
      const int64_t begin = c * grain;
      const int64_t end = std::min(n, begin + grain);
      for (int64_t i = begin; i < end; ++i) (*fn_ptr)(i);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          num_chunks) {
        // Lock pairs with the caller's predicate check: without it the
        // caller could test done, decide to sleep, and miss this notify.
        std::lock_guard<std::mutex> lk(state->mu);
        state->cv.notify_all();
      }
    }
  };
  const int64_t helpers = std::min<int64_t>(
      static_cast<int64_t>(pool->num_threads()), num_chunks - 1);
  for (int64_t i = 0; i < helpers; ++i) pool->Post(work);
  work();  // Caller-runs: claims chunks until none remain.
  std::unique_lock<std::mutex> lk(state->mu);
  state->cv.wait(lk, [&] {
    return state->done.load(std::memory_order_acquire) == num_chunks;
  });
}

}  // namespace manu

#endif  // MANU_COMMON_THREADPOOL_H_
