#include "common/topk.h"

#include <limits>
#include <unordered_set>

namespace manu {

std::vector<Neighbor> MergeTopK(
    const std::vector<std::vector<Neighbor>>& lists, size_t k,
    bool dedup_ids) {
  TopKHeap heap(dedup_ids ? k * 2 : k);  // Headroom so dedup can't starve k.
  for (const auto& list : lists) {
    for (const auto& n : list) {
      if (heap.Full() && n.score > heap.Worst()) break;  // Lists are sorted.
      heap.Push(n.id, n.score);
    }
  }
  std::vector<Neighbor> merged = heap.TakeSorted();
  if (!dedup_ids) {
    if (merged.size() > k) merged.resize(k);
    return merged;
  }
  std::vector<Neighbor> out;
  out.reserve(k);
  std::unordered_set<int64_t> seen;
  for (const auto& n : merged) {
    if (seen.insert(n.id).second) {
      out.push_back(n);
      if (out.size() == k) break;
    }
  }
  return out;
}

}  // namespace manu
