#include "common/topk.h"

#include <limits>
#include <unordered_map>

namespace manu {

std::vector<Neighbor> MergeTopK(
    const std::vector<std::vector<Neighbor>>& lists, size_t k,
    bool dedup_ids) {
  if (!dedup_ids) {
    TopKHeap heap(k);
    for (const auto& list : lists) {
      for (const auto& n : list) {
        if (heap.Full() && n.score > heap.Worst()) break;  // Sorted lists.
        heap.Push(n.id, n.score);
      }
    }
    return heap.TakeSorted();
  }
  // Dedup-aware merge: collapse to the best score per id *before* the k
  // selection. The previous scheme (heap of 2k, dedup on extraction) starves
  // when more than k duplicates of the same few ids crowd the headroom —
  // with r replicas of every segment, r*k copies of the same k ids evict
  // every distinct backfill candidate and the merge returns < k unique hits
  // even though worse-but-distinct ids were available.
  std::unordered_map<int64_t, float> best;
  for (const auto& list : lists) {
    for (const auto& n : list) {
      auto [it, inserted] = best.try_emplace(n.id, n.score);
      if (!inserted && n.score < it->second) it->second = n.score;
    }
  }
  TopKHeap heap(k);
  for (const auto& [id, score] : best) heap.Push(id, score);
  return heap.TakeSorted();
}

}  // namespace manu
