#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/metrics.h"

namespace manu {

namespace {
uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

int64_t RetryPolicy::BackoffMicros(int32_t attempt,
                                   const std::string& op) const {
  double delay = static_cast<double>(base_backoff_us);
  for (int32_t i = 1; i < attempt; ++i) delay *= multiplier;
  delay = std::min(delay, static_cast<double>(max_backoff_us));
  if (jitter > 0) {
    // Deterministic jitter in [-jitter, +jitter] keyed on (op, attempt):
    // reproducible runs, yet concurrent retriers of different ops decorrelate.
    uint64_t h = 1469598103934665603ull;
    for (char c : op) h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
    const double u = static_cast<double>(
                         Mix64(h ^ static_cast<uint64_t>(attempt)) >> 11) *
                     (1.0 / 9007199254740992.0);
    delay *= 1.0 + jitter * (2.0 * u - 1.0);
  }
  return std::max<int64_t>(0, static_cast<int64_t>(delay));
}

Status RetryOp(const RetryPolicy& policy, const std::string& op,
               const std::function<Status()>& fn) {
  auto& metrics = MetricsRegistry::Global();
  const int64_t start = NowMicros();
  Status st;
  for (int32_t attempt = 1;; ++attempt) {
    st = fn();
    if (st.ok() || !RetryPolicy::IsRetryable(st)) return st;
    if (attempt >= std::max(1, policy.max_attempts)) break;
    const int64_t backoff = policy.BackoffMicros(attempt, op);
    if (policy.deadline_us >= 0 &&
        NowMicros() + backoff - start > policy.deadline_us) {
      break;  // The next attempt could not finish inside the budget.
    }
    metrics.GetCounter("retry.attempts")->Add(1);
    metrics.GetCounter("retry." + op + ".attempts")->Add(1);
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
    }
  }
  metrics.GetCounter("retry.giveups")->Add(1);
  metrics.GetCounter("retry." + op + ".giveups")->Add(1);
  return st;
}

}  // namespace manu
