#ifndef MANU_COMMON_METRICS_H_
#define MANU_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace manu {

/// Monotonic counter.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-value gauge (e.g. MTTR of the most recent failover).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Thread-safe latency histogram with exact percentile queries over a sliding
/// sample buffer. Exact-on-samples (not bucketed) keeps bench output honest
/// at the scales we run (<= a few million observations).
class LatencyHistogram {
 public:
  explicit LatencyHistogram(size_t max_samples = 1 << 20)
      : max_samples_(max_samples) {}

  void Observe(double micros);

  /// Percentile in [0, 100]; returns 0 when empty.
  double Percentile(double p) const;
  double Mean() const;
  double Max() const;
  int64_t Count() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  size_t max_samples_;
  size_t next_ = 0;  ///< Ring-buffer write position once full.
  std::vector<double> samples_;
  int64_t total_count_ = 0;
  double total_sum_ = 0;
  double max_ = 0;
};

/// Process-wide registry keyed by name; the stand-in for the paper's Attu
/// GUI "system view" (QPS, latency, memory). Components register counters
/// and histograms here; benches and examples read them back.
///
/// Robustness metrics published by the fault-injection / retry / degradation
/// machinery (asserted on by the chaos suite):
///   failpoint.trips, failpoint.<site>.trips     injected-fault counts
///   retry.attempts, retry.giveups               plus retry.<op>.* breakdown
///   proxy.partial_results                       degraded (coverage < 1)
///   proxy.degraded_nodes                        node replies dropped
///   query_coord.nodes_killed                    crash recoveries handled
///   query_coord.recovery_us (histogram)         node-recovery duration
///
/// Liveness / lease metrics (PR 5):
///   lease.missed_heartbeats                     watchdog-detected expiries
///   lease.fencing_rejections                    stale-epoch commits refused
///   cluster.mttr_ms (gauge)                     last failover: lease grant
///                                               lost -> failover complete
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);
  Gauge* GetGauge(const std::string& name);

  /// Read-only lookups that never create: the counter's value (0 when
  /// absent) / the histogram's observation count. Tests and benches assert
  /// on metrics without perturbing the registry.
  int64_t CounterValue(const std::string& name) const;
  int64_t HistogramCount(const std::string& name) const;
  int64_t GaugeValue(const std::string& name) const;

  /// Formats all metrics as "name value" lines (counters) and
  /// "name p50/p95/p99/mean" lines (histograms).
  std::string Dump() const;
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
};

/// Wall-clock helpers.
int64_t NowMs();
int64_t NowMicros();

/// RAII latency probe: records elapsed microseconds into a histogram.
class ScopedLatency {
 public:
  explicit ScopedLatency(LatencyHistogram* hist)
      : hist_(hist), start_(NowMicros()) {}
  ~ScopedLatency() {
    if (hist_ != nullptr) {
      hist_->Observe(static_cast<double>(NowMicros() - start_));
    }
  }

 private:
  LatencyHistogram* hist_;
  int64_t start_;
};

}  // namespace manu

#endif  // MANU_COMMON_METRICS_H_
