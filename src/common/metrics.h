#ifndef MANU_COMMON_METRICS_H_
#define MANU_COMMON_METRICS_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace manu {

/// Monotonic counter.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-value gauge (e.g. MTTR of the most recent failover).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Sliding-window rate gauge: Mark(n) events, read back events/second over
/// the trailing window. Backs the paper's "system view" QPS / ingest-rate
/// panels. One-second buckets on the steady clock; writers touch a single
/// atomic bucket, readers sum the window.
class RateGauge {
 public:
  static constexpr int64_t kBuckets = 64;
  static constexpr int64_t kDefaultWindowSec = 10;

  void Mark(int64_t n = 1);
  /// Events/second averaged over the trailing `window_sec` seconds.
  double RatePerSec(int64_t window_sec = kDefaultWindowSec) const;
  int64_t Total() const { return total_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  struct Bucket {
    std::atomic<int64_t> second{-1};
    std::atomic<int64_t> count{0};
  };
  mutable std::array<Bucket, kBuckets> buckets_;
  std::atomic<int64_t> total_{0};
};

/// Thread-safe latency histogram with exact percentile queries over a sliding
/// sample buffer. Exact-on-samples (not bucketed) keeps bench output honest
/// at the scales we run (<= a few million observations).
///
/// Observe is striped: each thread hashes to one of kStripes independent
/// (mutex, ring) pairs, so concurrent probes on the parallel-search hot path
/// don't serialize on a single histogram lock. Readers merge all stripes.
class LatencyHistogram {
 public:
  static constexpr size_t kStripes = 16;

  explicit LatencyHistogram(size_t max_samples = 1 << 20)
      : stripe_capacity_(std::max<size_t>(1, max_samples / kStripes)) {}

  void Observe(double micros);

  /// Percentile in [0, 100]; returns 0 when empty.
  double Percentile(double p) const;
  double Mean() const;
  double Max() const;
  int64_t Count() const;
  void Reset();

  /// One consistent read of the histogram: merges the stripes and sorts the
  /// sample buffer ONCE, so Dump / exporters don't pay three O(n log n)
  /// sorts for p50/p95/p99.
  struct Snapshot {
    int64_t count = 0;
    double mean = 0;
    double max = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
  };
  Snapshot Snap() const;

 private:
  struct Stripe {
    mutable std::mutex mu;
    size_t next = 0;  ///< Ring-buffer write position once full.
    std::vector<double> samples;
    int64_t count = 0;
    double sum = 0;
    double max = 0;
  };

  /// All samples across stripes, unsorted.
  std::vector<double> MergedSamples() const;

  size_t stripe_capacity_;
  mutable std::array<Stripe, kStripes> stripes_;
};

/// Label set for a metric series, e.g. {{"collection","sift"}} or
/// {{"role","query_node"},{"node","3"}}. Encoded into the registry key in
/// canonical (sorted) order, so label order at the call site is irrelevant.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Canonical series key: `name` or `name{k="v",k2="v2"}` with keys sorted.
std::string EncodeMetricKey(const std::string& name,
                            const MetricLabels& labels);

/// Process-wide registry keyed by name (+ optional labels); the stand-in for
/// the paper's Attu GUI "system view" (QPS, latency, memory). Components
/// register counters, gauges, rates and histograms here; benches, tests and
/// the exporters read them back.
///
/// Naming convention (enforced by scripts/metrics_lint.sh): dotted
/// lower-case, `component.metric` — e.g. `proxy.searches`,
/// `query_node.search_latency`. Labels carry the per-collection /
/// per-node-role dimension; they are NOT encoded into the name.
///
/// Robustness metrics published by the fault-injection / retry / degradation
/// machinery (asserted on by the chaos suite):
///   failpoint.trips, failpoint.<site>.trips     injected-fault counts
///   retry.attempts, retry.giveups               plus retry.<op>.* breakdown
///   proxy.partial_results                       degraded (coverage < 1)
///   proxy.degraded_nodes                        node replies dropped
///   proxy.search_retries                        proxy-level re-dispatches
///   query_coord.nodes_killed                    crash recoveries handled
///   query_coord.recovery_us (histogram)         node-recovery duration
///
/// Liveness / lease metrics (PR 5):
///   lease.missed_heartbeats                     watchdog-detected expiries
///   lease.fencing_rejections                    stale-epoch commits refused
///   cluster.mttr_ms (gauge)                     last failover: lease grant
///                                               lost -> failover complete
///
/// Observability metrics (PR 6):
///   trace.slow_queries                          over-threshold requests
///   proxy.search_rate / logger.insert_rate      windowed QPS / ingest rate
///
/// Overload metrics (PR 7; metrics_lint.sh requires these three families
/// to stay registered):
///   admission.admitted/.degraded/.rejected      front-door outcomes
///   admission.stage/.pressure_bp/.inflight      ladder gauges (bp = 1e-4)
///   shed.requests{reason=...,stage=...}         refused work, by cause
///   shed.tenant_throttles                       token-bucket refusals
///   backpressure.logger_rejections              bounded write-window hits
///   backpressure.write_retries                  proxy retry-after sleeps
///   query_node.deadline_rejects                 dead-on-arrival drops
///   query_node.overload_rejects                 per-node inflight-cap sheds
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  RateGauge* GetRate(const std::string& name);

  /// Labeled series: same metric name, one instrument per label set.
  Counter* GetCounter(const std::string& name, const MetricLabels& labels);
  LatencyHistogram* GetHistogram(const std::string& name,
                                 const MetricLabels& labels);
  Gauge* GetGauge(const std::string& name, const MetricLabels& labels);
  RateGauge* GetRate(const std::string& name, const MetricLabels& labels);

  /// Read-only lookups that never create: the counter's value (0 when
  /// absent) / the histogram's observation count. Tests and benches assert
  /// on metrics without perturbing the registry.
  int64_t CounterValue(const std::string& name,
                       const MetricLabels& labels = {}) const;
  int64_t HistogramCount(const std::string& name,
                         const MetricLabels& labels = {}) const;
  int64_t GaugeValue(const std::string& name,
                     const MetricLabels& labels = {}) const;
  double RateValue(const std::string& name, const MetricLabels& labels = {},
                   int64_t window_sec = RateGauge::kDefaultWindowSec) const;

  /// Formats all metrics as "name value" lines (counters/gauges/rates) and
  /// "name count/mean/p50/p95/p99" lines (histograms).
  std::string Dump() const;

  /// Prometheus text exposition (v0.0.4): dots become underscores, every
  /// family is prefixed `manu_`, labels pass through, histograms export as
  /// summaries (quantile series + _sum/_count).
  std::string ExportPrometheus() const;
  /// JSON snapshot: {"counters":{...},"gauges":{...},"rates":{...},
  /// "histograms":{name:{count,mean_us,...}}}.
  std::string ExportJson() const;
  /// Writes ExportJson() to `path`; returns false on I/O error.
  bool WriteJsonFile(const std::string& path) const;

  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<RateGauge>> rates_;
};

/// Steady-clock readings for durations and deadlines: immune to wall-clock
/// adjustment (NTP step, manual set). The epoch is arbitrary — only
/// differences are meaningful.
int64_t NowMs();
int64_t NowMicros();

/// Wall-clock milliseconds since the Unix epoch. ONLY for values that must
/// be real timestamps (the TSO's hybrid-timestamp physical part, log
/// prefixes) — never for measuring durations.
int64_t WallTimeMs();

/// RAII latency probe: records elapsed microseconds into a histogram.
class ScopedLatency {
 public:
  explicit ScopedLatency(LatencyHistogram* hist)
      : hist_(hist), start_(NowMicros()) {}
  ~ScopedLatency() {
    if (hist_ != nullptr) {
      hist_->Observe(static_cast<double>(NowMicros() - start_));
    }
  }

 private:
  LatencyHistogram* hist_;
  int64_t start_;
};

}  // namespace manu

#endif  // MANU_COMMON_METRICS_H_
