#include "common/dataset.h"

namespace manu {

int64_t FieldColumn::NumRows() const {
  switch (type) {
    case DataType::kInt64:
      return static_cast<int64_t>(i64.size());
    case DataType::kFloat:
      return static_cast<int64_t>(f32.size());
    case DataType::kDouble:
      return static_cast<int64_t>(f64.size());
    case DataType::kBool:
      return static_cast<int64_t>(b8.size());
    case DataType::kString:
      return static_cast<int64_t>(str.size());
    case DataType::kFloatVector:
      return dim > 0 ? static_cast<int64_t>(f32.size()) / dim : 0;
  }
  return 0;
}

Status FieldColumn::Append(const FieldColumn& other) {
  if (other.field_id != field_id || other.type != type || other.dim != dim) {
    return Status::InvalidArgument("column layout mismatch on append");
  }
  i64.insert(i64.end(), other.i64.begin(), other.i64.end());
  f32.insert(f32.end(), other.f32.begin(), other.f32.end());
  f64.insert(f64.end(), other.f64.begin(), other.f64.end());
  b8.insert(b8.end(), other.b8.begin(), other.b8.end());
  str.insert(str.end(), other.str.begin(), other.str.end());
  return Status::OK();
}

FieldColumn FieldColumn::Slice(int64_t begin, int64_t end) const {
  FieldColumn out;
  out.field_id = field_id;
  out.type = type;
  out.dim = dim;
  switch (type) {
    case DataType::kInt64:
      out.i64.assign(i64.begin() + begin, i64.begin() + end);
      break;
    case DataType::kFloat:
      out.f32.assign(f32.begin() + begin, f32.begin() + end);
      break;
    case DataType::kDouble:
      out.f64.assign(f64.begin() + begin, f64.begin() + end);
      break;
    case DataType::kBool:
      out.b8.assign(b8.begin() + begin, b8.begin() + end);
      break;
    case DataType::kString:
      out.str.assign(str.begin() + begin, str.begin() + end);
      break;
    case DataType::kFloatVector:
      out.f32.assign(f32.begin() + begin * dim, f32.begin() + end * dim);
      break;
  }
  return out;
}

void FieldColumn::Serialize(BinaryWriter* w) const {
  w->PutI64(field_id);
  w->PutU8(static_cast<uint8_t>(type));
  w->PutI32(dim);
  switch (type) {
    case DataType::kInt64:
      w->PutVector(i64);
      break;
    case DataType::kFloat:
    case DataType::kFloatVector:
      w->PutVector(f32);
      break;
    case DataType::kDouble:
      w->PutVector(f64);
      break;
    case DataType::kBool:
      w->PutVector(b8);
      break;
    case DataType::kString:
      w->PutU64(str.size());
      for (const auto& s : str) w->PutString(s);
      break;
  }
}

Result<FieldColumn> FieldColumn::Deserialize(BinaryReader* r) {
  FieldColumn c;
  MANU_ASSIGN_OR_RETURN(c.field_id, r->GetI64());
  MANU_ASSIGN_OR_RETURN(uint8_t type, r->GetU8());
  c.type = static_cast<DataType>(type);
  MANU_ASSIGN_OR_RETURN(c.dim, r->GetI32());
  switch (c.type) {
    case DataType::kInt64: {
      MANU_ASSIGN_OR_RETURN(c.i64, r->GetVector<int64_t>());
      break;
    }
    case DataType::kFloat:
    case DataType::kFloatVector: {
      MANU_ASSIGN_OR_RETURN(c.f32, r->GetVector<float>());
      break;
    }
    case DataType::kDouble: {
      MANU_ASSIGN_OR_RETURN(c.f64, r->GetVector<double>());
      break;
    }
    case DataType::kBool: {
      MANU_ASSIGN_OR_RETURN(c.b8, r->GetVector<uint8_t>());
      break;
    }
    case DataType::kString: {
      MANU_ASSIGN_OR_RETURN(uint64_t n, r->GetU64());
      c.str.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        MANU_ASSIGN_OR_RETURN(std::string s, r->GetString());
        c.str.push_back(std::move(s));
      }
      break;
    }
  }
  return c;
}

FieldColumn FieldColumn::MakeInt64(FieldId id, std::vector<int64_t> values) {
  FieldColumn c;
  c.field_id = id;
  c.type = DataType::kInt64;
  c.i64 = std::move(values);
  return c;
}

FieldColumn FieldColumn::MakeFloat(FieldId id, std::vector<float> values) {
  FieldColumn c;
  c.field_id = id;
  c.type = DataType::kFloat;
  c.f32 = std::move(values);
  return c;
}

FieldColumn FieldColumn::MakeDouble(FieldId id, std::vector<double> values) {
  FieldColumn c;
  c.field_id = id;
  c.type = DataType::kDouble;
  c.f64 = std::move(values);
  return c;
}

FieldColumn FieldColumn::MakeBool(FieldId id, std::vector<uint8_t> values) {
  FieldColumn c;
  c.field_id = id;
  c.type = DataType::kBool;
  c.b8 = std::move(values);
  return c;
}

FieldColumn FieldColumn::MakeString(FieldId id,
                                    std::vector<std::string> values) {
  FieldColumn c;
  c.field_id = id;
  c.type = DataType::kString;
  c.str = std::move(values);
  return c;
}

FieldColumn FieldColumn::MakeFloatVector(FieldId id, int32_t dim,
                                         std::vector<float> flat) {
  FieldColumn c;
  c.field_id = id;
  c.type = DataType::kFloatVector;
  c.dim = dim;
  c.f32 = std::move(flat);
  return c;
}

const FieldColumn* EntityBatch::ColumnByFieldId(FieldId id) const {
  for (const auto& c : columns) {
    if (c.field_id == id) return &c;
  }
  return nullptr;
}

FieldColumn* EntityBatch::MutableColumnByFieldId(FieldId id) {
  for (auto& c : columns) {
    if (c.field_id == id) return &c;
  }
  return nullptr;
}

Status EntityBatch::Append(const EntityBatch& other) {
  if (other.columns.size() != columns.size()) {
    return Status::InvalidArgument("batch column count mismatch");
  }
  primary_keys.insert(primary_keys.end(), other.primary_keys.begin(),
                      other.primary_keys.end());
  timestamps.insert(timestamps.end(), other.timestamps.begin(),
                    other.timestamps.end());
  for (auto& c : columns) {
    const FieldColumn* oc = other.ColumnByFieldId(c.field_id);
    if (oc == nullptr) {
      return Status::InvalidArgument("missing column on append");
    }
    MANU_RETURN_NOT_OK(c.Append(*oc));
  }
  return Status::OK();
}

EntityBatch EntityBatch::Slice(int64_t begin, int64_t end) const {
  EntityBatch out;
  out.primary_keys.assign(primary_keys.begin() + begin,
                          primary_keys.begin() + end);
  if (!timestamps.empty()) {
    out.timestamps.assign(timestamps.begin() + begin,
                          timestamps.begin() + end);
  }
  out.columns.reserve(columns.size());
  for (const auto& c : columns) out.columns.push_back(c.Slice(begin, end));
  return out;
}

Status EntityBatch::ValidateAgainst(const CollectionSchema& schema) const {
  const int64_t rows = NumRows();
  if (!timestamps.empty() &&
      static_cast<int64_t>(timestamps.size()) != rows) {
    return Status::InvalidArgument("timestamp count mismatch");
  }
  for (const auto& field : schema.fields()) {
    if (field.is_primary) continue;
    const FieldColumn* col = ColumnByFieldId(field.id);
    if (col == nullptr) {
      return Status::InvalidArgument("missing column for field " + field.name);
    }
    if (col->type != field.type) {
      return Status::InvalidArgument("type mismatch for field " + field.name);
    }
    if (field.IsVector() && col->dim != field.dim) {
      return Status::InvalidArgument("dim mismatch for field " + field.name);
    }
    if (col->NumRows() != rows) {
      return Status::InvalidArgument("row count mismatch for field " +
                                     field.name);
    }
  }
  for (const auto& col : columns) {
    if (schema.FieldById(col.field_id) == nullptr) {
      return Status::InvalidArgument("unknown field id in batch");
    }
  }
  return Status::OK();
}

uint64_t EntityBatch::ByteSize() const {
  uint64_t bytes = primary_keys.size() * sizeof(int64_t) +
                   timestamps.size() * sizeof(Timestamp);
  for (const auto& c : columns) {
    bytes += c.i64.size() * sizeof(int64_t) + c.f32.size() * sizeof(float) +
             c.f64.size() * sizeof(double) + c.b8.size();
    for (const auto& s : c.str) bytes += s.size() + sizeof(uint32_t);
  }
  return bytes;
}

void EntityBatch::Serialize(BinaryWriter* w) const {
  w->PutVector(primary_keys);
  w->PutVector(timestamps);
  w->PutU32(static_cast<uint32_t>(columns.size()));
  for (const auto& c : columns) c.Serialize(w);
}

Result<EntityBatch> EntityBatch::Deserialize(BinaryReader* r) {
  EntityBatch b;
  MANU_ASSIGN_OR_RETURN(b.primary_keys, r->GetVector<int64_t>());
  MANU_ASSIGN_OR_RETURN(b.timestamps, r->GetVector<Timestamp>());
  MANU_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  b.columns.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    MANU_ASSIGN_OR_RETURN(FieldColumn c, FieldColumn::Deserialize(r));
    b.columns.push_back(std::move(c));
  }
  return b;
}

}  // namespace manu
