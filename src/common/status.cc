#include "common/status.h"

namespace manu {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace manu
