#ifndef MANU_COMMON_TRACE_H_
#define MANU_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace manu {

/// One finished span of a trace. Spans form a tree via parent_id; span id 0
/// is "no parent" (the root). Times are NowMicros() (steady clock), so
/// durations are immune to wall-clock adjustment.
struct SpanRecord {
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  std::string name;
  int64_t start_us = 0;     ///< Steady-clock start (relative ordering only).
  int64_t duration_us = 0;
  std::vector<std::pair<std::string, std::string>> tags;
  /// Point-in-time annotations: (offset from span start in us, message).
  std::vector<std::pair<int64_t, std::string>> events;
};

/// Shared state of one request's trace: every Span of the request appends
/// its finished record here. Spans may finish from any thread (segment
/// fan-out workers, abandoned stragglers), so Record is mutex-guarded;
/// traces are tiny (tens of spans) and only sampled/slow ones are retained.
class Trace {
 public:
  Trace(uint64_t id, bool sampled) : id_(id), sampled_(sampled) {}

  uint64_t id() const { return id_; }
  bool sampled() const { return sampled_; }

  uint64_t NextSpanId() {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }
  void Record(SpanRecord rec);
  std::vector<SpanRecord> Snapshot() const;

  /// Root duration, set when the root span finishes (0 while in flight).
  int64_t root_duration_us() const {
    return root_duration_us_.load(std::memory_order_acquire);
  }
  void set_root_duration_us(int64_t us) {
    root_duration_us_.store(us, std::memory_order_release);
  }
  /// Root span name ("proxy.search", "data_node.seal", ...).
  std::string root_name() const;

 private:
  const uint64_t id_;
  const bool sampled_;
  std::atomic<uint64_t> next_span_{1};
  std::atomic<int64_t> root_duration_us_{0};
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
};

/// What a request carries across component boundaries: which trace it
/// belongs to and which span is the parent of whatever the callee opens.
/// Copyable and cheap (one shared_ptr); a default-constructed context is
/// inactive and makes every Span built from it a no-op.
struct TraceContext {
  std::shared_ptr<Trace> trace;
  uint64_t parent_span_id = 0;

  bool active() const { return trace != nullptr; }
};

/// RAII span: records its duration and tags into the owning Trace when
/// destroyed (or on End()). Built from a TraceContext; an inactive context
/// yields a no-op span, so probe sites pay one branch when tracing is off.
class Span {
 public:
  Span() = default;  ///< No-op span.
  /// Opens a child span under `ctx.parent_span_id`.
  Span(const TraceContext& ctx, std::string name);
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;

  bool active() const { return trace_ != nullptr; }

  void Tag(const std::string& key, std::string value);
  void Tag(const std::string& key, int64_t value);
  void Tag(const std::string& key, double value);
  void Event(std::string message);

  /// Context for children of this span.
  TraceContext context() const { return {trace_, span_id_}; }

  /// Finishes the span now (idempotent; the destructor calls it too). Root
  /// spans additionally hand their trace to the collector for retention.
  void End();

 private:
  friend class Tracer;

  std::shared_ptr<Trace> trace_;
  uint64_t span_id_ = 0;
  int64_t start_us_ = 0;
  bool is_root_ = false;
  SpanRecord rec_;
};

/// Bounded ring of retained traces plus a separate ring for slow queries
/// (force-retained regardless of the sampling decision). The stand-in for a
/// Jaeger/Tempo backend at this repo's scale: everything stays in memory
/// and renders as annotated text trees.
class TraceCollector {
 public:
  /// `rec` is the root span's record (already in the trace).
  void Add(std::shared_ptr<Trace> trace, bool slow);

  std::vector<std::shared_ptr<Trace>> Traces() const;
  std::vector<std::shared_ptr<Trace>> SlowTraces() const;
  /// Retained trace by id (sampled ring first, then slow ring).
  std::shared_ptr<Trace> Find(uint64_t trace_id) const;

  void SetCapacity(size_t traces, size_t slow);
  void Clear();

  /// Renders one trace as an indented span tree with durations, tags and
  /// events, e.g.
  ///   trace 42 proxy.search 1834us
  ///   `- proxy.search 1834us collection=chaos coverage=1.00
  ///      |- query_coord.route 3us
  ///      `- query_node.search 1702us node=101 segments=4
  ///         |- segment.scan 401us segment=10 hits=5
  static std::string Render(const Trace& trace);
  /// Renders every retained slow trace (the slow-query log dump).
  std::string DumpSlow() const;

 private:
  mutable std::mutex mu_;
  size_t capacity_ = 128;
  size_t slow_capacity_ = 64;
  std::deque<std::shared_ptr<Trace>> ring_;
  std::deque<std::shared_ptr<Trace>> slow_ring_;
};

/// Process-wide tracing entry point. Requests call StartTrace to open a
/// root span; the sampling decision (1-in-N) picks which traces are
/// *retained* — spans are recorded for every request so that a query that
/// turns out slow can be force-retained with its full tree (tail-based
/// retention: you only know it was slow once it finished).
class Tracer {
 public:
  static Tracer& Global();

  /// `sample_every`: retain every Nth root trace (<=0 disables sampling
  /// retention; slow traces are still kept). `slow_us`: root spans at least
  /// this long are force-retained (<=0 disables the slow-query log).
  void Configure(int64_t sample_every, int64_t slow_us);

  /// Opens a root span (and the Trace behind it). `force_sample` retains
  /// the trace regardless of the 1-in-N decision — for rare background
  /// operations (segment seal, index build) that would otherwise almost
  /// never be sampled.
  Span StartTrace(std::string name, bool force_sample = false);

  TraceCollector& collector() { return collector_; }
  int64_t slow_us() const { return slow_us_.load(std::memory_order_relaxed); }

  /// Tests: restore defaults, clear rings, reset the sampling counter.
  void ResetForTest();

 private:
  friend class Span;

  /// Root-span completion: retention decision + hand-off to the collector.
  void FinishRoot(std::shared_ptr<Trace> trace, int64_t duration_us);

  std::atomic<int64_t> sample_every_{64};
  std::atomic<int64_t> slow_us_{500000};
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> sample_counter_{0};
  TraceCollector collector_;
};

}  // namespace manu

#endif  // MANU_COMMON_TRACE_H_
