#include "common/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "simd/distances.h"

namespace manu {

namespace {
void NormalizeRows(VectorDataset* ds) {
  for (int64_t r = 0; r < ds->NumRows(); ++r) {
    float* row = ds->data.data() + r * ds->dim;
    const float norm = std::sqrt(simd::L2NormSqr(row, ds->dim));
    if (norm > 0) {
      for (int32_t d = 0; d < ds->dim; ++d) row[d] /= norm;
    }
  }
}

std::vector<float> MakeCenters(int32_t num_clusters, int32_t dim,
                               uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> uni(0.0f, 1.0f);
  std::vector<float> centers(static_cast<size_t>(num_clusters) * dim);
  for (auto& v : centers) v = uni(rng);
  return centers;
}
}  // namespace

VectorDataset MakeClusteredDataset(const SyntheticOptions& opts) {
  VectorDataset ds;
  ds.dim = opts.dim;
  ds.metric = opts.metric;
  ds.data.resize(static_cast<size_t>(opts.num_rows) * opts.dim);

  // Centers depend only on (seed, clusters, dim) so base data and queries
  // generated with different row seeds share the same mixture.
  const std::vector<float> centers =
      MakeCenters(opts.num_clusters, opts.dim, opts.seed * 31 + 17);

  std::mt19937_64 rng(opts.seed);
  std::uniform_int_distribution<int32_t> pick(0, opts.num_clusters - 1);
  std::normal_distribution<float> noise(
      0.0f, static_cast<float>(opts.cluster_spread));
  for (int64_t r = 0; r < opts.num_rows; ++r) {
    const float* c = centers.data() + static_cast<size_t>(pick(rng)) * opts.dim;
    float* row = ds.data.data() + static_cast<size_t>(r) * opts.dim;
    for (int32_t d = 0; d < opts.dim; ++d) row[d] = c[d] + noise(rng);
  }
  if (opts.normalize) NormalizeRows(&ds);
  return ds;
}

VectorDataset MakeSiftLike(int64_t num_rows, uint64_t seed) {
  SyntheticOptions opts;
  opts.num_rows = num_rows;
  opts.dim = 128;
  opts.num_clusters = 128;
  opts.cluster_spread = 0.12;
  opts.seed = seed;
  opts.metric = MetricType::kL2;
  return MakeClusteredDataset(opts);
}

VectorDataset MakeDeepLike(int64_t num_rows, uint64_t seed) {
  SyntheticOptions opts;
  opts.num_rows = num_rows;
  opts.dim = 96;
  opts.num_clusters = 96;
  opts.cluster_spread = 0.15;
  opts.normalize = true;
  opts.seed = seed;
  opts.metric = MetricType::kInnerProduct;
  return MakeClusteredDataset(opts);
}

VectorDataset MakeQueries(const SyntheticOptions& opts, int64_t num_queries,
                          uint64_t seed) {
  SyntheticOptions qopts = opts;
  qopts.num_rows = num_queries;
  // Different row seed, same center seed: MakeClusteredDataset derives the
  // center seed from opts.seed, so keep it and perturb only the row stream.
  std::vector<float> centers =
      MakeCenters(opts.num_clusters, opts.dim, opts.seed * 31 + 17);
  VectorDataset ds;
  ds.dim = opts.dim;
  ds.metric = opts.metric;
  ds.data.resize(static_cast<size_t>(num_queries) * opts.dim);
  std::mt19937_64 rng(seed * 1000003 + opts.seed);
  std::uniform_int_distribution<int32_t> pick(0, opts.num_clusters - 1);
  std::normal_distribution<float> noise(
      0.0f, static_cast<float>(opts.cluster_spread));
  for (int64_t r = 0; r < num_queries; ++r) {
    const float* c = centers.data() + static_cast<size_t>(pick(rng)) * opts.dim;
    float* row = ds.data.data() + static_cast<size_t>(r) * opts.dim;
    for (int32_t d = 0; d < opts.dim; ++d) row[d] = c[d] + noise(rng);
  }
  if (opts.normalize) NormalizeRows(&ds);
  return ds;
}

float CanonicalScore(const float* a, const float* b, int32_t dim,
                     MetricType metric) {
  switch (metric) {
    case MetricType::kL2:
      return simd::L2Sqr(a, b, dim);
    case MetricType::kInnerProduct:
      return -simd::InnerProduct(a, b, dim);
    case MetricType::kCosine:
      return -simd::CosineSimilarity(a, b, dim);
  }
  return 0;
}

std::vector<std::vector<Neighbor>> BruteForceGroundTruth(
    const VectorDataset& base, const VectorDataset& queries, size_t k) {
  std::vector<std::vector<Neighbor>> out(queries.NumRows());
  for (int64_t q = 0; q < queries.NumRows(); ++q) {
    TopKHeap heap(k);
    const float* qv = queries.Row(q);
    for (int64_t r = 0; r < base.NumRows(); ++r) {
      heap.Push(r, CanonicalScore(qv, base.Row(r), base.dim, base.metric));
    }
    out[q] = heap.TakeSorted();
  }
  return out;
}

double RecallAtK(const std::vector<Neighbor>& result,
                 const std::vector<Neighbor>& truth, size_t k) {
  if (k == 0) return 0;
  std::unordered_set<int64_t> truth_ids;
  for (size_t i = 0; i < std::min(k, truth.size()); ++i) {
    truth_ids.insert(truth[i].id);
  }
  size_t hit = 0;
  for (size_t i = 0; i < std::min(k, result.size()); ++i) {
    hit += truth_ids.count(result[i].id);
  }
  return static_cast<double>(hit) / static_cast<double>(k);
}

double MeanRecall(const std::vector<std::vector<Neighbor>>& results,
                  const std::vector<std::vector<Neighbor>>& truths,
                  size_t k) {
  if (results.empty()) return 0;
  double sum = 0;
  const size_t n = std::min(results.size(), truths.size());
  for (size_t i = 0; i < n; ++i) sum += RecallAtK(results[i], truths[i], k);
  return sum / static_cast<double>(n);
}

}  // namespace manu
