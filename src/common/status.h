#ifndef MANU_COMMON_STATUS_H_
#define MANU_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace manu {

/// Error codes used across the system. Mirrors the RocksDB/Arrow convention:
/// functions that can fail return a Status (or Result<T>) instead of throwing.
///
/// Retryability contract (common/retry.h): only kIOError, kUnavailable and
/// kTimeout are transient — "try the same call again and it may succeed".
/// Everything else is either a caller bug (kInvalidArgument), a durable fact
/// (kNotFound, kAlreadyExists, kCorruption, kDataLoss), a deliberate refusal
/// (kAborted — e.g. epoch fencing), or — critically — kResourceExhausted.
enum class StatusCode : int {
  kOk = 0,
  /// The request itself is malformed (bad dimension, unknown field).
  /// Retrying the identical call can never succeed.
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  /// A storage/transport operation failed in a way that is usually
  /// transient (fault-injected object store, flaky I/O). Retryable.
  kIOError = 4,
  /// Stored bytes are mangled. Never retryable.
  kCorruption = 5,
  /// A bounded wait elapsed (per-node search deadline, consistency wait,
  /// flush wait). Retryable — the next attempt gets a fresh budget.
  kTimeout = 6,
  /// The serving component is (re)starting, stopping or failing over.
  /// Retryable — routing may land the retry on a survivor.
  kUnavailable = 7,
  kNotImplemented = 8,
  /// Deliberately refused to protect an invariant (e.g. a stale-epoch
  /// commit fenced by LeaseManager). Not retryable as-is.
  kAborted = 9,
  /// OVERLOAD signal: admission control, brownout shedding, or write-path
  /// backpressure refused the request to protect the system
  /// (core/admission.h). The message may carry a machine-readable
  /// "retry-after-ms=N" hint (AdmissionController::RetryAfterHintMs).
  /// NEVER blindly retried by RetryPolicy loops — immediate retries are
  /// exactly the storm the refusal exists to stop. The proxy front door
  /// alone may honor the hint, waiting retry-after + jitter first
  /// (admission_write_retry_attempts).
  kResourceExhausted = 10,
  kInternal = 11,
  /// Durably-acked data is gone (e.g. the WAL was truncated above the
  /// archived floor, so recovery cannot replay it). Unlike kCorruption the
  /// surviving state is internally consistent — entries are *missing*, not
  /// mangled.
  kDataLoss = 12,
};

/// A Status encapsulates the result of an operation. It may indicate success,
/// or it may indicate an error with an associated error message.
///
/// The OK state is represented with a null payload so that returning
/// Status::OK() never allocates.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(msg)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsTimeout() const { return code() == StatusCode::kTimeout; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }

  /// Human-readable representation, e.g. "NotFound: segment 12 missing".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;
};

/// Propagates a non-OK status to the caller.
#define MANU_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::manu::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (false)

}  // namespace manu

#endif  // MANU_COMMON_STATUS_H_
