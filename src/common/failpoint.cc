#include "common/failpoint.h"

#include <chrono>
#include <thread>

#include "common/metrics.h"

namespace manu {

std::atomic<int64_t> FailPointRegistry::armed_count_{0};

FailPointRegistry& FailPointRegistry::Global() {
  static FailPointRegistry registry;
  return registry;
}

namespace {
/// SplitMix64 step: deterministic per-site RNG without <random> overhead.
uint64_t NextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

void FailPointRegistry::Arm(const std::string& site, FailPointPolicy policy) {
  std::lock_guard<std::mutex> lk(mu_);
  Site& s = sites_[site];
  if (!s.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  s.policy = std::move(policy);
  s.armed = true;
  s.trips = 0;
  s.rng_state = s.policy.seed;
}

void FailPointRegistry::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FailPointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [_, s] : sites_) {
    if (s.armed) {
      s.armed = false;
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

int64_t FailPointRegistry::Trips(const std::string& site) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.trips;
}

Status FailPointRegistry::Evaluate(const char* site) {
  // Decide under the lock, act (sleep / callback) outside it: a delay
  // policy must not serialize unrelated sites, and a panic callback may
  // re-enter arbitrary code.
  FailPointPolicy::Mode mode;
  StatusCode code;
  std::string message;
  int64_t delay_us = 0;
  std::function<Status()> callback;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end() || !it->second.armed) return Status::OK();
    Site& s = it->second;
    if (s.policy.max_trips >= 0 && s.trips >= s.policy.max_trips) {
      return Status::OK();
    }
    if (s.policy.probability < 1.0) {
      const double u = static_cast<double>(NextRand(&s.rng_state) >> 11) *
                       (1.0 / 9007199254740992.0);  // [0, 1), 53-bit.
      if (u >= s.policy.probability) return Status::OK();
    }
    ++s.trips;
    mode = s.policy.mode;
    code = s.policy.code;
    message = s.policy.message;
    delay_us = s.policy.delay_micros;
    callback = s.policy.callback;
  }

  MetricsRegistry::Global().GetCounter("failpoint.trips")->Add(1);
  MetricsRegistry::Global()
      .GetCounter(std::string("failpoint.") + site + ".trips")
      ->Add(1);

  if (delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
  switch (mode) {
    case FailPointPolicy::Mode::kDelay:
      return Status::OK();
    case FailPointPolicy::Mode::kCallback:
      return callback ? callback() : Status::OK();
    case FailPointPolicy::Mode::kError:
      break;
  }
  std::string msg = std::string("injected fault at ") + site;
  if (!message.empty()) msg += ": " + message;
  return Status(code, std::move(msg));
}

}  // namespace manu
