#include "common/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace manu {

// ---------------------------------------------------------------------------
// RateGauge

void RateGauge::Mark(int64_t n) {
  const int64_t sec = NowMs() / 1000;
  Bucket& b = buckets_[static_cast<size_t>(sec % kBuckets)];
  int64_t cur = b.second.load(std::memory_order_acquire);
  if (cur != sec) {
    // First writer of this second claims the bucket and drops the stale
    // count from `kBuckets` seconds ago. A racing Mark may lose its count
    // to the concurrent reset; at one bucket per second and the rates we
    // track, the error is negligible.
    if (b.second.compare_exchange_strong(cur, sec,
                                         std::memory_order_acq_rel)) {
      b.count.store(0, std::memory_order_relaxed);
    }
  }
  b.count.fetch_add(n, std::memory_order_relaxed);
  total_.fetch_add(n, std::memory_order_relaxed);
}

double RateGauge::RatePerSec(int64_t window_sec) const {
  window_sec = std::clamp<int64_t>(window_sec, 1, kBuckets - 1);
  const int64_t now_sec = NowMs() / 1000;
  int64_t sum = 0;
  for (int64_t s = now_sec - window_sec + 1; s <= now_sec; ++s) {
    const Bucket& b = buckets_[static_cast<size_t>(s % kBuckets)];
    if (b.second.load(std::memory_order_acquire) == s) {
      sum += b.count.load(std::memory_order_relaxed);
    }
  }
  return static_cast<double>(sum) / static_cast<double>(window_sec);
}

void RateGauge::Reset() {
  for (auto& b : buckets_) {
    b.second.store(-1, std::memory_order_relaxed);
    b.count.store(0, std::memory_order_relaxed);
  }
  total_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// LatencyHistogram

namespace {

/// Stable per-thread stripe assignment, round-robin over threads so the
/// parallel-search workers spread across stripes instead of hashing to a
/// shared one.
size_t ThisThreadStripe() {
  static std::atomic<size_t> next{0};
  thread_local const size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) %
      LatencyHistogram::kStripes;
  return stripe;
}

double PercentileOfSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

}  // namespace

void LatencyHistogram::Observe(double micros) {
  Stripe& s = stripes_[ThisThreadStripe()];
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.samples.size() < stripe_capacity_) {
    s.samples.push_back(micros);
  } else {
    s.samples[s.next] = micros;
    s.next = (s.next + 1) % stripe_capacity_;
  }
  ++s.count;
  s.sum += micros;
  s.max = std::max(s.max, micros);
}

std::vector<double> LatencyHistogram::MergedSamples() const {
  std::vector<double> all;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lk(s.mu);
    all.insert(all.end(), s.samples.begin(), s.samples.end());
  }
  return all;
}

double LatencyHistogram::Percentile(double p) const {
  std::vector<double> sorted = MergedSamples();
  std::sort(sorted.begin(), sorted.end());
  return PercentileOfSorted(sorted, p);
}

double LatencyHistogram::Mean() const {
  int64_t count = 0;
  double sum = 0;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lk(s.mu);
    count += s.count;
    sum += s.sum;
  }
  return count == 0 ? 0 : sum / static_cast<double>(count);
}

double LatencyHistogram::Max() const {
  double max = 0;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lk(s.mu);
    max = std::max(max, s.max);
  }
  return max;
}

int64_t LatencyHistogram::Count() const {
  int64_t count = 0;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lk(s.mu);
    count += s.count;
  }
  return count;
}

void LatencyHistogram::Reset() {
  for (auto& s : stripes_) {
    std::lock_guard<std::mutex> lk(s.mu);
    s.samples.clear();
    s.next = 0;
    s.count = 0;
    s.sum = 0;
    s.max = 0;
  }
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  Snapshot snap;
  std::vector<double> sorted;
  double sum = 0;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lk(s.mu);
    sorted.insert(sorted.end(), s.samples.begin(), s.samples.end());
    snap.count += s.count;
    sum += s.sum;
    snap.max = std::max(snap.max, s.max);
  }
  if (snap.count > 0) snap.mean = sum / static_cast<double>(snap.count);
  std::sort(sorted.begin(), sorted.end());
  snap.p50 = PercentileOfSorted(sorted, 50);
  snap.p95 = PercentileOfSorted(sorted, 95);
  snap.p99 = PercentileOfSorted(sorted, 99);
  return snap;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

std::string EncodeMetricKey(const std::string& name,
                            const MetricLabels& labels) {
  if (labels.empty()) return name;
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  key += '{';
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ',';
    key += sorted[i].first;
    key += "=\"";
    key += sorted[i].second;
    key += '"';
  }
  key += '}';
  return key;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

RateGauge* MetricsRegistry::GetRate(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = rates_[name];
  if (slot == nullptr) slot = std::make_unique<RateGauge>();
  return slot.get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const MetricLabels& labels) {
  return GetCounter(EncodeMetricKey(name, labels));
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                const MetricLabels& labels) {
  return GetHistogram(EncodeMetricKey(name, labels));
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const MetricLabels& labels) {
  return GetGauge(EncodeMetricKey(name, labels));
}

RateGauge* MetricsRegistry::GetRate(const std::string& name,
                                    const MetricLabels& labels) {
  return GetRate(EncodeMetricKey(name, labels));
}

int64_t MetricsRegistry::GaugeValue(const std::string& name,
                                    const MetricLabels& labels) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(EncodeMetricKey(name, labels));
  return it == gauges_.end() ? 0 : it->second->Get();
}

int64_t MetricsRegistry::CounterValue(const std::string& name,
                                      const MetricLabels& labels) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(EncodeMetricKey(name, labels));
  return it == counters_.end() ? 0 : it->second->Get();
}

int64_t MetricsRegistry::HistogramCount(const std::string& name,
                                        const MetricLabels& labels) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(EncodeMetricKey(name, labels));
  return it == histograms_.end() ? 0 : it->second->Count();
}

double MetricsRegistry::RateValue(const std::string& name,
                                  const MetricLabels& labels,
                                  int64_t window_sec) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = rates_.find(EncodeMetricKey(name, labels));
  return it == rates_.end() ? 0 : it->second->RatePerSec(window_sec);
}

std::string MetricsRegistry::Dump() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << name << " " << c->Get() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << name << " " << g->Get() << " (gauge)\n";
  }
  for (const auto& [name, r] : rates_) {
    out << name << " " << r->RatePerSec() << "/s total=" << r->Total()
        << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const LatencyHistogram::Snapshot s = h->Snap();
    out << name << " count=" << s.count << " mean_us=" << s.mean
        << " p50_us=" << s.p50 << " p95_us=" << s.p95 << " p99_us=" << s.p99
        << "\n";
  }
  return out.str();
}

namespace {

/// Splits a registry key into (name, label part). The label part keeps its
/// braces: `proxy.searches{collection="sift"}` -> ("proxy.searches",
/// "{collection=\"sift\"}").
std::pair<std::string, std::string> SplitKey(const std::string& key) {
  const size_t brace = key.find('{');
  if (brace == std::string::npos) return {key, ""};
  return {key.substr(0, brace), key.substr(brace)};
}

/// Prometheus family name: dots -> underscores, `manu_` prefix.
std::string PromName(const std::string& name) {
  std::string out = "manu_";
  for (char c : name) out += (c == '.') ? '_' : c;
  return out;
}

/// Inserts an extra label into an encoded label part (possibly empty), for
/// summary quantile series.
std::string WithExtraLabel(const std::string& label_part,
                           const std::string& key, const std::string& value) {
  std::string extra = key + "=\"" + value + "\"";
  if (label_part.empty()) return "{" + extra + "}";
  std::string out = label_part;
  out.insert(out.size() - 1, "," + extra);
  return out;
}

void JsonEscape(std::ostringstream& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

std::string MetricsRegistry::ExportPrometheus() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream out;
  std::string last_family;
  auto type_line = [&](const std::string& name, const char* type) {
    const std::string fam = PromName(name);
    if (fam != last_family) {
      out << "# TYPE " << fam << " " << type << "\n";
      last_family = fam;
    }
    return fam;
  };
  for (const auto& [key, c] : counters_) {
    auto [name, labels] = SplitKey(key);
    out << type_line(name, "counter") << labels << " " << c->Get() << "\n";
  }
  for (const auto& [key, g] : gauges_) {
    auto [name, labels] = SplitKey(key);
    out << type_line(name, "gauge") << labels << " " << g->Get() << "\n";
  }
  for (const auto& [key, r] : rates_) {
    auto [name, labels] = SplitKey(key);
    out << type_line(name, "gauge") << labels << " " << r->RatePerSec()
        << "\n";
  }
  for (const auto& [key, h] : histograms_) {
    auto [name, labels] = SplitKey(key);
    const LatencyHistogram::Snapshot s = h->Snap();
    const std::string fam = type_line(name, "summary");
    out << fam << WithExtraLabel(labels, "quantile", "0.5") << " " << s.p50
        << "\n";
    out << fam << WithExtraLabel(labels, "quantile", "0.95") << " " << s.p95
        << "\n";
    out << fam << WithExtraLabel(labels, "quantile", "0.99") << " " << s.p99
        << "\n";
    out << fam << "_sum" << labels << " "
        << s.mean * static_cast<double>(s.count) << "\n";
    out << fam << "_count" << labels << " " << s.count << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::ExportJson() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream out;
  out << "{\n";
  auto emit_section = [&](const char* section, auto& map, auto&& value_fn,
                          bool last) {
    out << "  \"" << section << "\": {";
    bool first = true;
    for (const auto& [key, v] : map) {
      if (!first) out << ",";
      first = false;
      out << "\n    \"";
      JsonEscape(out, key);
      out << "\": ";
      value_fn(v.get());
    }
    if (!first) out << "\n  ";
    out << "}" << (last ? "\n" : ",\n");
  };
  emit_section("counters", counters_,
               [&](const Counter* c) { out << c->Get(); }, false);
  emit_section("gauges", gauges_, [&](const Gauge* g) { out << g->Get(); },
               false);
  emit_section("rates", rates_,
               [&](const RateGauge* r) {
                 out << "{\"per_sec\": " << r->RatePerSec()
                     << ", \"total\": " << r->Total() << "}";
               },
               false);
  emit_section("histograms", histograms_,
               [&](const LatencyHistogram* h) {
                 const LatencyHistogram::Snapshot s = h->Snap();
                 out << "{\"count\": " << s.count << ", \"mean_us\": "
                     << s.mean << ", \"max_us\": " << s.max
                     << ", \"p50_us\": " << s.p50 << ", \"p95_us\": " << s.p95
                     << ", \"p99_us\": " << s.p99 << "}";
               },
               true);
  out << "}\n";
  return out.str();
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  const std::string json = ExportJson();
  std::ofstream f(path, std::ios::trunc);
  if (!f.is_open()) return false;
  f << json;
  return f.good();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [_, c] : counters_) c->Reset();
  for (auto& [_, g] : gauges_) g->Reset();
  for (auto& [_, r] : rates_) r->Reset();
  for (auto& [_, h] : histograms_) h->Reset();
}

// ---------------------------------------------------------------------------
// Clocks

int64_t NowMs() {
  using namespace std::chrono;
  return duration_cast<milliseconds>(steady_clock::now().time_since_epoch())
      .count();
}

int64_t NowMicros() {
  using namespace std::chrono;
  return duration_cast<microseconds>(steady_clock::now().time_since_epoch())
      .count();
}

int64_t WallTimeMs() {
  using namespace std::chrono;
  return duration_cast<milliseconds>(system_clock::now().time_since_epoch())
      .count();
}

}  // namespace manu
