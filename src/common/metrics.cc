#include "common/metrics.h"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace manu {

void LatencyHistogram::Observe(double micros) {
  std::lock_guard<std::mutex> lk(mu_);
  if (samples_.size() < max_samples_) {
    samples_.push_back(micros);
  } else {
    samples_[next_] = micros;
    next_ = (next_ + 1) % max_samples_;
  }
  ++total_count_;
  total_sum_ += micros;
  max_ = std::max(max_, micros);
}

double LatencyHistogram::Percentile(double p) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (samples_.empty()) return 0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

double LatencyHistogram::Mean() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_count_ == 0 ? 0 : total_sum_ / static_cast<double>(total_count_);
}

double LatencyHistogram::Max() const {
  std::lock_guard<std::mutex> lk(mu_);
  return max_;
}

int64_t LatencyHistogram::Count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_count_;
}

void LatencyHistogram::Reset() {
  std::lock_guard<std::mutex> lk(mu_);
  samples_.clear();
  next_ = 0;
  total_count_ = 0;
  total_sum_ = 0;
  max_ = 0;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

int64_t MetricsRegistry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->Get();
}

int64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->Get();
}

int64_t MetricsRegistry::HistogramCount(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? 0 : it->second->Count();
}

std::string MetricsRegistry::Dump() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << name << " " << c->Get() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << name << " " << g->Get() << " (gauge)\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << name << " count=" << h->Count() << " mean_us=" << h->Mean()
        << " p50_us=" << h->Percentile(50) << " p95_us=" << h->Percentile(95)
        << " p99_us=" << h->Percentile(99) << "\n";
  }
  return out.str();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [_, c] : counters_) c->Reset();
  for (auto& [_, g] : gauges_) g->Reset();
  for (auto& [_, h] : histograms_) h->Reset();
}

int64_t NowMs() {
  using namespace std::chrono;
  return duration_cast<milliseconds>(system_clock::now().time_since_epoch())
      .count();
}

int64_t NowMicros() {
  using namespace std::chrono;
  return duration_cast<microseconds>(steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace manu
