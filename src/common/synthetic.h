#ifndef MANU_COMMON_SYNTHETIC_H_
#define MANU_COMMON_SYNTHETIC_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/topk.h"
#include "common/types.h"

namespace manu {

/// In-memory dense float dataset used by tests, examples and benches.
struct VectorDataset {
  int32_t dim = 0;
  MetricType metric = MetricType::kL2;
  std::vector<float> data;  ///< Row-major, NumRows() * dim floats.

  int64_t NumRows() const {
    return dim > 0 ? static_cast<int64_t>(data.size()) / dim : 0;
  }
  const float* Row(int64_t i) const { return data.data() + i * dim; }
};

/// Options for the Gaussian-mixture generator. The paper evaluates on SIFT
/// (128-d, L2) and DEEP (96-d, IP); both are strongly clustered, which is
/// what makes IVF-style indexes effective, so the generator's key property
/// is a controllable cluster structure.
struct SyntheticOptions {
  int64_t num_rows = 10000;
  int32_t dim = 128;
  int32_t num_clusters = 64;
  double cluster_spread = 0.15;  ///< Intra-cluster stddev relative to the
                                 ///< inter-cluster scale (1.0).
  bool normalize = false;        ///< L2-normalize rows (for IP/cosine data).
  uint64_t seed = 42;
  MetricType metric = MetricType::kL2;
};

/// Generates a clustered dataset (Gaussian mixture with uniformly placed
/// centers in [0,1]^dim).
VectorDataset MakeClusteredDataset(const SyntheticOptions& opts);

/// "SIFT-like": 128-d, L2, clustered, positive-ish coordinates.
VectorDataset MakeSiftLike(int64_t num_rows, uint64_t seed = 42);

/// "DEEP-like": 96-d, unit-normalized, inner product.
VectorDataset MakeDeepLike(int64_t num_rows, uint64_t seed = 42);

/// Draws queries from the same mixture as `opts` but with a different seed,
/// so queries are near clusters without duplicating base rows.
VectorDataset MakeQueries(const SyntheticOptions& opts, int64_t num_queries,
                          uint64_t seed = 7);

/// Canonical score (smaller is better) between two vectors under `metric`.
float CanonicalScore(const float* a, const float* b, int32_t dim,
                     MetricType metric);

/// Exact top-k ground truth by brute force; one Neighbor list per query.
/// O(num_queries * num_rows * dim) — run on modest sizes only.
std::vector<std::vector<Neighbor>> BruteForceGroundTruth(
    const VectorDataset& base, const VectorDataset& queries, size_t k);

/// recall@k of `result` against exact `truth` for one query:
/// |result ∩ truth| / k.
double RecallAtK(const std::vector<Neighbor>& result,
                 const std::vector<Neighbor>& truth, size_t k);

/// Mean recall across queries.
double MeanRecall(const std::vector<std::vector<Neighbor>>& results,
                  const std::vector<std::vector<Neighbor>>& truths, size_t k);

}  // namespace manu

#endif  // MANU_COMMON_SYNTHETIC_H_
