#ifndef MANU_COMMON_BITSET_H_
#define MANU_COMMON_BITSET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace manu {

/// Fixed-capacity concurrent bitset used as the per-segment delete bitmap
/// (Sections 3.5 / 3.6): WAL consumers set bits while search threads test
/// them, without locks. Bits can only be set, never cleared, matching
/// tombstone semantics; Reset() is provided for reuse in tests.
class ConcurrentBitset {
 public:
  explicit ConcurrentBitset(size_t capacity)
      : capacity_(capacity), words_((capacity + 63) / 64) {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }

  /// Sets bit `i`. Returns true if the bit was newly set.
  bool Set(size_t i) {
    uint64_t mask = 1ull << (i & 63);
    uint64_t prev =
        words_[i >> 6].fetch_or(mask, std::memory_order_acq_rel);
    return (prev & mask) == 0;
  }

  /// Clears bit `i`. Used when composing scan masks (allowed AND NOT
  /// deleted); the per-segment delete bitmap itself never clears bits.
  void Clear(size_t i) {
    uint64_t mask = 1ull << (i & 63);
    words_[i >> 6].fetch_and(~mask, std::memory_order_acq_rel);
  }

  bool Test(size_t i) const {
    return (words_[i >> 6].load(std::memory_order_acquire) >>
            (i & 63)) & 1;
  }

  /// Number of set bits. O(words); callers use it for compaction policy,
  /// not on the search hot path.
  size_t Count() const {
    size_t n = 0;
    for (const auto& w : words_) {
      n += static_cast<size_t>(
          __builtin_popcountll(w.load(std::memory_order_acquire)));
    }
    return n;
  }

  bool Any() const {
    for (const auto& w : words_) {
      if (w.load(std::memory_order_acquire) != 0) return true;
    }
    return false;
  }

  void Reset() {
    for (auto& w : words_) w.store(0, std::memory_order_release);
  }

  /// Bulk boolean ops (used by the filter-expression evaluator; both sides
  /// must have equal capacity). Not atomic as a whole — callers own the
  /// bitsets they combine.
  void Or(const ConcurrentBitset& other) {
    for (size_t i = 0; i < words_.size(); ++i) {
      words_[i].fetch_or(other.words_[i].load(std::memory_order_acquire),
                         std::memory_order_acq_rel);
    }
  }

  void And(const ConcurrentBitset& other) {
    for (size_t i = 0; i < words_.size(); ++i) {
      words_[i].fetch_and(other.words_[i].load(std::memory_order_acquire),
                          std::memory_order_acq_rel);
    }
  }

  /// Flips every bit; trailing bits past capacity() are masked off.
  void Not() {
    for (size_t i = 0; i < words_.size(); ++i) {
      words_[i].store(~words_[i].load(std::memory_order_acquire),
                      std::memory_order_release);
    }
    const size_t tail = capacity_ & 63;
    if (tail != 0 && !words_.empty()) {
      const uint64_t mask = (1ull << tail) - 1;
      words_.back().fetch_and(mask, std::memory_order_acq_rel);
    }
  }

  void SetAll() {
    for (auto& w : words_) w.store(~0ull, std::memory_order_release);
    const size_t tail = capacity_ & 63;
    if (tail != 0 && !words_.empty()) {
      const uint64_t mask = (1ull << tail) - 1;
      words_.back().fetch_and(mask, std::memory_order_acq_rel);
    }
  }

  /// Snapshot into a plain vector<bool>-free representation for
  /// serialization.
  std::vector<uint64_t> Snapshot() const {
    std::vector<uint64_t> out(words_.size());
    for (size_t i = 0; i < words_.size(); ++i) {
      out[i] = words_[i].load(std::memory_order_acquire);
    }
    return out;
  }

  void Restore(const std::vector<uint64_t>& snapshot) {
    for (size_t i = 0; i < words_.size() && i < snapshot.size(); ++i) {
      words_[i].store(snapshot[i], std::memory_order_release);
    }
  }

 private:
  size_t capacity_;
  std::vector<std::atomic<uint64_t>> words_;
};

}  // namespace manu

#endif  // MANU_COMMON_BITSET_H_
