#include "common/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <sstream>

#include "common/metrics.h"

namespace manu {

// ---------------------------------------------------------------------------
// Trace

void Trace::Record(SpanRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(rec));
}

std::vector<SpanRecord> Trace::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::string Trace::root_name() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& s : spans_) {
    if (s.parent_id == 0) return s.name;
  }
  return spans_.empty() ? "" : spans_.back().name;
}

// ---------------------------------------------------------------------------
// Span

Span::Span(const TraceContext& ctx, std::string name) {
  if (!ctx.trace) return;
  trace_ = ctx.trace;
  span_id_ = trace_->NextSpanId();
  start_us_ = NowMicros();
  rec_.span_id = span_id_;
  rec_.parent_id = ctx.parent_span_id;
  rec_.name = std::move(name);
  rec_.start_us = start_us_;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    trace_ = std::move(other.trace_);
    span_id_ = other.span_id_;
    start_us_ = other.start_us_;
    is_root_ = other.is_root_;
    rec_ = std::move(other.rec_);
    other.trace_.reset();
    other.is_root_ = false;
  }
  return *this;
}

void Span::Tag(const std::string& key, std::string value) {
  if (!trace_) return;
  rec_.tags.emplace_back(key, std::move(value));
}

void Span::Tag(const std::string& key, int64_t value) {
  if (!trace_) return;
  rec_.tags.emplace_back(key, std::to_string(value));
}

void Span::Tag(const std::string& key, double value) {
  if (!trace_) return;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  rec_.tags.emplace_back(key, buf);
}

void Span::Event(std::string message) {
  if (!trace_) return;
  rec_.events.emplace_back(NowMicros() - start_us_, std::move(message));
}

void Span::End() {
  if (!trace_) return;
  rec_.duration_us = NowMicros() - start_us_;
  std::shared_ptr<Trace> trace = std::move(trace_);
  trace_.reset();
  const int64_t duration_us = rec_.duration_us;
  trace->Record(std::move(rec_));
  if (is_root_) {
    trace->set_root_duration_us(duration_us);
    Tracer::Global().FinishRoot(std::move(trace), duration_us);
  }
}

// ---------------------------------------------------------------------------
// TraceCollector

void TraceCollector::Add(std::shared_ptr<Trace> trace, bool slow) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slow) {
    slow_ring_.push_back(trace);
    while (slow_ring_.size() > slow_capacity_) slow_ring_.pop_front();
  }
  if (trace->sampled()) {
    ring_.push_back(std::move(trace));
    while (ring_.size() > capacity_) ring_.pop_front();
  }
}

std::vector<std::shared_ptr<Trace>> TraceCollector::Traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::vector<std::shared_ptr<Trace>> TraceCollector::SlowTraces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {slow_ring_.begin(), slow_ring_.end()};
}

std::shared_ptr<Trace> TraceCollector::Find(uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& t : ring_) {
    if (t->id() == trace_id) return t;
  }
  for (const auto& t : slow_ring_) {
    if (t->id() == trace_id) return t;
  }
  return nullptr;
}

void TraceCollector::SetCapacity(size_t traces, size_t slow) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = traces;
  slow_capacity_ = slow;
  while (ring_.size() > capacity_) ring_.pop_front();
  while (slow_ring_.size() > slow_capacity_) slow_ring_.pop_front();
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  slow_ring_.clear();
}

namespace {

void AppendSpanLine(std::ostringstream& out, const SpanRecord& span,
                    const std::string& prefix, bool last) {
  out << prefix << (last ? "`- " : "|- ") << span.name << " "
      << span.duration_us << "us";
  for (const auto& [k, v] : span.tags) out << " " << k << "=" << v;
  out << "\n";
  for (const auto& [offset_us, msg] : span.events) {
    out << prefix << (last ? "   " : "|  ") << "   @" << offset_us << "us "
        << msg << "\n";
  }
}

void RenderSubtree(std::ostringstream& out,
                   const std::multimap<uint64_t, const SpanRecord*>& children,
                   uint64_t parent, const std::string& prefix) {
  auto [begin, end] = children.equal_range(parent);
  std::vector<const SpanRecord*> kids;
  for (auto it = begin; it != end; ++it) kids.push_back(it->second);
  std::sort(kids.begin(), kids.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return a->start_us != b->start_us ? a->start_us < b->start_us
                                                : a->span_id < b->span_id;
            });
  for (size_t i = 0; i < kids.size(); ++i) {
    const bool last = i + 1 == kids.size();
    AppendSpanLine(out, *kids[i], prefix, last);
    RenderSubtree(out, children, kids[i]->span_id,
                  prefix + (last ? "   " : "|  "));
  }
}

}  // namespace

std::string TraceCollector::Render(const Trace& trace) {
  const std::vector<SpanRecord> spans = trace.Snapshot();
  std::multimap<uint64_t, const SpanRecord*> children;
  for (const auto& s : spans) children.emplace(s.parent_id, &s);
  std::ostringstream out;
  out << "trace " << trace.id() << " " << trace.root_name() << " "
      << trace.root_duration_us() << "us"
      << (trace.sampled() ? " sampled" : "") << "\n";
  RenderSubtree(out, children, /*parent=*/0, "");
  return out.str();
}

std::string TraceCollector::DumpSlow() const {
  std::ostringstream out;
  for (const auto& t : SlowTraces()) out << Render(*t);
  return out.str();
}

// ---------------------------------------------------------------------------
// Tracer

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Configure(int64_t sample_every, int64_t slow_us) {
  sample_every_.store(sample_every, std::memory_order_relaxed);
  slow_us_.store(slow_us, std::memory_order_relaxed);
}

Span Tracer::StartTrace(std::string name, bool force_sample) {
  const int64_t every = sample_every_.load(std::memory_order_relaxed);
  bool sampled = force_sample;
  if (!sampled && every > 0) {
    // Deterministic 1-in-N: the first request is sampled, so short tests
    // with sample_every=1..N still retain something.
    sampled = sample_counter_.fetch_add(1, std::memory_order_relaxed) %
                  static_cast<uint64_t>(every) ==
              0;
  }
  auto trace = std::make_shared<Trace>(
      next_trace_id_.fetch_add(1, std::memory_order_relaxed), sampled);
  Span root({trace, 0}, std::move(name));
  root.is_root_ = true;
  return root;
}

void Tracer::FinishRoot(std::shared_ptr<Trace> trace, int64_t duration_us) {
  const int64_t slow = slow_us_.load(std::memory_order_relaxed);
  const bool is_slow = slow > 0 && duration_us >= slow;
  if (is_slow) {
    MetricsRegistry::Global().GetCounter("trace.slow_queries")->Add();
  }
  if (trace->sampled() || is_slow) {
    collector_.Add(std::move(trace), is_slow);
  }
}

void Tracer::ResetForTest() {
  sample_every_.store(64, std::memory_order_relaxed);
  slow_us_.store(500000, std::memory_order_relaxed);
  sample_counter_.store(0, std::memory_order_relaxed);
  collector_.SetCapacity(128, 64);
  collector_.Clear();
}

}  // namespace manu
