#ifndef MANU_COMMON_CHANNEL_H_
#define MANU_COMMON_CHANNEL_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace manu {

/// Why a timed pop returned without an item: a closed-and-drained channel is
/// terminal (the consumer should exit its loop), a timeout is not (retry).
/// Collapsing both into nullopt makes consumers burn full timeouts against
/// dead channels, so the timed pops report which case occurred.
enum class PopStatus { kItem, kTimeout, kClosed };

/// Unbounded MPMC blocking queue. Used for in-process "RPC" between the
/// simulated microservices and inside worker nodes. Close() wakes all
/// blocked readers; subsequent Pop() calls drain remaining items and then
/// return nullopt.
template <typename T>
class Channel {
 public:
  /// Returns false when the item was dropped because the channel is closed
  /// (callers that must not lose work — e.g. ThreadPool::Submit — fall back
  /// to running it themselves).
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return false;  // Drop writes after close.
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the channel is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Like Pop() but gives up after `timeout`; returns nullopt on timeout or
  /// closed-and-drained. Use PopForStatus to tell the two apart.
  std::optional<T> PopFor(std::chrono::milliseconds timeout) {
    T item;
    if (PopForStatus(timeout, &item) != PopStatus::kItem) return std::nullopt;
    return item;
  }

  /// Timed pop with a distinct terminal status: kClosed is returned
  /// *immediately* on a closed-and-drained channel (no timeout burned),
  /// kTimeout after waiting `timeout` on a live-but-empty one.
  PopStatus PopForStatus(std::chrono::milliseconds timeout, T* out) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait_for(lk, timeout, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return closed_ ? PopStatus::kClosed
                                       : PopStatus::kTimeout;
    *out = std::move(items_.front());
    items_.pop_front();
    return PopStatus::kItem;
  }

  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lk(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace manu

#endif  // MANU_COMMON_CHANNEL_H_
