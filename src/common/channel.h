#ifndef MANU_COMMON_CHANNEL_H_
#define MANU_COMMON_CHANNEL_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace manu {

/// Unbounded MPMC blocking queue. Used for in-process "RPC" between the
/// simulated microservices and inside worker nodes. Close() wakes all
/// blocked readers; subsequent Pop() calls drain remaining items and then
/// return nullopt.
template <typename T>
class Channel {
 public:
  void Push(T item) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return;  // Drop writes after close.
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Blocks until an item is available or the channel is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Like Pop() but gives up after `timeout`; returns nullopt on timeout or
  /// closed-and-drained.
  std::optional<T> PopFor(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait_for(lk, timeout, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lk(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace manu

#endif  // MANU_COMMON_CHANNEL_H_
