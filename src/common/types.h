#ifndef MANU_COMMON_TYPES_H_
#define MANU_COMMON_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>

namespace manu {

// ---------------------------------------------------------------------------
// Identifier types. Plain integers (not strong typedefs) keep serialization
// and hashing trivial; names document intent at call sites.
// ---------------------------------------------------------------------------
using CollectionId = int64_t;
using SegmentId = int64_t;
using FieldId = int64_t;
using NodeId = int64_t;
using EntityId = int64_t;  ///< Primary key when the user picks integer PKs.
using ShardId = int32_t;

inline constexpr CollectionId kInvalidCollectionId = -1;
inline constexpr SegmentId kInvalidSegmentId = -1;
inline constexpr NodeId kInvalidNodeId = -1;

// ---------------------------------------------------------------------------
// Hybrid logical timestamps (Section 3.4 of the paper).
//
// A Timestamp packs a physical component (milliseconds since epoch) in the
// high 46 bits and a logical counter in the low 18 bits, exactly like the
// TSO timestamps Manu uses as LSNs. The physical part makes user-facing
// staleness bounds ("10 seconds") directly computable from LSN deltas.
// ---------------------------------------------------------------------------
using Timestamp = uint64_t;

inline constexpr int kLogicalBits = 18;
inline constexpr uint64_t kLogicalMask = (1ull << kLogicalBits) - 1;
inline constexpr Timestamp kMaxTimestamp =
    std::numeric_limits<Timestamp>::max();

/// Composes a hybrid timestamp from physical milliseconds and a logical
/// counter.
inline constexpr Timestamp ComposeTimestamp(uint64_t physical_ms,
                                            uint64_t logical) {
  return (physical_ms << kLogicalBits) | (logical & kLogicalMask);
}

/// Extracts the physical (millisecond) component of a hybrid timestamp.
inline constexpr uint64_t PhysicalMs(Timestamp ts) {
  return ts >> kLogicalBits;
}

/// Extracts the logical counter of a hybrid timestamp.
inline constexpr uint64_t LogicalPart(Timestamp ts) {
  return ts & kLogicalMask;
}

// ---------------------------------------------------------------------------
// Enumerations shared across layers.
// ---------------------------------------------------------------------------

/// Similarity/distance functions supported for vector search (Section 3.6).
enum class MetricType : uint8_t {
  kL2 = 0,            ///< Euclidean distance; smaller is more similar.
  kInnerProduct = 1,  ///< Inner product; larger is more similar.
  kCosine = 2,        ///< Angular similarity; larger is more similar.
};

/// Index families from Table 1 that this reproduction implements.
enum class IndexType : uint8_t {
  kFlat = 0,    ///< Brute-force scan (also the growing-segment fallback).
  kIvfFlat = 1, ///< Inverted lists over k-means clusters, raw vectors.
  kIvfPq = 2,   ///< Inverted lists with product-quantized residual codes.
  kIvfSq = 3,   ///< Inverted lists with scalar-quantized (8-bit) codes.
  kPq = 4,      ///< Flat product quantization.
  kSq8 = 5,     ///< Flat 8-bit scalar quantization.
  kHnsw = 6,    ///< Hierarchical navigable small world proximity graph.
  kSsdBucket = 7, ///< Section 4.4 SSD bucket index (SPANN-like).
  kIvfHnsw = 8, ///< Inverted lists probed through an HNSW over centroids.
  kRq = 9,      ///< Residual (additive) quantization, ADC scan.
  kImi = 10,    ///< Inverted multi-index (product-coarse cells).
};

/// Segment life-cycle states (Section 3.1).
enum class SegmentState : uint8_t {
  kGrowing = 0,  ///< Accepting inserts from the WAL, searched by brute force
                 ///< or a temporary slice index.
  kSealed = 1,   ///< Read-only; binlog flushed; eligible for index build.
  kIndexed = 2,  ///< Sealed and a full index is available in object storage.
  kDropped = 3,  ///< Compacted away or deleted.
};

/// Named consistency levels; all are sugar over a staleness bound
/// (delta consistency, Section 3.4).
enum class ConsistencyLevel : uint8_t {
  kStrong = 0,     ///< tau = 0: see every write issued before the query.
  kBounded = 1,    ///< tau = user-provided bound.
  kEventually = 2, ///< tau = infinity: never wait.
};

/// Returns a short lower-case name, e.g. "ivf_flat"; used in logs and bench
/// output.
const char* ToString(IndexType type);
const char* ToString(MetricType metric);
const char* ToString(SegmentState state);

// ---------------------------------------------------------------------------
// Misc small constants mirroring the paper's defaults.
// ---------------------------------------------------------------------------

/// Default sealed-segment size threshold (paper: 512 MB). Tests and benches
/// override this via CollectionConfig; the constant documents the default.
inline constexpr uint64_t kDefaultSegmentSealBytes = 512ull << 20;

/// Default rows per growing-segment slice (paper: 10,000 vectors).
inline constexpr int64_t kDefaultSliceRows = 10000;

}  // namespace manu

#endif  // MANU_COMMON_TYPES_H_
