#ifndef MANU_COMMON_FAILPOINT_H_
#define MANU_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/status.h"

namespace manu {

/// Fault-injection framework: a process-global registry of named fault
/// sites. Production code marks each I/O or scheduling decision that can
/// fail in a real deployment with MANU_FAILPOINT("site.name"); tests and
/// benches arm a site with a policy (error-once, error-with-probability-p,
/// delay, custom callback) through a scoped RAII guard and observe how the
/// system degrades and recovers.
///
/// Cost model: when nothing is armed anywhere in the process, a failpoint
/// site is one relaxed atomic load of a global counter (no lock, no map
/// lookup, no branch beyond the predicted-false test) — cheap enough to
/// leave in query hot paths permanently. Only when at least one site is
/// armed does evaluation take the registry lock.
///
/// Failpoint site catalog (see DESIGN.md "Fault model & recovery"):
///   object_store.put / get / get_range / exists / delete / list / size
///   meta_store.put / get / cas / delete
///   mq.publish
///   binlog.write / binlog.read
///   data_node.seal
///   index_node.build
///   query_node.load_segment / query_node.search_segment
struct FailPointPolicy {
  enum class Mode : uint8_t {
    kError,     ///< Return `code` (honoring probability / max_trips).
    kDelay,     ///< Sleep `delay_micros`, then succeed.
    kCallback,  ///< Invoke `callback` and inject whatever it returns
                ///< ("panic the node": the callback kills a node object).
  };

  Mode mode = Mode::kError;
  StatusCode code = StatusCode::kIOError;
  std::string message;         ///< Appended to the injected error text.
  double probability = 1.0;    ///< Chance each evaluation triggers.
  int64_t max_trips = -1;      ///< Total trips before auto-off; -1 = no cap.
  int64_t delay_micros = 0;    ///< kDelay sleep; also applied before kError.
  uint64_t seed = 0x9E3779B9;  ///< Probability RNG seed (determinism).
  std::function<Status()> callback;  ///< kCallback only.

  // --- The policies the chaos suite names, ready-made ---
  static FailPointPolicy ErrorOnce(StatusCode c = StatusCode::kIOError) {
    FailPointPolicy p;
    p.code = c;
    p.max_trips = 1;
    return p;
  }
  static FailPointPolicy ErrorTimes(int64_t n,
                                    StatusCode c = StatusCode::kIOError) {
    FailPointPolicy p;
    p.code = c;
    p.max_trips = n;
    return p;
  }
  static FailPointPolicy ErrorWithProbability(
      double prob, uint64_t seed = 0x9E3779B9,
      StatusCode c = StatusCode::kIOError) {
    FailPointPolicy p;
    p.code = c;
    p.probability = prob;
    p.seed = seed;
    return p;
  }
  static FailPointPolicy Delay(int64_t micros) {
    FailPointPolicy p;
    p.mode = Mode::kDelay;
    p.delay_micros = micros;
    return p;
  }
  static FailPointPolicy Panic(std::function<Status()> cb) {
    FailPointPolicy p;
    p.mode = Mode::kCallback;
    p.callback = std::move(cb);
    return p;
  }
};

class FailPointRegistry {
 public:
  static FailPointRegistry& Global();

  /// Arms (or re-arms) `site` with `policy`.
  void Arm(const std::string& site, FailPointPolicy policy);
  void Disarm(const std::string& site);
  void DisarmAll();

  /// Slow path behind MANU_FAILPOINT: evaluates the site's policy. OK when
  /// the site is disarmed or the policy chose not to trigger this time.
  Status Evaluate(const char* site);

  /// Trips recorded for a site since it was last armed (0 if never armed).
  int64_t Trips(const std::string& site) const;

  /// True iff any site in the process is armed. Single relaxed load — the
  /// entire disarmed-mode cost of a failpoint.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

 private:
  struct Site {
    FailPointPolicy policy;
    bool armed = false;
    int64_t trips = 0;
    uint64_t rng_state = 0;
  };

  FailPointRegistry() = default;

  static std::atomic<int64_t> armed_count_;

  mutable std::mutex mu_;
  std::map<std::string, Site> sites_;
};

/// RAII guard: arms a site for the current scope, disarms on exit. The unit
/// of fault injection in tests and benches.
class ScopedFailPoint {
 public:
  ScopedFailPoint(std::string site, FailPointPolicy policy)
      : site_(std::move(site)) {
    FailPointRegistry::Global().Arm(site_, std::move(policy));
  }
  ~ScopedFailPoint() { FailPointRegistry::Global().Disarm(site_); }
  ScopedFailPoint(const ScopedFailPoint&) = delete;
  ScopedFailPoint& operator=(const ScopedFailPoint&) = delete;

  int64_t trips() const { return FailPointRegistry::Global().Trips(site_); }
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// Evaluates a fault site and propagates an injected error to the caller.
/// Usable in any function returning Status or Result<T>.
#define MANU_FAILPOINT(site)                                             \
  do {                                                                   \
    if (__builtin_expect(::manu::FailPointRegistry::AnyArmed(), 0)) {    \
      ::manu::Status _fp_st =                                            \
          ::manu::FailPointRegistry::Global().Evaluate(site);            \
      if (!_fp_st.ok()) return _fp_st;                                   \
    }                                                                    \
  } while (false)

/// Variant for functions that cannot propagate a Status: stores the injected
/// status into `st_out` (a Status lvalue) and lets the caller decide.
#define MANU_FAILPOINT_CAPTURE(site, st_out)                             \
  do {                                                                   \
    if (__builtin_expect(::manu::FailPointRegistry::AnyArmed(), 0)) {    \
      (st_out) = ::manu::FailPointRegistry::Global().Evaluate(site);     \
    }                                                                    \
  } while (false)

}  // namespace manu

#endif  // MANU_COMMON_FAILPOINT_H_
