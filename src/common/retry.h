#ifndef MANU_COMMON_RETRY_H_
#define MANU_COMMON_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace manu {

/// Shared retry policy for storage/meta I/O: capped exponential backoff with
/// deterministic jitter, bounded both by an attempt budget and a wall-clock
/// deadline. Data nodes, index nodes and query-node segment-load paths all
/// route their object-store and meta I/O through this (the paper's stateless
/// workers rebuild from shared storage, so transient storage faults must be
/// absorbed here rather than surfaced as node failures).
///
/// Only transient codes are retried (kIOError, kUnavailable, kTimeout);
/// semantic failures (kNotFound, kCorruption, kInvalidArgument, CAS
/// kAborted...) propagate immediately — retrying cannot fix them.
///
/// kResourceExhausted is deliberately NOT retryable: it is the overload
/// signal (admission shedding, write-path backpressure — see status.h and
/// core/admission.h), and blind retry loops turn one refusal into a retry
/// storm that amplifies the very overload it reports. Only the proxy front
/// door may re-attempt, and only after honoring the "retry-after-ms=N"
/// hint plus jitter (admission_write_retry_attempts).
///
/// Metrics (registered on first use):
///   retry.attempts   total extra attempts across all ops
///   retry.giveups    ops that exhausted their budget
///   retry.<op>.attempts / retry.<op>.giveups   per-op breakdown
struct RetryPolicy {
  int32_t max_attempts = 4;        ///< Total tries (first + retries).
  int64_t base_backoff_us = 200;   ///< First retry delay.
  int64_t max_backoff_us = 20000;  ///< Cap on any single delay.
  double multiplier = 2.0;         ///< Exponential growth factor.
  double jitter = 0.25;            ///< +/- fraction of the delay.
  int64_t deadline_us = -1;        ///< Whole-op wall budget; -1 = none.

  static bool IsRetryable(const Status& st) {
    switch (st.code()) {
      case StatusCode::kIOError:
      case StatusCode::kUnavailable:
      case StatusCode::kTimeout:
        return true;
      default:
        return false;
    }
  }

  /// Backoff before retry number `attempt` (1-based), with deterministic
  /// jitter derived from (op, attempt) so runs are reproducible.
  int64_t BackoffMicros(int32_t attempt, const std::string& op) const;
};

/// Runs `fn` under `policy`. `op` names the operation for metrics
/// ("data_node.write_binlog", "query_node.load_segment", ...).
Status RetryOp(const RetryPolicy& policy, const std::string& op,
               const std::function<Status()>& fn);

/// Result<T> variant: retries while the result carries a retryable status.
template <typename Fn>
auto RetryResult(const RetryPolicy& policy, const std::string& op, Fn&& fn)
    -> decltype(fn()) {
  decltype(fn()) result;
  (void)RetryOp(policy, op, [&]() -> Status {
    result = fn();
    return result.status();
  });
  return result;  // Holds the final attempt's value or error.
}

}  // namespace manu

#endif  // MANU_COMMON_RETRY_H_
