#ifndef MANU_COMMON_TOPK_H_
#define MANU_COMMON_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace manu {

/// One search hit. `score` is canonical: smaller is always better. For L2
/// the score is the squared distance; for inner product and cosine it is the
/// negated similarity. Canonicalizing at the kernel boundary lets every
/// index, reducer and heap share one comparison direction.
struct Neighbor {
  int64_t id = -1;     ///< Row offset within a segment, or a primary key
                       ///< after segment-level results are mapped.
  float score = 0.0f;  ///< Canonical score; smaller is better.

  bool operator<(const Neighbor& other) const {
    // Ties broken by id for deterministic results across runs.
    if (score != other.score) return score < other.score;
    return id < other.id;
  }
  bool operator==(const Neighbor&) const = default;
};

/// Bounded top-k collector backed by a max-heap on score: the root is the
/// current worst kept hit, so a candidate only enters if it beats the root.
class TopKHeap {
 public:
  explicit TopKHeap(size_t k) : k_(k) { heap_.reserve(k + 1); }

  /// Current admission threshold: candidates with score >= Worst() when the
  /// heap is full can be skipped by callers (pruning hook for indexes).
  float Worst() const {
    return Full() ? heap_.front().score
                  : std::numeric_limits<float>::infinity();
  }
  bool Full() const { return heap_.size() >= k_; }
  size_t Size() const { return heap_.size(); }

  void Push(int64_t id, float score) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back({id, score});
      std::push_heap(heap_.begin(), heap_.end(), WorseFirst);
    } else if (score < heap_.front().score ||
               (score == heap_.front().score && id < heap_.front().id)) {
      std::pop_heap(heap_.begin(), heap_.end(), WorseFirst);
      heap_.back() = {id, score};
      std::push_heap(heap_.begin(), heap_.end(), WorseFirst);
    }
  }

  /// Extracts hits sorted best-first; the heap is left empty.
  std::vector<Neighbor> TakeSorted() {
    std::vector<Neighbor> out = std::move(heap_);
    heap_.clear();
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  static bool WorseFirst(const Neighbor& a, const Neighbor& b) {
    return a < b;  // max-heap on score: worst (largest) at front.
  }

  size_t k_;
  std::vector<Neighbor> heap_;
};

/// Merges several best-first-sorted hit lists into one global top-k,
/// dropping duplicate ids (the paper: "proxies remove duplicate result
/// vectors" because a segment may live on two query nodes mid-rebalance).
/// With dedup the merge keeps the best score per id before selecting k, so
/// arbitrarily many replica duplicates cannot starve distinct candidates
/// out of the result. The selection is order-independent (strict (score,
/// id) ordering), which is what lets parallel segment searches fill their
/// per-chunk lists in any completion order and still reduce to a
/// deterministic top-k.
std::vector<Neighbor> MergeTopK(
    const std::vector<std::vector<Neighbor>>& lists, size_t k,
    bool dedup_ids = true);

}  // namespace manu

#endif  // MANU_COMMON_TOPK_H_
