#include "common/types.h"

namespace manu {

const char* ToString(IndexType type) {
  switch (type) {
    case IndexType::kFlat:
      return "flat";
    case IndexType::kIvfFlat:
      return "ivf_flat";
    case IndexType::kIvfPq:
      return "ivf_pq";
    case IndexType::kIvfSq:
      return "ivf_sq8";
    case IndexType::kPq:
      return "pq";
    case IndexType::kSq8:
      return "sq8";
    case IndexType::kHnsw:
      return "hnsw";
    case IndexType::kSsdBucket:
      return "ssd_bucket";
    case IndexType::kIvfHnsw:
      return "ivf_hnsw";
    case IndexType::kRq:
      return "rq";
    case IndexType::kImi:
      return "imi";
  }
  return "unknown";
}

const char* ToString(MetricType metric) {
  switch (metric) {
    case MetricType::kL2:
      return "l2";
    case MetricType::kInnerProduct:
      return "ip";
    case MetricType::kCosine:
      return "cosine";
  }
  return "unknown";
}

const char* ToString(SegmentState state) {
  switch (state) {
    case SegmentState::kGrowing:
      return "growing";
    case SegmentState::kSealed:
      return "sealed";
    case SegmentState::kIndexed:
      return "indexed";
    case SegmentState::kDropped:
      return "dropped";
  }
  return "unknown";
}

}  // namespace manu
