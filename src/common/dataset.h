#ifndef MANU_COMMON_DATASET_H_
#define MANU_COMMON_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/schema.h"
#include "common/serde.h"
#include "common/types.h"

namespace manu {

/// Column of values for one field across a batch of entities. Exactly one of
/// the payload vectors is populated, selected by `type`. Vector fields store
/// row-major flattened floats (`f32.size() == rows * dim`).
///
/// This is the unit the data nodes transpose WAL rows into: binlog files are
/// sequences of serialized FieldColumns, which is what makes the binlog
/// column-based (Section 3.3).
struct FieldColumn {
  FieldId field_id = 0;
  DataType type = DataType::kInt64;
  int32_t dim = 0;  ///< > 0 only for kFloatVector.

  std::vector<int64_t> i64;
  std::vector<float> f32;
  std::vector<double> f64;
  std::vector<uint8_t> b8;
  std::vector<std::string> str;

  int64_t NumRows() const;
  /// Appends all rows of `other` (same field) to this column.
  Status Append(const FieldColumn& other);
  /// Copies rows [begin, end) into a new column.
  FieldColumn Slice(int64_t begin, int64_t end) const;
  /// Pointer to row `row` of a vector column.
  const float* VectorAt(int64_t row) const { return f32.data() + row * dim; }

  void Serialize(BinaryWriter* w) const;
  static Result<FieldColumn> Deserialize(BinaryReader* r);

  /// Convenience constructors.
  static FieldColumn MakeInt64(FieldId id, std::vector<int64_t> values);
  static FieldColumn MakeFloat(FieldId id, std::vector<float> values);
  static FieldColumn MakeDouble(FieldId id, std::vector<double> values);
  static FieldColumn MakeBool(FieldId id, std::vector<uint8_t> values);
  static FieldColumn MakeString(FieldId id, std::vector<std::string> values);
  static FieldColumn MakeFloatVector(FieldId id, int32_t dim,
                                     std::vector<float> flat);
};

/// A batch of entities being inserted (or replayed). Primary keys and
/// per-row timestamps travel beside the user field columns; timestamps are
/// empty until a logger assigns LSNs.
struct EntityBatch {
  std::vector<int64_t> primary_keys;
  std::vector<Timestamp> timestamps;
  std::vector<FieldColumn> columns;

  int64_t NumRows() const { return static_cast<int64_t>(primary_keys.size()); }

  const FieldColumn* ColumnByFieldId(FieldId id) const;
  FieldColumn* MutableColumnByFieldId(FieldId id);

  /// Appends all rows of `other`; columns are matched by field id.
  Status Append(const EntityBatch& other);
  /// Copies rows [begin, end) into a new batch.
  EntityBatch Slice(int64_t begin, int64_t end) const;

  /// Checks the batch against a schema: every non-PK field present, row
  /// counts aligned, vector dims matching.
  Status ValidateAgainst(const CollectionSchema& schema) const;

  /// Approximate in-memory size in bytes; drives segment sealing.
  uint64_t ByteSize() const;

  void Serialize(BinaryWriter* w) const;
  static Result<EntityBatch> Deserialize(BinaryReader* r);
};

}  // namespace manu

#endif  // MANU_COMMON_DATASET_H_
