#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace manu {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_emit_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace internal {
void EmitLog(LogLevel level, const char* file, int line,
             const std::string& msg) {
  using namespace std::chrono;
  const auto now = system_clock::now().time_since_epoch();
  const auto ms = duration_cast<milliseconds>(now).count();
  std::lock_guard<std::mutex> lk(g_emit_mu);
  std::fprintf(stderr, "%s %lld.%03lld %s:%d] %s\n", LevelName(level),
               static_cast<long long>(ms / 1000),
               static_cast<long long>(ms % 1000), Basename(file), line,
               msg.c_str());
}
}  // namespace internal

}  // namespace manu
