#include "common/schema.h"

namespace manu {

const char* ToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat:
      return "float";
    case DataType::kDouble:
      return "double";
    case DataType::kBool:
      return "bool";
    case DataType::kString:
      return "string";
    case DataType::kFloatVector:
      return "float_vector";
  }
  return "unknown";
}

void FieldSchema::Serialize(BinaryWriter* w) const {
  w->PutI64(id);
  w->PutString(name);
  w->PutU8(static_cast<uint8_t>(type));
  w->PutI32(dim);
  w->PutBool(is_primary);
  w->PutU8(static_cast<uint8_t>(metric));
}

Result<FieldSchema> FieldSchema::Deserialize(BinaryReader* r) {
  FieldSchema f;
  MANU_ASSIGN_OR_RETURN(f.id, r->GetI64());
  MANU_ASSIGN_OR_RETURN(f.name, r->GetString());
  MANU_ASSIGN_OR_RETURN(uint8_t type, r->GetU8());
  f.type = static_cast<DataType>(type);
  MANU_ASSIGN_OR_RETURN(f.dim, r->GetI32());
  MANU_ASSIGN_OR_RETURN(f.is_primary, r->GetBool());
  MANU_ASSIGN_OR_RETURN(uint8_t metric, r->GetU8());
  f.metric = static_cast<MetricType>(metric);
  return f;
}

Status CollectionSchema::AddField(FieldSchema field) {
  if (field.name.empty()) {
    return Status::InvalidArgument("field name must not be empty");
  }
  if (FieldByName(field.name) != nullptr) {
    return Status::AlreadyExists("duplicate field name: " + field.name);
  }
  if (field.is_primary) {
    if (PrimaryField() != nullptr) {
      return Status::InvalidArgument("collection already has a primary key");
    }
    if (field.type != DataType::kInt64 && field.type != DataType::kString) {
      return Status::InvalidArgument(
          "primary key must be int64 or string: " + field.name);
    }
  }
  if (field.IsVector() && field.dim <= 0) {
    return Status::InvalidArgument("vector field needs dim > 0: " +
                                   field.name);
  }
  if (!field.IsVector() && field.dim != 0) {
    return Status::InvalidArgument("scalar field must have dim == 0: " +
                                   field.name);
  }
  field.id = next_field_id_++;
  fields_.push_back(std::move(field));
  return Status::OK();
}

Status CollectionSchema::Finalize() {
  if (name_.empty()) {
    return Status::InvalidArgument("collection name must not be empty");
  }
  if (PrimaryField() == nullptr) {
    FieldSchema pk;
    pk.name = "_pk";
    pk.type = DataType::kInt64;
    pk.is_primary = true;
    MANU_RETURN_NOT_OK(AddField(std::move(pk)));
  }
  return Status::OK();
}

const FieldSchema* CollectionSchema::FieldByName(
    const std::string& name) const {
  for (const auto& f : fields_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const FieldSchema* CollectionSchema::FieldById(FieldId id) const {
  for (const auto& f : fields_) {
    if (f.id == id) return &f;
  }
  return nullptr;
}

const FieldSchema* CollectionSchema::PrimaryField() const {
  for (const auto& f : fields_) {
    if (f.is_primary) return &f;
  }
  return nullptr;
}

std::vector<const FieldSchema*> CollectionSchema::VectorFields() const {
  std::vector<const FieldSchema*> out;
  for (const auto& f : fields_) {
    if (f.IsVector()) out.push_back(&f);
  }
  return out;
}

void CollectionSchema::Serialize(BinaryWriter* w) const {
  w->PutString(name_);
  w->PutI64(next_field_id_);
  w->PutU32(static_cast<uint32_t>(fields_.size()));
  for (const auto& f : fields_) f.Serialize(w);
}

Result<CollectionSchema> CollectionSchema::Deserialize(BinaryReader* r) {
  CollectionSchema schema;
  MANU_ASSIGN_OR_RETURN(schema.name_, r->GetString());
  MANU_ASSIGN_OR_RETURN(schema.next_field_id_, r->GetI64());
  MANU_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  schema.fields_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    MANU_ASSIGN_OR_RETURN(FieldSchema f, FieldSchema::Deserialize(r));
    schema.fields_.push_back(std::move(f));
  }
  return schema;
}

}  // namespace manu
