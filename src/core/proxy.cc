#include "core/proxy.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <map>
#include <optional>
#include <thread>

#include "common/metrics.h"

namespace manu {

Proxy::Proxy(const CoreContext& ctx, RootCoordinator* root_coord,
             QueryCoordinator* query_coord, LoggerFleet* loggers)
    : ctx_(ctx),
      root_coord_(root_coord),
      query_coord_(query_coord),
      loggers_(loggers),
      admission_(ctx.config),
      // Fan-out workers mostly wait on node executors; size generously so
      // the proxy never serializes multi-node dispatch.
      pool_(64) {
  // Brownout pressure = the worst query-node inflight ratio: the fleet's
  // queues are the paper's "degrade before you fall over" signal. Zero
  // when node caps are off (the inflight-ratio term in the controller
  // still applies).
  admission_.SetPressureProbe([this]() -> double {
    const int64_t cap = ctx_.config.admission_node_inflight;
    if (cap <= 0) return 0.0;
    double worst = 0.0;
    for (const auto& node : query_coord_->Nodes()) {
      worst = std::max(worst,
                       static_cast<double>(node->LoadSnapshot().inflight) /
                           static_cast<double>(cap));
    }
    return worst;
  });
}

void Proxy::RecordAdmission(Span* span, const AdmitDecision& decision) {
  if (span != nullptr) {
    span->Tag("admission", decision.reason);
    if (decision.stage > 0) {
      span->Tag("admission_stage", static_cast<int64_t>(decision.stage));
    }
  }
  auto& metrics = MetricsRegistry::Global();
  if (decision.admitted()) {
    metrics.GetCounter("admission.admitted")->Add();
    if (decision.action == AdmitAction::kDegrade) {
      metrics.GetCounter("admission.degraded")->Add();
    }
  } else {
    metrics.GetCounter("admission.rejected")->Add();
    metrics.GetCounter("shed.requests", {{"reason", decision.reason}})->Add();
  }
  metrics.GetGauge("admission.inflight")->Set(admission_.inflight());
  metrics.GetGauge("admission.pressure_bp")
      ->Set(static_cast<int64_t>(admission_.pressure() * 10000.0));
}

int64_t Proxy::DegradedDeadlineMs(int64_t request_deadline_ms) const {
  const int64_t base = request_deadline_ms > 0
                           ? request_deadline_ms
                           : ctx_.config.node_search_deadline_ms;
  if (base <= 0) {
    // Brownout must bound per-node waits even when the request didn't.
    return std::max<int64_t>(1, ctx_.config.shed_degraded_deadline_ms);
  }
  return std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(base) *
                              ctx_.config.shed_deadline_factor));
}

Result<Proxy::Prepared> Proxy::Prepare(const SearchRequest& req) {
  Prepared out;
  // --- Request verification against cached metadata (cheap, early). ---
  MANU_ASSIGN_OR_RETURN(out.meta, root_coord_->GetCollection(req.collection));
  // Query vectors are copied into Prepared (moving a vector keeps its heap
  // buffer, so the target pointers survive moves of Prepared itself).
  std::vector<SearchTarget> targets;
  if (req.multi.empty()) {
    const FieldSchema* field =
        req.field.empty()
            ? (out.meta.schema.VectorFields().empty()
                   ? nullptr
                   : out.meta.schema.VectorFields().front())
            : out.meta.schema.FieldByName(req.field);
    if (field == nullptr || !field->IsVector()) {
      return Status::InvalidArgument("no such vector field");
    }
    if (static_cast<int32_t>(req.query.size()) != field->dim) {
      return Status::InvalidArgument("query dim mismatch");
    }
    out.owned_queries.push_back(req.query);
    targets.push_back({field->id, out.owned_queries.back().data(), 1.0f});
  } else {
    for (const auto& target : req.multi) {
      const FieldSchema* field = out.meta.schema.FieldByName(target.field);
      if (field == nullptr || !field->IsVector()) {
        return Status::InvalidArgument("no such vector field: " +
                                       target.field);
      }
      if (static_cast<int32_t>(target.query.size()) != field->dim) {
        return Status::InvalidArgument("query dim mismatch: " + target.field);
      }
      out.owned_queries.push_back(target.query);
      targets.push_back(
          {field->id, out.owned_queries.back().data(), target.weight});
    }
  }
  if (req.k == 0) return Status::InvalidArgument("k must be positive");

  if (!req.filter.empty()) {
    MANU_ASSIGN_OR_RETURN(out.filter,
                          FilterExpr::Parse(req.filter, out.meta.schema));
  }

  // --- Consistency setup (Section 3.4); read_ts stamped by the caller. ---
  out.nreq.collection = out.meta.id;
  out.nreq.targets = std::move(targets);
  out.nreq.params.k = req.k;
  out.nreq.params.nprobe = req.nprobe;
  out.nreq.params.ef_search = req.ef_search;
  out.nreq.filter = out.filter.get();
  switch (req.consistency) {
    case ConsistencyLevel::kStrong:
      out.nreq.staleness_ms = 0;
      break;
    case ConsistencyLevel::kBounded:
      out.nreq.staleness_ms = req.staleness_ms >= 0
                                  ? req.staleness_ms
                                  : ctx_.config.default_staleness_ms;
      break;
    case ConsistencyLevel::kEventually:
      out.nreq.staleness_ms = -1;
      break;
  }
  // Time-travel reads never wait: the past is already consistent.
  if (req.travel_ts != 0) {
    out.nreq.read_ts = req.travel_ts;
    out.nreq.staleness_ms = -1;
  }
  return out;
}

SearchResult Proxy::ToResult(std::vector<Neighbor> merged) {
  SearchResult out;
  out.ids.reserve(merged.size());
  out.scores.reserve(merged.size());
  for (const Neighbor& n : merged) {
    out.ids.push_back(n.id);
    out.scores.push_back(n.score);
  }
  return out;
}

Result<SearchResult> Proxy::SearchOnce(const SearchRequest& req,
                                       const std::shared_ptr<Prepared>& prep,
                                       Span* parent) {
  // --- Fan out per the coordinator's load-aware plan: every channel owner
  // (growing data), each sealed segment on exactly one p2c-chosen owner. ---
  Span route(parent->context(), "query_coord.route");
  auto plan = query_coord_->PlanFor(prep->meta.id);
  route.Tag("nodes", static_cast<int64_t>(plan.routes.size()));
  if (plan.unroutable > 0) {
    route.Tag("unroutable", plan.unroutable);
  }
  route.End();
  if (plan.routes.empty()) {
    return Status::Unavailable("collection is not loaded on any query node");
  }
  // Segments with no live replica (mid-repair): a strict search must not
  // silently return a subset, so it fails retryably — with
  // search_retry_attempts the re-plan lands after the reconciler repairs.
  // Partial searches proceed with the loss counted against coverage below.
  if (plan.unroutable > 0 && !req.allow_partial) {
    return Status::Unavailable("sealed segments awaiting replica repair");
  }
  // Coverage weights: how much of the collection each route answers for —
  // its assigned sealed segments plus its growing-only ones. A node in the
  // plan only for its shard channel (no data yet) still weighs 1.
  // Unroutable segments weigh in the total but can never be covered.
  std::vector<int64_t> weights;
  weights.reserve(plan.routes.size());
  int64_t total_weight = plan.unroutable;
  for (const auto& r : plan.routes) {
    const int64_t w = std::max<int64_t>(1, r.weight);
    weights.push_back(w);
    total_weight += w;
  }

  const int64_t deadline_ms = req.node_deadline_ms > 0
                                  ? req.node_deadline_ms
                                  : ctx_.config.node_search_deadline_ms;
  // Each attempt dispatches its own copy of the node request (cheap: the
  // targets point into prep-owned storage, which the captured shared_ptr
  // keeps alive). Mutating prep->nreq instead would race an abandoned
  // straggler from a previous attempt that is still reading it.
  NodeSearchRequest base = prep->nreq;
  base.trace = parent->context();
  // Stamp the absolute deadline into the node request: a straggler the
  // proxy abandons below keeps running on its executor, but its parallel
  // segment fan-out checks this and stops claiming new segment work
  // instead of finishing a result nobody will read.
  if (deadline_ms > 0) {
    base.deadline_us = NowMicros() + deadline_ms * 1000;
  }

  std::vector<std::future<Result<std::vector<SegmentHit>>>> futures;
  futures.reserve(plan.routes.size());
  for (auto& r : plan.routes) {
    NodeSearchRequest nreq = base;
    nreq.sealed_filter = r.sealed_filter;
    auto node = r.node;
    futures.push_back(pool_.Submit(
        [node, prep, nreq = std::move(nreq)]() { return node->Search(nreq); }));
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(std::max<int64_t>(
                            0, deadline_ms));
  std::vector<std::vector<Neighbor>> lists;
  lists.reserve(plan.routes.size());
  int64_t covered_weight = 0;
  int64_t degraded_nodes = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    auto& fut = futures[i];
    if (deadline_ms > 0 &&
        fut.wait_until(deadline) == std::future_status::timeout) {
      // The straggler keeps running against its own copy of the request
      // (shared_ptr above); the proxy just stops waiting for it.
      if (!req.allow_partial) {
        return Status::Timeout("query node missed the search deadline");
      }
      parent->Event("node abandoned (deadline)");
      ++degraded_nodes;
      continue;
    }
    Result<std::vector<SegmentHit>> hits = fut.get();
    if (!hits.ok()) {
      if (!req.allow_partial) return hits.status();
      parent->Event("node dropped: " + hits.status().ToString());
      ++degraded_nodes;
      continue;
    }
    covered_weight += weights[i];
    std::vector<Neighbor> list;
    list.reserve(hits.value().size());
    for (const auto& h : hits.value()) list.push_back({h.pk, h.score});
    lists.push_back(std::move(list));
  }
  if (lists.empty()) {
    return Status::Unavailable("every query node failed or timed out");
  }

  // --- Global reduce with pk dedup. ---
  Span merge(parent->context(), "proxy.merge");
  merge.Tag("lists", static_cast<int64_t>(lists.size()));
  SearchResult out = ToResult(MergeTopK(lists, req.k, /*dedup_ids=*/true));
  merge.End();
  out.coverage = total_weight > 0
                     ? static_cast<double>(covered_weight) / total_weight
                     : 1.0;
  if (degraded_nodes > 0) {
    MetricsRegistry::Global()
        .GetCounter("proxy.degraded_nodes")
        ->Add(degraded_nodes);
  }
  if (out.coverage < 1.0) {
    MetricsRegistry::Global().GetCounter("proxy.partial_results")->Add(1);
  }
  return out;
}

Result<SearchResult> Proxy::Search(const SearchRequest& req) {
  const int64_t t0 = NowMicros();
  Span root = Tracer::Global().StartTrace("proxy.search");
  root.Tag("collection", req.collection);
  root.Tag("k", static_cast<int64_t>(req.k));

  // --- Overload front door (core/admission.h). ---
  const AdmitDecision decision = admission_.Admit(req.tenant, req.priority);
  AdmissionGuard guard(&admission_, decision.admitted());
  RecordAdmission(&root, decision);
  if (!decision.admitted()) {
    Status st = AdmissionController::ShedStatus(
        "proxy (" + std::string(decision.reason) + ")", decision.stage,
        decision.retry_after_ms);
    root.Tag("error", st.ToString());
    return st;
  }
  // Brownout stage 1+: serve, but degraded — partial results allowed and
  // tighter per-node deadlines, trading completeness for bounded latency.
  SearchRequest degraded_req;
  const SearchRequest* effective = &req;
  if (decision.action == AdmitAction::kDegrade) {
    degraded_req = req;
    degraded_req.allow_partial = true;
    degraded_req.node_deadline_ms = DegradedDeadlineMs(req.node_deadline_ms);
    effective = &degraded_req;
  }
  const SearchRequest& ereq = *effective;

  auto prep_res = Prepare(ereq);
  if (!prep_res.ok()) {
    root.Tag("error", prep_res.status().ToString());
    return prep_res.status();
  }
  // shared_ptr: with allow_partial the proxy may return while an abandoned
  // node task is still running; the task keeps the request state alive.
  auto prep = std::make_shared<Prepared>(std::move(prep_res).value());
  if (ereq.travel_ts == 0) prep->nreq.read_ts = ctx_.tso->Allocate();

  Result<SearchResult> out = SearchOnce(ereq, prep, &root);
  const int32_t retries = std::max(0, ctx_.config.search_retry_attempts);
  for (int32_t attempt = 1; attempt <= retries && !out.ok(); ++attempt) {
    const StatusCode code = out.status().code();
    // Only transient fan-out failures are worth re-dispatching; each retry
    // re-fetches the routing snapshot, so a search that raced a node crash
    // lands on the failover survivor. kResourceExhausted is deliberately
    // NOT here: a shed/backpressured fan-out must surface, not add load.
    if (code != StatusCode::kUnavailable && code != StatusCode::kTimeout) {
      break;
    }
    MetricsRegistry::Global().GetCounter("proxy.search_retries")->Add(1);
    Span retry(root.context(), "proxy.retry");
    retry.Tag("attempt", static_cast<int64_t>(attempt));
    retry.Tag("cause", out.status().ToString());
    out = SearchOnce(ereq, prep, &retry);
  }
  if (!out.ok()) {
    root.Tag("error", out.status().ToString());
    return out.status();
  }

  root.Tag("coverage", out.value().coverage);
  root.Tag("hits", static_cast<int64_t>(out.value().ids.size()));
  auto& metrics = MetricsRegistry::Global();
  metrics.GetCounter("proxy.searches")->Add(1);
  metrics.GetCounter("proxy.searches", {{"collection", req.collection}})
      ->Add(1);
  metrics.GetRate("proxy.search_rate")->Mark();
  metrics.GetHistogram("proxy.search_latency")
      ->Observe(static_cast<double>(NowMicros() - t0));
  return out;
}

std::vector<Result<SearchResult>> Proxy::BatchSearch(
    const std::vector<SearchRequest>& reqs) {
  const int64_t t0 = NowMicros();
  // One trace for the whole batch: per-node spans show how the grouped
  // dispatch amortizes across requests.
  Span root = Tracer::Global().StartTrace("proxy.batch_search");
  root.Tag("requests", static_cast<int64_t>(reqs.size()));
  std::vector<Result<SearchResult>> results(reqs.size());
  // shared_ptr: the NodeSearchRequests handed to node tasks point into
  // these Prepared objects (filter, query vectors). With allow_partial the
  // proxy may return while an abandoned straggler still runs, so the tasks
  // — not this stack frame — must own the request state.
  auto prepared = std::make_shared<std::vector<Prepared>>(reqs.size());

  // --- Overload front door, per request (each tenant/priority gets its
  // own decision; refused requests fail in place without preparation). ---
  std::vector<AdmissionGuard> guards;
  guards.reserve(reqs.size());
  std::vector<char> degraded(reqs.size(), 0);
  std::vector<char> refused(reqs.size(), 0);
  for (size_t i = 0; i < reqs.size(); ++i) {
    const AdmitDecision decision =
        admission_.Admit(reqs[i].tenant, reqs[i].priority);
    guards.emplace_back(&admission_, decision.admitted());
    RecordAdmission(nullptr, decision);
    if (!decision.admitted()) {
      refused[i] = 1;
      results[i] = AdmissionController::ShedStatus(
          "proxy (" + std::string(decision.reason) + ")", decision.stage,
          decision.retry_after_ms);
    } else if (decision.action == AdmitAction::kDegrade) {
      degraded[i] = 1;
    }
  }
  // The degrade switch for request i: forced partial results under
  // brownout, on top of whatever the request asked for.
  auto allow_partial = [&](size_t i) {
    return reqs[i].allow_partial || degraded[i] != 0;
  };

  // One query timestamp for the whole batch.
  const Timestamp batch_ts = ctx_.tso->Allocate();
  std::map<CollectionId, std::vector<size_t>> by_collection;
  for (size_t i = 0; i < reqs.size(); ++i) {
    if (refused[i] != 0) continue;
    auto prep = Prepare(reqs[i]);
    if (!prep.ok()) {
      results[i] = prep.status();
      continue;
    }
    (*prepared)[i] = std::move(prep).value();
    if (reqs[i].travel_ts == 0) (*prepared)[i].nreq.read_ts = batch_ts;
    by_collection[(*prepared)[i].meta.id].push_back(i);
  }

  for (const auto& [collection, indices] : by_collection) {
    auto plan = query_coord_->PlanFor(collection);
    if (plan.routes.empty()) {
      for (size_t i : indices) {
        results[i] = Status::Unavailable("collection not loaded");
      }
      continue;
    }
    // Coverage weights, as in Search(): assigned sealed + growing-only,
    // plus the unroutable segments no route can cover.
    std::vector<int64_t> weights;
    weights.reserve(plan.routes.size());
    int64_t total_weight = plan.unroutable;
    for (const auto& r : plan.routes) {
      const int64_t w = std::max<int64_t>(1, r.weight);
      weights.push_back(w);
      total_weight += w;
    }

    // The group waits as long as its most patient request allows; stricter
    // per-request deadlines are not individually enforced (batching trades
    // that precision for one dispatch per node). Degraded requests bring
    // their tightened deadline into the max.
    int64_t deadline_ms = 0;
    for (size_t i : indices) {
      int64_t eff = reqs[i].node_deadline_ms > 0
                        ? reqs[i].node_deadline_ms
                        : ctx_.config.node_search_deadline_ms;
      if (degraded[i] != 0) eff = DegradedDeadlineMs(reqs[i].node_deadline_ms);
      deadline_ms = std::max(deadline_ms, eff);
    }

    auto batch = std::make_shared<std::vector<NodeSearchRequest>>();
    batch->reserve(indices.size());
    for (size_t i : indices) batch->push_back((*prepared)[i].nreq);
    const int64_t deadline_us =
        deadline_ms > 0 ? NowMicros() + deadline_ms * 1000 : 0;
    for (auto& nreq : *batch) {
      nreq.deadline_us = deadline_us;
      nreq.trace = root.context();
    }

    // One dispatch per node for the whole group. Each node gets its own
    // copy of the group's requests carrying that node's sealed-segment
    // assignment (the shared template has no filter).
    std::vector<
        std::future<std::vector<Result<std::vector<SegmentHit>>>>>
        futures;
    futures.reserve(plan.routes.size());
    for (auto& r : plan.routes) {
      auto node_batch =
          std::make_shared<std::vector<NodeSearchRequest>>(*batch);
      for (auto& nreq : *node_batch) nreq.sealed_filter = r.sealed_filter;
      auto node = r.node;
      futures.push_back(pool_.Submit([node, prepared, node_batch]() {
        return node->SearchBatch(*node_batch);
      }));
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(
                              std::max<int64_t>(0, deadline_ms));
    // One slot per node; nullopt = the node missed the deadline (it keeps
    // running against the shared_ptr state; the proxy stops waiting).
    std::vector<
        std::optional<std::vector<Result<std::vector<SegmentHit>>>>>
        per_node;
    per_node.reserve(plan.routes.size());
    for (auto& fut : futures) {
      if (deadline_ms > 0 &&
          fut.wait_until(deadline) == std::future_status::timeout) {
        per_node.emplace_back(std::nullopt);
        continue;
      }
      per_node.emplace_back(fut.get());
    }

    for (size_t pos = 0; pos < indices.size(); ++pos) {
      const size_t i = indices[pos];
      if (plan.unroutable > 0 && !allow_partial(i)) {
        // Same rule as Search(): a strict request never silently serves a
        // subset while segments await replica repair.
        results[i] =
            Status::Unavailable("sealed segments awaiting replica repair");
        continue;
      }
      std::vector<std::vector<Neighbor>> lists;
      int64_t covered_weight = 0;
      int64_t degraded_nodes = 0;
      Status failure;
      for (size_t n = 0; n < per_node.size(); ++n) {
        if (!per_node[n].has_value()) {
          if (!allow_partial(i)) {
            failure = Status::Timeout(
                "query node missed the search deadline");
            break;
          }
          ++degraded_nodes;
          continue;
        }
        const auto& hits = (*per_node[n])[pos];
        if (!hits.ok()) {
          if (!allow_partial(i)) {
            failure = hits.status();
            break;
          }
          ++degraded_nodes;
          continue;
        }
        covered_weight += weights[n];
        std::vector<Neighbor> list;
        list.reserve(hits.value().size());
        for (const auto& h : hits.value()) list.push_back({h.pk, h.score});
        lists.push_back(std::move(list));
      }
      if (!failure.ok()) {
        results[i] = failure;
        continue;
      }
      if (lists.empty()) {
        results[i] =
            Status::Unavailable("every query node failed or timed out");
        continue;
      }
      SearchResult out =
          ToResult(MergeTopK(lists, reqs[i].k, /*dedup_ids=*/true));
      out.coverage = total_weight > 0
                         ? static_cast<double>(covered_weight) / total_weight
                         : 1.0;
      if (degraded_nodes > 0) {
        MetricsRegistry::Global()
            .GetCounter("proxy.degraded_nodes")
            ->Add(degraded_nodes);
      }
      if (out.coverage < 1.0) {
        MetricsRegistry::Global().GetCounter("proxy.partial_results")->Add(1);
      }
      results[i] = std::move(out);
    }
  }

  MetricsRegistry::Global()
      .GetCounter("proxy.searches")
      ->Add(static_cast<int64_t>(reqs.size()));
  MetricsRegistry::Global().GetRate("proxy.search_rate")->Mark(
      static_cast<int64_t>(reqs.size()));
  MetricsRegistry::Global()
      .GetHistogram("proxy.batch_latency")
      ->Observe(static_cast<double>(NowMicros() - t0));
  return results;
}

Result<Timestamp> Proxy::WriteWithBackpressure(
    Span* root, const std::function<Result<Timestamp>(bool last)>& attempt) {
  const int32_t extra =
      std::max(0, ctx_.config.admission_write_retry_attempts);
  Result<Timestamp> res;
  for (int32_t n = 0; n <= extra; ++n) {
    const bool last = n == extra;
    res = attempt(last);
    if (res.ok() ||
        res.status().code() != StatusCode::kResourceExhausted || last) {
      break;
    }
    // The proxy front door is the ONE place that honors the retry-after
    // hint (RetryPolicy never retries kResourceExhausted): wait out the
    // hint plus deterministic jitter so synchronized writers don't re-slam
    // the logger in lockstep.
    int64_t wait_ms = AdmissionController::RetryAfterHintMs(res.status());
    if (wait_ms < 0) wait_ms = std::max<int64_t>(1, ctx_.config.shed_retry_after_ms);
    uint64_t j = static_cast<uint64_t>(n) + 0x9e3779b97f4a7c15ULL;
    j = (j ^ (j >> 30)) * 0xbf58476d1ce4e5b9ULL;
    const int64_t jitter_ms =
        static_cast<int64_t>(j % static_cast<uint64_t>(wait_ms / 2 + 1));
    MetricsRegistry::Global().GetCounter("backpressure.write_retries")->Add();
    root->Event("backpressure: waiting retry-after " +
                std::to_string(wait_ms + jitter_ms) + "ms");
    std::this_thread::sleep_for(
        std::chrono::milliseconds(wait_ms + jitter_ms));
  }
  return res;
}

Result<Timestamp> Proxy::Insert(const std::string& collection,
                                EntityBatch batch) {
  Span root = Tracer::Global().StartTrace("proxy.insert");
  root.Tag("collection", collection);
  root.Tag("rows", batch.NumRows());
  MANU_ASSIGN_OR_RETURN(CollectionMeta meta,
                        root_coord_->GetCollection(collection));
  auto res = WriteWithBackpressure(&root, [&](bool last) {
    // The batch is only surrendered on the final attempt; earlier attempts
    // publish a copy so a backpressured retry still has the rows.
    if (last) return loggers_->Insert(meta, std::move(batch), root.context());
    return loggers_->Insert(meta, batch, root.context());
  });
  if (!res.ok()) {
    root.Tag("error", res.status().ToString());
  } else {
    root.Tag("lsn", static_cast<int64_t>(res.value()));
  }
  return res;
}

Result<Timestamp> Proxy::Delete(const std::string& collection,
                                const std::vector<int64_t>& pks) {
  Span root = Tracer::Global().StartTrace("proxy.delete");
  root.Tag("collection", collection);
  root.Tag("pks", static_cast<int64_t>(pks.size()));
  MANU_ASSIGN_OR_RETURN(CollectionMeta meta,
                        root_coord_->GetCollection(collection));
  auto res = WriteWithBackpressure(&root, [&](bool) {
    return loggers_->Delete(meta, pks, root.context());
  });
  if (!res.ok()) root.Tag("error", res.status().ToString());
  return res;
}

}  // namespace manu
