#include "core/proxy.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <map>
#include <optional>

#include "common/metrics.h"

namespace manu {

Proxy::Proxy(const CoreContext& ctx, RootCoordinator* root_coord,
             QueryCoordinator* query_coord, LoggerFleet* loggers)
    : ctx_(ctx),
      root_coord_(root_coord),
      query_coord_(query_coord),
      loggers_(loggers),
      // Fan-out workers mostly wait on node executors; size generously so
      // the proxy never serializes multi-node dispatch.
      pool_(64) {}

Result<Proxy::Prepared> Proxy::Prepare(const SearchRequest& req) {
  Prepared out;
  // --- Request verification against cached metadata (cheap, early). ---
  MANU_ASSIGN_OR_RETURN(out.meta, root_coord_->GetCollection(req.collection));
  // Query vectors are copied into Prepared (moving a vector keeps its heap
  // buffer, so the target pointers survive moves of Prepared itself).
  std::vector<SearchTarget> targets;
  if (req.multi.empty()) {
    const FieldSchema* field =
        req.field.empty()
            ? (out.meta.schema.VectorFields().empty()
                   ? nullptr
                   : out.meta.schema.VectorFields().front())
            : out.meta.schema.FieldByName(req.field);
    if (field == nullptr || !field->IsVector()) {
      return Status::InvalidArgument("no such vector field");
    }
    if (static_cast<int32_t>(req.query.size()) != field->dim) {
      return Status::InvalidArgument("query dim mismatch");
    }
    out.owned_queries.push_back(req.query);
    targets.push_back({field->id, out.owned_queries.back().data(), 1.0f});
  } else {
    for (const auto& target : req.multi) {
      const FieldSchema* field = out.meta.schema.FieldByName(target.field);
      if (field == nullptr || !field->IsVector()) {
        return Status::InvalidArgument("no such vector field: " +
                                       target.field);
      }
      if (static_cast<int32_t>(target.query.size()) != field->dim) {
        return Status::InvalidArgument("query dim mismatch: " + target.field);
      }
      out.owned_queries.push_back(target.query);
      targets.push_back(
          {field->id, out.owned_queries.back().data(), target.weight});
    }
  }
  if (req.k == 0) return Status::InvalidArgument("k must be positive");

  if (!req.filter.empty()) {
    MANU_ASSIGN_OR_RETURN(out.filter,
                          FilterExpr::Parse(req.filter, out.meta.schema));
  }

  // --- Consistency setup (Section 3.4); read_ts stamped by the caller. ---
  out.nreq.collection = out.meta.id;
  out.nreq.targets = std::move(targets);
  out.nreq.params.k = req.k;
  out.nreq.params.nprobe = req.nprobe;
  out.nreq.params.ef_search = req.ef_search;
  out.nreq.filter = out.filter.get();
  switch (req.consistency) {
    case ConsistencyLevel::kStrong:
      out.nreq.staleness_ms = 0;
      break;
    case ConsistencyLevel::kBounded:
      out.nreq.staleness_ms = req.staleness_ms >= 0
                                  ? req.staleness_ms
                                  : ctx_.config.default_staleness_ms;
      break;
    case ConsistencyLevel::kEventually:
      out.nreq.staleness_ms = -1;
      break;
  }
  // Time-travel reads never wait: the past is already consistent.
  if (req.travel_ts != 0) {
    out.nreq.read_ts = req.travel_ts;
    out.nreq.staleness_ms = -1;
  }
  return out;
}

SearchResult Proxy::ToResult(std::vector<Neighbor> merged) {
  SearchResult out;
  out.ids.reserve(merged.size());
  out.scores.reserve(merged.size());
  for (const Neighbor& n : merged) {
    out.ids.push_back(n.id);
    out.scores.push_back(n.score);
  }
  return out;
}

Result<SearchResult> Proxy::SearchOnce(const SearchRequest& req,
                                       const std::shared_ptr<Prepared>& prep,
                                       Span* parent) {
  // --- Fan out to the nodes serving this collection. ---
  Span route(parent->context(), "query_coord.route");
  auto nodes = query_coord_->NodesFor(prep->meta.id);
  route.Tag("nodes", static_cast<int64_t>(nodes.size()));
  route.End();
  if (nodes.empty()) {
    return Status::Unavailable("collection is not loaded on any query node");
  }
  // Coverage weights: how much of the collection each node answers for.
  // A node serving only a shard channel (growing data) still weighs 1.
  std::vector<int64_t> weights;
  weights.reserve(nodes.size());
  int64_t total_weight = 0;
  for (const auto& node : nodes) {
    const int64_t w =
        std::max<int64_t>(1, node->NumServingSegments(prep->meta.id));
    weights.push_back(w);
    total_weight += w;
  }

  const int64_t deadline_ms = req.node_deadline_ms > 0
                                  ? req.node_deadline_ms
                                  : ctx_.config.node_search_deadline_ms;
  // Each attempt dispatches its own copy of the node request (cheap: the
  // targets point into prep-owned storage, which the captured shared_ptr
  // keeps alive). Mutating prep->nreq instead would race an abandoned
  // straggler from a previous attempt that is still reading it.
  NodeSearchRequest nreq = prep->nreq;
  nreq.trace = parent->context();
  // Stamp the absolute deadline into the node request: a straggler the
  // proxy abandons below keeps running on its executor, but its parallel
  // segment fan-out checks this and stops claiming new segment work
  // instead of finishing a result nobody will read.
  if (deadline_ms > 0) {
    nreq.deadline_us = NowMicros() + deadline_ms * 1000;
  }

  std::vector<std::future<Result<std::vector<SegmentHit>>>> futures;
  futures.reserve(nodes.size());
  for (auto& node : nodes) {
    futures.push_back(
        pool_.Submit([node, prep, nreq]() { return node->Search(nreq); }));
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(std::max<int64_t>(
                            0, deadline_ms));
  std::vector<std::vector<Neighbor>> lists;
  lists.reserve(nodes.size());
  int64_t covered_weight = 0;
  int64_t degraded_nodes = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    auto& fut = futures[i];
    if (deadline_ms > 0 &&
        fut.wait_until(deadline) == std::future_status::timeout) {
      // The straggler keeps running against its own copy of the request
      // (shared_ptr above); the proxy just stops waiting for it.
      if (!req.allow_partial) {
        return Status::Timeout("query node missed the search deadline");
      }
      parent->Event("node abandoned (deadline)");
      ++degraded_nodes;
      continue;
    }
    Result<std::vector<SegmentHit>> hits = fut.get();
    if (!hits.ok()) {
      if (!req.allow_partial) return hits.status();
      parent->Event("node dropped: " + hits.status().ToString());
      ++degraded_nodes;
      continue;
    }
    covered_weight += weights[i];
    std::vector<Neighbor> list;
    list.reserve(hits.value().size());
    for (const auto& h : hits.value()) list.push_back({h.pk, h.score});
    lists.push_back(std::move(list));
  }
  if (lists.empty()) {
    return Status::Unavailable("every query node failed or timed out");
  }

  // --- Global reduce with pk dedup. ---
  Span merge(parent->context(), "proxy.merge");
  merge.Tag("lists", static_cast<int64_t>(lists.size()));
  SearchResult out = ToResult(MergeTopK(lists, req.k, /*dedup_ids=*/true));
  merge.End();
  out.coverage = total_weight > 0
                     ? static_cast<double>(covered_weight) / total_weight
                     : 1.0;
  if (degraded_nodes > 0) {
    MetricsRegistry::Global()
        .GetCounter("proxy.degraded_nodes")
        ->Add(degraded_nodes);
  }
  if (out.coverage < 1.0) {
    MetricsRegistry::Global().GetCounter("proxy.partial_results")->Add(1);
  }
  return out;
}

Result<SearchResult> Proxy::Search(const SearchRequest& req) {
  const int64_t t0 = NowMicros();
  Span root = Tracer::Global().StartTrace("proxy.search");
  root.Tag("collection", req.collection);
  root.Tag("k", static_cast<int64_t>(req.k));
  auto prep_res = Prepare(req);
  if (!prep_res.ok()) {
    root.Tag("error", prep_res.status().ToString());
    return prep_res.status();
  }
  // shared_ptr: with allow_partial the proxy may return while an abandoned
  // node task is still running; the task keeps the request state alive.
  auto prep = std::make_shared<Prepared>(std::move(prep_res).value());
  if (req.travel_ts == 0) prep->nreq.read_ts = ctx_.tso->Allocate();

  Result<SearchResult> out = SearchOnce(req, prep, &root);
  const int32_t retries = std::max(0, ctx_.config.search_retry_attempts);
  for (int32_t attempt = 1; attempt <= retries && !out.ok(); ++attempt) {
    const StatusCode code = out.status().code();
    // Only transient fan-out failures are worth re-dispatching; each retry
    // re-fetches the routing snapshot, so a search that raced a node crash
    // lands on the failover survivor.
    if (code != StatusCode::kUnavailable && code != StatusCode::kTimeout) {
      break;
    }
    MetricsRegistry::Global().GetCounter("proxy.search_retries")->Add(1);
    Span retry(root.context(), "proxy.retry");
    retry.Tag("attempt", static_cast<int64_t>(attempt));
    retry.Tag("cause", out.status().ToString());
    out = SearchOnce(req, prep, &retry);
  }
  if (!out.ok()) {
    root.Tag("error", out.status().ToString());
    return out.status();
  }

  root.Tag("coverage", out.value().coverage);
  root.Tag("hits", static_cast<int64_t>(out.value().ids.size()));
  auto& metrics = MetricsRegistry::Global();
  metrics.GetCounter("proxy.searches")->Add(1);
  metrics.GetCounter("proxy.searches", {{"collection", req.collection}})
      ->Add(1);
  metrics.GetRate("proxy.search_rate")->Mark();
  metrics.GetHistogram("proxy.search_latency")
      ->Observe(static_cast<double>(NowMicros() - t0));
  return out;
}

std::vector<Result<SearchResult>> Proxy::BatchSearch(
    const std::vector<SearchRequest>& reqs) {
  const int64_t t0 = NowMicros();
  // One trace for the whole batch: per-node spans show how the grouped
  // dispatch amortizes across requests.
  Span root = Tracer::Global().StartTrace("proxy.batch_search");
  root.Tag("requests", static_cast<int64_t>(reqs.size()));
  std::vector<Result<SearchResult>> results(reqs.size());
  // shared_ptr: the NodeSearchRequests handed to node tasks point into
  // these Prepared objects (filter, query vectors). With allow_partial the
  // proxy may return while an abandoned straggler still runs, so the tasks
  // — not this stack frame — must own the request state.
  auto prepared = std::make_shared<std::vector<Prepared>>(reqs.size());

  // One query timestamp for the whole batch.
  const Timestamp batch_ts = ctx_.tso->Allocate();
  std::map<CollectionId, std::vector<size_t>> by_collection;
  for (size_t i = 0; i < reqs.size(); ++i) {
    auto prep = Prepare(reqs[i]);
    if (!prep.ok()) {
      results[i] = prep.status();
      continue;
    }
    (*prepared)[i] = std::move(prep).value();
    if (reqs[i].travel_ts == 0) (*prepared)[i].nreq.read_ts = batch_ts;
    by_collection[(*prepared)[i].meta.id].push_back(i);
  }

  for (const auto& [collection, indices] : by_collection) {
    auto nodes = query_coord_->NodesFor(collection);
    if (nodes.empty()) {
      for (size_t i : indices) {
        results[i] = Status::Unavailable("collection not loaded");
      }
      continue;
    }
    // Coverage weights, as in Search().
    std::vector<int64_t> weights;
    weights.reserve(nodes.size());
    int64_t total_weight = 0;
    for (const auto& node : nodes) {
      const int64_t w =
          std::max<int64_t>(1, node->NumServingSegments(collection));
      weights.push_back(w);
      total_weight += w;
    }

    // The group waits as long as its most patient request allows; stricter
    // per-request deadlines are not individually enforced (batching trades
    // that precision for one dispatch per node).
    int64_t deadline_ms = 0;
    for (size_t i : indices) {
      const int64_t eff = reqs[i].node_deadline_ms > 0
                              ? reqs[i].node_deadline_ms
                              : ctx_.config.node_search_deadline_ms;
      deadline_ms = std::max(deadline_ms, eff);
    }

    auto batch = std::make_shared<std::vector<NodeSearchRequest>>();
    batch->reserve(indices.size());
    for (size_t i : indices) batch->push_back((*prepared)[i].nreq);
    const int64_t deadline_us =
        deadline_ms > 0 ? NowMicros() + deadline_ms * 1000 : 0;
    for (auto& nreq : *batch) {
      nreq.deadline_us = deadline_us;
      nreq.trace = root.context();
    }

    // One dispatch per node for the whole group.
    std::vector<
        std::future<std::vector<Result<std::vector<SegmentHit>>>>>
        futures;
    futures.reserve(nodes.size());
    for (auto& node : nodes) {
      futures.push_back(pool_.Submit([node, prepared, batch]() {
        return node->SearchBatch(*batch);
      }));
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(
                              std::max<int64_t>(0, deadline_ms));
    // One slot per node; nullopt = the node missed the deadline (it keeps
    // running against the shared_ptr state; the proxy stops waiting).
    std::vector<
        std::optional<std::vector<Result<std::vector<SegmentHit>>>>>
        per_node;
    per_node.reserve(nodes.size());
    for (auto& fut : futures) {
      if (deadline_ms > 0 &&
          fut.wait_until(deadline) == std::future_status::timeout) {
        per_node.emplace_back(std::nullopt);
        continue;
      }
      per_node.emplace_back(fut.get());
    }

    for (size_t pos = 0; pos < indices.size(); ++pos) {
      const size_t i = indices[pos];
      std::vector<std::vector<Neighbor>> lists;
      int64_t covered_weight = 0;
      int64_t degraded_nodes = 0;
      Status failure;
      for (size_t n = 0; n < per_node.size(); ++n) {
        if (!per_node[n].has_value()) {
          if (!reqs[i].allow_partial) {
            failure = Status::Timeout(
                "query node missed the search deadline");
            break;
          }
          ++degraded_nodes;
          continue;
        }
        const auto& hits = (*per_node[n])[pos];
        if (!hits.ok()) {
          if (!reqs[i].allow_partial) {
            failure = hits.status();
            break;
          }
          ++degraded_nodes;
          continue;
        }
        covered_weight += weights[n];
        std::vector<Neighbor> list;
        list.reserve(hits.value().size());
        for (const auto& h : hits.value()) list.push_back({h.pk, h.score});
        lists.push_back(std::move(list));
      }
      if (!failure.ok()) {
        results[i] = failure;
        continue;
      }
      if (lists.empty()) {
        results[i] =
            Status::Unavailable("every query node failed or timed out");
        continue;
      }
      SearchResult out =
          ToResult(MergeTopK(lists, reqs[i].k, /*dedup_ids=*/true));
      out.coverage = total_weight > 0
                         ? static_cast<double>(covered_weight) / total_weight
                         : 1.0;
      if (degraded_nodes > 0) {
        MetricsRegistry::Global()
            .GetCounter("proxy.degraded_nodes")
            ->Add(degraded_nodes);
      }
      if (out.coverage < 1.0) {
        MetricsRegistry::Global().GetCounter("proxy.partial_results")->Add(1);
      }
      results[i] = std::move(out);
    }
  }

  MetricsRegistry::Global()
      .GetCounter("proxy.searches")
      ->Add(static_cast<int64_t>(reqs.size()));
  MetricsRegistry::Global().GetRate("proxy.search_rate")->Mark(
      static_cast<int64_t>(reqs.size()));
  MetricsRegistry::Global()
      .GetHistogram("proxy.batch_latency")
      ->Observe(static_cast<double>(NowMicros() - t0));
  return results;
}

Result<Timestamp> Proxy::Insert(const std::string& collection,
                                EntityBatch batch) {
  Span root = Tracer::Global().StartTrace("proxy.insert");
  root.Tag("collection", collection);
  root.Tag("rows", batch.NumRows());
  MANU_ASSIGN_OR_RETURN(CollectionMeta meta,
                        root_coord_->GetCollection(collection));
  auto res = loggers_->Insert(meta, std::move(batch), root.context());
  if (!res.ok()) {
    root.Tag("error", res.status().ToString());
  } else {
    root.Tag("lsn", static_cast<int64_t>(res.value()));
  }
  return res;
}

Result<Timestamp> Proxy::Delete(const std::string& collection,
                                const std::vector<int64_t>& pks) {
  Span root = Tracer::Global().StartTrace("proxy.delete");
  root.Tag("collection", collection);
  root.Tag("pks", static_cast<int64_t>(pks.size()));
  MANU_ASSIGN_OR_RETURN(CollectionMeta meta,
                        root_coord_->GetCollection(collection));
  auto res = loggers_->Delete(meta, pks, root.context());
  if (!res.ok()) root.Tag("error", res.status().ToString());
  return res;
}

}  // namespace manu
