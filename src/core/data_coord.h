#ifndef MANU_CORE_DATA_COORD_H_
#define MANU_CORE_DATA_COORD_H_

#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/collection_meta.h"
#include "core/context.h"

namespace manu {

class DataNode;

/// Data coordinator (Section 3.2): records detailed segment information
/// (states, binlog routes, index routes) and drives the segment life cycle.
/// Loggers call AllocateSegment to learn which growing segment new rows
/// target; the allocator rolls to a fresh segment id when the current one
/// crosses the seal thresholds, and data nodes seal a segment once the WAL
/// shows rows for a newer segment on the same shard (or a kFlush barrier).
///
/// It also owns the data-node fleet: which node consumes which shard
/// channel. On a node death (watchdog-detected lease expiry) the channel is
/// handed to a survivor that replays the WAL from the shard's archived
/// floor — the max LSN covered by sealed binlogs — so no acked write is
/// lost and nothing already archived is re-sealed.
class DataCoordinator {
 public:
  explicit DataCoordinator(const CoreContext& ctx);

  void OnCollectionCreated(const CollectionMeta& meta);
  void OnCollectionDropped(CollectionId collection);

  // --- Data-node fleet / shard-channel ownership (Section 3.6) ---

  void AddDataNode(DataNode* node);

  /// Round-robins the collection's shard channels over the registered data
  /// nodes. With `replay_from_floor`, each subscription starts just above
  /// the shard's archived floor instead of at the earliest offset (the
  /// crash-recovery path: rows at or below the floor live in sealed
  /// binlogs).
  Status AssignShardChannels(const CollectionMeta& meta,
                             bool replay_from_floor = false);

  /// Watchdog failover: removes `node` from the fleet and hands every shard
  /// channel it owned to a survivor, which replays the WAL from the shard's
  /// archived floor and resumes sealing. The dead node object is left
  /// untouched (it may be a zombie still running; fencing rejects its
  /// commits).
  Status OnDataNodeDead(NodeId node);

  /// Max LSN covered by this shard's sealed binlogs (0 = nothing archived).
  /// Compaction-merged segments are excluded: their shard is nominal and
  /// their last_lsn spans shards.
  Timestamp ArchivedFloor(CollectionId collection, ShardId shard) const;

  /// Which data node consumes (collection, shard); kInvalidNodeId if
  /// unassigned.
  NodeId ChannelOwner(CollectionId collection, ShardId shard) const;

  /// Crash recovery: repopulates shard counts, schemas and the segment map
  /// from the MetaStore ("segment/<collection>/<id>" keys) for the given
  /// surviving collections. Dropped segments are kept (state kDropped) so
  /// floors and compaction history survive, but they are never reloaded.
  void Restore(const std::vector<CollectionMeta>& collections);

  // --- Segment life cycle ---

  /// Returns the growing segment that should receive `rows`/`bytes` more
  /// data on (collection, shard), rolling over when thresholds are crossed.
  Result<SegmentId> AllocateSegment(CollectionId collection, ShardId shard,
                                    int64_t rows, uint64_t bytes);

  /// Rolls every growing segment of the collection and publishes kFlush
  /// barriers so data nodes seal them. Returns the ids of the segments that
  /// were growing (callers can wait for exactly those to become sealed).
  Result<std::vector<SegmentId>> Flush(CollectionId collection);

  /// Rolls over segments that have not received data for
  /// config.segment_idle_seal_ms (the paper's 10 s idle seal). Call
  /// periodically; publishes kFlush barriers for affected shards.
  void CheckIdleSegments();

  /// Data node reports a sealed segment's binlog.
  Status RegisterSealed(const SegmentMeta& meta);

  /// Index coordinator reports a built index (built under the collection's
  /// `index_version` at build time).
  Status RegisterIndex(CollectionId collection, SegmentId segment,
                       FieldId field, const std::string& index_path,
                       int32_t version);

  /// Index coordinator reports a built attribute-index artifact
  /// (FilterIndex). Unlike RegisterIndex this does not advance the segment
  /// state — the filter index is an optional acceleration, not a serving
  /// prerequisite.
  Status RegisterFilterIndex(CollectionId collection, SegmentId segment,
                             const std::string& path, int32_t version);

  Result<SegmentMeta> GetSegment(CollectionId collection,
                                 SegmentId segment) const;
  /// All sealed/indexed segments of a collection (growing ones live only in
  /// allocator state and on the nodes).
  std::vector<SegmentMeta> ListSegments(CollectionId collection) const;
  /// Every segment id ever allocated for the collection (sealed or not);
  /// the complete wait-set for flush barriers.
  std::vector<SegmentId> AllocatedSegments(CollectionId collection) const;

  /// Compaction (Sections 3.1/3.5): merges sealed segments smaller than
  /// `small_rows` into larger ones and physically drops rows whose pk is in
  /// `deleted_pks` (gathered from the query nodes' delete buffers). The
  /// merged segment re-enters the pipeline via kSegmentSealed (index build,
  /// load); the replaced segments are released once it is served. Returns
  /// the merged segment ids created (empty when nothing qualified).
  ///
  /// Note: physically purging deleted rows bounds the time-travel horizon
  /// for the affected segments, as in production systems.
  Result<std::vector<SegmentId>> CompactSegments(
      CollectionId collection, const std::vector<int64_t>& deleted_pks,
      int64_t small_rows);

  /// Time travel (Section 4.3): checkpoints the collection's segment map.
  /// Returns the checkpoint's object path. Fenced by the instance epoch: a
  /// superseded instance's data coordinator cannot publish checkpoints.
  Result<std::string> WriteCheckpoint(CollectionId collection);
  /// Segment map of the latest checkpoint taken at or before `ts`.
  Result<std::vector<SegmentMeta>> ReadCheckpoint(CollectionId collection,
                                                  Timestamp ts) const;

 private:
  struct ShardAlloc {
    SegmentId current = kInvalidSegmentId;
    int64_t rows = 0;
    uint64_t bytes = 0;
    int64_t last_alloc_ms = 0;
  };

  /// CAS-persisted segment-id counter ("id/next_segment"): segment ids stay
  /// unique across crash recovery. Only called on roll/compact, so the CAS
  /// round-trip is off the hot path.
  SegmentId NextSegmentId();
  /// Next id the counter would hand out (flush-barrier bound).
  SegmentId PeekNextSegmentId() const;
  void PublishFlush(CollectionId collection, ShardId shard,
                    SegmentId up_to) const;
  /// Rolls the shard allocator. Outputs the previously growing segment id
  /// via `rolled` (kInvalidSegmentId if none) and returns the barrier id
  /// below which data nodes must seal.
  SegmentId RollShardLocked(CollectionId collection, ShardId shard,
                            SegmentId* rolled);
  Timestamp ArchivedFloorLocked(CollectionId collection, ShardId shard) const;

  CoreContext ctx_;
  mutable std::mutex mu_;
  std::map<CollectionId, int32_t> shards_;  ///< Collection -> shard count.
  std::map<CollectionId, std::shared_ptr<const CollectionSchema>> schemas_;
  std::map<std::pair<CollectionId, ShardId>, ShardAlloc> alloc_;
  std::map<CollectionId, std::vector<SegmentId>> allocated_;
  std::map<std::pair<CollectionId, SegmentId>, SegmentMeta> segments_;
  std::vector<DataNode*> data_nodes_;  ///< Fleet (non-owning).
  std::map<std::pair<CollectionId, ShardId>, NodeId> channel_owner_;
};

}  // namespace manu

#endif  // MANU_CORE_DATA_COORD_H_
