#ifndef MANU_CORE_DATA_COORD_H_
#define MANU_CORE_DATA_COORD_H_

#include <atomic>
#include <map>
#include <mutex>
#include <vector>

#include "core/collection_meta.h"
#include "core/context.h"

namespace manu {

/// Data coordinator (Section 3.2): records detailed segment information
/// (states, binlog routes, index routes) and drives the segment life cycle.
/// Loggers call AllocateSegment to learn which growing segment new rows
/// target; the allocator rolls to a fresh segment id when the current one
/// crosses the seal thresholds, and data nodes seal a segment once the WAL
/// shows rows for a newer segment on the same shard (or a kFlush barrier).
class DataCoordinator {
 public:
  explicit DataCoordinator(const CoreContext& ctx);

  void OnCollectionCreated(const CollectionMeta& meta);
  void OnCollectionDropped(CollectionId collection);

  /// Returns the growing segment that should receive `rows`/`bytes` more
  /// data on (collection, shard), rolling over when thresholds are crossed.
  Result<SegmentId> AllocateSegment(CollectionId collection, ShardId shard,
                                    int64_t rows, uint64_t bytes);

  /// Rolls every growing segment of the collection and publishes kFlush
  /// barriers so data nodes seal them. Returns the ids of the segments that
  /// were growing (callers can wait for exactly those to become sealed).
  Result<std::vector<SegmentId>> Flush(CollectionId collection);

  /// Rolls over segments that have not received data for
  /// config.segment_idle_seal_ms (the paper's 10 s idle seal). Call
  /// periodically; publishes kFlush barriers for affected shards.
  void CheckIdleSegments();

  /// Data node reports a sealed segment's binlog.
  Status RegisterSealed(const SegmentMeta& meta);

  /// Index coordinator reports a built index (built under the collection's
  /// `index_version` at build time).
  Status RegisterIndex(CollectionId collection, SegmentId segment,
                       FieldId field, const std::string& index_path,
                       int32_t version);

  Result<SegmentMeta> GetSegment(CollectionId collection,
                                 SegmentId segment) const;
  /// All sealed/indexed segments of a collection (growing ones live only in
  /// allocator state and on the nodes).
  std::vector<SegmentMeta> ListSegments(CollectionId collection) const;
  /// Every segment id ever allocated for the collection (sealed or not);
  /// the complete wait-set for flush barriers.
  std::vector<SegmentId> AllocatedSegments(CollectionId collection) const;

  /// Compaction (Sections 3.1/3.5): merges sealed segments smaller than
  /// `small_rows` into larger ones and physically drops rows whose pk is in
  /// `deleted_pks` (gathered from the query nodes' delete buffers). The
  /// merged segment re-enters the pipeline via kSegmentSealed (index build,
  /// load); the replaced segments are released once it is served. Returns
  /// the merged segment ids created (empty when nothing qualified).
  ///
  /// Note: physically purging deleted rows bounds the time-travel horizon
  /// for the affected segments, as in production systems.
  Result<std::vector<SegmentId>> CompactSegments(
      CollectionId collection, const std::vector<int64_t>& deleted_pks,
      int64_t small_rows);

  /// Time travel (Section 4.3): checkpoints the collection's segment map.
  /// Returns the checkpoint's object path.
  Result<std::string> WriteCheckpoint(CollectionId collection);
  /// Segment map of the latest checkpoint taken at or before `ts`.
  Result<std::vector<SegmentMeta>> ReadCheckpoint(CollectionId collection,
                                                  Timestamp ts) const;

 private:
  struct ShardAlloc {
    SegmentId current = kInvalidSegmentId;
    int64_t rows = 0;
    uint64_t bytes = 0;
    int64_t last_alloc_ms = 0;
  };

  SegmentId NextSegmentId();
  void PublishFlush(CollectionId collection, ShardId shard,
                    SegmentId up_to) const;
  /// Rolls the shard allocator. Outputs the previously growing segment id
  /// via `rolled` (kInvalidSegmentId if none) and returns the barrier id
  /// below which data nodes must seal.
  SegmentId RollShardLocked(CollectionId collection, ShardId shard,
                            SegmentId* rolled);

  CoreContext ctx_;
  mutable std::mutex mu_;
  std::map<CollectionId, int32_t> shards_;  ///< Collection -> shard count.
  std::map<std::pair<CollectionId, ShardId>, ShardAlloc> alloc_;
  std::map<CollectionId, std::vector<SegmentId>> allocated_;
  std::map<std::pair<CollectionId, SegmentId>, SegmentMeta> segments_;
  std::atomic<int64_t> next_segment_id_{1};
};

}  // namespace manu

#endif  // MANU_CORE_DATA_COORD_H_
