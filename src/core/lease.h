#ifndef MANU_CORE_LEASE_H_
#define MANU_CORE_LEASE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/meta_store.h"

namespace manu {

/// One worker's lease as the watchdog and DescribeCluster see it.
struct LeaseInfo {
  NodeId node = kInvalidNodeId;
  std::string role;           ///< "query" | "data" | "index".
  int64_t epoch = 0;          ///< Fencing token granted at registration.
  int64_t last_renew_ms = 0;  ///< Wall clock of the last heartbeat.
  bool dead = false;          ///< Revoked by the watchdog (lease expired).
};

/// Load signal a query node piggybacks on its lease heartbeat (ROADMAP
/// item 3): the coordinator/proxy reads these for load-aware replica
/// selection (power-of-two-choices over a sealed segment's owner set) and
/// for the brownout pressure probe, without any extra RPC or polling.
struct NodeLoad {
  int64_t queue_depth = 0;       ///< Searches admitted but not yet running.
  int64_t inflight = 0;          ///< Admitted searches (queued + executing).
  int64_t ewma_latency_us = 0;   ///< Smoothed per-search service time.
  int64_t deadline_rejects = 0;  ///< Cumulative dead-on-arrival drops.
  int64_t overload_rejects = 0;  ///< Cumulative inflight-cap refusals.
  int64_t updated_ms = 0;        ///< NowMs() of the carrying heartbeat.
};

/// Heartbeat leases with persisted fencing epochs — the failure-detection
/// half of Section 3.6's "components are stateless log subscribers" story
/// (the Taurus/LogBase recipe: lease-fenced ownership).
///
/// Every worker registers a lease and renews it from its pump loop; the
/// ManuInstance watchdog calls ExpiredLeases() and revokes workers that
/// missed the TTL, which bumps the *persisted* epoch in the MetaStore via
/// CAS. Commit points (binlog archive, index registration, WAL publish,
/// checkpoint write) re-check their epoch against the persisted value, so a
/// zombie — a worker that paused, was failed over, and resumed — is rejected
/// instead of corrupting state it no longer owns.
///
/// Epochs are monotone across registrations of the same node id and across
/// process restarts (they live in the MetaStore, which recovery shares), so
/// a recovered instance re-registering node ids automatically fences the
/// previous incarnation.
///
/// Heartbeats are failpoint-pausable: Renew first evaluates the dynamic
/// site "lease.heartbeat.<node>", letting tests model a network partition
/// (node alive, heartbeats dropped) without touching the node itself.
class LeaseManager {
 public:
  LeaseManager(MetaStore* meta, int64_t ttl_ms);

  // --- Node leases ---

  /// Grants a lease; returns the fencing epoch (persisted prior epoch + 1).
  int64_t Register(NodeId node, const std::string& role);
  /// Heartbeat. Aborted when the caller's epoch was superseded (fenced) or
  /// when the failpoint "lease.heartbeat.<node>" drops the heartbeat.
  Status Renew(NodeId node, int64_t epoch);
  /// Heartbeat carrying a load snapshot; the load is stored only when the
  /// renewal succeeds (a fenced zombie's stale load must not steer routing).
  Status Renew(NodeId node, int64_t epoch, const NodeLoad& load);
  /// Last load snapshot heartbeat by `node`; zeroed default when the node
  /// never reported (callers check updated_ms for freshness).
  NodeLoad LoadOf(NodeId node) const;
  /// Commit-point fencing check: OK iff `epoch` is still the persisted
  /// epoch for `node`. Bumps lease.fencing_rejections on rejection.
  Status CheckEpoch(NodeId node, int64_t epoch);
  /// Marks the node dead and bumps its persisted epoch so in-flight commits
  /// from the (possibly still running) worker are rejected. Returns the new
  /// persisted epoch. Fence first, then fail over.
  int64_t Revoke(NodeId node);
  /// Graceful removal (scale-down / manual kill): the watchdog stops
  /// tracking the node. The persisted epoch is left behind; a future
  /// Register of the same id bumps past it.
  void Deregister(NodeId node);

  /// Live leases whose last renewal is older than the TTL (already-dead
  /// nodes excluded — each expiry fires once).
  std::vector<LeaseInfo> ExpiredLeases(int64_t now_ms) const;
  /// All tracked leases (DescribeCluster's liveness table).
  std::vector<LeaseInfo> Snapshot() const;
  int64_t ttl_ms() const { return ttl_ms_; }

  // --- Instance epoch ---
  // One fencing token for the whole ManuInstance: Recover() acquires a new
  // one over the shared MetaStore, which fences the previous instance's
  // loggers (WAL publish) and data coordinator (checkpoint write) even
  // though the old process may still be running.

  /// Bumps and returns the persisted instance epoch.
  int64_t AcquireInstanceEpoch();
  /// OK iff `epoch` is the current persisted instance epoch.
  Status CheckInstanceEpoch(int64_t epoch);

 private:
  /// CAS-increments the persisted epoch stored at `key`; returns the new
  /// value. Tolerates concurrent bumpers (retries).
  int64_t BumpPersistedEpoch(const std::string& key);
  /// Persisted epoch at `key`; 0 when the key does not exist.
  int64_t PersistedEpoch(const std::string& key) const;

  MetaStore* meta_;
  int64_t ttl_ms_;

  mutable std::mutex mu_;
  std::map<NodeId, LeaseInfo> nodes_;
  std::map<NodeId, NodeLoad> loads_;
};

}  // namespace manu

#endif  // MANU_CORE_LEASE_H_
