#ifndef MANU_CORE_CONTEXT_H_
#define MANU_CORE_CONTEXT_H_

#include <memory>

#include "core/config.h"
#include "storage/meta_store.h"
#include "storage/object_store.h"
#include "wal/mq.h"
#include "wal/time_tick.h"
#include "wal/tso.h"

namespace manu {

class LeaseManager;

/// Shared infrastructure handles passed to every service: the storage layer
/// (meta + object store), the log backbone (broker, TSO, tick emitter) and
/// the instance configuration. All pointers are non-owning; ManuInstance
/// owns the real objects and outlives every service.
///
/// `leases` / `instance_epoch` are nullable/zero: bare nodes built in unit
/// tests run without liveness, so every lease interaction in the nodes is
/// null-guarded. New members go at the end — tests aggregate-initialize.
struct CoreContext {
  ManuConfig config;
  MetaStore* meta = nullptr;
  ObjectStore* store = nullptr;
  MessageQueue* mq = nullptr;
  Tso* tso = nullptr;
  TimeTickEmitter* ticker = nullptr;
  LeaseManager* leases = nullptr;
  /// Fencing token of the owning ManuInstance (checked at WAL-publish and
  /// checkpoint commit points against the persisted instance epoch).
  int64_t instance_epoch = 0;
};

}  // namespace manu

#endif  // MANU_CORE_CONTEXT_H_
