#ifndef MANU_CORE_PROXY_H_
#define MANU_CORE_PROXY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/threadpool.h"
#include "common/trace.h"
#include "core/admission.h"
#include "core/context.h"
#include "core/expr.h"
#include "core/logger.h"
#include "core/query_coord.h"
#include "core/root_coord.h"

namespace manu {

/// Client-facing search request (the PyManu `Collection.search` /
/// `Collection.query` surface, Table 2).
struct SearchRequest {
  std::string collection;
  /// Vector field to search; empty = the collection's first vector field.
  std::string field;
  std::vector<float> query;

  /// Multi-vector search: when non-empty, `field`/`query` are ignored and
  /// the entity score is sum(weight_i * canonical_score_i).
  struct MultiTarget {
    std::string field;
    std::vector<float> query;
    float weight = 1.0f;
  };
  std::vector<MultiTarget> multi;

  size_t k = 10;
  int32_t nprobe = 16;
  int32_t ef_search = 64;

  /// Boolean filter over scalar fields, e.g. "price > 0 && label == 'book'".
  std::string filter;

  ConsistencyLevel consistency = ConsistencyLevel::kBounded;
  /// Staleness tolerance tau in ms for kBounded; <0 uses the instance
  /// default.
  int64_t staleness_ms = -1;

  // --- Multi-tenant admission (core/admission.h) ---
  /// Tenant for per-tenant token-bucket admission; empty = the default
  /// tenant (all anonymous traffic shares one bucket).
  std::string tenant;
  /// Scheduling class: 0 = normal, > 0 = low priority. Brownout stage 2
  /// sheds priority > 0 requests first (with a retry-after hint) while
  /// normal-priority traffic still serves degraded.
  int32_t priority = 0;

  /// Time travel: non-zero = search the collection as of this timestamp.
  Timestamp travel_ts = 0;

  // --- Graceful degradation ---
  /// When true, a failed or deadline-missing query node degrades the search
  /// to a partial result (SearchResult::coverage < 1) instead of failing
  /// it. Off by default: a complete answer or an error.
  bool allow_partial = false;
  /// Per-node wait bound in ms for this search's fan-out; <= 0 uses the
  /// instance default (ManuConfig::node_search_deadline_ms).
  int64_t node_deadline_ms = 0;
};

struct SearchResult {
  std::vector<int64_t> ids;
  std::vector<float> scores;  ///< Canonical scores, best first.
  /// Fraction of the collection's serving segments reflected in the top-k
  /// (weighted by per-node segment counts). 1.0 unless allow_partial
  /// dropped a failed/slow node.
  double coverage = 1.0;
};

/// Stateless access-layer proxy (Section 3.2): verifies requests against
/// cached metadata (rejecting bad requests before they cost anything
/// downstream), assigns the query timestamp, fans out to the query nodes
/// holding the collection's segments, and runs the final phase of the
/// two-phase top-k reduce (with pk dedup, since rebalancing may briefly
/// duplicate a segment).
class Proxy {
 public:
  Proxy(const CoreContext& ctx, RootCoordinator* root_coord,
        QueryCoordinator* query_coord, LoggerFleet* loggers);

  Result<SearchResult> Search(const SearchRequest& req);

  /// Batched search (Section 3.6: "requests of the same type are organized
  /// into one batch and handled together"): requests sharing a collection
  /// share one query timestamp and one dispatch per query node, amortizing
  /// validation, the consistency gate and executor scheduling. Returns one
  /// result per request, in order; per-request failures don't fail the
  /// batch.
  std::vector<Result<SearchResult>> BatchSearch(
      const std::vector<SearchRequest>& reqs);

  /// Write path: validates and forwards to the logger fleet. Returns the
  /// operation's LSN (its visibility point). On logger backpressure
  /// (kResourceExhausted) the proxy — and ONLY the proxy — may re-attempt
  /// up to admission_write_retry_attempts times, sleeping the response's
  /// retry-after hint plus deterministic jitter first.
  Result<Timestamp> Insert(const std::string& collection, EntityBatch batch);
  Result<Timestamp> Delete(const std::string& collection,
                           const std::vector<int64_t>& pks);

  /// Overload front door state (DescribeCluster, tests).
  const AdmissionController& admission() const { return admission_; }

 private:
  /// Validated request, ready for fan-out. Owns the parsed filter AND the
  /// query vectors the NodeSearchRequest points into: with allow_partial
  /// the proxy may abandon a slow node's future and return, so everything a
  /// node task dereferences must be owned here (shared_ptr-captured), not
  /// borrowed from the caller's SearchRequest.
  struct Prepared {
    CollectionMeta meta;
    NodeSearchRequest nreq;
    std::unique_ptr<FilterExpr> filter;
    std::vector<std::vector<float>> owned_queries;
  };

  /// Runs verification + consistency setup; read_ts is left for the caller
  /// (single searches and batches stamp differently).
  Result<Prepared> Prepare(const SearchRequest& req);

  /// One fan-out attempt: routes via the coordinator's current snapshot,
  /// dispatches, gathers, merges. Node spans parent to `parent` (the root
  /// span on the first attempt, a proxy.retry span on re-dispatch), so a
  /// retried search renders with its attempts as siblings.
  Result<SearchResult> SearchOnce(const SearchRequest& req,
                                  const std::shared_ptr<Prepared>& prep,
                                  Span* parent);

  static SearchResult ToResult(std::vector<Neighbor> merged);

  /// Tags the admission decision on `span` (may be null) and records the
  /// admission.*/shed.* metrics.
  void RecordAdmission(Span* span, const AdmitDecision& decision);
  /// Per-node deadline for a degraded (brownout stage >= 1) request:
  /// the effective deadline scaled by shed_deadline_factor, or
  /// shed_degraded_deadline_ms when the request was unbounded.
  int64_t DegradedDeadlineMs(int64_t request_deadline_ms) const;
  /// Shared Insert/Delete backpressure loop: runs `attempt_fn`, honoring a
  /// kResourceExhausted retry-after hint (plus deterministic jitter) up to
  /// admission_write_retry_attempts extra attempts. `last` tells the
  /// callback it may move its payload.
  Result<Timestamp> WriteWithBackpressure(
      Span* root, const std::function<Result<Timestamp>(bool last)>& attempt);

  CoreContext ctx_;
  RootCoordinator* root_coord_;
  QueryCoordinator* query_coord_;
  LoggerFleet* loggers_;
  AdmissionController admission_;  ///< Overload front door.
  ThreadPool pool_;  ///< Fan-out workers for multi-node dispatch.
};

}  // namespace manu

#endif  // MANU_CORE_PROXY_H_
