#ifndef MANU_CORE_FILTER_PLANNER_H_
#define MANU_CORE_FILTER_PLANNER_H_

#include <cstdint>

#include "common/types.h"

namespace manu {

/// Per-segment execution strategy for an attribute-filtered search
/// (Section 3.6: "Manu supports three strategies for attribute filtering and
/// uses a cost-based model to choose the most suitable strategy for each
/// segment").
enum class FilterStrategy : uint8_t {
  kNone = 0,      ///< Request carries no filter.
  kLegacy,        ///< Planner disabled: the pre-planner A/B/C heuristic.
  kPostScan,      ///< Unmasked ANN, intersect afterwards (baseline; only
                  ///< ever chosen when forced — it exists so benches and
                  ///< equivalence tests can measure the planner against the
                  ///< strategy production systems are trying to beat).
  kPreFilter,     ///< Materialize the allowed mask, hand it to the index.
  kTraversal,     ///< Filter-aware traversal: HNSW visiting-filter with
                  ///< adaptive ef inflation, IVF allowed-list pruning.
  kBruteMatches,  ///< Exact brute force over only the matching rows.
};

const char* FilterStrategyName(FilterStrategy s);

/// Planner knobs. Carried per-request from ManuConfig (all off by default:
/// with `enable == false` every segment takes the legacy path).
struct FilterPlannerParams {
  bool enable = false;
  /// Force one strategy regardless of cost (bench / equivalence-test hook).
  FilterStrategy force = FilterStrategy::kNone;
  /// Selectivity below which brute-forcing the matches beats any index
  /// (exact scan over sel*n rows vs a masked ANN probe; the measured
  /// crossover on clustered data sits near 15%, see bench_filtered).
  double brute_threshold = 0.15;
  /// Selectivity below which filtered traversal beats a plain masked scan;
  /// above it the mask is dense enough that pre-filtering wins.
  double prefilter_threshold = 0.5;
  /// Cap on the adaptive ef multiplier under filtered HNSW traversal.
  double ef_inflation_cap = 16.0;
};

/// The plan for one segment: chosen strategy plus the selectivity estimate
/// that drove the choice (tagged on the segment.scan span and exported via
/// the filter.* metrics family).
struct FilterPlan {
  FilterStrategy strategy = FilterStrategy::kNone;
  double selectivity = 1.0;
};

/// True when `type`'s Search implementation understands
/// SearchParams::filtered_traversal.
bool SupportsFilteredTraversal(IndexType type);

/// Cost-based strategy choice for one segment. `index_type` is only
/// meaningful when `has_index` (an index covering all segment rows).
FilterPlan PlanFilter(const FilterPlannerParams& params, double selectivity,
                      bool has_index, IndexType index_type);

}  // namespace manu

#endif  // MANU_CORE_FILTER_PLANNER_H_
