#include "core/query_node.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "core/admission.h"
#include "core/lease.h"
#include "index/index_factory.h"
#include "storage/binlog.h"

namespace manu {

QueryNode::QueryNode(NodeId id, const CoreContext& ctx)
    : id_(id),
      ctx_(ctx),
      executor_(std::make_unique<ThreadPool>(
          std::max(1, ctx.config.query_threads))) {}

QueryNode::~QueryNode() {
  Stop();
  executor_.reset();
}

Status QueryNode::AdmitSearch(const NodeSearchRequest& req) {
  // A request whose deadline already passed is dead on arrival: fail fast
  // instead of letting it claim executor slots just to time out inside the
  // scan path (the pre-admission behavior — see the re-checks in
  // SearchInternal / search_one for requests that expire later).
  if (req.deadline_us > 0 && NowMicros() > req.deadline_us) {
    deadline_rejects_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::Global().GetCounter("query_node.deadline_rejects")->Add();
    return Status::Timeout("query node " + std::to_string(id_) +
                           ": deadline already passed at admission");
  }
  const int64_t cap = ctx_.config.admission_node_inflight;
  if (cap > 0) {
    // Optimistic reserve; back out at the cap. The node refuses instead of
    // queueing unboundedly — the proxy's ladder turns this into
    // degrade/shed long before clients see it.
    if (outstanding_.fetch_add(1, std::memory_order_relaxed) + 1 > cap) {
      outstanding_.fetch_sub(1, std::memory_order_relaxed);
      overload_rejects_.fetch_add(1, std::memory_order_relaxed);
      MetricsRegistry::Global()
          .GetCounter("query_node.overload_rejects")
          ->Add();
      const int64_t hint_ms = std::max<int64_t>(
          1, ewma_latency_us_.load(std::memory_order_relaxed) / 1000);
      return AdmissionController::ShedStatus(
          "query node " + std::to_string(id_), /*stage=*/0, hint_ms);
    }
  } else {
    outstanding_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Result<std::vector<SegmentHit>> QueryNode::RunAdmitted(
    const NodeSearchRequest& req) {
  executing_.fetch_add(1, std::memory_order_relaxed);
  const int64_t t0 = NowMicros();
  auto result = SearchInternal(req);
  // EWMA service time (alpha = 1/8), the load signal heartbeats carry for
  // power-of-two-choices routing. Relaxed lost updates only blur an
  // already-approximate signal.
  const int64_t lat = NowMicros() - t0;
  const int64_t prev = ewma_latency_us_.load(std::memory_order_relaxed);
  ewma_latency_us_.store(prev == 0 ? lat : prev - prev / 8 + lat / 8,
                         std::memory_order_relaxed);
  executing_.fetch_sub(1, std::memory_order_relaxed);
  outstanding_.fetch_sub(1, std::memory_order_relaxed);
  return result;
}

Result<std::vector<SegmentHit>> QueryNode::Search(
    const NodeSearchRequest& req) {
  MANU_RETURN_NOT_OK(AdmitSearch(req));
  return executor_->Submit([this, &req] { return RunAdmitted(req); }).get();
}

std::vector<Result<std::vector<SegmentHit>>> QueryNode::SearchBatch(
    const std::vector<NodeSearchRequest>& reqs) {
  // One executor task per request: the batch spreads across the pool
  // instead of serializing on a single thread (the old mega-task pinned
  // the whole batch to one executor slot, so query_threads bought batched
  // clients nothing). Refused requests (expired deadline, full node) fail
  // in place without claiming a slot.
  std::vector<Result<std::vector<SegmentHit>>> out(reqs.size());
  std::vector<std::pair<size_t, std::future<Result<std::vector<SegmentHit>>>>>
      futures;
  futures.reserve(reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    Status admitted = AdmitSearch(reqs[i]);
    if (!admitted.ok()) {
      out[i] = std::move(admitted);
      continue;
    }
    const NodeSearchRequest& req = reqs[i];
    futures.emplace_back(
        i, executor_->Submit([this, &req] { return RunAdmitted(req); }));
  }
  for (auto& [i, fut] : futures) out[i] = fut.get();
  return out;
}

void QueryNode::Start() {
  if (ctx_.leases != nullptr) {
    lease_epoch_ = ctx_.leases->Register(id_, "query");
  }
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
}

void QueryNode::Stop() {
  stop_.store(true, std::memory_order_release);
  tick_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void QueryNode::AddChannel(CollectionId collection, ShardId shard,
                           std::shared_ptr<const CollectionSchema> schema,
                           bool primary) {
  auto ch = std::make_shared<ChannelState>();
  ch->sub = ctx_.mq->Subscribe(ShardChannelName(collection, shard),
                               SubscribePosition::kEarliest);
  ch->collection = collection;
  ch->shard = shard;
  ch->primary = primary;
  std::unique_lock lk(mu_);
  collections_[collection].schema = std::move(schema);
  channels_.push_back(std::move(ch));
}

void QueryNode::PromoteChannel(CollectionId collection, ShardId shard) {
  std::unique_lock lk(mu_);
  for (auto& ch : channels_) {
    if (ch->collection != collection || ch->shard != shard) continue;
    if (ch->primary) return;
    ch->primary = true;
    // Replay from the start to rebuild growing state; sealed twins are
    // skipped and deletes/tombstones are idempotent.
    ch->sub->Seek(ctx_.mq->BeginOffset(ch->sub->channel()));
    // Re-arm the consistency gate: while following, this channel's
    // service_ts tracked ticks it consumed WITHOUT materializing inserts,
    // so it overstates how fresh the rebuilt growing state is. Resetting it
    // makes bounded/strong searches wait for the replay to actually catch
    // up instead of serving a recovered shard's stale state as fresh.
    ch->service_ts = 0;
    return;
  }
}

void QueryNode::DemoteChannel(CollectionId collection, ShardId shard) {
  std::unique_lock lk(mu_);
  for (auto& ch : channels_) {
    if (ch->collection == collection && ch->shard == shard) {
      ch->primary = false;
    }
  }
  auto it = collections_.find(collection);
  if (it == collections_.end()) return;
  std::vector<SegmentId> drop;
  for (const auto& [seg, s] : it->second.growing_shard) {
    if (s == shard) drop.push_back(seg);
  }
  for (SegmentId seg : drop) {
    it->second.growing.erase(seg);
    it->second.growing_shard.erase(seg);
  }
}

void QueryNode::RemoveCollection(CollectionId collection) {
  std::unique_lock lk(mu_);
  std::erase_if(channels_, [&](const auto& ch) {
    return ch->collection == collection;
  });
  collections_.erase(collection);
}

void QueryNode::Run() {
  int64_t next_heartbeat_ms = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    if (ctx_.leases != nullptr && NowMs() >= next_heartbeat_ms) {
      // Renewal failures (dropped heartbeat failpoint, fenced epoch) are
      // deliberate no-ops: the watchdog decides liveness, not the worker.
      // The heartbeat carries this node's load snapshot — the free
      // transport for the coordinator/proxy's load-aware replica routing.
      (void)ctx_.leases->Renew(id_, lease_epoch_, LoadSnapshot());
      next_heartbeat_ms = NowMs() + ctx_.config.heartbeat_interval_ms;
    }
    bool idle = true;
    std::vector<std::shared_ptr<ChannelState>> channels;
    {
      std::shared_lock lk(mu_);
      channels = channels_;
    }
    for (const auto& ch : channels) {
      auto entries = ch->sub->TryPoll(ctx_.config.poll_batch);
      // Surface truncation gaps: deletes dropped below this cursor are
      // only recoverable via LoadSealedSegment's replay-from-floor, so a
      // silent skip here would hide real tombstone loss.
      const int64_t missed = ch->sub->missed();
      if (missed > ch->missed_seen) {
        MANU_LOG_WARN << "query node " << id_ << " channel "
                      << ch->sub->channel() << " lost "
                      << (missed - ch->missed_seen)
                      << " truncated WAL entries (cursor snapped to floor)";
        ch->missed_seen = missed;
      }
      if (entries.empty()) continue;
      idle = false;
      std::unique_lock lk(mu_);
      for (const auto& entry : entries) {
        HandleEntry(ch.get(), *entry);
      }
      lk.unlock();
      tick_cv_.notify_all();
    }
    if (idle) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

void QueryNode::HandleEntry(ChannelState* ch, const LogEntry& entry) {
  auto cit = collections_.find(ch->collection);
  if (cit == collections_.end()) return;  // Released concurrently.
  CollectionState& coll = cit->second;
  switch (entry.type) {
    case LogEntryType::kInsert: {
      if (!ch->primary) break;  // Followers consume deletes/ticks only.
      // A sealed twin already covers this data (late replay after load).
      if (coll.sealed.count(entry.segment) > 0) break;
      auto& growing = coll.growing[entry.segment];
      if (growing == nullptr) {
        growing = std::make_shared<GrowingSegment>(
            entry.segment, coll.schema.get(), ctx_.config.slice_rows);
        coll.growing_shard[entry.segment] = ch->shard;
      }
      Status st = growing->Append(entry.batch);
      if (!st.ok()) {
        MANU_LOG_ERROR << "query node " << id_ << " growing append: "
                       << st.ToString();
      }
      break;
    }
    case LogEntryType::kDelete: {
      for (int64_t pk : entry.delete_pks) {
        // Every tombstone is buffered with its own LSN: keeping only the
        // max would make a late-loaded segment show the pre-reinsert
        // version of a delete -> reinsert -> delete pk to reads between
        // the two deletes. Exact (pk, LSN) dedup keeps PromoteChannel's
        // from-the-start replay from growing the buffer.
        std::vector<Timestamp>& buffered = coll.deletes[pk];
        if (buffered.empty() || entry.timestamp > buffered.back()) {
          buffered.push_back(entry.timestamp);
          ++coll.deletes_count;
        } else if (!std::binary_search(buffered.begin(), buffered.end(),
                                       entry.timestamp)) {
          buffered.insert(std::lower_bound(buffered.begin(), buffered.end(),
                                           entry.timestamp),
                          entry.timestamp);
          ++coll.deletes_count;
        }
        for (auto& [_, seg] : coll.growing) seg->Delete(pk, entry.timestamp);
        for (auto& [_, seg] : coll.sealed) seg->Delete(pk, entry.timestamp);
      }
      MaybeCompactDeletesLocked(ch->collection, &coll);
      break;
    }
    case LogEntryType::kTimeTick:
    case LogEntryType::kFlush:
      break;  // Progress markers; service_ts update below covers them.
    default:
      break;
  }
  ch->service_ts = std::max(ch->service_ts, entry.timestamp);
}

Status QueryNode::LoadSealedSegment(
    const SegmentMeta& meta, std::shared_ptr<const CollectionSchema> schema) {
  MANU_FAILPOINT("query_node.load_segment");
  const RetryPolicy retry = MakeIoRetryPolicy(ctx_.config);
  // Load outside the lock (object-store IO), install under the lock.
  // Transient store faults are retried here so a blip during recovery or
  // rebalance does not abandon the segment.
  MANU_ASSIGN_OR_RETURN(
      EntityBatch rows,
      RetryResult(retry, "query_node.load_segment", [&] {
        return binlog::ReadSegment(ctx_.store, meta.binlog_path);
      }));
  auto segment = std::make_shared<SealedSegment>(meta.id, schema.get());
  MANU_RETURN_NOT_OK(segment->SetRows(rows));
  // Prefer the index node's persisted attribute-index artifact over
  // rebuilding scalar indexes locally; any load failure falls back to the
  // local build (the artifact is an acceleration, never a prerequisite).
  bool filter_loaded = false;
  if (!meta.filter_index_path.empty()) {
    auto load_filter = [&]() -> Status {
      MANU_ASSIGN_OR_RETURN(
          std::string framed,
          RetryResult(retry, "query_node.load_filter_index", [&] {
            return ctx_.store->Get(meta.filter_index_path);
          }));
      MANU_ASSIGN_OR_RETURN(std::string payload, binlog::Unframe(framed));
      BinaryReader r(payload);
      MANU_ASSIGN_OR_RETURN(FilterIndex filter_index,
                            FilterIndex::Deserialize(&r));
      return segment->SetFilterIndex(
          std::make_shared<const FilterIndex>(std::move(filter_index)));
    };
    Status st = load_filter();
    if (st.ok()) {
      filter_loaded = true;
      MetricsRegistry::Global().GetCounter("filter.index_loads")->Add(1);
    } else {
      MANU_LOG_WARN << "query node " << id_ << " filter index load failed ("
                    << st.ToString() << "), rebuilding scalar indexes";
      MetricsRegistry::Global()
          .GetCounter("filter.index_load_failures")
          ->Add(1);
    }
  }
  if (!filter_loaded) MANU_RETURN_NOT_OK(segment->BuildScalarIndexes());
  for (const auto& [field, path] : meta.index_paths) {
    MANU_ASSIGN_OR_RETURN(std::string framed,
                          RetryResult(retry, "query_node.load_index",
                                      [&] { return ctx_.store->Get(path); }));
    MANU_ASSIGN_OR_RETURN(std::string payload, binlog::Unframe(framed));
    MANU_ASSIGN_OR_RETURN(std::unique_ptr<VectorIndex> index,
                          DeserializeVectorIndex(payload, ctx_.store));
    MANU_RETURN_NOT_OK(segment->SetIndex(field, std::move(index)));
  }

  std::unique_lock lk(mu_);
  CollectionState& coll = collections_[meta.collection];
  if (coll.schema == nullptr) coll.schema = schema;
  // Re-apply deletes consumed before this load (sealed binlog has inserts
  // only). Two sources cover the full history:
  //  1. Tombstones below the compaction floor live only in the WAL now —
  //     this node's channel subscriptions are already past them and never
  //     re-seek, so replay the segment's shard channel (deletes are routed
  //     by pk hash, so one shard's channel is complete for its segments)
  //     from the earliest retained offset up to the floor. Done under the
  //     unique lock so a concurrent compaction cannot advance the floor
  //     between the scan and the buffer replay; the scan is in-memory and
  //     this path is cold (handoff / recovery / rebalance).
  //  2. The buffer holds every tombstone at or above the floor.
  if (coll.deletes_floor_ts > 0) {
    const std::string channel =
        ShardChannelName(meta.collection, meta.shard);
    const int64_t end =
        ctx_.mq->FirstOffsetAtOrAfter(channel, coll.deletes_floor_ts);
    auto sub = ctx_.mq->SubscribeAt(channel, ctx_.mq->BeginOffset(channel));
    while (sub->position() < end) {
      auto entries = sub->TryPoll(static_cast<size_t>(
          std::min<int64_t>(ctx_.config.poll_batch, end - sub->position())));
      if (entries.empty()) break;
      for (const auto& e : entries) {
        if (e->type != LogEntryType::kDelete) continue;
        for (int64_t pk : e->delete_pks) segment->Delete(pk, e->timestamp);
      }
    }
  }
  for (const auto& [pk, ts_list] : coll.deletes) {
    for (Timestamp ts : ts_list) segment->Delete(pk, ts);
  }
  coll.sealed[meta.id] = std::move(segment);
  coll.sealed_meta[meta.id] = meta;
  // The growing twin is now redundant on *this* node.
  coll.growing.erase(meta.id);
  coll.growing_shard.erase(meta.id);
  MetricsRegistry::Global().GetCounter("query_node.segments_loaded")->Add(1);
  return Status::OK();
}

void QueryNode::DropGrowing(CollectionId collection, SegmentId segment) {
  std::unique_lock lk(mu_);
  auto it = collections_.find(collection);
  if (it != collections_.end()) {
    it->second.growing.erase(segment);
    it->second.growing_shard.erase(segment);
  }
}

void QueryNode::ReleaseSegment(CollectionId collection, SegmentId segment) {
  std::unique_lock lk(mu_);
  auto it = collections_.find(collection);
  if (it != collections_.end()) {
    it->second.sealed.erase(segment);
    it->second.sealed_meta.erase(segment);
  }
}

void QueryNode::MaybeCompactDeletesLocked(CollectionId collection,
                                          CollectionState* coll) {
  const size_t floor_size = static_cast<size_t>(
      std::max<int64_t>(1, ctx_.config.delete_buffer_compact_min));
  if (coll->deletes_compact_at < floor_size) {
    coll->deletes_compact_at = floor_size;
  }
  if (coll->deletes_count < coll->deletes_compact_at) return;
  // Tombstones below the collection's min consumed tick have been applied
  // to every segment this node serves, so the buffer only needs the
  // in-flight suffix — which bounds it, and the linear replay on
  // LoadSealedSegment, by the delete rate within the consistency window
  // instead of by history. Segments handed to this node later (recovery /
  // rebalance, not covered by any channel re-seek) get the pruned prefix
  // backfilled from the retained WAL: LoadSealedSegment replays the shard
  // channel up to deletes_floor_ts recorded here.
  const Timestamp floor_ts = ServiceTsLocked(collection);
  size_t count = 0;
  for (auto it = coll->deletes.begin(); it != coll->deletes.end();) {
    std::vector<Timestamp>& ts_list = it->second;
    ts_list.erase(ts_list.begin(), std::lower_bound(ts_list.begin(),
                                                    ts_list.end(), floor_ts));
    if (ts_list.empty()) {
      it = coll->deletes.erase(it);
    } else {
      count += ts_list.size();
      ++it;
    }
  }
  coll->deletes_count = count;
  coll->deletes_floor_ts = std::max(coll->deletes_floor_ts, floor_ts);
  // Doubling schedule keeps the scan amortized O(1) per consumed delete.
  coll->deletes_compact_at = std::max(floor_size, coll->deletes_count * 2);
  MetricsRegistry::Global()
      .GetCounter("query_node.delete_buffer_compactions")
      ->Add(1);
}

Timestamp QueryNode::ServiceTsLocked(CollectionId collection) const {
  Timestamp min_ts = kMaxTimestamp;
  bool any = false;
  for (const auto& ch : channels_) {
    if (ch->collection != collection) continue;
    min_ts = std::min(min_ts, ch->service_ts);
    any = true;
  }
  return any ? min_ts : 0;
}

Timestamp QueryNode::ServiceTs(CollectionId collection) const {
  std::shared_lock lk(mu_);
  return ServiceTsLocked(collection);
}

bool QueryNode::WaitServiceTs(CollectionId collection, Timestamp ts,
                              int64_t max_ms) {
  std::shared_lock lk(mu_);
  tick_cv_.wait_for(lk, std::chrono::milliseconds(max_ms), [&] {
    return ServiceTsLocked(collection) >= ts ||
           stop_.load(std::memory_order_acquire);
  });
  // stop_ wakes the wait but is not progress: reporting success for a node
  // that stopped mid-wait would bless its stale snapshot as fresh enough.
  return ServiceTsLocked(collection) >= ts;
}

bool QueryNode::WaitConsistency(CollectionId collection, Timestamp read_ts,
                                int64_t staleness_ms) {
  if (staleness_ms < 0) return true;  // Eventual: never wait.
  if (staleness_ms == 0) {
    // tau=0 (strong): compare full hybrid timestamps. The millisecond
    // comparison below would let a time-tick from the same millisecond as
    // the inserts — published before them, so consumed first — open the
    // gate while the inserts are still in the channel, and the "strong"
    // search would miss acked rows.
    std::shared_lock lk(mu_);
    tick_cv_.wait_for(
        lk, std::chrono::milliseconds(ctx_.config.max_consistency_wait_ms),
        [&] {
          return ServiceTsLocked(collection) >= read_ts ||
                 stop_.load(std::memory_order_acquire);
        });
    return ServiceTsLocked(collection) >= read_ts;
  }
  const int64_t target_ms =
      static_cast<int64_t>(PhysicalMs(read_ts)) - staleness_ms;
  std::shared_lock lk(mu_);
  // Lr - Ls < tau  <=>  physical(Ls) > physical(Lr) - tau.
  tick_cv_.wait_for(
      lk, std::chrono::milliseconds(ctx_.config.max_consistency_wait_ms),
      [&] {
        return static_cast<int64_t>(
                   PhysicalMs(ServiceTsLocked(collection))) >= target_ms ||
               stop_.load(std::memory_order_acquire);
      });
  // Re-evaluate the real freshness condition: stop_ wakes the wait so a
  // dying node does not burn the full bound, but it must not turn an
  // unsatisfied gate into success (SearchInternal separately refuses
  // stopped nodes even when the gate holds).
  return static_cast<int64_t>(PhysicalMs(ServiceTsLocked(collection))) >=
         target_ms;
}

Result<std::vector<SegmentHit>> QueryNode::SearchInternal(
    const NodeSearchRequest& req) {
  Span span(req.trace, "query_node.search");
  span.Tag("node", static_cast<int64_t>(id_));
  if (stop_.load(std::memory_order_acquire)) {
    // A crashed (killed) node refuses searches instead of serving whatever
    // stale state its last pump iteration left behind.
    span.Tag("error", "node stopped");
    return Status::Unavailable("query node " + std::to_string(id_) +
                               " is stopped");
  }
  // Re-check the deadline after the queue wait: an admitted request can
  // expire while queued behind the pool, and scanning for a proxy that
  // already gave up only steals capacity from live requests.
  if (req.deadline_us > 0 && NowMicros() > req.deadline_us) {
    deadline_rejects_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::Global().GetCounter("query_node.deadline_rejects")->Add();
    span.Tag("error", "deadline passed in queue");
    return Status::Timeout("query node " + std::to_string(id_) +
                           ": deadline passed while queued");
  }
  // Delay policies model a slow node (misses the proxy deadline), error
  // policies a failing one; both are how the chaos test forces coverage<1.
  MANU_FAILPOINT("query_node.search_segment");
  auto* wait_hist =
      MetricsRegistry::Global().GetHistogram("query_node.consistency_wait");
  {
    const int64_t t0 = NowMicros();
    Span wait_span(span.context(), "query_node.wait_consistency");
    const bool fresh =
        WaitConsistency(req.collection, req.read_ts, req.staleness_ms);
    // Re-check stop_ after the wait: stopping satisfies the wait predicate,
    // and a node killed mid-wait must refuse instead of serving whatever
    // snapshot its last pump iteration left behind.
    if (stop_.load(std::memory_order_acquire)) {
      span.Tag("error", "node stopped during wait");
      return Status::Unavailable("query node " + std::to_string(id_) +
                                 " stopped during consistency wait");
    }
    if (!fresh) {
      wait_span.Tag("fresh", "false");
      span.Tag("error", "consistency wait exceeded bound");
      return Status::Timeout("consistency wait exceeded bound");
    }
    wait_hist->Observe(static_cast<double>(NowMicros() - t0));
  }

  // The shared lock is held for the whole search phase: the WAL pump
  // mutates segments only under the unique lock, so readers see a
  // consistent snapshot without per-segment synchronization.
  std::shared_lock lk(mu_);
  std::vector<std::shared_ptr<GrowingSegment>> growing;
  std::vector<std::shared_ptr<SealedSegment>> sealed;
  int64_t tombstones = 0;
  {
    auto it = collections_.find(req.collection);
    if (it == collections_.end()) {
      span.Tag("error", "collection not served");
      return Status::NotFound("collection not served by node " +
                              std::to_string(id_));
    }
    for (const auto& [seg_id, seg] : it->second.growing) {
      if (it->second.sealed.count(seg_id) > 0) continue;  // Sealed twin wins.
      growing.push_back(seg);
    }
    // A routing plan narrows the sealed scan to this node's assigned share
    // (replica routing: one load-chosen owner per segment); an empty filter
    // keeps the scan-everything behavior for direct callers.
    const bool planned = !req.sealed_filter.empty();
    for (const auto& [seg_id, seg] : it->second.sealed) {
      if (planned && !std::binary_search(req.sealed_filter.begin(),
                                         req.sealed_filter.end(), seg_id)) {
        continue;
      }
      sealed.push_back(seg);
    }
    tombstones = static_cast<int64_t>(it->second.deletes_count);
  }

  if (req.targets.empty()) {
    span.Tag("error", "no search targets");
    return Status::InvalidArgument("no search targets");
  }

  const int64_t t0 = NowMicros();
  const int64_t num_sealed = static_cast<int64_t>(sealed.size());
  const int64_t num_segments =
      num_sealed + static_cast<int64_t>(growing.size());
  // Fixed slot per segment: results land at their segment's index no
  // matter which thread finishes first, so the reduce input — and with the
  // order-independent MergeTopK, the final top-k — is byte-identical to
  // the serial scan.
  std::vector<std::vector<Neighbor>> per_segment(num_segments);
  std::vector<Status> statuses(num_segments);
  std::vector<FilterPlan> plans(num_segments);
  span.Tag("segments", num_segments);
  span.Tag("tombstones", tombstones);

  FilterPlannerParams filter_params;
  filter_params.enable = ctx_.config.filter_planner_enable;
  filter_params.force = req.force_filter_strategy;
  filter_params.brute_threshold = ctx_.config.filter_brute_threshold;
  filter_params.prefilter_threshold = ctx_.config.filter_prefilter_threshold;
  filter_params.ef_inflation_cap = ctx_.config.filter_ef_inflation_cap;

  // Single-vector per-segment top-k.
  auto single_search = [&](int64_t i) -> Status {
    const SearchTarget& target = req.targets[0];
    SegmentSearchRequest sreq;
    sreq.field = target.field;
    sreq.query = target.query;
    sreq.params = req.params;
    sreq.read_ts = req.read_ts;
    sreq.filter = req.filter;
    sreq.filter_params = filter_params;
    sreq.plan_out = &plans[i];
    auto hits = i < num_sealed ? sealed[i]->Search(sreq)
                               : growing[i - num_sealed]->Search(sreq);
    if (!hits.ok()) return hits.status();
    std::vector<Neighbor> list;
    list.reserve(hits.value().size());
    for (const auto& h : hits.value()) list.push_back({h.pk, h.score});
    per_segment[i] = std::move(list);
    return Status::OK();
  };

  // Multi-vector search, "vector fusion" strategy: per-field searches
  // gather candidates, exact weighted re-ranking scores them (the
  // decomposable-similarity strategy; Section 3.6).
  auto multi_search = [&](int64_t i) -> Status {
    const size_t cand_k = req.params.k * 2 + 16;
    const SegmentCore& core = i < num_sealed
                                  ? sealed[i]->core()
                                  : growing[i - num_sealed]->core();
    std::unordered_set<int64_t> candidates;
    for (const SearchTarget& target : req.targets) {
      SegmentSearchRequest sreq;
      sreq.field = target.field;
      sreq.query = target.query;
      sreq.params = req.params;
      sreq.params.k = cand_k;
      sreq.read_ts = req.read_ts;
      sreq.filter = req.filter;
      sreq.filter_params = filter_params;
      sreq.plan_out = &plans[i];
      auto hits = i < num_sealed ? sealed[i]->Search(sreq)
                                 : growing[i - num_sealed]->Search(sreq);
      if (!hits.ok()) return hits.status();
      for (const auto& h : hits.value()) candidates.insert(h.pk);
    }
    std::vector<Neighbor> list;
    for (int64_t pk : candidates) {
      float combined = 0;
      bool ok = true;
      for (const SearchTarget& target : req.targets) {
        auto score =
            core.ScoreByPk(pk, target.field, target.query, req.read_ts);
        if (!score.ok()) {
          ok = false;
          break;
        }
        combined += target.weight * score.value();
      }
      if (ok) list.push_back({pk, combined});
    }
    std::sort(list.begin(), list.end());
    if (list.size() > req.params.k) list.resize(req.params.k);
    per_segment[i] = std::move(list);
    return Status::OK();
  };

  // Per-segment scan spans record on worker threads; safe because
  // ParallelFor completes before SearchInternal (and thus the parent span)
  // returns, and Trace::Record is thread-safe.
  const TraceContext scan_ctx = span.context();
  auto search_one = [&](int64_t i) {
    // A straggler whose proxy already gave up stops fanning out work.
    if (req.deadline_us > 0 && NowMicros() > req.deadline_us) {
      statuses[i] = Status::Timeout("proxy deadline passed, segment skipped");
      return;
    }
    Span seg_span(scan_ctx, "segment.scan");
    if (seg_span.active()) {
      seg_span.Tag("segment", static_cast<int64_t>(
                                  i < num_sealed
                                      ? sealed[i]->id()
                                      : growing[i - num_sealed]->id()));
      seg_span.Tag("kind", i < num_sealed ? "sealed" : "growing");
    }
    statuses[i] =
        req.targets.size() == 1 ? single_search(i) : multi_search(i);
    if (req.filter != nullptr && statuses[i].ok()) {
      // The planner's per-segment verdict: tagged on the scan span and
      // counted under the filter.* metrics family.
      const FilterPlan& plan = plans[i];
      if (seg_span.active()) {
        seg_span.Tag("filter.strategy", FilterStrategyName(plan.strategy));
        seg_span.Tag("filter.selectivity", plan.selectivity);
      }
      MetricsRegistry::Global().GetCounter("filter.plans")->Add(1);
      MetricsRegistry::Global()
          .GetCounter("filter.strategy",
                      {{"strategy", FilterStrategyName(plan.strategy)}})
          ->Add(1);
      MetricsRegistry::Global()
          .GetHistogram("filter.selectivity")
          ->Observe(plan.selectivity);
    }
    if (seg_span.active()) {
      seg_span.Tag("hits", static_cast<int64_t>(per_segment[i].size()));
      if (!statuses[i].ok()) seg_span.Tag("error", statuses[i].ToString());
    }
  };

  // Intra-query fan-out (Section 6.4 / Fig. 8): per-segment searches run
  // across the node's executor. SearchInternal itself occupies an executor
  // slot, so this relies on ParallelFor's caller-runs claim loop — the
  // nested dispatch cannot deadlock even at query_threads=1. Worker
  // threads read the segment snapshot while this thread keeps holding the
  // shared lock for the whole fan-out (ParallelFor returns only after
  // every chunk completed), which is what keeps the WAL pump (unique
  // lock) from mutating segments mid-search.
  ThreadPool* fanout =
      ctx_.config.parallel_search ? executor_.get() : nullptr;
  const int64_t grain =
      std::max<int64_t>(1, ctx_.config.search_parallel_grain);
  ParallelFor(fanout, num_segments, search_one, grain);
  for (Status& st : statuses) {
    if (!st.ok()) {
      span.Tag("error", st.ToString());
      return std::move(st);
    }
  }

  // Node-level reduce (phase one of the two-phase reduce).
  std::vector<Neighbor> merged = MergeTopK(per_segment, req.params.k,
                                           /*dedup_ids=*/true);
  // Calibrated service-time model (see ManuConfig::sim_segment_search_us):
  // pad real compute up to the service target. With the fan-out on, a node
  // with p executor threads clears its chunks in waves of p; the target is
  // the modeled critical path — the most segments any one worker scans —
  // so intra-query speedup is visible under the simulation too (the perf
  // smoke test relies on this on single-core hosts). The final chunk is
  // billed at its real size, not padded to a full grain: waves*grain would
  // overcharge non-divisible or small segment counts (ParallelFor runs
  // num_segments <= grain inline, which the chunks==1 case models).
  if (ctx_.config.sim_segment_search_us > 0 && num_segments > 0) {
    const int64_t p =
        fanout == nullptr
            ? 1
            : std::max<int64_t>(
                  1, static_cast<int64_t>(fanout->num_threads()));
    const int64_t chunks = (num_segments + grain - 1) / grain;
    const int64_t last = num_segments - (chunks - 1) * grain;
    const int64_t waves = (chunks + p - 1) / p;
    const int64_t tail = chunks - p * (waves - 1);  // Chunks in last wave.
    // The critical worker runs one full-grain chunk per completed wave,
    // plus — in the last wave — a full chunk if one exists there (tail >=
    // 2: the partial chunk is claimed alongside full ones and finishes
    // earlier), else the lone final chunk at its actual size.
    const int64_t critical =
        (waves - 1) * grain + (tail >= 2 ? grain : last);
    const int64_t target = ctx_.config.sim_segment_search_us * critical;
    const int64_t elapsed = NowMicros() - t0;
    if (elapsed < target) {
      lk.unlock();  // Don't block the WAL pump while sleeping.
      std::this_thread::sleep_for(
          std::chrono::microseconds(target - elapsed));
    }
  }
  MetricsRegistry::Global()
      .GetHistogram("query_node.search_latency")
      ->Observe(static_cast<double>(NowMicros() - t0));

  span.Tag("hits", static_cast<int64_t>(merged.size()));
  std::vector<SegmentHit> out;
  out.reserve(merged.size());
  for (const Neighbor& n : merged) out.push_back({n.id, n.score});
  return out;
}

std::vector<SegmentId> QueryNode::SealedSegments(
    CollectionId collection) const {
  std::shared_lock lk(mu_);
  std::vector<SegmentId> out;
  auto it = collections_.find(collection);
  if (it == collections_.end()) return out;
  for (const auto& [seg_id, _] : it->second.sealed) out.push_back(seg_id);
  return out;
}

Result<SegmentMeta> QueryNode::SealedMeta(CollectionId collection,
                                          SegmentId segment) const {
  std::shared_lock lk(mu_);
  auto it = collections_.find(collection);
  if (it == collections_.end()) return Status::NotFound("collection");
  auto sit = it->second.sealed_meta.find(segment);
  if (sit == it->second.sealed_meta.end()) {
    return Status::NotFound("segment meta");
  }
  return sit->second;
}

std::vector<int64_t> QueryNode::DeletedPks(CollectionId collection) const {
  std::shared_lock lk(mu_);
  std::vector<int64_t> out;
  auto it = collections_.find(collection);
  if (it == collections_.end()) return out;
  out.reserve(it->second.deletes.size());
  for (const auto& [pk, _] : it->second.deletes) out.push_back(pk);
  return out;
}

int64_t QueryNode::NumGrowingRows(CollectionId collection) const {
  std::shared_lock lk(mu_);
  auto it = collections_.find(collection);
  if (it == collections_.end()) return 0;
  int64_t rows = 0;
  for (const auto& [_, seg] : it->second.growing) rows += seg->NumRows();
  return rows;
}

int64_t QueryNode::NumServingSegments(CollectionId collection) const {
  std::shared_lock lk(mu_);
  auto it = collections_.find(collection);
  if (it == collections_.end()) return 0;
  int64_t n = static_cast<int64_t>(it->second.sealed.size());
  for (const auto& [seg_id, _] : it->second.growing) {
    if (it->second.sealed.count(seg_id) == 0) ++n;  // Sealed twin wins.
  }
  return n;
}

int64_t QueryNode::NumGrowingOnlySegments(CollectionId collection) const {
  std::shared_lock lk(mu_);
  auto it = collections_.find(collection);
  if (it == collections_.end()) return 0;
  int64_t n = 0;
  for (const auto& [seg_id, _] : it->second.growing) {
    if (it->second.sealed.count(seg_id) == 0) ++n;  // Sealed twin wins.
  }
  return n;
}

NodeLoad QueryNode::LoadSnapshot() const {
  NodeLoad load;
  load.inflight = outstanding_.load(std::memory_order_relaxed);
  load.queue_depth = std::max<int64_t>(
      0, load.inflight - executing_.load(std::memory_order_relaxed));
  load.ewma_latency_us = ewma_latency_us_.load(std::memory_order_relaxed);
  load.deadline_rejects = deadline_rejects_.load(std::memory_order_relaxed);
  load.overload_rejects = overload_rejects_.load(std::memory_order_relaxed);
  return load;
}

uint64_t QueryNode::MemoryBytes() const {
  std::shared_lock lk(mu_);
  uint64_t bytes = 0;
  for (const auto& [_, coll] : collections_) {
    for (const auto& [__, seg] : coll.growing) bytes += seg->ByteSize();
    for (const auto& [__, seg] : coll.sealed) bytes += seg->MemoryBytes();
  }
  return bytes;
}

}  // namespace manu
