#include "core/query_node.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "index/index_factory.h"
#include "storage/binlog.h"

namespace manu {

QueryNode::QueryNode(NodeId id, const CoreContext& ctx)
    : id_(id),
      ctx_(ctx),
      executor_(std::make_unique<ThreadPool>(
          std::max(1, ctx.config.query_threads))) {}

QueryNode::~QueryNode() {
  Stop();
  executor_.reset();
}

Result<std::vector<SegmentHit>> QueryNode::Search(
    const NodeSearchRequest& req) {
  return executor_->Submit([this, &req] { return SearchInternal(req); })
      .get();
}

std::vector<Result<std::vector<SegmentHit>>> QueryNode::SearchBatch(
    const std::vector<NodeSearchRequest>& reqs) {
  return executor_
      ->Submit([this, &reqs] {
        std::vector<Result<std::vector<SegmentHit>>> out;
        out.reserve(reqs.size());
        for (const NodeSearchRequest& req : reqs) {
          out.push_back(SearchInternal(req));
        }
        return out;
      })
      .get();
}

void QueryNode::Start() {
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
}

void QueryNode::Stop() {
  stop_.store(true, std::memory_order_release);
  tick_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void QueryNode::AddChannel(CollectionId collection, ShardId shard,
                           std::shared_ptr<const CollectionSchema> schema,
                           bool primary) {
  auto ch = std::make_shared<ChannelState>();
  ch->sub = ctx_.mq->Subscribe(ShardChannelName(collection, shard),
                               SubscribePosition::kEarliest);
  ch->collection = collection;
  ch->shard = shard;
  ch->primary = primary;
  std::unique_lock lk(mu_);
  collections_[collection].schema = std::move(schema);
  channels_.push_back(std::move(ch));
}

void QueryNode::PromoteChannel(CollectionId collection, ShardId shard) {
  std::unique_lock lk(mu_);
  for (auto& ch : channels_) {
    if (ch->collection != collection || ch->shard != shard) continue;
    if (ch->primary) return;
    ch->primary = true;
    // Replay from the start to rebuild growing state; sealed twins are
    // skipped and deletes/tombstones are idempotent.
    ch->sub->Seek(ctx_.mq->BeginOffset(ch->sub->channel()));
    // Re-arm the consistency gate: while following, this channel's
    // service_ts tracked ticks it consumed WITHOUT materializing inserts,
    // so it overstates how fresh the rebuilt growing state is. Resetting it
    // makes bounded/strong searches wait for the replay to actually catch
    // up instead of serving a recovered shard's stale state as fresh.
    ch->service_ts = 0;
    return;
  }
}

void QueryNode::DemoteChannel(CollectionId collection, ShardId shard) {
  std::unique_lock lk(mu_);
  for (auto& ch : channels_) {
    if (ch->collection == collection && ch->shard == shard) {
      ch->primary = false;
    }
  }
  auto it = collections_.find(collection);
  if (it == collections_.end()) return;
  std::vector<SegmentId> drop;
  for (const auto& [seg, s] : it->second.growing_shard) {
    if (s == shard) drop.push_back(seg);
  }
  for (SegmentId seg : drop) {
    it->second.growing.erase(seg);
    it->second.growing_shard.erase(seg);
  }
}

void QueryNode::RemoveCollection(CollectionId collection) {
  std::unique_lock lk(mu_);
  std::erase_if(channels_, [&](const auto& ch) {
    return ch->collection == collection;
  });
  collections_.erase(collection);
}

void QueryNode::Run() {
  while (!stop_.load(std::memory_order_acquire)) {
    bool idle = true;
    std::vector<std::shared_ptr<ChannelState>> channels;
    {
      std::shared_lock lk(mu_);
      channels = channels_;
    }
    for (const auto& ch : channels) {
      auto entries = ch->sub->TryPoll(ctx_.config.poll_batch);
      if (entries.empty()) continue;
      idle = false;
      std::unique_lock lk(mu_);
      for (const auto& entry : entries) {
        HandleEntry(ch.get(), *entry);
      }
      lk.unlock();
      tick_cv_.notify_all();
    }
    if (idle) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

void QueryNode::HandleEntry(ChannelState* ch, const LogEntry& entry) {
  auto cit = collections_.find(ch->collection);
  if (cit == collections_.end()) return;  // Released concurrently.
  CollectionState& coll = cit->second;
  switch (entry.type) {
    case LogEntryType::kInsert: {
      if (!ch->primary) break;  // Followers consume deletes/ticks only.
      // A sealed twin already covers this data (late replay after load).
      if (coll.sealed.count(entry.segment) > 0) break;
      auto& growing = coll.growing[entry.segment];
      if (growing == nullptr) {
        growing = std::make_shared<GrowingSegment>(
            entry.segment, coll.schema.get(), ctx_.config.slice_rows);
        coll.growing_shard[entry.segment] = ch->shard;
      }
      Status st = growing->Append(entry.batch);
      if (!st.ok()) {
        MANU_LOG_ERROR << "query node " << id_ << " growing append: "
                       << st.ToString();
      }
      break;
    }
    case LogEntryType::kDelete: {
      for (int64_t pk : entry.delete_pks) {
        coll.deletes.emplace_back(pk, entry.timestamp);
        for (auto& [_, seg] : coll.growing) seg->Delete(pk, entry.timestamp);
        for (auto& [_, seg] : coll.sealed) seg->Delete(pk, entry.timestamp);
      }
      break;
    }
    case LogEntryType::kTimeTick:
    case LogEntryType::kFlush:
      break;  // Progress markers; service_ts update below covers them.
    default:
      break;
  }
  ch->service_ts = std::max(ch->service_ts, entry.timestamp);
}

Status QueryNode::LoadSealedSegment(
    const SegmentMeta& meta, std::shared_ptr<const CollectionSchema> schema) {
  MANU_FAILPOINT("query_node.load_segment");
  const RetryPolicy retry = MakeIoRetryPolicy(ctx_.config);
  // Load outside the lock (object-store IO), install under the lock.
  // Transient store faults are retried here so a blip during recovery or
  // rebalance does not abandon the segment.
  MANU_ASSIGN_OR_RETURN(
      EntityBatch rows,
      RetryResult(retry, "query_node.load_segment", [&] {
        return binlog::ReadSegment(ctx_.store, meta.binlog_path);
      }));
  auto segment = std::make_shared<SealedSegment>(meta.id, schema.get());
  MANU_RETURN_NOT_OK(segment->SetRows(rows));
  MANU_RETURN_NOT_OK(segment->BuildScalarIndexes());
  for (const auto& [field, path] : meta.index_paths) {
    MANU_ASSIGN_OR_RETURN(std::string framed,
                          RetryResult(retry, "query_node.load_index",
                                      [&] { return ctx_.store->Get(path); }));
    MANU_ASSIGN_OR_RETURN(std::string payload, binlog::Unframe(framed));
    MANU_ASSIGN_OR_RETURN(std::unique_ptr<VectorIndex> index,
                          DeserializeVectorIndex(payload, ctx_.store));
    MANU_RETURN_NOT_OK(segment->SetIndex(field, std::move(index)));
  }

  std::unique_lock lk(mu_);
  CollectionState& coll = collections_[meta.collection];
  if (coll.schema == nullptr) coll.schema = schema;
  // Re-apply deletes consumed before this load (sealed binlog has inserts
  // only).
  for (const auto& [pk, ts] : coll.deletes) segment->Delete(pk, ts);
  coll.sealed[meta.id] = std::move(segment);
  coll.sealed_meta[meta.id] = meta;
  // The growing twin is now redundant on *this* node.
  coll.growing.erase(meta.id);
  coll.growing_shard.erase(meta.id);
  MetricsRegistry::Global().GetCounter("query_node.segments_loaded")->Add(1);
  return Status::OK();
}

void QueryNode::DropGrowing(CollectionId collection, SegmentId segment) {
  std::unique_lock lk(mu_);
  auto it = collections_.find(collection);
  if (it != collections_.end()) {
    it->second.growing.erase(segment);
    it->second.growing_shard.erase(segment);
  }
}

void QueryNode::ReleaseSegment(CollectionId collection, SegmentId segment) {
  std::unique_lock lk(mu_);
  auto it = collections_.find(collection);
  if (it != collections_.end()) {
    it->second.sealed.erase(segment);
    it->second.sealed_meta.erase(segment);
  }
}

Timestamp QueryNode::ServiceTsLocked(CollectionId collection) const {
  Timestamp min_ts = kMaxTimestamp;
  bool any = false;
  for (const auto& ch : channels_) {
    if (ch->collection != collection) continue;
    min_ts = std::min(min_ts, ch->service_ts);
    any = true;
  }
  return any ? min_ts : 0;
}

Timestamp QueryNode::ServiceTs(CollectionId collection) const {
  std::shared_lock lk(mu_);
  return ServiceTsLocked(collection);
}

bool QueryNode::WaitServiceTs(CollectionId collection, Timestamp ts,
                              int64_t max_ms) {
  std::shared_lock lk(mu_);
  return tick_cv_.wait_for(lk, std::chrono::milliseconds(max_ms), [&] {
    return ServiceTsLocked(collection) >= ts ||
           stop_.load(std::memory_order_acquire);
  });
}

bool QueryNode::WaitConsistency(CollectionId collection, Timestamp read_ts,
                                int64_t staleness_ms) {
  if (staleness_ms < 0) return true;  // Eventual: never wait.
  const int64_t target_ms =
      static_cast<int64_t>(PhysicalMs(read_ts)) - staleness_ms;
  std::shared_lock lk(mu_);
  // Lr - Ls < tau  <=>  physical(Ls) > physical(Lr) - tau.
  return tick_cv_.wait_for(
      lk, std::chrono::milliseconds(ctx_.config.max_consistency_wait_ms),
      [&] {
        return static_cast<int64_t>(
                   PhysicalMs(ServiceTsLocked(collection))) >= target_ms ||
               stop_.load(std::memory_order_acquire);
      });
}

Result<std::vector<SegmentHit>> QueryNode::SearchInternal(
    const NodeSearchRequest& req) {
  if (stop_.load(std::memory_order_acquire)) {
    // A crashed (killed) node refuses searches instead of serving whatever
    // stale state its last pump iteration left behind.
    return Status::Unavailable("query node " + std::to_string(id_) +
                               " is stopped");
  }
  // Delay policies model a slow node (misses the proxy deadline), error
  // policies a failing one; both are how the chaos test forces coverage<1.
  MANU_FAILPOINT("query_node.search_segment");
  auto* wait_hist =
      MetricsRegistry::Global().GetHistogram("query_node.consistency_wait");
  {
    const int64_t t0 = NowMicros();
    if (!WaitConsistency(req.collection, req.read_ts, req.staleness_ms)) {
      return Status::Timeout("consistency wait exceeded bound");
    }
    wait_hist->Observe(static_cast<double>(NowMicros() - t0));
  }

  // The shared lock is held for the whole search phase: the WAL pump
  // mutates segments only under the unique lock, so readers see a
  // consistent snapshot without per-segment synchronization.
  std::shared_lock lk(mu_);
  std::vector<std::shared_ptr<GrowingSegment>> growing;
  std::vector<std::shared_ptr<SealedSegment>> sealed;
  {
    auto it = collections_.find(req.collection);
    if (it == collections_.end()) {
      return Status::NotFound("collection not served by node " +
                              std::to_string(id_));
    }
    for (const auto& [seg_id, seg] : it->second.growing) {
      if (it->second.sealed.count(seg_id) > 0) continue;  // Sealed twin wins.
      growing.push_back(seg);
    }
    for (const auto& [_, seg] : it->second.sealed) sealed.push_back(seg);
  }

  if (req.targets.empty()) {
    return Status::InvalidArgument("no search targets");
  }

  const int64_t t0 = NowMicros();
  std::vector<std::vector<Neighbor>> per_segment;

  if (req.targets.size() == 1) {
    const SearchTarget& target = req.targets[0];
    SegmentSearchRequest sreq;
    sreq.field = target.field;
    sreq.query = target.query;
    sreq.params = req.params;
    sreq.read_ts = req.read_ts;
    sreq.filter = req.filter;
    for (const auto& seg : sealed) {
      MANU_ASSIGN_OR_RETURN(std::vector<SegmentHit> hits, seg->Search(sreq));
      std::vector<Neighbor> list;
      list.reserve(hits.size());
      for (const auto& h : hits) list.push_back({h.pk, h.score});
      per_segment.push_back(std::move(list));
    }
    for (const auto& seg : growing) {
      MANU_ASSIGN_OR_RETURN(std::vector<SegmentHit> hits, seg->Search(sreq));
      std::vector<Neighbor> list;
      list.reserve(hits.size());
      for (const auto& h : hits) list.push_back({h.pk, h.score});
      per_segment.push_back(std::move(list));
    }
  } else {
    // Multi-vector search, "vector fusion" strategy: per-field searches
    // gather candidates, exact weighted re-ranking scores them (the
    // decomposable-similarity strategy; Section 3.6).
    const size_t cand_k = req.params.k * 2 + 16;
    auto search_segment = [&](auto& seg,
                              const SegmentCore& core) -> Status {
      std::unordered_set<int64_t> candidates;
      for (const SearchTarget& target : req.targets) {
        SegmentSearchRequest sreq;
        sreq.field = target.field;
        sreq.query = target.query;
        sreq.params = req.params;
        sreq.params.k = cand_k;
        sreq.read_ts = req.read_ts;
        sreq.filter = req.filter;
        auto hits = seg->Search(sreq);
        if (!hits.ok()) return hits.status();
        for (const auto& h : hits.value()) candidates.insert(h.pk);
      }
      std::vector<Neighbor> list;
      for (int64_t pk : candidates) {
        float combined = 0;
        bool ok = true;
        for (const SearchTarget& target : req.targets) {
          auto score = core.ScoreByPk(pk, target.field, target.query,
                                      req.read_ts);
          if (!score.ok()) {
            ok = false;
            break;
          }
          combined += target.weight * score.value();
        }
        if (ok) list.push_back({pk, combined});
      }
      std::sort(list.begin(), list.end());
      if (list.size() > req.params.k) list.resize(req.params.k);
      per_segment.push_back(std::move(list));
      return Status::OK();
    };
    for (const auto& seg : sealed) {
      MANU_RETURN_NOT_OK(search_segment(seg, seg->core()));
    }
    for (const auto& seg : growing) {
      MANU_RETURN_NOT_OK(search_segment(seg, seg->core()));
    }
  }

  // Node-level reduce (phase one of the two-phase reduce).
  std::vector<Neighbor> merged = MergeTopK(per_segment, req.params.k,
                                           /*dedup_ids=*/true);
  // Calibrated service-time model (see ManuConfig::sim_segment_search_us):
  // pad real compute up to the per-segment service target.
  if (ctx_.config.sim_segment_search_us > 0) {
    const int64_t target = ctx_.config.sim_segment_search_us *
                           static_cast<int64_t>(per_segment.size());
    const int64_t elapsed = NowMicros() - t0;
    if (elapsed < target) {
      lk.unlock();  // Don't block the WAL pump while sleeping.
      std::this_thread::sleep_for(
          std::chrono::microseconds(target - elapsed));
    }
  }
  MetricsRegistry::Global()
      .GetHistogram("query_node.search_latency")
      ->Observe(static_cast<double>(NowMicros() - t0));

  std::vector<SegmentHit> out;
  out.reserve(merged.size());
  for (const Neighbor& n : merged) out.push_back({n.id, n.score});
  return out;
}

std::vector<SegmentId> QueryNode::SealedSegments(
    CollectionId collection) const {
  std::shared_lock lk(mu_);
  std::vector<SegmentId> out;
  auto it = collections_.find(collection);
  if (it == collections_.end()) return out;
  for (const auto& [seg_id, _] : it->second.sealed) out.push_back(seg_id);
  return out;
}

Result<SegmentMeta> QueryNode::SealedMeta(CollectionId collection,
                                          SegmentId segment) const {
  std::shared_lock lk(mu_);
  auto it = collections_.find(collection);
  if (it == collections_.end()) return Status::NotFound("collection");
  auto sit = it->second.sealed_meta.find(segment);
  if (sit == it->second.sealed_meta.end()) {
    return Status::NotFound("segment meta");
  }
  return sit->second;
}

std::vector<int64_t> QueryNode::DeletedPks(CollectionId collection) const {
  std::shared_lock lk(mu_);
  std::vector<int64_t> out;
  auto it = collections_.find(collection);
  if (it == collections_.end()) return out;
  out.reserve(it->second.deletes.size());
  for (const auto& [pk, _] : it->second.deletes) out.push_back(pk);
  return out;
}

int64_t QueryNode::NumGrowingRows(CollectionId collection) const {
  std::shared_lock lk(mu_);
  auto it = collections_.find(collection);
  if (it == collections_.end()) return 0;
  int64_t rows = 0;
  for (const auto& [_, seg] : it->second.growing) rows += seg->NumRows();
  return rows;
}

int64_t QueryNode::NumServingSegments(CollectionId collection) const {
  std::shared_lock lk(mu_);
  auto it = collections_.find(collection);
  if (it == collections_.end()) return 0;
  int64_t n = static_cast<int64_t>(it->second.sealed.size());
  for (const auto& [seg_id, _] : it->second.growing) {
    if (it->second.sealed.count(seg_id) == 0) ++n;  // Sealed twin wins.
  }
  return n;
}

uint64_t QueryNode::MemoryBytes() const {
  std::shared_lock lk(mu_);
  uint64_t bytes = 0;
  for (const auto& [_, coll] : collections_) {
    for (const auto& [__, seg] : coll.growing) bytes += seg->ByteSize();
    for (const auto& [__, seg] : coll.sealed) bytes += seg->MemoryBytes();
  }
  return bytes;
}

}  // namespace manu
