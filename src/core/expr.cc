#include "core/expr.h"

#include <cctype>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

namespace manu {

namespace {

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

/// field <op> numeric-literal.
class NumericCompareExpr : public FilterExpr {
 public:
  NumericCompareExpr(FieldId field, CompareOp op, double value)
      : field_(field), op_(op), value_(value) {}

  Status Evaluate(const FilterContext& ctx,
                  ConcurrentBitset* out) const override {
    const ScalarSortedIndex* index =
        ctx.scalar_index ? ctx.scalar_index(field_) : nullptr;
    if (index != nullptr && index->NumRows() == ctx.num_rows) {
      EvaluateWithIndex(*index, out);
      return Status::OK();
    }
    const FieldColumn* col = ctx.column ? ctx.column(field_) : nullptr;
    if (col == nullptr) {
      return Status::NotFound("filter column unavailable");
    }
    for (int64_t row = 0; row < ctx.num_rows; ++row) {
      double v = 0;
      switch (col->type) {
        case DataType::kInt64:
          v = static_cast<double>(col->i64[row]);
          break;
        case DataType::kFloat:
          v = col->f32[row];
          break;
        case DataType::kDouble:
          v = col->f64[row];
          break;
        default:
          return Status::InvalidArgument("non-numeric filter column");
      }
      if (Matches(v)) out->Set(static_cast<size_t>(row));
    }
    return Status::OK();
  }

  double EstimateSelectivity(const FilterContext& ctx) const override {
    const ScalarSortedIndex* index =
        ctx.scalar_index ? ctx.scalar_index(field_) : nullptr;
    if (index == nullptr || index->NumRows() == 0) return 1.0;
    const double n = static_cast<double>(index->NumRows());
    constexpr double kInf = std::numeric_limits<double>::infinity();
    switch (op_) {
      case CompareOp::kEq:
        return static_cast<double>(index->CountRange(value_, value_)) / n;
      case CompareOp::kNe:
        return 1.0 -
               static_cast<double>(index->CountRange(value_, value_)) / n;
      case CompareOp::kLe:
        return static_cast<double>(index->CountRange(-kInf, value_)) / n;
      case CompareOp::kLt:
        return static_cast<double>(index->CountRange(-kInf, value_) -
                                   index->CountRange(value_, value_)) /
               n;
      case CompareOp::kGe:
        return static_cast<double>(index->CountRange(value_, kInf)) / n;
      case CompareOp::kGt:
        return static_cast<double>(index->CountRange(value_, kInf) -
                                   index->CountRange(value_, value_)) /
               n;
    }
    return 1.0;
  }

 private:
  bool Matches(double v) const {
    switch (op_) {
      case CompareOp::kEq:
        return v == value_;
      case CompareOp::kNe:
        return v != value_;
      case CompareOp::kLt:
        return v < value_;
      case CompareOp::kLe:
        return v <= value_;
      case CompareOp::kGt:
        return v > value_;
      case CompareOp::kGe:
        return v >= value_;
    }
    return false;
  }

  void EvaluateWithIndex(const ScalarSortedIndex& index,
                         ConcurrentBitset* out) const {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    switch (op_) {
      case CompareOp::kEq:
        index.EqualsQuery(value_, out);
        return;
      case CompareOp::kNe: {
        index.EqualsQuery(value_, out);
        out->Not();
        return;
      }
      case CompareOp::kLe:
        index.RangeQuery(-kInf, value_, out);
        return;
      case CompareOp::kGe:
        index.RangeQuery(value_, kInf, out);
        return;
      case CompareOp::kLt: {
        // [ -inf, v ] minus { v }: inclusive range then clear equals.
        ConcurrentBitset eq(out->capacity());
        index.RangeQuery(-kInf, value_, out);
        index.EqualsQuery(value_, &eq);
        eq.Not();
        out->And(eq);
        return;
      }
      case CompareOp::kGt: {
        ConcurrentBitset eq(out->capacity());
        index.RangeQuery(value_, kInf, out);
        index.EqualsQuery(value_, &eq);
        eq.Not();
        out->And(eq);
        return;
      }
    }
  }

  FieldId field_;
  CompareOp op_;
  double value_;
};

/// label ==/!= 'literal'.
class LabelCompareExpr : public FilterExpr {
 public:
  LabelCompareExpr(FieldId field, bool negated, std::string value)
      : field_(field), negated_(negated), value_(std::move(value)) {}

  Status Evaluate(const FilterContext& ctx,
                  ConcurrentBitset* out) const override {
    const LabelBitmapIndex* bitmap =
        ctx.label_bitmap ? ctx.label_bitmap(field_) : nullptr;
    if (bitmap != nullptr && bitmap->NumRows() == ctx.num_rows) {
      bitmap->EqualsQuery(value_, out);
      if (negated_) out->Not();
      return Status::OK();
    }
    const LabelIndex* index =
        ctx.label_index ? ctx.label_index(field_) : nullptr;
    if (index != nullptr && index->NumRows() == ctx.num_rows) {
      index->EqualsQuery(value_, out);
      if (negated_) out->Not();
      return Status::OK();
    }
    const FieldColumn* col = ctx.column ? ctx.column(field_) : nullptr;
    if (col == nullptr || col->type != DataType::kString) {
      return Status::NotFound("label filter column unavailable");
    }
    for (int64_t row = 0; row < ctx.num_rows; ++row) {
      if ((col->str[row] == value_) != negated_) {
        out->Set(static_cast<size_t>(row));
      }
    }
    return Status::OK();
  }

  double EstimateSelectivity(const FilterContext& ctx) const override {
    if (ctx.num_rows == 0) return 1.0;
    const double n = static_cast<double>(ctx.num_rows);
    // O(log labels) posting-length estimates when an index is resident.
    const LabelBitmapIndex* bitmap =
        ctx.label_bitmap ? ctx.label_bitmap(field_) : nullptr;
    if (bitmap != nullptr && bitmap->NumRows() == ctx.num_rows) {
      const double eq = static_cast<double>(bitmap->PostingSize(value_)) / n;
      return negated_ ? 1.0 - eq : eq;
    }
    const LabelIndex* index =
        ctx.label_index ? ctx.label_index(field_) : nullptr;
    if (index != nullptr && index->NumRows() == ctx.num_rows) {
      const double eq = static_cast<double>(index->PostingSize(value_)) / n;
      return negated_ ? 1.0 - eq : eq;
    }
    ConcurrentBitset tmp(static_cast<size_t>(ctx.num_rows));
    if (!Evaluate(ctx, &tmp).ok()) return 1.0;
    return static_cast<double>(tmp.Count()) / n;
  }

 private:
  FieldId field_;
  bool negated_;
  std::string value_;
};

class NotExpr : public FilterExpr {
 public:
  explicit NotExpr(std::unique_ptr<FilterExpr> child)
      : child_(std::move(child)) {}

  Status Evaluate(const FilterContext& ctx,
                  ConcurrentBitset* out) const override {
    MANU_RETURN_NOT_OK(child_->Evaluate(ctx, out));
    out->Not();
    return Status::OK();
  }

  double EstimateSelectivity(const FilterContext& ctx) const override {
    return 1.0 - child_->EstimateSelectivity(ctx);
  }

 private:
  std::unique_ptr<FilterExpr> child_;
};

class BinaryExpr : public FilterExpr {
 public:
  BinaryExpr(bool is_and, std::unique_ptr<FilterExpr> lhs,
             std::unique_ptr<FilterExpr> rhs)
      : is_and_(is_and), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Status Evaluate(const FilterContext& ctx,
                  ConcurrentBitset* out) const override {
    MANU_RETURN_NOT_OK(lhs_->Evaluate(ctx, out));
    ConcurrentBitset rhs_bits(out->capacity());
    MANU_RETURN_NOT_OK(rhs_->Evaluate(ctx, &rhs_bits));
    if (is_and_) {
      out->And(rhs_bits);
    } else {
      out->Or(rhs_bits);
    }
    return Status::OK();
  }

  double EstimateSelectivity(const FilterContext& ctx) const override {
    const double a = lhs_->EstimateSelectivity(ctx);
    const double b = rhs_->EstimateSelectivity(ctx);
    // Independence assumption, like a textbook optimizer.
    return is_and_ ? a * b : a + b - a * b;
  }

 private:
  bool is_and_;
  std::unique_ptr<FilterExpr> lhs_;
  std::unique_ptr<FilterExpr> rhs_;
};

// ---------------------------------------------------------------------------
// Tokenizer + recursive-descent parser
// ---------------------------------------------------------------------------

struct Token {
  enum Kind { kIdent, kNumber, kString, kOp, kLParen, kRParen, kAnd, kOr,
              kNot, kEnd } kind;
  std::string text;
  double number = 0;
  CompareOp op = CompareOp::kEq;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '(') {
        out.push_back({Token::kLParen, "("});
        ++pos_;
      } else if (c == ')') {
        out.push_back({Token::kRParen, ")"});
        ++pos_;
      } else if (c == '&' && Peek(1) == '&') {
        out.push_back({Token::kAnd, "&&"});
        pos_ += 2;
      } else if (c == '|' && Peek(1) == '|') {
        out.push_back({Token::kOr, "||"});
        pos_ += 2;
      } else if (c == '!' && Peek(1) != '=') {
        out.push_back({Token::kNot, "!"});
        ++pos_;
      } else if (c == '\'' || c == '"') {
        MANU_ASSIGN_OR_RETURN(Token t, LexString(c));
        out.push_back(std::move(t));
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
                 c == '.') {
        MANU_ASSIGN_OR_RETURN(Token t, LexNumber());
        out.push_back(std::move(t));
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(LexIdent());
      } else {
        MANU_ASSIGN_OR_RETURN(Token t, LexOp());
        out.push_back(std::move(t));
      }
    }
    out.push_back({Token::kEnd, ""});
    return out;
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  Result<Token> LexString(char quote) {
    ++pos_;  // Skip opening quote.
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != quote) {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return Status::InvalidArgument("dangling escape in string literal");
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '\\': c = '\\'; break;
          case '\'': c = '\''; break;
          case '"':  c = '"';  break;
          case 'n':  c = '\n'; break;
          case 't':  c = '\t'; break;
          default:
            return Status::InvalidArgument(
                std::string("unknown escape in string literal: \\") + esc);
        }
      }
      value.push_back(c);
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unterminated string literal");
    }
    ++pos_;  // Skip closing quote.
    Token t;
    t.kind = Token::kString;
    t.text = std::move(value);
    return t;
  }

  Result<Token> LexNumber() {
    size_t end = pos_;
    if (text_[end] == '-') ++end;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '.' || text_[end] == 'e' || text_[end] == 'E' ||
            (end > pos_ && (text_[end] == '+' || text_[end] == '-') &&
             (text_[end - 1] == 'e' || text_[end - 1] == 'E')))) {
      ++end;
    }
    Token t;
    t.kind = Token::kNumber;
    t.text = text_.substr(pos_, end - pos_);
    try {
      t.number = std::stod(t.text);
    } catch (...) {
      return Status::InvalidArgument("bad number literal: " + t.text);
    }
    pos_ = end;
    return t;
  }

  Token LexIdent() {
    size_t end = pos_;
    while (end < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '_')) {
      ++end;
    }
    Token t;
    t.kind = Token::kIdent;
    t.text = text_.substr(pos_, end - pos_);
    pos_ = end;
    return t;
  }

  Result<Token> LexOp() {
    static const std::pair<const char*, CompareOp> kOps[] = {
        {"==", CompareOp::kEq}, {"!=", CompareOp::kNe},
        {"<=", CompareOp::kLe}, {">=", CompareOp::kGe},
        {"<", CompareOp::kLt},  {">", CompareOp::kGt},
    };
    for (const auto& [text, op] : kOps) {
      const size_t len = std::strlen(text);
      if (text_.compare(pos_, len, text) == 0) {
        Token t;
        t.kind = Token::kOp;
        t.text = text;
        t.op = op;
        pos_ += len;
        return t;
      }
    }
    return Status::InvalidArgument("unexpected character in filter: " +
                                   text_.substr(pos_, 1));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const CollectionSchema& schema)
      : tokens_(std::move(tokens)), schema_(schema) {}

  Result<std::unique_ptr<FilterExpr>> Parse() {
    MANU_ASSIGN_OR_RETURN(std::unique_ptr<FilterExpr> expr, ParseOr());
    if (Current().kind != Token::kEnd) {
      return Status::InvalidArgument("trailing tokens in filter");
    }
    return expr;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  Result<std::unique_ptr<FilterExpr>> ParseOr() {
    MANU_ASSIGN_OR_RETURN(std::unique_ptr<FilterExpr> lhs, ParseAnd());
    while (Current().kind == Token::kOr) {
      Advance();
      MANU_ASSIGN_OR_RETURN(std::unique_ptr<FilterExpr> rhs, ParseAnd());
      lhs = std::make_unique<BinaryExpr>(false, std::move(lhs),
                                         std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<FilterExpr>> ParseAnd() {
    MANU_ASSIGN_OR_RETURN(std::unique_ptr<FilterExpr> lhs, ParseTerm());
    while (Current().kind == Token::kAnd) {
      Advance();
      MANU_ASSIGN_OR_RETURN(std::unique_ptr<FilterExpr> rhs, ParseTerm());
      lhs = std::make_unique<BinaryExpr>(true, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<FilterExpr>> ParseTerm() {
    if (Current().kind == Token::kNot) {
      Advance();
      MANU_ASSIGN_OR_RETURN(std::unique_ptr<FilterExpr> child, ParseTerm());
      return std::unique_ptr<FilterExpr>(new NotExpr(std::move(child)));
    }
    if (Current().kind == Token::kLParen) {
      Advance();
      MANU_ASSIGN_OR_RETURN(std::unique_ptr<FilterExpr> expr, ParseOr());
      if (Current().kind != Token::kRParen) {
        return Status::InvalidArgument("missing ')' in filter");
      }
      Advance();
      return expr;
    }
    return ParseComparison();
  }

  Result<std::unique_ptr<FilterExpr>> ParseComparison() {
    if (Current().kind != Token::kIdent) {
      return Status::InvalidArgument("expected field name in filter");
    }
    const std::string field_name = Current().text;
    const FieldSchema* field = schema_.FieldByName(field_name);
    if (field == nullptr) {
      return Status::InvalidArgument("unknown filter field: " + field_name);
    }
    Advance();
    if (Current().kind != Token::kOp) {
      return Status::InvalidArgument("expected comparison operator");
    }
    const CompareOp op = Current().op;
    Advance();

    if (Current().kind == Token::kString) {
      if (field->type != DataType::kString) {
        return Status::InvalidArgument("string literal on numeric field " +
                                       field_name);
      }
      if (op != CompareOp::kEq && op != CompareOp::kNe) {
        return Status::InvalidArgument(
            "labels support only ==/!= comparisons");
      }
      std::string value = Current().text;
      Advance();
      return std::unique_ptr<FilterExpr>(new LabelCompareExpr(
          field->id, op == CompareOp::kNe, std::move(value)));
    }
    if (Current().kind == Token::kNumber) {
      if (field->type != DataType::kInt64 &&
          field->type != DataType::kFloat &&
          field->type != DataType::kDouble) {
        return Status::InvalidArgument("numeric literal on field " +
                                       field_name);
      }
      const double value = Current().number;
      Advance();
      return std::unique_ptr<FilterExpr>(
          new NumericCompareExpr(field->id, op, value));
    }
    return Status::InvalidArgument("expected literal in filter");
  }

  std::vector<Token> tokens_;
  const CollectionSchema& schema_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<FilterExpr>> FilterExpr::Parse(
    const std::string& text, const CollectionSchema& schema) {
  Lexer lexer(text);
  MANU_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), schema);
  return parser.Parse();
}

}  // namespace manu
