#ifndef MANU_CORE_DATA_NODE_H_
#define MANU_CORE_DATA_NODE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/collection_meta.h"
#include "core/context.h"
#include "core/data_coord.h"

namespace manu {

/// Data node (Sections 3.2/3.3): subscribes to WAL shard channels and
/// converts row-based WAL entries into column-based binlogs ("log
/// archiving"). It buffers rows per segment and seals a segment — writes its
/// binlog to object storage, registers it with the data coordinator and
/// announces kSegmentSealed on the coordination channel — when the WAL shows
/// that the segment is complete (rows for a newer segment on the shard, or a
/// kFlush barrier).
class DataNode {
 public:
  DataNode(NodeId id, const CoreContext& ctx, DataCoordinator* data_coord);
  ~DataNode();

  NodeId id() const { return id_; }

  /// Subscribes to a shard channel. `replay_from` = 0 starts at the
  /// earliest retained offset; > 0 starts at the first entry with
  /// LSN >= replay_from (failover/recovery: rows at or below the archived
  /// floor are already in sealed binlogs, so the new owner replays only the
  /// unarchived tail).
  void AssignChannel(CollectionId collection, ShardId shard,
                     std::shared_ptr<const CollectionSchema> schema,
                     Timestamp replay_from = 0);
  void UnassignCollection(CollectionId collection);

  void Start();
  void Stop();

  /// Number of segments this node has sealed (for tests/metrics).
  int64_t NumSealed() const { return sealed_.load(std::memory_order_relaxed); }

 private:
  struct Buffer {
    EntityBatch rows;
    Timestamp last_lsn = 0;
    std::shared_ptr<const CollectionSchema> schema;
  };

  struct ChannelState {
    std::shared_ptr<MessageQueue::Subscription> sub;
    CollectionId collection;
    ShardId shard;
    std::shared_ptr<const CollectionSchema> schema;
    std::map<SegmentId, Buffer> buffers;
    /// Subscription missed() already surfaced (pump-loop gap detection).
    int64_t missed_seen = 0;
  };

  void Run();
  void HandleEntry(ChannelState* ch, const LogEntry& entry);
  void SealBuffer(ChannelState* ch, SegmentId segment, Buffer buffer);

  NodeId id_;
  CoreContext ctx_;
  DataCoordinator* data_coord_;
  /// Lease fencing epoch (0 when liveness is off); granted in Start(),
  /// checked before every binlog archive.
  int64_t lease_epoch_ = 0;

  std::mutex mu_;
  /// shared_ptr: the pump thread snapshots channels outside the lock while
  /// UnassignCollection may erase them concurrently.
  std::vector<std::shared_ptr<ChannelState>> channels_;
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> sealed_{0};
  std::thread thread_;
};

}  // namespace manu

#endif  // MANU_CORE_DATA_NODE_H_
