#include "core/segment.h"

#include <algorithm>
#include <cmath>

#include "index/metric_util.h"

namespace manu {

namespace {
/// Legacy strategy thresholds for attribute filtering (Section 3.6), used
/// when the cost-based planner is disabled (filter_params.enable == false):
///   sel < kScanThreshold      -> (C) predicate-first: brute-force only the
///                                matching rows (few matches, exact).
///   graph index & sel < 0.5   -> (B) widened beam: pre-filter mask plus an
///                                ef inflated by ~1/sel so the beam still
///                                reaches k passing results.
///   otherwise                 -> (A) pre-filter mask straight into the
///                                index scan.
/// With the planner enabled, core/filter_planner.h chooses instead (and can
/// additionally pick filtered traversal or the forced post-scan baseline).
constexpr double kScanThreshold = 0.05;
}  // namespace

// ---------------------------------------------------------------------------
// SegmentCore
// ---------------------------------------------------------------------------

SegmentCore::SegmentCore(SegmentId id, const CollectionSchema* schema)
    : id_(id), schema_(schema) {
  for (const auto& field : schema_->fields()) {
    if (field.is_primary) continue;
    FieldColumn col;
    col.field_id = field.id;
    col.type = field.type;
    col.dim = field.dim;
    rows_.columns.push_back(std::move(col));
  }
}

int64_t SegmentCore::NumRows() const { return rows_.NumRows(); }

Timestamp SegmentCore::MinTimestamp() const {
  return rows_.timestamps.empty() ? 0 : rows_.timestamps.front();
}

Timestamp SegmentCore::MaxTimestamp() const {
  return rows_.timestamps.empty() ? 0 : rows_.timestamps.back();
}

Status SegmentCore::Append(const EntityBatch& batch) {
  const int64_t base = NumRows();
  MANU_RETURN_NOT_OK(rows_.Append(batch));
  for (int64_t i = 0; i < batch.NumRows(); ++i) {
    pk_rows_[batch.primary_keys[i]].push_back(base + i);
  }
  return Status::OK();
}

void SegmentCore::Delete(int64_t pk, Timestamp ts) {
  auto it = pk_rows_.find(pk);
  if (it == pk_rows_.end()) return;
  for (int64_t row : it->second) {
    // A delete at `ts` covers only row versions that existed at `ts`:
    // when an old tombstone is replayed onto a loaded segment that
    // already contains a reinserted newer version, that version must
    // survive — exactly as it did on nodes that applied the delete live,
    // before the reinsert arrived.
    if (rows_.timestamps[row] <= ts) tombstones_.emplace_back(row, ts);
  }
}

int64_t SegmentCore::VisibleRows(Timestamp ts) const {
  if (ts == kMaxTimestamp) return NumRows();
  const auto& t = rows_.timestamps;
  return std::upper_bound(t.begin(), t.end(), ts) - t.begin();
}

double SegmentCore::DeletedRatio() const {
  const int64_t n = NumRows();
  if (n == 0) return 0;
  // Tombstones may repeat a row (re-deleted pk); count unique lazily only
  // when it matters. Upper bound is fine for the compaction policy.
  return std::min(1.0, static_cast<double>(tombstones_.size()) /
                           static_cast<double>(n));
}

void SegmentCore::FillDeleted(Timestamp ts, ConcurrentBitset* out) const {
  for (const auto& [row, lsn] : tombstones_) {
    if (lsn <= ts) out->Set(static_cast<size_t>(row));
  }
}

FilterContext SegmentCore::MakeFilterContext() const {
  FilterContext ctx;
  ctx.num_rows = NumRows();
  ctx.column = [this](FieldId id) { return rows_.ColumnByFieldId(id); };
  ctx.scalar_index = [this](FieldId id) -> const ScalarSortedIndex* {
    if (filter_index_ != nullptr) {
      const ScalarSortedIndex* index = filter_index_->scalar(id);
      if (index != nullptr) return index;
    }
    auto it = scalar_indexes_.find(id);
    return it == scalar_indexes_.end() ? nullptr : &it->second;
  };
  ctx.label_index = [this](FieldId id) -> const LabelIndex* {
    auto it = label_indexes_.find(id);
    return it == label_indexes_.end() ? nullptr : &it->second;
  };
  ctx.label_bitmap = [this](FieldId id) -> const LabelBitmapIndex* {
    return filter_index_ == nullptr ? nullptr : filter_index_->label(id);
  };
  return ctx;
}

Status SegmentCore::BuildScanMask(const SegmentSearchRequest& req,
                                  ScanMask* out) const {
  const bool have_tombstones = !tombstones_.empty();
  if (req.filter == nullptr && !have_tombstones) return Status::OK();
  auto mask =
      std::make_unique<ConcurrentBitset>(static_cast<size_t>(NumRows()));
  if (req.filter != nullptr) {
    const FilterContext ctx = MakeFilterContext();
    MANU_RETURN_NOT_OK(req.filter->Evaluate(ctx, mask.get()));
    out->has_filter = true;
    // Evaluate already materialized the match bitmap, so the exact match
    // fraction is a popcount away — strictly better planner input than
    // EstimateSelectivity, and the only real signal on growing segments
    // (no attribute indexes -> the estimate degrades to a pessimistic 1.0,
    // which would lock the planner out of kBruteMatches there).
    out->selectivity =
        NumRows() > 0
            ? static_cast<double>(mask->Count()) / static_cast<double>(NumRows())
            : 1.0;
  } else {
    mask->SetAll();
  }
  if (have_tombstones) {
    for (const auto& [row, lsn] : tombstones_) {
      if (lsn <= req.read_ts) mask->Clear(static_cast<size_t>(row));
    }
  }
  out->allowed = std::move(mask);
  return Status::OK();
}

Result<std::vector<SegmentHit>> SegmentCore::Search(
    const SegmentSearchRequest& req, const VectorIndex* index) const {
  const int64_t visible = VisibleRows(req.read_ts);
  if (visible == 0) return std::vector<SegmentHit>{};

  const FieldColumn* vec_col = rows_.ColumnByFieldId(req.field);
  if (vec_col == nullptr || vec_col->type != DataType::kFloatVector) {
    return Status::InvalidArgument("segment: bad vector field");
  }
  const FieldSchema* field = schema_->FieldById(req.field);
  const MetricType metric = field->metric;

  SearchParams sp = req.params;
  sp.visible_rows = visible;

  // One shared mask: tombstones AND attribute filter, composed once
  // (BuildScanMask) for every strategy and index family below.
  ScanMask mask;
  MANU_RETURN_NOT_OK(BuildScanMask(req, &mask));
  sp.allowed = mask.allowed.get();
  sp.deleted = nullptr;

  const bool covered = index != nullptr && index->Size() == NumRows();

  FilterPlan plan;
  plan.selectivity = mask.selectivity;
  if (req.filter == nullptr) {
    plan.strategy = FilterStrategy::kNone;
  } else if (!req.filter_params.enable) {
    plan.strategy = FilterStrategy::kLegacy;
  } else {
    plan = PlanFilter(req.filter_params, mask.selectivity, covered,
                      covered ? index->type() : IndexType::kFlat);
  }
  if (req.plan_out != nullptr) *req.plan_out = plan;

  // Scans exactly the mask's member rows (exact; cost ~ sel * n distances).
  const auto scan_matches = [&]() {
    TopKHeap heap(sp.k);
    for (int64_t row = 0; row < visible; ++row) {
      if (mask.allowed != nullptr &&
          !mask.allowed->Test(static_cast<size_t>(row))) {
        continue;
      }
      heap.Push(row, MetricScore(req.query, vec_col->VectorAt(row),
                                 vec_col->dim, metric));
    }
    return heap.TakeSorted();
  };
  // Brute force over the visible prefix with the mask applied per row.
  const auto brute_force = [&]() {
    TopKHeap heap(sp.k);
    constexpr int64_t kBlock = 1024;
    float scores[kBlock];
    for (int64_t begin = 0; begin < visible; begin += kBlock) {
      const int64_t len = std::min(kBlock, visible - begin);
      MetricScoreBatch(req.query, vec_col->f32.data() + begin * vec_col->dim,
                       static_cast<size_t>(len), vec_col->dim, metric,
                       scores);
      for (int64_t i = 0; i < len; ++i) {
        const int64_t row = begin + i;
        if (!PassesFilters(row, sp)) continue;
        heap.Push(row, scores[i]);
      }
    }
    return heap.TakeSorted();
  };

  std::vector<Neighbor> neighbors;
  switch (plan.strategy) {
    case FilterStrategy::kLegacy: {
      bool scan_allowed_only =
          mask.selectivity < kScanThreshold || index == nullptr;
      if (!scan_allowed_only && index->type() == IndexType::kHnsw) {
        // Strategy B: widen the beam so ~k passing hits survive the mask.
        const double inflate =
            std::min(16.0, 1.0 / std::max(mask.selectivity, 1e-3));
        sp.ef_search = static_cast<int32_t>(sp.ef_search * inflate);
      }
      if (scan_allowed_only) {
        neighbors = scan_matches();  // Strategy C.
      } else if (covered) {
        MANU_ASSIGN_OR_RETURN(neighbors, index->Search(req.query, sp));
      } else {
        neighbors = brute_force();
      }
      break;
    }
    case FilterStrategy::kBruteMatches:
      neighbors = scan_matches();
      break;
    case FilterStrategy::kTraversal: {
      if (!covered) {
        neighbors = scan_matches();
        break;
      }
      sp.filtered_traversal = true;
      sp.traversal_ef_cap = req.filter_params.ef_inflation_cap;
      // Selectivity-aware widening: IVF prunes probed lists to allowed
      // rows, so probe proportionally more lists; HNSW's beam must be wide
      // enough to surface the *nearest* passing rows, not merely k passing
      // rows (the adaptive retry in the index only guards against
      // starvation, not against a too-narrow first beam).
      const double inflate = std::min(req.filter_params.ef_inflation_cap,
                                      1.0 / std::max(mask.selectivity, 1e-3));
      sp.nprobe = static_cast<int32_t>(
          std::min<double>(1 << 20, sp.nprobe * inflate));
      sp.ef_search = static_cast<int32_t>(
          std::min<double>(1 << 20, sp.ef_search * inflate));
      MANU_ASSIGN_OR_RETURN(neighbors, index->Search(req.query, sp));
      break;
    }
    case FilterStrategy::kPostScan: {
      if (!covered) {
        neighbors = scan_matches();
        break;
      }
      // Baseline: unmasked ANN over-fetching ~k/sel candidates, intersect
      // with the mask afterwards. This is what the planner strategies are
      // measured against in bench_filtered.
      SearchParams post = sp;
      post.allowed = nullptr;
      post.filtered_traversal = false;
      const double sel = std::max(mask.selectivity, 1e-4);
      const size_t kprime = static_cast<size_t>(std::min<double>(
          static_cast<double>(visible),
          std::ceil(static_cast<double>(sp.k) / sel) + 16));
      post.k = kprime;
      post.ef_search = std::max(
          post.ef_search,
          static_cast<int32_t>(std::min<size_t>(kprime, 1u << 20)));
      MANU_ASSIGN_OR_RETURN(std::vector<Neighbor> raw,
                            index->Search(req.query, post));
      TopKHeap heap(sp.k);
      for (const Neighbor& n : raw) {
        if (!PassesFilters(n.id, sp)) continue;
        heap.Push(n.id, n.score);
      }
      neighbors = heap.TakeSorted();
      break;
    }
    case FilterStrategy::kNone:
    case FilterStrategy::kPreFilter:
    default: {
      if (covered) {
        MANU_ASSIGN_OR_RETURN(neighbors, index->Search(req.query, sp));
      } else if (mask.has_filter) {
        neighbors = scan_matches();
      } else {
        neighbors = brute_force();
      }
      break;
    }
  }

  std::vector<SegmentHit> hits;
  hits.reserve(neighbors.size());
  for (const Neighbor& n : neighbors) {
    hits.push_back({rows_.primary_keys[n.id], n.score});
  }
  return hits;
}

Result<float> SegmentCore::ScoreByPk(int64_t pk, FieldId field,
                                     const float* query,
                                     Timestamp read_ts) const {
  auto it = pk_rows_.find(pk);
  if (it == pk_rows_.end()) return Status::NotFound("pk not in segment");
  const FieldColumn* col = rows_.ColumnByFieldId(field);
  const FieldSchema* fs = schema_->FieldById(field);
  if (col == nullptr || fs == nullptr) {
    return Status::InvalidArgument("bad field for ScoreByPk");
  }
  const int64_t visible = VisibleRows(read_ts);
  float best = std::numeric_limits<float>::max();
  bool found = false;
  for (int64_t row : it->second) {
    if (row >= visible) continue;
    bool dead = false;
    for (const auto& [trow, tlsn] : tombstones_) {
      if (trow == row && tlsn <= read_ts) {
        dead = true;
        break;
      }
    }
    if (dead) continue;
    best = std::min(best, MetricScore(query, col->VectorAt(row), col->dim,
                                      fs->metric));
    found = true;
  }
  if (!found) return Status::NotFound("pk not visible");
  return best;
}

// ---------------------------------------------------------------------------
// GrowingSegment
// ---------------------------------------------------------------------------

GrowingSegment::GrowingSegment(SegmentId id, const CollectionSchema* schema,
                               int64_t slice_rows)
    : core_(id, schema), slice_rows_(slice_rows) {}

Status GrowingSegment::Append(const EntityBatch& batch) {
  MANU_RETURN_NOT_OK(core_.Append(batch));
  MaybeBuildSliceIndexes();
  return Status::OK();
}

void GrowingSegment::MaybeBuildSliceIndexes() {
  std::lock_guard<std::mutex> lk(mu_);
  const int64_t rows = core_.NumRows();
  for (const FieldSchema* field : core_.schema().VectorFields()) {
    // Last slice boundary already indexed for this field.
    int64_t covered = 0;
    for (const auto& slice : slices_) {
      if (slice.field == field->id) covered = std::max(covered, slice.end);
    }
    const FieldColumn* col = core_.rows().ColumnByFieldId(field->id);
    while (rows - covered >= slice_rows_) {
      Slice slice;
      slice.begin = covered;
      slice.end = covered + slice_rows_;
      slice.field = field->id;
      IndexParams params;
      params.type = IndexType::kIvfFlat;
      params.metric = field->metric;
      params.dim = field->dim;
      // Fine-grained lists: a probe touches ~1-5% of the slice, which is
      // where the paper's "up to 10X" growing-segment speedup comes from.
      params.nlist = static_cast<int32_t>(
          std::max<int64_t>(16, slice_rows_ / 64));
      params.train_iters = 2;  // Temporary index: cheap build wins.
      auto built = BuildVectorIndex(
          params, col->f32.data() + slice.begin * field->dim, slice_rows_);
      if (built.ok()) slice.temp_index = std::move(built).value();
      covered = slice.end;
      slices_.push_back(std::move(slice));
    }
  }
}

int64_t GrowingSegment::NumSlicesIndexed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int64_t>(slices_.size());
}

Result<std::vector<SegmentHit>> GrowingSegment::Search(
    const SegmentSearchRequest& req) const {
  const int64_t visible = core_.VisibleRows(req.read_ts);
  if (visible == 0) return std::vector<SegmentHit>{};

  // Snapshot slice list under the lock; index objects are immutable once
  // installed.
  std::vector<const Slice*> slices;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& s : slices_) {
      if (s.field == req.field && s.temp_index != nullptr) {
        slices.push_back(&s);
      }
    }
  }

  const FieldColumn* vec_col = core_.rows().ColumnByFieldId(req.field);
  const FieldSchema* field = core_.schema().FieldById(req.field);
  if (vec_col == nullptr || field == nullptr) {
    return Status::InvalidArgument("growing: bad vector field");
  }

  // Same shared mask helper as the sealed path: tombstones and the filter
  // bitmap compose once, never per slice index.
  ScanMask mask;
  MANU_RETURN_NOT_OK(core_.BuildScanMask(req, &mask));
  const auto passes = [&](int64_t row) {
    if (row >= visible) return false;
    if (mask.allowed != nullptr &&
        !mask.allowed->Test(static_cast<size_t>(row))) {
      return false;
    }
    return true;
  };

  FilterPlan plan;
  plan.selectivity = mask.selectivity;
  if (req.filter == nullptr) {
    plan.strategy = FilterStrategy::kNone;
  } else if (!req.filter_params.enable) {
    plan.strategy = FilterStrategy::kLegacy;
  } else if (req.filter_params.force != FilterStrategy::kNone) {
    plan.strategy = req.filter_params.force;
  } else if (mask.selectivity < req.filter_params.brute_threshold) {
    // Growing segments have no full-coverage index, only temporary slice
    // indexes; below the brute threshold, scanning just the matches beats
    // the slice scans outright.
    plan.strategy = FilterStrategy::kBruteMatches;
  } else {
    plan.strategy = FilterStrategy::kPreFilter;
  }
  if (req.plan_out != nullptr) *req.plan_out = plan;

  if (plan.strategy == FilterStrategy::kBruteMatches) {
    TopKHeap heap(req.params.k);
    for (int64_t row = 0; row < visible; ++row) {
      if (!passes(row)) continue;
      heap.Push(row, MetricScore(req.query, vec_col->VectorAt(row),
                                 field->dim, field->metric));
    }
    std::vector<Neighbor> merged = heap.TakeSorted();
    std::vector<SegmentHit> out;
    out.reserve(merged.size());
    for (const Neighbor& n : merged) {
      out.push_back({core_.rows().primary_keys[n.id], n.score});
    }
    return out;
  }

  TopKHeap heap(req.params.k);
  int64_t covered = 0;
  // Indexed slices: slice-local ids are offset by slice.begin; masks are
  // applied post-search (slices are small, so over-fetch is cheap and the
  // temporary index is approximate by design).
  for (const Slice* slice : slices) {
    covered = std::max(covered, slice->end);
    if (slice->begin >= visible) continue;
    SearchParams sp = req.params;
    sp.k = req.params.k * 2 + 16;
    sp.deleted = nullptr;
    sp.allowed = nullptr;
    sp.visible_rows = std::min(visible - slice->begin,
                               slice->end - slice->begin);
    MANU_ASSIGN_OR_RETURN(std::vector<Neighbor> hits,
                          slice->temp_index->Search(req.query, sp));
    for (const Neighbor& n : hits) {
      const int64_t row = n.id + slice->begin;
      if (passes(row)) heap.Push(row, n.score);
    }
  }
  // Brute-force tail beyond the last indexed slice.
  for (int64_t row = covered; row < visible; ++row) {
    if (!passes(row)) continue;
    heap.Push(row, MetricScore(req.query, vec_col->VectorAt(row),
                               field->dim, field->metric));
  }

  std::vector<Neighbor> merged = heap.TakeSorted();
  std::vector<SegmentHit> out;
  out.reserve(merged.size());
  for (const Neighbor& n : merged) {
    out.push_back({core_.rows().primary_keys[n.id], n.score});
  }
  return out;
}

// ---------------------------------------------------------------------------
// SealedSegment
// ---------------------------------------------------------------------------

SealedSegment::SealedSegment(SegmentId id, const CollectionSchema* schema)
    : core_(id, schema) {}

Status SealedSegment::SetRows(const EntityBatch& batch) {
  if (core_.NumRows() != 0) {
    return Status::InvalidArgument("sealed segment already populated");
  }
  return core_.Append(batch);
}

Status SealedSegment::SetIndex(FieldId field,
                               std::unique_ptr<VectorIndex> index) {
  if (index->Size() != core_.NumRows()) {
    return Status::InvalidArgument("index row count mismatch");
  }
  indexes_[field] = std::move(index);
  return Status::OK();
}

bool SealedSegment::HasIndex(FieldId field) const {
  return indexes_.count(field) > 0;
}

Status SealedSegment::BuildScalarIndexes() {
  for (const auto& field : core_.schema().fields()) {
    if (field.is_primary || field.IsVector()) continue;
    const FieldColumn* col = core_.rows().ColumnByFieldId(field.id);
    if (col == nullptr) continue;
    if (field.type == DataType::kString) {
      LabelIndex index;
      MANU_RETURN_NOT_OK(index.Build(*col));
      core_.label_indexes_[field.id] = std::move(index);
    } else if (field.type == DataType::kInt64 ||
               field.type == DataType::kFloat ||
               field.type == DataType::kDouble) {
      ScalarSortedIndex index;
      MANU_RETURN_NOT_OK(index.Build(*col));
      core_.scalar_indexes_[field.id] = std::move(index);
    }
  }
  return Status::OK();
}

Status SealedSegment::SetFilterIndex(
    std::shared_ptr<const FilterIndex> index) {
  if (index == nullptr) {
    return Status::InvalidArgument("null filter index");
  }
  if (index->NumRows() != core_.NumRows()) {
    return Status::InvalidArgument("filter index row count mismatch");
  }
  core_.filter_index_ = std::move(index);
  return Status::OK();
}

bool SealedSegment::HasFilterIndex() const {
  return core_.filter_index_ != nullptr;
}

Result<std::vector<SegmentHit>> SealedSegment::Search(
    const SegmentSearchRequest& req) const {
  auto it = indexes_.find(req.field);
  const VectorIndex* index = it == indexes_.end() ? nullptr
                                                  : it->second.get();
  return core_.Search(req, index);
}

uint64_t SealedSegment::MemoryBytes() const {
  uint64_t bytes = core_.ByteSize();
  for (const auto& [_, index] : indexes_) bytes += index->MemoryBytes();
  if (core_.filter_index_ != nullptr) {
    bytes += core_.filter_index_->MemoryBytes();
  }
  return bytes;
}

}  // namespace manu
