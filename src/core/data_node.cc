#include "core/data_node.h"

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/trace.h"
#include "core/lease.h"
#include "storage/binlog.h"

namespace manu {

DataNode::DataNode(NodeId id, const CoreContext& ctx,
                   DataCoordinator* data_coord)
    : id_(id), ctx_(ctx), data_coord_(data_coord) {}

DataNode::~DataNode() { Stop(); }

void DataNode::AssignChannel(
    CollectionId collection, ShardId shard,
    std::shared_ptr<const CollectionSchema> schema, Timestamp replay_from) {
  const std::string channel = ShardChannelName(collection, shard);
  auto ch = std::make_shared<ChannelState>();
  if (replay_from > 0) {
    ch->sub = ctx_.mq->SubscribeAt(
        channel, ctx_.mq->FirstOffsetAtOrAfter(channel, replay_from));
  } else {
    ch->sub = ctx_.mq->Subscribe(channel, SubscribePosition::kEarliest);
  }
  ch->collection = collection;
  ch->shard = shard;
  ch->schema = std::move(schema);
  std::lock_guard<std::mutex> lk(mu_);
  channels_.push_back(std::move(ch));
}

void DataNode::UnassignCollection(CollectionId collection) {
  std::lock_guard<std::mutex> lk(mu_);
  std::erase_if(channels_, [&](const auto& ch) {
    return ch->collection == collection;
  });
}

void DataNode::Start() {
  if (ctx_.leases != nullptr) {
    lease_epoch_ = ctx_.leases->Register(id_, "data");
  }
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
}

void DataNode::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void DataNode::Run() {
  int64_t next_heartbeat_ms = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    if (ctx_.leases != nullptr && NowMs() >= next_heartbeat_ms) {
      // Renewal failures (dropped heartbeat failpoint, fenced epoch) are
      // deliberate no-ops: the watchdog decides liveness, not the worker.
      (void)ctx_.leases->Renew(id_, lease_epoch_);
      next_heartbeat_ms = NowMs() + ctx_.config.heartbeat_interval_ms;
    }
    bool idle = true;
    // Snapshot shared channel handles so AssignChannel/UnassignCollection
    // can run concurrently.
    std::vector<std::shared_ptr<ChannelState>> channels;
    {
      std::lock_guard<std::mutex> lk(mu_);
      channels = channels_;
    }
    for (const auto& ch : channels) {
      auto entries = ch->sub->TryPoll(ctx_.config.poll_batch);
      // A truncated-away cursor is not a clean tail: the skipped entries
      // are unrecoverable for this pump and the buffers it feeds. Surface
      // it (the subscription already bumped wal.subscriber_gap) so an
      // operator can tell replay-from-floor from normal consumption.
      const int64_t missed = ch->sub->missed();
      if (missed > ch->missed_seen) {
        MANU_LOG_WARN << "data node " << id_ << " channel "
                      << ch->sub->channel() << " lost "
                      << (missed - ch->missed_seen)
                      << " truncated WAL entries (cursor snapped to floor)";
        ch->missed_seen = missed;
      }
      if (!entries.empty()) idle = false;
      for (const auto& entry : entries) {
        HandleEntry(ch.get(), *entry);
      }
    }
    if (idle) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(ctx_.config.poll_timeout_ms));
    }
  }
}

void DataNode::HandleEntry(ChannelState* ch, const LogEntry& entry) {
  switch (entry.type) {
    case LogEntryType::kInsert: {
      Buffer& buf = ch->buffers[entry.segment];
      if (buf.rows.NumRows() == 0 && buf.rows.columns.empty()) {
        buf.rows = entry.batch;  // First batch defines the column layout.
        buf.schema = ch->schema;
      } else {
        Status st = buf.rows.Append(entry.batch);
        if (!st.ok()) {
          MANU_LOG_ERROR << "data node " << id_ << " append failed: "
                         << st.ToString();
          return;
        }
      }
      buf.last_lsn = entry.timestamp;
      // Log order proves older segments on this shard are complete.
      std::vector<SegmentId> done;
      for (const auto& [seg, _] : ch->buffers) {
        if (seg < entry.segment) done.push_back(seg);
      }
      for (SegmentId seg : done) {
        Buffer b = std::move(ch->buffers[seg]);
        ch->buffers.erase(seg);
        SealBuffer(ch, seg, std::move(b));
      }
      break;
    }
    case LogEntryType::kFlush: {
      std::vector<SegmentId> done;
      for (const auto& [seg, _] : ch->buffers) {
        if (seg < entry.segment) done.push_back(seg);
      }
      for (SegmentId seg : done) {
        Buffer b = std::move(ch->buffers[seg]);
        ch->buffers.erase(seg);
        SealBuffer(ch, seg, std::move(b));
      }
      break;
    }
    case LogEntryType::kDelete:
    case LogEntryType::kTimeTick:
      // Deletes are served from the WAL by query nodes and applied
      // physically at compaction; ticks carry no data.
      break;
    default:
      break;
  }
}

void DataNode::SealBuffer(ChannelState* ch, SegmentId segment,
                          Buffer buffer) {
  if (buffer.rows.NumRows() == 0) return;
  // The WAL decouples sealing from the originating inserts, so this stage
  // cannot join a request trace; it opens its own force-sampled root (seals
  // are rare enough that 1-in-N sampling would almost never catch one).
  Span root = Tracer::Global().StartTrace("data_node.seal",
                                          /*force_sample=*/true);
  root.Tag("node", static_cast<int64_t>(id_));
  root.Tag("segment", static_cast<int64_t>(segment));
  root.Tag("rows", buffer.rows.NumRows());
  // Commit-point fence (binlog archive): a zombie that lost its lease while
  // paused must not archive — the channel's new owner will seal these rows.
  if (ctx_.leases != nullptr) {
    Status fenced = ctx_.leases->CheckEpoch(id_, lease_epoch_);
    if (!fenced.ok()) {
      MANU_LOG_WARN << "data node " << id_ << " seal of segment " << segment
                    << " rejected: " << fenced.ToString();
      root.Tag("error", "fenced: " + fenced.ToString());
      return;
    }
  }
  Status fp;
  MANU_FAILPOINT_CAPTURE("data_node.seal", fp);
  if (!fp.ok()) {
    MANU_LOG_WARN << "data node " << id_ << " seal aborted (injected): "
                  << fp.ToString();
    // Not data loss: the WAL retains the rows and the shard's primary
    // query node keeps serving the growing twin; only the move to object
    // storage is skipped.
    root.Tag("error", "injected: " + fp.ToString());
    return;
  }
  const std::string path = "binlog/c" + std::to_string(ch->collection) +
                           "/seg" + std::to_string(segment);
  Span write_span(root.context(), "binlog.write");
  Status st = RetryOp(MakeIoRetryPolicy(ctx_.config), "data_node.seal", [&] {
    return binlog::WriteSegment(ctx_.store, path, buffer.rows);
  });
  write_span.End();
  if (!st.ok()) {
    MANU_LOG_ERROR << "data node " << id_ << " binlog write failed: "
                   << st.ToString();
    root.Tag("error", st.ToString());
    return;
  }

  SegmentMeta meta;
  meta.id = segment;
  meta.collection = ch->collection;
  meta.shard = ch->shard;
  meta.state = SegmentState::kSealed;
  meta.num_rows = buffer.rows.NumRows();
  meta.binlog_path = path;
  meta.last_lsn = buffer.last_lsn;
  {
    Span reg_span(root.context(), "data_coord.register_sealed");
    st = data_coord_->RegisterSealed(meta);
  }
  if (!st.ok()) {
    MANU_LOG_ERROR << "data node " << id_ << " register failed: "
                   << st.ToString();
    root.Tag("error", st.ToString());
    return;
  }

  LogEntry announce;
  announce.type = LogEntryType::kSegmentSealed;
  announce.timestamp = ctx_.tso->Allocate();
  announce.collection = ch->collection;
  announce.shard = ch->shard;
  announce.segment = segment;
  announce.payload = meta.Serialize();
  ctx_.mq->Publish(CoordChannelName(), std::move(announce));

  sealed_.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry::Global().GetCounter("data_node.segments_sealed")->Add(1);
  MANU_LOG_DEBUG << "data node " << id_ << " sealed segment " << segment
                 << " rows=" << meta.num_rows;
}

}  // namespace manu
