#ifndef MANU_CORE_INDEX_COORD_H_
#define MANU_CORE_INDEX_COORD_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/context.h"
#include "core/data_coord.h"
#include "core/index_node.h"
#include "core/root_coord.h"

namespace manu {

/// Index coordinator (Sections 3.2/3.5): maintains index meta-information
/// and dispatches build tasks to index nodes. Stream indexing: it subscribes
/// to the coordination channel and reacts to kSegmentSealed announcements.
/// Batch indexing: RequestBuildAll() walks every sealed segment of a
/// collection (e.g. after the embedding model — and thus the declared index
/// — changed) and schedules missing builds.
class IndexCoordinator {
 public:
  IndexCoordinator(const CoreContext& ctx, DataCoordinator* data_coord,
                   RootCoordinator* root_coord);
  ~IndexCoordinator();

  void AddIndexNode(IndexNode* node);
  void RemoveIndexNode(NodeId id);

  void Start();
  void Stop();

  /// Batch indexing: schedules builds for every sealed segment of the
  /// collection that lacks the currently declared index.
  Status RequestBuildAll(CollectionId collection);

  /// Blocks until all registered index nodes drain (tests/benches).
  void WaitIdle() const;

 private:
  void Run();
  void Dispatch(const SegmentMeta& segment);

  CoreContext ctx_;
  DataCoordinator* data_coord_;
  RootCoordinator* root_coord_;

  mutable std::mutex mu_;
  std::vector<IndexNode*> nodes_;
  size_t next_node_ = 0;

  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace manu

#endif  // MANU_CORE_INDEX_COORD_H_
