#ifndef MANU_CORE_ADMISSION_H_
#define MANU_CORE_ADMISSION_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"
#include "core/config.h"

namespace manu {

/// What the front door decided for one request.
enum class AdmitAction {
  kAdmit,    ///< Serve normally.
  kDegrade,  ///< Serve, but force allow_partial and tighten deadlines.
  kShed,     ///< Refuse with kResourceExhausted + retry-after (recoverable).
  kReject,   ///< Refuse outright (ladder stage 3 / hard ceilings).
};

struct AdmitDecision {
  AdmitAction action = AdmitAction::kAdmit;
  /// Brownout ladder stage at decision time: 0 normal, 1 degrade,
  /// 2 shed-low-priority, 3 reject.
  int32_t stage = 0;
  /// Backoff guidance for refused requests (kShed/kReject), in ms. Clients
  /// and the proxy's write-retry honor it with jitter; RetryPolicy never
  /// retries kResourceExhausted on its own (retry storms amplify overload).
  int64_t retry_after_ms = 0;
  /// Why: "ok" | "degrade" | "tenant_throttle" | "inflight_ceiling" |
  /// "low_priority_shed" | "reject".
  const char* reason = "ok";

  bool admitted() const {
    return action == AdmitAction::kAdmit || action == AdmitAction::kDegrade;
  }
};

/// The proxy's overload front door (ROADMAP item 3; Taurus discipline: shed
/// work early, protect serving state, never queue unboundedly).
///
/// Three mechanisms compose, evaluated per request in this order:
///
///  1. **Per-tenant token buckets** (admission_tenant_qps / _burst): rate
///     fairness between tenants. A tenant over its rate is shed with a
///     retry-after hint sized to when its bucket refills — independent of
///     how loaded the system is, so one hot tenant cannot starve the rest.
///  2. **Global inflight ceiling** (admission_max_inflight): a hard bound on
///     concurrently admitted requests. At the ceiling, requests are shed
///     immediately instead of queueing.
///  3. **Brownout ladder** driven by measured pressure — the max of the
///     inflight ratio and a pluggable probe (query-node queue ratios),
///     smoothed with a time-based EWMA so a single burst does not flap the
///     stage:
///        stage 1 (>= shed_degrade_pressure):       degrade — force
///            allow_partial, tighten per-node deadlines; everything serves.
///        stage 2 (>= shed_low_priority_pressure):  shed requests with
///            priority > 0 (low) with kResourceExhausted + retry-after;
///            normal-priority requests still serve degraded.
///        stage 3 (>= shed_reject_pressure):        reject everything.
///     Stages release with hysteresis (pressure must fall below ~0.85x the
///     engage threshold), and the first engage time of each stage is
///     recorded so tests can assert degrade -> shed -> reject ordering.
///
/// All knobs default to 0 = unlimited, making the controller a pass-through
/// until a deployment opts in (tests/benches arm it explicitly).
class AdmissionController {
 public:
  explicit AdmissionController(const ManuConfig& config);

  /// External pressure signal in [0, 1] (the proxy wires the query-node
  /// queue ratio here). Sampled at most every few ms; may be empty.
  void SetPressureProbe(std::function<double()> probe);

  /// Front-door decision for one request. Admitted decisions reserve an
  /// inflight slot that MUST be returned via Release() (use
  /// AdmissionGuard). Thread-safe.
  AdmitDecision Admit(const std::string& tenant, int32_t priority);
  void Release();

  // --- Introspection (DescribeCluster, tests) ---
  int32_t stage() const { return stage_.load(std::memory_order_relaxed); }
  double pressure() const {
    return static_cast<double>(
               pressure_bp_.load(std::memory_order_relaxed)) /
           10000.0;
  }
  int64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  /// NowMs() of the first time `stage` (1..3) engaged; 0 = never.
  int64_t StageFirstEngagedMs(int32_t stage) const;

  /// kResourceExhausted carrying the machine-readable retry-after hint
  /// ("... retry-after-ms=N"). `what` names the refusing component.
  static Status ShedStatus(const std::string& what, int32_t stage,
                           int64_t retry_after_ms);
  /// Parses the retry-after hint out of a ShedStatus message; -1 if absent.
  static int64_t RetryAfterHintMs(const Status& st);

 private:
  struct TokenBucket {
    double tokens = 0;
    int64_t last_refill_us = 0;
  };

  /// Recomputes smoothed pressure + ladder stage. Returns the stage.
  int32_t UpdatePressureLocked(int64_t now_us);

  const int64_t max_inflight_;
  const double tenant_qps_;
  const double tenant_burst_;
  const double degrade_pressure_;
  const double low_priority_pressure_;
  const double reject_pressure_;
  const int64_t retry_after_ms_;

  std::atomic<int64_t> inflight_{0};
  std::atomic<int32_t> stage_{0};
  std::atomic<int64_t> pressure_bp_{0};  ///< Smoothed, in basis points.
  std::array<std::atomic<int64_t>, 4> stage_first_ms_{};

  mutable std::mutex mu_;
  std::function<double()> probe_;
  double probe_cache_ = 0;
  int64_t probe_cache_us_ = 0;
  double smoothed_ = 0;
  int64_t smoothed_at_us_ = 0;
  std::map<std::string, TokenBucket> buckets_;
};

/// RAII inflight slot: constructed from an admitted decision, releases on
/// scope exit. Safe to construct disengaged (refused / admission off).
class AdmissionGuard {
 public:
  AdmissionGuard() = default;
  AdmissionGuard(AdmissionController* controller, bool engaged)
      : controller_(engaged ? controller : nullptr) {}
  ~AdmissionGuard() {
    if (controller_ != nullptr) controller_->Release();
  }
  AdmissionGuard(const AdmissionGuard&) = delete;
  AdmissionGuard& operator=(const AdmissionGuard&) = delete;
  AdmissionGuard(AdmissionGuard&& other) noexcept
      : controller_(other.controller_) {
    other.controller_ = nullptr;
  }

 private:
  AdmissionController* controller_ = nullptr;
};

}  // namespace manu

#endif  // MANU_CORE_ADMISSION_H_
