#ifndef MANU_CORE_EXPR_H_
#define MANU_CORE_EXPR_H_

#include <functional>
#include <memory>
#include <string>

#include "common/bitset.h"
#include "common/schema.h"
#include "index/filter_index.h"
#include "index/scalar_index.h"

namespace manu {

/// Comparison operators supported in filter expressions.
enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Per-segment evaluation context: row count plus accessors for raw columns
/// and (optionally) attribute indexes. Null accessor results fall back to a
/// raw column scan. `label_bitmap` (the persisted FilterIndex artifact form)
/// is preferred over `label_index` when both resolve.
struct FilterContext {
  int64_t num_rows = 0;
  std::function<const FieldColumn*(FieldId)> column;
  std::function<const ScalarSortedIndex*(FieldId)> scalar_index;
  std::function<const LabelIndex*(FieldId)> label_index;
  std::function<const LabelBitmapIndex*(FieldId)> label_bitmap;
};

/// Parsed boolean filter over scalar fields (Section 3.6 attribute
/// filtering), e.g.:
///
///   price > 10 && price <= 99.5
///   label == 'book' || label == 'food'
///   !(count == 0) && price < 100
///
/// Grammar: or-expr of and-exprs of (comparison | '!'term | parens).
/// Comparisons are `field op literal` with numeric or 'quoted' string
/// literals. Parsing validates field names/types against the schema.
class FilterExpr {
 public:
  virtual ~FilterExpr() = default;

  static Result<std::unique_ptr<FilterExpr>> Parse(
      const std::string& text, const CollectionSchema& schema);

  /// Sets bits of matching rows into `out` (capacity >= ctx.num_rows).
  virtual Status Evaluate(const FilterContext& ctx,
                          ConcurrentBitset* out) const = 0;

  /// Estimated fraction of rows matching, in [0, 1]; drives the cost-based
  /// choice between pre-filter and post-filter strategies. Uses attribute
  /// indexes when present, else a pessimistic 1.0.
  virtual double EstimateSelectivity(const FilterContext& ctx) const = 0;
};

}  // namespace manu

#endif  // MANU_CORE_EXPR_H_
