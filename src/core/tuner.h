#ifndef MANU_CORE_TUNER_H_
#define MANU_CORE_TUNER_H_

#include <functional>
#include <random>
#include <vector>

#include "common/synthetic.h"
#include "index/vector_index.h"

namespace manu {

/// One evaluated configuration: build params plus the query-time knob.
struct TunerTrial {
  IndexParams params;
  int32_t nprobe = 8;     ///< IVF families.
  int32_t ef_search = 64; ///< HNSW.
  int64_t budget_rows = 0;
  double utility = 0;
  double recall = 0;
  double qps = 0;
};

/// Utility function scoring a finished trial; higher is better. The default
/// (recall-bounded throughput) mirrors the paper's example "score the
/// configurations according to search recall, query throughput".
using UtilityFn = std::function<double(const TunerTrial&)>;

struct TunerOptions {
  /// Index family to tune (kIvfFlat, kIvfPq, kIvfSq or kHnsw).
  IndexType type = IndexType::kIvfFlat;
  /// Total build evaluations allowed (the user's cost budget).
  int32_t max_trials = 24;
  /// Hyperband: smallest/largest data sample used for cheap/full trials,
  /// and the downsampling factor eta between rungs.
  int64_t min_budget_rows = 2000;
  int64_t max_budget_rows = 20000;
  double eta = 3.0;
  /// Fraction of trials drawn from the model (around elite configs) rather
  /// than uniformly — the "Bayesian Optimization" half of BOHB.
  double model_fraction = 0.6;
  size_t eval_queries = 64;
  size_t k = 10;
  uint64_t seed = 42;
};

/// BOHB-style automatic index-parameter configuration (Section 4.2):
/// Hyperband successive-halving allocates data-sample budgets across rungs;
/// candidate configurations are drawn either uniformly or from a kernel
/// density around the best trials so far ("prioritize the exploration of
/// areas close to high utility configurations"). The sampling budget knob
/// is the number of rows used for the trial build, matching the paper's
/// "sampling a subset of the collection for the trials".
class IndexAutoTuner {
 public:
  IndexAutoTuner(TunerOptions options, UtilityFn utility = nullptr);

  /// Runs the tuning loop on `data` (ground truth is computed on a sample)
  /// and returns all trials, best first.
  Result<std::vector<TunerTrial>> Tune(const VectorDataset& data);

  /// Pure random search at equal trial budget — the ablation baseline the
  /// tuner bench compares against.
  Result<std::vector<TunerTrial>> RandomSearch(const VectorDataset& data);

 private:
  TunerTrial SampleConfig(const std::vector<TunerTrial>& elites,
                          const VectorDataset& data);
  Status EvaluateTrial(const VectorDataset& data,
                       const VectorDataset& queries,
                       const std::vector<std::vector<Neighbor>>& truth,
                       TunerTrial* trial);

  TunerOptions options_;
  UtilityFn utility_;
  std::mt19937_64 rng_;
};

}  // namespace manu

#endif  // MANU_CORE_TUNER_H_
