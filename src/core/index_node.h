#ifndef MANU_CORE_INDEX_NODE_H_
#define MANU_CORE_INDEX_NODE_H_

#include <atomic>
#include <memory>
#include <thread>

#include "common/threadpool.h"
#include "core/collection_meta.h"
#include "core/context.h"
#include "core/data_coord.h"

namespace manu {

/// Index node (Sections 3.2/3.5): builds vector indexes for sealed
/// segments. It loads *only the vector column* of the segment's binlog
/// (column-based binlog means no read amplification), builds the index the
/// collection declared, persists it to object storage and announces
/// kIndexBuilt on the coordination channel.
class IndexNode {
 public:
  IndexNode(NodeId id, const CoreContext& ctx, DataCoordinator* data_coord,
            int32_t threads);
  ~IndexNode();

  NodeId id() const { return id_; }

  /// Asynchronously builds the index for (segment, field) under the given
  /// collection index version.
  void SubmitBuild(SegmentMeta segment, FieldId field, IndexParams params,
                   int32_t version);

  /// Asynchronously builds the segment's attribute-index artifact
  /// (FilterIndex over all scalar columns) under the given collection index
  /// version. Dispatched beside SubmitBuild when
  /// config.filter_index_enable is set.
  void SubmitFilterBuild(SegmentMeta segment, int32_t version);

  /// Tasks submitted but not yet finished.
  int64_t PendingBuilds() const {
    return pending_.load(std::memory_order_acquire);
  }

  /// Blocks until the queue drains (tests/benches).
  void WaitIdle() const;

 private:
  void Build(const SegmentMeta& segment, FieldId field,
             const IndexParams& params, int32_t version);
  void BuildFilter(const SegmentMeta& segment, int32_t version);

  NodeId id_;
  CoreContext ctx_;
  DataCoordinator* data_coord_;
  /// Lease fencing epoch (0 when liveness is off); checked before every
  /// index registration.
  int64_t lease_epoch_ = 0;
  std::atomic<int64_t> pending_{0};
  std::atomic<bool> stop_heartbeat_{false};
  /// Builds run on the pool, so unlike the pump-loop nodes the heartbeat
  /// needs its own (tiny) thread.
  std::thread heartbeat_;
  std::unique_ptr<ThreadPool> pool_;  ///< Destroyed first on teardown.
};

}  // namespace manu

#endif  // MANU_CORE_INDEX_NODE_H_
