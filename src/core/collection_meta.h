#ifndef MANU_CORE_COLLECTION_META_H_
#define MANU_CORE_COLLECTION_META_H_

#include <map>
#include <string>
#include <vector>

#include "common/schema.h"
#include "index/vector_index.h"

namespace manu {

/// Durable description of one collection, owned by the root coordinator and
/// persisted in the MetaStore under meta key "collection/<id>".
struct CollectionMeta {
  CollectionId id = kInvalidCollectionId;
  CollectionSchema schema;
  int32_t num_shards = 2;
  /// Declared index per vector field (set by CreateIndex; empty = flat).
  std::map<FieldId, IndexParams> index_params;
  /// Bumped on every DeclareIndex; segments indexed under an older version
  /// are rebuilt (batch re-indexing after an embedding-model change).
  int32_t index_version = 0;
  Timestamp created_at = 0;
  bool dropped = false;

  std::string Serialize() const;
  static Result<CollectionMeta> Deserialize(std::string_view data);
};

/// Durable description of one segment, owned by the data coordinator,
/// persisted under "segment/<collection>/<id>".
struct SegmentMeta {
  SegmentId id = kInvalidSegmentId;
  CollectionId collection = kInvalidCollectionId;
  ShardId shard = -1;
  SegmentState state = SegmentState::kGrowing;
  int64_t num_rows = 0;
  /// Object-store prefix of the binlog (set when sealed).
  std::string binlog_path;
  /// Object-store path of the built vector index per field (set when
  /// indexed), and the collection index_version it was built under.
  std::map<FieldId, std::string> index_paths;
  std::map<FieldId, int32_t> index_versions;
  /// Object-store path of the segment's attribute-index artifact
  /// (FilterIndex), built by index nodes beside the vector index when
  /// config.filter_index_enable is set; empty = not built. Query nodes fall
  /// back to building scalar indexes locally on load.
  std::string filter_index_path;
  /// Collection index_version the filter index was built under.
  int32_t filter_index_version = 0;
  /// LSN of the last row in the segment (replay progress marker for time
  /// travel, Section 4.3).
  Timestamp last_lsn = 0;
  /// True for compaction-merged segments. Their `shard` is nominal (inputs
  /// may span shards) and their `last_lsn` spans shards, so recovery
  /// excludes them when computing a shard's archived WAL floor.
  bool from_compaction = false;

  std::string Serialize() const;
  static Result<SegmentMeta> Deserialize(std::string_view data);
};

/// Meta-store key helpers.
std::string CollectionMetaKey(CollectionId id);
std::string SegmentMetaKey(CollectionId collection, SegmentId segment);

}  // namespace manu

#endif  // MANU_CORE_COLLECTION_META_H_
