#ifndef MANU_CORE_ROOT_COORD_H_
#define MANU_CORE_ROOT_COORD_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/collection_meta.h"
#include "core/context.h"

namespace manu {

/// Root coordinator (Section 3.2): handles data-definition requests and owns
/// collection metadata. Every mutation is persisted to the MetaStore first
/// and published to the DDL log channel, so other components (and a restore
/// pass) can follow DDL history.
class RootCoordinator {
 public:
  explicit RootCoordinator(const CoreContext& ctx);

  /// Creates a collection; the schema is finalized (auto primary key) here.
  Result<CollectionMeta> CreateCollection(CollectionSchema schema,
                                          int32_t num_shards);

  Status DropCollection(const std::string& name);

  /// Declares the index to build on `field` (used by both stream and batch
  /// indexing). Persists updated metadata; the index coordinator reads it.
  Status DeclareIndex(const std::string& collection, const std::string& field,
                      IndexParams params);

  Result<CollectionMeta> GetCollection(const std::string& name) const;
  Result<CollectionMeta> GetCollectionById(CollectionId id) const;
  std::vector<CollectionMeta> ListCollections() const;

  /// Crash recovery: repopulates the cache from the MetaStore
  /// ("collection/<id>" keys), skipping dropped collections. Returns the
  /// surviving collections (the recovery driver re-binds their channels and
  /// serving state).
  std::vector<CollectionMeta> Restore();

 private:
  CollectionId NextId();

  CoreContext ctx_;
  mutable std::mutex mu_;
  std::map<CollectionId, CollectionMeta> cache_;
  std::map<std::string, CollectionId> by_name_;
};

}  // namespace manu

#endif  // MANU_CORE_ROOT_COORD_H_
