#include "core/root_coord.h"

#include "common/logging.h"

namespace manu {

RootCoordinator::RootCoordinator(const CoreContext& ctx) : ctx_(ctx) {}

CollectionId RootCoordinator::NextId() {
  // CAS loop on the persisted id counter (etcd pattern).
  while (true) {
    auto entry = ctx_.meta->Get("id/next_collection");
    int64_t next = 1;
    int64_t rev = 0;
    if (entry.ok()) {
      next = std::stoll(entry.value().value);
      rev = entry.value().mod_revision;
    }
    auto cas = ctx_.meta->CompareAndSwap("id/next_collection", rev,
                                         std::to_string(next + 1));
    if (cas.ok()) return next;
  }
}

Result<CollectionMeta> RootCoordinator::CreateCollection(
    CollectionSchema schema, int32_t num_shards) {
  MANU_RETURN_NOT_OK(schema.Finalize());
  if (num_shards <= 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (by_name_.count(schema.name()) > 0) {
    return Status::AlreadyExists("collection: " + schema.name());
  }
  CollectionMeta meta;
  meta.id = NextId();
  meta.schema = std::move(schema);
  meta.num_shards = num_shards;
  meta.created_at = ctx_.tso->Allocate();
  ctx_.meta->Put(CollectionMetaKey(meta.id), meta.Serialize());

  LogEntry ddl;
  ddl.type = LogEntryType::kCreateCollection;
  ddl.timestamp = meta.created_at;
  ddl.collection = meta.id;
  ddl.payload = meta.Serialize();
  ctx_.mq->Publish(DdlChannelName(), std::move(ddl));

  by_name_[meta.schema.name()] = meta.id;
  cache_[meta.id] = meta;
  MANU_LOG_INFO << "created collection '" << meta.schema.name() << "' id="
                << meta.id << " shards=" << num_shards;
  return meta;
}

Status RootCoordinator::DropCollection(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("collection: " + name);
  CollectionMeta& meta = cache_[it->second];
  meta.dropped = true;
  ctx_.meta->Put(CollectionMetaKey(meta.id), meta.Serialize());

  LogEntry ddl;
  ddl.type = LogEntryType::kDropCollection;
  ddl.timestamp = ctx_.tso->Allocate();
  ddl.collection = meta.id;
  ctx_.mq->Publish(DdlChannelName(), std::move(ddl));

  by_name_.erase(it);
  cache_.erase(meta.id);
  return Status::OK();
}

Status RootCoordinator::DeclareIndex(const std::string& collection,
                                     const std::string& field,
                                     IndexParams params) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = by_name_.find(collection);
  if (it == by_name_.end()) {
    return Status::NotFound("collection: " + collection);
  }
  CollectionMeta& meta = cache_[it->second];
  const FieldSchema* f = meta.schema.FieldByName(field);
  if (f == nullptr) return Status::NotFound("field: " + field);
  if (!f->IsVector()) {
    return Status::InvalidArgument("index target must be a vector field");
  }
  params.dim = f->dim;
  params.metric = f->metric;
  meta.index_params[f->id] = params;
  ++meta.index_version;
  ctx_.meta->Put(CollectionMetaKey(meta.id), meta.Serialize());
  return Status::OK();
}

Result<CollectionMeta> RootCoordinator::GetCollection(
    const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("collection: " + name);
  return cache_.at(it->second);
}

Result<CollectionMeta> RootCoordinator::GetCollectionById(
    CollectionId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = cache_.find(id);
  if (it == cache_.end()) {
    return Status::NotFound("collection id: " + std::to_string(id));
  }
  return it->second;
}

std::vector<CollectionMeta> RootCoordinator::Restore() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<CollectionMeta> restored;
  for (const auto& [key, entry] : ctx_.meta->List("collection/")) {
    auto meta = CollectionMeta::Deserialize(entry.value);
    if (!meta.ok()) {
      MANU_LOG_WARN << "root coord restore: bad collection meta at " << key;
      continue;
    }
    if (meta.value().dropped) continue;
    by_name_[meta.value().schema.name()] = meta.value().id;
    cache_[meta.value().id] = meta.value();
    restored.push_back(meta.value());
  }
  if (!restored.empty()) {
    MANU_LOG_INFO << "root coord restored " << restored.size()
                  << " collections from durable state";
  }
  return restored;
}

std::vector<CollectionMeta> RootCoordinator::ListCollections() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<CollectionMeta> out;
  out.reserve(cache_.size());
  for (const auto& [_, meta] : cache_) out.push_back(meta);
  return out;
}

}  // namespace manu
