#ifndef MANU_CORE_LOGGER_H_
#define MANU_CORE_LOGGER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/trace.h"
#include "core/collection_meta.h"
#include "core/context.h"
#include "core/data_coord.h"
#include "core/hash_ring.h"
#include "storage/lsm_map.h"

namespace manu {

/// One logger node (Section 3.3): the entry point publishing data
/// manipulation requests into the WAL. For each request it verifies
/// legality, fetches an LSN block from the TSO, asks the data coordinator
/// for the target segment, records the entity->segment mapping in its local
/// LSM tree (flushed to object storage as SSTables) and appends to the WAL
/// channel of the shard.
class Logger {
 public:
  Logger(NodeId id, const CoreContext& ctx, DataCoordinator* data_coord);

  NodeId id() const { return id_; }

  /// Publishes one shard's worth of rows. `batch` must contain rows of a
  /// single shard; timestamps are assigned here. Returns the max LSN.
  /// `trace` (optional) parents this shard's logger.append span.
  Result<Timestamp> Append(const CollectionMeta& meta, ShardId shard,
                           EntityBatch batch, const TraceContext& trace = {});

  /// Publishes tombstones for `pks` on `shard`. Unknown pks are filtered
  /// out using the LSM map (the paper's "checking if the entity to delete
  /// exists"). Returns the LSN (0 if everything was filtered).
  Result<Timestamp> Delete(const CollectionMeta& meta, ShardId shard,
                           std::vector<int64_t> pks,
                           const TraceContext& trace = {});

  /// Flushes all LSM memtables (called on shutdown / failover drills).
  Status FlushMaps();

  /// Lookup for tests: which segment holds `pk`.
  Result<SegmentId> LookupEntity(CollectionId collection, ShardId shard,
                                 int64_t pk);

  /// Requests currently inside Append/Delete (backpressure window).
  int64_t Inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

 private:
  LsmEntityMap* MapFor(CollectionId collection, ShardId shard);
  /// The WAL publish fence: checks this instance's epoch against the
  /// persisted one. Handed to MessageQueue::Publish so the check runs
  /// INSIDE the broker's group-commit decision (a logger superseded while
  /// its entry sat in the append buffer is excluded before ack), not as a
  /// pre-publish check a concurrent failover could race past. Empty when
  /// liveness is disabled.
  MessageQueue::PublishFence InstanceFence() const;
  /// Reserves one slot in the bounded in-flight window
  /// (ManuConfig::logger_inflight_limit; <= 0 = unbounded). A full window
  /// returns kResourceExhausted with a retry-after hint BEFORE any side
  /// effect (no TSO allocation, no LSM mutation), so a rejected write is a
  /// pure no-op the proxy can safely re-attempt.
  Status ReserveSlot();

  NodeId id_;
  CoreContext ctx_;
  DataCoordinator* data_coord_;
  std::atomic<int64_t> inflight_{0};
  std::mutex mu_;
  std::map<std::pair<CollectionId, ShardId>, std::unique_ptr<LsmEntityMap>>
      maps_;
};

/// The logger fleet: routes each shard channel to a logger via consistent
/// hashing and fans an insert/delete request out to per-shard sub-batches.
/// This is the client-facing write API the proxies call.
class LoggerFleet {
 public:
  LoggerFleet(const CoreContext& ctx, DataCoordinator* data_coord,
              int32_t num_loggers);

  /// Hash-partitions `batch` by primary key and appends every sub-batch.
  /// Returns the max LSN across shards (the insert's visibility point).
  Result<Timestamp> Insert(const CollectionMeta& meta, EntityBatch batch,
                           const TraceContext& trace = {});

  /// Routes deletes to shards by pk hash.
  Result<Timestamp> Delete(const CollectionMeta& meta,
                           const std::vector<int64_t>& pks,
                           const TraceContext& trace = {});

  /// Shard of a primary key (hash partitioning, Section 3.1).
  static ShardId ShardOf(int64_t pk, int32_t num_shards);

  Logger* LoggerFor(CollectionId collection, ShardId shard);
  size_t NumLoggers() const { return loggers_.size(); }

 private:
  std::vector<std::unique_ptr<Logger>> loggers_;
  HashRing ring_;
};

}  // namespace manu

#endif  // MANU_CORE_LOGGER_H_
