#ifndef MANU_CORE_SEGMENT_H_
#define MANU_CORE_SEGMENT_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitset.h"
#include "common/dataset.h"
#include "common/schema.h"
#include "core/config.h"
#include "core/expr.h"
#include "core/filter_planner.h"
#include "index/filter_index.h"
#include "index/index_factory.h"
#include "index/scalar_index.h"
#include "index/vector_index.h"

namespace manu {

/// A segment-level search request (one vector field, one query vector).
struct SegmentSearchRequest {
  FieldId field = 0;
  const float* query = nullptr;
  SearchParams params;
  /// MVCC read timestamp: rows with LSN > read_ts are invisible, deletes
  /// with LSN > read_ts are ignored (Section 3.4).
  Timestamp read_ts = kMaxTimestamp;
  /// Optional attribute filter (pre-parsed); null = no filtering.
  const FilterExpr* filter = nullptr;
  /// Cost-based planner knobs (default-disabled: the legacy strategy
  /// heuristic runs). Filled by the query node from ManuConfig.
  FilterPlannerParams filter_params;
  /// When non-null, receives the executed plan (strategy + selectivity) for
  /// span tagging and the filter.* metrics. Must point at storage owned by
  /// the caller of this one Search call.
  FilterPlan* plan_out = nullptr;
};

/// The composed row mask for one segment scan: `allowed` is the attribute
/// filter bitmap AND NOT the tombstone bitmap at the request's read_ts
/// (null when neither applies — every visible row passes). Built once per
/// scan by SegmentCore::BuildScanMask, the single place where the MVCC
/// delete mask and the filter mask compose, shared by the sealed and
/// growing paths.
struct ScanMask {
  std::unique_ptr<ConcurrentBitset> allowed;
  bool has_filter = false;
  /// Filter selectivity estimate (1.0 when no filter).
  double selectivity = 1.0;
};

/// A search hit at segment scope, already mapped to the primary key.
struct SegmentHit {
  int64_t pk = -1;
  float score = 0;
};

/// Shared search logic over an in-memory row store: MVCC prefix visibility,
/// delete-bitmap filtering, attribute filtering with the cost-based
/// pre/post-filter choice (Section 3.6).
///
/// Both segment flavors hold their rows in LSN-append order, so visibility
/// at read_ts is a prefix found by binary search over the timestamp column.
class SegmentCore {
 public:
  SegmentCore(SegmentId id, const CollectionSchema* schema);

  SegmentId id() const { return id_; }
  int64_t NumRows() const;
  uint64_t ByteSize() const { return rows_.ByteSize(); }
  Timestamp MinTimestamp() const;
  Timestamp MaxTimestamp() const;

  /// Appends rows (LSN order is the caller's responsibility).
  Status Append(const EntityBatch& batch);

  /// Tombstones a primary key at `ts` (idempotent; unknown pk is a no-op).
  /// Deletions are timestamped so MVCC reads before `ts` still see the row;
  /// only row versions inserted at or before `ts` are covered, so replaying
  /// an old tombstone onto a segment that already holds a reinserted newer
  /// version leaves that version visible (order-independent replay).
  void Delete(int64_t pk, Timestamp ts);

  /// Rows visible at `ts` (prefix length).
  int64_t VisibleRows(Timestamp ts) const;

  /// Fraction of rows tombstoned (drives compaction policy).
  double DeletedRatio() const;

  /// Core search over the raw rows using `index` if provided (covering all
  /// rows) or brute force otherwise.
  Result<std::vector<SegmentHit>> Search(const SegmentSearchRequest& req,
                                         const VectorIndex* index) const;

  /// Composes tombstones (at req.read_ts) and the attribute filter into one
  /// allowed mask; see ScanMask. Evaluates the filter through the resident
  /// attribute indexes when available.
  Status BuildScanMask(const SegmentSearchRequest& req, ScanMask* out) const;

  /// Exact canonical score of `pk`'s vector on `field` against `query` at
  /// `read_ts` (best score across visible non-deleted rows of the pk).
  /// NotFound when the pk has no visible row. Used by multi-vector search
  /// re-ranking (Section 3.6).
  Result<float> ScoreByPk(int64_t pk, FieldId field, const float* query,
                          Timestamp read_ts) const;

  const EntityBatch& rows() const { return rows_; }
  const CollectionSchema& schema() const { return *schema_; }

  /// Direct accessors used by the data-node flush path.
  const std::vector<int64_t>& primary_keys() const {
    return rows_.primary_keys;
  }

 protected:
  friend class GrowingSegment;
  friend class SealedSegment;

  /// Builds the delete bitset view at `ts` (rows deleted with LSN <= ts).
  void FillDeleted(Timestamp ts, ConcurrentBitset* out) const;

  FilterContext MakeFilterContext() const;

  SegmentId id_;
  const CollectionSchema* schema_;
  EntityBatch rows_;
  /// pk -> row offsets (duplicate pks allowed across time).
  std::unordered_map<int64_t, std::vector<int64_t>> pk_rows_;
  /// Parallel arrays of tombstones: (row, delete LSN).
  std::vector<std::pair<int64_t, Timestamp>> tombstones_;
  /// Attribute indexes (built for sealed segments).
  std::map<FieldId, ScalarSortedIndex> scalar_indexes_;
  std::map<FieldId, LabelIndex> label_indexes_;
  /// Persisted attribute-index artifact (loaded from object storage by the
  /// query node); preferred over the locally-built maps above.
  std::shared_ptr<const FilterIndex> filter_index_;
};

/// A growing segment on a query node (Section 3.6): consumes WAL inserts,
/// divides rows into slices of `slice_rows`; full slices get a light-weight
/// temporary IVF-Flat index (the paper reports ~10x speedup), the tail is
/// brute-forced.
class GrowingSegment {
 public:
  GrowingSegment(SegmentId id, const CollectionSchema* schema,
                 int64_t slice_rows);

  SegmentId id() const { return core_.id(); }
  int64_t NumRows() const { return core_.NumRows(); }
  uint64_t ByteSize() const { return core_.ByteSize(); }
  SegmentCore& core() { return core_; }
  const SegmentCore& core() const { return core_; }

  /// Appends WAL rows; seals completed slices with temporary indexes.
  Status Append(const EntityBatch& batch);
  void Delete(int64_t pk, Timestamp ts) { core_.Delete(pk, ts); }

  Result<std::vector<SegmentHit>> Search(
      const SegmentSearchRequest& req) const;

  int64_t NumSlicesIndexed() const;

 private:
  struct Slice {
    int64_t begin = 0;
    int64_t end = 0;
    std::unique_ptr<VectorIndex> temp_index;  ///< Over rows [begin, end).
    FieldId field = 0;
  };

  void MaybeBuildSliceIndexes();

  SegmentCore core_;
  int64_t slice_rows_;
  mutable std::mutex mu_;  ///< Guards slices_ growth vs concurrent search.
  std::vector<Slice> slices_;
};

/// A sealed, optionally indexed segment on a query node. Construction paths:
/// from a handed-off growing segment (stream indexing) or from binlog +
/// index files in object storage (load balancing / recovery, Section 3.6).
class SealedSegment {
 public:
  SealedSegment(SegmentId id, const CollectionSchema* schema);

  SegmentId id() const { return core_.id(); }
  int64_t NumRows() const { return core_.NumRows(); }
  SegmentCore& core() { return core_; }
  const SegmentCore& core() const { return core_; }

  /// Populates rows from a full batch (binlog read or handoff).
  Status SetRows(const EntityBatch& batch);

  /// Installs the built vector index for `field` (covers all rows).
  Status SetIndex(FieldId field, std::unique_ptr<VectorIndex> index);
  bool HasIndex(FieldId field) const;

  /// Builds attribute indexes over all scalar fields.
  Status BuildScalarIndexes();

  /// Installs a persisted attribute-index artifact (covers all rows); the
  /// filter planner then estimates selectivity and evaluates predicates
  /// against it instead of locally-built indexes.
  Status SetFilterIndex(std::shared_ptr<const FilterIndex> index);
  bool HasFilterIndex() const;

  void Delete(int64_t pk, Timestamp ts) { core_.Delete(pk, ts); }

  Result<std::vector<SegmentHit>> Search(
      const SegmentSearchRequest& req) const;

  uint64_t MemoryBytes() const;

 private:
  SegmentCore core_;
  std::map<FieldId, std::unique_ptr<VectorIndex>> indexes_;
};

}  // namespace manu

#endif  // MANU_CORE_SEGMENT_H_
