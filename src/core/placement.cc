#include "core/placement.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <string>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace manu {

namespace {

/// Approximate bytes moved by one replica repair. Exact load sizes are not
/// surfaced by the object store, so estimate rows * (vector payload + pk);
/// good enough for the placement.repair_bytes counter to rank repair storms.
uint64_t ApproxSegmentBytes(const SegmentMeta& meta,
                            const CollectionSchema* schema) {
  uint64_t row_bytes = 8;  // pk
  if (schema != nullptr) {
    for (const FieldSchema& field : schema->fields()) {
      row_bytes += field.IsVector()
                       ? static_cast<uint64_t>(field.dim) * sizeof(float)
                       : 8;
    }
  }
  return static_cast<uint64_t>(meta.num_rows) * row_bytes;
}

}  // namespace

int32_t PlacementTargetVersion(const SegmentMeta& meta) {
  int32_t target = 0;
  for (const auto& [field, version] : meta.index_versions) {
    target = std::max(target, version);
  }
  return std::max(target, meta.filter_index_version);
}

PlacementManager::PlacementManager(const ManuConfig& config,
                                   PlacementHost* host)
    : config_(config), host_(host) {}

PlacementManager::~PlacementManager() { Stop(); }

void PlacementManager::Start() {
  if (config_.placement_reconcile_interval_ms <= 0) return;
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { RunLoop(); });
}

void PlacementManager::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void PlacementManager::RunLoop() {
  const int64_t interval_ms =
      std::max<int64_t>(1, config_.placement_reconcile_interval_ms);
  int64_t waited_ms = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    waited_ms += 5;
    if (waited_ms < interval_ms) continue;
    waited_ms = 0;
    ReconcileOnce();
  }
}

// --- Desired-state table -------------------------------------------------

void PlacementManager::SetDesired(
    const SegmentMeta& meta, std::shared_ptr<const CollectionSchema> schema,
    int32_t desired) {
  std::lock_guard<std::mutex> lock(table_mu_);
  SegmentPlacement& entry = table_[{meta.collection, meta.id}];
  entry.meta = meta;
  entry.schema = std::move(schema);
  entry.desired = std::max<int32_t>(1, desired);
  entry.target_version = PlacementTargetVersion(meta);
}

void PlacementManager::RecordServing(CollectionId collection,
                                     SegmentId segment, NodeId node,
                                     int32_t version) {
  std::lock_guard<std::mutex> lock(table_mu_);
  auto it = table_.find({collection, segment});
  if (it == table_.end()) return;
  for (ReplicaState& replica : it->second.serving) {
    if (replica.node == node) {
      replica.version = version;
      return;
    }
  }
  it->second.serving.push_back(ReplicaState{node, version});
}

void PlacementManager::RecordReleased(CollectionId collection,
                                      SegmentId segment, NodeId node) {
  std::lock_guard<std::mutex> lock(table_mu_);
  auto it = table_.find({collection, segment});
  if (it == table_.end()) return;
  auto& serving = it->second.serving;
  serving.erase(std::remove_if(serving.begin(), serving.end(),
                               [node](const ReplicaState& r) {
                                 return r.node == node;
                               }),
                serving.end());
}

void PlacementManager::Remove(CollectionId collection, SegmentId segment) {
  std::lock_guard<std::mutex> lock(table_mu_);
  table_.erase({collection, segment});
}

void PlacementManager::RemoveCollection(CollectionId collection) {
  std::lock_guard<std::mutex> lock(table_mu_);
  auto it = table_.lower_bound({collection, 0});
  while (it != table_.end() && it->first.first == collection) {
    it = table_.erase(it);
  }
}

std::vector<SegmentPlacement> PlacementManager::OnNodeGone(NodeId node) {
  std::vector<SegmentPlacement> orphaned;
  std::lock_guard<std::mutex> lock(table_mu_);
  for (auto& [key, entry] : table_) {
    auto& serving = entry.serving;
    const size_t before = serving.size();
    serving.erase(std::remove_if(serving.begin(), serving.end(),
                                 [node](const ReplicaState& r) {
                                   return r.node == node;
                                 }),
                  serving.end());
    if (before != serving.size() && serving.empty()) {
      orphaned.push_back(entry);
    }
  }
  return orphaned;
}

// --- Reads ---------------------------------------------------------------

std::vector<NodeId> PlacementManager::ServingNodes(CollectionId collection,
                                                   SegmentId segment) const {
  std::lock_guard<std::mutex> lock(table_mu_);
  auto it = table_.find({collection, segment});
  if (it == table_.end()) return {};
  std::vector<NodeId> nodes;
  nodes.reserve(it->second.serving.size());
  for (const ReplicaState& replica : it->second.serving) {
    nodes.push_back(replica.node);
  }
  return nodes;
}

bool PlacementManager::IsServing(CollectionId collection,
                                 SegmentId segment) const {
  std::lock_guard<std::mutex> lock(table_mu_);
  return table_.count({collection, segment}) > 0;
}

std::vector<SegmentPlacement> PlacementManager::CollectionSnapshot(
    CollectionId collection) const {
  std::lock_guard<std::mutex> lock(table_mu_);
  std::vector<SegmentPlacement> out;
  for (auto it = table_.lower_bound({collection, 0});
       it != table_.end() && it->first.first == collection; ++it) {
    out.push_back(it->second);
  }
  return out;
}

void PlacementManager::ForEachServing(
    CollectionId collection,
    const std::function<void(SegmentId, const std::vector<ReplicaState>&)>&
        fn) const {
  std::lock_guard<std::mutex> lock(table_mu_);
  for (auto it = table_.lower_bound({collection, 0});
       it != table_.end() && it->first.first == collection; ++it) {
    fn(it->first.second, it->second.serving);
  }
}

int64_t PlacementManager::UnderReplicatedLocked(size_t candidates) const {
  int64_t count = 0;
  for (const auto& [key, entry] : table_) {
    const int32_t effective = static_cast<int32_t>(std::min<size_t>(
        static_cast<size_t>(entry.desired), std::max<size_t>(1, candidates)));
    if (static_cast<int32_t>(entry.serving.size()) < effective) ++count;
  }
  return count;
}

int64_t PlacementManager::UnderReplicatedCount() const {
  // Candidate pool BEFORE the table lock: the host call takes the
  // coordinator lock, which must never be acquired under table_mu_.
  const size_t candidates = host_->RepairCandidates().size();
  int64_t count = 0;
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    count = UnderReplicatedLocked(candidates);
  }
  MetricsRegistry::Global().GetGauge("placement.under_replicated")->Set(count);
  return count;
}

// --- Reconciliation ------------------------------------------------------

int64_t PlacementManager::ReconcileOnce() {
  std::lock_guard<std::mutex> repair_lock(repair_mu_);
  const int64_t planned_epoch = host_->TopologyEpoch();
  auto candidates = host_->RepairCandidates();
  MetricsRegistry::Global().GetCounter("placement.reconcile_passes")->Add(1);
  if (candidates.empty()) {
    std::lock_guard<std::mutex> lock(table_mu_);
    MetricsRegistry::Global()
        .GetGauge("placement.under_replicated")
        ->Set(UnderReplicatedLocked(0));
    return 0;
  }

  // Charge planned assignments against this memory view so one empty node
  // does not absorb every repair in the pass.
  std::map<NodeId, uint64_t> mem(candidates.begin(), candidates.end());

  std::vector<RepairOp> coverage_ops;  // zero-replica groups: run first
  std::vector<RepairOp> ops;
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    for (const auto& [key, entry] : table_) {
      const int32_t effective = static_cast<int32_t>(
          std::min<size_t>(static_cast<size_t>(entry.desired),
                           candidates.size()));
      std::set<NodeId> members;
      for (const ReplicaState& replica : entry.serving) {
        members.insert(replica.node);
      }
      // Top up below-desired groups (node loss / scale-up trigger).
      int32_t deficit = effective - static_cast<int32_t>(members.size());
      while (deficit > 0) {
        NodeId target = kInvalidNodeId;
        uint64_t best = 0;
        for (const auto& [node, bytes] : mem) {
          if (members.count(node)) continue;
          if (target == kInvalidNodeId || bytes < best) {
            target = node;
            best = bytes;
          }
        }
        if (target == kInvalidNodeId) break;
        RepairOp op;
        op.kind = RepairKind::kAdd;
        op.meta = entry.meta;
        op.schema = entry.schema;
        op.version = entry.target_version;
        op.target = target;
        op.trigger = entry.serving.empty() ? "coverage" : "redundancy";
        const uint64_t bytes = ApproxSegmentBytes(op.meta, op.schema.get());
        mem[target] += bytes;
        members.insert(target);
        (entry.serving.empty() ? coverage_ops : ops).push_back(std::move(op));
        --deficit;
      }
      if (deficit <= 0 && !entry.serving.empty()) {
        // Rolling version reload: at most ONE stale replica per group per
        // pass, so a group never has every replica reloading at once.
        for (const ReplicaState& replica : entry.serving) {
          if (replica.version >= entry.target_version) continue;
          if (mem.count(replica.node) == 0) continue;  // draining/unknown
          RepairOp op;
          op.kind = RepairKind::kReload;
          op.meta = entry.meta;
          op.schema = entry.schema;
          op.version = entry.target_version;
          op.target = replica.node;
          op.trigger = "version";
          ops.push_back(std::move(op));
          break;
        }
      }
    }
  }

  // Zero-coverage groups repair first; then cap the pass.
  coverage_ops.insert(coverage_ops.end(),
                      std::make_move_iterator(ops.begin()),
                      std::make_move_iterator(ops.end()));
  const size_t cap = config_.placement_max_repairs_per_cycle > 0
                         ? static_cast<size_t>(
                               config_.placement_max_repairs_per_cycle)
                         : coverage_ops.size();
  if (coverage_ops.size() > cap) coverage_ops.resize(cap);

  const int64_t committed =
      ExecuteRepairs(std::move(coverage_ops), planned_epoch, /*deadline_ms=*/0);

  // Refresh the gauge from post-repair state.
  UnderReplicatedCount();
  return committed;
}

Status PlacementManager::DrainNode(NodeId victim) {
  std::lock_guard<std::mutex> repair_lock(repair_mu_);
  const int64_t t0 = NowMicros();
  const int64_t planned_epoch = host_->TopologyEpoch();
  auto candidates = host_->RepairCandidates();
  std::map<NodeId, uint64_t> mem(candidates.begin(), candidates.end());
  mem.erase(victim);
  if (mem.empty()) {
    return Status::InvalidArgument("drain: no surviving target nodes");
  }

  std::vector<RepairOp> moves;
  std::vector<std::pair<CollectionId, SegmentId>> releases;
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    for (const auto& [key, entry] : table_) {
      bool on_victim = false;
      std::set<NodeId> others;
      for (const ReplicaState& replica : entry.serving) {
        if (replica.node == victim) {
          on_victim = true;
        } else {
          others.insert(replica.node);
        }
      }
      if (!on_victim) continue;
      if (!others.empty()) {
        // Another live replica already serves the group: pure release.
        releases.push_back(key);
        continue;
      }
      NodeId target = kInvalidNodeId;
      uint64_t best = 0;
      for (const auto& [node, bytes] : mem) {
        if (others.count(node)) continue;
        if (target == kInvalidNodeId || bytes < best) {
          target = node;
          best = bytes;
        }
      }
      RepairOp op;
      op.kind = RepairKind::kMove;
      op.meta = entry.meta;
      op.schema = entry.schema;
      op.version = entry.target_version;
      op.target = target;
      op.source = victim;
      op.trigger = "drain";
      mem[target] += ApproxSegmentBytes(op.meta, op.schema.get());
      moves.push_back(std::move(op));
    }
  }

  // Survivor-before-victim, generalized: every sole-copy segment is loaded
  // (and recorded serving) elsewhere BEFORE any victim replica is released.
  const size_t planned = moves.size();
  const int64_t committed = ExecuteRepairs(
      std::move(moves), planned_epoch, config_.placement_drain_timeout_ms);
  if (static_cast<size_t>(committed) != planned) {
    // Epoch moved or a load failed: the victim keeps serving whatever was
    // not moved, so coverage never dips. The caller may retry the drain.
    return Status::Unavailable("drain interrupted; node still serving");
  }

  // Redundant victim replicas: survivors already cover them, release now.
  for (const auto& [collection, segment] : releases) {
    RecordReleased(collection, segment, victim);
    host_->ReleaseReplica(victim, collection, segment);
  }
  MetricsRegistry::Global()
      .GetHistogram("placement.drain_duration_ms")
      ->Observe(static_cast<double>(NowMicros() - t0) / 1000.0);
  return Status::OK();
}

Status PlacementManager::RebalanceNow() {
  std::lock_guard<std::mutex> repair_lock(repair_mu_);
  for (int iter = 0; iter < 256; ++iter) {
    const int64_t planned_epoch = host_->TopologyEpoch();
    auto candidates = host_->RepairCandidates();
    if (candidates.size() < 2) return Status::OK();

    std::map<NodeId, int64_t> replica_count;
    for (const auto& [node, bytes] : candidates) replica_count[node] = 0;
    RepairOp op;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(table_mu_);
      for (const auto& [key, entry] : table_) {
        for (const ReplicaState& replica : entry.serving) {
          auto it = replica_count.find(replica.node);
          if (it != replica_count.end()) ++it->second;
        }
      }
      NodeId max_node = kInvalidNodeId, min_node = kInvalidNodeId;
      int64_t max_count = -1, min_count = INT64_MAX;
      for (const auto& [node, count] : replica_count) {
        if (count > max_count) {
          max_count = count;
          max_node = node;
        }
        if (count < min_count) {
          min_count = count;
          min_node = node;
        }
      }
      if (max_count - min_count <= 1) return Status::OK();
      // Move one replica from the most- to the least-loaded node, skipping
      // groups that already have a copy on the destination.
      for (const auto& [key, entry] : table_) {
        bool on_max = false, on_min = false;
        for (const ReplicaState& replica : entry.serving) {
          if (replica.node == max_node) on_max = true;
          if (replica.node == min_node) on_min = true;
        }
        if (!on_max || on_min) continue;
        op.kind = RepairKind::kMove;
        op.meta = entry.meta;
        op.schema = entry.schema;
        op.version = entry.target_version;
        op.target = min_node;
        op.source = max_node;
        op.trigger = "rebalance";
        found = true;
        break;
      }
    }
    if (!found) return Status::OK();
    if (!ExecuteOne(op, planned_epoch)) return Status::OK();
  }
  return Status::OK();
}

// --- Repair execution ----------------------------------------------------

int64_t PlacementManager::ExecuteRepairs(std::vector<RepairOp> ops,
                                         int64_t planned_epoch,
                                         int64_t deadline_ms) {
  if (ops.empty()) return 0;
  const int64_t deadline_us =
      deadline_ms > 0 ? NowMicros() + deadline_ms * 1000 : 0;
  const size_t concurrency = static_cast<size_t>(std::max<int32_t>(
      1, config_.placement_repair_concurrency));
  std::atomic<size_t> next{0};
  std::atomic<int64_t> committed{0};
  auto worker = [&] {
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= ops.size()) break;
      if (deadline_us > 0 && NowMicros() > deadline_us) break;
      if (ExecuteOne(ops[i], planned_epoch)) {
        committed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  if (concurrency <= 1 || ops.size() == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    const size_t n = std::min(concurrency, ops.size());
    threads.reserve(n);
    for (size_t i = 0; i < n; ++i) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }
  return committed.load(std::memory_order_relaxed);
}

bool PlacementManager::ExecuteOne(const RepairOp& op, int64_t planned_epoch) {
  Span span = Tracer::Global().StartTrace("placement.repair",
                                          /*force_sample=*/true);
  span.Tag("collection", static_cast<int64_t>(op.meta.collection));
  span.Tag("segment", static_cast<int64_t>(op.meta.id));
  span.Tag("target", static_cast<int64_t>(op.target));
  span.Tag("trigger", std::string(op.trigger));

  if (op.target == kInvalidNodeId ||
      host_->TopologyEpoch() != planned_epoch) {
    span.Event("aborted: stale epoch");
    MetricsRegistry::Global().GetCounter("placement.repair_aborts")->Add(1);
    return false;
  }

  Status st = host_->LoadReplica(op.target, op.meta, op.schema);
  if (!st.ok()) {
    span.Event("load failed: " + st.ToString());
    MetricsRegistry::Global().GetCounter("placement.repair_failures")->Add(1);
    return false;
  }

  if (!CommitRepair(op, planned_epoch)) {
    // Lost the epoch race after loading: undo so a stale decision never
    // fights the failover/drain that bumped the epoch.
    span.Event("commit fenced: undoing load");
    host_->ReleaseReplica(op.target, op.meta.collection, op.meta.id);
    MetricsRegistry::Global().GetCounter("placement.repair_aborts")->Add(1);
    return false;
  }

  if (op.kind == RepairKind::kMove && op.source != kInvalidNodeId) {
    RecordReleased(op.meta.collection, op.meta.id, op.source);
    host_->ReleaseReplica(op.source, op.meta.collection, op.meta.id);
  }

  MetricsRegistry::Global()
      .GetCounter("placement.repair_ops", {{"trigger", op.trigger}})
      ->Add(1);
  MetricsRegistry::Global()
      .GetCounter("placement.repair_bytes")
      ->Add(static_cast<int64_t>(ApproxSegmentBytes(op.meta,
                                                    op.schema.get())));
  return true;
}

bool PlacementManager::CommitRepair(const RepairOp& op,
                                    int64_t planned_epoch) {
  std::lock_guard<std::mutex> lock(table_mu_);
  // Epoch check under table_mu_: a failover bumps the epoch BEFORE it takes
  // table_mu_ in OnNodeGone, so either this commit lands first (and the
  // failover strips it like any other replica) or the bump is visible here
  // and the repair aborts. TopologyEpoch() is a lock-free atomic read.
  if (host_->TopologyEpoch() != planned_epoch) return false;
  auto it = table_.find({op.meta.collection, op.meta.id});
  if (it == table_.end()) return false;  // segment released/compacted away
  for (ReplicaState& replica : it->second.serving) {
    if (replica.node == op.target) {
      replica.version = op.version;
      return true;
    }
  }
  it->second.serving.push_back(ReplicaState{op.target, op.version});
  return true;
}

}  // namespace manu
