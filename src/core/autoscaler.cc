#include "core/autoscaler.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/metrics.h"
#include "core/manu.h"

namespace manu {

int32_t AutoScaler::BrownoutStage() const {
  if (brownout_probe_) return brownout_probe_();
  return db_->proxy()->admission().stage();
}

int32_t AutoScaler::Evaluate(double avg_latency_ms) {
  const int32_t current = static_cast<int32_t>(db_->NumQueryNodes());
  int32_t target = current;

  if (avg_latency_ms > policy_.scale_up_above_ms) {
    ++above_streak_;
    below_streak_ = 0;
    if (above_streak_ >= policy_.hysteresis) {
      target = static_cast<int32_t>(
          std::ceil(current * policy_.up_factor));
      above_streak_ = 0;
    }
  } else if (avg_latency_ms < policy_.scale_down_below_ms) {
    // Low latency while the brownout ladder is engaged is an artifact of
    // shedding, not spare capacity: degraded/rejected requests keep the
    // measured latency low precisely because the system is overloaded.
    // Removing nodes now would deepen the overload, so hold the fleet.
    if (BrownoutStage() >= 1) {
      below_streak_ = 0;
      MetricsRegistry::Global()
          .GetCounter("autoscaler.scale_down_suppressed")
          ->Add(1);
      MANU_LOG_INFO << "autoscaler: scale-down suppressed (brownout stage "
                    << BrownoutStage() << ")";
      return current;
    }
    ++below_streak_;
    above_streak_ = 0;
    if (below_streak_ >= policy_.hysteresis) {
      target = std::max(1, static_cast<int32_t>(
                               std::floor(current * policy_.down_factor)));
      below_streak_ = 0;
    }
  } else {
    above_streak_ = 0;
    below_streak_ = 0;
  }

  target = std::clamp(target, policy_.min_nodes, policy_.max_nodes);
  if (target != current) {
    MANU_LOG_INFO << "autoscaler: latency " << avg_latency_ms << "ms, nodes "
                  << current << " -> " << target;
    Status st = db_->ScaleQueryNodes(target);
    if (!st.ok()) {
      MANU_LOG_WARN << "autoscaler: scale failed: " << st.ToString();
      return current;
    }
  }
  return target;
}

}  // namespace manu
