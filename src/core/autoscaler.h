#ifndef MANU_CORE_AUTOSCALER_H_
#define MANU_CORE_AUTOSCALER_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "common/status.h"

namespace manu {

class ManuInstance;

/// Scaling policy from the Figure 9 experiment: "Manu is configured to
/// reduce query nodes by 0.5x when search latency is shorter than 100 ms
/// and add query nodes to 2x when search latency is over 150 ms".
struct AutoScalerPolicy {
  double scale_down_below_ms = 100.0;
  double scale_up_above_ms = 150.0;
  double up_factor = 2.0;
  double down_factor = 0.5;
  int32_t min_nodes = 1;
  int32_t max_nodes = 32;
  /// Consecutive evaluations a threshold must hold before acting (guards
  /// against reacting to one noisy window).
  int32_t hysteresis = 1;
};

/// Reactive query-node autoscaler. The driving loop (a bench harness or an
/// operator cron) feeds it one latency observation per evaluation window;
/// Evaluate() applies the policy and resizes the query-node fleet through
/// ManuInstance::ScaleQueryNodes.
class AutoScaler {
 public:
  AutoScaler(ManuInstance* db, AutoScalerPolicy policy)
      : db_(db), policy_(policy) {}

  /// Feeds the average search latency of the last window; returns the node
  /// count after any scaling action.
  int32_t Evaluate(double avg_latency_ms);

  const AutoScalerPolicy& policy() const { return policy_; }

  /// Test hook: overrides where the brownout stage is read from (default:
  /// the instance proxy's admission controller). Scale-down is suppressed
  /// at stage >= 1 — shedding load and removing capacity at the same time
  /// fight each other.
  void SetBrownoutProbe(std::function<int32_t()> probe) {
    brownout_probe_ = std::move(probe);
  }

 private:
  int32_t BrownoutStage() const;

  ManuInstance* db_;
  AutoScalerPolicy policy_;
  std::function<int32_t()> brownout_probe_;
  int32_t above_streak_ = 0;
  int32_t below_streak_ = 0;
};

}  // namespace manu

#endif  // MANU_CORE_AUTOSCALER_H_
