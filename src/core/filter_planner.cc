#include "core/filter_planner.h"

namespace manu {

const char* FilterStrategyName(FilterStrategy s) {
  switch (s) {
    case FilterStrategy::kNone:         return "none";
    case FilterStrategy::kLegacy:       return "legacy";
    case FilterStrategy::kPostScan:     return "postscan";
    case FilterStrategy::kPreFilter:    return "prefilter";
    case FilterStrategy::kTraversal:    return "traversal";
    case FilterStrategy::kBruteMatches: return "brute_matches";
  }
  return "unknown";
}

bool SupportsFilteredTraversal(IndexType type) {
  switch (type) {
    case IndexType::kHnsw:
    case IndexType::kIvfFlat:
    case IndexType::kIvfHnsw:
      return true;
    default:
      return false;
  }
}

FilterPlan PlanFilter(const FilterPlannerParams& params, double selectivity,
                      bool has_index, IndexType index_type) {
  FilterPlan plan;
  plan.selectivity = selectivity;
  if (params.force != FilterStrategy::kNone) {
    plan.strategy = params.force;
    return plan;
  }
  // Cost model, in expected distance computations over n rows:
  //   brute-over-matches:  sel * n            (plus n bitset tests)
  //   pre-filter scan:     index cost, wasted work ~ (1 - sel) of it
  //   filtered traversal:  index cost with the waste pruned, but beam /
  //                        probe inflation ~ 1/sel, profitable only while
  //                        the mask is sparse enough to prune real work.
  if (!has_index || selectivity < params.brute_threshold) {
    // Without a full-coverage index every path is a scan, and scanning only
    // the matches is never worse than scanning everything.
    plan.strategy = FilterStrategy::kBruteMatches;
    return plan;
  }
  if (selectivity < params.prefilter_threshold &&
      SupportsFilteredTraversal(index_type)) {
    plan.strategy = FilterStrategy::kTraversal;
    return plan;
  }
  plan.strategy = FilterStrategy::kPreFilter;
  return plan;
}

}  // namespace manu
