#include "core/data_coord.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <unordered_set>

#include "common/logging.h"
#include "common/metrics.h"
#include "core/data_node.h"
#include "core/lease.h"
#include "storage/binlog.h"
#include "wal/message.h"

namespace manu {

namespace {
constexpr char kNextSegmentIdKey[] = "id/next_segment";
}  // namespace

DataCoordinator::DataCoordinator(const CoreContext& ctx) : ctx_(ctx) {}

void DataCoordinator::OnCollectionCreated(const CollectionMeta& meta) {
  std::lock_guard<std::mutex> lk(mu_);
  shards_[meta.id] = meta.num_shards;
  schemas_[meta.id] = std::make_shared<const CollectionSchema>(meta.schema);
}

void DataCoordinator::OnCollectionDropped(CollectionId collection) {
  std::lock_guard<std::mutex> lk(mu_);
  shards_.erase(collection);
  schemas_.erase(collection);
  std::erase_if(alloc_,
                [&](const auto& kv) { return kv.first.first == collection; });
  std::erase_if(segments_,
                [&](const auto& kv) { return kv.first.first == collection; });
  std::erase_if(channel_owner_,
                [&](const auto& kv) { return kv.first.first == collection; });
  allocated_.erase(collection);
}

void DataCoordinator::AddDataNode(DataNode* node) {
  std::lock_guard<std::mutex> lk(mu_);
  data_nodes_.push_back(node);
}

Status DataCoordinator::AssignShardChannels(const CollectionMeta& meta,
                                            bool replay_from_floor) {
  struct Assignment {
    ShardId shard;
    DataNode* node;
    Timestamp replay_from;
  };
  std::vector<Assignment> plan;
  std::shared_ptr<const CollectionSchema> schema;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (data_nodes_.empty()) {
      return Status::Unavailable("no data nodes registered");
    }
    auto it = schemas_.find(meta.id);
    schema = it != schemas_.end()
                 ? it->second
                 : std::make_shared<const CollectionSchema>(meta.schema);
    schemas_[meta.id] = schema;
    for (ShardId shard = 0; shard < meta.num_shards; ++shard) {
      DataNode* node = data_nodes_[shard % data_nodes_.size()];
      const Timestamp floor =
          replay_from_floor ? ArchivedFloorLocked(meta.id, shard) : 0;
      plan.push_back({shard, node, floor == 0 ? Timestamp{0} : floor + 1});
      channel_owner_[{meta.id, shard}] = node->id();
    }
  }
  for (const Assignment& a : plan) {
    a.node->AssignChannel(meta.id, a.shard, schema, a.replay_from);
  }
  return Status::OK();
}

Status DataCoordinator::OnDataNodeDead(NodeId node) {
  struct Move {
    CollectionId collection;
    ShardId shard;
    DataNode* to;
    Timestamp replay_from;
    std::shared_ptr<const CollectionSchema> schema;
  };
  std::vector<Move> moves;
  {
    std::lock_guard<std::mutex> lk(mu_);
    std::erase_if(data_nodes_, [&](DataNode* n) { return n->id() == node; });
    if (data_nodes_.empty()) {
      return Status::Unavailable("no surviving data node for failover");
    }
    size_t next = 0;
    for (auto& [key, owner] : channel_owner_) {
      if (owner != node) continue;
      DataNode* to = data_nodes_[next++ % data_nodes_.size()];
      const Timestamp floor = ArchivedFloorLocked(key.first, key.second);
      moves.push_back({key.first, key.second, to,
                       floor == 0 ? Timestamp{0} : floor + 1,
                       schemas_[key.first]});
      owner = to->id();
    }
  }
  for (const Move& m : moves) {
    m.to->AssignChannel(m.collection, m.shard, m.schema, m.replay_from);
    MANU_LOG_INFO << "data coord: shard channel (" << m.collection << ", "
                  << m.shard << ") handed to node " << m.to->id()
                  << ", replaying WAL from lsn " << m.replay_from;
  }
  return Status::OK();
}

Timestamp DataCoordinator::ArchivedFloorLocked(CollectionId collection,
                                               ShardId shard) const {
  Timestamp floor = 0;
  for (const auto& [key, meta] : segments_) {
    if (key.first != collection) continue;
    if (meta.shard != shard || meta.from_compaction) continue;
    floor = std::max(floor, meta.last_lsn);
  }
  return floor;
}

Timestamp DataCoordinator::ArchivedFloor(CollectionId collection,
                                         ShardId shard) const {
  std::lock_guard<std::mutex> lk(mu_);
  return ArchivedFloorLocked(collection, shard);
}

NodeId DataCoordinator::ChannelOwner(CollectionId collection,
                                     ShardId shard) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = channel_owner_.find({collection, shard});
  return it == channel_owner_.end() ? kInvalidNodeId : it->second;
}

void DataCoordinator::Restore(const std::vector<CollectionMeta>& collections) {
  std::lock_guard<std::mutex> lk(mu_);
  std::set<CollectionId> live;
  for (const CollectionMeta& meta : collections) {
    shards_[meta.id] = meta.num_shards;
    schemas_[meta.id] = std::make_shared<const CollectionSchema>(meta.schema);
    live.insert(meta.id);
  }
  for (const auto& [key, entry] : ctx_.meta->List("segment/")) {
    auto meta = SegmentMeta::Deserialize(entry.value);
    if (!meta.ok()) {
      MANU_LOG_WARN << "data coord restore: bad segment meta at " << key;
      continue;
    }
    if (live.count(meta.value().collection) == 0) continue;
    segments_[{meta.value().collection, meta.value().id}] = meta.value();
    allocated_[meta.value().collection].push_back(meta.value().id);
  }
}

SegmentId DataCoordinator::NextSegmentId() {
  // CAS-persisted counter: ids stay unique across crash recovery (a
  // recovered instance must never reuse a sealed segment's id).
  for (;;) {
    int64_t next = 1;
    int64_t revision = 0;
    auto current = ctx_.meta->Get(kNextSegmentIdKey);
    if (current.ok()) {
      next = std::atoll(current.value().value.c_str());
      revision = current.value().mod_revision;
    }
    auto cas = ctx_.meta->CompareAndSwap(kNextSegmentIdKey, revision,
                                         std::to_string(next + 1));
    if (cas.ok()) return next;
  }
}

SegmentId DataCoordinator::PeekNextSegmentId() const {
  auto current = ctx_.meta->Get(kNextSegmentIdKey);
  if (!current.ok()) return 1;
  return std::atoll(current.value().value.c_str());
}

Result<SegmentId> DataCoordinator::AllocateSegment(CollectionId collection,
                                                   ShardId shard,
                                                   int64_t rows,
                                                   uint64_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  if (shards_.count(collection) == 0) {
    return Status::NotFound("collection not registered with data coord");
  }
  ShardAlloc& a = alloc_[{collection, shard}];
  const bool over_rows = ctx_.config.segment_seal_rows > 0 &&
                         a.rows + rows > ctx_.config.segment_seal_rows;
  const bool over_bytes = a.bytes + bytes > ctx_.config.segment_seal_bytes;
  if (a.current == kInvalidSegmentId || over_rows || over_bytes) {
    a.current = NextSegmentId();
    a.rows = 0;
    a.bytes = 0;
    allocated_[collection].push_back(a.current);
  }
  a.rows += rows;
  a.bytes += bytes;
  a.last_alloc_ms = NowMs();
  return a.current;
}

void DataCoordinator::PublishFlush(CollectionId collection, ShardId shard,
                                   SegmentId up_to) const {
  LogEntry flush;
  flush.type = LogEntryType::kFlush;
  flush.timestamp = ctx_.tso->Allocate();
  flush.collection = collection;
  flush.shard = shard;
  flush.segment = up_to;  // Seal every buffered segment with id < up_to.
  ctx_.mq->Publish(ShardChannelName(collection, shard), std::move(flush));
}

SegmentId DataCoordinator::RollShardLocked(CollectionId collection,
                                           ShardId shard,
                                           SegmentId* rolled) {
  ShardAlloc& a = alloc_[{collection, shard}];
  *rolled = a.current;
  a.current = kInvalidSegmentId;
  a.rows = 0;
  a.bytes = 0;
  // The barrier is "every segment below the *next* id": rolling lazily means
  // the next allocation picks a fresh id greater than anything sealed here.
  return PeekNextSegmentId();
}

Result<std::vector<SegmentId>> DataCoordinator::Flush(
    CollectionId collection) {
  std::vector<std::pair<ShardId, SegmentId>> barriers;
  std::vector<SegmentId> rolled_ids;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = shards_.find(collection);
    if (it == shards_.end()) {
      return Status::NotFound("collection not registered with data coord");
    }
    for (ShardId shard = 0; shard < it->second; ++shard) {
      SegmentId rolled = kInvalidSegmentId;
      const SegmentId barrier = RollShardLocked(collection, shard, &rolled);
      barriers.emplace_back(shard, barrier);
      if (rolled != kInvalidSegmentId) rolled_ids.push_back(rolled);
    }
  }
  for (const auto& [shard, up_to] : barriers) {
    PublishFlush(collection, shard, up_to);
  }
  return rolled_ids;
}

void DataCoordinator::CheckIdleSegments() {
  const int64_t now = NowMs();
  std::vector<std::pair<std::pair<CollectionId, ShardId>, SegmentId>> idle;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [key, a] : alloc_) {
      if (a.current == kInvalidSegmentId) continue;
      if (now - a.last_alloc_ms < ctx_.config.segment_idle_seal_ms) continue;
      SegmentId rolled = kInvalidSegmentId;
      const SegmentId barrier = RollShardLocked(key.first, key.second,
                                                &rolled);
      if (rolled != kInvalidSegmentId) idle.emplace_back(key, barrier);
    }
  }
  for (const auto& [key, up_to] : idle) {
    PublishFlush(key.first, key.second, up_to);
  }
}

Status DataCoordinator::RegisterSealed(const SegmentMeta& meta) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    segments_[{meta.collection, meta.id}] = meta;
  }
  ctx_.meta->Put(SegmentMetaKey(meta.collection, meta.id), meta.Serialize());
  return Status::OK();
}

Status DataCoordinator::RegisterIndex(CollectionId collection,
                                      SegmentId segment, FieldId field,
                                      const std::string& index_path,
                                      int32_t version) {
  SegmentMeta copy;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = segments_.find({collection, segment});
    if (it == segments_.end()) {
      return Status::NotFound("segment not registered: " +
                              std::to_string(segment));
    }
    it->second.index_paths[field] = index_path;
    it->second.index_versions[field] = version;
    it->second.state = SegmentState::kIndexed;
    copy = it->second;
  }
  ctx_.meta->Put(SegmentMetaKey(collection, segment), copy.Serialize());
  return Status::OK();
}

Status DataCoordinator::RegisterFilterIndex(CollectionId collection,
                                            SegmentId segment,
                                            const std::string& path,
                                            int32_t version) {
  SegmentMeta copy;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = segments_.find({collection, segment});
    if (it == segments_.end()) {
      return Status::NotFound("segment not registered: " +
                              std::to_string(segment));
    }
    it->second.filter_index_path = path;
    it->second.filter_index_version = version;
    copy = it->second;
  }
  ctx_.meta->Put(SegmentMetaKey(collection, segment), copy.Serialize());
  return Status::OK();
}

Result<SegmentMeta> DataCoordinator::GetSegment(CollectionId collection,
                                                SegmentId segment) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = segments_.find({collection, segment});
  if (it == segments_.end()) {
    return Status::NotFound("segment: " + std::to_string(segment));
  }
  return it->second;
}

std::vector<SegmentId> DataCoordinator::AllocatedSegments(
    CollectionId collection) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = allocated_.find(collection);
  return it == allocated_.end() ? std::vector<SegmentId>{} : it->second;
}

std::vector<SegmentMeta> DataCoordinator::ListSegments(
    CollectionId collection) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<SegmentMeta> out;
  for (const auto& [key, meta] : segments_) {
    if (key.first == collection) out.push_back(meta);
  }
  return out;
}

Result<std::vector<SegmentId>> DataCoordinator::CompactSegments(
    CollectionId collection, const std::vector<int64_t>& deleted_pks,
    int64_t small_rows) {
  const std::unordered_set<int64_t> deleted(deleted_pks.begin(),
                                            deleted_pks.end());
  // Candidates: sealed/indexed segments that are small, or that carry
  // enough tombstoned rows to be worth rewriting.
  std::vector<SegmentMeta> candidates;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [key, meta] : segments_) {
      if (key.first != collection) continue;
      if (meta.state != SegmentState::kSealed &&
          meta.state != SegmentState::kIndexed) {
        continue;
      }
      if (meta.num_rows < small_rows) {
        candidates.push_back(meta);
      }
    }
  }
  // Deletion-driven candidates need pk inspection; piggyback on the merge
  // read below by including any sealed segment whose manifest shows enough
  // deleted pks.
  if (!deleted.empty()) {
    for (const SegmentMeta& meta : ListSegments(collection)) {
      if (meta.state != SegmentState::kSealed &&
          meta.state != SegmentState::kIndexed) {
        continue;
      }
      if (meta.num_rows >= small_rows) {
        auto manifest = binlog::ReadManifest(ctx_.store, meta.binlog_path);
        if (!manifest.ok()) continue;
        int64_t dead = 0;
        for (int64_t pk : manifest.value().primary_keys) {
          dead += deleted.count(pk);
        }
        if (static_cast<double>(dead) >
            ctx_.config.compact_deleted_ratio *
                static_cast<double>(meta.num_rows)) {
          candidates.push_back(meta);
        }
      }
    }
  }
  // Dedup candidates by id.
  std::sort(candidates.begin(), candidates.end(),
            [](const SegmentMeta& a, const SegmentMeta& b) {
              return a.id < b.id;
            });
  candidates.erase(std::unique(candidates.begin(), candidates.end(),
                               [](const SegmentMeta& a,
                                  const SegmentMeta& b) {
                                 return a.id == b.id;
                               }),
                   candidates.end());
  if (candidates.size() < 2 &&
      (candidates.empty() || deleted.empty())) {
    return std::vector<SegmentId>{};  // Nothing worth rewriting.
  }

  // Merge all candidates into one segment (bench scales keep this small;
  // production would bin-pack toward the seal size).
  struct Row {
    Timestamp ts;
    SegmentId source;
    int64_t offset;
  };
  std::vector<EntityBatch> batches;
  std::vector<Row> order;
  std::vector<SegmentId> dropped;
  for (const SegmentMeta& meta : candidates) {
    auto batch = binlog::ReadSegment(ctx_.store, meta.binlog_path);
    if (!batch.ok()) continue;
    const int64_t source = static_cast<int64_t>(batches.size());
    for (int64_t row = 0; row < batch.value().NumRows(); ++row) {
      if (deleted.count(batch.value().primary_keys[row]) > 0) continue;
      order.push_back({batch.value().timestamps.empty()
                           ? 0
                           : batch.value().timestamps[row],
                       source, row});
    }
    batches.push_back(std::move(batch).value());
    dropped.push_back(meta.id);
  }
  if (batches.empty()) return std::vector<SegmentId>{};
  // Rows must stay LSN-ordered so MVCC prefix visibility keeps working.
  std::stable_sort(order.begin(), order.end(),
                   [](const Row& a, const Row& b) { return a.ts < b.ts; });

  EntityBatch merged;
  Timestamp last_lsn = 0;
  for (const Row& row : order) {
    EntityBatch single = batches[row.source].Slice(row.offset, row.offset + 1);
    if (merged.NumRows() == 0) {
      merged = std::move(single);
    } else {
      MANU_RETURN_NOT_OK(merged.Append(single));
    }
    last_lsn = std::max(last_lsn, row.ts);
  }

  SegmentMeta result;
  result.id = NextSegmentId();
  result.collection = collection;
  result.shard = candidates.front().shard;  // Nominal; spans shards.
  result.state = SegmentState::kSealed;
  result.num_rows = merged.NumRows();
  result.binlog_path =
      "binlog/c" + std::to_string(collection) + "/seg" +
      std::to_string(result.id);
  result.last_lsn = last_lsn;
  result.from_compaction = true;
  if (merged.NumRows() > 0) {
    MANU_RETURN_NOT_OK(
        binlog::WriteSegment(ctx_.store, result.binlog_path, merged));
    MANU_RETURN_NOT_OK(RegisterSealed(result));
  }

  // Mark the inputs dropped, durably: a recovered instance must not reload
  // (and resurrect the physically-deleted rows of) compacted-away segments.
  std::vector<std::pair<std::string, std::string>> drop_puts;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (SegmentId id : dropped) {
      auto it = segments_.find({collection, id});
      if (it != segments_.end()) {
        it->second.state = SegmentState::kDropped;
        drop_puts.emplace_back(SegmentMetaKey(collection, id),
                               it->second.Serialize());
      }
    }
  }
  for (const auto& [key, value] : drop_puts) ctx_.meta->Put(key, value);

  // Pipeline events: the merged segment enters via kSegmentSealed; the
  // kCompaction notice tells the query coordinator which segments to
  // release once the merged one is served.
  if (merged.NumRows() > 0) {
    LogEntry sealed;
    sealed.type = LogEntryType::kSegmentSealed;
    sealed.timestamp = ctx_.tso->Allocate();
    sealed.collection = collection;
    sealed.segment = result.id;
    sealed.payload = result.Serialize();
    ctx_.mq->Publish(CoordChannelName(), std::move(sealed));
  }
  LogEntry note;
  note.type = LogEntryType::kCompaction;
  note.timestamp = ctx_.tso->Allocate();
  note.collection = collection;
  note.segment = merged.NumRows() > 0 ? result.id : kInvalidSegmentId;
  BinaryWriter w;
  w.PutVector(dropped);
  note.payload = w.Release();
  ctx_.mq->Publish(CoordChannelName(), std::move(note));

  MANU_LOG_INFO << "compacted " << dropped.size() << " segments into "
                << result.id << " (" << merged.NumRows() << " rows)";
  if (merged.NumRows() == 0) return std::vector<SegmentId>{};
  return std::vector<SegmentId>{result.id};
}

Result<std::string> DataCoordinator::WriteCheckpoint(
    CollectionId collection) {
  // Commit-point fence (checkpoint write): a superseded instance's data
  // coordinator must not publish checkpoints over the new owner's.
  if (ctx_.leases != nullptr) {
    MANU_RETURN_NOT_OK(ctx_.leases->CheckInstanceEpoch(ctx_.instance_epoch));
  }
  const Timestamp ts = ctx_.tso->Allocate();
  BinaryWriter w;
  {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<const SegmentMeta*> metas;
    for (const auto& [key, meta] : segments_) {
      if (key.first == collection) metas.push_back(&meta);
    }
    w.PutU64(ts);
    w.PutU32(static_cast<uint32_t>(metas.size()));
    for (const SegmentMeta* m : metas) w.PutString(m->Serialize());
  }
  // Zero-padded physical-ms key keeps checkpoints time-ordered in List().
  char name[32];
  std::snprintf(name, sizeof(name), "%016llu",
                static_cast<unsigned long long>(PhysicalMs(ts)));
  const std::string path =
      "checkpoint/c" + std::to_string(collection) + "/" + name;
  MANU_RETURN_NOT_OK(ctx_.store->Put(path, w.Release()));
  return path;
}

Result<std::vector<SegmentMeta>> DataCoordinator::ReadCheckpoint(
    CollectionId collection, Timestamp ts) const {
  const std::string prefix = "checkpoint/c" + std::to_string(collection) + "/";
  std::string best;
  for (const std::string& path : ctx_.store->List(prefix)) {
    const uint64_t cp_ms = std::stoull(path.substr(prefix.size()));
    if (cp_ms <= PhysicalMs(ts)) best = path;  // List is sorted ascending.
  }
  if (best.empty()) {
    return Status::NotFound("no checkpoint at or before requested time");
  }
  MANU_ASSIGN_OR_RETURN(std::string data, ctx_.store->Get(best));
  BinaryReader r(data);
  MANU_ASSIGN_OR_RETURN(uint64_t cp_ts, r.GetU64());
  (void)cp_ts;
  MANU_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  std::vector<SegmentMeta> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    MANU_ASSIGN_OR_RETURN(std::string blob, r.GetString());
    MANU_ASSIGN_OR_RETURN(SegmentMeta meta, SegmentMeta::Deserialize(blob));
    out.push_back(std::move(meta));
  }
  return out;
}

}  // namespace manu
