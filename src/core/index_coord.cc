#include "core/index_coord.h"

#include "common/logging.h"

namespace manu {

IndexCoordinator::IndexCoordinator(const CoreContext& ctx,
                                   DataCoordinator* data_coord,
                                   RootCoordinator* root_coord)
    : ctx_(ctx), data_coord_(data_coord), root_coord_(root_coord) {}

IndexCoordinator::~IndexCoordinator() { Stop(); }

void IndexCoordinator::AddIndexNode(IndexNode* node) {
  std::lock_guard<std::mutex> lk(mu_);
  nodes_.push_back(node);
}

void IndexCoordinator::RemoveIndexNode(NodeId id) {
  std::lock_guard<std::mutex> lk(mu_);
  std::erase_if(nodes_, [&](IndexNode* n) { return n->id() == id; });
}

void IndexCoordinator::Start() {
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
}

void IndexCoordinator::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void IndexCoordinator::Run() {
  auto sub = ctx_.mq->Subscribe(CoordChannelName(),
                                SubscribePosition::kEarliest);
  while (!stop_.load(std::memory_order_acquire)) {
    auto entries = sub->Poll(
        ctx_.config.poll_batch,
        std::chrono::milliseconds(ctx_.config.poll_timeout_ms));
    for (const auto& entry : entries) {
      if (entry->type != LogEntryType::kSegmentSealed) continue;
      auto meta = SegmentMeta::Deserialize(entry->payload);
      if (!meta.ok()) {
        MANU_LOG_ERROR << "index coord: bad sealed payload";
        continue;
      }
      Dispatch(meta.value());
    }
  }
}

void IndexCoordinator::Dispatch(const SegmentMeta& segment) {
  auto collection = root_coord_->GetCollectionById(segment.collection);
  if (!collection.ok()) return;  // Dropped concurrently.
  const CollectionMeta& meta = collection.value();

  // The kSegmentSealed payload carries the meta as of seal time, which is
  // stale when this is a coordination-channel *replay* (crash recovery):
  // consult the data coordinator's current view so already-built (or
  // dropped) segments are not re-dispatched.
  SegmentMeta current = segment;
  auto latest = data_coord_->GetSegment(segment.collection, segment.id);
  if (latest.ok()) current = latest.value();
  if (current.state == SegmentState::kDropped) return;

  std::lock_guard<std::mutex> lk(mu_);
  if (nodes_.empty()) {
    MANU_LOG_WARN << "index coord: no index nodes registered";
    return;
  }
  // Attribute-index artifact: independent of vector-index declarations
  // (flat collections benefit from filtered scans too), versioned with the
  // collection index_version so DeclareIndex bumps trigger a rebuild.
  if (ctx_.config.filter_index_enable &&
      (current.filter_index_path.empty() ||
       current.filter_index_version < meta.index_version)) {
    IndexNode* node = nodes_[next_node_ % nodes_.size()];
    ++next_node_;
    node->SubmitFilterBuild(current, meta.index_version);
  }
  if (meta.index_params.empty()) return;  // No index declared: stay flat.
  for (const auto& [field, params] : meta.index_params) {
    auto built = current.index_versions.find(field);
    if (built != current.index_versions.end() &&
        built->second >= meta.index_version) {
      continue;  // Up to date under the current declaration.
    }
    IndexNode* node = nodes_[next_node_ % nodes_.size()];
    ++next_node_;
    node->SubmitBuild(current, field, params, meta.index_version);
  }
}

Status IndexCoordinator::RequestBuildAll(CollectionId collection) {
  for (const SegmentMeta& segment : data_coord_->ListSegments(collection)) {
    if (segment.state == SegmentState::kDropped) continue;
    Dispatch(segment);
  }
  return Status::OK();
}

void IndexCoordinator::WaitIdle() const {
  std::vector<IndexNode*> nodes;
  {
    std::lock_guard<std::mutex> lk(mu_);
    nodes = nodes_;
  }
  for (IndexNode* node : nodes) node->WaitIdle();
}

}  // namespace manu
