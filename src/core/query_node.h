#ifndef MANU_CORE_QUERY_NODE_H_
#define MANU_CORE_QUERY_NODE_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/threadpool.h"
#include "common/trace.h"
#include "core/collection_meta.h"
#include "core/context.h"
#include "core/lease.h"
#include "core/segment.h"

namespace manu {

/// One (field, query vector, weight) search target. A single target is a
/// classic vector search; several targets form a multi-vector search whose
/// entity score is the weighted sum of per-field canonical scores.
struct SearchTarget {
  FieldId field = 0;
  const float* query = nullptr;
  float weight = 1.0f;
};

/// Node-level search request, produced by the proxy.
struct NodeSearchRequest {
  CollectionId collection = kInvalidCollectionId;
  std::vector<SearchTarget> targets;
  SearchParams params;
  /// Query issue LSN Lr: both the MVCC read point and the consistency
  /// reference (time-travel queries pass a historical value).
  Timestamp read_ts = kMaxTimestamp;
  /// Staleness tolerance tau in ms; <0 means infinity (eventual).
  int64_t staleness_ms = -1;
  /// Absolute deadline in NowMicros() terms; 0 = none. Set by the proxy
  /// from its per-node wait bound so that a straggling node stops fanning
  /// out new segment tasks once the proxy has abandoned the query, instead
  /// of burning its executor on a result nobody will read. Checked at
  /// admission (a dead-on-arrival request never claims an executor slot),
  /// again when the request leaves the queue, and before every segment
  /// claim.
  int64_t deadline_us = 0;
  /// Sealed segments this node should scan, SORTED ascending; empty = all
  /// local sealed segments (the pre-replica-routing behavior, and what
  /// direct callers that bypass the coordinator plan get). The proxy fills
  /// it from QueryCoordinator::PlanFor so that with replica_factor > 1 each
  /// sealed segment is scanned by exactly one (load-chosen) owner instead
  /// of every owner. Growing segments are always scanned — they exist only
  /// on the shard primary.
  std::vector<SegmentId> sealed_filter;
  const FilterExpr* filter = nullptr;
  /// Overrides the filter planner's strategy choice on every segment
  /// (kNone = let the planner / legacy heuristic decide). Bench and
  /// equivalence-test hook; ignored when `filter` is null.
  FilterStrategy force_filter_strategy = FilterStrategy::kNone;
  /// Tracing context of the originating request (inactive by default, which
  /// makes every span on the node path a no-op). Spans opened here parent
  /// to the proxy's fan-out (or retry) span.
  TraceContext trace;
};

/// Query node (Sections 3.2/3.6): serves vector searches over its local
/// share of segments. Data arrives from the three sources the paper names:
/// the WAL (growing segments, consumed by this node's pump thread), index
/// files and binlog (sealed segments loaded from object storage on index
/// completion, rebalances and recovery).
class QueryNode {
 public:
  QueryNode(NodeId id, const CoreContext& ctx);
  ~QueryNode();

  NodeId id() const { return id_; }

  void Start();
  void Stop();

  // --- Serving assignments (driven by the query coordinator) ---

  /// Subscribes to a shard channel (from the earliest retained offset, so a
  /// late subscriber replays history — the recovery path). Only the shard's
  /// *primary* node materializes growing segments from inserts; every
  /// serving node still consumes the channel for deletes and time-ticks,
  /// which keeps tombstones and the consistency gate correct on nodes that
  /// hold only sealed segments of that shard.
  void AddChannel(CollectionId collection, ShardId shard,
                  std::shared_ptr<const CollectionSchema> schema,
                  bool primary);
  /// Promotes this node to primary for a shard it already follows,
  /// replaying the channel from the start to rebuild growing state.
  void PromoteChannel(CollectionId collection, ShardId shard);
  /// Demotes and drops growing segments of the shard (primary moved away).
  void DemoteChannel(CollectionId collection, ShardId shard);
  void RemoveCollection(CollectionId collection);

  /// Loads a sealed segment (binlog + index if present) from object
  /// storage; applies buffered deletes, backfilling tombstones the buffer
  /// compaction already pruned from the retained WAL (sealed binlogs are
  /// inserts-only and this node's channel subscriptions are past those
  /// entries, so without the backfill a handed-off segment would resurrect
  /// rows deleted before the compaction floor); replaces any growing twin.
  Status LoadSealedSegment(const SegmentMeta& meta,
                           std::shared_ptr<const CollectionSchema> schema);

  /// Drops the growing copy of `segment` (after its sealed twin is loaded
  /// somewhere).
  void DropGrowing(CollectionId collection, SegmentId segment);
  /// Releases a sealed segment (scale-down / rebalance).
  void ReleaseSegment(CollectionId collection, SegmentId segment);

  // --- Search ---

  /// Node-local search with the delta-consistency gate: waits until this
  /// node's consumed time-ticks satisfy Lr - Ls < tau, then fans the
  /// per-segment searches across the executor pool and reduces to a
  /// node-level top-k (Section 3.6 two-phase reduce; the proxy does the
  /// final phase).
  ///
  /// Executes on the node's private executor pool (config.query_threads
  /// wide): a node's compute capacity is bounded, which is what makes
  /// query-node scaling (Figures 9/10) meaningful in an in-process
  /// simulation — callers beyond the pool width queue. A single query on
  /// an idle node uses the whole pool (intra-query parallelism, Fig. 8);
  /// under concurrency the shared claim counters in ParallelFor degrade
  /// gracefully to one thread per query.
  Result<std::vector<SegmentHit>> Search(const NodeSearchRequest& req);

  /// Batched variant (Section 3.6: proxies batch requests of the same
  /// type): each request is its own executor task, so a batch spreads
  /// across the pool instead of serializing on one thread; the amortization
  /// win of batching (one proxy dispatch, one gather) is kept.
  std::vector<Result<std::vector<SegmentHit>>> SearchBatch(
      const std::vector<NodeSearchRequest>& reqs);

  // --- Introspection for the coordinator / autoscaler ---

  std::vector<SegmentId> SealedSegments(CollectionId collection) const;
  /// All delete tombstones this node has consumed for the collection
  /// (compaction input).
  std::vector<int64_t> DeletedPks(CollectionId collection) const;
  Result<SegmentMeta> SealedMeta(CollectionId collection,
                                 SegmentId segment) const;
  int64_t NumGrowingRows(CollectionId collection) const;
  /// Segments this node answers searches from (sealed + growing without a
  /// sealed twin); the proxy's coverage weight for partial results.
  int64_t NumServingSegments(CollectionId collection) const;
  /// Growing segments with no sealed twin — the share of this node's
  /// serving set that a coordinator plan cannot route elsewhere (they live
  /// only on the shard primary). PlanFor's coverage weights count these on
  /// top of the sealed segments it assigns.
  int64_t NumGrowingOnlySegments(CollectionId collection) const;
  /// Load signal for the lease-heartbeat piggyback and DescribeCluster.
  NodeLoad LoadSnapshot() const;
  uint64_t MemoryBytes() const;
  /// Min last-consumed tick LSN across this node's channels of the
  /// collection (Ls of Section 3.4).
  Timestamp ServiceTs(CollectionId collection) const;
  /// Blocks until every channel of the collection has consumed entries up
  /// to `ts` (tests use this instead of sleeping).
  bool WaitServiceTs(CollectionId collection, Timestamp ts, int64_t max_ms);

 private:
  struct ChannelState {
    std::shared_ptr<MessageQueue::Subscription> sub;
    CollectionId collection;
    ShardId shard;
    bool primary = false;
    Timestamp service_ts = 0;
    /// Subscription missed() already surfaced (pump-loop gap detection).
    int64_t missed_seen = 0;
  };

  struct CollectionState {
    std::shared_ptr<const CollectionSchema> schema;
    std::map<SegmentId, std::shared_ptr<GrowingSegment>> growing;
    std::map<SegmentId, ShardId> growing_shard;
    std::map<SegmentId, std::shared_ptr<SealedSegment>> sealed;
    std::map<SegmentId, SegmentMeta> sealed_meta;
    /// Delete tombstones consumed so far, re-applied to late-loaded
    /// segments: pk -> sorted unique delete LSNs. Every tombstone is kept
    /// with its own LSN (collapsing to the max would hide the pre-reinsert
    /// version from MVCC reads between two deletes of the same pk);
    /// re-consumption after a PromoteChannel replay dedupes on exact
    /// (pk, LSN). Compacted below the min channel service_ts once the
    /// tombstone count outgrows config.delete_buffer_compact_min;
    /// LoadSealedSegment backfills the compacted prefix from the WAL.
    std::unordered_map<int64_t, std::vector<Timestamp>> deletes;
    /// Total tombstones across all pks (the compaction trigger metric).
    size_t deletes_count = 0;
    /// Next tombstone count at which the compaction scan runs (doubling
    /// schedule keeps the scan amortized O(1) per delete).
    size_t deletes_compact_at = 0;
    /// Highest floor a compaction has pruned the buffer to. Tombstones
    /// below it exist only in the WAL: LoadSealedSegment must replay the
    /// shard channel up to this LSN for segments that arrive later (the
    /// node's own subscriptions are already past those entries).
    Timestamp deletes_floor_ts = 0;
  };

  void Run();
  void HandleEntry(ChannelState* ch, const LogEntry& entry);
  /// Dedup/compaction of the tombstone buffer (under the unique lock).
  void MaybeCompactDeletesLocked(CollectionId collection,
                                 CollectionState* coll);
  Timestamp ServiceTsLocked(CollectionId collection) const;
  bool WaitConsistency(CollectionId collection, Timestamp read_ts,
                       int64_t staleness_ms);
  Result<std::vector<SegmentHit>> SearchInternal(
      const NodeSearchRequest& req);
  /// Bounded admission (ROADMAP item 3): fails fast on an already-expired
  /// deadline (kTimeout) or a full node (admission_node_inflight cap,
  /// kResourceExhausted + retry-after) — refused requests never claim an
  /// executor slot. On OK the request holds an outstanding_ slot that
  /// RunAdmitted releases.
  Status AdmitSearch(const NodeSearchRequest& req);
  /// Executor-side wrapper: tracks executing_, feeds the EWMA service-time
  /// signal, releases the outstanding_ slot.
  Result<std::vector<SegmentHit>> RunAdmitted(const NodeSearchRequest& req);

  NodeId id_;
  CoreContext ctx_;
  /// Lease fencing epoch (0 when liveness is off); granted in Start().
  int64_t lease_epoch_ = 0;

  mutable std::shared_mutex mu_;
  std::condition_variable_any tick_cv_;
  /// shared_ptr: the pump thread snapshots channels outside the lock while
  /// coordinator calls may erase them concurrently.
  std::vector<std::shared_ptr<ChannelState>> channels_;
  std::map<CollectionId, CollectionState> collections_;

  std::atomic<bool> stop_{false};
  std::thread thread_;
  std::unique_ptr<ThreadPool> executor_;  ///< Per-node search capacity.

  // --- Overload signals (core/admission.h; read by LoadSnapshot) ---
  std::atomic<int64_t> outstanding_{0};  ///< Admitted (queued + executing).
  std::atomic<int64_t> executing_{0};
  std::atomic<int64_t> ewma_latency_us_{0};
  std::atomic<int64_t> deadline_rejects_{0};
  std::atomic<int64_t> overload_rejects_{0};
};

}  // namespace manu

#endif  // MANU_CORE_QUERY_NODE_H_
