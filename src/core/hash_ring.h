#ifndef MANU_CORE_HASH_RING_H_
#define MANU_CORE_HASH_RING_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace manu {

/// Consistent-hash ring (Section 3.3: "the loggers are organized in a hash
/// ring, and each logger handles one or more logical buckets"). Nodes get
/// `virtual_nodes` points on a 64-bit ring; a key maps to the first node
/// point clockwise from its hash. Adding/removing a node moves only the
/// keys adjacent to its points.
class HashRing {
 public:
  explicit HashRing(int32_t virtual_nodes = 32)
      : virtual_nodes_(virtual_nodes) {}

  void AddNode(int64_t node_id) {
    for (int32_t v = 0; v < virtual_nodes_; ++v) {
      ring_[Mix(static_cast<uint64_t>(node_id) * 0x9E3779B97F4A7C15ull + v)] =
          node_id;
    }
  }

  void RemoveNode(int64_t node_id) {
    for (auto it = ring_.begin(); it != ring_.end();) {
      it = it->second == node_id ? ring_.erase(it) : std::next(it);
    }
  }

  bool Empty() const { return ring_.empty(); }
  size_t NumNodes() const {
    return ring_.size() / static_cast<size_t>(virtual_nodes_);
  }

  /// Node owning `key`; ring must be non-empty.
  int64_t Route(uint64_t key) const {
    auto it = ring_.lower_bound(Mix(key));
    if (it == ring_.end()) it = ring_.begin();
    return it->second;
  }

  int64_t RouteString(const std::string& key) const {
    uint64_t h = 1469598103934665603ull;  // FNV-1a.
    for (char c : key) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return Route(h);
  }

 private:
  /// SplitMix64 finalizer; cheap and well distributed.
  static uint64_t Mix(uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  int32_t virtual_nodes_;
  std::map<uint64_t, int64_t> ring_;
};

}  // namespace manu

#endif  // MANU_CORE_HASH_RING_H_
