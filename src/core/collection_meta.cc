#include "core/collection_meta.h"

namespace manu {

std::string CollectionMeta::Serialize() const {
  BinaryWriter w;
  w.PutI64(id);
  schema.Serialize(&w);
  w.PutI32(num_shards);
  w.PutU32(static_cast<uint32_t>(index_params.size()));
  for (const auto& [field, params] : index_params) {
    w.PutI64(field);
    params.Serialize(&w);
  }
  w.PutI32(index_version);
  w.PutU64(created_at);
  w.PutBool(dropped);
  return w.Release();
}

Result<CollectionMeta> CollectionMeta::Deserialize(std::string_view data) {
  BinaryReader r(data);
  CollectionMeta meta;
  MANU_ASSIGN_OR_RETURN(meta.id, r.GetI64());
  MANU_ASSIGN_OR_RETURN(meta.schema, CollectionSchema::Deserialize(&r));
  MANU_ASSIGN_OR_RETURN(meta.num_shards, r.GetI32());
  MANU_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  for (uint32_t i = 0; i < n; ++i) {
    MANU_ASSIGN_OR_RETURN(FieldId field, r.GetI64());
    MANU_ASSIGN_OR_RETURN(IndexParams params, IndexParams::Deserialize(&r));
    meta.index_params[field] = params;
  }
  MANU_ASSIGN_OR_RETURN(meta.index_version, r.GetI32());
  MANU_ASSIGN_OR_RETURN(meta.created_at, r.GetU64());
  MANU_ASSIGN_OR_RETURN(meta.dropped, r.GetBool());
  return meta;
}

std::string SegmentMeta::Serialize() const {
  BinaryWriter w;
  w.PutI64(id);
  w.PutI64(collection);
  w.PutI32(shard);
  w.PutU8(static_cast<uint8_t>(state));
  w.PutI64(num_rows);
  w.PutString(binlog_path);
  w.PutU32(static_cast<uint32_t>(index_paths.size()));
  for (const auto& [field, path] : index_paths) {
    w.PutI64(field);
    w.PutString(path);
    auto it = index_versions.find(field);
    w.PutI32(it == index_versions.end() ? 0 : it->second);
  }
  w.PutString(filter_index_path);
  w.PutI32(filter_index_version);
  w.PutU64(last_lsn);
  w.PutBool(from_compaction);
  return w.Release();
}

Result<SegmentMeta> SegmentMeta::Deserialize(std::string_view data) {
  BinaryReader r(data);
  SegmentMeta meta;
  MANU_ASSIGN_OR_RETURN(meta.id, r.GetI64());
  MANU_ASSIGN_OR_RETURN(meta.collection, r.GetI64());
  MANU_ASSIGN_OR_RETURN(meta.shard, r.GetI32());
  MANU_ASSIGN_OR_RETURN(uint8_t state, r.GetU8());
  meta.state = static_cast<SegmentState>(state);
  MANU_ASSIGN_OR_RETURN(meta.num_rows, r.GetI64());
  MANU_ASSIGN_OR_RETURN(meta.binlog_path, r.GetString());
  MANU_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  for (uint32_t i = 0; i < n; ++i) {
    MANU_ASSIGN_OR_RETURN(FieldId field, r.GetI64());
    MANU_ASSIGN_OR_RETURN(std::string path, r.GetString());
    meta.index_paths[field] = std::move(path);
    MANU_ASSIGN_OR_RETURN(meta.index_versions[field], r.GetI32());
  }
  MANU_ASSIGN_OR_RETURN(meta.filter_index_path, r.GetString());
  MANU_ASSIGN_OR_RETURN(meta.filter_index_version, r.GetI32());
  MANU_ASSIGN_OR_RETURN(meta.last_lsn, r.GetU64());
  MANU_ASSIGN_OR_RETURN(meta.from_compaction, r.GetBool());
  return meta;
}

std::string CollectionMetaKey(CollectionId id) {
  return "collection/" + std::to_string(id);
}

std::string SegmentMetaKey(CollectionId collection, SegmentId segment) {
  return "segment/" + std::to_string(collection) + "/" +
         std::to_string(segment);
}

}  // namespace manu
