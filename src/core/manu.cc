#include "core/manu.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace manu {

namespace {

/// Recovery pre-check: every shard channel must retain the WAL above the
/// shard's archived floor (max last_lsn over its non-compaction sealed
/// segments). A truncation above the floor dropped acked writes that exist
/// neither in binlogs nor in the log — surviving state is still consistent,
/// but recovery cannot honor "every acked write is visible", so it refuses
/// with DataLoss instead of silently serving a hole. Truncations at or
/// below the floor are the safe clamp: everything dropped is in binlogs.
Status ValidateWalCoverage(DurableState* durable) {
  for (const auto& [key, entry] : durable->meta.List("collection/")) {
    auto meta = CollectionMeta::Deserialize(entry.value);
    if (!meta.ok() || meta.value().dropped) continue;
    const CollectionId cid = meta.value().id;

    std::map<ShardId, Timestamp> floors;
    const std::string prefix = "segment/" + std::to_string(cid) + "/";
    for (const auto& [skey, sentry] : durable->meta.List(prefix)) {
      auto seg = SegmentMeta::Deserialize(sentry.value);
      if (!seg.ok() || seg.value().from_compaction) continue;
      Timestamp& floor = floors[seg.value().shard];
      floor = std::max(floor, seg.value().last_lsn);
    }

    for (ShardId shard = 0; shard < meta.value().num_shards; ++shard) {
      const std::string channel = ShardChannelName(cid, shard);
      const Timestamp floor =
          floors.count(shard) > 0 ? floors[shard] : Timestamp{0};
      const Timestamp trunc = durable->mq.TruncatedBelowTs(channel);
      const Timestamp trunc_del = durable->mq.TruncatedDeleteTs(channel);
      if (trunc > floor || trunc_del > floor) {
        return Status::DataLoss(
            "collection " + std::to_string(cid) + " shard " +
            std::to_string(shard) + ": WAL truncated through lsn " +
            std::to_string(std::max(trunc, trunc_del)) +
            " but binlogs only cover lsn " + std::to_string(floor));
      }
    }
  }
  return Status::OK();
}

}  // namespace

ManuInstance::ManuInstance(ManuConfig config,
                           std::shared_ptr<ObjectStore> store)
    : ManuInstance(std::move(config),
                   std::make_shared<DurableState>(std::move(store)),
                   /*recovered=*/false) {}

Result<std::unique_ptr<ManuInstance>> ManuInstance::Recover(
    ManuConfig config, std::shared_ptr<DurableState> durable) {
  if (durable == nullptr) {
    return Status::InvalidArgument("Recover needs a durable state");
  }
  MANU_RETURN_NOT_OK(ValidateWalCoverage(durable.get()));
  // Private ctor: not reachable via make_unique.
  return std::unique_ptr<ManuInstance>(new ManuInstance(
      std::move(config), std::move(durable), /*recovered=*/true));
}

CoreContext ManuInstance::MakeContext() const {
  CoreContext ctx;
  ctx.config = config_;
  ctx.meta = &durable_->meta;
  ctx.store = durable_->store.get();
  ctx.mq = &durable_->mq;
  ctx.tso = &durable_->tso;
  ctx.ticker = ticker_.get();
  ctx.leases = leases_.get();
  ctx.instance_epoch = instance_epoch_;
  return ctx;
}

ManuInstance::ManuInstance(ManuConfig config,
                           std::shared_ptr<DurableState> durable,
                           bool recovered)
    : config_(config), durable_(std::move(durable)) {
  // Process-wide tracer follows the last-constructed instance's config
  // (tests construct instances serially; a production deployment has one).
  Tracer::Global().Configure(config_.trace_sample_every,
                             config_.slow_query_trace_ms * 1000);

  WalOptions wal_options;
  wal_options.group_commit = config_.wal_group_commit;
  wal_options.group_max_entries = config_.wal_group_max_entries;
  wal_options.flush_linger_us = config_.wal_flush_linger_us;
  wal_options.sim_flush_latency_us = config_.wal_sim_flush_latency_us;
  durable_->mq.SetOptions(wal_options);

  ticker_ = std::make_unique<TimeTickEmitter>(
      &durable_->mq, &durable_->tso, config_.time_tick_interval_ms);

  if (config_.enable_liveness) {
    leases_ = std::make_unique<LeaseManager>(&durable_->meta,
                                             config_.lease_ttl_ms);
    // Fences the previous incarnation (its loggers / data coordinator see
    // epoch mismatches at their commit points from here on).
    instance_epoch_ = leases_->AcquireInstanceEpoch();
  }

  const CoreContext ctx = MakeContext();

  root_coord_ = std::make_unique<RootCoordinator>(ctx);
  data_coord_ = std::make_unique<DataCoordinator>(ctx);
  index_coord_ = std::make_unique<IndexCoordinator>(ctx, data_coord_.get(),
                                                    root_coord_.get());
  query_coord_ = std::make_unique<QueryCoordinator>(ctx, data_coord_.get(),
                                                    root_coord_.get());
  loggers_ = std::make_unique<LoggerFleet>(ctx, data_coord_.get(),
                                           config_.num_loggers);
  proxy_ = std::make_unique<Proxy>(ctx, root_coord_.get(),
                                   query_coord_.get(), loggers_.get());

  for (int32_t i = 0; i < config_.num_data_nodes; ++i) {
    auto node = std::make_unique<DataNode>(
        next_node_id_.fetch_add(1), ctx, data_coord_.get());
    node->Start();
    data_coord_->AddDataNode(node.get());
    data_nodes_.push_back(std::move(node));
  }
  for (int32_t i = 0; i < config_.num_index_nodes; ++i) {
    index_nodes_.push_back(std::make_unique<IndexNode>(
        next_node_id_.fetch_add(1), ctx, data_coord_.get(),
        config_.index_build_threads));
    index_coord_->AddIndexNode(index_nodes_.back().get());
  }
  for (int32_t i = 0; i < config_.num_query_nodes; ++i) {
    auto node = std::make_shared<QueryNode>(next_node_id_.fetch_add(1), ctx);
    node->Start();
    query_coord_->AddQueryNode(std::move(node));
  }

  if (recovered) {
    // Rebuild control-plane state from the MetaStore, then re-bind the data
    // plane: shard channels replay the WAL from each shard's archived floor
    // (rows at or below it live in sealed binlogs), and the coordination
    // channel — consumed from kEarliest when the coordinators start below —
    // replays kSegmentSealed/kIndexBuilt so query nodes reload every sealed
    // segment and index.
    std::vector<CollectionMeta> restored = root_coord_->Restore();
    data_coord_->Restore(restored);
    for (const CollectionMeta& meta : restored) {
      for (ShardId shard = 0; shard < meta.num_shards; ++shard) {
        ticker_->RegisterChannel(ShardChannelName(meta.id, shard), meta.id,
                                 shard);
      }
      Status st =
          data_coord_->AssignShardChannels(meta, /*replay_from_floor=*/true);
      if (st.ok()) st = query_coord_->LoadCollection(meta);
      if (!st.ok()) {
        MANU_LOG_ERROR << "recovery of collection " << meta.id
                       << " failed: " << st.ToString();
      }
    }
    if (!restored.empty()) {
      MANU_LOG_INFO << "recovered instance (epoch " << instance_epoch_
                    << ") serving " << restored.size() << " collections";
    }
  }

  index_coord_->Start();
  query_coord_->Start();
  background_ = std::thread([this] { BackgroundLoop(); });
}

ManuInstance::~ManuInstance() {
  stop_.store(true, std::memory_order_release);
  if (background_.joinable()) background_.join();
  // Order matters: stop log consumers before the broker, producers last.
  index_coord_->Stop();
  query_coord_->Stop();
  for (auto& node : query_coord_->Nodes()) node->Stop();
  for (auto& node : data_nodes_) node->Stop();
  index_nodes_.clear();  // Joins build pools.
  ticker_->Stop();
  // The broker shuts down only with the last owner of the durable state: a
  // caller holding durable_state() for Recover() needs the retained WAL.
  if (durable_.use_count() == 1) durable_->mq.Shutdown();
}

void ManuInstance::BackgroundLoop() {
  const int64_t seal_interval =
      std::max<int64_t>(10, config_.segment_idle_seal_ms / 4);
  const int64_t watchdog_interval =
      std::max<int64_t>(10, config_.watchdog_interval_ms);
  int64_t next_seal = NowMs() + seal_interval;
  int64_t next_watchdog = NowMs() + watchdog_interval;
  while (!stop_.load(std::memory_order_acquire)) {
    // Sleep in small slices so shutdown never waits out a long interval.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (NowMs() >= next_seal) {
      next_seal = NowMs() + seal_interval;
      data_coord_->CheckIdleSegments();
    }
    if (leases_ != nullptr && NowMs() >= next_watchdog) {
      next_watchdog = NowMs() + watchdog_interval;
      RunWatchdog();
    }
  }
}

void ManuInstance::RunWatchdog() {
  for (const LeaseInfo& lease : leases_->ExpiredLeases(NowMs())) {
    MetricsRegistry::Global().GetCounter("lease.missed_heartbeats")->Add(1);
    // Fence first (persisted epoch bump rejects the zombie's in-flight
    // commits), then fail over.
    leases_->Revoke(lease.node);
    MANU_LOG_WARN << lease.role << " node " << lease.node
                  << " missed its lease (last heartbeat "
                  << NowMs() - lease.last_renew_ms << "ms ago); failing over";
    Status st = Status::OK();
    if (lease.role == "query") {
      st = query_coord_->OnNodeDead(lease.node);
    } else if (lease.role == "data") {
      st = data_coord_->OnDataNodeDead(lease.node);
    } else if (lease.role == "index") {
      // In-flight builds are fenced at RegisterIndex; pending ones get
      // re-dispatched by a future CreateIndex/RequestBuildAll.
      index_coord_->RemoveIndexNode(lease.node);
    }
    if (st.ok()) {
      // MTTR as a user would see it: from the last successful heartbeat
      // (the crash happened some unknown time after it) to failover done.
      MetricsRegistry::Global()
          .GetGauge("cluster.mttr_ms")
          ->Set(NowMs() - lease.last_renew_ms);
    } else {
      MANU_LOG_ERROR << "failover of " << lease.role << " node "
                     << lease.node << " failed: " << st.ToString();
    }
  }
}

Result<CollectionMeta> ManuInstance::CreateCollection(
    CollectionSchema schema) {
  MANU_ASSIGN_OR_RETURN(
      CollectionMeta meta,
      root_coord_->CreateCollection(std::move(schema), config_.num_shards));
  data_coord_->OnCollectionCreated(meta);

  for (ShardId shard = 0; shard < meta.num_shards; ++shard) {
    // Shard channels: ticked by the emitter, archived by a data node.
    ticker_->RegisterChannel(ShardChannelName(meta.id, shard), meta.id,
                             shard);
  }
  MANU_RETURN_NOT_OK(data_coord_->AssignShardChannels(meta));
  MANU_RETURN_NOT_OK(query_coord_->LoadCollection(meta));
  return meta;
}

Status ManuInstance::DropCollection(const std::string& name) {
  MANU_ASSIGN_OR_RETURN(CollectionMeta meta,
                        root_coord_->GetCollection(name));
  MANU_RETURN_NOT_OK(root_coord_->DropCollection(name));
  query_coord_->ReleaseCollection(meta.id);
  for (auto& node : data_nodes_) node->UnassignCollection(meta.id);
  for (ShardId shard = 0; shard < meta.num_shards; ++shard) {
    ticker_->UnregisterChannel(ShardChannelName(meta.id, shard));
  }
  data_coord_->OnCollectionDropped(meta.id);
  return Status::OK();
}

Status ManuInstance::CreateIndex(const std::string& collection,
                                 const std::string& field,
                                 IndexParams params) {
  MANU_RETURN_NOT_OK(root_coord_->DeclareIndex(collection, field, params));
  MANU_ASSIGN_OR_RETURN(CollectionMeta meta,
                        root_coord_->GetCollection(collection));
  return index_coord_->RequestBuildAll(meta.id);
}

Result<Timestamp> ManuInstance::Insert(const std::string& collection,
                                       EntityBatch batch) {
  return proxy_->Insert(collection, std::move(batch));
}

Result<Timestamp> ManuInstance::Delete(const std::string& collection,
                                       const std::vector<int64_t>& pks) {
  return proxy_->Delete(collection, pks);
}

Result<SearchResult> ManuInstance::Search(const SearchRequest& req) {
  return proxy_->Search(req);
}

std::vector<Result<SearchResult>> ManuInstance::BatchSearch(
    const std::vector<SearchRequest>& reqs) {
  return proxy_->BatchSearch(reqs);
}

Status ManuInstance::FlushAndWait(const std::string& collection,
                                  int64_t timeout_ms) {
  MANU_ASSIGN_OR_RETURN(CollectionMeta meta,
                        root_coord_->GetCollection(collection));
  MANU_ASSIGN_OR_RETURN(std::vector<SegmentId> rolled,
                        data_coord_->Flush(meta.id));

  const bool wants_index = !meta.index_params.empty();
  const int64_t deadline = NowMs() + timeout_ms;

  auto segment_ready = [&](SegmentId segment) {
    auto seg = data_coord_->GetSegment(meta.id, segment);
    if (!seg.ok()) return false;
    if (seg.value().state == SegmentState::kDropped) return true;
    if (wants_index) {
      // Every declared field must be indexed at the current declaration
      // version (covers re-index after CreateIndex with new params).
      for (const auto& [field, _] : meta.index_params) {
        auto v = seg.value().index_versions.find(field);
        if (v == seg.value().index_versions.end() ||
            v->second < meta.index_version) {
          return false;
        }
      }
    }
    for (const auto& node : query_coord_->Nodes()) {
      for (SegmentId s : node->SealedSegments(meta.id)) {
        if (s == segment) return true;  // Loaded somewhere.
      }
    }
    return false;
  };

  // Wait for every segment ever allocated for the collection (including
  // ones the data nodes have not yet registered — their index builds may
  // still be queued) plus registered extras (e.g. compaction results) to
  // reach sealed -> indexed(current version) -> loaded (or dropped).
  std::vector<SegmentId> targets = rolled;
  for (SegmentId id : data_coord_->AllocatedSegments(meta.id)) {
    targets.push_back(id);
  }
  for (const SegmentMeta& seg : data_coord_->ListSegments(meta.id)) {
    if (seg.state != SegmentState::kDropped) targets.push_back(seg.id);
  }
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  for (SegmentId segment : targets) {
    while (!segment_ready(segment)) {
      if (NowMs() > deadline) {
        return Status::Timeout("flush wait timed out on segment " +
                               std::to_string(segment));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  return Status::OK();
}

Status ManuInstance::WaitUntilVisible(const std::string& collection,
                                      Timestamp ts, int64_t timeout_ms) {
  MANU_ASSIGN_OR_RETURN(CollectionMeta meta,
                        root_coord_->GetCollection(collection));
  const int64_t deadline = NowMs() + timeout_ms;
  for (const auto& node : query_coord_->NodesFor(meta.id)) {
    // One shared budget: N lagging nodes must not stretch the wait to
    // N * timeout_ms.
    const int64_t remaining = deadline - NowMs();
    if (remaining <= 0 ||
        !node->WaitServiceTs(meta.id, ts, std::max<int64_t>(1, remaining))) {
      return Status::Timeout("WAL consumption lagging");
    }
  }
  return Status::OK();
}

Status ManuInstance::Compact(const std::string& collection,
                             int64_t timeout_ms) {
  MANU_ASSIGN_OR_RETURN(CollectionMeta meta,
                        root_coord_->GetCollection(collection));
  // Gather tombstones from the query nodes' delete buffers.
  std::vector<int64_t> deleted;
  for (const auto& node : query_coord_->Nodes()) {
    for (int64_t pk : node->DeletedPks(meta.id)) deleted.push_back(pk);
  }
  std::sort(deleted.begin(), deleted.end());
  deleted.erase(std::unique(deleted.begin(), deleted.end()), deleted.end());

  const int64_t small_rows =
      config_.segment_seal_rows > 0
          ? static_cast<int64_t>(config_.small_segment_ratio *
                                 static_cast<double>(
                                     config_.segment_seal_rows))
          : 0;
  MANU_ASSIGN_OR_RETURN(
      std::vector<SegmentId> merged,
      data_coord_->CompactSegments(meta.id, deleted, small_rows));

  // Wait until every merged segment is served (and so its inputs are
  // released).
  const int64_t deadline = NowMs() + timeout_ms;
  for (SegmentId segment : merged) {
    while (true) {
      bool loaded = false;
      for (const auto& node : query_coord_->Nodes()) {
        for (SegmentId s : node->SealedSegments(meta.id)) {
          if (s == segment) loaded = true;
        }
      }
      if (loaded) break;
      if (NowMs() > deadline) {
        return Status::Timeout("compaction wait timed out");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  return Status::OK();
}

Status ManuInstance::Checkpoint(const std::string& collection) {
  MANU_ASSIGN_OR_RETURN(CollectionMeta meta,
                        root_coord_->GetCollection(collection));
  return data_coord_->WriteCheckpoint(meta.id).status();
}

Status ManuInstance::TruncateLogBefore(const std::string& collection,
                                       Timestamp ts) {
  MANU_ASSIGN_OR_RETURN(CollectionMeta meta,
                        root_coord_->GetCollection(collection));
  for (ShardId shard = 0; shard < meta.num_shards; ++shard) {
    const std::string channel = ShardChannelName(meta.id, shard);
    // Safe clamp: never drop entries above the archived floor — they exist
    // only in the WAL, and crash recovery replays from the floor. (Without
    // the clamp a later Recover() would refuse with DataLoss.)
    const Timestamp floor = data_coord_->ArchivedFloor(meta.id, shard);
    Timestamp effective = ts;
    if (effective > floor + 1) {
      MANU_LOG_WARN << "truncate of " << channel << " clamped from lsn "
                    << ts << " to archived floor " << floor + 1;
      effective = floor + 1;
    }
    durable_->mq.TruncateBefore(
        channel, durable_->mq.FirstOffsetAtOrAfter(channel, effective));
  }
  return Status::OK();
}

Status ManuInstance::ScaleQueryNodes(int32_t target) {
  if (target < 1) return Status::InvalidArgument("need >= 1 query node");
  while (static_cast<int32_t>(query_coord_->NumQueryNodes()) < target) {
    auto node = std::make_shared<QueryNode>(next_node_id_.fetch_add(1),
                                            MakeContext());
    node->Start();
    query_coord_->AddQueryNode(std::move(node));
  }
  while (static_cast<int32_t>(query_coord_->NumQueryNodes()) > target) {
    auto nodes = query_coord_->Nodes();
    MANU_RETURN_NOT_OK(query_coord_->RemoveQueryNode(nodes.back()->id()));
  }
  return query_coord_->Rebalance();
}

Status ManuInstance::KillQueryNode(NodeId id) {
  return query_coord_->KillQueryNode(id);
}

Status ManuInstance::CrashQueryNode(NodeId id) {
  return query_coord_->CrashNode(id);
}

Status ManuInstance::CrashDataNode(NodeId id) {
  for (auto& node : data_nodes_) {
    if (node->id() != id) continue;
    // Stop the pump only; the data coordinator still believes this node
    // owns its shard channels until the watchdog revokes the lease.
    node->Stop();
    MANU_LOG_INFO << "data node " << id << " crashed (abrupt, no recovery)";
    return Status::OK();
  }
  return Status::NotFound("data node");
}

std::string ManuInstance::DescribeCluster() {
  std::ostringstream out;
  out << "=== Manu cluster ===\n";
  out << "workers: " << query_coord_->NumQueryNodes() << " query, "
      << data_nodes_.size() << " data, " << index_nodes_.size()
      << " index, " << loggers_->NumLoggers() << " logger\n";

  for (const CollectionMeta& meta : root_coord_->ListCollections()) {
    int64_t sealed_rows = 0;
    int32_t sealed = 0, indexed = 0, dropped = 0;
    for (const SegmentMeta& seg : data_coord_->ListSegments(meta.id)) {
      switch (seg.state) {
        case SegmentState::kSealed:
          ++sealed;
          sealed_rows += seg.num_rows;
          break;
        case SegmentState::kIndexed:
          ++indexed;
          sealed_rows += seg.num_rows;
          break;
        case SegmentState::kDropped:
          ++dropped;
          break;
        default:
          break;
      }
    }
    int64_t growing_rows = 0;
    for (const auto& node : query_coord_->Nodes()) {
      growing_rows += node->NumGrowingRows(meta.id);
    }
    out << "collection '" << meta.schema.name() << "' (id=" << meta.id
        << "): shards=" << meta.num_shards << " segments(sealed=" << sealed
        << " indexed=" << indexed << " dropped=" << dropped
        << ") rows(sealed=" << sealed_rows << " growing=" << growing_rows
        << ") declared_indexes=" << meta.index_params.size() << "\n";
  }

  out << "query nodes:\n";
  for (const auto& node : query_coord_->Nodes()) {
    const NodeLoad load = node->LoadSnapshot();
    out << "  node " << node->id() << ": mem="
        << node->MemoryBytes() / (1 << 20) << "MB inflight=" << load.inflight
        << " queue_depth=" << load.queue_depth
        << " ewma_latency_us=" << load.ewma_latency_us
        << " deadline_rejects=" << load.deadline_rejects
        << " overload_rejects=" << load.overload_rejects << "\n";
  }

  if (proxy_ != nullptr) {
    const AdmissionController& adm = proxy_->admission();
    out << "admission: brownout_stage=" << adm.stage() << " pressure="
        << adm.pressure() << " inflight=" << adm.inflight() << "\n";
  }

  out << "placement: under_replicated="
      << query_coord_->placement()->UnderReplicatedCount()
      << " reconcile_interval_ms="
      << config_.placement_reconcile_interval_ms << "\n";

  if (leases_ != nullptr) {
    out << "liveness (instance epoch " << instance_epoch_ << ", lease ttl "
        << leases_->ttl_ms() << "ms):\n";
    const int64_t now = NowMs();
    for (const LeaseInfo& lease : leases_->Snapshot()) {
      out << "  node " << lease.node << ": role=" << lease.role
          << " epoch=" << lease.epoch << " heartbeat_age_ms="
          << std::max<int64_t>(0, now - lease.last_renew_ms)
          << (lease.dead ? " DEAD" : " alive") << "\n";
    }
  }

  out << "--- metrics ---\n" << MetricsRegistry::Global().Dump();

  const std::string slow = Tracer::Global().collector().DumpSlow();
  if (!slow.empty()) {
    out << "--- slow queries (>= " << config_.slow_query_trace_ms
        << "ms) ---\n"
        << slow;
  }
  return out.str();
}

}  // namespace manu
