#include "core/manu.h"

#include <sstream>

#include "common/logging.h"
#include "common/metrics.h"

namespace manu {

ManuInstance::ManuInstance(ManuConfig config,
                           std::shared_ptr<ObjectStore> store)
    : config_(config),
      store_(store != nullptr ? std::move(store)
                              : std::make_shared<MemoryObjectStore>()) {
  ticker_ = std::make_unique<TimeTickEmitter>(
      &mq_, &tso_, config_.time_tick_interval_ms);

  CoreContext ctx;
  ctx.config = config_;
  ctx.meta = &meta_;
  ctx.store = store_.get();
  ctx.mq = &mq_;
  ctx.tso = &tso_;
  ctx.ticker = ticker_.get();

  root_coord_ = std::make_unique<RootCoordinator>(ctx);
  data_coord_ = std::make_unique<DataCoordinator>(ctx);
  index_coord_ = std::make_unique<IndexCoordinator>(ctx, data_coord_.get(),
                                                    root_coord_.get());
  query_coord_ = std::make_unique<QueryCoordinator>(ctx, data_coord_.get(),
                                                    root_coord_.get());
  loggers_ = std::make_unique<LoggerFleet>(ctx, data_coord_.get(),
                                           config_.num_loggers);
  proxy_ = std::make_unique<Proxy>(ctx, root_coord_.get(),
                                   query_coord_.get(), loggers_.get());

  for (int32_t i = 0; i < config_.num_data_nodes; ++i) {
    auto node = std::make_unique<DataNode>(
        next_node_id_.fetch_add(1), ctx, data_coord_.get());
    node->Start();
    data_nodes_.push_back(std::move(node));
  }
  for (int32_t i = 0; i < config_.num_index_nodes; ++i) {
    index_nodes_.push_back(std::make_unique<IndexNode>(
        next_node_id_.fetch_add(1), ctx, data_coord_.get(),
        config_.index_build_threads));
    index_coord_->AddIndexNode(index_nodes_.back().get());
  }
  for (int32_t i = 0; i < config_.num_query_nodes; ++i) {
    auto node = std::make_shared<QueryNode>(next_node_id_.fetch_add(1), ctx);
    node->Start();
    query_coord_->AddQueryNode(std::move(node));
  }

  index_coord_->Start();
  query_coord_->Start();
  background_ = std::thread([this] { BackgroundLoop(); });
}

ManuInstance::~ManuInstance() {
  stop_.store(true, std::memory_order_release);
  if (background_.joinable()) background_.join();
  // Order matters: stop log consumers before the broker, producers last.
  index_coord_->Stop();
  query_coord_->Stop();
  for (auto& node : query_coord_->Nodes()) node->Stop();
  for (auto& node : data_nodes_) node->Stop();
  index_nodes_.clear();  // Joins build pools.
  ticker_->Stop();
  mq_.Shutdown();
}

void ManuInstance::BackgroundLoop() {
  const int64_t interval =
      std::max<int64_t>(10, config_.segment_idle_seal_ms / 4);
  int64_t next = NowMs() + interval;
  while (!stop_.load(std::memory_order_acquire)) {
    // Sleep in small slices so shutdown never waits out a long interval.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (NowMs() < next) continue;
    next = NowMs() + interval;
    data_coord_->CheckIdleSegments();
  }
}

Result<CollectionMeta> ManuInstance::CreateCollection(
    CollectionSchema schema) {
  MANU_ASSIGN_OR_RETURN(
      CollectionMeta meta,
      root_coord_->CreateCollection(std::move(schema), config_.num_shards));
  data_coord_->OnCollectionCreated(meta);

  auto schema_ptr = std::make_shared<const CollectionSchema>(meta.schema);
  for (ShardId shard = 0; shard < meta.num_shards; ++shard) {
    // Shard channels: ticked by the emitter, archived by a data node.
    ticker_->RegisterChannel(ShardChannelName(meta.id, shard), meta.id,
                             shard);
    data_nodes_[static_cast<size_t>(shard) % data_nodes_.size()]
        ->AssignChannel(meta.id, shard, schema_ptr);
  }
  MANU_RETURN_NOT_OK(query_coord_->LoadCollection(meta));
  return meta;
}

Status ManuInstance::DropCollection(const std::string& name) {
  MANU_ASSIGN_OR_RETURN(CollectionMeta meta,
                        root_coord_->GetCollection(name));
  MANU_RETURN_NOT_OK(root_coord_->DropCollection(name));
  query_coord_->ReleaseCollection(meta.id);
  for (auto& node : data_nodes_) node->UnassignCollection(meta.id);
  for (ShardId shard = 0; shard < meta.num_shards; ++shard) {
    ticker_->UnregisterChannel(ShardChannelName(meta.id, shard));
  }
  data_coord_->OnCollectionDropped(meta.id);
  return Status::OK();
}

Status ManuInstance::CreateIndex(const std::string& collection,
                                 const std::string& field,
                                 IndexParams params) {
  MANU_RETURN_NOT_OK(root_coord_->DeclareIndex(collection, field, params));
  MANU_ASSIGN_OR_RETURN(CollectionMeta meta,
                        root_coord_->GetCollection(collection));
  return index_coord_->RequestBuildAll(meta.id);
}

Result<Timestamp> ManuInstance::Insert(const std::string& collection,
                                       EntityBatch batch) {
  return proxy_->Insert(collection, std::move(batch));
}

Result<Timestamp> ManuInstance::Delete(const std::string& collection,
                                       const std::vector<int64_t>& pks) {
  return proxy_->Delete(collection, pks);
}

Result<SearchResult> ManuInstance::Search(const SearchRequest& req) {
  return proxy_->Search(req);
}

std::vector<Result<SearchResult>> ManuInstance::BatchSearch(
    const std::vector<SearchRequest>& reqs) {
  return proxy_->BatchSearch(reqs);
}

Status ManuInstance::FlushAndWait(const std::string& collection,
                                  int64_t timeout_ms) {
  MANU_ASSIGN_OR_RETURN(CollectionMeta meta,
                        root_coord_->GetCollection(collection));
  MANU_ASSIGN_OR_RETURN(std::vector<SegmentId> rolled,
                        data_coord_->Flush(meta.id));

  const bool wants_index = !meta.index_params.empty();
  const int64_t deadline = NowMs() + timeout_ms;

  auto segment_ready = [&](SegmentId segment) {
    auto seg = data_coord_->GetSegment(meta.id, segment);
    if (!seg.ok()) return false;
    if (seg.value().state == SegmentState::kDropped) return true;
    if (wants_index) {
      // Every declared field must be indexed at the current declaration
      // version (covers re-index after CreateIndex with new params).
      for (const auto& [field, _] : meta.index_params) {
        auto v = seg.value().index_versions.find(field);
        if (v == seg.value().index_versions.end() ||
            v->second < meta.index_version) {
          return false;
        }
      }
    }
    for (const auto& node : query_coord_->Nodes()) {
      for (SegmentId s : node->SealedSegments(meta.id)) {
        if (s == segment) return true;  // Loaded somewhere.
      }
    }
    return false;
  };

  // Wait for every segment ever allocated for the collection (including
  // ones the data nodes have not yet registered — their index builds may
  // still be queued) plus registered extras (e.g. compaction results) to
  // reach sealed -> indexed(current version) -> loaded (or dropped).
  std::vector<SegmentId> targets = rolled;
  for (SegmentId id : data_coord_->AllocatedSegments(meta.id)) {
    targets.push_back(id);
  }
  for (const SegmentMeta& seg : data_coord_->ListSegments(meta.id)) {
    if (seg.state != SegmentState::kDropped) targets.push_back(seg.id);
  }
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  for (SegmentId segment : targets) {
    while (!segment_ready(segment)) {
      if (NowMs() > deadline) {
        return Status::Timeout("flush wait timed out on segment " +
                               std::to_string(segment));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  return Status::OK();
}

Status ManuInstance::WaitUntilVisible(const std::string& collection,
                                      Timestamp ts, int64_t timeout_ms) {
  MANU_ASSIGN_OR_RETURN(CollectionMeta meta,
                        root_coord_->GetCollection(collection));
  for (const auto& node : query_coord_->NodesFor(meta.id)) {
    if (!node->WaitServiceTs(meta.id, ts, timeout_ms)) {
      return Status::Timeout("WAL consumption lagging");
    }
  }
  return Status::OK();
}

Status ManuInstance::Compact(const std::string& collection,
                             int64_t timeout_ms) {
  MANU_ASSIGN_OR_RETURN(CollectionMeta meta,
                        root_coord_->GetCollection(collection));
  // Gather tombstones from the query nodes' delete buffers.
  std::vector<int64_t> deleted;
  for (const auto& node : query_coord_->Nodes()) {
    for (int64_t pk : node->DeletedPks(meta.id)) deleted.push_back(pk);
  }
  std::sort(deleted.begin(), deleted.end());
  deleted.erase(std::unique(deleted.begin(), deleted.end()), deleted.end());

  const int64_t small_rows =
      config_.segment_seal_rows > 0
          ? static_cast<int64_t>(config_.small_segment_ratio *
                                 static_cast<double>(
                                     config_.segment_seal_rows))
          : 0;
  MANU_ASSIGN_OR_RETURN(
      std::vector<SegmentId> merged,
      data_coord_->CompactSegments(meta.id, deleted, small_rows));

  // Wait until every merged segment is served (and so its inputs are
  // released).
  const int64_t deadline = NowMs() + timeout_ms;
  for (SegmentId segment : merged) {
    while (true) {
      bool loaded = false;
      for (const auto& node : query_coord_->Nodes()) {
        for (SegmentId s : node->SealedSegments(meta.id)) {
          if (s == segment) loaded = true;
        }
      }
      if (loaded) break;
      if (NowMs() > deadline) {
        return Status::Timeout("compaction wait timed out");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  return Status::OK();
}

Status ManuInstance::Checkpoint(const std::string& collection) {
  MANU_ASSIGN_OR_RETURN(CollectionMeta meta,
                        root_coord_->GetCollection(collection));
  return data_coord_->WriteCheckpoint(meta.id).status();
}

Status ManuInstance::TruncateLogBefore(const std::string& collection,
                                       Timestamp ts) {
  MANU_ASSIGN_OR_RETURN(CollectionMeta meta,
                        root_coord_->GetCollection(collection));
  for (ShardId shard = 0; shard < meta.num_shards; ++shard) {
    const std::string channel = ShardChannelName(meta.id, shard);
    mq_.TruncateBefore(channel, mq_.FirstOffsetAtOrAfter(channel, ts));
  }
  return Status::OK();
}

Status ManuInstance::ScaleQueryNodes(int32_t target) {
  if (target < 1) return Status::InvalidArgument("need >= 1 query node");
  while (static_cast<int32_t>(query_coord_->NumQueryNodes()) < target) {
    CoreContext ctx;
    ctx.config = config_;
    ctx.meta = &meta_;
    ctx.store = store_.get();
    ctx.mq = &mq_;
    ctx.tso = &tso_;
    ctx.ticker = ticker_.get();
    auto node = std::make_shared<QueryNode>(next_node_id_.fetch_add(1), ctx);
    node->Start();
    query_coord_->AddQueryNode(std::move(node));
  }
  while (static_cast<int32_t>(query_coord_->NumQueryNodes()) > target) {
    auto nodes = query_coord_->Nodes();
    MANU_RETURN_NOT_OK(query_coord_->RemoveQueryNode(nodes.back()->id()));
  }
  return query_coord_->Rebalance();
}

Status ManuInstance::KillQueryNode(NodeId id) {
  return query_coord_->KillQueryNode(id);
}

std::string ManuInstance::DescribeCluster() {
  std::ostringstream out;
  out << "=== Manu cluster ===\n";
  out << "workers: " << query_coord_->NumQueryNodes() << " query, "
      << data_nodes_.size() << " data, " << index_nodes_.size()
      << " index, " << loggers_->NumLoggers() << " logger\n";

  for (const CollectionMeta& meta : root_coord_->ListCollections()) {
    int64_t sealed_rows = 0;
    int32_t sealed = 0, indexed = 0, dropped = 0;
    for (const SegmentMeta& seg : data_coord_->ListSegments(meta.id)) {
      switch (seg.state) {
        case SegmentState::kSealed:
          ++sealed;
          sealed_rows += seg.num_rows;
          break;
        case SegmentState::kIndexed:
          ++indexed;
          sealed_rows += seg.num_rows;
          break;
        case SegmentState::kDropped:
          ++dropped;
          break;
        default:
          break;
      }
    }
    int64_t growing_rows = 0;
    for (const auto& node : query_coord_->Nodes()) {
      growing_rows += node->NumGrowingRows(meta.id);
    }
    out << "collection '" << meta.schema.name() << "' (id=" << meta.id
        << "): shards=" << meta.num_shards << " segments(sealed=" << sealed
        << " indexed=" << indexed << " dropped=" << dropped
        << ") rows(sealed=" << sealed_rows << " growing=" << growing_rows
        << ") declared_indexes=" << meta.index_params.size() << "\n";
  }

  out << "query nodes:\n";
  for (const auto& node : query_coord_->Nodes()) {
    out << "  node " << node->id() << ": mem="
        << node->MemoryBytes() / (1 << 20) << "MB\n";
  }
  out << "--- metrics ---\n" << MetricsRegistry::Global().Dump();
  return out.str();
}

}  // namespace manu
