#ifndef MANU_CORE_CONFIG_H_
#define MANU_CORE_CONFIG_H_

#include <cstdint>

#include "common/retry.h"
#include "common/types.h"

namespace manu {

/// System-wide configuration of a ManuInstance. Defaults mirror the paper
/// where it states one (512 MB seal threshold, 10 s idle seal, 10k-row
/// slices, two query nodes / one data node / one index node); tests and
/// benches shrink the thresholds so segment life cycles happen at laptop
/// scale.
struct ManuConfig {
  // --- Sharding / segments (Section 3.1) ---
  int32_t num_shards = 2;           ///< WAL channels per collection.
  uint64_t segment_seal_bytes = kDefaultSegmentSealBytes;
  int64_t segment_seal_rows = 0;    ///< 0 = no row-count trigger.
  int64_t segment_idle_seal_ms = 10000;
  int64_t slice_rows = kDefaultSliceRows;

  // --- Log backbone (Sections 3.3 / 3.4) ---
  int64_t time_tick_interval_ms = 50;
  /// Default staleness tolerance tau in ms when a query does not override it
  /// (kBounded). kStrong -> 0, kEventually -> +inf.
  int64_t default_staleness_ms = 1000;

  /// Hot replicas per sealed segment (Section 3.6: "maintaining multiple
  /// hot replicas of a collection to serve queries for availability and
  /// throughput"). Each sealed segment is loaded on min(replica_factor,
  /// #nodes) query nodes; proxies dedup by pk, and a node failure leaves
  /// the collection fully served.
  int32_t replica_factor = 1;

  // --- Worker fleet (Section 5.2 defaults) ---
  int32_t num_query_nodes = 2;
  int32_t num_index_nodes = 1;
  int32_t num_data_nodes = 1;
  int32_t num_loggers = 1;
  int32_t index_build_threads = 2;   ///< Per index node.
  int32_t query_threads = 4;         ///< Per query node (intra-query).
  /// Intra-query parallelism (Section 6.4): a search fans its per-segment
  /// top-k computations across the node's query_threads pool and reduces
  /// node-locally. Off = the pre-fan-out serial scan (debug / A-B knob).
  bool parallel_search = true;
  /// Segments per parallel task in the intra-query fan-out. 1 (default)
  /// dispatches each segment separately (best balance under stragglers);
  /// larger grains amortize dispatch when segments are tiny.
  int64_t search_parallel_grain = 1;

  // --- WAL group commit (ROADMAP item 1, BtrLog recipe) ---
  // All default off/compatible: the broker behaves exactly like the
  // pre-group-commit publish path (each publish is its own commit group)
  // until a deployment opts in. bench_ingest arms them.
  /// Batch concurrently staged publishes into one flush + one collective
  /// ack per channel (publishers block on a commit ticket; the flush
  /// leader installs the whole group atomically).
  bool wal_group_commit = false;
  /// Max entries per commit group.
  int64_t wal_group_max_entries = 256;
  /// Flush-leader linger (us) waiting for a group to fill before flushing
  /// what's staged. 0 = flush immediately.
  int64_t wal_flush_linger_us = 0;
  /// Simulated per-flush device latency (us) — the fsync/replication RTT a
  /// real broker pays once per group. Makes the batching win measurable;
  /// 0 = off.
  int64_t wal_sim_flush_latency_us = 0;

  // --- Node main-loop cadence ---
  int64_t poll_batch = 256;          ///< Max WAL entries per poll.
  int64_t poll_timeout_ms = 20;

  // --- Deletion / compaction (Section 3.5) ---
  /// Rebuild (compact) a sealed segment once this fraction of its rows is
  /// tombstoned.
  double compact_deleted_ratio = 0.3;
  /// Merge sealed segments smaller than this fraction of seal size.
  double small_segment_ratio = 0.25;
  /// Query-node delete-tombstone buffer: once the per-collection buffer
  /// holds at least this many tombstones, entries whose delete LSN is below
  /// the collection's min channel service_ts are compacted away (every
  /// loaded segment has already absorbed them; segments handed off later
  /// get the pruned prefix backfilled from the retained WAL in
  /// LoadSealedSegment). Tests shrink it to force compaction; the floor
  /// keeps the common case allocation-free.
  int64_t delete_buffer_compact_min = 1024;

  // --- Consistency wait bound (avoid unbounded stalls if ticks stop) ---
  int64_t max_consistency_wait_ms = 5000;

  // --- Liveness: heartbeat leases + watchdog (Section 3.6) ---
  /// Lease TTL: a worker whose lease is not renewed within this window is
  /// declared dead by the watchdog and failed over. Defaults are generous
  /// (6x the heartbeat interval, plus sanitizer headroom) so loaded CI
  /// machines never see spurious failovers; chaos tests shrink them.
  int64_t lease_ttl_ms = 3000;
  /// Workers renew their lease at this cadence (piggybacked on the node
  /// pump loops).
  int64_t heartbeat_interval_ms = 250;
  /// How often the ManuInstance background loop scans for expired leases.
  int64_t watchdog_interval_ms = 250;
  /// Master switch: off disables lease registration, heartbeats, the
  /// watchdog and epoch fencing (single-process unit tests that construct
  /// bare nodes without a LeaseManager are equivalent to this).
  bool enable_liveness = true;

  // --- Robustness (common/retry.h, common/failpoint.h) ---
  /// Retry budget for object-store / meta / binlog I/O on worker nodes.
  int32_t io_retry_attempts = 4;
  int64_t io_retry_base_backoff_us = 200;
  int64_t io_retry_max_backoff_us = 20000;
  /// Proxy-side wait bound per query node during search fan-out, in ms;
  /// <= 0 waits indefinitely. With SearchRequest::allow_partial, a node
  /// missing this deadline is dropped from the result (coverage < 1)
  /// instead of failing the query.
  int64_t node_search_deadline_ms = -1;

  /// Proxy-level search retries on transient fan-out failure (Unavailable /
  /// Timeout). Each retry re-fetches the routing snapshot, so a search that
  /// raced a node crash re-dispatches to the failover survivor instead of
  /// failing. 0 (default) = single attempt, the pre-retry behavior.
  int32_t search_retry_attempts = 0;

  // --- Overload control (core/admission.h; ROADMAP item 3) ---
  // All knobs default to 0 = off/unlimited: the front door is a pure
  // pass-through until a deployment opts in. Chaos tests and
  // bench_overload arm it.
  /// Global ceiling on concurrently admitted proxy requests; at the
  /// ceiling new requests are shed with kResourceExhausted + retry-after
  /// instead of queueing. 0 = unlimited.
  int64_t admission_max_inflight = 0;
  /// Per-tenant token-bucket rate (requests/sec). 0 = no per-tenant limit.
  double admission_tenant_qps = 0;
  /// Per-tenant bucket depth (burst allowance); <= 0 derives
  /// max(1, admission_tenant_qps).
  double admission_tenant_burst = 0;
  /// How many times Proxy::Insert/Delete re-attempts after write-path
  /// backpressure (kResourceExhausted), sleeping the retry-after hint plus
  /// jitter between attempts. This is the ONLY place the hint is honored;
  /// RetryPolicy never retries kResourceExhausted. 0 = surface immediately.
  int32_t admission_write_retry_attempts = 0;
  /// Per-query-node cap on outstanding (queued + executing) searches; at
  /// the cap a node refuses new work with kResourceExhausted so the proxy
  /// degrades/sheds instead of the node queueing unboundedly. 0 = unlimited.
  int64_t admission_node_inflight = 0;

  /// Brownout ladder thresholds on smoothed pressure in [0,1] (max of
  /// proxy inflight ratio and worst query-node queue ratio). Stages engage
  /// at the threshold and release below ~0.85x of it (hysteresis).
  /// Stage 1: force allow_partial + tighten per-node deadlines.
  double shed_degrade_pressure = 0.65;
  /// Stage 2: shed priority > 0 (low-priority) requests with retry-after.
  double shed_low_priority_pressure = 0.80;
  /// Stage 3: reject all requests.
  double shed_reject_pressure = 0.95;
  /// Default backoff guidance attached to shed/reject responses, in ms.
  int64_t shed_retry_after_ms = 50;
  /// Stage >= 1 multiplies node_search_deadline_ms by this factor
  /// (degraded requests get tighter per-node deadlines).
  double shed_deadline_factor = 0.5;
  /// Degraded per-node deadline when node_search_deadline_ms <= 0
  /// (unbounded): brownout must still bound per-node wait, in ms.
  int64_t shed_degraded_deadline_ms = 250;

  /// Write-path backpressure: max concurrently in-flight Append/Delete
  /// calls per logger ahead of the WAL commit point. At the limit ingest
  /// returns kResourceExhausted + retry-after BEFORE any side effect (no
  /// publish => no ack is preserved). 0 = unlimited.
  int64_t logger_inflight_limit = 0;

  // --- Replica placement (core/placement.h; ROADMAP item 3) ---
  // Defaults-off posture: with the interval at 0 the placement table is
  // still maintained (PlanFor routes off it, drains use it), but nothing
  // repairs in the background — redundancy behaves like the pre-reconciler
  // tree except that repairs can be invoked manually (Rebalance /
  // ReconcileOnce). Chaos tests and the diurnal drill arm the loop.
  /// Background reconcile cadence: diff desired vs. actual replica groups
  /// and issue repairs every this many ms. 0 (default) = no background
  /// reconciler.
  int64_t placement_reconcile_interval_ms = 0;
  /// Max concurrent repair loads per reconcile/drain pass (bounds the
  /// object-store and target-node load of a repair storm).
  int32_t placement_repair_concurrency = 2;
  /// Max repair ops issued per reconcile pass; 0 = unbounded. Zero-replica
  /// (coverage) repairs are always planned first.
  int32_t placement_max_repairs_per_cycle = 64;
  /// Upper bound on one drain's survivor-load phase, in ms; 0 = unbounded.
  /// On timeout the victim keeps serving whatever was not yet moved (no
  /// coverage dip) and the drain reports Unavailable.
  int64_t placement_drain_timeout_ms = 0;

  // --- Filtered search (index/filter_index.h, core/filter_planner.h) ---
  // All knobs default off: search behaves exactly like the legacy
  // post-filter path until a deployment opts in. See DESIGN.md Section 14.
  /// Index nodes build + persist a per-segment attribute-index artifact
  /// (FilterIndex) beside the vector index; query nodes load it on
  /// LoadSealedSegment instead of rebuilding scalar indexes locally.
  bool filter_index_enable = false;
  /// Cost-based per-segment filter planner (strategy: prefilter /
  /// filtered traversal / brute-force-over-matches). Off = the legacy
  /// fixed heuristic.
  bool filter_planner_enable = false;
  /// Below this estimated selectivity the planner brute-forces distances
  /// over just the matching rows (exact, and cheaper than any index
  /// traversal — the measured crossover sits near 15%, bench_filtered).
  double filter_brute_threshold = 0.15;
  /// Below this selectivity (and above brute) the planner uses
  /// filter-aware traversal on engines that support it; at or above it the
  /// allowed-mask pre-filter path wins.
  double filter_prefilter_threshold = 0.5;
  /// Filtered HNSW traversal may adaptively double ef up to
  /// ef * this cap when the beam surfaces fewer than k passing rows.
  double filter_ef_inflation_cap = 16.0;

  // --- Observability (common/trace.h) ---
  /// Retain every Nth request trace in the in-memory collector; <= 0
  /// disables sampling retention (slow queries are still captured).
  int64_t trace_sample_every = 64;
  /// Requests slower than this are force-retained in the slow-query log
  /// regardless of sampling; <= 0 disables the slow-query log.
  int64_t slow_query_trace_ms = 500;

  // --- Scaling-simulation knob ---
  /// When > 0, each query-node search takes at least
  /// `sim_segment_search_us * segments_searched` microseconds (the node
  /// sleeps off any remainder after real compute). This models each node
  /// owning its own machine: on a single-core host, real compute cannot
  /// parallelize across simulated nodes, but calibrated service times can,
  /// so throughput-vs-nodes experiments (Figures 9-11) measure the
  /// architecture (segment distribution, queueing) rather than host core
  /// count. 0 (default) disables the model; searches take their real time.
  int64_t sim_segment_search_us = 0;
};

/// The RetryPolicy worker nodes use for their shared-storage I/O.
inline RetryPolicy MakeIoRetryPolicy(const ManuConfig& config) {
  RetryPolicy policy;
  policy.max_attempts = config.io_retry_attempts;
  policy.base_backoff_us = config.io_retry_base_backoff_us;
  policy.max_backoff_us = config.io_retry_max_backoff_us;
  return policy;
}

}  // namespace manu

#endif  // MANU_CORE_CONFIG_H_
